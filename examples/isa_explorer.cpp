/**
 * @file
 * isa_explorer: run any cipher kernel on any machine model and dump
 * the microarchitectural picture — the tool-style workflow the paper
 * used (SimpleScalar + SimpleView) to find cipher bottlenecks.
 *
 * Usage:
 *   isa_explorer [cipher] [variant] [model] [bytes] [dir]
 *     cipher   3des|blowfish|idea|mars|rc4|rc6|rijndael|twofish
 *     variant  norot|rot|opt|grp        (default rot)
 *     model    4w|4w+|8w+|df            (default 4w)
 *     bytes    session length           (default 4096)
 *     dir      enc|dec                  (default enc)
 *   isa_explorer --disassemble [cipher] [variant]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench/common.hh"
#include "kernels/kernel.hh"
#include "sim/pipeline.hh"

namespace
{

using namespace cryptarch;

crypto::CipherId
parseCipher(const std::string &name)
{
    for (const auto &info : crypto::cipherCatalog()) {
        std::string lower = info.name;
        for (auto &c : lower)
            c = static_cast<char>(std::tolower(c));
        if (lower == name)
            return info.id;
    }
    std::fprintf(stderr, "unknown cipher '%s'\n", name.c_str());
    std::exit(1);
}

kernels::KernelVariant
parseVariant(const std::string &v)
{
    if (v == "norot")
        return kernels::KernelVariant::BaselineNoRot;
    if (v == "rot")
        return kernels::KernelVariant::BaselineRot;
    if (v == "opt")
        return kernels::KernelVariant::Optimized;
    if (v == "grp")
        return kernels::KernelVariant::OptimizedGrp;
    std::fprintf(stderr, "unknown variant '%s'\n", v.c_str());
    std::exit(1);
}

sim::MachineConfig
parseModel(const std::string &m)
{
    if (m == "4w")
        return sim::MachineConfig::fourWide();
    if (m == "4w+")
        return sim::MachineConfig::fourWidePlus();
    if (m == "8w+")
        return sim::MachineConfig::eightWidePlus();
    if (m == "df")
        return sim::MachineConfig::dataflow();
    std::fprintf(stderr, "unknown model '%s'\n", m.c_str());
    std::exit(1);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string cipher_name = "twofish";
    std::string variant_name = "rot";
    std::string model_name = "4w";
    size_t bytes = 4096;

    int arg = 1;
    bool disasm = false;
    if (arg < argc && std::strcmp(argv[arg], "--disassemble") == 0) {
        disasm = true;
        arg++;
    }
    if (arg < argc)
        cipher_name = argv[arg++];
    if (arg < argc)
        variant_name = argv[arg++];
    if (arg < argc)
        model_name = argv[arg++];
    if (arg < argc)
        bytes = std::strtoull(argv[arg++], nullptr, 0);
    kernels::KernelDirection direction = kernels::KernelDirection::Encrypt;
    if (arg < argc && std::strcmp(argv[arg], "dec") == 0)
        direction = kernels::KernelDirection::Decrypt;

    auto id = parseCipher(cipher_name);
    auto variant = parseVariant(variant_name);
    const auto &info = crypto::cipherInfo(id);
    if (!info.isStream)
        bytes = bytes / info.blockBytes * info.blockBytes;

    auto w = bench::makeWorkload(id, bytes);
    auto build = kernels::buildKernel(id, variant, w.key, w.iv, bytes,
                                      direction);

    if (disasm) {
        std::printf("%s (%zu static instructions)\n\n%s",
                    build.name.c_str(), build.program.size(),
                    build.program.disassemble().c_str());
        return 0;
    }

    auto cfg = parseModel(model_name);
    isa::Machine m;
    build.install(m, kernels::toWordImage(id, w.plaintext));
    sim::OooScheduler sched(cfg);
    m.run(build.program, &sched, 1ull << 32);
    auto s = sched.finish();

    std::printf("kernel   : %s\n", build.name.c_str());
    std::printf("model    : %s\n", s.model.c_str());
    std::printf("session  : %zu bytes\n", bytes);
    std::printf("insts    : %llu (%.1f per byte)\n",
                static_cast<unsigned long long>(s.instructions),
                static_cast<double>(s.instructions) / bytes);
    std::printf("cycles   : %llu\n",
                static_cast<unsigned long long>(s.cycles));
    std::printf("IPC      : %.2f\n", s.ipc());
    std::printf("rate     : %.2f bytes/1000 cycles "
                "(= MB/s at 1 GHz)\n",
                bench::bytesPerKiloCycle(s.cycles, bytes));
    std::printf("branches : %llu cond, %llu mispredicted (%.2f%%)\n",
                static_cast<unsigned long long>(s.condBranches),
                static_cast<unsigned long long>(s.mispredicts),
                s.condBranches ? 100.0 * s.mispredicts / s.condBranches
                               : 0.0);
    std::printf("L1D      : %llu accesses, %.2f%% miss\n",
                static_cast<unsigned long long>(s.l1.accesses),
                100.0 * s.l1.missRate());
    std::printf("SBOX     : %llu accesses",
                static_cast<unsigned long long>(s.sboxAccesses));
    if (s.sboxAccesses) {
        std::printf(", %llu SBox-cache hits",
                    static_cast<unsigned long long>(s.sboxCacheHits));
    }
    std::printf("\n");
    return 0;
}
