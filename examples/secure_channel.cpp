/**
 * @file
 * secure_channel: an SSL-like session end to end.
 *
 * Replays the protocol the paper's Figure 2 characterizes: the server
 * holds an RSA key pair; the client wraps a random premaster secret
 * with the public key; both sides derive symmetric keys and move to
 * bulk private-key encryption (3DES-CBC, the SSL mode the paper
 * calls out). The cost model then reports where a server's cycles
 * would go for this session.
 */

#include <cstdio>
#include <string>

#include "crypto/cbc.hh"
#include "crypto/cipher.hh"
#include "ssl/rsa.hh"
#include "ssl/session.hh"
#include "util/hex.hh"
#include "util/xorshift.hh"

namespace
{

using namespace cryptarch;

/** Derive 24 bytes of 3DES key material from the premaster secret.
 *  (A stand-in KDF: RC4 keystream keyed by the secret.) */
std::vector<uint8_t>
deriveKeys(const util::BigInt &premaster, size_t nbytes)
{
    auto hex = premaster.toHex();
    std::vector<uint8_t> seed(hex.begin(), hex.end());
    auto rc4 = crypto::makeStreamCipher(crypto::CipherId::RC4);
    rc4->setKey(std::span<const uint8_t>(seed.data(),
                                         std::min<size_t>(seed.size(),
                                                          256)));
    std::vector<uint8_t> zeros(nbytes, 0), out(nbytes);
    rc4->process(zeros.data(), out.data(), nbytes);
    return out;
}

} // namespace

int
main()
{
    util::Xorshift64 rng(0x5EC0DE);

    // --- handshake ---
    std::printf("[server] generating RSA-1024 key pair...\n");
    ssl::RsaKey server_key = ssl::generateRsaKey(1024, rng);
    std::printf("[server] modulus: %s...\n",
                server_key.n.toHex().substr(0, 32).c_str());

    util::BigInt premaster =
        util::BigInt::mod(util::BigInt::randomBits(768, rng),
                          server_key.n);
    util::BigInt wrapped = ssl::rsaPublic(premaster, server_key);
    std::printf("[client] premaster wrapped with public key\n");

    util::BigInt unwrapped = ssl::rsaPrivate(wrapped, server_key);
    if (!(unwrapped == premaster)) {
        std::printf("handshake FAILED\n");
        return 1;
    }
    std::printf("[server] premaster recovered: handshake OK\n");

    // --- bulk transfer with the negotiated symmetric keys ---
    auto key_material = deriveKeys(premaster, 24 + 8);
    auto bulk = crypto::makeBlockCipher(crypto::CipherId::TripleDES);
    bulk->setKey(std::span<const uint8_t>(key_material.data(), 24));
    std::vector<uint8_t> iv(key_material.begin() + 24,
                            key_material.end());

    std::string page(21 * 1024, 'x'); // one web object (~21 KB [2])
    for (size_t i = 0; i < page.size(); i++)
        page[i] = static_cast<char>('A' + i % 26);
    std::vector<uint8_t> pt(page.begin(), page.end());
    pt.resize((pt.size() + 7) / 8 * 8, 0);

    crypto::CbcEncryptor enc(*bulk, iv);
    auto ct = enc.encrypt(pt);
    crypto::CbcDecryptor dec(*bulk, iv);
    auto back = dec.decrypt(ct);
    bool ok = back == pt;
    std::printf("[both ] 3DES-CBC bulk transfer of %zu bytes: %s\n",
                pt.size(), ok ? "verified" : "FAILED");

    // --- where did the cycles go? ---
    ssl::SessionModel model(crypto::CipherId::TripleDES);
    auto cost = model.cost(pt.size());
    std::printf("\nProjected server cycle breakdown for this session "
                "(4W core):\n");
    std::printf("  public-key  %6.1f%%  (%.2f Mcycles)\n",
                100.0 * cost.publicFraction(),
                cost.publicKeyCycles / 1e6);
    std::printf("  private-key %6.1f%%  (%.2f Mcycles)\n",
                100.0 * cost.privateFraction(),
                cost.privateKeyCycles / 1e6);
    std::printf("  other       %6.1f%%  (%.2f Mcycles)\n",
                100.0 * cost.otherFraction(), cost.otherCycles / 1e6);
    return ok ? 0 : 1;
}
