/**
 * @file
 * Quickstart: encrypt and decrypt a message with the cipher library.
 *
 * Demonstrates the core public API: the cipher catalog, keyed block
 * ciphers, CBC mode, and the RC4 stream cipher.
 */

#include <cstdio>
#include <string>

#include "crypto/cbc.hh"
#include "crypto/cipher.hh"
#include "util/hex.hh"
#include "util/xorshift.hh"

int
main()
{
    using namespace cryptarch;

    // --- pick a cipher from the catalog ---
    std::printf("cryptarch cipher suite:\n");
    for (const auto &info : crypto::cipherCatalog()) {
        std::printf("  %-9s %u-bit key, %2u-byte block, %2u rounds\n",
                    info.name.c_str(), info.keyBits, info.blockBytes,
                    info.rounds);
    }

    // --- block encryption in CBC mode (Twofish) ---
    auto cipher = crypto::makeBlockCipher(crypto::CipherId::Twofish);
    util::Xorshift64 rng(2024);
    auto key = rng.bytes(cipher->info().keyBits / 8);
    auto iv = rng.bytes(cipher->info().blockBytes);
    cipher->setKey(key);

    std::string message = "Architectural support for fast symmetric-"
                          "key cryptography!";
    // Pad to a whole number of blocks (zero padding for the demo).
    std::vector<uint8_t> plaintext(message.begin(), message.end());
    size_t bs = cipher->info().blockBytes;
    plaintext.resize((plaintext.size() + bs - 1) / bs * bs, 0);

    crypto::CbcEncryptor enc(*cipher, iv);
    auto ciphertext = enc.encrypt(plaintext);
    std::printf("\nTwofish-CBC key:        %s\n",
                util::toHex(key).c_str());
    std::printf("Twofish-CBC ciphertext: %s...\n",
                util::toHex(ciphertext).substr(0, 48).c_str());

    crypto::CbcDecryptor dec(*cipher, iv);
    auto recovered = dec.decrypt(ciphertext);
    std::printf("Decrypted:              %.*s\n",
                static_cast<int>(message.size()),
                reinterpret_cast<const char *>(recovered.data()));

    // --- stream encryption (RC4) ---
    auto rc4 = crypto::makeStreamCipher(crypto::CipherId::RC4);
    rc4->setKey(key);
    std::vector<uint8_t> stream_ct(message.size());
    rc4->process(reinterpret_cast<const uint8_t *>(message.data()),
                 stream_ct.data(), message.size());
    std::printf("\nRC4 keystream ct:       %s...\n",
                util::toHex(stream_ct).substr(0, 48).c_str());
    rc4->setKey(key); // reset keystream
    std::vector<uint8_t> stream_pt(message.size());
    rc4->process(stream_ct.data(), stream_pt.data(), stream_ct.size());
    std::printf("RC4 decrypted:          %.*s\n",
                static_cast<int>(message.size()),
                reinterpret_cast<const char *>(stream_pt.data()));

    bool ok = std::equal(message.begin(), message.end(),
                         recovered.begin())
        && std::equal(message.begin(), message.end(),
                      stream_pt.begin());
    std::printf("\n%s\n", ok ? "roundtrips OK" : "ROUNDTRIP FAILED");
    return ok ? 0 : 1;
}
