/**
 * @file
 * pipeline_view: a SimpleView-style textual pipeline visualization.
 *
 * The paper used the SimpleView framework to watch instructions stall
 * through the modeled pipeline while hand-optimizing the cipher
 * kernels. This tool renders the same picture in a terminal: one row
 * per dynamic instruction, one column per cycle, showing where each
 * instruction fetched (f), executed (X) and retired (r) — dependence
 * chains appear as descending staircases.
 *
 * Wait cycles are labeled with the scheduler's own stall attribution
 * (sim/stall.hh): the span before dispatch shows window (w) and
 * redirect (b) charges, and the dispatch-to-issue span shows the
 * cause of every cycle — operand dependence (d), producer memory
 * latency (m), store-alias ordering (a), SBOXSYNC visibility (s),
 * lost issue slots (i) and busy functional units (u). Uncharged
 * in-flight cycles (frontend run-ahead, completed-to-retire) stay '.'.
 *
 * Usage: pipeline_view [cipher] [variant] [model] [start] [count]
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench/common.hh"
#include "kernels/kernel.hh"
#include "sim/pipeline.hh"

namespace
{

using namespace cryptarch;

crypto::CipherId
parseCipher(const std::string &name)
{
    for (const auto &info : crypto::cipherCatalog()) {
        std::string lower = info.name;
        for (auto &c : lower)
            c = static_cast<char>(std::tolower(c));
        if (lower == name)
            return info.id;
    }
    std::fprintf(stderr, "unknown cipher '%s'\n", name.c_str());
    std::exit(1);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string cipher_name = argc > 1 ? argv[1] : "blowfish";
    std::string variant_name = argc > 2 ? argv[2] : "rot";
    std::string model_name = argc > 3 ? argv[3] : "4w";
    uint64_t start = argc > 4 ? std::strtoull(argv[4], nullptr, 0) : 200;
    uint64_t count = argc > 5 ? std::strtoull(argv[5], nullptr, 0) : 40;

    auto id = parseCipher(cipher_name);
    kernels::KernelVariant variant =
        variant_name == "norot" ? kernels::KernelVariant::BaselineNoRot
        : variant_name == "opt" ? kernels::KernelVariant::Optimized
        : variant_name == "grp" ? kernels::KernelVariant::OptimizedGrp
                                : kernels::KernelVariant::BaselineRot;
    sim::MachineConfig cfg =
        model_name == "4w+"  ? sim::MachineConfig::fourWidePlus()
        : model_name == "8w+" ? sim::MachineConfig::eightWidePlus()
        : model_name == "df"  ? sim::MachineConfig::dataflow()
                              : sim::MachineConfig::fourWide();

    auto w = bench::makeWorkload(id, 512);
    auto build = kernels::buildKernel(id, variant, w.key, w.iv, 512);
    isa::Machine m;
    build.install(m, kernels::toWordImage(id, w.plaintext));
    sim::OooScheduler sched(cfg);
    sched.recordTimeline(start, count);
    m.run(build.program, &sched, 1ull << 30);
    auto stats = sched.finish();

    const auto &tl = sched.timelineEntries();
    if (tl.empty()) {
        std::printf("no instructions in the requested range\n");
        return 1;
    }

    // Anchor the window at the issue range: in steady state the
    // fetch-to-retire span exceeds any terminal width (the ROB holds
    // ~a hundred instructions), and the action is at issue time.
    sim::Cycle base = tl.front().issue;
    sim::Cycle end = 0;
    for (const auto &e : tl) {
        base = std::min(base, e.issue);
        end = std::max(end, e.complete);
    }
    base = base > 4 ? base - 4 : 0;
    const unsigned width =
        static_cast<unsigned>(std::min<sim::Cycle>(end - base + 2, 150));

    std::printf("%s on %s — cycles %llu..%llu\n"
                "(f fetch, X execute, r retire, . in flight; stalls: "
                "w window, b redirect,\n d operand, m memory, a alias, "
                "s sbox-sync, i issue slot, u FU busy)\n\n",
                build.name.c_str(), stats.model.c_str(),
                static_cast<unsigned long long>(base),
                static_cast<unsigned long long>(base + width - 1));
    for (const auto &e : tl) {
        std::string row(width, ' ');
        auto put = [&](sim::Cycle c, char ch) {
            if (c >= base && c < base + width)
                row[static_cast<size_t>(c - base)] = ch;
        };
        for (sim::Cycle c = e.fetch; c <= std::min(e.retire,
                                                   base + width - 1);
             c++) {
            put(c, '.');
        }

        // Pre-dispatch charges end at dispatch: redirect, then window.
        using sim::StallCause;
        auto count = [&](StallCause cause) {
            return e.stall[static_cast<size_t>(cause)];
        };
        sim::Cycle pre = e.dispatch;
        for (uint64_t n = count(StallCause::WindowFull); n && pre; n--)
            put(--pre, 'w');
        for (uint64_t n = count(StallCause::FetchRedirect); n && pre; n--)
            put(--pre, 'b');

        // Dispatch-to-issue: readiness causes fill dispatch..ready,
        // resource causes fill ready..issue — the per-entry invariant
        // guarantees the counts tile the span exactly.
        static constexpr struct { StallCause cause; char ch; } spans[] = {
            {StallCause::StoreAlias, 'a'},
            {StallCause::SboxVisibility, 's'},
            {StallCause::MemLatency, 'm'},
            {StallCause::Operand, 'd'},
            {StallCause::IssueSlot, 'i'},
            {StallCause::FuAlu, 'u'},
            {StallCause::FuRot, 'u'},
            {StallCause::FuMul, 'u'},
            {StallCause::FuDcache, 'u'},
            {StallCause::FuSbox, 'u'},
        };
        sim::Cycle cur = e.dispatch;
        for (const auto &span : spans)
            for (uint64_t n = count(span.cause); n; n--)
                put(cur++, span.ch);

        for (sim::Cycle c = e.issue; c < e.complete; c++)
            put(c, 'X');
        put(e.fetch, 'f');
        put(e.retire, 'r');
        std::printf("%6llu %-8s |%s|\n",
                    static_cast<unsigned long long>(e.seq),
                    isa::opName(e.op).c_str(), row.c_str());
    }
    std::printf("\nwhole run: %llu insts, %llu cycles, IPC %.2f\n",
                static_cast<unsigned long long>(stats.instructions),
                static_cast<unsigned long long>(stats.cycles),
                stats.ipc());
    return 0;
}
