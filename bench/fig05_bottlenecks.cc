/**
 * @file
 * Regenerates paper Figure 5: single-bottleneck analysis.
 *
 * Starting from the dataflow machine, exactly one constraint is
 * re-inserted at a time (alias ordering, branch prediction, 4-wide
 * issue, real memory, baseline functional units, 128-entry window),
 * plus "All" (the full 4W model). Bars are performance relative to
 * the dataflow machine (1.00 = dataflow speed).
 *
 * One functional pass per cipher: the recorded trace replays into all
 * eight models (DF + 7) in parallel via the bench driver. Per-model
 * SimStats: BENCH_fig05.json.
 *
 * A companion report prints the *measured* stall attribution from the
 * 4W run of the same sweep (sim/stall.hh): the per-cause cycle totals
 * the scheduler accumulated directly, next to the exclusion-style
 * bars. Both must tell the same story.
 *
 * Paper shape: branch prediction and memory never matter; window and
 * alias only matter for RC4; issue width and resources are the common
 * bottlenecks, largest for Rijndael and RC4.
 */

#include <algorithm>
#include <cstdio>

#include "bench/common.hh"
#include "sim/stall.hh"

int
main()
{
    using namespace cryptarch;
    using namespace cryptarch::bench;
    using sim::MachineConfig;

    auto variant = kernels::KernelVariant::BaselineRot;
    const char *labels[] = {"Alias", "Branch", "Issue", "Mem",
                            "Res",   "Window", "All"};
    const char *models[] = {"DF+Alias", "DF+Branch", "DF+Issue",
                            "DF+Mem",   "DF+Res",    "DF+Window", "4W"};

    driver::SweepSpec spec;
    spec.ciphers = allCiphers();
    spec.variants = {variant};
    spec.models = {MachineConfig::dataflow(),
                   MachineConfig::dfPlusAlias(),
                   MachineConfig::dfPlusBranch(),
                   MachineConfig::dfPlusIssue(),
                   MachineConfig::dfPlusMem(),
                   MachineConfig::dfPlusResources(),
                   MachineConfig::dfPlusWindow(),
                   MachineConfig::fourWide()};
    auto results = driver::runSweep(spec);

    std::printf("Figure 5. Analysis of Bottlenecks in Cipher Kernels\n"
                "(performance relative to the dataflow machine; "
                "original kernels with rotates).\n\n");
    std::printf("%-10s", "Cipher");
    for (const char *l : labels)
        std::printf("%8s", l);
    std::printf("\n%.66s\n",
                "----------------------------------------------------"
                "--------------");

    for (auto id : allCiphers()) {
        const auto &info = crypto::cipherInfo(id);
        const auto &df = driver::findResult(results, id, variant, "DF");
        std::printf("%-10s", info.name.c_str());
        for (const char *model : models) {
            const auto &s = driver::findResult(results, id, variant, model);
            std::printf("%8s",
                        gridCell(df.ok() && s.ok(), "%.2f",
                                 static_cast<double>(df.stats.cycles)
                                     / static_cast<double>(
                                         std::max<uint64_t>(
                                             s.stats.cycles, 1)))
                            .c_str());
        }
        std::printf("\n");
    }

    // ----- companion: measured stall attribution on the 4W model -----
    // The exclusion bars above infer each bottleneck from a separate
    // simulation; the columns below are the per-cause stall cycles the
    // same sweep's 4W scheduler attributed directly, as a percentage
    // of that cipher's total attributed stall cycles. "Dep" (operand
    // dependence + producer memory latency) is the dataflow floor the
    // DF machine pays too; everything else is machine-imposed and must
    // rank like the exclusion bars.
    using sim::StallCause;
    auto causeSum = [](const sim::SimStats &s,
                       std::initializer_list<StallCause> causes) {
        uint64_t sum = 0;
        for (auto c : causes)
            sum += s.stallCycles[static_cast<size_t>(c)];
        return sum;
    };

    std::printf("\nCompanion: measured stall attribution, 4W model\n"
                "(per cause, %% of the cipher's total attributed "
                "stall cycles; Dep = dataflow floor)\n\n");
    std::printf("%-10s%8s%8s%8s%8s%8s%8s%8s%8s\n", "Cipher", "Dep",
                "Mem", "Alias", "Sync", "Window", "Redir", "Issue",
                "FU");
    std::printf("%.74s\n",
                "----------------------------------------------------"
                "----------------------");
    for (auto id : allCiphers()) {
        const auto &info = crypto::cipherInfo(id);
        const auto &r4 = driver::findResult(results, id, variant, "4W");
        if (!r4.ok()) {
            std::printf("%-10s%8s\n", info.name.c_str(), "FAIL");
            continue;
        }
        const auto &s = r4.stats;
        uint64_t total = s.totalStallCycles();
        double denom = total ? static_cast<double>(total) : 1.0;
        auto pct = [&](std::initializer_list<StallCause> causes) {
            return 100.0 * static_cast<double>(causeSum(s, causes))
                / denom;
        };
        std::printf(
            "%-10s%7.1f%%%7.1f%%%7.1f%%%7.1f%%%7.1f%%%7.1f%%%7.1f%%"
            "%7.1f%%\n",
            info.name.c_str(), pct({StallCause::Operand}),
            pct({StallCause::MemLatency}), pct({StallCause::StoreAlias}),
            pct({StallCause::SboxVisibility}),
            pct({StallCause::WindowFull}),
            pct({StallCause::FetchRedirect}), pct({StallCause::IssueSlot}),
            pct({StallCause::FuAlu, StallCause::FuRot, StallCause::FuMul,
                 StallCause::FuDcache, StallCause::FuSbox}));
    }
    std::printf("\n(Same story as the bars: among the machine-imposed "
                "causes, issue width and FU\ncontention are the common "
                "bottlenecks; alias and window matter only for RC4;\n"
                "redirects and memory never do. Ciphers whose bars sit "
                "at 1.00 show a pure\ndataflow floor.)\n");

    driver::writeBenchJson("BENCH_fig05.json", "fig05", results);
    std::printf("\n(1.00 = dataflow speed; lower = that bottleneck "
                "alone costs performance.\nPer-model stats: "
                "BENCH_fig05.json.)\n");
    return reportFailedCells(results);
}
