/**
 * @file
 * Regenerates paper Figure 5: single-bottleneck analysis.
 *
 * Starting from the dataflow machine, exactly one constraint is
 * re-inserted at a time (alias ordering, branch prediction, 4-wide
 * issue, real memory, baseline functional units, 128-entry window),
 * plus "All" (the full 4W model). Bars are performance relative to
 * the dataflow machine (1.00 = dataflow speed).
 *
 * One functional pass per cipher: the recorded trace replays into all
 * eight models (DF + 7) in parallel via the bench driver. Per-model
 * SimStats: BENCH_fig05.json.
 *
 * Paper shape: branch prediction and memory never matter; window and
 * alias only matter for RC4; issue width and resources are the common
 * bottlenecks, largest for Rijndael and RC4.
 */

#include <cstdio>

#include "bench/common.hh"

int
main()
{
    using namespace cryptarch;
    using namespace cryptarch::bench;
    using sim::MachineConfig;

    auto variant = kernels::KernelVariant::BaselineRot;
    const char *labels[] = {"Alias", "Branch", "Issue", "Mem",
                            "Res",   "Window", "All"};
    const char *models[] = {"DF+Alias", "DF+Branch", "DF+Issue",
                            "DF+Mem",   "DF+Res",    "DF+Window", "4W"};

    driver::SweepSpec spec;
    spec.ciphers = allCiphers();
    spec.variants = {variant};
    spec.models = {MachineConfig::dataflow(),
                   MachineConfig::dfPlusAlias(),
                   MachineConfig::dfPlusBranch(),
                   MachineConfig::dfPlusIssue(),
                   MachineConfig::dfPlusMem(),
                   MachineConfig::dfPlusResources(),
                   MachineConfig::dfPlusWindow(),
                   MachineConfig::fourWide()};
    auto results = driver::runSweep(spec);

    std::printf("Figure 5. Analysis of Bottlenecks in Cipher Kernels\n"
                "(performance relative to the dataflow machine; "
                "original kernels with rotates).\n\n");
    std::printf("%-10s", "Cipher");
    for (const char *l : labels)
        std::printf("%8s", l);
    std::printf("\n%.66s\n",
                "----------------------------------------------------"
                "--------------");

    for (auto id : allCiphers()) {
        const auto &info = crypto::cipherInfo(id);
        const auto &df = driver::findResult(results, id, variant, "DF");
        std::printf("%-10s", info.name.c_str());
        for (const char *model : models) {
            const auto &s = driver::findResult(results, id, variant, model);
            std::printf("%8.2f", static_cast<double>(df.stats.cycles)
                                     / static_cast<double>(s.stats.cycles));
        }
        std::printf("\n");
    }

    driver::writeBenchJson("BENCH_fig05.json", "fig05", results);
    std::printf("\n(1.00 = dataflow speed; lower = that bottleneck "
                "alone costs performance.\nPer-model stats: "
                "BENCH_fig05.json.)\n");
    return 0;
}
