/**
 * @file
 * Regenerates paper Figure 5: single-bottleneck analysis.
 *
 * Starting from the dataflow machine, exactly one constraint is
 * re-inserted at a time (alias ordering, branch prediction, 4-wide
 * issue, real memory, baseline functional units, 128-entry window),
 * plus "All" (the full 4W model). Bars are performance relative to
 * the dataflow machine (1.00 = dataflow speed).
 *
 * Paper shape: branch prediction and memory never matter; window and
 * alias only matter for RC4; issue width and resources are the common
 * bottlenecks, largest for Rijndael and RC4.
 */

#include <cstdio>

#include "bench/common.hh"

int
main()
{
    using namespace cryptarch;
    using namespace cryptarch::bench;
    using sim::MachineConfig;

    const MachineConfig isolations[] = {
        MachineConfig::dfPlusAlias(),  MachineConfig::dfPlusBranch(),
        MachineConfig::dfPlusIssue(),  MachineConfig::dfPlusMem(),
        MachineConfig::dfPlusResources(),
        MachineConfig::dfPlusWindow(), MachineConfig::fourWide(),
    };
    const char *labels[] = {"Alias", "Branch", "Issue", "Mem",
                            "Res",   "Window", "All"};

    std::printf("Figure 5. Analysis of Bottlenecks in Cipher Kernels\n"
                "(performance relative to the dataflow machine; "
                "original kernels with rotates).\n\n");
    std::printf("%-10s", "Cipher");
    for (const char *l : labels)
        std::printf("%8s", l);
    std::printf("\n%.66s\n",
                "----------------------------------------------------"
                "--------------");

    for (auto id : bench::allCiphers()) {
        const auto &info = crypto::cipherInfo(id);
        auto variant = kernels::KernelVariant::BaselineRot;
        auto df = timeKernel(id, variant, MachineConfig::dataflow());
        std::printf("%-10s", info.name.c_str());
        for (const auto &cfg : isolations) {
            auto s = timeKernel(id, variant, cfg);
            std::printf("%8.2f", static_cast<double>(df.cycles)
                                     / static_cast<double>(s.cycles));
        }
        std::printf("\n");
    }
    std::printf("\n(1.00 = dataflow speed; lower = that bottleneck "
                "alone costs performance.)\n");
    return 0;
}
