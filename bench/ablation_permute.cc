/**
 * @file
 * Ablation: 3DES general-permutation strategies.
 *
 * The paper's XBOX does a 32-bit permutation in 7 instructions; Shi &
 * Lee's GRP (related work, "we are currently enhancing our tools to
 * use [it]") needs 5 — but the GRP steps are serially dependent while
 * XBOX's partial permutations are independent and OR-reduce. The
 * paper predicts a small end-to-end difference since 3DES only
 * permutes at block entry/exit; this bench quantifies it.
 *
 * Runs through the bench driver (one functional pass per variant);
 * stats: BENCH_ablation_permute.json.
 */

#include <cstdio>

#include "bench/common.hh"

int
main()
{
    using namespace cryptarch;
    using namespace cryptarch::bench;
    using kernels::KernelVariant;
    using sim::MachineConfig;

    const crypto::CipherId id = crypto::CipherId::TripleDES;
    struct Row
    {
        const char *label;
        KernelVariant variant;
    } rows[] = {
        {"swap network (baseline)", KernelVariant::BaselineRot},
        {"XBOX (paper)", KernelVariant::Optimized},
        {"GRP  (Shi & Lee)", KernelVariant::OptimizedGrp},
    };

    driver::SweepSpec spec;
    spec.ciphers = {id};
    spec.variants = {KernelVariant::BaselineRot, KernelVariant::Optimized,
                     KernelVariant::OptimizedGrp};
    spec.models = {MachineConfig::fourWide()};
    auto results = driver::runSweep(spec);

    std::printf("Ablation: 3DES permutation strategy "
                "(4KB session, 4W machine).\n\n");
    std::printf("%-26s %12s %12s %12s\n", "Strategy", "static insts",
                "cycles", "B/kcycle");
    std::printf("%.66s\n",
                "----------------------------------------------------"
                "--------------");
    for (const auto &row : rows) {
        // Static program size comes from the kernel builder (cheap; no
        // functional interpretation involved).
        Workload w = makeWorkload(id);
        auto build = kernels::buildKernel(id, row.variant, w.key, w.iv,
                                          session_bytes);
        const auto &r = driver::findResult(results, id, row.variant, "4W");
        std::printf("%-26s %12zu %12s %12s\n", row.label,
                    build.program.size(),
                    gridCell(r.ok(), "%.0f",
                             static_cast<double>(r.stats.cycles))
                        .c_str(),
                    gridCell(r.ok(), "%.2f",
                             bytesPerKiloCycle(r.stats.cycles, r.bytes))
                        .c_str());
    }

    driver::writeBenchJson("BENCH_ablation_permute.json",
                           "ablation_permute", results);
    std::printf("\n(GRP: 6 chained steps per 64-bit permutation vs "
                "XBOX's 8 parallel\npartials + OR tree; both run once "
                "per block, so throughput differences\nstay small — "
                "the paper's expectation. Stats: "
                "BENCH_ablation_permute.json.)\n");
    return reportFailedCells(results);
}
