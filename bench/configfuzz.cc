/**
 * @file
 * Config-fuzz harness: does the hardened simulator actually survive
 * arbitrary machine configs?
 *
 * A seeded random-config generator produces five strata and runs each
 * against a small kernel set under the crash-safe process pool:
 *
 *   valid       randomized but admissible machines        -> ok
 *   boundary    extreme-but-valid shapes (all-unlimited,
 *               all-minimum, cap-edge latencies/widths,
 *               one-set caches)                           -> ok
 *   degenerate  deliberately broken (zero geometry, 0-cycle
 *               units, inverted latencies, unsatisfiable FU
 *               pools, allocation bombs)                  -> rejected
 *   nonpow2     valid except non-power-of-two predictor /
 *               TLB entry counts                          -> ok
 *               (canonicalization rounds them down)
 *   watchdog    admission disabled + unsatisfiable MULQ
 *               pool on a multiply-bearing kernel         -> stalled
 *               (the forward-progress watchdog converts
 *               the livelock into a typed trap)
 *
 * Every cell must land on its stratum's expected outcome: zero hangs
 * (a generous per-cell deadline is armed purely as a backstop — a
 * `timed_out` cell is a watchdog failure), zero crashes, zero untyped
 * errors. The bench exits nonzero on any deviation, so it doubles as
 * an end-to-end test in CI (sanitizer jobs run `configfuzz --quick`).
 *
 * Usage: configfuzz [--quick] [--seed=N] [common sweep flags]
 *   --quick   CI smoke mode: ~68 configs instead of the full 524.
 *   --seed=N  override the generator seed (default 0xC0F12).
 *
 * JSON shape (hand-rolled; this bench has verdicts, not SimStats):
 *
 *   {
 *     "bench": "configfuzz",
 *     "schema": 1,
 *     "mode": "full", "seed": N, "total_configs": N,
 *     "strata": [
 *       {"stratum": "valid", "configs": N, "expected": "ok",
 *        "outcomes": {"ok": N, ..., "rejected": N, "stalled": N},
 *        "mismatches": N, "passed": true}, ...
 *     ],
 *     "passed": true
 *   }
 */

#include <array>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench/common.hh"
#include "sim/validate.hh"
#include "util/xorshift.hh"

namespace
{

using namespace cryptarch;
using driver::CellOutcome;
using driver::SweepCell;
using driver::SweepOptions;
using driver::SweepResult;
using kernels::KernelVariant;
using sim::MachineConfig;
using util::Xorshift64;

/** A kernel for a fuzz cell; baseline IDEA/RC6 carry 64-bit MULQs. */
struct FuzzKernel
{
    crypto::CipherId cipher;
    KernelVariant variant;
};

const FuzzKernel generic_kernels[] = {
    {crypto::CipherId::RC4, KernelVariant::Optimized},
    {crypto::CipherId::Blowfish, KernelVariant::Optimized},
    {crypto::CipherId::IDEA, KernelVariant::BaselineRot},
};

const FuzzKernel mulq_kernels[] = {
    {crypto::CipherId::IDEA, KernelVariant::BaselineRot},
    {crypto::CipherId::RC6, KernelVariant::BaselineRot},
};

/** A randomized admissible machine: every field inside the envelope
 *  the validator accepts, power-of-two where indexing requires it. */
MachineConfig
randomValid(Xorshift64 &rng)
{
    MachineConfig cfg = MachineConfig::fourWide();
    cfg.fetchBlocksPerCycle = static_cast<unsigned>(rng.nextBelow(5));
    cfg.fetchWidth = static_cast<unsigned>(rng.nextBelow(17));
    cfg.perfectBranch = rng.nextBelow(2) != 0;
    cfg.mispredictPenalty = static_cast<unsigned>(rng.nextBelow(21));
    cfg.predictorEntries = 1u << (6 + rng.nextBelow(9));
    cfg.windowSize = rng.nextBelow(4) == 0
        ? sim::unlimited
        : 16u << rng.nextBelow(7);
    cfg.issueWidth = static_cast<unsigned>(rng.nextBelow(17));
    cfg.frontendDepth = static_cast<unsigned>(rng.nextBelow(6));
    cfg.numIntAlu = static_cast<unsigned>(rng.nextBelow(9));
    cfg.numRotUnits = static_cast<unsigned>(rng.nextBelow(7));
    // 1 is the unsatisfiable pool; the valid stratum stays clear.
    static const unsigned mul_pools[] = {0, 2, 3, 4, 8};
    cfg.mulHalfSlots = mul_pools[rng.nextBelow(5)];
    cfg.numDCachePorts = static_cast<unsigned>(rng.nextBelow(5));
    cfg.numSboxCaches = static_cast<unsigned>(rng.nextBelow(5));
    cfg.sboxCachePorts = 1 + static_cast<unsigned>(rng.nextBelow(2));
    cfg.perfectSbox = rng.nextBelow(2) != 0;

    cfg.aluLat = 1 + static_cast<unsigned>(rng.nextBelow(3));
    cfg.rotLat = 1 + static_cast<unsigned>(rng.nextBelow(3));
    cfg.mulLat32 = 1 + static_cast<unsigned>(rng.nextBelow(6));
    cfg.mulLat64 = cfg.mulLat32 + static_cast<unsigned>(rng.nextBelow(6));
    cfg.mulmodLat = 1 + static_cast<unsigned>(rng.nextBelow(8));
    cfg.loadLat = 1 + static_cast<unsigned>(rng.nextBelow(5));
    cfg.sboxOnDcacheLat = 1 + static_cast<unsigned>(rng.nextBelow(4));
    cfg.sboxCacheLat = 1 + static_cast<unsigned>(rng.nextBelow(3));

    cfg.perfectMemory = rng.nextBelow(2) != 0;
    cfg.perfectAlias = rng.nextBelow(2) != 0;
    const uint32_t l1Block = 16u << rng.nextBelow(3);
    const uint32_t l1Assoc = 1u << rng.nextBelow(4);
    const uint32_t l1Sets = 1u << (2 + rng.nextBelow(7));
    cfg.l1d = {l1Block * l1Assoc * l1Sets, l1Assoc, l1Block};
    const uint32_t l2Block = 32u << rng.nextBelow(2);
    const uint32_t l2Assoc = 1u << rng.nextBelow(4);
    const uint32_t l2Sets = 1u << (4 + rng.nextBelow(8));
    cfg.l2 = {l2Block * l2Assoc * l2Sets, l2Assoc, l2Block};
    cfg.l2HitLat = 1 + static_cast<unsigned>(rng.nextBelow(30));
    cfg.memLat = cfg.l2HitLat + static_cast<unsigned>(rng.nextBelow(200));
    cfg.nextLinePrefetch = rng.nextBelow(2) != 0;
    cfg.dtlbAssoc = 1u << rng.nextBelow(4);
    cfg.dtlbEntries = cfg.dtlbAssoc << rng.nextBelow(5);
    cfg.pageBytes = 1u << (12 + rng.nextBelow(4));
    cfg.dtlbMissLat = 1 + static_cast<unsigned>(rng.nextBelow(60));
    return cfg;
}

/** Extreme-but-valid shapes, cycled by index with randomized fill. */
MachineConfig
boundaryConfig(Xorshift64 &rng, size_t i)
{
    MachineConfig cfg = randomValid(rng);
    switch (i % 5) {
      case 0:
        // All-unlimited: every resource 0, perfect everything.
        cfg.fetchBlocksPerCycle = cfg.fetchWidth = sim::unlimited;
        cfg.windowSize = cfg.issueWidth = sim::unlimited;
        cfg.numIntAlu = cfg.numRotUnits = sim::unlimited;
        cfg.mulHalfSlots = cfg.numDCachePorts = sim::unlimited;
        cfg.perfectBranch = cfg.perfectMemory = cfg.perfectAlias = true;
        cfg.perfectSbox = true;
        break;
      case 1:
        // All-minimum: the narrowest machine that can still make
        // progress (mulHalfSlots 2 is the smallest satisfiable pool).
        cfg.fetchBlocksPerCycle = cfg.fetchWidth = 1;
        cfg.windowSize = 4;
        cfg.issueWidth = 1;
        cfg.numIntAlu = cfg.numRotUnits = 1;
        cfg.mulHalfSlots = 2;
        cfg.numDCachePorts = 1;
        cfg.numSboxCaches = 0;
        cfg.predictorEntries = 1;
        cfg.l1d = {32, 1, 32};
        cfg.l2 = {64, 1, 32};
        cfg.dtlbEntries = cfg.dtlbAssoc = 1;
        break;
      case 2:
        // Cap-edge latencies: the slowest machine the validator admits.
        cfg.aluLat = cfg.rotLat = 1u << 12;
        cfg.mulLat64 = cfg.mulLat32 = 1u << 12;
        cfg.mulmodLat = cfg.loadLat = 1u << 12;
        cfg.sboxOnDcacheLat = cfg.sboxCacheLat = 1u << 12;
        cfg.l2HitLat = cfg.memLat = 1u << 12;
        cfg.mispredictPenalty = 1u << 12;
        cfg.dtlbMissLat = 1u << 12;
        break;
      case 3:
        // Cap-edge widths: max_width everywhere (practically
        // unlimited, but through the limited-resource code path).
        cfg.fetchWidth = cfg.issueWidth = 1u << 16;
        cfg.numIntAlu = cfg.numRotUnits = 1u << 16;
        cfg.mulHalfSlots = cfg.numDCachePorts = 1u << 16;
        break;
      default:
        // Large-but-capped structures: a million-line L2, a huge
        // predictor, the biggest admissible TLB product.
        cfg.l2 = {1u << 25, 1, 32}; // 2^20 lines
        cfg.predictorEntries = 1u << 20;
        cfg.pageBytes = 1u << 15;
        cfg.dtlbAssoc = 4;
        cfg.dtlbEntries = 1u << 12;
        break;
    }
    return cfg;
}

/** One deliberate break per config, cycled over the taxonomy. */
MachineConfig
degenerateConfig(Xorshift64 &rng, size_t i)
{
    MachineConfig cfg = randomValid(rng);
    switch (i % 12) {
      case 0: cfg.l1d.blockBytes = 0; break;
      case 1: cfg.l1d = {96, 2, 32}; break; // not a multiple of one set
      case 2: cfg.predictorEntries = 0; break;
      case 3: cfg.aluLat = 0; break;
      case 4: cfg.mulLat64 = 3; cfg.mulLat32 = 9; break;
      case 5: cfg.l2HitLat = 50; cfg.memLat = 10; break;
      case 6: cfg.mulHalfSlots = 1; break; // the livelock pool
      case 7: cfg.l2 = {1u << 31, 1, 32}; break; // 2^26-line bomb
      case 8: cfg.pageBytes = 0; break;
      case 9: cfg.dtlbAssoc = 0; break;
      case 10: cfg.windowSize = (1u << 24) + 1; break;
      default:
        // TLB entries * pageBytes past the 2 GiB backing cap.
        cfg.dtlbAssoc = 4;
        cfg.dtlbEntries = 1u << 16;
        cfg.pageBytes = 1u << 20;
        break;
    }
    return cfg;
}

/** Valid except a non-pow2 count canonicalization must repair. */
MachineConfig
nonPow2Config(Xorshift64 &rng, size_t i)
{
    MachineConfig cfg = randomValid(rng);
    // A value strictly between two powers of two (never pow2 itself).
    auto offPow2 = [&](unsigned lgLo, unsigned lgHi) {
        const unsigned lg = lgLo + static_cast<unsigned>(
            rng.nextBelow(lgHi - lgLo));
        return (1u << lg) + 1
            + static_cast<unsigned>(rng.nextBelow((1u << lg) - 1));
    };
    if (i % 2 == 0) {
        cfg.predictorEntries = offPow2(6, 14);
    } else {
        // Assoc 1 so the rounded-down entry count stays divisible.
        cfg.dtlbAssoc = 1;
        cfg.dtlbEntries = offPow2(4, 10);
    }
    return cfg;
}

/** The livelock shape the watchdog stratum feeds past admission. */
MachineConfig
watchdogConfig(Xorshift64 &rng)
{
    MachineConfig cfg = randomValid(rng);
    cfg.mulHalfSlots = 1;
    return cfg;
}

struct StratumVerdict
{
    std::string name;
    std::string expected;
    size_t configs = 0;
    std::array<uint64_t, driver::num_cell_outcomes> outcomes{};
    size_t mismatches = 0;
    bool passed = false;
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace cryptarch::bench;

    bool quick = false;
    uint64_t seed = 0xC0F12;
    bool isolationGiven = false;
    for (int i = 1; i < argc; i++) {
        if (!std::strcmp(argv[i], "--quick"))
            quick = true;
        else if (!std::strncmp(argv[i], "--seed=", 7))
            seed = std::strtoull(argv[i] + 7, nullptr, 0);
        else if (!std::strncmp(argv[i], "--isolate=", 10))
            isolationGiven = true;
    }

    // The fuzz sweeps must not inherit an outer journal or a tightened
    // progress budget; isolation/deadline stay overridable.
    ::unsetenv("CRYPTARCH_SWEEP_JOURNAL");
    ::unsetenv("CRYPTARCH_SWEEP_CHAOS");
    sim::setProgressBudgetOverride(0);

    SweepOptions opts = sweepOptions(argc, argv);
    if (!isolationGiven && !std::getenv("CRYPTARCH_SWEEP_ISOLATE"))
        opts.isolation = driver::SweepIsolation::Process;
    if (opts.cellDeadlineSeconds <= 0) {
        // Pure backstop: with the watchdog working no cell comes near
        // it, and a cell that does is reaped as `timed_out` — which no
        // stratum expects, so a hang can never pass.
        opts.cellDeadlineSeconds = 120;
    }
    opts.journalPath.clear();

    const size_t sessionBytes = 512;
    struct StratumPlan
    {
        const char *name;
        size_t count;
        CellOutcome expected;
        bool mulqKernels;
        bool disableValidation;
    };
    const StratumPlan plan[] = {
        {"valid", quick ? 20u : 160u, CellOutcome::Ok, false, false},
        {"boundary", quick ? 12u : 120u, CellOutcome::Ok, false, false},
        {"degenerate", quick ? 24u : 160u, CellOutcome::Rejected, false,
         false},
        {"nonpow2", quick ? 8u : 60u, CellOutcome::Ok, false, false},
        {"watchdog", quick ? 4u : 24u, CellOutcome::Stalled, true, true},
    };

    size_t totalConfigs = 0;
    for (const auto &s : plan)
        totalConfigs += s.count;
    std::printf("Config-fuzz harness (%s mode): %zu configs across %zu "
                "strata, seed 0x%llx,\n%s isolation, %.0f s cell "
                "backstop.\n\n",
                quick ? "quick" : "full", totalConfigs,
                std::size(plan), static_cast<unsigned long long>(seed),
                opts.isolation == driver::SweepIsolation::Process
                    ? "process"
                    : "thread",
                opts.cellDeadlineSeconds);

    std::vector<StratumVerdict> verdicts;
    bool allPassed = true;

    for (size_t s = 0; s < std::size(plan); s++) {
        const StratumPlan &stratum = plan[s];
        Xorshift64 rng(seed + s * 0x9E37u);

        std::vector<SweepCell> cells;
        cells.reserve(stratum.count);
        for (size_t i = 0; i < stratum.count; i++) {
            MachineConfig cfg;
            if (!std::strcmp(stratum.name, "valid"))
                cfg = randomValid(rng);
            else if (!std::strcmp(stratum.name, "boundary"))
                cfg = boundaryConfig(rng, i);
            else if (!std::strcmp(stratum.name, "degenerate"))
                cfg = degenerateConfig(rng, i);
            else if (!std::strcmp(stratum.name, "nonpow2"))
                cfg = nonPow2Config(rng, i);
            else
                cfg = watchdogConfig(rng);
            char name[32];
            std::snprintf(name, sizeof(name), "fz-%s-%03zu",
                          stratum.name, i);
            cfg.name = name;
            const FuzzKernel &k = stratum.mulqKernels
                ? mulq_kernels[i % std::size(mulq_kernels)]
                : generic_kernels[i % std::size(generic_kernels)];
            cells.push_back({k.cipher, k.variant, cfg, sessionBytes});
        }

        if (stratum.disableValidation)
            sim::setConfigValidation(false);
        auto results = driver::runCells(cells, opts);
        if (stratum.disableValidation)
            sim::setConfigValidation(true);

        StratumVerdict v;
        v.name = stratum.name;
        v.expected = driver::cellOutcomeName(stratum.expected);
        v.configs = cells.size();
        for (const auto &r : results) {
            v.outcomes[static_cast<size_t>(r.outcome)]++;
            if (r.outcome != stratum.expected) {
                v.mismatches++;
                std::fprintf(stderr,
                             "MISMATCH %s: (%s, %s, %s) expected %s, "
                             "got %s: %s\n",
                             stratum.name,
                             crypto::cipherInfo(r.cipher).name.c_str(),
                             kernels::variantName(r.variant).c_str(),
                             r.model.c_str(), v.expected.c_str(),
                             driver::cellOutcomeName(r.outcome),
                             r.message.c_str());
            }
        }
        v.passed = v.mismatches == 0;
        allPassed = allPassed && v.passed;
        verdicts.push_back(v);
    }

    std::printf("%-12s %8s %10s %22s %10s %7s\n", "Stratum", "configs",
                "expected", "outcomes(ok/rej/stall)", "mismatch",
                "result");
    std::printf("%.74s\n",
                "----------------------------------------------------"
                "----------------------");
    for (const auto &v : verdicts) {
        const auto ok = v.outcomes[static_cast<size_t>(CellOutcome::Ok)];
        const auto rej =
            v.outcomes[static_cast<size_t>(CellOutcome::Rejected)];
        const auto stall =
            v.outcomes[static_cast<size_t>(CellOutcome::Stalled)];
        char triple[32];
        std::snprintf(triple, sizeof(triple), "%llu/%llu/%llu",
                      static_cast<unsigned long long>(ok),
                      static_cast<unsigned long long>(rej),
                      static_cast<unsigned long long>(stall));
        std::printf("%-12s %8zu %10s %22s %10zu %7s\n", v.name.c_str(),
                    v.configs, v.expected.c_str(), triple, v.mismatches,
                    v.passed ? "PASS" : "FAIL");
    }

    std::ofstream out("BENCH_configfuzz.json");
    if (!out)
        throw std::runtime_error("cannot write BENCH_configfuzz.json");
    out << "{\n  \"bench\": \"configfuzz\",\n  \"schema\": 1,\n"
        << "  \"mode\": \"" << (quick ? "quick" : "full")
        << "\", \"seed\": " << seed
        << ", \"total_configs\": " << totalConfigs << ",\n"
        << "  \"strata\": [\n";
    for (size_t i = 0; i < verdicts.size(); i++) {
        const auto &v = verdicts[i];
        out << "    {\"stratum\": \"" << v.name << "\", \"configs\": "
            << v.configs << ", \"expected\": \"" << v.expected
            << "\",\n     \"outcomes\": {";
        for (size_t o = 0; o < driver::num_cell_outcomes; o++)
            out << (o ? ", " : "") << "\""
                << driver::cellOutcomeName(
                       static_cast<CellOutcome>(o))
                << "\": " << v.outcomes[o];
        out << "},\n     \"mismatches\": " << v.mismatches
            << ", \"passed\": " << (v.passed ? "true" : "false") << "}"
            << (i + 1 < verdicts.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"passed\": " << (allPassed ? "true" : "false")
        << "\n}\n";
    if (!out.flush())
        throw std::runtime_error("failed writing BENCH_configfuzz.json");

    std::printf("\n(Stratum verdicts: BENCH_configfuzz.json. Every cell "
                "must land on its\nstratum's expected outcome — zero "
                "hangs, zero crashes, zero untyped errors.)\n");
    return allPassed ? 0 : 1;
}
