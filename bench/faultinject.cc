/**
 * @file
 * Fault-injection coverage sweep: how much of the verification layer's
 * safety net actually catches.
 *
 * For each (cipher, variant, site) cell, a run of seeded single-bit
 * faults is injected — into architectural registers mid-run, into
 * kernel-touched data memory mid-run, or into the serialized packed
 * trace — and each injection is classified (src/verify/faults.hh):
 * detected by a machine trap, by the record-time oracle, by the trace
 * integrity check, or masked. The table reports detection coverage
 * (fraction not masked) per cell; per-class counts go to
 * BENCH_faults.json.
 *
 * Masked faults are not failures: a flipped bit in a stale key byte,
 * an already-consumed register, or a dead scratch word changes nothing
 * any check can observe — the measured coverage is the honest number,
 * which is why it is benched rather than asserted at 100%.
 *
 * Usage: faultinject [--quick]
 *   --quick  CI smoke mode: 2 ciphers x 1 variant, 8 injections/site.
 *
 * JSON shape (hand-rolled; this bench has tallies, not SimStats):
 *
 *   {
 *     "bench": "faults",
 *     "schema": 1,
 *     "session_bytes": N, "injections_per_cell": N,
 *     "results": [
 *       {"cipher": "...", "variant": "...", "site": "register",
 *        "injections": N, "detected_trap": N, "detected_oracle": N,
 *        "detected_trace": N, "masked": N, "coverage": x}, ...
 *     ],
 *     "totals": { per-site and overall aggregate of the same fields }
 *   }
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench/common.hh"
#include "verify/faults.hh"

namespace
{

using namespace cryptarch;
using verify::FaultSite;
using verify::FaultTally;

constexpr FaultSite all_sites[] = {FaultSite::Register,
                                   FaultSite::Memory,
                                   FaultSite::TraceByte};

struct CellTally
{
    crypto::CipherId cipher;
    kernels::KernelVariant variant;
    FaultSite site;
    FaultTally tally;
};

void
tallyJson(std::ofstream &out, const FaultTally &t)
{
    out << "\"injections\": " << t.injections
        << ", \"detected_trap\": " << t.detectedTrap
        << ", \"detected_oracle\": " << t.detectedOracle
        << ", \"detected_trace\": " << t.detectedTrace
        << ", \"masked\": " << t.masked << ", \"coverage\": ";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.4f", t.coverage());
    out << buf;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace cryptarch::bench;
    using kernels::KernelVariant;

    bool quick = false;
    for (int i = 1; i < argc; i++)
        if (!std::strcmp(argv[i], "--quick"))
            quick = true;

    // Small sessions keep hundreds of functional runs cheap; fault
    // coverage is a per-instruction property, not a per-session one.
    const size_t bytes = 256;
    const unsigned perCell = quick ? 8 : 32;
    const std::vector<crypto::CipherId> ciphers =
        quick ? std::vector<crypto::CipherId>{crypto::CipherId::RC4,
                                              crypto::CipherId::Rijndael}
              : allCiphers();
    const std::vector<KernelVariant> variants =
        quick ? std::vector<KernelVariant>{KernelVariant::Optimized}
              : std::vector<KernelVariant>{KernelVariant::BaselineRot,
                                           KernelVariant::Optimized};

    std::printf("Fault-injection detection coverage (%s mode, %u "
                "injections/cell,\n%zu-byte sessions; detected by "
                "trap / oracle / trace check, else masked).\n\n",
                quick ? "quick" : "full", perCell, bytes);
    std::printf("%-10s %-12s %-9s %6s %6s %7s %6s %7s %9s\n", "Cipher",
                "Variant", "Site", "inj", "trap", "oracle", "trace",
                "masked", "coverage");
    std::printf("%.80s\n",
                "----------------------------------------------------"
                "----------------------------");

    std::vector<CellTally> cells;
    FaultTally siteTotals[3];
    for (auto id : ciphers) {
        for (auto v : variants) {
            for (auto site : all_sites) {
                // Seed base separates cells so adding a cipher never
                // re-deals another cell's faults.
                const uint64_t seed0 =
                    (static_cast<uint64_t>(id) << 16)
                    + (static_cast<uint64_t>(v) << 8)
                    + static_cast<uint64_t>(site) * 41;
                auto tally = verify::injectionSweep(id, v, site, seed0,
                                                    perCell, bytes);
                std::printf(
                    "%-10s %-12s %-9s %6llu %6llu %7llu %6llu %7llu "
                    "%8.1f%%\n",
                    crypto::cipherInfo(id).name.c_str(),
                    kernels::variantName(v).c_str(),
                    verify::faultSiteName(site),
                    static_cast<unsigned long long>(tally.injections),
                    static_cast<unsigned long long>(tally.detectedTrap),
                    static_cast<unsigned long long>(tally.detectedOracle),
                    static_cast<unsigned long long>(tally.detectedTrace),
                    static_cast<unsigned long long>(tally.masked),
                    100.0 * tally.coverage());
                cells.push_back({id, v, site, tally});
                auto &agg = siteTotals[static_cast<size_t>(site)];
                agg.injections += tally.injections;
                agg.detectedTrap += tally.detectedTrap;
                agg.detectedOracle += tally.detectedOracle;
                agg.detectedTrace += tally.detectedTrace;
                agg.masked += tally.masked;
            }
        }
    }

    FaultTally overall;
    std::printf("%.80s\n",
                "----------------------------------------------------"
                "----------------------------");
    for (auto site : all_sites) {
        const auto &agg = siteTotals[static_cast<size_t>(site)];
        std::printf("%-10s %-12s %-9s %6llu %6llu %7llu %6llu %7llu "
                    "%8.1f%%\n",
                    "all", "all", verify::faultSiteName(site),
                    static_cast<unsigned long long>(agg.injections),
                    static_cast<unsigned long long>(agg.detectedTrap),
                    static_cast<unsigned long long>(agg.detectedOracle),
                    static_cast<unsigned long long>(agg.detectedTrace),
                    static_cast<unsigned long long>(agg.masked),
                    100.0 * agg.coverage());
        overall.injections += agg.injections;
        overall.detectedTrap += agg.detectedTrap;
        overall.detectedOracle += agg.detectedOracle;
        overall.detectedTrace += agg.detectedTrace;
        overall.masked += agg.masked;
    }

    std::ofstream out("BENCH_faults.json");
    if (!out)
        throw std::runtime_error("cannot write BENCH_faults.json");
    out << "{\n  \"bench\": \"faults\",\n  \"schema\": 1,\n"
        << "  \"session_bytes\": " << bytes
        << ", \"injections_per_cell\": " << perCell
        << ",\n  \"results\": [\n";
    for (size_t i = 0; i < cells.size(); i++) {
        const auto &c = cells[i];
        out << "    {\"cipher\": \""
            << crypto::cipherInfo(c.cipher).name << "\", \"variant\": \""
            << kernels::variantName(c.variant) << "\", \"site\": \""
            << verify::faultSiteName(c.site) << "\",\n     ";
        tallyJson(out, c.tally);
        out << "}" << (i + 1 < cells.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"totals\": {\n";
    for (auto site : all_sites) {
        out << "    \"" << verify::faultSiteName(site) << "\": {";
        tallyJson(out, siteTotals[static_cast<size_t>(site)]);
        out << "},\n";
    }
    out << "    \"overall\": {";
    tallyJson(out, overall);
    out << "}\n  }\n}\n";
    if (!out.flush())
        throw std::runtime_error("failed writing BENCH_faults.json");

    std::printf("\n(Per-cell classification counts: BENCH_faults.json. "
                "Trace-byte faults\nare caught by the stream checksum "
                "essentially always; register and memory\ncoverage is "
                "bounded by genuinely dead state — stale bytes and "
                "consumed\nvalues no check can observe.)\n");
    return overall.injections ? 0 : 1;
}
