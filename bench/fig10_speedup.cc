/**
 * @file
 * Regenerates paper Figure 10: relative performance of the optimized
 * kernels.
 *
 * All bars are speedups in total cycles for a 4 KB session,
 * normalized to the original code *with rotates* on the baseline 4W
 * machine (the paper's normalization: "many architectures have fast
 * rotates").
 *
 *   Orig/4W   original code WITHOUT rotate instructions on 4W — shows
 *             the cost of lacking rotates (paper: Mars -40%, RC6 -24%)
 *   Opt/4W    optimized kernels on 4W (paper: average +59%, IDEA +159%,
 *             Rijndael ~2x, Blowfish/3DES/RC4/Twofish ~+50%)
 *   Opt/4W+   plus SBox caches and extra rotator/XBOX units
 *   Opt/8W+   double execution bandwidth
 *   Opt/DF    dataflow upper bound for the optimized code
 *
 * The grid runs through the bench driver: three functional passes per
 * cipher (one per kernel variant), each trace replayed into every
 * model in parallel. Per-model SimStats: BENCH_fig10.json.
 */

#include <cmath>
#include <cstdio>

#include "bench/common.hh"

int
main()
{
    using namespace cryptarch;
    using namespace cryptarch::bench;
    using kernels::KernelVariant;

    auto results = driver::runCells(driver::fig10Cells());

    std::printf("Figure 10. Relative Performance of the Optimized "
                "Kernels\n(speedup vs original-with-rotates on 4W, "
                "4KB session).\n\n");
    std::printf("%-10s %9s %9s %9s %9s %9s\n", "Cipher", "Orig/4W",
                "Opt/4W", "Opt/4W+", "Opt/8W+", "Opt/DF");
    std::printf("%.62s\n",
                "----------------------------------------------------"
                "----------");

    double prod_opt4 = 1.0, prod_orig = 1.0;
    int n = 0;
    for (auto id : allCiphers()) {
        const auto &info = crypto::cipherInfo(id);
        auto cycles = [&](KernelVariant v, const char *model) {
            return static_cast<double>(
                driver::findResult(results, id, v, model).stats.cycles);
        };
        double b = cycles(KernelVariant::BaselineRot, "4W");
        double orig = cycles(KernelVariant::BaselineNoRot, "4W");
        double opt4 = cycles(KernelVariant::Optimized, "4W");
        double opt4p = cycles(KernelVariant::Optimized, "4W+");
        double opt8 = cycles(KernelVariant::Optimized, "8W+");
        double optdf = cycles(KernelVariant::Optimized, "DF");
        std::printf("%-10s %9.2f %9.2f %9.2f %9.2f %9.2f\n",
                    info.name.c_str(), b / orig, b / opt4, b / opt4p,
                    b / opt8, b / optdf);
        prod_opt4 *= b / opt4;
        prod_orig *= b / orig;
        n++;
    }
    double gm_opt4 = std::pow(prod_opt4, 1.0 / n);
    double gm_orig = std::pow(prod_orig, 1.0 / n);
    std::printf("%.62s\n",
                "----------------------------------------------------"
                "----------");
    std::printf("%-10s %9.2f %9.2f\n", "geomean", gm_orig, gm_opt4);

    driver::writeBenchJson("BENCH_fig10.json", "fig10", results);
    std::printf("\nOpt/4W mean speedup over rotate baseline: %+.0f%%; "
                "over rotate-less\nbaseline: %+.0f%% (paper: +59%% and "
                "+74%%). Full per-model stats:\nBENCH_fig10.json.\n",
                100.0 * (gm_opt4 - 1.0),
                100.0 * (gm_opt4 / gm_orig - 1.0));
    return 0;
}
