/**
 * @file
 * Regenerates paper Figure 10: relative performance of the optimized
 * kernels.
 *
 * All bars are speedups in total cycles for a 4 KB session,
 * normalized to the original code *with rotates* on the baseline 4W
 * machine (the paper's normalization: "many architectures have fast
 * rotates").
 *
 *   Orig/4W   original code WITHOUT rotate instructions on 4W — shows
 *             the cost of lacking rotates (paper: Mars -40%, RC6 -24%)
 *   Opt/4W    optimized kernels on 4W (paper: average +59%, IDEA +159%,
 *             Rijndael ~2x, Blowfish/3DES/RC4/Twofish ~+50%)
 *   Opt/4W+   plus SBox caches and extra rotator/XBOX units
 *   Opt/8W+   double execution bandwidth
 *   Opt/DF    dataflow upper bound for the optimized code
 */

#include <cmath>
#include <cstdio>

#include "bench/common.hh"

int
main()
{
    using namespace cryptarch;
    using namespace cryptarch::bench;
    using kernels::KernelVariant;
    using sim::MachineConfig;

    std::printf("Figure 10. Relative Performance of the Optimized "
                "Kernels\n(speedup vs original-with-rotates on 4W, "
                "4KB session).\n\n");
    std::printf("%-10s %9s %9s %9s %9s %9s\n", "Cipher", "Orig/4W",
                "Opt/4W", "Opt/4W+", "Opt/8W+", "Opt/DF");
    std::printf("%.62s\n",
                "----------------------------------------------------"
                "----------");

    double prod_opt4 = 1.0, prod_orig = 1.0;
    int n = 0;
    for (auto id : allCiphers()) {
        const auto &info = crypto::cipherInfo(id);
        auto base = timeKernel(id, KernelVariant::BaselineRot,
                               MachineConfig::fourWide());
        auto orig = timeKernel(id, KernelVariant::BaselineNoRot,
                               MachineConfig::fourWide());
        auto opt4 = timeKernel(id, KernelVariant::Optimized,
                               MachineConfig::fourWide());
        auto opt4p = timeKernel(id, KernelVariant::Optimized,
                                MachineConfig::fourWidePlus());
        auto opt8 = timeKernel(id, KernelVariant::Optimized,
                               MachineConfig::eightWidePlus());
        auto optdf = timeKernel(id, KernelVariant::Optimized,
                                MachineConfig::dataflow());
        double b = static_cast<double>(base.cycles);
        std::printf("%-10s %9.2f %9.2f %9.2f %9.2f %9.2f\n",
                    info.name.c_str(), b / orig.cycles, b / opt4.cycles,
                    b / opt4p.cycles, b / opt8.cycles, b / optdf.cycles);
        prod_opt4 *= b / opt4.cycles;
        prod_orig *= b / orig.cycles;
        n++;
    }
    double gm_opt4 = std::pow(prod_opt4, 1.0 / n);
    double gm_orig = std::pow(prod_orig, 1.0 / n);
    std::printf("%.62s\n",
                "----------------------------------------------------"
                "----------");
    std::printf("%-10s %9.2f %9.2f\n", "geomean", gm_orig, gm_opt4);
    std::printf("\nOpt/4W mean speedup over rotate baseline: %+.0f%%; "
                "over rotate-less\nbaseline: %+.0f%% (paper: +59%% and "
                "+74%%).\n",
                100.0 * (gm_opt4 - 1.0),
                100.0 * (gm_opt4 / gm_orig - 1.0));
    return 0;
}
