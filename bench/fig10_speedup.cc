/**
 * @file
 * Regenerates paper Figure 10: relative performance of the optimized
 * kernels.
 *
 * All bars are speedups in total cycles for a 4 KB session,
 * normalized to the original code *with rotates* on the baseline 4W
 * machine (the paper's normalization: "many architectures have fast
 * rotates").
 *
 *   Orig/4W   original code WITHOUT rotate instructions on 4W — shows
 *             the cost of lacking rotates (paper: Mars -40%, RC6 -24%)
 *   Opt/4W    optimized kernels on 4W (paper: average +59%, IDEA +159%,
 *             Rijndael ~2x, Blowfish/3DES/RC4/Twofish ~+50%)
 *   Opt/4W+   plus SBox caches and extra rotator/XBOX units
 *   Opt/8W+   double execution bandwidth
 *   Opt/DF    dataflow upper bound for the optimized code
 *
 * The grid runs through the bench driver: three functional passes per
 * cipher (one per kernel variant), each trace replayed into every
 * model in parallel. Per-model SimStats: BENCH_fig10.json.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench/common.hh"

int
main(int argc, char **argv)
{
    using namespace cryptarch;
    using namespace cryptarch::bench;
    using kernels::KernelVariant;

    auto results =
        driver::runCells(driver::fig10Cells(), sweepOptions(argc, argv));

    std::printf("Figure 10. Relative Performance of the Optimized "
                "Kernels\n(speedup vs original-with-rotates on 4W, "
                "4KB session).\n\n");
    std::printf("%-10s %9s %9s %9s %9s %9s\n", "Cipher", "Orig/4W",
                "Opt/4W", "Opt/4W+", "Opt/8W+", "Opt/DF");
    std::printf("%.62s\n",
                "----------------------------------------------------"
                "----------");

    double prod_opt4 = 1.0, prod_orig = 1.0;
    int n = 0;
    for (auto id : allCiphers()) {
        const auto &info = crypto::cipherInfo(id);
        auto cell = [&](KernelVariant v,
                        const char *model) -> const driver::SweepResult & {
            return driver::findResult(results, id, v, model);
        };
        const auto &base = cell(KernelVariant::BaselineRot, "4W");
        const auto &orig = cell(KernelVariant::BaselineNoRot, "4W");
        const auto &opt4 = cell(KernelVariant::Optimized, "4W");
        const auto &opt4p = cell(KernelVariant::Optimized, "4W+");
        const auto &opt8 = cell(KernelVariant::Optimized, "8W+");
        const auto &optdf = cell(KernelVariant::Optimized, "DF");
        const double b = static_cast<double>(base.stats.cycles);
        auto speedup = [&](const driver::SweepResult &r) {
            return gridCell(base.ok() && r.ok(), "%.2f",
                            b / static_cast<double>(
                                std::max<uint64_t>(r.stats.cycles, 1)));
        };
        std::printf("%-10s %9s %9s %9s %9s %9s\n", info.name.c_str(),
                    speedup(orig).c_str(), speedup(opt4).c_str(),
                    speedup(opt4p).c_str(), speedup(opt8).c_str(),
                    speedup(optdf).c_str());
        // The geomean covers the ciphers whose cells all produced
        // stats; a failed cell drops its cipher rather than poisoning
        // the summary.
        if (base.ok() && orig.ok() && opt4.ok()) {
            prod_opt4 *= b / static_cast<double>(opt4.stats.cycles);
            prod_orig *= b / static_cast<double>(orig.stats.cycles);
            n++;
        }
    }
    double gm_opt4 = n ? std::pow(prod_opt4, 1.0 / n) : 0.0;
    double gm_orig = n ? std::pow(prod_orig, 1.0 / n) : 1.0;
    std::printf("%.62s\n",
                "----------------------------------------------------"
                "----------");
    std::printf("%-10s %9.2f %9.2f\n", "geomean", gm_orig, gm_opt4);

    driver::writeBenchJson("BENCH_fig10.json", "fig10", results);
    std::printf("\nOpt/4W mean speedup over rotate baseline: %+.0f%%; "
                "over rotate-less\nbaseline: %+.0f%% (paper: +59%% and "
                "+74%%). Full per-model stats:\nBENCH_fig10.json.\n",
                100.0 * (gm_opt4 - 1.0),
                100.0 * (gm_opt4 / gm_orig - 1.0));
    return reportFailedCells(results);
}
