/**
 * @file
 * Chaos harness: does the crash-safe sweep layer actually survive the
 * faults it claims to?
 *
 * Each scenario runs a small (cipher x model) grid under process
 * isolation with an env-triggered fault point armed
 * (CRYPTARCH_SWEEP_CHAOS, src/driver/procpool.hh): a worker that
 * segfaults, aborts, or exits mid-sweep must cost exactly the faulted
 * cell (outcome `crashed`), a hung worker must be reaped by the
 * watchdog (outcome `timed_out`), and every other cell of the grid
 * must finish `ok`. A final scenario records a checkpoint journal
 * through a crash and re-runs against it, requiring the resumed
 * BENCH json to be byte-identical to the first run's.
 *
 * The scenarios assert on observed outcomes and the bench exits
 * nonzero if any expectation fails, so it doubles as an end-to-end
 * test in CI (sanitizer jobs run `chaos --quick`).
 *
 * Usage: chaos [--quick]
 *   --quick  CI smoke mode: smaller grid, fewer scenarios.
 *
 * JSON shape (hand-rolled; this bench has verdicts, not SimStats):
 *
 *   {
 *     "bench": "chaos",
 *     "schema": 1,
 *     "results": [
 *       {"scenario": "...", "action": "...", "targets": N,
 *        "expected": "crashed", "matched": N,
 *        "ok_cells": N, "total_cells": N, "passed": true}, ...
 *     ],
 *     "passed": true
 *   }
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench/common.hh"

namespace
{

using namespace cryptarch;
using driver::CellOutcome;
using driver::SweepCell;
using driver::SweepOptions;
using driver::SweepResult;

/** One armed fault and the outcome it must produce. */
struct Target
{
    std::string spec; ///< "action@Cipher/Variant/Model"
    crypto::CipherId cipher;
    sim::MachineConfig model;
    CellOutcome expected;
};

struct Verdict
{
    std::string scenario;
    std::string action;
    size_t targets = 0;
    std::string expected;
    size_t matched = 0;
    size_t okCells = 0;
    size_t totalCells = 0;
    bool passed = false;
};

std::string
chaosSpecFor(const char *action, crypto::CipherId cipher,
             const sim::MachineConfig &model)
{
    return std::string(action) + "@" + crypto::cipherInfo(cipher).name + "/"
        + kernels::variantName(kernels::KernelVariant::Optimized) + "/"
        + model.name;
}

/** Whole-file contents, for byte-identity comparison. */
std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw std::runtime_error("cannot read " + path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace cryptarch::bench;
    using kernels::KernelVariant;

    bool quick = false;
    for (int i = 1; i < argc; i++)
        if (!std::strcmp(argv[i], "--quick"))
            quick = true;

    // Small sessions: chaos measures the supervisor, not the ciphers.
    const size_t bytes = 1024;
    const std::vector<crypto::CipherId> ciphers = quick
        ? std::vector<crypto::CipherId>{crypto::CipherId::RC4,
                                        crypto::CipherId::Rijndael}
        : std::vector<crypto::CipherId>{
              crypto::CipherId::RC4, crypto::CipherId::Rijndael,
              crypto::CipherId::Blowfish, crypto::CipherId::IDEA};
    const std::vector<sim::MachineConfig> models = quick
        ? std::vector<sim::MachineConfig>{sim::MachineConfig::fourWide()}
        : std::vector<sim::MachineConfig>{sim::MachineConfig::fourWide(),
                                          sim::MachineConfig::dataflow()};

    std::vector<SweepCell> cells;
    for (auto id : ciphers)
        for (const auto &m : models)
            cells.push_back({id, KernelVariant::Optimized, m, bytes});

    // The faulted sweeps must not inherit an outer journal/isolation
    // environment; each scenario builds its options from scratch.
    ::unsetenv("CRYPTARCH_SWEEP_ISOLATE");
    ::unsetenv("CRYPTARCH_SWEEP_JOURNAL");

    std::vector<Verdict> verdicts;

    auto runScenario = [&](const std::string &name, const char *action,
                           const std::vector<Target> &targets,
                           double deadline) {
        SweepOptions opts;
        opts.isolation = driver::SweepIsolation::Process;
        opts.cellDeadlineSeconds = deadline;
        std::string spec;
        for (const auto &t : targets)
            spec += (spec.empty() ? "" : ";") + t.spec;
        if (spec.empty())
            ::unsetenv("CRYPTARCH_SWEEP_CHAOS");
        else
            ::setenv("CRYPTARCH_SWEEP_CHAOS", spec.c_str(), 1);

        auto results = driver::runCells(cells, opts);
        ::unsetenv("CRYPTARCH_SWEEP_CHAOS");

        Verdict v;
        v.scenario = name;
        v.action = action;
        v.targets = targets.size();
        v.expected = targets.empty()
            ? "ok"
            : driver::cellOutcomeName(targets[0].expected);
        v.totalCells = results.size();
        for (const auto &r : results)
            if (r.ok())
                v.okCells++;
        for (const auto &t : targets) {
            const auto &r =
                driver::findResult(results, t.cipher,
                                   KernelVariant::Optimized, t.model.name);
            if (r.outcome == t.expected)
                v.matched++;
        }
        // Pass = every armed fault classified as expected AND every
        // unfaulted cell survived with real stats.
        v.passed = v.matched == v.targets
            && v.okCells == v.totalCells - v.targets;
        verdicts.push_back(v);
        return results;
    };

    auto target = [&](const char *action, crypto::CipherId cipher,
                      const sim::MachineConfig &model,
                      CellOutcome expected) -> Target {
        return {chaosSpecFor(action, cipher, model), cipher, model,
                expected};
    };

    std::printf("Chaos harness (%s mode): %zu-cell grid, process "
                "isolation.\n\n",
                quick ? "quick" : "full", cells.size());

    runScenario("baseline", "none", {}, 0);
    runScenario("crash", "crash",
                {target("crash", ciphers[0], models[0],
                        CellOutcome::Crashed)},
                0);
    if (!quick) {
        runScenario("abort", "abort",
                    {target("abort", ciphers[1], models.back(),
                            CellOutcome::Crashed)},
                    0);
        runScenario("exit", "exit",
                    {target("exit", ciphers[2], models[0],
                            CellOutcome::Crashed)},
                    0);
        runScenario("multi-crash", "crash",
                    {target("crash", ciphers[0], models[0],
                            CellOutcome::Crashed),
                     target("crash", ciphers[3], models.back(),
                            CellOutcome::Crashed)},
                    0);
    }
    runScenario("hang", "hang",
                {target("hang", ciphers.back(), models[0],
                        CellOutcome::TimedOut)},
                quick ? 1.0 : 2.0);

    // Resume scenario: a journaled run that crashes one cell, then a
    // second run against the same journal. Every journaled cell —
    // including the crashed one — must replay verbatim, making the
    // emitted artifacts byte-identical (the chaos point stays armed on
    // the rerun but can never fire: the cell is never re-dispatched).
    {
        const char *journalPath = "chaos_journal.bin";
        const char *json1 = "BENCH_chaos_run1.json";
        const char *json2 = "BENCH_chaos_run2.json";
        std::remove(journalPath);
        SweepOptions opts;
        opts.isolation = driver::SweepIsolation::Process;
        opts.journalPath = journalPath;
        const auto t =
            target("crash", ciphers[0], models[0], CellOutcome::Crashed);
        ::setenv("CRYPTARCH_SWEEP_CHAOS", t.spec.c_str(), 1);
        auto run1 = driver::runCells(cells, opts);
        driver::writeBenchJson(json1, "chaos", run1);
        auto run2 = driver::runCells(cells, opts);
        driver::writeBenchJson(json2, "chaos", run2);
        ::unsetenv("CRYPTARCH_SWEEP_CHAOS");

        Verdict v;
        v.scenario = "journal-resume";
        v.action = "crash";
        v.targets = 1;
        v.expected = "byte-identical";
        v.totalCells = run1.size();
        for (const auto &r : run2)
            if (r.ok())
                v.okCells++;
        const bool identical = slurp(json1) == slurp(json2);
        const auto &crashed = driver::findResult(
            run2, t.cipher, KernelVariant::Optimized, t.model.name);
        v.matched = identical
                && crashed.outcome == CellOutcome::Crashed
            ? 1
            : 0;
        v.passed = v.matched == 1 && v.okCells == v.totalCells - 1;
        verdicts.push_back(v);
        std::remove(journalPath);
        std::remove(json1);
        std::remove(json2);
    }

    std::printf("%-16s %-7s %8s %15s %8s %10s %7s\n", "Scenario",
                "Action", "faults", "expected", "matched", "ok/total",
                "result");
    std::printf("%.78s\n",
                "----------------------------------------------------"
                "--------------------------");
    bool allPassed = true;
    for (const auto &v : verdicts) {
        std::printf("%-16s %-7s %8zu %15s %5zu/%zu %7zu/%-2zu %7s\n",
                    v.scenario.c_str(), v.action.c_str(), v.targets,
                    v.expected.c_str(), v.matched, v.targets, v.okCells,
                    v.totalCells, v.passed ? "PASS" : "FAIL");
        allPassed = allPassed && v.passed;
    }

    std::ofstream out("BENCH_chaos.json");
    if (!out)
        throw std::runtime_error("cannot write BENCH_chaos.json");
    out << "{\n  \"bench\": \"chaos\",\n  \"schema\": 1,\n"
        << "  \"results\": [\n";
    for (size_t i = 0; i < verdicts.size(); i++) {
        const auto &v = verdicts[i];
        out << "    {\"scenario\": \"" << v.scenario
            << "\", \"action\": \"" << v.action
            << "\", \"targets\": " << v.targets << ", \"expected\": \""
            << v.expected << "\",\n     \"matched\": " << v.matched
            << ", \"ok_cells\": " << v.okCells
            << ", \"total_cells\": " << v.totalCells << ", \"passed\": "
            << (v.passed ? "true" : "false") << "}"
            << (i + 1 < verdicts.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"passed\": " << (allPassed ? "true" : "false")
        << "\n}\n";
    if (!out.flush())
        throw std::runtime_error("failed writing BENCH_chaos.json");

    std::printf("\n(Scenario verdicts: BENCH_chaos.json. Every fault "
                "costs exactly its own\ncell; the rest of the grid "
                "finishes with real stats, and a journaled rerun\n"
                "reproduces the first run's artifact byte for byte.)\n");
    return allPassed ? 0 : 1;
}
