/**
 * @file
 * Regenerates paper Figure 4: cipher encryption performance in bytes
 * per 1000 cycles for
 *
 *   IPB        the 1-CPI machine (pure dynamic instruction count)
 *   21264-cls  the 4W model standing in for the measured 600 MHz
 *              Alpha 21264 (the paper validated the two agree within
 *              10-15%; we have no Alpha hardware — see DESIGN.md 2.2)
 *   4W         the baseline 4-wide out-of-order model
 *   DF         the dataflow upper bound
 *
 * Kernels are the BaselineRot variants (original code with rotate
 * instructions) over a 4 KB CBC session.
 *
 * Paper shape: 3DES slowest (~7 B/kcycle on 4W), RC4 fastest (~88,
 * >10x 3DES), Rijndael leads the AES candidates (~49); Blowfish, IDEA
 * and RC6 run within ~10% of dataflow speed while RC4 and Rijndael
 * have large DF headroom.
 */

#include <cstdio>

#include "bench/common.hh"

int
main()
{
    using namespace cryptarch;
    using namespace cryptarch::bench;

    std::printf("Figure 4. Cipher Encryption Performance "
                "(bytes/1000 cycles, 4KB session).\n\n");
    std::printf("%-10s %10s %12s %10s %10s %8s\n", "Cipher", "1-CPI",
                "21264-class", "4W", "DF", "4W IPC");
    std::printf("%.64s\n",
                "----------------------------------------------------"
                "------------");

    for (auto id : allCiphers()) {
        const auto &info = crypto::cipherInfo(id);
        auto variant = kernels::KernelVariant::BaselineRot;
        uint64_t insts = countInsts(id, variant);
        auto w4 = timeKernel(id, variant, sim::MachineConfig::fourWide());
        auto df = timeKernel(id, variant, sim::MachineConfig::dataflow());
        std::printf("%-10s %10.2f %12.2f %10.2f %10.2f %8.2f\n",
                    info.name.c_str(), bytesPerKiloCycle(insts),
                    bytesPerKiloCycle(w4.cycles),
                    bytesPerKiloCycle(w4.cycles),
                    bytesPerKiloCycle(df.cycles), w4.ipc());
    }

    std::printf("\n(On a 1 GHz part the same numbers read as MB/s; the "
                "paper's 3DES\nobservation: too slow to saturate a "
                "T3 line.)\n");
    return 0;
}
