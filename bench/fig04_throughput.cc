/**
 * @file
 * Regenerates paper Figure 4: cipher encryption performance in bytes
 * per 1000 cycles for
 *
 *   IPB        the 1-CPI machine (pure dynamic instruction count)
 *   21264-cls  a 21264-parameterized 4-wide core standing in for the
 *              measured 600 MHz Alpha 21264 (the paper validated its
 *              simulator against real hardware within 10-15%; we have
 *              no Alpha hardware — see DESIGN.md 2.2 and
 *              sim::MachineConfig::alpha21264())
 *   4W         the baseline 4-wide out-of-order model
 *   DF         the dataflow upper bound
 *
 * Kernels are the BaselineRot variants (original code with rotate
 * instructions) over a 4 KB CBC session. The whole grid runs through
 * the bench driver: each cipher is functionally interpreted once and
 * the recorded trace replays into all three timing models in parallel.
 * The full per-model SimStats land in BENCH_fig04.json.
 *
 * Paper shape: 3DES slowest (~7 B/kcycle on 4W), RC4 fastest (~88,
 * >10x 3DES), Rijndael leads the AES candidates (~49); Blowfish, IDEA
 * and RC6 run within ~10% of dataflow speed while RC4 and Rijndael
 * have large DF headroom.
 */

#include <cstdio>

#include "bench/common.hh"

int
main(int argc, char **argv)
{
    using namespace cryptarch;
    using namespace cryptarch::bench;

    auto variant = kernels::KernelVariant::BaselineRot;
    auto results =
        driver::runSweep(driver::fig04Spec(), sweepOptions(argc, argv));

    std::printf("Figure 4. Cipher Encryption Performance "
                "(bytes/1000 cycles, 4KB session).\n\n");
    std::printf("%-10s %10s %12s %10s %10s %8s\n", "Cipher", "1-CPI",
                "21264-class", "4W", "DF", "4W IPC");
    std::printf("%.64s\n",
                "----------------------------------------------------"
                "------------");

    for (auto id : allCiphers()) {
        const auto &info = crypto::cipherInfo(id);
        const auto &a21 = driver::findResult(results, id, variant, "21264");
        const auto &w4 = driver::findResult(results, id, variant, "4W");
        const auto &df = driver::findResult(results, id, variant, "DF");
        std::printf(
            "%-10s %10s %12s %10s %10s %8s\n", info.name.c_str(),
            gridCell(w4.ok(), "%.2f",
                     bytesPerKiloCycle(w4.stats.instructions,
                                       session_bytes))
                .c_str(),
            gridCell(a21.ok(), "%.2f",
                     bytesPerKiloCycle(a21.stats.cycles, session_bytes))
                .c_str(),
            gridCell(w4.ok(), "%.2f",
                     bytesPerKiloCycle(w4.stats.cycles, session_bytes))
                .c_str(),
            gridCell(df.ok(), "%.2f",
                     bytesPerKiloCycle(df.stats.cycles, session_bytes))
                .c_str(),
            gridCell(w4.ok(), "%.2f", w4.stats.ipc()).c_str());
    }

    driver::writeBenchJson("BENCH_fig04.json", "fig04", results);
    std::printf("\n(On a 1 GHz part the same numbers read as MB/s; the "
                "paper's 3DES\nobservation: too slow to saturate a "
                "T3 line. Full per-model stats:\nBENCH_fig04.json.)\n");
    return reportFailedCells(results);
}
