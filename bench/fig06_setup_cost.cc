/**
 * @file
 * Regenerates paper Figure 6: key-setup cost as a fraction of total
 * session run time, against session length.
 *
 * Setup instruction counts are analytic per-cipher estimates
 * (documented beside each cipher's setupOpEstimate()); kernel cycles
 * come from the 4W model. Paper shape: 3DES and IDEA have negligible
 * setup even at 16 bytes; most ciphers drop below 10% by 4 KB;
 * Blowfish — whose setup runs the cipher 521 times, the work of
 * encrypting ~8 KB — only drops below 10% past 64 KB.
 */

#include <cstdio>

#include "bench/common.hh"

int
main()
{
    using namespace cryptarch;
    using namespace cryptarch::bench;

    const size_t lengths[] = {16,   64,   256,   1024,
                              4096, 16384, 65536};

    std::printf("Figure 6. Setup Cost as a Function of Session Length\n"
                "(setup cycles as %% of total session cycles, 4W "
                "machine).\n\n");
    std::printf("%-10s", "Cipher");
    for (size_t l : lengths) {
        if (l >= 1024)
            std::printf("%7zuK", l / 1024);
        else
            std::printf("%7zuB", l);
    }
    std::printf("\n%.66s\n",
                "----------------------------------------------------"
                "--------------");

    for (auto id : allCiphers()) {
        const auto &info = crypto::cipherInfo(id);
        // Setup cycles: estimated instructions over the kernel's IPC.
        uint64_t setup_insts = info.isStream
            ? crypto::makeStreamCipher(id)->setupOpEstimate()
            : crypto::makeBlockCipher(id)->setupOpEstimate();
        // The probe's session length and the per-byte divisor must
        // agree: both are spelled explicitly.
        auto probe = timeKernel(id, kernels::KernelVariant::BaselineRot,
                                sim::MachineConfig::fourWide(),
                                session_bytes);
        double cycles_per_byte =
            static_cast<double>(probe.cycles) / session_bytes;
        double setup_cycles =
            static_cast<double>(setup_insts) / probe.ipc();

        std::printf("%-10s", info.name.c_str());
        for (size_t l : lengths) {
            size_t bytes = std::max<size_t>(l, info.blockBytes);
            double kernel_cycles = cycles_per_byte * bytes;
            double frac = setup_cycles / (setup_cycles + kernel_cycles);
            std::printf("%7.1f%%", 100.0 * frac);
        }
        std::printf("\n");
    }

    // The outlier, measured instead of estimated: run the Blowfish
    // key-setup kernel itself through the simulator.
    {
        Workload w = makeWorkload(crypto::CipherId::Blowfish);
        auto setup = kernels::buildBlowfishSetupKernel(
            kernels::KernelVariant::BaselineRot, w.key);
        isa::Machine m;
        for (const auto &[addr, bytes] : setup.memInit)
            m.writeMem(addr, bytes);
        sim::OooScheduler sched(sim::MachineConfig::fourWide());
        m.run(setup.program, &sched, 1ull << 30);
        auto s = sched.finish();

        auto probe = timeKernel(crypto::CipherId::Blowfish,
                                kernels::KernelVariant::BaselineRot,
                                sim::MachineConfig::fourWide(),
                                session_bytes);
        double cpb = static_cast<double>(probe.cycles) / session_bytes;
        std::printf("\nBlowfish setup kernel, measured: %llu cycles "
                    "(%llu insts) —\n",
                    static_cast<unsigned long long>(s.cycles),
                    static_cast<unsigned long long>(s.instructions));
        std::printf("the work of encrypting ~%.1f KB of payload "
                    "(paper: ~8 KB); measured\nsetup share at 4 KB: "
                    "%.1f%%, crossing 10%% near %.0f KB.\n",
                    static_cast<double>(s.cycles) / cpb / 1024.0,
                    100.0 * s.cycles / (s.cycles + cpb * 4096),
                    9.0 * static_cast<double>(s.cycles) / cpb / 1024.0);
    }
    return 0;
}
