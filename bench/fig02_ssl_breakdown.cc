/**
 * @file
 * Regenerates paper Figure 2: SSL server run-time characterization by
 * session length — fraction of cycles in public-key cipher code,
 * private-key cipher code, and everything else.
 *
 * The paper's data came from Intel measurements of a loaded web
 * server; here every component is computed (see ssl/session.hh). The
 * shape to reproduce: public-key work dominates very short sessions;
 * by ~32 KB the private-key cipher is ~half of run time and keeps
 * growing.
 */

#include <cstdio>

#include "ssl/session.hh"

int
main(int argc, char **argv)
{
    using namespace cryptarch;

    crypto::CipherId bulk = crypto::CipherId::TripleDES;
    if (argc > 1 && std::string(argv[1]) == "--rc4")
        bulk = crypto::CipherId::RC4;

    ssl::SessionModel model(bulk);
    const auto &info = crypto::cipherInfo(bulk);

    std::printf("Figure 2. SSL Characterization by Session Length "
                "(bulk cipher: %s).\n\n",
                info.name.c_str());
    std::printf("RSA-1024 handshake (server private op): %.2f Mcycles "
                "(client public op: %.3f Mcycles, not server work)\n"
                "bulk rate: %.1f cycles/byte steady-state; kernel "
                "prologue: %.0f cycles/invocation; setup: %.0f cycles\n\n",
                model.handshakeCycles() / 1e6,
                model.clientHandshakeCycles() / 1e6,
                model.bulkCyclesPerByte(), model.prologueCycles(),
                model.setupCycles());
    std::printf("%10s %12s %12s %12s %14s\n", "Session", "Public-key",
                "Private-key", "Other", "Total Mcycles");
    std::printf("%.64s\n",
                "----------------------------------------------------"
                "------------");
    for (size_t kb : {1, 2, 4, 8, 16, 32, 64, 128}) {
        auto c = model.cost(kb * 1024);
        std::printf("%8zuKB %11.1f%% %11.1f%% %11.1f%% %14.2f\n", kb,
                    100.0 * c.publicFraction(),
                    100.0 * c.privateFraction(),
                    100.0 * c.otherFraction(), c.total() / 1e6);
    }
    return 0;
}
