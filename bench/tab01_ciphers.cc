/**
 * @file
 * Regenerates paper Table 1: the analyzed private-key symmetric
 * ciphers and their configurations.
 */

#include <cstdio>

#include "bench/common.hh"

int
main()
{
    using namespace cryptarch;

    std::printf("Table 1. Private Key Symmetric Ciphers Analyzed.\n\n");
    std::printf("%-10s %5s %5s %6s  %-14s %s\n", "Cipher", "Key",
                "Blk", "Rnds/", "Author", "Example");
    std::printf("%-10s %5s %5s %6s  %-14s %s\n", "", "Size", "Size",
                "Blk", "", "Application");
    std::printf("%.76s\n",
                "----------------------------------------------------"
                "------------------------");
    for (const auto &info : crypto::cipherCatalog()) {
        std::printf("%-10s %5u %5u %6u  %-14s %s\n", info.name.c_str(),
                    info.keyBits, info.blockBytes * 8, info.rounds,
                    info.author.c_str(), info.application.c_str());
    }
    std::printf("\n(Block size in bits; RC4 is a stream cipher "
                "processing 8-bit units.)\n");
    return 0;
}
