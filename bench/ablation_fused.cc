/**
 * @file
 * Ablation: the paper's future-work "four operand instructions to
 * permit increased operation combining" (section 8).
 *
 * The proposal's instructions were capped at two register reads
 * because a third read port slows the register file ~50%. SBOXX (a
 * fused substitute-and-XOR with three register reads) is the obvious
 * combining candidate for the substitution ciphers; this bench
 * measures what it would buy, i.e. the performance a cryptographic
 * processor designer would weigh against the port cost.
 */

#include <cstdio>

#include "bench/common.hh"

int
main()
{
    using namespace cryptarch;
    using namespace cryptarch::bench;
    using kernels::KernelVariant;
    using sim::MachineConfig;

    std::printf("Ablation: fused substitute-and-XOR (SBOXX, 3 register "
                "reads)\nvs the paper's 2-read SBOX + XOR "
                "(4KB session).\n\n");
    std::printf("%-10s %12s %12s %10s %12s %12s %10s\n", "Cipher",
                "opt insts", "fused insts", "static", "opt cyc 4W+",
                "fused cyc", "speedup");
    std::printf("%.84s\n",
                "----------------------------------------------------"
                "--------------------------------");

    for (auto id : {crypto::CipherId::Blowfish, crypto::CipherId::Rijndael,
                    crypto::CipherId::Twofish,
                    crypto::CipherId::TripleDES}) {
        const auto &info = crypto::cipherInfo(id);
        uint64_t oi = countInsts(id, KernelVariant::Optimized);
        uint64_t fi = countInsts(id, KernelVariant::OptimizedFused);
        auto oc = timeKernel(id, KernelVariant::Optimized,
                             MachineConfig::fourWidePlus());
        auto fc = timeKernel(id, KernelVariant::OptimizedFused,
                             MachineConfig::fourWidePlus());
        std::printf("%-10s %12llu %12llu %9.1f%% %12llu %12llu %9.2fx\n",
                    info.name.c_str(),
                    static_cast<unsigned long long>(oi),
                    static_cast<unsigned long long>(fi),
                    100.0 * (1.0 - static_cast<double>(fi) / oi),
                    static_cast<unsigned long long>(oc.cycles),
                    static_cast<unsigned long long>(fc.cycles),
                    static_cast<double>(oc.cycles) / fc.cycles);
    }
    std::printf(
        "\n(Static savings are real — 10-28%% fewer instructions — but "
        "the cycle\nimpact splits by bottleneck: issue-bound Rijndael "
        "gains 23%%, while the\nlatency-bound ciphers break even or "
        "lose, because a fused lookup chains\nthe multi-cycle S-box "
        "access into the XOR accumulation instead of\nrunning the "
        "lookups in parallel. The combining the paper deferred to\n"
        "future work is only worth a third register port on wide "
        "machines\nrunning lookup-parallel ciphers.)\n");
    return 0;
}
