/**
 * @file
 * Ablation: the paper's future-work "four operand instructions to
 * permit increased operation combining" (section 8).
 *
 * The proposal's instructions were capped at two register reads
 * because a third read port slows the register file ~50%. SBOXX (a
 * fused substitute-and-XOR with three register reads) is the obvious
 * combining candidate for the substitution ciphers; this bench
 * measures what it would buy, i.e. the performance a cryptographic
 * processor designer would weigh against the port cost.
 *
 * Runs through the bench driver: one functional pass per (cipher,
 * variant) — the dynamic instruction counts come from the recorded
 * traces, not separate counting runs. Stats: BENCH_ablation_fused.json.
 */

#include <cstdio>

#include "bench/common.hh"

int
main()
{
    using namespace cryptarch;
    using namespace cryptarch::bench;
    using kernels::KernelVariant;
    using sim::MachineConfig;

    const crypto::CipherId ids[] = {
        crypto::CipherId::Blowfish, crypto::CipherId::Rijndael,
        crypto::CipherId::Twofish, crypto::CipherId::TripleDES};

    driver::SweepSpec spec;
    spec.ciphers = {ids, ids + 4};
    spec.variants = {KernelVariant::Optimized,
                     KernelVariant::OptimizedFused};
    spec.models = {MachineConfig::fourWidePlus()};
    auto results = driver::runSweep(spec);

    std::printf("Ablation: fused substitute-and-XOR (SBOXX, 3 register "
                "reads)\nvs the paper's 2-read SBOX + XOR "
                "(4KB session).\n\n");
    std::printf("%-10s %12s %12s %10s %12s %12s %10s\n", "Cipher",
                "opt insts", "fused insts", "static", "opt cyc 4W+",
                "fused cyc", "speedup");
    std::printf("%.84s\n",
                "----------------------------------------------------"
                "--------------------------------");

    for (auto id : ids) {
        const auto &info = crypto::cipherInfo(id);
        const auto &opt = driver::findResult(
            results, id, KernelVariant::Optimized, "4W+");
        const auto &fused = driver::findResult(
            results, id, KernelVariant::OptimizedFused, "4W+");
        if (!opt.ok() || !fused.ok()) {
            std::printf("%-10s %12s\n", info.name.c_str(), "FAIL");
            continue;
        }
        uint64_t oi = opt.stats.instructions;
        uint64_t fi = fused.stats.instructions;
        std::printf("%-10s %12llu %12llu %9.1f%% %12llu %12llu %9.2fx\n",
                    info.name.c_str(),
                    static_cast<unsigned long long>(oi),
                    static_cast<unsigned long long>(fi),
                    100.0 * (1.0 - static_cast<double>(fi) / oi),
                    static_cast<unsigned long long>(opt.stats.cycles),
                    static_cast<unsigned long long>(fused.stats.cycles),
                    static_cast<double>(opt.stats.cycles)
                        / fused.stats.cycles);
    }

    driver::writeBenchJson("BENCH_ablation_fused.json", "ablation_fused",
                           results);
    std::printf(
        "\n(Static savings are real — 10-28%% fewer instructions — but "
        "the cycle\nimpact splits by bottleneck: issue-bound Rijndael "
        "gains 23%%, while the\nlatency-bound ciphers break even or "
        "lose, because a fused lookup chains\nthe multi-cycle S-box "
        "access into the XOR accumulation instead of\nrunning the "
        "lookups in parallel. The combining the paper deferred to\n"
        "future work is only worth a third register port on wide "
        "machines\nrunning lookup-parallel ciphers.)\n");
    return reportFailedCells(results);
}
