/**
 * @file
 * Ablation: resource sensitivity of the optimized kernels.
 *
 * Sweeps the design parameters the paper's 4W+ / 8W+ discussion turns
 * on: the number of dedicated SBox caches, the number of rotator/XBOX
 * units, and the issue width. Exposes the saturation effects the
 * paper reports (Rijndael/Twofish pinned at 4 IPC on 4W+, SBox-cache
 * bandwidth mattering for the substitution ciphers only).
 */

#include <cstdio>

#include "bench/common.hh"

namespace
{

using namespace cryptarch;
using namespace cryptarch::bench;
using kernels::KernelVariant;
using sim::MachineConfig;

void
sweepSboxCaches()
{
    std::printf("SBox cache count (optimized kernels, 4-wide core, "
                "bytes/1000 cycles):\n\n%-10s", "Cipher");
    const unsigned counts[] = {0, 1, 2, 4, 8};
    for (unsigned c : counts)
        std::printf("%9u", c);
    std::printf("\n%.56s\n",
                "--------------------------------------------------------");
    for (auto id : {crypto::CipherId::Blowfish, crypto::CipherId::Rijndael,
                    crypto::CipherId::Twofish, crypto::CipherId::MARS,
                    crypto::CipherId::IDEA}) {
        std::printf("%-10s", crypto::cipherInfo(id).name.c_str());
        for (unsigned c : counts) {
            MachineConfig cfg = MachineConfig::fourWidePlus();
            cfg.numSboxCaches = c;
            cfg.name = "4W+" + std::to_string(c) + "sb";
            auto s = timeKernel(id, KernelVariant::Optimized, cfg);
            std::printf("%9.1f", bytesPerKiloCycle(s.cycles));
        }
        std::printf("\n");
    }
    std::printf("\n");
}

void
sweepIssueWidth()
{
    std::printf("Issue width (optimized kernels, 4W+ resources scaled, "
                "bytes/1000 cycles):\n\n%-10s", "Cipher");
    const unsigned widths[] = {2, 4, 8, 16};
    for (unsigned w : widths)
        std::printf("%9u", w);
    std::printf("\n%.46s\n",
                "----------------------------------------------");
    for (auto id : allCiphers()) {
        std::printf("%-10s", crypto::cipherInfo(id).name.c_str());
        for (unsigned w : widths) {
            MachineConfig cfg = MachineConfig::fourWidePlus();
            cfg.issueWidth = w;
            cfg.fetchWidth = w;
            cfg.fetchBlocksPerCycle = (w + 3) / 4;
            cfg.numIntAlu = w;
            cfg.numRotUnits = w;
            cfg.mulHalfSlots = w / 2;
            cfg.numDCachePorts = (w + 1) / 2;
            cfg.windowSize = 32 * w;
            cfg.name = std::to_string(w) + "-wide";
            auto s = timeKernel(id, KernelVariant::Optimized, cfg);
            std::printf("%9.1f", bytesPerKiloCycle(s.cycles));
        }
        std::printf("\n");
    }
    std::printf("\n");
}

void
sweepRotators()
{
    std::printf("Rotator/XBOX units (optimized kernels, 4-wide core, "
                "bytes/1000 cycles):\n\n%-10s", "Cipher");
    const unsigned counts[] = {1, 2, 4, 8};
    for (unsigned c : counts)
        std::printf("%9u", c);
    std::printf("\n%.46s\n",
                "----------------------------------------------");
    for (auto id : {crypto::CipherId::MARS, crypto::CipherId::RC6,
                    crypto::CipherId::Twofish,
                    crypto::CipherId::TripleDES}) {
        std::printf("%-10s", crypto::cipherInfo(id).name.c_str());
        for (unsigned c : counts) {
            MachineConfig cfg = MachineConfig::fourWidePlus();
            cfg.numRotUnits = c;
            cfg.name = std::to_string(c) + "rot";
            auto s = timeKernel(id, KernelVariant::Optimized, cfg);
            std::printf("%9.1f", bytesPerKiloCycle(s.cycles));
        }
        std::printf("\n");
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    std::printf("Resource ablations for the optimized cipher kernels\n"
                "====================================================\n\n");
    sweepSboxCaches();
    sweepRotators();
    sweepIssueWidth();
    return 0;
}
