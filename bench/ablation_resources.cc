/**
 * @file
 * Ablation: resource sensitivity of the optimized kernels.
 *
 * Sweeps the design parameters the paper's 4W+ / 8W+ discussion turns
 * on: the number of dedicated SBox caches, the number of rotator/XBOX
 * units, and the issue width. Exposes the saturation effects the
 * paper reports (Rijndael/Twofish pinned at 4 IPC on 4W+, SBox-cache
 * bandwidth mattering for the substitution ciphers only).
 *
 * All three sweeps are collected into one driver run, so each cipher's
 * optimized kernel is functionally interpreted exactly once for the
 * whole binary and its trace replays into every configuration in
 * parallel. Stats: BENCH_ablation_resources.json.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.hh"

namespace
{

using namespace cryptarch;
using namespace cryptarch::bench;
using kernels::KernelVariant;
using sim::MachineConfig;

const crypto::CipherId sbox_ciphers[] = {
    crypto::CipherId::Blowfish, crypto::CipherId::Rijndael,
    crypto::CipherId::Twofish, crypto::CipherId::MARS,
    crypto::CipherId::IDEA};
const unsigned sbox_counts[] = {0, 1, 2, 4, 8};

const crypto::CipherId rot_ciphers[] = {
    crypto::CipherId::MARS, crypto::CipherId::RC6,
    crypto::CipherId::Twofish, crypto::CipherId::TripleDES};
const unsigned rot_counts[] = {1, 2, 4, 8};

const unsigned issue_widths[] = {2, 4, 8, 16};

MachineConfig
sboxConfig(unsigned c)
{
    MachineConfig cfg = MachineConfig::fourWidePlus();
    cfg.numSboxCaches = c;
    cfg.name = "4W+" + std::to_string(c) + "sb";
    return cfg;
}

MachineConfig
rotConfig(unsigned c)
{
    MachineConfig cfg = MachineConfig::fourWidePlus();
    cfg.numRotUnits = c;
    cfg.name = std::to_string(c) + "rot";
    return cfg;
}

MachineConfig
widthConfig(unsigned w)
{
    MachineConfig cfg = MachineConfig::fourWidePlus();
    cfg.issueWidth = w;
    cfg.fetchWidth = w;
    cfg.fetchBlocksPerCycle = (w + 3) / 4;
    cfg.numIntAlu = w;
    cfg.numRotUnits = w;
    cfg.mulHalfSlots = w / 2;
    cfg.numDCachePorts = (w + 1) / 2;
    cfg.windowSize = 32 * w;
    cfg.name = std::to_string(w) + "-wide";
    return cfg;
}

/** One table: B/kcycle of each (cipher row, config column) result. */
template <typename Ciphers, typename Configs>
void
printSweep(const std::vector<driver::SweepResult> &results,
           const Ciphers &ciphers, const Configs &configs,
           const char *header, unsigned rule_len)
{
    std::printf("%s\n\n%-10s", header, "Cipher");
    for (const auto &cfg : configs)
        std::printf("%9s", cfg.name.c_str());
    std::printf("\n%.*s\n", rule_len,
                "------------------------------------------------------"
                "----------");
    for (auto id : ciphers) {
        std::printf("%-10s", crypto::cipherInfo(id).name.c_str());
        for (const auto &cfg : configs) {
            const auto &r = driver::findResult(
                results, id, KernelVariant::Optimized, cfg.name);
            std::printf("%9s",
                        gridCell(r.ok(), "%.1f",
                                 bytesPerKiloCycle(r.stats.cycles,
                                                   r.bytes))
                            .c_str());
        }
        std::printf("\n");
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    std::vector<MachineConfig> sbox_cfgs, rot_cfgs, width_cfgs;
    for (unsigned c : sbox_counts)
        sbox_cfgs.push_back(sboxConfig(c));
    for (unsigned c : rot_counts)
        rot_cfgs.push_back(rotConfig(c));
    for (unsigned w : issue_widths)
        width_cfgs.push_back(widthConfig(w));

    std::vector<driver::SweepCell> cells;
    for (auto id : sbox_ciphers)
        for (const auto &cfg : sbox_cfgs)
            cells.push_back({id, KernelVariant::Optimized, cfg,
                             session_bytes});
    for (auto id : rot_ciphers)
        for (const auto &cfg : rot_cfgs)
            cells.push_back({id, KernelVariant::Optimized, cfg,
                             session_bytes});
    for (auto id : allCiphers())
        for (const auto &cfg : width_cfgs)
            cells.push_back({id, KernelVariant::Optimized, cfg,
                             session_bytes});

    auto results = driver::runCells(cells);

    std::printf("Resource ablations for the optimized cipher kernels\n"
                "====================================================\n\n");
    printSweep(results, sbox_ciphers, sbox_cfgs,
               "SBox cache count (optimized kernels, 4-wide core, "
               "bytes/1000 cycles):",
               56);
    printSweep(results, rot_ciphers, rot_cfgs,
               "Rotator/XBOX units (optimized kernels, 4-wide core, "
               "bytes/1000 cycles):",
               46);
    printSweep(results, allCiphers(), width_cfgs,
               "Issue width (optimized kernels, 4W+ resources scaled, "
               "bytes/1000 cycles):",
               46);

    driver::writeBenchJson("BENCH_ablation_resources.json",
                           "ablation_resources", results);
    std::printf("(Stats: BENCH_ablation_resources.json.)\n");
    return reportFailedCells(results);
}
