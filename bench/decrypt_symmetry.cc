/**
 * @file
 * Verifies paper footnote 1: "Because of the symmetry between the
 * encryption and decryption algorithms, performance was comparable
 * for these codes for all experiments."
 *
 * Times the encryption and decryption kernels of every cipher on the
 * 4W machine and reports the ratio; the paper's claim holds when all
 * ratios sit near 1.0.
 *
 * Both directions record through driver::recordKernelTrace, so each
 * run is oracle-checked: encryption against the reference ciphertext,
 * decryption against round-trip recovery of the plaintext from the
 * reference ciphertext.
 */

#include <cstdio>

#include "bench/common.hh"

namespace
{

cryptarch::sim::SimStats
timeDirection(cryptarch::crypto::CipherId id,
              cryptarch::kernels::KernelVariant variant,
              cryptarch::kernels::KernelDirection dir)
{
    using namespace cryptarch;
    using namespace cryptarch::bench;
    return driver::recordKernelTrace(id, variant, session_bytes, dir)
        .replay(sim::MachineConfig::fourWide());
}

} // namespace

int
main()
{
    using namespace cryptarch;
    using namespace cryptarch::bench;
    using kernels::KernelDirection;
    using kernels::KernelVariant;

    std::printf("Encryption/decryption symmetry (paper footnote 1)\n"
                "(4KB session, 4W machine, cycles).\n\n");
    std::printf("%-10s %-14s %12s %12s %8s\n", "Cipher", "Variant",
                "encrypt", "decrypt", "ratio");
    std::printf("%.60s\n",
                "----------------------------------------------------"
                "--------");
    for (auto id : allCiphers()) {
        const auto &info = crypto::cipherInfo(id);
        for (auto v : {KernelVariant::BaselineRot,
                       KernelVariant::Optimized}) {
            auto enc = timeDirection(id, v, KernelDirection::Encrypt);
            auto dec = timeDirection(id, v, KernelDirection::Decrypt);
            std::printf("%-10s %-14s %12llu %12llu %8.2f\n",
                        info.name.c_str(),
                        kernels::variantName(v).c_str(),
                        static_cast<unsigned long long>(enc.cycles),
                        static_cast<unsigned long long>(dec.cycles),
                        static_cast<double>(dec.cycles)
                            / static_cast<double>(enc.cycles));
        }
    }
    std::printf(
        "\n(Ratios below 1.0 are a real CBC effect the out-of-order\n"
        "core exploits: decryption blocks depend only on stored\n"
        "ciphertext, so they overlap, while CBC encryption is one\n"
        "serial recurrence. Ciphers already at dataflow speed —\n"
        "3DES, Mars, Rijndael — show the paper's \"comparable\"\n"
        "behavior directly.)\n");
    return 0;
}
