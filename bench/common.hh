/**
 * @file
 * Shared helpers for the figure/table regeneration benches.
 *
 * Every bench uses the same deterministic key/IV/plaintext material
 * (seeded xorshift) and the paper's 4 KB session length unless a
 * figure calls for a sweep.
 */

#ifndef CRYPTARCH_BENCH_COMMON_HH
#define CRYPTARCH_BENCH_COMMON_HH

#include <cstdio>
#include <string>
#include <vector>

#include "crypto/cipher.hh"
#include "kernels/kernel.hh"
#include "sim/pipeline.hh"
#include "util/xorshift.hh"

namespace cryptarch::bench
{

/** The paper's standard session length (section 4.2). */
constexpr size_t session_bytes = 4096;

/** Deterministic key material for a cipher. */
struct Workload
{
    std::vector<uint8_t> key;
    std::vector<uint8_t> iv;
    std::vector<uint8_t> plaintext;
};

inline Workload
makeWorkload(crypto::CipherId id, size_t bytes = session_bytes,
             uint64_t seed = 0xBE7CB)
{
    const auto &info = crypto::cipherInfo(id);
    util::Xorshift64 rng(seed + static_cast<uint64_t>(id));
    Workload w;
    w.key = rng.bytes(info.keyBits / 8);
    w.iv = rng.bytes(info.isStream ? 0 : info.blockBytes);
    w.plaintext = rng.bytes(bytes);
    return w;
}

/** Build a kernel, run it functionally, and time it on @p cfg. */
inline sim::SimStats
timeKernel(crypto::CipherId id, kernels::KernelVariant variant,
           const sim::MachineConfig &cfg, size_t bytes = session_bytes)
{
    Workload w = makeWorkload(id, bytes);
    auto build = kernels::buildKernel(id, variant, w.key, w.iv, bytes);
    isa::Machine m;
    build.install(m, kernels::toWordImage(id, w.plaintext));
    sim::OooScheduler sched(cfg);
    m.run(build.program, &sched, 1ull << 32);
    return sched.finish();
}

/** Dynamic instruction count of a kernel run (the 1-CPI machine). */
inline uint64_t
countInsts(crypto::CipherId id, kernels::KernelVariant variant,
           size_t bytes = session_bytes)
{
    Workload w = makeWorkload(id, bytes);
    auto build = kernels::buildKernel(id, variant, w.key, w.iv, bytes);
    isa::Machine m;
    build.install(m, kernels::toWordImage(id, w.plaintext));
    return m.run(build.program, nullptr, 1ull << 32).instructions;
}

/** bytes encrypted per 1000 cycles (the paper's Figure 4 metric). */
inline double
bytesPerKiloCycle(uint64_t cycles, size_t bytes = session_bytes)
{
    return 1000.0 * static_cast<double>(bytes)
        / static_cast<double>(cycles);
}

/** All eight cipher ids in Table 1 order. */
inline std::vector<crypto::CipherId>
allCiphers()
{
    std::vector<crypto::CipherId> ids;
    for (const auto &info : crypto::cipherCatalog())
        ids.push_back(info.id);
    return ids;
}

} // namespace cryptarch::bench

#endif // CRYPTARCH_BENCH_COMMON_HH
