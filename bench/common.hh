/**
 * @file
 * Shared helpers for the figure/table regeneration benches.
 *
 * Every bench uses the same deterministic key/IV/plaintext material
 * (seeded xorshift) and the paper's 4 KB session length unless a
 * figure calls for a sweep. Workload generation and kernel timing live
 * in the driver library (src/driver/); the helpers here are thin
 * wrappers kept for the single-model call sites. Grid-shaped benches
 * use driver::runSweep / driver::runCells directly so every kernel is
 * functionally interpreted once no matter how many timing models it
 * feeds.
 */

#ifndef CRYPTARCH_BENCH_COMMON_HH
#define CRYPTARCH_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "crypto/cipher.hh"
#include "driver/grids.hh"
#include "driver/json.hh"
#include "driver/sweep.hh"
#include "driver/trace.hh"
#include "driver/workload.hh"
#include "kernels/kernel.hh"
#include "sim/pipeline.hh"

namespace cryptarch::bench
{

/** The paper's standard session length (section 4.2). */
using driver::session_bytes;

/** Deterministic key material for a cipher. */
using driver::Workload;
using driver::makeWorkload;

/**
 * Build a kernel, run it functionally, and time it on @p cfg.
 *
 * One functional interpretation per call: call sites that sweep many
 * models over the same kernel should record once and replay instead
 * (driver::recordKernelTrace / driver::runSweep).
 */
inline sim::SimStats
timeKernel(crypto::CipherId id, kernels::KernelVariant variant,
           const sim::MachineConfig &cfg, size_t bytes = session_bytes)
{
    return driver::recordKernelTrace(id, variant, bytes).replay(cfg);
}

/** Dynamic instruction count of a kernel run (the 1-CPI machine). */
inline uint64_t
countInsts(crypto::CipherId id, kernels::KernelVariant variant,
           size_t bytes = session_bytes)
{
    return driver::recordKernelTrace(id, variant, bytes).instructions();
}

/**
 * bytes encrypted per 1000 cycles (the paper's Figure 4 metric). The
 * byte count is a required argument: a sweep that varies session
 * length must pass the length it actually simulated, so the metric can
 * never silently divide by the default 4 KB session.
 */
inline double
bytesPerKiloCycle(uint64_t cycles, size_t bytes)
{
    return 1000.0 * static_cast<double>(bytes)
        / static_cast<double>(cycles);
}

/** All eight cipher ids in Table 1 order. */
inline std::vector<crypto::CipherId>
allCiphers()
{
    return driver::allCiphers();
}

/**
 * Render one numeric grid cell: @p value formatted with @p fmt when
 * @p ok, the marker "FAIL" otherwise — failed cells keep the grid's
 * shape instead of aborting the table.
 */
inline std::string
gridCell(bool ok, const char *fmt, double value)
{
    if (!ok)
        return "FAIL";
    char buf[48];
    std::snprintf(buf, sizeof(buf), fmt, value);
    return buf;
}

/**
 * Crash-safety options from the environment plus the benches' shared
 * command line:
 *
 *   --isolate=thread|process   worker isolation (CRYPTARCH_SWEEP_ISOLATE)
 *   --journal=PATH             checkpoint journal (CRYPTARCH_SWEEP_JOURNAL)
 *   --deadline=SECONDS         per-cell watchdog (CRYPTARCH_SWEEP_DEADLINE)
 *   --threads=N                worker count
 *
 * Flags win over the environment. Unknown arguments are ignored, so a
 * bench with its own flags (e.g. --quick) can share argv. Exits with a
 * usage message on a malformed known flag rather than silently running
 * the wrong configuration.
 */
inline driver::SweepOptions
sweepOptions(int argc, char **argv)
{
    driver::SweepOptions opts = driver::sweepOptionsFromEnv();
    for (int i = 1; i < argc; i++) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--isolate=", 10) == 0) {
            const char *mode = arg + 10;
            if (std::strcmp(mode, "thread") != 0
                && std::strcmp(mode, "process") != 0) {
                std::fprintf(stderr,
                             "%s: --isolate takes 'thread' or 'process', "
                             "got '%s'\n",
                             argv[0], mode);
                std::exit(2);
            }
            opts.isolation = driver::parseSweepIsolation(
                mode, driver::SweepIsolation::Thread);
        } else if (std::strncmp(arg, "--journal=", 10) == 0) {
            opts.journalPath = arg + 10;
            if (opts.journalPath.empty()) {
                std::fprintf(stderr, "%s: --journal needs a path\n",
                             argv[0]);
                std::exit(2);
            }
        } else if (std::strncmp(arg, "--deadline=", 11) == 0) {
            opts.cellDeadlineSeconds = std::atof(arg + 11);
            if (opts.cellDeadlineSeconds <= 0) {
                std::fprintf(stderr,
                             "%s: --deadline needs positive seconds\n",
                             argv[0]);
                std::exit(2);
            }
        } else if (std::strncmp(arg, "--threads=", 10) == 0) {
            opts.threads = static_cast<unsigned>(
                std::strtoul(arg + 10, nullptr, 10));
        }
    }
    return opts;
}

/**
 * Print every failed cell of a fail-soft sweep to stderr and return
 * the bench exit code: 0 for an all-ok grid, 1 otherwise. Benches end
 * with `return reportFailedCells(results);` so one bad cell fails the
 * run without suppressing the rest of the grid.
 */
inline int
reportFailedCells(const std::vector<driver::SweepResult> &results)
{
    size_t failed = 0;
    for (const auto &r : results) {
        if (r.ok())
            continue;
        failed++;
        std::fprintf(stderr, "FAILED cell (%s, %s, %s): [%s] %s\n",
                     crypto::cipherInfo(r.cipher).name.c_str(),
                     kernels::variantName(r.variant).c_str(),
                     r.model.c_str(), driver::cellOutcomeName(r.outcome),
                     r.message.c_str());
    }
    if (failed)
        std::fprintf(stderr, "%zu of %zu cells failed\n", failed,
                     results.size());
    return failed ? 1 : 0;
}

} // namespace cryptarch::bench

#endif // CRYPTARCH_BENCH_COMMON_HH
