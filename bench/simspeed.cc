/**
 * @file
 * Simulator self-benchmark: host-side replay throughput in simulated
 * MIPS and trace footprint per model, for representative (cipher,
 * variant, model) cells. This is the perf trajectory every hot-path
 * PR is judged against — the numbers say how fast the timing model
 * itself runs, not how fast the simulated machine is.
 *
 * For each kernel the trace is recorded once, then replayed into each
 * model repeatedly until a minimum wall-clock budget is filled:
 *
 *   simulated MIPS = instructions * reps / replay_seconds / 1e6
 *
 * Recording cost is split by phase (record / verify / compress) using
 * the driver's RecordTiming, so the record/replay attribution in the
 * artifact is honest: the record-time oracle and the compression
 * attempt are reported as their own fields instead of inflating
 * record_seconds.
 *
 * Trace footprint is reported three ways: the bytes actually stored
 * (compressed when the loop detector adopted the stream), the packed
 * equivalent (the compression-ratio baseline), and the raw DynInst
 * bytes. Results go to BENCH_simspeed.json (schema 3, with
 * host-timing extras per result).
 *
 * Usage: simspeed [--quick]
 *   --quick  CI smoke mode: fewer cells, smaller time budget.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/common.hh"
#include "driver/json.hh"
#include "sim/config.hh"

namespace
{

using namespace cryptarch;
using Clock = std::chrono::steady_clock;

double
seconds(Clock::time_point a, Clock::time_point b)
{
    return std::chrono::duration<double>(b - a).count();
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    for (int i = 1; i < argc; i++)
        if (!std::strcmp(argv[i], "--quick"))
            quick = true;

    // Representative corners of the workload space: a stream cipher
    // dominated by byte traffic and alias ordering (RC4), the
    // SBOX-heavy block cipher the paper optimizes hardest (Rijndael),
    // and the multiplier-bound one (IDEA) — each across the in-order
    // baseline-class, SBox-cache and dataflow machines.
    const std::vector<crypto::CipherId> ciphers =
        quick ? std::vector<crypto::CipherId>{crypto::CipherId::RC4,
                                              crypto::CipherId::Rijndael}
              : std::vector<crypto::CipherId>{crypto::CipherId::RC4,
                                              crypto::CipherId::Rijndael,
                                              crypto::CipherId::IDEA};
    const std::vector<sim::MachineConfig> models =
        quick ? std::vector<sim::MachineConfig>{
                    sim::MachineConfig::fourWide(),
                    sim::MachineConfig::fourWidePlus(),
                    sim::MachineConfig::dataflow()}
              : std::vector<sim::MachineConfig>{
                    sim::MachineConfig::fourWide(),
                    sim::MachineConfig::fourWidePlus(),
                    sim::MachineConfig::eightWidePlus(),
                    sim::MachineConfig::dataflow()};
    const auto variant = kernels::KernelVariant::Optimized;
    const double minReplaySeconds = quick ? 0.02 : 0.25;
    const int maxReps = quick ? 4 : 64;

    std::vector<driver::SweepResult> results;
    std::vector<std::string> extras;
    size_t totalStored = 0;
    size_t totalPacked = 0;
    size_t totalRaw = 0;

    std::printf("Simulator self-benchmark (%s mode)\n\n",
                quick ? "quick" : "full");
    std::printf("%-10s %-10s %-6s %12s %8s %10s %12s %7s %-10s\n",
                "Cipher", "Variant", "Model", "insts", "reps", "sim-MIPS",
                "trace-bytes", "ratio", "storage");

    for (auto id : ciphers) {
        driver::RecordTiming timing;
        auto trace = driver::recordKernelTrace(
            id, variant, driver::session_bytes,
            kernels::KernelDirection::Encrypt, &timing);
        const uint64_t insts = trace.instructions();
        const size_t storedBytes = trace.storedBytes();
        const size_t packedBytes = trace.packedEquivalentBytes();
        const size_t rawBytes = insts * sizeof(isa::DynInst);
        const double ratio = storedBytes
            ? static_cast<double>(packedBytes) / storedBytes
            : 1.0;
        const char *storage =
            isa::compressOutcomeName(trace.compressOutcome());
        totalStored += storedBytes;
        totalPacked += packedBytes;
        totalRaw += rawBytes;

        for (const auto &model : models) {
            sim::SimStats stats;
            int reps = 0;
            auto r0 = Clock::now();
            double elapsed = 0.0;
            do {
                stats = trace.replay(model);
                reps++;
                elapsed = seconds(r0, Clock::now());
            } while (elapsed < minReplaySeconds && reps < maxReps);
            const double mips =
                static_cast<double>(insts) * reps / elapsed / 1e6;

            driver::SweepResult res;
            res.cipher = id;
            res.variant = variant;
            res.model = model.name;
            res.bytes = driver::session_bytes;
            res.stats = stats;
            results.push_back(res);

            char extra[768];
            std::snprintf(
                extra, sizeof(extra),
                "\"simulated_mips\": %.2f, \"replay_reps\": %d, "
                "\"replay_seconds\": %.6f, \"record_seconds\": %.6f, "
                "\"verify_seconds\": %.6f, \"compress_seconds\": %.6f, "
                "\"trace_storage\": \"%s\", "
                "\"trace_stored_bytes\": %zu, "
                "\"trace_packed_bytes\": %zu, "
                "\"trace_dyninst_bytes\": %zu, "
                "\"compression_ratio\": %.2f, "
                "\"stored_bytes_per_inst\": %.4f",
                mips, reps, elapsed, timing.recordSeconds,
                timing.verifySeconds, timing.compressSeconds, storage,
                storedBytes, packedBytes, rawBytes, ratio,
                insts ? static_cast<double>(storedBytes) / insts : 0.0);
            extras.push_back(extra);

            std::printf(
                "%-10s %-10s %-6s %12llu %8d %10.2f %12zu %6.1fx %-10s\n",
                crypto::cipherInfo(id).name.c_str(),
                kernels::variantName(variant).c_str(), model.name.c_str(),
                static_cast<unsigned long long>(insts), reps, mips,
                storedBytes, ratio, storage);
        }
    }

    driver::writeBenchJson("BENCH_simspeed.json", "simspeed", results,
                           extras);
    std::printf("\n(Host timing per cell: BENCH_simspeed.json; %zu "
                "cells; stored traces %.1fx smaller than packed, "
                "%.1fx smaller than raw DynInst records.)\n",
                results.size(),
                totalStored ? static_cast<double>(totalPacked) / totalStored
                            : 1.0,
                totalStored ? static_cast<double>(totalRaw) / totalStored
                            : 1.0);
    return 0;
}
