/**
 * @file
 * Simulator self-benchmark: host-side replay throughput in simulated
 * MIPS and trace footprint per model, for representative (cipher,
 * variant, model) cells. This is the perf trajectory every hot-path
 * PR is judged against — the numbers say how fast the timing model
 * itself runs, not how fast the simulated machine is.
 *
 * For each kernel the trace is recorded once, then replayed into each
 * model repeatedly until a minimum wall-clock budget is filled:
 *
 *   simulated MIPS = instructions * reps / replay_seconds / 1e6
 *
 * Recording cost is split by phase (record / decode / gate / verify /
 * compress) using the driver's RecordTiming, so the record/replay
 * attribution in the artifact is honest: the record-time oracle and
 * the compression attempt are reported as their own fields instead of
 * inflating record_seconds.
 *
 * The record phase itself is benchmarked per execution backend: each
 * kernel is recorded by the reference interpreter and by the threaded
 * backend (after its one-time differential gate), and both
 * record_seconds land in the artifact as
 * record_seconds_interpreter / record_seconds_threaded together with
 * decode_seconds_threaded and the resulting record_speedup_threaded.
 * Both measurements go through driver::recordKernelTrace — same
 * workload synthesis, same reserve estimate, same oracle — so the
 * columns compare executors and nothing else.
 *
 * Trace footprint is reported three ways: the bytes actually stored
 * (compressed when the loop detector adopted the stream), the packed
 * equivalent (the compression-ratio baseline), and the raw DynInst
 * bytes. Results go to BENCH_simspeed.json (schema 3, with
 * host-timing extras per result).
 *
 * Usage: simspeed [--quick]
 *   --quick  CI smoke mode: fewer cells, smaller time budget.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/common.hh"
#include "driver/json.hh"
#include "sim/config.hh"

namespace
{

using namespace cryptarch;
using Clock = std::chrono::steady_clock;

double
seconds(Clock::time_point a, Clock::time_point b)
{
    return std::chrono::duration<double>(b - a).count();
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    for (int i = 1; i < argc; i++)
        if (!std::strcmp(argv[i], "--quick"))
            quick = true;

    // Full mode covers the entire tab02 cipher grid, so the
    // record-phase speedup column is measured over exactly the
    // workload population the tab02 artifact records. Quick mode keeps
    // two representative corners: a stream cipher dominated by byte
    // traffic and alias ordering (RC4) and the SBOX-heavy block cipher
    // the paper optimizes hardest (Rijndael).
    std::vector<crypto::CipherId> ciphers;
    if (quick) {
        ciphers = {crypto::CipherId::RC4, crypto::CipherId::Rijndael};
    } else {
        for (const auto &info : crypto::cipherCatalog())
            ciphers.push_back(info.id);
    }
    const std::vector<sim::MachineConfig> models =
        quick ? std::vector<sim::MachineConfig>{
                    sim::MachineConfig::fourWide(),
                    sim::MachineConfig::fourWidePlus(),
                    sim::MachineConfig::dataflow()}
              : std::vector<sim::MachineConfig>{
                    sim::MachineConfig::fourWide(),
                    sim::MachineConfig::fourWidePlus(),
                    sim::MachineConfig::eightWidePlus(),
                    sim::MachineConfig::dataflow()};
    const auto variant = kernels::KernelVariant::Optimized;
    const double minReplaySeconds = quick ? 0.02 : 0.25;
    const int maxReps = quick ? 4 : 64;

    std::vector<driver::SweepResult> results;
    std::vector<std::string> extras;
    size_t totalStored = 0;
    size_t totalPacked = 0;
    size_t totalRaw = 0;

    std::printf("Simulator self-benchmark (%s mode)\n\n",
                quick ? "quick" : "full");
    std::printf("%-10s %-10s %-6s %12s %8s %10s %12s %7s %-10s\n",
                "Cipher", "Variant", "Model", "insts", "reps", "sim-MIPS",
                "trace-bytes", "ratio", "storage");

    struct RecordRow
    {
        crypto::CipherId id;
        driver::RecordTiming interp;
        driver::RecordTiming threaded;
        driver::RecordTiming gate;
    };
    std::vector<RecordRow> recordRows;

    for (auto id : ciphers) {
        // Per-backend record phase. The untimed interpreter warm-up
        // seeds the driver's reserve estimate so both timed recordings
        // append into pre-sized traces; the first threaded call pays
        // the differential adoption gate (reported separately), and
        // the steady-state call is the threaded record_seconds column
        // — the same state every tab02-style sweep records in.
        RecordRow row;
        row.id = id;
        driver::resetExecBackendGate();
        driver::setExecBackendSelection(
            driver::ExecBackendSelection::Interpreter);
        driver::recordKernelTrace(id, variant, driver::session_bytes,
                                  kernels::KernelDirection::Encrypt);
        driver::recordKernelTrace(id, variant, driver::session_bytes,
                                  kernels::KernelDirection::Encrypt,
                                  &row.interp);
        driver::setExecBackendSelection(
            driver::ExecBackendSelection::Threaded);
        driver::recordKernelTrace(id, variant, driver::session_bytes,
                                  kernels::KernelDirection::Encrypt,
                                  &row.gate);

        driver::RecordTiming timing = {};
        auto trace = driver::recordKernelTrace(
            id, variant, driver::session_bytes,
            kernels::KernelDirection::Encrypt, &timing);
        row.threaded = timing;
        recordRows.push_back(row);
        const uint64_t insts = trace.instructions();
        const size_t storedBytes = trace.storedBytes();
        const size_t packedBytes = trace.packedEquivalentBytes();
        const size_t rawBytes = insts * sizeof(isa::DynInst);
        const double ratio = storedBytes
            ? static_cast<double>(packedBytes) / storedBytes
            : 1.0;
        const char *storage =
            isa::compressOutcomeName(trace.compressOutcome());
        totalStored += storedBytes;
        totalPacked += packedBytes;
        totalRaw += rawBytes;

        for (const auto &model : models) {
            sim::SimStats stats;
            int reps = 0;
            auto r0 = Clock::now();
            double elapsed = 0.0;
            do {
                stats = trace.replay(model);
                reps++;
                elapsed = seconds(r0, Clock::now());
            } while (elapsed < minReplaySeconds && reps < maxReps);
            const double mips =
                static_cast<double>(insts) * reps / elapsed / 1e6;

            driver::SweepResult res;
            res.cipher = id;
            res.variant = variant;
            res.model = model.name;
            res.bytes = driver::session_bytes;
            res.stats = stats;
            results.push_back(res);

            char extra[1024];
            std::snprintf(
                extra, sizeof(extra),
                "\"simulated_mips\": %.2f, \"replay_reps\": %d, "
                "\"replay_seconds\": %.6f, \"record_seconds\": %.6f, "
                "\"record_seconds_interpreter\": %.6f, "
                "\"record_seconds_threaded\": %.6f, "
                "\"decode_seconds_threaded\": %.6f, "
                "\"gate_seconds_threaded\": %.6f, "
                "\"record_speedup_threaded\": %.2f, "
                "\"verify_seconds\": %.6f, \"compress_seconds\": %.6f, "
                "\"trace_storage\": \"%s\", "
                "\"trace_stored_bytes\": %zu, "
                "\"trace_packed_bytes\": %zu, "
                "\"trace_dyninst_bytes\": %zu, "
                "\"compression_ratio\": %.2f, "
                "\"stored_bytes_per_inst\": %.4f",
                mips, reps, elapsed, timing.recordSeconds,
                row.interp.recordSeconds, row.threaded.recordSeconds,
                row.threaded.decodeSeconds, row.gate.gateSeconds,
                row.threaded.recordSeconds > 0
                    ? row.interp.recordSeconds / row.threaded.recordSeconds
                    : 0.0,
                timing.verifySeconds, timing.compressSeconds, storage,
                storedBytes, packedBytes, rawBytes, ratio,
                insts ? static_cast<double>(storedBytes) / insts : 0.0);
            extras.push_back(extra);

            std::printf(
                "%-10s %-10s %-6s %12llu %8d %10.2f %12zu %6.1fx %-10s\n",
                crypto::cipherInfo(id).name.c_str(),
                kernels::variantName(variant).c_str(), model.name.c_str(),
                static_cast<unsigned long long>(insts), reps, mips,
                storedBytes, ratio, storage);
        }
    }

    // Record-phase backend comparison over the cipher grid above.
    std::printf("\nRecord phase by execution backend (%zu-byte "
                "sessions)\n\n",
                driver::session_bytes);
    std::printf("%-10s %12s %12s %12s %9s\n", "Cipher", "interp-ms",
                "threaded-ms", "decode-ms", "speedup");
    double sumInterp = 0.0;
    double sumThreaded = 0.0;
    for (const auto &row : recordRows) {
        sumInterp += row.interp.recordSeconds;
        sumThreaded += row.threaded.recordSeconds;
        std::printf("%-10s %12.3f %12.3f %12.3f %8.2fx\n",
                    crypto::cipherInfo(row.id).name.c_str(),
                    row.interp.recordSeconds * 1e3,
                    row.threaded.recordSeconds * 1e3,
                    row.threaded.decodeSeconds * 1e3,
                    row.threaded.recordSeconds > 0
                        ? row.interp.recordSeconds
                              / row.threaded.recordSeconds
                        : 0.0);
    }
    std::printf("%-10s %12.3f %12.3f %12s %8.2fx\n", "total",
                sumInterp * 1e3, sumThreaded * 1e3, "",
                sumThreaded > 0 ? sumInterp / sumThreaded : 0.0);

    driver::writeBenchJson("BENCH_simspeed.json", "simspeed", results,
                           extras);
    std::printf("\n(Host timing per cell: BENCH_simspeed.json; %zu "
                "cells; stored traces %.1fx smaller than packed, "
                "%.1fx smaller than raw DynInst records.)\n",
                results.size(),
                totalStored ? static_cast<double>(totalPacked) / totalStored
                            : 1.0,
                totalStored ? static_cast<double>(totalRaw) / totalStored
                            : 1.0);
    return 0;
}
