/**
 * @file
 * Regenerates paper Table 2: the four microarchitecture models.
 */

#include <cstdio>
#include <string>

#include "sim/config.hh"

namespace
{

using cryptarch::sim::MachineConfig;
using cryptarch::sim::unlimited;

std::string
num(unsigned v)
{
    return v == unlimited ? "inf" : std::to_string(v);
}

} // namespace

int
main()
{
    using cryptarch::sim::MachineConfig;

    MachineConfig models[4] = {
        MachineConfig::fourWide(),
        MachineConfig::fourWidePlus(),
        MachineConfig::eightWidePlus(),
        MachineConfig::dataflow(),
    };

    std::printf("Table 2. Microarchitecture Models.\n\n");
    std::printf("%-26s", "");
    for (const auto &m : models)
        std::printf("%10s", m.name.c_str());
    std::printf("\n%.70s\n",
                "----------------------------------------------------"
                "------------------");

    auto row = [&](const char *label, auto get) {
        std::printf("%-26s", label);
        for (const auto &m : models)
            std::printf("%10s", get(m).c_str());
        std::printf("\n");
    };

    row("Fetch (blocks/cycle)", [](const MachineConfig &m) {
        return num(m.fetchBlocksPerCycle);
    });
    row("Window Size", [](const MachineConfig &m) {
        return num(m.windowSize);
    });
    row("Issue Width", [](const MachineConfig &m) {
        return num(m.issueWidth);
    });
    row("IALU resources", [](const MachineConfig &m) {
        return num(m.numIntAlu);
    });
    row("IMULT half-slots", [](const MachineConfig &m) {
        return num(m.mulHalfSlots);
    });
    row("D-Cache Ports", [](const MachineConfig &m) {
        return num(m.numDCachePorts);
    });
    row("SBox Caches", [](const MachineConfig &m) {
        return m.perfectSbox ? std::string("inf")
                             : num(m.numSboxCaches);
    });
    row("SBox Cache Ports", [](const MachineConfig &m) {
        return m.perfectSbox ? std::string("inf")
                             : num(m.sboxCachePorts);
    });
    row("Rotator/XBOX units", [](const MachineConfig &m) {
        return num(m.numRotUnits);
    });

    std::printf(
        "\nLatencies (cycles): ALU %u, 64-bit MUL %u, 32-bit MUL %u,\n"
        "MULMOD %u, rotate/XBOX %u, load %u, SBOX-on-D-cache %u,\n"
        "SBox cache %u. A 64-bit multiply consumes two half-slots; a\n"
        "32-bit multiply or MULMOD consumes one (\"1-64 / 2-32 /\n"
        "2-16mod per cycle\").\n",
        models[0].aluLat, models[0].mulLat64, models[0].mulLat32,
        models[0].mulmodLat, models[0].rotLat, models[0].loadLat,
        models[0].sboxOnDcacheLat, models[0].sboxCacheLat);
    return 0;
}
