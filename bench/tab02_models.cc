/**
 * @file
 * Regenerates paper Table 2: the four microarchitecture models —
 * followed by a measured companion table (the optimized kernels run on
 * each model through the bench driver: one functional pass per cipher,
 * all four models replayed from the recorded trace in parallel), with
 * the full per-model SimStats emitted to BENCH_tab02.json.
 */

#include <cmath>
#include <cstdio>
#include <string>

#include "bench/common.hh"
#include "sim/config.hh"

namespace
{

using cryptarch::sim::MachineConfig;
using cryptarch::sim::unlimited;

std::string
num(unsigned v)
{
    return v == unlimited ? "inf" : std::to_string(v);
}

} // namespace

int
main(int argc, char **argv)
{
    using cryptarch::sim::MachineConfig;

    MachineConfig models[4] = {
        MachineConfig::fourWide(),
        MachineConfig::fourWidePlus(),
        MachineConfig::eightWidePlus(),
        MachineConfig::dataflow(),
    };

    std::printf("Table 2. Microarchitecture Models.\n\n");
    std::printf("%-26s", "");
    for (const auto &m : models)
        std::printf("%10s", m.name.c_str());
    std::printf("\n%.70s\n",
                "----------------------------------------------------"
                "------------------");

    auto row = [&](const char *label, auto get) {
        std::printf("%-26s", label);
        for (const auto &m : models)
            std::printf("%10s", get(m).c_str());
        std::printf("\n");
    };

    row("Fetch (blocks/cycle)", [](const MachineConfig &m) {
        return num(m.fetchBlocksPerCycle);
    });
    row("Window Size", [](const MachineConfig &m) {
        return num(m.windowSize);
    });
    row("Issue Width", [](const MachineConfig &m) {
        return num(m.issueWidth);
    });
    row("IALU resources", [](const MachineConfig &m) {
        return num(m.numIntAlu);
    });
    row("IMULT half-slots", [](const MachineConfig &m) {
        return num(m.mulHalfSlots);
    });
    row("D-Cache Ports", [](const MachineConfig &m) {
        return num(m.numDCachePorts);
    });
    row("SBox Caches", [](const MachineConfig &m) {
        return m.perfectSbox ? std::string("inf")
                             : num(m.numSboxCaches);
    });
    row("SBox Cache Ports", [](const MachineConfig &m) {
        return m.perfectSbox ? std::string("inf")
                             : num(m.sboxCachePorts);
    });
    row("Rotator/XBOX units", [](const MachineConfig &m) {
        return num(m.numRotUnits);
    });

    std::printf(
        "\nLatencies (cycles): ALU %u, 64-bit MUL %u, 32-bit MUL %u,\n"
        "MULMOD %u, rotate/XBOX %u, load %u, SBOX-on-D-cache %u,\n"
        "SBox cache %u. A 64-bit multiply consumes two half-slots; a\n"
        "32-bit multiply or MULMOD consumes one (\"1-64 / 2-32 /\n"
        "2-16mod per cycle\").\n",
        models[0].aluLat, models[0].mulLat64, models[0].mulLat32,
        models[0].mulmodLat, models[0].rotLat, models[0].loadLat,
        models[0].sboxOnDcacheLat, models[0].sboxCacheLat);

    // Measured companion: optimized kernels on each model.
    using namespace cryptarch::bench;
    auto spec = cryptarch::driver::tab02Spec();
    auto results =
        cryptarch::driver::runSweep(spec, sweepOptions(argc, argv));

    std::printf("\nMeasured on the optimized kernels "
                "(bytes/1000 cycles, 4KB session):\n\n");
    std::printf("%-10s", "Cipher");
    for (const auto &m : models)
        std::printf("%10s", m.name.c_str());
    std::printf("\n%.50s\n",
                "--------------------------------------------------");
    for (auto id : allCiphers()) {
        std::printf("%-10s", cryptarch::crypto::cipherInfo(id).name.c_str());
        for (const auto &m : models) {
            const auto &r = cryptarch::driver::findResult(
                results, id, spec.variants[0], m.name);
            std::printf("%10s",
                        gridCell(r.ok(), "%.1f",
                                 bytesPerKiloCycle(r.stats.cycles,
                                                   r.bytes))
                            .c_str());
        }
        std::printf("\n");
    }

    // Geomean over the cells that produced stats; a failed cell drops
    // out rather than poisoning the column.
    std::printf("%-10s", "gm IPC");
    for (const auto &m : models) {
        double prod = 1.0;
        int n = 0;
        for (const auto &r : results)
            if (r.model == m.name && r.ok()) {
                prod *= r.stats.ipc();
                n++;
            }
        std::printf("%10s",
                    gridCell(n > 0, "%.2f",
                             n ? std::pow(prod, 1.0 / n) : 0.0)
                        .c_str());
    }
    std::printf("\n");

    cryptarch::driver::writeBenchJson("BENCH_tab02.json", "tab02", results);
    std::printf("\n(Per-model SimStats: BENCH_tab02.json.)\n");
    return reportFailedCells(results);
}
