/**
 * @file
 * Regenerates paper Figure 7: characterization of cipher kernel
 * operations — the fraction of dynamic instructions in each hand-
 * classified category.
 *
 * Paper shape: two algorithm families — computational ciphers (IDEA,
 * RC6) dominated by arithmetic/multiplies, and substitution ciphers
 * (Blowfish, 3DES, Rijndael, Twofish) dominated by S-box accesses.
 * 3DES additionally shows the only Permute component.
 *
 * With --value-prediction the section 4.3 experiment runs instead: an
 * infinite last-value predictor over every kernel instruction (paper
 * result: the most predictable dependence edge is right only 6.3% of
 * the time).
 */

#include <cstdio>
#include <cstring>

#include "bench/common.hh"
#include "sim/value_pred.hh"

namespace
{

using namespace cryptarch;
using namespace cryptarch::bench;

void
opMixReport()
{
    std::printf("Figure 7. Characterization of Cipher Kernel "
                "Operations\n(%% of dynamic instructions, original "
                "kernels with rotates, 4KB session).\n\n");
    std::printf("%-10s", "Cipher");
    for (unsigned c = 0; c < kernels::num_op_categories; c++) {
        std::printf("%8.7s",
                    kernels::categoryName(
                        static_cast<kernels::OpCategory>(c))
                        .c_str());
    }
    std::printf("\n%.76s\n",
                "----------------------------------------------------"
                "------------------------");

    for (auto id : allCiphers()) {
        const auto &info = crypto::cipherInfo(id);
        Workload w = makeWorkload(id);
        auto build = kernels::buildKernel(
            id, kernels::KernelVariant::BaselineRot, w.key, w.iv,
            session_bytes);
        isa::Machine m;
        build.install(m, kernels::toWordImage(id, w.plaintext));
        kernels::OpMixCounter mix(build);
        m.run(build.program, &mix, 1ull << 32);

        std::printf("%-10s", info.name.c_str());
        for (unsigned c = 0; c < kernels::num_op_categories; c++) {
            std::printf("%7.1f%%",
                        100.0 * mix.fraction(
                            static_cast<kernels::OpCategory>(c)));
        }
        std::printf("\n");
    }
}

void
valuePredictionReport()
{
    std::printf("Section 4.3 experiment: infinite last-value predictor "
                "over kernel instructions.\n(Paper: best dependence "
                "edge predictable only 6.3%% of the time.)\n\n");
    std::printf("%-10s %14s %10s %12s\n", "Cipher", "best data edge",
                "mean", "invariant");
    std::printf("%.50s\n",
                "--------------------------------------------------");
    for (auto id : allCiphers()) {
        const auto &info = crypto::cipherInfo(id);
        Workload w = makeWorkload(id);
        auto build = kernels::buildKernel(
            id, kernels::KernelVariant::BaselineRot, w.key, w.iv,
            session_bytes);
        isa::Machine m;
        build.install(m, kernels::toWordImage(id, w.plaintext));
        sim::LastValuePredictor lvp;
        m.run(build.program, &lvp, 1ull << 32);
        std::printf("%-10s %13.1f%% %9.1f%% %12llu\n",
                    info.name.c_str(),
                    100.0 * lvp.bestPredictability(64, true),
                    100.0 * lvp.meanPredictability(),
                    static_cast<unsigned long long>(
                        lvp.invariantCount()));
    }
    std::printf("\n(\"best data edge\" excludes loop-invariant "
                "instructions — reloads of round\nkeys and table bases "
                "that are trivially predictable but sit on no cipher\n"
                "dependence chain. Diffusion makes everything else "
                "unpredictable, ruling\nout value speculation, as the "
                "paper concludes.)\n");
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc > 1 && std::strcmp(argv[1], "--value-prediction") == 0)
        valuePredictionReport();
    else
        opMixReport();
    return 0;
}
