/**
 * @file
 * Server-at-scale SSL session simulation (ROADMAP item 1: Figure 2
 * grown into a loaded server).
 *
 * Per (bulk cipher, machine model) the kernel is timed through the
 * existing sweep runner at two probe lengths — the marginal slope is
 * the steady-state cycles/byte and the intercept the per-invocation
 * prologue (the same accounting SessionModel uses) — and the RSA-1024
 * handshake word multiplies are measured once with per-side counter
 * resets, so only the server's CRT private operation is billed to the
 * server. Key-setup cycles use the Figure 6 estimate over the
 * measured kernel IPC, which is what makes Blowfish's 521-encryption
 * key schedule a first-class axis of the results.
 *
 * Those rates feed ssl::runServerSims: an open-loop Poisson arrival
 * process over a population of sessions (default one million per
 * cell), log-normal session lengths split over geometric request
 * counts, per-session CBC chaining state carried across requests, and
 * an FCFS bank of cores. Output per cell: the population-aggregated
 * Figure 2 fraction breakdown and, per offered-load factor, latency
 * percentiles (p50/p95/p99) and offered vs. achieved throughput.
 *
 * Everything is deterministic for any worker-thread count; the full
 * grid goes to BENCH_server.json (schema 3 rows — the probe-kernel
 * SimStats — plus a "server" extras object per row, the same
 * extension mechanism simspeed uses).
 *
 * Usage: server_scale [--quick] [--sessions N] [--threads N]
 *   --quick      CI smoke mode: fewer cells, 50k sessions.
 *   --sessions N population size per cell (overrides mode default).
 *   --threads N  worker threads for kernel sweep and simulations.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/common.hh"
#include "ssl/server.hh"
#include "ssl/session.hh"

namespace
{

using namespace cryptarch;

constexpr size_t probe_lo = 2048;
constexpr size_t probe_hi = 4096;

/** Setup-cycle estimate at the measured IPC (the Figure 6 numbers). */
double
setupCycles(crypto::CipherId id, double ipc)
{
    const auto &info = crypto::cipherInfo(id);
    uint64_t insts = info.isStream
        ? crypto::makeStreamCipher(id)->setupOpEstimate()
        : crypto::makeBlockCipher(id)->setupOpEstimate();
    return static_cast<double>(insts) / (ipc > 0 ? ipc : 1.0);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace cryptarch::bench;

    bool quick = false;
    uint64_t sessions_override = 0;
    unsigned threads = 0;
    for (int i = 1; i < argc; i++) {
        if (!std::strcmp(argv[i], "--quick"))
            quick = true;
        else if (!std::strcmp(argv[i], "--sessions") && i + 1 < argc)
            sessions_override = std::strtoull(argv[++i], nullptr, 10);
        else if (!std::strcmp(argv[i], "--threads") && i + 1 < argc)
            threads = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
    }

    // The paper's default bulk cipher (3DES), the fast stream cipher
    // (RC4), and the key-agility outlier (Blowfish, Figure 6).
    const std::vector<crypto::CipherId> ciphers = quick
        ? std::vector<crypto::CipherId>{crypto::CipherId::TripleDES,
                                        crypto::CipherId::Blowfish}
        : std::vector<crypto::CipherId>{crypto::CipherId::TripleDES,
                                        crypto::CipherId::RC4,
                                        crypto::CipherId::Blowfish};
    const std::vector<sim::MachineConfig> models = quick
        ? std::vector<sim::MachineConfig>{sim::MachineConfig::fourWide(),
                                          sim::MachineConfig::dataflow()}
        : std::vector<sim::MachineConfig>{
              sim::MachineConfig::fourWide(),
              sim::MachineConfig::fourWidePlus(),
              sim::MachineConfig::eightWidePlus(),
              sim::MachineConfig::dataflow()};

    ssl::ServerSimParams params;
    params.sessions = sessions_override
        ? sessions_override
        : (quick ? 50000ull : 1000000ull);
    if (quick)
        params.loadFactors = {0.8, 1.1};

    // --- handshake: one measurement, per-side counters ---
    ssl::SessionModelParams costs; // default calibration constants
    auto ops = ssl::measureHandshakeOps(costs.rsaBits);
    const double server_handshake =
        static_cast<double>(ops.serverMulOps) * costs.cyclesPerWordMul;
    const double client_handshake =
        static_cast<double>(ops.clientMulOps) * costs.cyclesPerWordMul;

    std::printf("Server at scale: SSL session population per "
                "(cipher, model)\n(%s mode: %llu sessions/cell, %u "
                "cores, RSA-%u handshake %.2f Mcycles server / %.3f "
                "Mcycles client)\n\n",
                quick ? "quick" : "full",
                static_cast<unsigned long long>(params.sessions),
                params.servers, costs.rsaBits, server_handshake / 1e6,
                client_handshake / 1e6);

    // --- kernel rates through the sweep runner: two probes per cell,
    // recorded once per (cipher, bytes) and replayed per model ---
    std::vector<driver::SweepCell> cells;
    for (auto id : ciphers)
        for (const auto &model : models)
            for (size_t bytes : {probe_lo, probe_hi})
                cells.push_back({id, kernels::KernelVariant::BaselineRot,
                                 model, bytes});
    auto kernel_results = driver::runCells(cells, threads);

    std::vector<driver::SweepResult> rows;
    std::vector<ssl::ServerRates> rates;
    std::vector<size_t> rate_row; // row index of each rates entry
    for (size_t ci = 0; ci < ciphers.size(); ci++) {
        for (size_t mi = 0; mi < models.size(); mi++) {
            const auto &lo =
                kernel_results[(ci * models.size() + mi) * 2];
            const auto &hi =
                kernel_results[(ci * models.size() + mi) * 2 + 1];
            driver::SweepResult row = hi; // probe-kernel stats
            if (lo.ok() && hi.ok()) {
                ssl::ServerRates r;
                r.cipher = ciphers[ci];
                r.model = models[mi].name;
                r.serverHandshakeCycles = server_handshake;
                r.clientHandshakeCycles = client_handshake;
                r.cyclesPerByte =
                    static_cast<double>(hi.stats.cycles - lo.stats.cycles)
                    / static_cast<double>(probe_hi - probe_lo);
                r.prologueCycles =
                    static_cast<double>(lo.stats.cycles)
                    - r.cyclesPerByte * static_cast<double>(probe_lo);
                r.keySetupCycles =
                    setupCycles(ciphers[ci], hi.stats.ipc());
                r.requestOverheadCycles = costs.requestOverheadCycles;
                r.perByteOverheadCycles = costs.perByteOverheadCycles;
                rate_row.push_back(rows.size());
                rates.push_back(r);
            } else if (!lo.ok()) {
                row = lo; // carry the failing probe's outcome
            }
            rows.push_back(row);
        }
    }

    // --- the simulations themselves (deterministic for any count) ---
    auto sims = ssl::runServerSims(rates, params, threads);

    std::vector<std::string> extras(rows.size());
    for (size_t i = 0; i < rates.size(); i++) {
        const auto &r = rates[i];
        const auto &s = sims[i];

        std::printf("%s on %s: %.2f cyc/B + %.0f-cycle prologue, "
                    "setup %.0f cycles; mean service %.3f Mcycles\n",
                    crypto::cipherInfo(r.cipher).name.c_str(),
                    r.model.c_str(), r.cyclesPerByte, r.prologueCycles,
                    r.keySetupCycles, s.meanServiceCycles / 1e6);
        std::printf("  population: %.0f B/session mean, %.2f "
                    "requests/session, %.1f%% resumed, fractions "
                    "public %.1f%% / setup %.1f%% / bulk %.1f%% / "
                    "other %.1f%%, chain digest %016llx\n",
                    s.meanSessionBytes, s.meanRequests,
                    100 * s.resumedShare,
                    100 * s.handshakeFraction, 100 * s.setupFraction,
                    100 * s.bulkFraction, 100 * s.otherFraction,
                    static_cast<unsigned long long>(s.chainDigest));
        std::printf("  %6s %14s %14s %6s %10s %10s %10s\n", "load",
                    "offered/Gcyc", "achieved/Gcyc", "util",
                    "p50 Mcyc", "p95 Mcyc", "p99 Mcyc");
        std::string curve = "\"curve\": [";
        for (size_t p = 0; p < s.points.size(); p++) {
            const auto &pt = s.points[p];
            std::printf("  %6.2f %14.3f %14.3f %5.1f%% %10.3f %10.3f "
                        "%10.3f\n",
                        pt.loadFactor, pt.offeredPerGcycle,
                        pt.achievedPerGcycle, 100 * pt.utilization,
                        pt.p50Cycles / 1e6, pt.p95Cycles / 1e6,
                        pt.p99Cycles / 1e6);
            char buf[320];
            std::snprintf(
                buf, sizeof(buf),
                "%s{\"load\": %.2f, \"offered_per_gcycle\": %.4f, "
                "\"achieved_per_gcycle\": %.4f, \"utilization\": %.4f, "
                "\"p50_mcycles\": %.4f, \"p95_mcycles\": %.4f, "
                "\"p99_mcycles\": %.4f, \"mean_mcycles\": %.4f}",
                p ? ", " : "", pt.loadFactor, pt.offeredPerGcycle,
                pt.achievedPerGcycle, pt.utilization,
                pt.p50Cycles / 1e6, pt.p95Cycles / 1e6,
                pt.p99Cycles / 1e6, pt.meanCycles / 1e6);
            curve += buf;
        }
        curve += "]";
        std::printf("\n");

        char head[768];
        std::snprintf(
            head, sizeof(head),
            "\"server\": {\"sessions\": %llu, \"servers\": %u, "
            "\"seed\": %llu, "
            "\"rates\": {\"server_handshake_mcycles\": %.6f, "
            "\"client_handshake_mcycles\": %.6f, "
            "\"key_setup_cycles\": %.1f, \"prologue_cycles\": %.1f, "
            "\"cycles_per_byte\": %.4f, "
            "\"request_overhead_cycles\": %.1f, "
            "\"per_byte_overhead_cycles\": %.2f}, "
            "\"population\": {\"mean_session_bytes\": %.1f, "
            "\"mean_requests\": %.4f, \"resumed_share\": %.4f, "
            "\"mean_service_mcycles\": %.6f, "
            "\"chain_digest\": \"%016llx\", "
            "\"fractions\": {\"public_key\": %.6f, \"setup\": %.6f, "
            "\"bulk\": %.6f, \"other\": %.6f}}, ",
            static_cast<unsigned long long>(s.sessions), s.servers,
            static_cast<unsigned long long>(params.seed),
            r.serverHandshakeCycles / 1e6,
            r.clientHandshakeCycles / 1e6, r.keySetupCycles,
            r.prologueCycles, r.cyclesPerByte, r.requestOverheadCycles,
            r.perByteOverheadCycles, s.meanSessionBytes, s.meanRequests,
            s.resumedShare, s.meanServiceCycles / 1e6,
            static_cast<unsigned long long>(s.chainDigest),
            s.handshakeFraction, s.setupFraction, s.bulkFraction,
            s.otherFraction);
        extras[rate_row[i]] = std::string(head) + curve + "}";
    }

    driver::writeBenchJson("BENCH_server.json", "server_scale", rows,
                           extras);
    std::printf("(Full grid: BENCH_server.json; %zu cells, %zu "
                "simulated.)\n",
                rows.size(), sims.size());
    return reportFailedCells(rows);
}
