/**
 * @file
 * google-benchmark wall-clock throughput of the reference cipher
 * library on the host machine (not a paper figure; a sanity check
 * that the reference implementations are usably fast and a baseline
 * for anyone adopting the library).
 */

#include <benchmark/benchmark.h>

#include "crypto/cbc.hh"
#include "crypto/cipher.hh"
#include "util/xorshift.hh"

namespace
{

using namespace cryptarch;

void
blockCipherCbc(benchmark::State &state, crypto::CipherId id)
{
    const auto &info = crypto::cipherInfo(id);
    util::Xorshift64 rng(1);
    auto cipher = crypto::makeBlockCipher(id);
    cipher->setKey(rng.bytes(info.keyBits / 8));
    auto iv = rng.bytes(info.blockBytes);
    auto pt = rng.bytes(4096);
    std::vector<uint8_t> ct(pt.size());
    crypto::CbcEncryptor enc(*cipher, iv);
    for (auto _ : state) {
        enc.encrypt(pt, ct);
        benchmark::DoNotOptimize(ct.data());
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations())
                            * static_cast<int64_t>(pt.size()));
}

void
rc4Stream(benchmark::State &state)
{
    util::Xorshift64 rng(2);
    auto rc4 = crypto::makeStreamCipher(crypto::CipherId::RC4);
    rc4->setKey(rng.bytes(16));
    auto pt = rng.bytes(4096);
    std::vector<uint8_t> ct(pt.size());
    for (auto _ : state) {
        rc4->process(pt.data(), ct.data(), pt.size());
        benchmark::DoNotOptimize(ct.data());
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations())
                            * static_cast<int64_t>(pt.size()));
}

void
keySetup(benchmark::State &state, crypto::CipherId id)
{
    const auto &info = crypto::cipherInfo(id);
    util::Xorshift64 rng(3);
    auto cipher = crypto::makeBlockCipher(id);
    auto key = rng.bytes(info.keyBits / 8);
    for (auto _ : state) {
        cipher->setKey(key);
        benchmark::DoNotOptimize(cipher.get());
    }
}

} // namespace

BENCHMARK_CAPTURE(blockCipherCbc, 3DES, crypto::CipherId::TripleDES);
BENCHMARK_CAPTURE(blockCipherCbc, Blowfish, crypto::CipherId::Blowfish);
BENCHMARK_CAPTURE(blockCipherCbc, IDEA, crypto::CipherId::IDEA);
BENCHMARK_CAPTURE(blockCipherCbc, Mars, crypto::CipherId::MARS);
BENCHMARK_CAPTURE(blockCipherCbc, RC6, crypto::CipherId::RC6);
BENCHMARK_CAPTURE(blockCipherCbc, Rijndael, crypto::CipherId::Rijndael);
BENCHMARK_CAPTURE(blockCipherCbc, Twofish, crypto::CipherId::Twofish);
BENCHMARK(rc4Stream);
BENCHMARK_CAPTURE(keySetup, Blowfish, crypto::CipherId::Blowfish);
BENCHMARK_CAPTURE(keySetup, Twofish, crypto::CipherId::Twofish);
BENCHMARK_CAPTURE(keySetup, Rijndael, crypto::CipherId::Rijndael);

BENCHMARK_MAIN();
