/**
 * @file
 * google-benchmark wall-clock throughput of the reference cipher
 * library on the host machine (not a paper figure; a sanity check
 * that the reference implementations are usably fast and a baseline
 * for anyone adopting the library).
 *
 * The kernelExec benchmarks put the CryptISA execution backends on the
 * same axis: the Optimized kernel of each cipher executed functionally
 * (no trace sink) over a standard session, reported in bytes/second
 * exactly like the native library loops above them. That makes the
 * interpreter-vs-threaded record-phase gap — and the remaining gap to
 * native host code — one apples-to-apples table in a single binary.
 */

#include <benchmark/benchmark.h>

#include "crypto/cbc.hh"
#include "crypto/cipher.hh"
#include "driver/workload.hh"
#include "isa/exec_backend.hh"
#include "kernels/kernel.hh"
#include "util/xorshift.hh"

namespace
{

using namespace cryptarch;

void
blockCipherCbc(benchmark::State &state, crypto::CipherId id)
{
    const auto &info = crypto::cipherInfo(id);
    util::Xorshift64 rng(1);
    auto cipher = crypto::makeBlockCipher(id);
    cipher->setKey(rng.bytes(info.keyBits / 8));
    auto iv = rng.bytes(info.blockBytes);
    auto pt = rng.bytes(4096);
    std::vector<uint8_t> ct(pt.size());
    crypto::CbcEncryptor enc(*cipher, iv);
    for (auto _ : state) {
        enc.encrypt(pt, ct);
        benchmark::DoNotOptimize(ct.data());
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations())
                            * static_cast<int64_t>(pt.size()));
}

void
rc4Stream(benchmark::State &state)
{
    util::Xorshift64 rng(2);
    auto rc4 = crypto::makeStreamCipher(crypto::CipherId::RC4);
    rc4->setKey(rng.bytes(16));
    auto pt = rng.bytes(4096);
    std::vector<uint8_t> ct(pt.size());
    for (auto _ : state) {
        rc4->process(pt.data(), ct.data(), pt.size());
        benchmark::DoNotOptimize(ct.data());
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations())
                            * static_cast<int64_t>(pt.size()));
}

/**
 * One functional execution of the cipher's Optimized kernel per
 * iteration, on the selected backend. The kernel image is reinstalled
 * each iteration (machine state is consumed by a run), mirroring the
 * native loops' per-iteration input/output traffic; pre-decode for the
 * threaded backend happens once outside the loop, like native key
 * setup.
 */
void
kernelExec(benchmark::State &state, crypto::CipherId id,
           isa::ExecBackendKind kind)
{
    auto w = driver::makeWorkload(id, driver::session_bytes);
    auto build =
        kernels::buildKernel(id, kernels::KernelVariant::Optimized, w.key,
                             w.iv, driver::session_bytes,
                             kernels::KernelDirection::Encrypt);
    const auto image = kernels::toWordImage(id, w.plaintext);
    auto m = isa::makeExecBackend(kind);
    m->prepare(build.program);
    for (auto _ : state) {
        build.install(*m, image);
        auto stats = m->run(build.program);
        benchmark::DoNotOptimize(stats.instructions);
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations())
                            * static_cast<int64_t>(driver::session_bytes));
}

void
keySetup(benchmark::State &state, crypto::CipherId id)
{
    const auto &info = crypto::cipherInfo(id);
    util::Xorshift64 rng(3);
    auto cipher = crypto::makeBlockCipher(id);
    auto key = rng.bytes(info.keyBits / 8);
    for (auto _ : state) {
        cipher->setKey(key);
        benchmark::DoNotOptimize(cipher.get());
    }
}

} // namespace

BENCHMARK_CAPTURE(blockCipherCbc, 3DES, crypto::CipherId::TripleDES);
BENCHMARK_CAPTURE(blockCipherCbc, Blowfish, crypto::CipherId::Blowfish);
BENCHMARK_CAPTURE(blockCipherCbc, IDEA, crypto::CipherId::IDEA);
BENCHMARK_CAPTURE(blockCipherCbc, Mars, crypto::CipherId::MARS);
BENCHMARK_CAPTURE(blockCipherCbc, RC6, crypto::CipherId::RC6);
BENCHMARK_CAPTURE(blockCipherCbc, Rijndael, crypto::CipherId::Rijndael);
BENCHMARK_CAPTURE(blockCipherCbc, Twofish, crypto::CipherId::Twofish);
BENCHMARK(rc4Stream);
#define KERNEL_EXEC_BENCH(name, id)                                      \
    BENCHMARK_CAPTURE(kernelExec, name##_interpreter,                    \
                      crypto::CipherId::id,                              \
                      cryptarch::isa::ExecBackendKind::Interpreter);     \
    BENCHMARK_CAPTURE(kernelExec, name##_threaded, crypto::CipherId::id, \
                      cryptarch::isa::ExecBackendKind::Threaded)
KERNEL_EXEC_BENCH(3DES, TripleDES);
KERNEL_EXEC_BENCH(Blowfish, Blowfish);
KERNEL_EXEC_BENCH(IDEA, IDEA);
KERNEL_EXEC_BENCH(Mars, MARS);
KERNEL_EXEC_BENCH(RC4, RC4);
KERNEL_EXEC_BENCH(RC6, RC6);
KERNEL_EXEC_BENCH(Rijndael, Rijndael);
KERNEL_EXEC_BENCH(Twofish, Twofish);
#undef KERNEL_EXEC_BENCH
BENCHMARK_CAPTURE(keySetup, Blowfish, crypto::CipherId::Blowfish);
BENCHMARK_CAPTURE(keySetup, Twofish, crypto::CipherId::Twofish);
BENCHMARK_CAPTURE(keySetup, Rijndael, crypto::CipherId::Rijndael);

BENCHMARK_MAIN();
