#include "verify/oracle.hh"

#include <cstdio>

#include "crypto/cbc.hh"

namespace cryptarch::verify
{

namespace
{

std::string
mismatchMessage(const std::string &kernel, size_t offset,
                uint8_t expected, uint8_t actual)
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "verify failed: %s output byte %zu is 0x%02x, "
                  "reference cipher says 0x%02x",
                  kernel.c_str(), offset, actual, expected);
    return buf;
}

} // namespace

VerifyError::VerifyError(const std::string &kernel, size_t offset,
                         uint8_t expected, uint8_t actual)
    : std::runtime_error(mismatchMessage(kernel, offset, expected,
                                         actual)),
      kernel_(kernel), offset_(offset), expected_(expected),
      actual_(actual)
{
}

std::vector<uint8_t>
referenceProcess(crypto::CipherId id, std::span<const uint8_t> key,
                 std::span<const uint8_t> iv,
                 std::span<const uint8_t> input,
                 kernels::KernelDirection direction)
{
    if (id == crypto::CipherId::RC4) {
        auto rc4 = crypto::makeStreamCipher(id);
        rc4->setKey(key);
        std::vector<uint8_t> out(input.size());
        rc4->process(input.data(), out.data(), input.size());
        return out;
    }
    auto cipher = crypto::makeBlockCipher(id);
    cipher->setKey(key);
    if (direction == kernels::KernelDirection::Encrypt) {
        crypto::CbcEncryptor enc(*cipher, iv);
        return enc.encrypt(input);
    }
    crypto::CbcDecryptor dec(*cipher, iv);
    return dec.decrypt(input);
}

void
verifyKernelOutput(const kernels::KernelBuild &build,
                   const isa::ExecBackend &m, std::span<const uint8_t> key,
                   std::span<const uint8_t> iv,
                   std::span<const uint8_t> input,
                   kernels::KernelDirection direction)
{
    const auto expect =
        referenceProcess(build.cipher, key, iv, input, direction);
    const auto actual =
        kernels::fromWordImage(build.cipher, build.readOutput(m));
    if (expect.size() != actual.size())
        throw VerifyError(build.name, std::min(expect.size(),
                                               actual.size()),
                          0, 0);
    for (size_t i = 0; i < expect.size(); i++)
        if (expect[i] != actual[i])
            throw VerifyError(build.name, i, expect[i], actual[i]);
}

} // namespace cryptarch::verify
