/**
 * @file
 * Seeded fault-injection harness.
 *
 * Injects deterministic, seeded bit flips into machine registers, data
 * memory, and serialized packed-trace streams, then classifies how (or
 * whether) the verification layer caught each one:
 *
 *   DetectedTrap    the machine raised an isa::Trap (corrupt pointer
 *                   walked out of memory, pc ran away, ...)
 *   DetectedOracle  execution completed but the record-time oracle
 *                   caught the wrong ciphertext
 *   DetectedTrace   the packed-trace integrity check (checksum /
 *                   header / consistency validation) rejected the
 *                   corrupted stream
 *   Masked          the fault changed nothing the checks observe
 *                   (dead register, stale byte, output unchanged)
 *
 * Detection coverage — the fraction of injections not masked — is the
 * robustness analogue of the simspeed trajectory: bench/faultinject
 * sweeps this grid and emits BENCH_faults.json.
 */

#ifndef CRYPTARCH_VERIFY_FAULTS_HH
#define CRYPTARCH_VERIFY_FAULTS_HH

#include <cstdint>
#include <string>

#include "isa/machine.hh"
#include "kernels/kernel.hh"

namespace cryptarch::verify
{

/** Where an injection lands. */
enum class FaultSite : uint8_t
{
    Register, ///< one architectural register, one bit, mid-run
    Memory,   ///< one data-memory byte in a kernel-touched span
    TraceByte, ///< one byte of the serialized packed trace
};

/** Stable site name ("register", "memory", "trace"). */
const char *faultSiteName(FaultSite site);

/** How (or whether) the checks caught an injection. */
enum class FaultOutcome : uint8_t
{
    DetectedTrap,
    DetectedOracle,
    DetectedTrace,
    Masked,
};

/** Stable outcome name ("trap", "oracle", "trace", "masked"). */
const char *faultOutcomeName(FaultOutcome outcome);

/** One classified injection. */
struct InjectionResult
{
    FaultOutcome outcome{};
    /** The trap/oracle/trace error message, empty when masked. */
    std::string detail;
};

/**
 * Run the (cipher, variant) encryption kernel over the standard
 * deterministic workload with one seeded fault at @p site, and
 * classify the result. @p seed selects the fault's location and bit
 * deterministically; equal seeds reproduce identical injections.
 */
InjectionResult injectAndClassify(crypto::CipherId cipher,
                                  kernels::KernelVariant variant,
                                  FaultSite site, uint64_t seed,
                                  size_t session_bytes);

/** Aggregated classification counts over a run of injections. */
struct FaultTally
{
    uint64_t injections = 0;
    uint64_t detectedTrap = 0;
    uint64_t detectedOracle = 0;
    uint64_t detectedTrace = 0;
    uint64_t masked = 0;

    void add(FaultOutcome outcome);

    /** Fraction of injections any check caught. */
    double
    coverage() const
    {
        return injections
            ? 1.0 - static_cast<double>(masked) / injections
            : 0.0;
    }
};

/**
 * Inject @p count seeded faults (seeds @p seed0 .. @p seed0+count-1)
 * at @p site into the (cipher, variant) kernel and tally the
 * classifications.
 */
FaultTally injectionSweep(crypto::CipherId cipher,
                          kernels::KernelVariant variant, FaultSite site,
                          uint64_t seed0, unsigned count,
                          size_t session_bytes);

} // namespace cryptarch::verify

#endif // CRYPTARCH_VERIFY_FAULTS_HH
