#include "verify/faults.hh"

#include <cstdio>
#include <vector>

#include "isa/packed_trace.hh"
#include "util/xorshift.hh"
#include "verify/oracle.hh"

namespace cryptarch::verify
{

const char *
faultSiteName(FaultSite site)
{
    switch (site) {
      case FaultSite::Register: return "register";
      case FaultSite::Memory: return "memory";
      case FaultSite::TraceByte: return "trace";
    }
    return "?";
}

const char *
faultOutcomeName(FaultOutcome outcome)
{
    switch (outcome) {
      case FaultOutcome::DetectedTrap: return "trap";
      case FaultOutcome::DetectedOracle: return "oracle";
      case FaultOutcome::DetectedTrace: return "trace";
      case FaultOutcome::Masked: return "masked";
    }
    return "?";
}

void
FaultTally::add(FaultOutcome outcome)
{
    injections++;
    switch (outcome) {
      case FaultOutcome::DetectedTrap: detectedTrap++; break;
      case FaultOutcome::DetectedOracle: detectedOracle++; break;
      case FaultOutcome::DetectedTrace: detectedTrace++; break;
      case FaultOutcome::Masked: masked++; break;
    }
}

namespace
{

/** Collects the packed stream of a clean functional run. */
struct PackSink : isa::TraceSink
{
    isa::PackedTrace trace;

    void
    emit(const isa::DynInst &inst) override
    {
        trace.append(inst, /*keepResult=*/false);
    }
};

/**
 * Everything one (cipher, variant, bytes) target needs across a run of
 * injections: the kernel, its session material, the clean dynamic
 * instruction count (to place in-run faults), and the clean serialized
 * trace (the TraceByte corruption target). Built once per sweep.
 *
 * The session recipe mirrors driver::makeWorkload (same seed constant)
 * so injections exercise the standard bench sessions; the verify layer
 * regenerates it rather than linking the driver, which sits above it.
 */
struct InjectionTarget
{
    kernels::KernelBuild build;
    std::vector<uint8_t> key, iv, plaintext;
    uint64_t cleanInsts = 0;
    std::vector<uint8_t> cleanStream;

    InjectionTarget(crypto::CipherId cipher,
                    kernels::KernelVariant variant, size_t session_bytes)
    {
        const auto &info = crypto::cipherInfo(cipher);
        util::Xorshift64 rng(0xBE7CB + static_cast<uint64_t>(cipher));
        key = rng.bytes(info.keyBits / 8);
        iv = rng.bytes(info.isStream ? 0 : info.blockBytes);
        plaintext = rng.bytes(session_bytes);
        build = kernels::buildKernel(cipher, variant, key, iv,
                                     session_bytes);

        isa::Machine m;
        build.install(m, kernels::toWordImage(cipher, plaintext));
        PackSink sink;
        m.run(build.program, &sink);
        cleanInsts = sink.trace.size();
        cleanStream = sink.trace.serialize();
        // The harness only classifies divergence, so the baseline must
        // itself be correct: a wrong clean run would misclassify every
        // masked fault.
        verifyKernelOutput(build, m, key, iv, plaintext);
    }
};

/** The byte spans the kernel reads or writes, as (base, len) pairs. */
std::vector<std::pair<uint64_t, uint64_t>>
touchedSpans(const kernels::KernelBuild &build)
{
    std::vector<std::pair<uint64_t, uint64_t>> spans;
    for (const auto &[addr, bytes] : build.memInit)
        if (!bytes.empty())
            spans.emplace_back(addr, bytes.size());
    spans.emplace_back(build.inAddr, build.sessionBytes);
    spans.emplace_back(build.outAddr, build.sessionBytes);
    return spans;
}

InjectionResult
classifyMachineFault(const InjectionTarget &target,
                     const isa::InjectedFault &fault)
{
    isa::Machine m;
    target.build.install(
        m, kernels::toWordImage(target.build.cipher, target.plaintext));
    m.scheduleFault(fault);
    try {
        // A corrupted loop counter or pointer can run away; a tight
        // fuel bound turns that into a fuel-exhausted trap instead of
        // a long spin.
        m.run(target.build.program, nullptr,
              target.cleanInsts * 4 + 10000);
    } catch (const isa::Trap &t) {
        return {FaultOutcome::DetectedTrap, t.what()};
    }
    try {
        verifyKernelOutput(target.build, m, target.key, target.iv,
                           target.plaintext);
    } catch (const VerifyError &e) {
        return {FaultOutcome::DetectedOracle, e.what()};
    }
    return {FaultOutcome::Masked, ""};
}

InjectionResult
classifyOne(const InjectionTarget &target, FaultSite site, uint64_t seed)
{
    // Independent per-seed stream; the site goes into the seed so the
    // three sites of one seed are not correlated.
    util::Xorshift64 rng(0x5EED0000 + seed * 2654435761u
                         + static_cast<uint64_t>(site));

    switch (site) {
      case FaultSite::Register: {
        isa::InjectedFault f;
        f.seq = rng.next() % target.cleanInsts;
        f.isReg = true;
        // Skip the hardwired zero register: writes to it are dropped
        // by construction, which would dilute coverage with injections
        // that cannot land.
        f.target = rng.next() % (isa::num_regs - 1);
        if (f.target == isa::reg_zero.n)
            f.target = isa::num_regs - 1;
        f.xorMask = 1ull << (rng.next() % 64);
        return classifyMachineFault(target, f);
      }
      case FaultSite::Memory: {
        const auto spans = touchedSpans(target.build);
        uint64_t total = 0;
        for (const auto &[base, len] : spans)
            total += len;
        uint64_t offset = rng.next() % total;
        uint64_t addr = 0;
        for (const auto &[base, len] : spans) {
            if (offset < len) {
                addr = base + offset;
                break;
            }
            offset -= len;
        }
        isa::InjectedFault f;
        f.seq = rng.next() % target.cleanInsts;
        f.isReg = false;
        f.target = addr;
        f.xorMask = 1u << (rng.next() % 8);
        return classifyMachineFault(target, f);
      }
      case FaultSite::TraceByte: {
        std::vector<uint8_t> corrupt = target.cleanStream;
        const size_t pos = rng.next() % corrupt.size();
        corrupt[pos] ^= 1u << (rng.next() % 8);
        try {
            auto t = isa::PackedTrace::deserialize(corrupt);
            // Deserialization accepted the stream; drain a reader so a
            // decode-time defect would still surface as a trace error.
            for (auto r = t.reader(); !r.done();)
                r.next();
        } catch (const isa::TraceFormatError &e) {
            return {FaultOutcome::DetectedTrace, e.what()};
        }
        return {FaultOutcome::Masked, ""};
      }
    }
    return {FaultOutcome::Masked, ""};
}

} // namespace

InjectionResult
injectAndClassify(crypto::CipherId cipher, kernels::KernelVariant variant,
                  FaultSite site, uint64_t seed, size_t session_bytes)
{
    InjectionTarget target(cipher, variant, session_bytes);
    return classifyOne(target, site, seed);
}

FaultTally
injectionSweep(crypto::CipherId cipher, kernels::KernelVariant variant,
               FaultSite site, uint64_t seed0, unsigned count,
               size_t session_bytes)
{
    InjectionTarget target(cipher, variant, session_bytes);
    FaultTally tally;
    for (unsigned i = 0; i < count; i++)
        tally.add(classifyOne(target, site, seed0 + i).outcome);
    return tally;
}

} // namespace cryptarch::verify
