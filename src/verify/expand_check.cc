#include "verify/expand_check.hh"

#include <string_view>

namespace cryptarch::verify
{

std::string_view
firstDynInstDifference(const isa::DynInst &a, const isa::DynInst &b)
{
    if (a.seq != b.seq)
        return "seq";
    if (a.pc != b.pc)
        return "pc";
    if (a.op != b.op)
        return "op";
    if (a.cls != b.cls)
        return "cls";
    if (a.numSrcs != b.numSrcs)
        return "numSrcs";
    if (a.srcs != b.srcs)
        return "srcs";
    if (a.dest != b.dest)
        return "dest";
    if (a.isLoad != b.isLoad)
        return "isLoad";
    if (a.isStore != b.isStore)
        return "isStore";
    if (a.addr != b.addr)
        return "addr";
    if (a.size != b.size)
        return "size";
    if (a.addrSrc != b.addrSrc)
        return "addrSrc";
    if (a.branch != b.branch)
        return "branch";
    if (a.taken != b.taken)
        return "taken";
    if (a.nextPc != b.nextPc)
        return "nextPc";
    if (a.tableId != b.tableId)
        return "tableId";
    if (a.aliased != b.aliased)
        return "aliased";
    if (a.result != b.result)
        return "result";
    return {};
}

void
StreamMatchSink::emit(const isa::DynInst &inst)
{
    seen_++;
    if (!matched_)
        return;
    if (reader_.done()) {
        matched_ = false;
        why_ = "candidate stream longer than reference ("
            + std::to_string(expected_) + " instructions)";
        return;
    }
    const isa::DynInst want = reader_.next();
    const std::string_view field = firstDynInstDifference(want, inst);
    if (!field.empty()) {
        matched_ = false;
        why_ = "streams diverge at seq " + std::to_string(want.seq)
            + " in field " + std::string(field);
        return;
    }
    if (downstream_)
        downstream_->emit(inst);
}

bool
verifyExpansion(const isa::PackedTrace &packed,
                const isa::CompressedTrace &compressed, std::string *why)
{
    if (packed.size() != compressed.instructions()) {
        if (why)
            *why = "instruction counts differ: packed "
                + std::to_string(packed.size()) + ", expanded "
                + std::to_string(compressed.instructions());
        return false;
    }
    auto pr = packed.reader();
    auto cr = compressed.reader();
    while (!pr.done()) {
        const isa::DynInst want = pr.next();
        const isa::DynInst got = cr.next();
        const std::string_view field = firstDynInstDifference(want, got);
        if (!field.empty()) {
            if (why)
                *why = "expansion diverges at seq "
                    + std::to_string(want.seq) + " in field "
                    + std::string(field);
            return false;
        }
    }
    return true;
}

} // namespace cryptarch::verify
