/**
 * @file
 * Differential check of compressed-trace expansion.
 *
 * A CompressedTrace is only allowed to REPLACE its PackedTrace source
 * after this check proves, field by field and instruction by
 * instruction, that the expanded stream is identical to the packed
 * decode. That makes the driver's byte-identical-benchmarks guarantee
 * structural: any benchmark replayed from a compressed trace consumed
 * the exact DynInst sequence the packed trace would have produced, so
 * figure JSON cannot depend on whether compression was enabled.
 */

#ifndef CRYPTARCH_VERIFY_EXPAND_CHECK_HH
#define CRYPTARCH_VERIFY_EXPAND_CHECK_HH

#include <string>

#include "isa/compressed_trace.hh"
#include "isa/packed_trace.hh"

namespace cryptarch::verify
{

/**
 * Expand @p compressed and compare every DynInst field against the
 * decode of @p packed. Returns true when the streams are identical;
 * on the first divergence returns false and, if @p why is non-null,
 * describes the sequence number and field that differ.
 */
bool verifyExpansion(const isa::PackedTrace &packed,
                     const isa::CompressedTrace &compressed,
                     std::string *why = nullptr);

} // namespace cryptarch::verify

#endif // CRYPTARCH_VERIFY_EXPAND_CHECK_HH
