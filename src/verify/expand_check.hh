/**
 * @file
 * Differential check of compressed-trace expansion.
 *
 * A CompressedTrace is only allowed to REPLACE its PackedTrace source
 * after this check proves, field by field and instruction by
 * instruction, that the expanded stream is identical to the packed
 * decode. That makes the driver's byte-identical-benchmarks guarantee
 * structural: any benchmark replayed from a compressed trace consumed
 * the exact DynInst sequence the packed trace would have produced, so
 * figure JSON cannot depend on whether compression was enabled.
 */

#ifndef CRYPTARCH_VERIFY_EXPAND_CHECK_HH
#define CRYPTARCH_VERIFY_EXPAND_CHECK_HH

#include <cstddef>
#include <string>
#include <string_view>

#include "isa/compressed_trace.hh"
#include "isa/packed_trace.hh"

namespace cryptarch::verify
{

/**
 * Expand @p compressed and compare every DynInst field against the
 * decode of @p packed. Returns true when the streams are identical;
 * on the first divergence returns false and, if @p why is non-null,
 * describes the sequence number and field that differ.
 */
bool verifyExpansion(const isa::PackedTrace &packed,
                     const isa::CompressedTrace &compressed,
                     std::string *why = nullptr);

/**
 * Name of the first DynInst field where @p a and @p b differ, or an
 * empty view when they are identical. The single definition of "the
 * same dynamic instruction" every differential check in the repo uses
 * (compressed-trace expansion, execution-backend adoption, the backend
 * parity tests).
 */
std::string_view firstDynInstDifference(const isa::DynInst &a,
                                        const isa::DynInst &b);

/**
 * A forwarding comparator sink: every emitted DynInst is compared
 * field-for-field against the sequential decode of a reference
 * PackedTrace (recorded with results kept) and, while the streams
 * still agree, forwarded to an optional downstream sink.
 *
 * This is how the driver's execution-backend adoption gate works: the
 * interpreter records the reference stream, the candidate backend runs
 * through a StreamMatchSink that simultaneously checks identity and
 * captures the stream for use — one candidate execution serves as both
 * proof and product. After the run, complete() says whether the
 * candidate emitted exactly the reference stream; on any divergence
 * why() names the sequence number and field.
 */
class StreamMatchSink : public isa::TraceSink
{
  public:
    explicit StreamMatchSink(const isa::PackedTrace &reference,
                             isa::TraceSink *downstream = nullptr)
        : reader_(reference.reader()), expected_(reference.size()),
          downstream_(downstream)
    {
    }

    void emit(const isa::DynInst &inst) override;

    /** No divergence observed so far. */
    bool matched() const { return matched_; }
    /** Matched and saw exactly the reference's instruction count. */
    bool complete() const { return matched_ && seen_ == expected_; }
    /** Instructions received. */
    size_t seen() const { return seen_; }
    /** Description of the first divergence; empty while matched. */
    const std::string &why() const { return why_; }

  private:
    isa::PackedTrace::Reader reader_;
    size_t expected_;
    size_t seen_ = 0;
    isa::TraceSink *downstream_;
    bool matched_ = true;
    std::string why_;
};

} // namespace cryptarch::verify

#endif // CRYPTARCH_VERIFY_EXPAND_CHECK_HH
