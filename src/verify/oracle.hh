/**
 * @file
 * Record-time result oracle.
 *
 * The paper's argument rests on the simulated kernels computing the
 * same ciphertext as the reference ciphers while the timing model
 * stays honest. The oracle enforces the first half mechanically: after
 * any functional kernel run, the machine's output buffer is compared
 * byte-for-byte against the reference cipher (CBC chaining for block
 * ciphers, the keystream for RC4; decrypt kernels against reference
 * round-trip recovery). A kernel or ISA regression therefore surfaces
 * at the source as a typed VerifyError naming the first corrupt byte,
 * never as a silently wrong figure.
 */

#ifndef CRYPTARCH_VERIFY_ORACLE_HH
#define CRYPTARCH_VERIFY_ORACLE_HH

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "isa/machine.hh"
#include "kernels/kernel.hh"

namespace cryptarch::verify
{

/**
 * Kernel output disagreed with the reference cipher. Carries the first
 * mismatching byte offset and the expected/actual values there; the
 * what() string names the kernel and all three.
 */
class VerifyError : public std::runtime_error
{
  public:
    VerifyError(const std::string &kernel, size_t offset,
                uint8_t expected, uint8_t actual);

    const std::string &kernel() const { return kernel_; }
    size_t offset() const { return offset_; }
    uint8_t expected() const { return expected_; }
    uint8_t actual() const { return actual_; }

  private:
    std::string kernel_;
    size_t offset_;
    uint8_t expected_;
    uint8_t actual_;
};

/**
 * Reference processing of a whole session through the src/crypto/
 * oracles: CBC encrypt/decrypt for block ciphers, the RC4 keystream
 * for the stream cipher (direction-independent).
 */
std::vector<uint8_t> referenceProcess(crypto::CipherId id,
                                      std::span<const uint8_t> key,
                                      std::span<const uint8_t> iv,
                                      std::span<const uint8_t> input,
                                      kernels::KernelDirection direction);

/**
 * Compare @p build's output buffer in @p m against the reference
 * processing of @p input (raw bytes, pre word-image conversion) under
 * @p key / @p iv. Throws VerifyError on the first mismatch.
 */
void verifyKernelOutput(const kernels::KernelBuild &build,
                        const isa::ExecBackend &m,
                        std::span<const uint8_t> key,
                        std::span<const uint8_t> iv,
                        std::span<const uint8_t> input,
                        kernels::KernelDirection direction
                            = kernels::KernelDirection::Encrypt);

} // namespace cryptarch::verify

#endif // CRYPTARCH_VERIFY_ORACLE_HH
