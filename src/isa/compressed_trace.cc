#include "isa/compressed_trace.hh"

#include <algorithm>
#include <cstring>
#include <unordered_map>

#include "util/checksum.hh"

namespace cryptarch::isa
{

const char *
compressOutcomeName(CompressOutcome outcome)
{
    switch (outcome) {
      case CompressOutcome::Accepted: return "accepted";
      case CompressOutcome::NoLoop: return "no-loop";
      case CompressOutcome::IrregularBody: return "irregular-body";
      case CompressOutcome::LooseAddresses: return "loose-addresses";
      case CompressOutcome::NoGain: return "no-gain";
      case CompressOutcome::ExpandMismatch: return "expand-mismatch";
      case CompressOutcome::NotAttempted: return "not-attempted";
    }
    return "?";
}

namespace
{

bool
isSboxOp(uint8_t op)
{
    return op == static_cast<uint8_t>(Opcode::Sbox)
        || op == static_cast<uint8_t>(Opcode::Sboxx);
}

/**
 * Per-slot classification state accumulated across steady iterations.
 * Iteration 0 seeds the skeleton; every later iteration either matches
 * it or degrades the field to an explicit per-iteration table (or, for
 * fields with no explicit escape, refuses the candidate).
 */
struct SlotTracker
{
    CompressedTrace::Slot slot;

    uint64_t addr0 = 0;
    uint64_t addrStride = 0;
    bool addrExplicit = false;

    bool anyTaken = false;
    bool anyNotTaken = false;
    bool haveTarget = false;

    uint64_t result0 = 0;
    bool resultExplicit = false;
};

/** Skeleton fields that must be identical in every steady iteration. */
bool
staticMatches(const CompressedTrace::Slot &s, const DynInst &d)
{
    return s.pc == d.pc && s.op == static_cast<uint8_t>(d.op)
        && s.cls == static_cast<uint8_t>(d.cls) && s.dest == d.dest
        && s.addrSrc == d.addrSrc && s.tableId == d.tableId
        && s.srcs == d.srcs && s.numSrcs == d.numSrcs && s.size == d.size
        && s.isLoad == d.isLoad && s.isStore == d.isStore
        && s.branch == d.branch && s.aliased == d.aliased;
}

void
seedTracker(SlotTracker &t, const DynInst &d)
{
    CompressedTrace::Slot &s = t.slot;
    s.pc = d.pc;
    s.op = static_cast<uint8_t>(d.op);
    s.cls = static_cast<uint8_t>(d.cls);
    s.dest = d.dest;
    s.addrSrc = d.addrSrc;
    s.tableId = d.tableId;
    s.srcs = d.srcs;
    s.numSrcs = d.numSrcs;
    s.size = d.size;
    s.isLoad = d.isLoad;
    s.isStore = d.isStore;
    s.branch = d.branch;
    s.aliased = d.aliased;
    t.addr0 = d.addr;
    t.result0 = d.result;
}

} // namespace

CompressOutcome
CompressedTrace::compress(const PackedTrace &packed, CompressedTrace &out,
                          const Policy &policy)
{
    out = CompressedTrace();
    const size_t n = packed.size();
    if (n == 0)
        return CompressOutcome::NoLoop;

    // Pass 1: taken-backward-branch frequency by pc. The steady-state
    // block loop closes with by far the most frequent one; nested
    // candidates are tried most-frequent-first so an irregular inner
    // loop falls through to the enclosing one.
    std::unordered_map<uint32_t, uint64_t> takenBack;
    for (auto r = packed.reader(); !r.done();) {
        DynInst d = r.next();
        if (d.branch && d.taken && d.nextPc <= d.pc)
            takenBack[d.pc]++;
    }
    std::vector<std::pair<uint64_t, uint32_t>> ranked; // (count, pc)
    for (const auto &[pc, count] : takenBack)
        if (count >= policy.minIterations)
            ranked.emplace_back(count, pc);
    if (ranked.empty())
        return CompressOutcome::NoLoop;
    std::sort(ranked.begin(), ranked.end(), [](const auto &a, const auto &b) {
        return a.first != b.first ? a.first > b.first : a.second < b.second;
    });
    if (ranked.size() > policy.maxCandidates)
        ranked.resize(policy.maxCandidates);

    // Pass 2: dynamic positions of every candidate pc (taken or not —
    // the final fall-through occurrence delimits the last iteration).
    std::unordered_map<uint32_t, std::vector<uint64_t>> positions;
    for (const auto &[count, pc] : ranked)
        positions.emplace(pc, std::vector<uint64_t>());
    {
        uint64_t idx = 0;
        for (auto r = packed.reader(); !r.done(); idx++) {
            DynInst d = r.next();
            auto it = positions.find(d.pc);
            if (it != positions.end())
                it->second.push_back(idx);
        }
    }

    CompressOutcome firstRefusal = CompressOutcome::NoLoop;
    bool haveRefusal = false;
    auto refuse = [&](CompressOutcome why) {
        if (!haveRefusal) {
            firstRefusal = why;
            haveRefusal = true;
        }
    };

    for (const auto &[count, candidatePc] : ranked) {
        const auto &occ = positions.at(candidatePc);
        if (occ.size() < 2) {
            refuse(CompressOutcome::NoLoop);
            continue;
        }
        const uint64_t bodyLen = occ[1] - occ[0];
        bool constantGap = bodyLen > 0;
        for (size_t i = 2; constantGap && i < occ.size(); i++)
            constantGap = occ[i] - occ[i - 1] == bodyLen;
        if (!constantGap) {
            refuse(CompressOutcome::IrregularBody);
            continue;
        }
        const uint64_t iters = occ.size() - 1;
        if (iters < policy.minIterations) {
            refuse(CompressOutcome::NoLoop);
            continue;
        }
        const uint64_t steadyStart = occ.front() + 1;
        const uint64_t steadyEnd = occ.back() + 1;

        // Pass 3: classify every steady slot across all iterations.
        std::vector<SlotTracker> track(bodyLen);
        bool ok = true;
        CompressOutcome why = CompressOutcome::IrregularBody;
        uint64_t idx = 0;
        for (auto r = packed.reader(); ok && !r.done(); idx++) {
            DynInst d = r.next();
            if (idx < steadyStart || idx >= steadyEnd)
                continue;
            const uint64_t off = idx - steadyStart;
            const uint64_t t = off / bodyLen;
            SlotTracker &tr = track[off % bodyLen];
            Slot &s = tr.slot;
            if (t == 0) {
                seedTracker(tr, d);
            } else {
                if (!staticMatches(s, d)) {
                    ok = false;
                    why = CompressOutcome::IrregularBody;
                    break;
                }
                if (t == 1)
                    tr.addrStride = d.addr - tr.addr0;
                if (!tr.addrExplicit
                    && d.addr != tr.addr0 + tr.addrStride * t) {
                    // Non-affine address stream: the SBOX escape is
                    // the paper's data-dependent substitution traffic;
                    // an ordinary load/store doing this (RC4's table
                    // swap) makes the whole stream uncompressible.
                    if (!isSboxOp(s.op)) {
                        ok = false;
                        why = CompressOutcome::LooseAddresses;
                        break;
                    }
                    tr.addrExplicit = true;
                }
                if (d.result != tr.result0)
                    tr.resultExplicit = true;
            }
            // Addresses in explicit tables are stored as u32; the
            // machine's memory is orders of magnitude smaller, so a
            // wide address here means a malformed stream.
            if (d.addr >> 32) {
                ok = false;
                why = CompressOutcome::IrregularBody;
                break;
            }
            if (s.branch) {
                if (d.taken) {
                    tr.anyTaken = true;
                    if (!tr.haveTarget) {
                        tr.haveTarget = true;
                        s.takenTarget = d.nextPc;
                    } else if (d.nextPc != s.takenTarget) {
                        ok = false;
                        break;
                    }
                } else {
                    tr.anyNotTaken = true;
                    if (d.nextPc != d.pc + 1) {
                        ok = false;
                        break;
                    }
                }
            } else if (d.taken || d.nextPc != d.pc + 1) {
                ok = false;
                break;
            }
        }
        if (!ok) {
            refuse(why);
            continue;
        }

        // Candidate holds. Freeze slot modes and table ranks.
        uint64_t nAddrSlots = 0, nTakenSlots = 0, nResultSlots = 0;
        for (SlotTracker &tr : track) {
            Slot &s = tr.slot;
            if (tr.addrExplicit)
                s.addrMode = addr_explicit;
            else if (tr.addr0 != 0 || tr.addrStride != 0) {
                s.addrMode = addr_affine;
                s.addrBase = tr.addr0;
                s.addrStride = tr.addrStride;
            }
            if (s.branch)
                s.takenMode = tr.anyTaken
                    ? (tr.anyNotTaken ? taken_varying : taken_always)
                    : taken_never;
            if (tr.resultExplicit)
                s.resultMode = result_explicit;
            else if (tr.result0 != 0) {
                s.resultMode = result_constant;
                s.resultConst = tr.result0;
            }
            if (s.addrMode == addr_explicit)
                nAddrSlots++;
            if (s.takenMode == taken_varying)
                nTakenSlots++;
            if (s.resultMode == result_explicit)
                nResultSlots++;
        }

        out.iterations_ = iters;
        out.body_.reserve(bodyLen);
        for (SlotTracker &tr : track)
            out.body_.push_back(tr.slot);
        out.reindexSlots();
        out.explicitAddr_.assign(nAddrSlots * iters, 0);
        out.takenBits_.assign(nTakenSlots * ((iters + 7) / 8), 0);
        out.explicitResult_.assign(nResultSlots * iters, 0);
        out.prefix_.reserve(steadyStart);

        // Pass 4: fill the stitches and delta tables.
        const size_t bitsPerSlot = (iters + 7) / 8;
        idx = 0;
        for (auto r = packed.reader(); !r.done(); idx++) {
            DynInst d = r.next();
            if (idx < steadyStart) {
                out.prefix_.append(d); // local seq == global seq here
                continue;
            }
            if (idx >= steadyEnd) {
                d.seq = idx - steadyEnd;
                out.suffix_.append(d);
                continue;
            }
            const uint64_t off = idx - steadyStart;
            const uint64_t t = off / bodyLen;
            const Slot &s = out.body_[off % bodyLen];
            if (s.addrMode == addr_explicit)
                out.explicitAddr_[s.addrTable * iters + t] =
                    static_cast<uint32_t>(d.addr);
            if (s.takenMode == taken_varying && d.taken)
                out.takenBits_[s.takenTable * bitsPerSlot + t / 8] |=
                    static_cast<uint8_t>(1u << (t & 7));
            if (s.resultMode == result_explicit)
                out.explicitResult_[s.resultTable * iters + t] = d.result;
        }
        return CompressOutcome::Accepted;
    }

    out = CompressedTrace();
    return firstRefusal;
}

void
CompressedTrace::reindexSlots()
{
    uint32_t na = 0, nb = 0, nr = 0;
    for (Slot &s : body_) {
        s.addrTable = s.addrMode == addr_explicit ? na++ : 0;
        s.takenTable = s.takenMode == taken_varying ? nb++ : 0;
        s.resultTable = s.resultMode == result_explicit ? nr++ : 0;
    }
}

size_t
CompressedTrace::storedBytes() const
{
    // 46 bytes is the serialized slot footprint; the in-memory struct
    // is padded wider, but the serialized size is what trace storage
    // and the simspeed compression-ratio column measure.
    return body_.size() * 46 + explicitAddr_.size() * sizeof(uint32_t)
        + takenBits_.size() + explicitResult_.size() * sizeof(uint64_t)
        + prefix_.packedBytes() + suffix_.packedBytes();
}

// ---------------------------------------------------------------------------
// Reader

void
CompressedTrace::buildBodyTemplate(std::vector<DynInst> &body,
                                   std::vector<uint32_t> &patchSlots) const
{
    body.clear();
    patchSlots.clear();
    body.reserve(body_.size());
    for (size_t i = 0; i < body_.size(); i++) {
        const Slot &s = body_[i];
        DynInst d;
        d.pc = s.pc;
        d.op = static_cast<Opcode>(s.op);
        d.cls = static_cast<OpClass>(s.cls);
        d.numSrcs = s.numSrcs;
        d.srcs = s.srcs;
        d.dest = s.dest;
        d.isLoad = s.isLoad;
        d.isStore = s.isStore;
        d.size = s.size;
        d.addrSrc = s.addrSrc;
        d.branch = s.branch;
        d.tableId = s.tableId;
        d.aliased = s.aliased;
        d.nextPc = s.pc + 1;
        switch (s.takenMode) {
          case taken_always:
            d.taken = true;
            d.nextPc = s.takenTarget;
            break;
          case taken_never:
          case taken_none:
          default:
            break;
        }
        if (s.addrMode == addr_affine)
            d.addr = s.addrBase;
        if (s.resultMode == result_constant)
            d.result = s.resultConst;
        body.push_back(d);

        const bool patches =
            (s.addrMode == addr_affine && s.addrStride != 0)
            || s.addrMode == addr_explicit
            || s.takenMode == taken_varying
            || s.resultMode == result_explicit;
        if (patches)
            patchSlots.push_back(static_cast<uint32_t>(i));
    }
}

void
CompressedTrace::patchBody(std::vector<DynInst> &body,
                           const std::vector<uint32_t> &patchSlots,
                           uint64_t t) const
{
    const uint64_t iters = iterations_;
    const size_t bitsPerSlot = (iters + 7) / 8;
    for (uint32_t si : patchSlots) {
        const Slot &s = body_[si];
        DynInst &d = body[si];
        if (s.addrMode == addr_affine)
            d.addr = s.addrBase + s.addrStride * t;
        else if (s.addrMode == addr_explicit)
            d.addr = explicitAddr_[s.addrTable * iters + t];
        if (s.takenMode == taken_varying) {
            const bool tk = (takenBits_[s.takenTable * bitsPerSlot + t / 8]
                             >> (t & 7))
                & 1;
            d.taken = tk;
            d.nextPc = tk ? s.takenTarget : s.pc + 1;
        }
        if (s.resultMode == result_explicit)
            d.result = explicitResult_[s.resultTable * iters + t];
    }
}

CompressedTrace::Reader::Reader(const CompressedTrace &t)
    : trace(&t), pre(t.prefix_.reader()), suf(t.suffix_.reader()),
      total(t.instructions())
{
    t.buildBodyTemplate(body, patchSlots);
}

void
CompressedTrace::Reader::patchIteration(uint64_t t)
{
    trace->patchBody(body, patchSlots, t);
}

DynInst
CompressedTrace::Reader::next()
{
    if (!pre.done()) {
        DynInst d = pre.next(); // prefix seq is already global
        seq++;
        return d;
    }
    if (iter < trace->iterations_) {
        if (slot == 0)
            patchIteration(iter);
        DynInst d = body[slot];
        d.seq = seq++;
        if (++slot == body.size()) {
            slot = 0;
            iter++;
        }
        return d;
    }
    DynInst d = suf.next();
    d.seq = seq++; // renumber the suffix's local seq globally
    return d;
}

// ---------------------------------------------------------------------------
// Serialization

namespace
{

constexpr uint8_t ctrace_magic[4] = {'C', 'P', 'C', 'M'};
constexpr uint32_t ctrace_version = 1;
constexpr size_t ctrace_header_bytes = 4 + 4 + 8 * 8;
constexpr size_t slot_bytes = 46;

void
putU32(std::vector<uint8_t> &out, uint32_t v)
{
    for (unsigned i = 0; i < 4; i++)
        out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
putU64(std::vector<uint8_t> &out, uint64_t v)
{
    for (unsigned i = 0; i < 8; i++)
        out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

/**
 * Bulk append via resize+memcpy. Equivalent to a range insert at
 * end(), phrased this way because GCC 12's -Wstringop-overflow false
 * positives on vector range-insert reallocation under -Werror.
 */
void
appendBytes(std::vector<uint8_t> &out, const uint8_t *p, size_t n)
{
    const size_t at = out.size();
    out.resize(at + n);
    if (n)
        std::memcpy(out.data() + at, p, n);
}

/** Bounded little-endian cursor (same shape as the PackedTrace one). */
struct ByteCursor
{
    std::span<const uint8_t> bytes;
    size_t pos = 0;

    size_t remaining() const { return bytes.size() - pos; }

    void
    need(size_t n, const char *what)
    {
        if (remaining() < n)
            throw TraceFormatError(
                TraceErrorKind::Truncated,
                std::string("compressed stream ends inside ") + what
                    + " (" + std::to_string(remaining())
                    + " bytes left, " + std::to_string(n) + " needed)");
    }

    uint8_t u8() { return bytes[pos++]; }

    uint32_t
    u32()
    {
        uint32_t v = 0;
        for (unsigned i = 0; i < 4; i++)
            v |= static_cast<uint32_t>(bytes[pos + i]) << (8 * i);
        pos += 4;
        return v;
    }

    uint64_t
    u64()
    {
        uint64_t v = 0;
        for (unsigned i = 0; i < 8; i++)
            v |= static_cast<uint64_t>(bytes[pos + i]) << (8 * i);
        pos += 8;
        return v;
    }
};

[[noreturn]] void
inconsistent(const std::string &what)
{
    throw TraceFormatError(TraceErrorKind::Inconsistent,
                           "compressed trace: " + what);
}

} // namespace

std::vector<uint8_t>
CompressedTrace::serialize() const
{
    std::vector<uint8_t> payload;
    payload.reserve(storedBytes());
    for (const Slot &s : body_) {
        putU32(payload, s.pc);
        payload.push_back(s.op);
        payload.push_back(s.cls);
        payload.push_back(s.dest);
        payload.push_back(s.addrSrc);
        payload.push_back(s.tableId);
        payload.push_back(s.srcs[0]);
        payload.push_back(s.srcs[1]);
        payload.push_back(s.srcs[2]);
        payload.push_back(s.numSrcs);
        payload.push_back(s.size);
        const uint8_t bools = static_cast<uint8_t>(
            (s.isLoad ? 1 : 0) | (s.isStore ? 2 : 0) | (s.branch ? 4 : 0)
            | (s.aliased ? 8 : 0));
        payload.push_back(bools);
        payload.push_back(s.addrMode);
        payload.push_back(s.takenMode);
        payload.push_back(s.resultMode);
        putU32(payload, s.takenTarget);
        putU64(payload, s.addrBase);
        putU64(payload, s.addrStride);
        putU64(payload, s.resultConst);
    }
    for (uint32_t v : explicitAddr_)
        putU32(payload, v);
    appendBytes(payload, takenBits_.data(), takenBits_.size());
    for (uint64_t v : explicitResult_)
        putU64(payload, v);
    const std::vector<uint8_t> prefixBlob = prefix_.serialize();
    const std::vector<uint8_t> suffixBlob = suffix_.serialize();
    appendBytes(payload, prefixBlob.data(), prefixBlob.size());
    appendBytes(payload, suffixBlob.data(), suffixBlob.size());

    std::vector<uint8_t> out;
    out.reserve(ctrace_header_bytes + payload.size());
    appendBytes(out, ctrace_magic, 4);
    putU32(out, ctrace_version);
    putU64(out, iterations_);
    putU64(out, body_.size());
    putU64(out, explicitAddr_.size());
    putU64(out, takenBits_.size());
    putU64(out, explicitResult_.size());
    putU64(out, prefixBlob.size());
    putU64(out, suffixBlob.size());
    putU64(out, util::fnv1a64(payload.data(), payload.size()));
    appendBytes(out, payload.data(), payload.size());
    return out;
}

CompressedTrace
CompressedTrace::deserialize(std::span<const uint8_t> bytes)
{
    ByteCursor cur{bytes};
    cur.need(ctrace_header_bytes, "header");
    if (std::memcmp(bytes.data(), ctrace_magic, 4) != 0)
        throw TraceFormatError(TraceErrorKind::BadMagic,
                               "stream does not begin with 'CPCM'");
    cur.pos = 4;
    const uint32_t version = cur.u32();
    if (version != ctrace_version)
        throw TraceFormatError(TraceErrorKind::BadVersion,
                               "compressed version "
                                   + std::to_string(version)
                                   + ", expected "
                                   + std::to_string(ctrace_version));
    const uint64_t iters = cur.u64();
    const uint64_t bodyLen = cur.u64();
    const uint64_t nAddr = cur.u64();
    const uint64_t nBits = cur.u64();
    const uint64_t nResult = cur.u64();
    const uint64_t prefixBytes = cur.u64();
    const uint64_t suffixBytes = cur.u64();
    const uint64_t checksum = cur.u64();

    // All counts are corruption-controlled: bound each by the stream
    // length before computing anything from them.
    const uint64_t len = bytes.size();
    if (bodyLen == 0 || bodyLen > len / slot_bytes || iters == 0
        || iters > (1ull << 40) || nAddr > len / 4 || nBits > len
        || nResult > len / 8 || prefixBytes > len || suffixBytes > len)
        throw TraceFormatError(TraceErrorKind::Truncated,
                               "compressed header counts exceed stream "
                               "length");
    const uint64_t payload_bytes = bodyLen * slot_bytes + nAddr * 4
        + nBits + nResult * 8 + prefixBytes + suffixBytes;
    if (cur.remaining() != payload_bytes)
        throw TraceFormatError(
            TraceErrorKind::Truncated,
            "compressed payload is " + std::to_string(cur.remaining())
                + " bytes, header promises "
                + std::to_string(payload_bytes));
    if (util::fnv1a64(bytes.data() + ctrace_header_bytes, payload_bytes)
        != checksum)
        throw TraceFormatError(TraceErrorKind::BadChecksum,
                               "compressed payload checksum mismatch");

    CompressedTrace t;
    t.iterations_ = iters;
    t.body_.resize(bodyLen);
    for (Slot &s : t.body_) {
        s.pc = cur.u32();
        s.op = cur.u8();
        s.cls = cur.u8();
        s.dest = cur.u8();
        s.addrSrc = cur.u8();
        s.tableId = cur.u8();
        s.srcs[0] = cur.u8();
        s.srcs[1] = cur.u8();
        s.srcs[2] = cur.u8();
        s.numSrcs = cur.u8();
        s.size = cur.u8();
        const uint8_t bools = cur.u8();
        if (bools & ~0x0Fu)
            inconsistent("reserved slot flag bits set");
        s.isLoad = bools & 1;
        s.isStore = bools & 2;
        s.branch = bools & 4;
        s.aliased = bools & 8;
        s.addrMode = cur.u8();
        s.takenMode = cur.u8();
        s.resultMode = cur.u8();
        s.takenTarget = cur.u32();
        s.addrBase = cur.u64();
        s.addrStride = cur.u64();
        s.resultConst = cur.u64();
    }
    t.explicitAddr_.resize(nAddr);
    for (uint64_t i = 0; i < nAddr; i++)
        t.explicitAddr_[i] = cur.u32();
    t.takenBits_.assign(bytes.begin() + cur.pos,
                        bytes.begin() + cur.pos + nBits);
    cur.pos += nBits;
    t.explicitResult_.resize(nResult);
    for (uint64_t i = 0; i < nResult; i++)
        t.explicitResult_[i] = cur.u64();
    t.prefix_ = PackedTrace::deserialize(
        bytes.subspan(cur.pos, prefixBytes));
    cur.pos += prefixBytes;
    t.suffix_ = PackedTrace::deserialize(
        bytes.subspan(cur.pos, suffixBytes));
    cur.pos += suffixBytes;

    t.reindexSlots();
    t.validateConsistency();
    return t;
}

void
CompressedTrace::validateConsistency() const
{
    static constexpr uint8_t valid_sizes[] = {0, 1, 2, 4, 8};
    uint64_t nAddrSlots = 0, nTakenSlots = 0, nResultSlots = 0;
    for (size_t i = 0; i < body_.size(); i++) {
        const Slot &s = body_[i];
        auto fail = [&](const std::string &what) {
            inconsistent("slot " + std::to_string(i) + ": " + what);
        };
        if (s.op > static_cast<uint8_t>(Opcode::Sboxx))
            fail("opcode " + std::to_string(s.op));
        if (s.cls >= num_op_classes)
            fail("op class " + std::to_string(s.cls));
        if (s.numSrcs > 3)
            fail("numSrcs " + std::to_string(s.numSrcs));
        if (std::find(std::begin(valid_sizes), std::end(valid_sizes),
                      s.size)
            == std::end(valid_sizes))
            fail("access size " + std::to_string(s.size));
        if (s.addrMode > addr_explicit)
            fail("addr mode " + std::to_string(s.addrMode));
        if (s.takenMode > taken_varying)
            fail("taken mode " + std::to_string(s.takenMode));
        if (s.resultMode > result_explicit)
            fail("result mode " + std::to_string(s.resultMode));
        if (s.branch != (s.takenMode != taken_none))
            fail("branch flag and taken mode disagree");
        if (s.addrMode == addr_explicit)
            nAddrSlots++;
        if (s.takenMode == taken_varying)
            nTakenSlots++;
        if (s.resultMode == result_explicit)
            nResultSlots++;
    }
    const uint64_t bitsPerSlot = (iterations_ + 7) / 8;
    if (explicitAddr_.size() != nAddrSlots * iterations_
        || takenBits_.size() != nTakenSlots * bitsPerSlot
        || explicitResult_.size() != nResultSlots * iterations_)
        inconsistent("slot modes and delta-table sizes disagree");
}

} // namespace cryptarch::isa
