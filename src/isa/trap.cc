#include "isa/trap.hh"

#include <cstdio>

namespace cryptarch::isa
{

const char *
trapCauseName(TrapCause cause)
{
    switch (cause) {
      case TrapCause::OobLoad: return "oob-load";
      case TrapCause::OobStore: return "oob-store";
      case TrapCause::Misaligned: return "misaligned";
      case TrapCause::PcOverrun: return "pc-overrun";
      case TrapCause::FuelExhausted: return "fuel-exhausted";
      case TrapCause::InvalidSboxTable: return "invalid-sbox-table";
      case TrapCause::NoProgress: return "no-progress";
    }
    return "?";
}

Trap::Trap(TrapCause cause, const std::string &detail)
    : std::runtime_error("Machine trap [" + std::string(trapCauseName(cause))
                         + "]: " + detail),
      cause_(cause)
{
}

Trap::Trap(TrapCause cause, const std::string &what, int)
    : std::runtime_error(what), cause_(cause)
{
}

Trap &
Trap::withAccess(uint64_t addr, unsigned size)
{
    addr_ = addr;
    size_ = size;
    return *this;
}

Trap &
Trap::withTable(unsigned table)
{
    table_ = table;
    return *this;
}

Trap
Trap::annotated(const Trap &t, uint32_t pc, uint64_t seq,
                const std::array<uint64_t, num_regs> &regs)
{
    char ctx[64];
    std::snprintf(ctx, sizeof(ctx), " at pc=%u seq=%llu",
                  static_cast<unsigned>(pc),
                  static_cast<unsigned long long>(seq));
    Trap out(t.cause_, t.what() + std::string(ctx), 0);
    out.pc_ = pc;
    out.seq_ = seq;
    out.addr_ = t.addr_;
    out.size_ = t.size_;
    out.table_ = t.table_;
    out.regs_ = regs;
    return out;
}

} // namespace cryptarch::isa
