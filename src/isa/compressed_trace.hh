/**
 * @file
 * Loop-aware compressed encoding of a dynamic instruction stream.
 *
 * The paper's kernels spend nearly all dynamic instructions
 * re-executing one steady-state block-loop body: the same static
 * instructions, in the same order, differing per iteration only in
 * effective addresses (data pointers advance by the block size, SBOX
 * lookups wander data-dependently), branch outcomes (the loop-close
 * branch falls through once), and written values. PackedTrace stores
 * every one of those dynamic instructions at 14 B each; CompressedTrace
 * stores the loop ONCE and the per-iteration differences as small delta
 * tables, then re-expands the exact DynInst stream on demand:
 *
 *   prefix   PackedTrace   everything before the steady state (setup
 *                          plus the first loop iteration — "warmup")
 *   body     Slot[L]       one representative iteration: per-slot
 *                          static skeleton + how each varying field is
 *                          reconstructed (see below)
 *   deltas   side tables   per-iteration values for the fields the
 *                          skeleton cannot predict
 *   suffix   PackedTrace   everything after the last steady iteration
 *                          ("cooldown": usually just the Halt)
 *
 * Per-slot reconstruction modes:
 *
 *   addr    none     the slot never carries an address
 *           affine   addr(t) = base + stride * t (wrapping u64 math);
 *                    covers data/key/IV traffic whose pointers move by
 *                    a constant per block (stride 0 = constant)
 *           explicit one u32 table entry per iteration; the compressor
 *                    allows this only for SBOX reads (op Sbox/Sboxx),
 *                    whose data-dependent lookups are the paper's whole
 *                    subject — a data-dependent ORDINARY load or store
 *                    stream (RC4's table swap) refuses compression
 *   taken   always / never / varying (one bit per iteration)
 *           nextPc(t) = taken(t) ? target : pc + 1
 *   result  zero / constant / explicit (one u64 per iteration)
 *
 * Expansion is sequential through a Reader cursor yielding DynInst
 * values byte-identical to the PackedTrace the stream was compressed
 * from (the driver cross-checks exactly that before dropping the
 * packed copy), so the OoO scheduler replays stitched traces entirely
 * unchanged. The steady-state decode is a template copy plus a handful
 * of patches, so replay also streams an order of magnitude fewer bytes
 * than the packed encoding — trace memory becomes near-constant in the
 * message length.
 */

#ifndef CRYPTARCH_ISA_COMPRESSED_TRACE_HH
#define CRYPTARCH_ISA_COMPRESSED_TRACE_HH

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "isa/packed_trace.hh"

namespace cryptarch::isa
{

/**
 * Why a stream did (or did not) compress. The refusal paths are part
 * of the contract: a refused stream is replayed from its PackedTrace
 * with no output change, and tests pin which kernels refuse and why.
 */
enum class CompressOutcome : uint8_t
{
    Accepted,       ///< steady loop found, deltas built
    NoLoop,         ///< no backward branch repeats often enough
    IrregularBody,  ///< iteration shape unstable (length, skeleton,
                    ///< branch targets, or unencodable addresses)
    LooseAddresses, ///< a non-SBOX memory op has a data-dependent
                    ///< (non-affine) address stream, e.g. RC4's swap
    NoGain,         ///< structurally compressible but not smaller
                    ///< (set by the storage policy layer, not here)
    ExpandMismatch, ///< paranoia cross-check against the packed stream
                    ///< failed (set by the storage policy layer)
    NotAttempted,   ///< compression disabled for this recording
};

/** Stable short name ("accepted", "no-loop", ...). */
const char *compressOutcomeName(CompressOutcome outcome);

class CompressedTrace
{
  public:
    /** Loop-detection knobs. Defaults suit the paper's kernels. */
    struct Policy
    {
        /** Steady iterations required before compressing at all. */
        uint64_t minIterations = 8;
        /** Backward-branch candidates tried, most-frequent first. */
        unsigned maxCandidates = 4;
    };

    /**
     * Detect the steady-state loop of @p packed and build @p out from
     * it. Returns Accepted on success; on any refusal @p out is left
     * empty and the reason names the first obstacle met by the
     * most-frequent backward-branch candidate. Never throws on refusal
     * — refusing is the supported fallback path.
     */
    static CompressOutcome compress(const PackedTrace &packed,
                                    CompressedTrace &out,
                                    const Policy &policy);

    /** compress() under the default Policy. */
    static CompressOutcome
    compress(const PackedTrace &packed, CompressedTrace &out)
    {
        return compress(packed, out, Policy());
    }

    /** Dynamic instructions the expanded stream yields. */
    uint64_t instructions() const
    {
        return prefix_.size() + iterations_ * body_.size()
            + suffix_.size();
    }

    bool empty() const { return body_.empty(); }

    /** Steady-state iterations stored as deltas. */
    uint64_t iterations() const { return iterations_; }
    /** Dynamic instructions per steady iteration. */
    size_t bodyLength() const { return body_.size(); }

    /** Bytes held across the skeleton, delta tables and stitches. */
    size_t storedBytes() const;

    /**
     * Serialize to a self-describing byte stream (magic "CPCM",
     * version, table counts, FNV-1a payload checksum; the prefix and
     * suffix embed their own PackedTrace streams).
     */
    std::vector<uint8_t> serialize() const;

    /**
     * Parse a stream produced by serialize(). Validates magic,
     * version, lengths, checksum, per-slot field ranges and that the
     * delta tables match the slot modes; the embedded prefix/suffix
     * streams re-validate themselves. Throws TraceFormatError (the
     * same typed error PackedTrace raises) on any defect.
     */
    static CompressedTrace deserialize(std::span<const uint8_t> bytes);

    /** How one steady-state slot is reconstructed (see file comment). */
    struct Slot
    {
        uint32_t pc = 0;
        uint8_t op = 0;
        uint8_t cls = 0;
        uint8_t dest = 0;
        uint8_t addrSrc = 0;
        uint8_t tableId = 0;
        std::array<uint8_t, 3> srcs{};
        uint8_t numSrcs = 0;
        uint8_t size = 0;
        bool isLoad = false;
        bool isStore = false;
        bool branch = false;
        bool aliased = false;

        uint8_t addrMode = addr_none;
        uint8_t takenMode = taken_none;
        uint8_t resultMode = result_zero;

        uint64_t addrBase = 0;
        uint64_t addrStride = 0; ///< two's-complement, wrapping
        uint32_t takenTarget = 0;
        uint64_t resultConst = 0;

        /** Rank among slots sharing the mode (delta-table index). */
        uint32_t addrTable = 0;
        uint32_t takenTable = 0;
        uint32_t resultTable = 0;
    };

    // addr reconstruction modes
    static constexpr uint8_t addr_none = 0;
    static constexpr uint8_t addr_affine = 1;
    static constexpr uint8_t addr_explicit = 2;
    // taken reconstruction modes
    static constexpr uint8_t taken_none = 0;
    static constexpr uint8_t taken_always = 1;
    static constexpr uint8_t taken_never = 2;
    static constexpr uint8_t taken_varying = 3;
    // result reconstruction modes
    static constexpr uint8_t result_zero = 0;
    static constexpr uint8_t result_constant = 1;
    static constexpr uint8_t result_explicit = 2;

    /**
     * Sequential expansion cursor. Yields the prefix, then
     * iterations() copies of the patched body, then the suffix, with
     * globally renumbered seq — exactly the stream the packed source
     * decoded to. Cheap to construct (one body-template copy), so a
     * trace can be replayed concurrently.
     */
    class Reader
    {
      public:
        explicit Reader(const CompressedTrace &t);

        bool done() const { return seq >= total; }

        /** Expand the next instruction; valid only when !done(). */
        DynInst next();

      private:
        /** Re-patch the body template for steady iteration @p t. */
        void patchIteration(uint64_t t);

        const CompressedTrace *trace;
        PackedTrace::Reader pre;
        PackedTrace::Reader suf;
        std::vector<DynInst> body;       ///< working template
        std::vector<uint32_t> patchSlots; ///< slots varying per iter
        uint64_t total = 0;
        uint64_t seq = 0;
        uint64_t iter = 0;
        size_t slot = 0;
    };

    Reader reader() const { return Reader(*this); }

    /**
     * Expand the whole stream into @p sink without per-instruction
     * cursor overhead: steady-state instructions are emitted straight
     * from the patched body template (a seq store plus a handful of
     * per-iteration patches each), which is what makes compressed
     * replay faster than decoding the packed columns. @p Sink is a
     * template parameter so a concrete scheduler's emit devirtualizes.
     */
    template <typename Sink>
    void
    expandInto(Sink &sink) const
    {
        for (auto r = prefix_.reader(); !r.done();)
            sink.emit(r.next());
        uint64_t seq = prefix_.size();
        std::vector<DynInst> body;
        std::vector<uint32_t> patchSlots;
        buildBodyTemplate(body, patchSlots);
        for (uint64_t t = 0; t < iterations_; t++) {
            patchBody(body, patchSlots, t);
            for (DynInst &d : body) {
                d.seq = seq++;
                sink.emit(d);
            }
        }
        for (auto r = suffix_.reader(); !r.done();) {
            DynInst d = r.next();
            d.seq = seq++;
            sink.emit(d);
        }
    }

  private:
    /** Materialize the body skeleton and the list of varying slots. */
    void buildBodyTemplate(std::vector<DynInst> &body,
                           std::vector<uint32_t> &patchSlots) const;

    /** Re-patch @p body's varying slots for steady iteration @p t. */
    void patchBody(std::vector<DynInst> &body,
                   const std::vector<uint32_t> &patchSlots,
                   uint64_t t) const;

    /** Recompute the per-mode delta-table ranks after build/parse. */
    void reindexSlots();

    /** Raise TraceFormatError unless modes and table sizes agree. */
    void validateConsistency() const;

    PackedTrace prefix_;
    PackedTrace suffix_;
    std::vector<Slot> body_;
    uint64_t iterations_ = 0;

    /** Per explicit-addr slot, iterations() addresses, slot-major. */
    std::vector<uint32_t> explicitAddr_;
    /** Per varying-branch slot, one bit per iteration, slot-major. */
    std::vector<uint8_t> takenBits_;
    /** Per explicit-result slot, iterations() values, slot-major. */
    std::vector<uint64_t> explicitResult_;
};

} // namespace cryptarch::isa

#endif // CRYPTARCH_ISA_COMPRESSED_TRACE_HH
