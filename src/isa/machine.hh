/**
 * @file
 * Functional CryptISA interpreter with dynamic trace emission.
 *
 * The Machine executes programs for correctness (kernel outputs are
 * validated byte-for-byte against the reference ciphers) and streams
 * the dynamic instruction sequence — register dependences, memory
 * addresses, branch outcomes, result values — to a TraceSink. The
 * timing simulator (src/sim) is one such sink; the Figure 7 operation
 * classifier and the section 4.3 value-predictability experiment are
 * others.
 */

#ifndef CRYPTARCH_ISA_MACHINE_HH
#define CRYPTARCH_ISA_MACHINE_HH

#include <array>
#include <cstdint>
#include <map>
#include <vector>

#include "isa/program.hh"
#include "isa/trap.hh"

namespace cryptarch::isa
{

/**
 * A scheduled single-bit (or multi-bit) state corruption, applied just
 * before the dynamic instruction with sequence number @p seq executes.
 * The fault-injection harness (src/verify/faults.hh) uses these to
 * prove the trap/oracle checks detect real corruption.
 */
struct InjectedFault
{
    uint64_t seq = 0;   ///< dynamic instruction before which to fire
    bool isReg = false; ///< register-file fault vs. data-memory fault
    uint64_t target = 0; ///< register number, or byte address
    uint64_t xorMask = 0; ///< XORed into the register (low byte for mem)
};

/** One dynamically executed instruction, as seen by trace consumers. */
struct DynInst
{
    uint64_t seq = 0;      ///< dynamic sequence number
    uint32_t pc = 0;       ///< static instruction index
    Opcode op = Opcode::Halt;
    OpClass cls = OpClass::Nop;

    uint8_t numSrcs = 0;
    std::array<uint8_t, 3> srcs{}; ///< source register numbers
    uint8_t dest = reg_zero.n;     ///< destination (reg_zero if none)

    bool isLoad = false;
    bool isStore = false;
    uint64_t addr = 0;     ///< effective address for memory ops
    uint8_t size = 0;      ///< access size in bytes
    /**
     * Register gating address generation (the base register). The
     * timing model uses it to decide when a store's address resolves:
     * later loads may not issue before that (unless the model has
     * perfect alias disambiguation).
     */
    uint8_t addrSrc = reg_zero.n;

    bool branch = false;
    bool taken = false;
    uint32_t nextPc = 0;   ///< actual successor pc

    uint8_t tableId = 0;   ///< SBOX table designator
    bool aliased = false;  ///< SBOX aliased flag

    uint64_t result = 0;   ///< value written (for value prediction)
};

/** Consumer of the dynamic instruction stream. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;
    virtual void emit(const DynInst &inst) = 0;
};

/** Statistics of one functional run. */
struct RunStats
{
    uint64_t instructions = 0;
    uint64_t cyclesHint = 0; ///< unused by the machine; for sinks
};

/**
 * The functional interpreter. Memory is a flat byte array; programs
 * address it directly (kernels place tables at 1 KB-aligned offsets as
 * the SBOX instruction requires).
 */
class Machine
{
  public:
    explicit Machine(size_t mem_bytes = 1 << 22);

    /** Read an architectural register. */
    uint64_t reg(Reg r) const { return regs[r.n]; }
    /** Write an architectural register (writes to R63 are dropped). */
    void setReg(Reg r, uint64_t v);

    /** Bulk memory initialization/readback. */
    void writeMem(uint64_t addr, const std::vector<uint8_t> &bytes);
    std::vector<uint8_t> readMem(uint64_t addr, size_t n) const;
    void write32(uint64_t addr, uint32_t v);
    uint32_t read32(uint64_t addr) const;

    /**
     * Execute @p program from instruction 0 until Halt, emitting each
     * retired instruction to @p sink (may be null). Throws isa::Trap
     * (a std::runtime_error) on bad memory accesses, running off the
     * end of the program, invalid SBOX table designators, or exceeding
     * @p max_insts; the trap carries the faulting pc, sequence number
     * and a register-file snapshot.
     */
    RunStats run(const Program &program, TraceSink *sink = nullptr,
                 uint64_t max_insts = 1ull << 32);

    /**
     * Schedule a state corruption for the next run() (fault-injection
     * harness). Faults fire immediately before the dynamic instruction
     * with the matching sequence number executes and are consumed by
     * the run. Register faults against R63 are dropped, like writes.
     */
    void scheduleFault(const InjectedFault &fault)
    {
        faults.push_back(fault);
    }

    /**
     * When strict SBOX semantics are enabled (the default), non-aliased
     * SBOX reads observe a snapshot of their table taken at the first
     * access after the last SBOXSYNC — the paper's visibility rule.
     * Disabling makes SBOX read live memory.
     */
    void setStrictSboxSync(bool strict) { strictSbox = strict; }

  private:
    uint64_t loadSized(uint64_t addr, unsigned size) const;
    void storeSized(uint64_t addr, unsigned size, uint64_t value);
    void checkAddr(uint64_t addr, unsigned size, bool isStore) const;
    /** Non-aliased SBOX read honoring snapshot visibility. */
    uint32_t sboxRead(uint64_t addr);
    /** Apply scheduled faults due at dynamic sequence number @p seq. */
    void applyFaults(uint64_t seq);

    std::array<uint64_t, num_regs> regs{};
    std::vector<uint8_t> mem;

    bool strictSbox = true;
    /** Snapshots of 1 KB table frames, keyed by frame base address. */
    std::map<uint64_t, std::vector<uint8_t>> sboxSnapshots;

    /** Pending injected faults, consumed as their seq comes up. */
    std::vector<InjectedFault> faults;
};

} // namespace cryptarch::isa

#endif // CRYPTARCH_ISA_MACHINE_HH
