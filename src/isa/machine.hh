/**
 * @file
 * Functional CryptISA interpreter with dynamic trace emission.
 *
 * The Machine executes programs for correctness (kernel outputs are
 * validated byte-for-byte against the reference ciphers) and streams
 * the dynamic instruction sequence — register dependences, memory
 * addresses, branch outcomes, result values — to a TraceSink. The
 * timing simulator (src/sim) is one such sink; the Figure 7 operation
 * classifier and the section 4.3 value-predictability experiment are
 * others.
 *
 * Machine is the reference ExecBackend (see isa/exec_backend.hh): the
 * semantic baseline other backends are differenced against, and the
 * only backend that honors scheduled fault injection. The stream types
 * (DynInst, TraceSink, RunStats, InjectedFault) live in
 * exec_backend.hh and are re-exported here for historical includes.
 */

#ifndef CRYPTARCH_ISA_MACHINE_HH
#define CRYPTARCH_ISA_MACHINE_HH

#include <array>
#include <cstdint>
#include <map>
#include <vector>

#include "isa/exec_backend.hh"
#include "isa/program.hh"
#include "isa/trap.hh"

namespace cryptarch::isa
{

/**
 * The functional interpreter. Memory is a flat byte array; programs
 * address it directly (kernels place tables at 1 KB-aligned offsets as
 * the SBOX instruction requires).
 */
class Machine : public ExecBackend
{
  public:
    explicit Machine(size_t mem_bytes = 1 << 22);

    ExecBackendKind
    kind() const override
    {
        return ExecBackendKind::Interpreter;
    }

    /** Read an architectural register. */
    uint64_t reg(Reg r) const override { return regs[r.n]; }
    /** Write an architectural register (writes to R63 are dropped). */
    void setReg(Reg r, uint64_t v) override;

    /** Bulk memory initialization/readback. */
    void writeMem(uint64_t addr, const std::vector<uint8_t> &bytes)
        override;
    std::vector<uint8_t> readMem(uint64_t addr, size_t n) const override;
    void write32(uint64_t addr, uint32_t v) override;
    uint32_t read32(uint64_t addr) const override;

    /**
     * Execute @p program from instruction 0 until Halt, emitting each
     * retired instruction to @p sink (may be null). Throws isa::Trap
     * (a std::runtime_error) on bad memory accesses, running off the
     * end of the program, invalid SBOX table designators, or exceeding
     * @p max_insts; the trap carries the faulting pc, sequence number
     * and a register-file snapshot.
     */
    RunStats run(const Program &program, TraceSink *sink = nullptr,
                 uint64_t max_insts = 1ull << 32) override;

    bool supportsFaults() const override { return true; }

    /**
     * Schedule a state corruption for the next run() (fault-injection
     * harness). Faults fire immediately before the dynamic instruction
     * with the matching sequence number executes and are consumed by
     * the run. Register faults against R63 are dropped, like writes.
     */
    void
    scheduleFault(const InjectedFault &fault) override
    {
        faults.push_back(fault);
    }

    /**
     * When strict SBOX semantics are enabled (the default), non-aliased
     * SBOX reads observe a snapshot of their table taken at the first
     * access after the last SBOXSYNC — the paper's visibility rule.
     * Disabling makes SBOX read live memory.
     */
    void setStrictSboxSync(bool strict) override { strictSbox = strict; }

  private:
    uint64_t loadSized(uint64_t addr, unsigned size) const;
    void storeSized(uint64_t addr, unsigned size, uint64_t value);
    void checkAddr(uint64_t addr, unsigned size, bool isStore) const;
    /** Non-aliased SBOX read honoring snapshot visibility. */
    uint32_t sboxRead(uint64_t addr);
    /** Apply scheduled faults due at dynamic sequence number @p seq. */
    void applyFaults(uint64_t seq);

    std::array<uint64_t, num_regs> regs{};
    std::vector<uint8_t> mem;

    bool strictSbox = true;
    /** Snapshots of 1 KB table frames, keyed by frame base address. */
    std::map<uint64_t, std::vector<uint8_t>> sboxSnapshots;

    /** Pending injected faults, consumed as their seq comes up. */
    std::vector<InjectedFault> faults;
};

} // namespace cryptarch::isa

#endif // CRYPTARCH_ISA_MACHINE_HH
