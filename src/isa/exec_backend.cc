#include "isa/exec_backend.hh"

#include <cstdio>
#include <stdexcept>

#include "isa/machine.hh"
#include "isa/threaded_machine.hh"

namespace cryptarch::isa
{

const char *
execBackendName(ExecBackendKind kind)
{
    switch (kind) {
      case ExecBackendKind::Interpreter: return "interpreter";
      case ExecBackendKind::Threaded: return "threaded";
    }
    return "?";
}

void
ExecBackend::scheduleFault(const InjectedFault &)
{
    throw std::logic_error(
        std::string(execBackendName(kind()))
        + " backend does not support fault injection; route fault runs "
          "to the interpreter");
}

std::unique_ptr<ExecBackend>
makeExecBackend(ExecBackendKind kind, size_t mem_bytes)
{
    switch (kind) {
      case ExecBackendKind::Interpreter:
        return std::make_unique<Machine>(mem_bytes);
      case ExecBackendKind::Threaded:
        return std::make_unique<ThreadedMachine>(mem_bytes);
    }
    throw std::invalid_argument("makeExecBackend: unknown backend kind");
}

namespace detail
{

void
throwOobAccess(uint64_t addr, unsigned size, size_t mem_size,
               bool is_store)
{
    char detail[96];
    std::snprintf(detail, sizeof(detail),
                  "%u-byte %s at addr=0x%llx beyond %zu-byte memory",
                  size, is_store ? "store" : "load",
                  static_cast<unsigned long long>(addr), mem_size);
    throw Trap(is_store ? TrapCause::OobStore : TrapCause::OobLoad,
               detail)
        .withAccess(addr, size);
}

void
throwMisaligned(uint64_t addr, unsigned size, bool is_store)
{
    char detail[96];
    std::snprintf(detail, sizeof(detail),
                  "misaligned %u-byte %s at addr=0x%llx", size,
                  is_store ? "store" : "load",
                  static_cast<unsigned long long>(addr));
    throw Trap(TrapCause::Misaligned, detail).withAccess(addr, size);
}

void
throwPcOverrun(uint32_t pc, size_t program_size)
{
    char detail[64];
    std::snprintf(detail, sizeof(detail),
                  "pc=%u beyond %zu-instruction program",
                  static_cast<unsigned>(pc), program_size);
    throw Trap(TrapCause::PcOverrun, detail);
}

void
throwFuelExhausted(uint64_t max_insts)
{
    char detail[64];
    std::snprintf(detail, sizeof(detail), "instruction limit %llu hit",
                  static_cast<unsigned long long>(max_insts));
    throw Trap(TrapCause::FuelExhausted, detail);
}

void
throwInvalidSboxTable(unsigned table_id)
{
    char detail[64];
    std::snprintf(detail, sizeof(detail), "SBOX table id %u >= %u",
                  table_id, max_sbox_tables);
    throw Trap(TrapCause::InvalidSboxTable, detail).withTable(table_id);
}

} // namespace detail

} // namespace cryptarch::isa
