#include "isa/packed_trace.hh"

#include <cstring>

#include "util/checksum.hh"

namespace cryptarch::isa
{

const char *
traceErrorKindName(TraceErrorKind kind)
{
    switch (kind) {
      case TraceErrorKind::BadMagic: return "bad-magic";
      case TraceErrorKind::BadVersion: return "bad-version";
      case TraceErrorKind::Truncated: return "truncated";
      case TraceErrorKind::BadChecksum: return "bad-checksum";
      case TraceErrorKind::Inconsistent: return "inconsistent";
      case TraceErrorKind::Overrun: return "overrun";
    }
    return "?";
}

void
PackedTrace::overrun(const char *table, size_t index)
{
    throw TraceFormatError(TraceErrorKind::Overrun,
                           std::string(table)
                               + " side table exhausted decoding "
                                 "instruction "
                               + std::to_string(index));
}

uint16_t
PackedTrace::sizeCode(uint8_t size)
{
    switch (size) {
    case 0:
        return 0;
    case 1:
        return 1;
    case 2:
        return 2;
    case 4:
        return 3;
    case 8:
        return 4;
    default:
        assert(!"unencodable access size");
        return 0;
    }
}

uint16_t
PackedTrace::packRowBase(const DynInst &inst, uint8_t (&row)[row_bytes])
{
    assert(inst.numSrcs <= 3);

    uint16_t flags = inst.numSrcs & num_srcs_mask;
    if (inst.isLoad)
        flags |= f_load;
    if (inst.isStore)
        flags |= f_store;
    if (inst.branch)
        flags |= f_branch;
    if (inst.taken)
        flags |= f_taken;
    if (inst.aliased)
        flags |= f_aliased;
    flags |= sizeCode(inst.size) << size_code_shift;
    if (inst.nextPc != inst.pc + 1)
        flags |= f_next_pc_exc;

    row[off_pc] = static_cast<uint8_t>(inst.pc);
    row[off_pc + 1] = static_cast<uint8_t>(inst.pc >> 8);
    row[off_pc + 2] = static_cast<uint8_t>(inst.pc >> 16);
    row[off_pc + 3] = static_cast<uint8_t>(inst.pc >> 24);
    row[off_op] = static_cast<uint8_t>(inst.op);
    row[off_cls] = static_cast<uint8_t>(inst.cls);
    row[off_dest] = inst.dest;
    row[off_addr_src] = inst.addrSrc;
    row[off_table_id] = inst.tableId;
    row[off_srcs] = inst.srcs[0];
    row[off_srcs + 1] = inst.srcs[1];
    row[off_srcs + 2] = inst.srcs[2];
    row[off_flags] = static_cast<uint8_t>(flags);
    row[off_flags + 1] = static_cast<uint8_t>(flags >> 8);
    return flags;
}

void
PackedTrace::append(const DynInst &inst, bool keepResult)
{
    assert(inst.seq == size() && "seq must equal append index");

    uint8_t row[row_bytes];
    uint16_t flags = packRowBase(inst, row);
    if (inst.addr != 0) {
        flags |= f_has_addr;
        if (inst.addr >> 32)
            flags |= f_wide_addr;
    }
    if (keepResult && inst.result != 0)
        flags |= f_has_result;
    appendRow(row, flags, inst.addr, inst.nextPc, inst.result);
}

void
PackedTrace::Stage::flush(PackedTrace &t)
{
    t.fixed_.insert(t.fixed_.end(), rows, rows + nRows);
    t.addr32_.insert(t.addr32_.end(), addr32, addr32 + nAddr32);
    t.addrWide_.insert(t.addrWide_.end(), addrWide, addrWide + nWide);
    t.nextPcExc_.insert(t.nextPcExc_.end(), nextPcExc,
                        nextPcExc + nNextPc);
    t.result_.insert(t.result_.end(), result, result + nResult);
    nRows = nAddr32 = nWide = nNextPc = nResult = 0;
}

void
PackedTrace::reserve(size_t n)
{
    fixed_.reserve(n);
}

size_t
PackedTrace::packedBytes() const
{
    return fixed_.size() * row_bytes
        + addr32_.size() * sizeof(uint32_t)
        + addrWide_.size() * sizeof(uint64_t)
        + nextPcExc_.size() * sizeof(uint32_t)
        + result_.size() * sizeof(uint64_t);
}

namespace
{

/** Serialized-stream layout constants. */
constexpr uint8_t trace_magic[4] = {'C', 'P', 'T', 'R'};
constexpr uint32_t trace_version = 1;
constexpr size_t header_bytes = 56;

void
putU32(std::vector<uint8_t> &out, uint32_t v)
{
    for (unsigned i = 0; i < 4; i++)
        out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
putU64(std::vector<uint8_t> &out, uint64_t v)
{
    for (unsigned i = 0; i < 8; i++)
        out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

/** Bounded little-endian cursor over a deserializing stream. */
struct ByteCursor
{
    std::span<const uint8_t> bytes;
    size_t pos = 0;

    size_t remaining() const { return bytes.size() - pos; }

    void
    need(size_t n, const char *what)
    {
        if (remaining() < n)
            throw TraceFormatError(
                TraceErrorKind::Truncated,
                std::string("stream ends inside ") + what + " ("
                    + std::to_string(remaining()) + " bytes left, "
                    + std::to_string(n) + " needed)");
    }

    uint8_t u8() { return bytes[pos++]; }

    uint16_t
    u16()
    {
        uint16_t v = static_cast<uint16_t>(bytes[pos])
            | static_cast<uint16_t>(bytes[pos + 1]) << 8;
        pos += 2;
        return v;
    }

    uint32_t
    u32()
    {
        uint32_t v = 0;
        for (unsigned i = 0; i < 4; i++)
            v |= static_cast<uint32_t>(bytes[pos + i]) << (8 * i);
        pos += 4;
        return v;
    }

    uint64_t
    u64()
    {
        uint64_t v = 0;
        for (unsigned i = 0; i < 8; i++)
            v |= static_cast<uint64_t>(bytes[pos + i]) << (8 * i);
        pos += 8;
        return v;
    }
};

} // namespace

std::vector<uint8_t>
PackedTrace::serialize() const
{
    const size_t n = size();
    std::vector<uint8_t> out;
    out.reserve(header_bytes + packedBytes());

    // Payload first (appended after the header below); checksum needs
    // it, so build it into a scratch buffer. The serialized payload is
    // per-column even though the in-memory records are interleaved —
    // the format (and its checksums in existing artifacts) predates
    // the interleaving.
    std::vector<uint8_t> payload;
    payload.reserve(packedBytes());
    auto row = [&](size_t i) { return fixed_[i].data(); };
    auto gather = [&](size_t off, size_t len) {
        for (size_t i = 0; i < n; i++)
            payload.insert(payload.end(), row(i) + off,
                           row(i) + off + len);
    };
    gather(off_pc, 4);
    gather(off_op, 1);
    gather(off_cls, 1);
    gather(off_dest, 1);
    gather(off_addr_src, 1);
    gather(off_table_id, 1);
    gather(off_srcs, 3);
    gather(off_flags, 2);
    for (uint32_t v : addr32_)
        putU32(payload, v);
    for (uint64_t v : addrWide_)
        putU64(payload, v);
    for (uint32_t v : nextPcExc_)
        putU32(payload, v);
    for (uint64_t v : result_)
        putU64(payload, v);

    out.insert(out.end(), trace_magic, trace_magic + 4);
    putU32(out, trace_version);
    putU64(out, n);
    putU64(out, addr32_.size());
    putU64(out, addrWide_.size());
    putU64(out, nextPcExc_.size());
    putU64(out, result_.size());
    putU64(out, util::fnv1a64(payload.data(), payload.size()));
    out.insert(out.end(), payload.begin(), payload.end());
    return out;
}

PackedTrace
PackedTrace::deserialize(std::span<const uint8_t> bytes)
{
    ByteCursor cur{bytes};
    cur.need(header_bytes, "header");
    if (std::memcmp(bytes.data(), trace_magic, 4) != 0)
        throw TraceFormatError(TraceErrorKind::BadMagic,
                               "stream does not begin with 'CPTR'");
    cur.pos = 4;
    const uint32_t version = cur.u32();
    if (version != trace_version)
        throw TraceFormatError(TraceErrorKind::BadVersion,
                               "version " + std::to_string(version)
                                   + ", expected "
                                   + std::to_string(trace_version));
    const uint64_t n = cur.u64();
    const uint64_t nAddr32 = cur.u64();
    const uint64_t nAddrWide = cur.u64();
    const uint64_t nNextPc = cur.u64();
    const uint64_t nResult = cur.u64();
    const uint64_t checksum = cur.u64();

    // Counts are attacker/corruption-controlled: bound them by the
    // actual stream length before sizing anything from them.
    const uint64_t fixed_bytes_per_inst = 4 + 1 + 1 + 1 + 1 + 1 + 3 + 2;
    if (n > bytes.size() / fixed_bytes_per_inst
        || nAddr32 > bytes.size() / 4 || nAddrWide > bytes.size() / 8
        || nNextPc > bytes.size() / 4 || nResult > bytes.size() / 8)
        throw TraceFormatError(TraceErrorKind::Truncated,
                               "header counts exceed stream length");
    const uint64_t payload_bytes = n * fixed_bytes_per_inst
        + nAddr32 * 4 + nAddrWide * 8 + nNextPc * 4 + nResult * 8;
    if (cur.remaining() != payload_bytes)
        throw TraceFormatError(
            TraceErrorKind::Truncated,
            "payload is " + std::to_string(cur.remaining())
                + " bytes, header promises "
                + std::to_string(payload_bytes));
    if (util::fnv1a64(bytes.data() + header_bytes, payload_bytes)
        != checksum)
        throw TraceFormatError(TraceErrorKind::BadChecksum,
                               "payload checksum mismatch");

    PackedTrace t;
    t.fixed_.resize(n);
    auto scatter = [&](size_t off, size_t len) {
        for (uint64_t i = 0; i < n; i++)
            std::memcpy(t.fixed_[i].data() + off,
                        bytes.data() + cur.pos + i * len, len);
        cur.pos += n * len;
    };
    scatter(off_pc, 4);
    scatter(off_op, 1);
    scatter(off_cls, 1);
    scatter(off_dest, 1);
    scatter(off_addr_src, 1);
    scatter(off_table_id, 1);
    scatter(off_srcs, 3);
    scatter(off_flags, 2);
    t.addr32_.resize(nAddr32);
    for (uint64_t i = 0; i < nAddr32; i++)
        t.addr32_[i] = cur.u32();
    t.addrWide_.resize(nAddrWide);
    for (uint64_t i = 0; i < nAddrWide; i++)
        t.addrWide_[i] = cur.u64();
    t.nextPcExc_.resize(nNextPc);
    for (uint64_t i = 0; i < nNextPc; i++)
        t.nextPcExc_[i] = cur.u32();
    t.result_.resize(nResult);
    for (uint64_t i = 0; i < nResult; i++)
        t.result_[i] = cur.u64();

    t.validateConsistency();
    return t;
}

void
PackedTrace::validateConsistency() const
{
    auto fail = [](size_t i, const std::string &what) {
        throw TraceFormatError(TraceErrorKind::Inconsistent,
                               "instruction " + std::to_string(i) + ": "
                                   + what);
    };
    size_t wantAddr32 = 0, wantAddrWide = 0, wantNextPc = 0,
           wantResult = 0;
    for (size_t i = 0; i < size(); i++) {
        const uint8_t *row = fixed_[i].data();
        const uint16_t flags = rowFlags(row);
        if (flags & ~((1u << 14) - 1))
            fail(i, "reserved flag bits set");
        const unsigned code = (flags >> size_code_shift) & size_code_mask;
        if (code >= sizeof(size_table))
            fail(i, "size code " + std::to_string(code));
        if (row[off_op] > static_cast<uint8_t>(Opcode::Sboxx))
            fail(i, "opcode " + std::to_string(row[off_op]));
        if (row[off_cls] >= num_op_classes)
            fail(i, "op class " + std::to_string(row[off_cls]));
        if ((flags & f_wide_addr) && !(flags & f_has_addr))
            fail(i, "wide-addr flag without has-addr");
        if (flags & f_has_addr)
            (flags & f_wide_addr) ? wantAddrWide++ : wantAddr32++;
        if (flags & f_next_pc_exc)
            wantNextPc++;
        if (flags & f_has_result)
            wantResult++;
    }
    if (wantAddr32 != addr32_.size() || wantAddrWide != addrWide_.size()
        || wantNextPc != nextPcExc_.size()
        || wantResult != result_.size())
        throw TraceFormatError(TraceErrorKind::Inconsistent,
                               "flag columns and side-table sizes "
                               "disagree");
}

void
PackedTrace::clear()
{
    fixed_.clear();
    addr32_.clear();
    addrWide_.clear();
    nextPcExc_.clear();
    result_.clear();
}

} // namespace cryptarch::isa
