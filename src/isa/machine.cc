#include "isa/machine.hh"

#include <cstdio>
#include <stdexcept>

#include "crypto/idea.hh"
#include "util/bitops.hh"

namespace cryptarch::isa
{

using util::rotl32;
using util::rotl64;
using util::rotr32;
using util::rotr64;

Machine::Machine(size_t mem_bytes) : mem(mem_bytes, 0) {}

void
Machine::setReg(Reg r, uint64_t v)
{
    if (r.n != reg_zero.n)
        regs[r.n] = v;
}

void
Machine::checkAddr(uint64_t addr, unsigned size, bool isStore) const
{
    detail::checkAddrRange(addr, size, mem.size(), isStore);
}

void
Machine::writeMem(uint64_t addr, const std::vector<uint8_t> &bytes)
{
    checkAddr(addr, bytes.size(), /*isStore=*/true);
    std::copy(bytes.begin(), bytes.end(), mem.begin() + addr);
}

std::vector<uint8_t>
Machine::readMem(uint64_t addr, size_t n) const
{
    checkAddr(addr, n, /*isStore=*/false);
    return {mem.begin() + addr, mem.begin() + addr + n};
}

void
Machine::write32(uint64_t addr, uint32_t v)
{
    storeSized(addr, 4, v);
}

uint32_t
Machine::read32(uint64_t addr) const
{
    return static_cast<uint32_t>(loadSized(addr, 4));
}

using detail::checkAlign;

uint64_t
Machine::loadSized(uint64_t addr, unsigned size) const
{
    checkAddr(addr, size, /*isStore=*/false);
    checkAlign(addr, size, /*isStore=*/false);
    uint64_t v = 0;
    for (unsigned i = 0; i < size; i++)
        v |= static_cast<uint64_t>(mem[addr + i]) << (8 * i);
    return v;
}

void
Machine::storeSized(uint64_t addr, unsigned size, uint64_t value)
{
    checkAddr(addr, size, /*isStore=*/true);
    checkAlign(addr, size, /*isStore=*/true);
    for (unsigned i = 0; i < size; i++)
        mem[addr + i] = static_cast<uint8_t>(value >> (8 * i));
}

uint32_t
Machine::sboxRead(uint64_t addr)
{
    checkAddr(addr, 4, /*isStore=*/false);
    if (!strictSbox)
        return static_cast<uint32_t>(loadSized(addr, 4));
    uint64_t frame = addr & ~0x3FFull;
    auto it = sboxSnapshots.find(frame);
    if (it == sboxSnapshots.end()) {
        checkAddr(frame, 1024, /*isStore=*/false);
        it = sboxSnapshots
                 .emplace(frame, std::vector<uint8_t>(
                                     mem.begin() + frame,
                                     mem.begin() + frame + 1024))
                 .first;
    }
    const auto &snap = it->second;
    uint64_t off = addr - frame;
    return static_cast<uint32_t>(snap[off])
        | (static_cast<uint32_t>(snap[off + 1]) << 8)
        | (static_cast<uint32_t>(snap[off + 2]) << 16)
        | (static_cast<uint32_t>(snap[off + 3]) << 24);
}

namespace
{

unsigned
memSize(Opcode op)
{
    switch (op) {
      case Opcode::Ldq:
      case Opcode::Stq:
        return 8;
      case Opcode::Ldl:
      case Opcode::Stl:
      case Opcode::Sbox:
        return 4;
      case Opcode::Ldwu:
      case Opcode::Stw:
        return 2;
      default:
        return 1;
    }
}

constexpr uint64_t mask32 = 0xFFFFFFFFull;

} // namespace

void
Machine::applyFaults(uint64_t seq)
{
    for (auto it = faults.begin(); it != faults.end();) {
        if (it->seq != seq) {
            ++it;
            continue;
        }
        if (it->isReg) {
            Reg r{static_cast<uint8_t>(it->target % num_regs)};
            setReg(r, regs[r.n] ^ it->xorMask);
        } else if (it->target < mem.size()) {
            mem[it->target] ^= static_cast<uint8_t>(it->xorMask);
        }
        it = faults.erase(it);
    }
}

RunStats
Machine::run(const Program &program, TraceSink *sink, uint64_t max_insts)
{
    RunStats stats;
    uint32_t pc = 0;

    try {
    while (true) {
        if (pc >= program.size())
            detail::throwPcOverrun(pc, program.size());
        if (stats.instructions >= max_insts)
            detail::throwFuelExhausted(max_insts);
        if (!faults.empty())
            applyFaults(stats.instructions);

        const Inst &inst = program[pc];
        uint64_t a = regs[inst.ra.n];
        uint64_t b = inst.useImm ? static_cast<uint64_t>(inst.imm)
                                 : regs[inst.rb.n];

        DynInst dyn;
        dyn.seq = stats.instructions;
        dyn.pc = pc;
        dyn.op = inst.op;
        dyn.cls = opClass(inst);
        dyn.tableId = inst.tableId;
        dyn.aliased = inst.aliased;

        auto addSrc = [&](Reg r) {
            if (r.n != reg_zero.n && dyn.numSrcs < 3)
                dyn.srcs[dyn.numSrcs++] = r.n;
        };

        uint32_t next_pc = pc + 1;
        uint64_t result = 0;
        bool writes = inst.writesDest();

        switch (inst.op) {
          case Opcode::Halt:
            if (sink)
                sink->emit(dyn);
            stats.instructions++;
            return stats;

          case Opcode::Br:
            dyn.branch = true;
            dyn.taken = true;
            next_pc = inst.target;
            break;
          case Opcode::Beq:
          case Opcode::Bne:
          case Opcode::Blt:
          case Opcode::Bge: {
            addSrc(inst.ra);
            dyn.branch = true;
            bool cond = false;
            switch (inst.op) {
              case Opcode::Beq: cond = a == 0; break;
              case Opcode::Bne: cond = a != 0; break;
              case Opcode::Blt: cond = static_cast<int64_t>(a) < 0; break;
              default: cond = static_cast<int64_t>(a) >= 0; break;
            }
            dyn.taken = cond;
            if (cond)
                next_pc = inst.target;
            break;
          }

          case Opcode::Ldq:
          case Opcode::Ldl:
          case Opcode::Ldwu:
          case Opcode::Ldbu: {
            addSrc(inst.ra);
            uint64_t addr = a + inst.imm;
            dyn.isLoad = true;
            dyn.addr = addr;
            dyn.size = memSize(inst.op);
            dyn.addrSrc = inst.ra.n;
            result = loadSized(addr, dyn.size);
            break;
          }

          case Opcode::Stq:
          case Opcode::Stl:
          case Opcode::Stw:
          case Opcode::Stb: {
            addSrc(inst.ra);
            addSrc(inst.rc); // store value
            uint64_t addr = a + inst.imm;
            dyn.isStore = true;
            dyn.addr = addr;
            dyn.size = memSize(inst.op);
            dyn.addrSrc = inst.ra.n;
            storeSized(addr, dyn.size, regs[inst.rc.n]);
            break;
          }

          case Opcode::Addq: addSrc(inst.ra); if (!inst.useImm) addSrc(inst.rb); result = a + b; break;
          case Opcode::Subq: addSrc(inst.ra); if (!inst.useImm) addSrc(inst.rb); result = a - b; break;
          case Opcode::Addl: addSrc(inst.ra); if (!inst.useImm) addSrc(inst.rb); result = (a + b) & mask32; break;
          case Opcode::Subl: addSrc(inst.ra); if (!inst.useImm) addSrc(inst.rb); result = (a - b) & mask32; break;
          case Opcode::And: addSrc(inst.ra); if (!inst.useImm) addSrc(inst.rb); result = a & b; break;
          case Opcode::Bis: addSrc(inst.ra); if (!inst.useImm) addSrc(inst.rb); result = a | b; break;
          case Opcode::Xor: addSrc(inst.ra); if (!inst.useImm) addSrc(inst.rb); result = a ^ b; break;
          case Opcode::Bic: addSrc(inst.ra); if (!inst.useImm) addSrc(inst.rb); result = a & ~b; break;
          case Opcode::Ornot: addSrc(inst.ra); if (!inst.useImm) addSrc(inst.rb); result = a | ~b; break;
          case Opcode::Sll: addSrc(inst.ra); if (!inst.useImm) addSrc(inst.rb); result = a << (b & 63); break;
          case Opcode::Srl: addSrc(inst.ra); if (!inst.useImm) addSrc(inst.rb); result = a >> (b & 63); break;
          case Opcode::Sra:
            addSrc(inst.ra);
            if (!inst.useImm)
                addSrc(inst.rb);
            result = static_cast<uint64_t>(static_cast<int64_t>(a)
                                           >> (b & 63));
            break;
          case Opcode::Sll32:
            addSrc(inst.ra);
            if (!inst.useImm)
                addSrc(inst.rb);
            result = ((a & mask32) << (b & 31)) & mask32;
            break;
          case Opcode::Srl32:
            addSrc(inst.ra);
            if (!inst.useImm)
                addSrc(inst.rb);
            result = (a & mask32) >> (b & 31);
            break;
          case Opcode::Extbl:
            addSrc(inst.ra);
            result = (a >> (8 * (b & 7))) & 0xFF;
            break;
          case Opcode::S4add: addSrc(inst.ra); if (!inst.useImm) addSrc(inst.rb); result = (a << 2) + b; break;
          case Opcode::S8add: addSrc(inst.ra); if (!inst.useImm) addSrc(inst.rb); result = (a << 3) + b; break;
          case Opcode::Cmpeq: addSrc(inst.ra); if (!inst.useImm) addSrc(inst.rb); result = a == b; break;
          case Opcode::Cmpult: addSrc(inst.ra); if (!inst.useImm) addSrc(inst.rb); result = a < b; break;
          case Opcode::Cmplt:
            addSrc(inst.ra);
            if (!inst.useImm)
                addSrc(inst.rb);
            result = static_cast<int64_t>(a) < static_cast<int64_t>(b);
            break;
          case Opcode::Cmoveq:
          case Opcode::Cmovne: {
            addSrc(inst.ra);
            addSrc(inst.rb);
            addSrc(inst.rc); // old value is a source
            bool move = inst.op == Opcode::Cmoveq ? a == 0 : a != 0;
            result = move ? b : regs[inst.rc.n];
            break;
          }

          case Opcode::Mulq: addSrc(inst.ra); if (!inst.useImm) addSrc(inst.rb); result = a * b; break;
          case Opcode::Mull:
            addSrc(inst.ra);
            if (!inst.useImm)
                addSrc(inst.rb);
            result = (a * b) & mask32;
            break;

          case Opcode::Rol: addSrc(inst.ra); if (!inst.useImm) addSrc(inst.rb); result = rotl64(a, b & 63); break;
          case Opcode::Ror: addSrc(inst.ra); if (!inst.useImm) addSrc(inst.rb); result = rotr64(a, b & 63); break;
          case Opcode::Rol32:
            addSrc(inst.ra);
            if (!inst.useImm)
                addSrc(inst.rb);
            result = rotl32(static_cast<uint32_t>(a), b & 31);
            break;
          case Opcode::Ror32:
            addSrc(inst.ra);
            if (!inst.useImm)
                addSrc(inst.rb);
            result = rotr32(static_cast<uint32_t>(a), b & 31);
            break;
          case Opcode::Rolx32:
            addSrc(inst.ra);
            addSrc(inst.rc); // destination is also a source
            result = (rotl32(static_cast<uint32_t>(a), inst.imm & 31)
                      ^ regs[inst.rc.n])
                & mask32;
            break;
          case Opcode::Rorx32:
            addSrc(inst.ra);
            addSrc(inst.rc);
            result = (rotr32(static_cast<uint32_t>(a), inst.imm & 31)
                      ^ regs[inst.rc.n])
                & mask32;
            break;

          case Opcode::Mulmod:
            addSrc(inst.ra);
            if (!inst.useImm)
                addSrc(inst.rb);
            result = crypto::ideaMulMod(static_cast<uint16_t>(a),
                                        static_cast<uint16_t>(b));
            break;

          case Opcode::Sbox:
          case Opcode::Sboxx: {
            addSrc(inst.ra);
            addSrc(inst.rb);
            if (inst.tableId >= max_sbox_tables)
                detail::throwInvalidSboxTable(inst.tableId);
            uint64_t index = (regs[inst.rb.n] >> (8 * inst.byteSel))
                & 0xFF;
            uint64_t addr = (a & ~0x3FFull) | (index << 2);
            dyn.isLoad = true;
            dyn.addr = addr;
            dyn.size = 4;
            uint32_t value = inst.aliased
                ? static_cast<uint32_t>(loadSized(addr, 4))
                : sboxRead(addr);
            if (inst.op == Opcode::Sboxx) {
                addSrc(inst.rc); // destination is also a source
                result = regs[inst.rc.n] ^ value;
            } else {
                result = value;
            }
            break;
          }

          case Opcode::Sboxsync:
            sboxSnapshots.clear();
            break;

          case Opcode::Grp: {
            addSrc(inst.ra);
            addSrc(inst.rb);
            // Group permutation [Shi & Lee 00]: source bits whose
            // control bit is 0 pack into the low end (ascending),
            // bits whose control bit is 1 pack into the high end.
            uint64_t control = regs[inst.rb.n];
            uint64_t lo = 0, hi = 0;
            unsigned nlo = 0, nhi = 0;
            for (unsigned i = 0; i < 64; i++) {
                uint64_t bit = (a >> i) & 1;
                if ((control >> i) & 1)
                    hi |= bit << nhi++;
                else
                    lo |= bit << nlo++;
            }
            result = lo | (hi << nlo);
            break;
          }

          case Opcode::Xbox: {
            addSrc(inst.ra);
            addSrc(inst.rb);
            // Partial general permutation: byte #byteSel of the result
            // receives eight bits of ra selected by the eight 6-bit
            // indices packed in rb; all other result bits are zero
            // (composition uses an OR tree, 7 insts per 32-bit
            // permutation as the paper reports).
            uint64_t map = regs[inst.rb.n];
            result = 0;
            for (unsigned j = 0; j < 8; j++) {
                unsigned src_bit = (map >> (6 * j)) & 0x3F;
                uint64_t bit = (a >> src_bit) & 1;
                result |= bit << (8 * inst.byteSel + j);
            }
            break;
          }
        }

        if (writes) {
            setReg(inst.rc, result);
            dyn.dest = inst.rc.n;
            dyn.result = result;
        }
        dyn.nextPc = next_pc;

        if (sink)
            sink->emit(dyn);
        stats.instructions++;
        pc = next_pc;
    }
    } catch (const Trap &t) {
        // Rethrow with execution context: faulting pc, sequence number
        // and the register file at the moment of the trap.
        throw Trap::annotated(t, pc, stats.instructions, regs);
    }
}

} // namespace cryptarch::isa
