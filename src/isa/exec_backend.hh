/**
 * @file
 * The functional execution backend interface.
 *
 * A backend executes a CryptISA Program for correctness and streams
 * the dynamic instruction sequence to a TraceSink. The record phase of
 * every sweep runs exactly one backend per kernel; which one is a
 * performance choice, never a semantics choice: all backends must
 * produce field-for-field identical DynInst streams, identical
 * architectural side effects (registers, memory), and identical traps
 * (same cause at the same dynamic sequence number) for the same
 * program and initial state. The driver enforces stream identity with
 * a differential check before adopting a non-interpreter backend (see
 * driver/trace.cc), and tests/isa/test_backends.cc enforces it across
 * the whole kernel catalog.
 *
 * Two backends exist today:
 *
 *  - isa::Machine           the reference interpreter (machine.hh);
 *                           supports fault injection and is the
 *                           semantic baseline every other backend is
 *                           differenced against.
 *  - isa::ThreadedMachine   a pre-decoded threaded-code executor
 *                           (threaded_machine.hh) built for record
 *                           throughput; no fault support.
 */

#ifndef CRYPTARCH_ISA_EXEC_BACKEND_HH
#define CRYPTARCH_ISA_EXEC_BACKEND_HH

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "isa/program.hh"
#include "isa/trap.hh"

namespace cryptarch::isa
{

/**
 * A scheduled single-bit (or multi-bit) state corruption, applied just
 * before the dynamic instruction with sequence number @p seq executes.
 * The fault-injection harness (src/verify/faults.hh) uses these to
 * prove the trap/oracle checks detect real corruption. Only backends
 * with supportsFaults() honor them (the interpreter).
 */
struct InjectedFault
{
    uint64_t seq = 0;   ///< dynamic instruction before which to fire
    bool isReg = false; ///< register-file fault vs. data-memory fault
    uint64_t target = 0; ///< register number, or byte address
    uint64_t xorMask = 0; ///< XORed into the register (low byte for mem)
};

/** One dynamically executed instruction, as seen by trace consumers. */
struct DynInst
{
    uint64_t seq = 0;      ///< dynamic sequence number
    uint32_t pc = 0;       ///< static instruction index
    Opcode op = Opcode::Halt;
    OpClass cls = OpClass::Nop;

    uint8_t numSrcs = 0;
    std::array<uint8_t, 3> srcs{}; ///< source register numbers
    uint8_t dest = reg_zero.n;     ///< destination (reg_zero if none)

    bool isLoad = false;
    bool isStore = false;
    uint64_t addr = 0;     ///< effective address for memory ops
    uint8_t size = 0;      ///< access size in bytes
    /**
     * Register gating address generation (the base register). The
     * timing model uses it to decide when a store's address resolves:
     * later loads may not issue before that (unless the model has
     * perfect alias disambiguation).
     */
    uint8_t addrSrc = reg_zero.n;

    bool branch = false;
    bool taken = false;
    uint32_t nextPc = 0;   ///< actual successor pc

    uint8_t tableId = 0;   ///< SBOX table designator
    bool aliased = false;  ///< SBOX aliased flag

    uint64_t result = 0;   ///< value written (for value prediction)
};

class PackedTrace;

/** Consumer of the dynamic instruction stream. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;
    virtual void emit(const DynInst &inst) = 0;

    /**
     * Optional packed fast path. A sink whose only action is appending
     * the stream to a PackedTrace may return it here (and report via
     * @p keepResults whether result values must be kept); a producer
     * that pre-packs fixed records at decode time (the threaded
     * backend) then appends rows directly instead of materializing a
     * DynInst per instruction. Sinks that observe instructions —
     * comparators, schedulers, compressors — keep the default and
     * always receive emit() calls. The packed rows a fast-path
     * producer appends must decode to exactly the stream emit() would
     * have received; the backend-adoption gate checks the product of
     * whichever path the recording actually uses.
     */
    virtual PackedTrace *
    packedSink(bool &keepResults)
    {
        keepResults = false;
        return nullptr;
    }
};

/** Statistics of one functional run. */
struct RunStats
{
    uint64_t instructions = 0;
    uint64_t cyclesHint = 0; ///< unused by the machine; for sinks
};

/** Which concrete backend an ExecBackend is. */
enum class ExecBackendKind : uint8_t
{
    Interpreter, ///< isa::Machine
    Threaded,    ///< isa::ThreadedMachine
};

/** Stable backend name ("interpreter", "threaded"). */
const char *execBackendName(ExecBackendKind kind);

/**
 * A functional execution backend: flat byte-addressed data memory, 64
 * architectural registers, and a run() that executes a Program from
 * instruction 0 until Halt while emitting every retired instruction.
 *
 * The memory/register accessors exist so kernel installation
 * (kernels::KernelBuild::install) and the record-time oracle
 * (verify::verifyKernelOutput) work against any backend.
 */
class ExecBackend
{
  public:
    virtual ~ExecBackend() = default;

    virtual ExecBackendKind kind() const = 0;

    /** Read an architectural register. */
    virtual uint64_t reg(Reg r) const = 0;
    /** Write an architectural register (writes to R63 are dropped). */
    virtual void setReg(Reg r, uint64_t v) = 0;

    /** Bulk memory initialization/readback. */
    virtual void writeMem(uint64_t addr,
                          const std::vector<uint8_t> &bytes) = 0;
    virtual std::vector<uint8_t> readMem(uint64_t addr, size_t n)
        const = 0;
    virtual void write32(uint64_t addr, uint32_t v) = 0;
    virtual uint32_t read32(uint64_t addr) const = 0;

    /**
     * Execute @p program from instruction 0 until Halt, emitting each
     * retired instruction to @p sink (may be null). Throws isa::Trap
     * (a std::runtime_error) on bad memory accesses, running off the
     * end of the program, invalid SBOX table designators, or exceeding
     * @p max_insts; the trap carries the faulting pc, sequence number
     * and a register-file snapshot.
     */
    virtual RunStats run(const Program &program, TraceSink *sink = nullptr,
                         uint64_t max_insts = 1ull << 32) = 0;

    /**
     * Optional one-time program preparation (pre-decode for the
     * threaded backend). run() prepares on demand when this was not
     * called; calling it first lets the driver time decode separately
     * from steady-state execution (RecordTiming::decodeSeconds).
     */
    virtual void prepare(const Program &program) { (void)program; }

    /** Whether scheduleFault() is honored by run(). */
    virtual bool supportsFaults() const { return false; }

    /**
     * Schedule a state corruption for the next run(). The base
     * implementation throws std::logic_error: the driver routes
     * fault-injection runs to the interpreter backend, never here.
     */
    virtual void scheduleFault(const InjectedFault &fault);

    /**
     * When strict SBOX semantics are enabled (the default), non-aliased
     * SBOX reads observe a snapshot of their table taken at the first
     * access after the last SBOXSYNC — the paper's visibility rule.
     * Disabling makes SBOX read live memory.
     */
    virtual void setStrictSboxSync(bool strict) = 0;
};

/** Construct a backend of @p kind with @p mem_bytes of data memory. */
std::unique_ptr<ExecBackend> makeExecBackend(ExecBackendKind kind,
                                             size_t mem_bytes = 1 << 22);

namespace detail
{

/**
 * Shared trap raisers, so every backend produces byte-identical trap
 * messages for the same failure — the differential tests compare trap
 * causes and the human does the same with what() strings.
 */
[[noreturn]] void throwOobAccess(uint64_t addr, unsigned size,
                                 size_t mem_size, bool is_store);
[[noreturn]] void throwMisaligned(uint64_t addr, unsigned size,
                                  bool is_store);
[[noreturn]] void throwPcOverrun(uint32_t pc, size_t program_size);
[[noreturn]] void throwFuelExhausted(uint64_t max_insts);
[[noreturn]] void throwInvalidSboxTable(unsigned table_id);

/** Bounds check against a flat @p mem_size byte memory. */
inline void
checkAddrRange(uint64_t addr, unsigned size, size_t mem_size,
               bool is_store)
{
    // Overflow-proof form of addr + size > mem_size.
    if (addr > mem_size || size > mem_size - addr)
        throwOobAccess(addr, size, mem_size, is_store);
}

/** Alpha-style natural alignment for sized accesses. */
inline void
checkAlign(uint64_t addr, unsigned size, bool is_store)
{
    if (size > 1 && (addr & (size - 1)))
        throwMisaligned(addr, size, is_store);
}

} // namespace detail

} // namespace cryptarch::isa

#endif // CRYPTARCH_ISA_EXEC_BACKEND_HH
