#include "isa/threaded_machine.hh"

#include <algorithm>

#include "crypto/idea.hh"
#include "util/bitops.hh"

// Dispatch strategy: direct-threaded computed goto on GNU-compatible
// compilers, a dense switch-in-loop everywhere else (or when forced
// with -DCRYPTARCH_THREADED_SWITCH, which CI uses to keep the portable
// path compiling). Handler bodies are shared between the two modes;
// only VM_CASE/VM_DISPATCH differ.
#if !defined(CRYPTARCH_THREADED_SWITCH) \
    && (defined(__GNUC__) || defined(__clang__))
#define CRYPTARCH_THREADED_GOTO 1
#endif

namespace cryptarch::isa
{

using util::rotl32;
using util::rotl64;
using util::rotr32;
using util::rotr64;

namespace
{

constexpr uint64_t mask32 = 0xFFFFFFFFull;

unsigned
memSize(Opcode op)
{
    switch (op) {
      case Opcode::Ldq:
      case Opcode::Stq:
        return 8;
      case Opcode::Ldl:
      case Opcode::Stl:
        return 4;
      case Opcode::Ldwu:
      case Opcode::Stw:
        return 2;
      default:
        return 1;
    }
}

/** Little-endian sized load; unrolls to a single access on LE hosts. */
template <unsigned N>
inline uint64_t
loadLE(const uint8_t *p)
{
    uint64_t v = 0;
    for (unsigned i = 0; i < N; i++)
        v |= static_cast<uint64_t>(p[i]) << (8 * i);
    return v;
}

/** Little-endian sized store; unrolls to a single access on LE hosts. */
template <unsigned N>
inline void
storeLE(uint8_t *p, uint64_t v)
{
    for (unsigned i = 0; i < N; i++)
        p[i] = static_cast<uint8_t>(v >> (8 * i));
}

} // namespace

// The binary ALU operations whose sources are (ra, rb-or-imm) and
// whose only effect is writing rc. Each gets a register-form and an
// immediate-form handler; the expressions are verbatim from the
// interpreter so results match bit for bit.
#define VM_ALU_OPS_SRC_AB(X)                                             \
    X(Addq, a + b)                                                       \
    X(Subq, a - b)                                                       \
    X(Addl, (a + b) & mask32)                                            \
    X(Subl, (a - b) & mask32)                                            \
    X(And, a & b)                                                        \
    X(Bis, a | b)                                                        \
    X(Xor, a ^ b)                                                        \
    X(Bic, a & ~b)                                                       \
    X(Ornot, a | ~b)                                                     \
    X(Sll, a << (b & 63))                                                \
    X(Srl, a >> (b & 63))                                                \
    X(Sra,                                                               \
      static_cast<uint64_t>(static_cast<int64_t>(a) >> (b & 63)))        \
    X(Sll32, ((a & mask32) << (b & 31)) & mask32)                        \
    X(Srl32, (a & mask32) >> (b & 31))                                   \
    X(S4add, (a << 2) + b)                                               \
    X(S8add, (a << 3) + b)                                               \
    X(Cmpeq, static_cast<uint64_t>(a == b))                              \
    X(Cmpult, static_cast<uint64_t>(a < b))                              \
    X(Cmplt,                                                             \
      static_cast<uint64_t>(static_cast<int64_t>(a)                      \
                            < static_cast<int64_t>(b)))                  \
    X(Mulq, a * b)                                                       \
    X(Mull, (a * b) & mask32)                                            \
    X(Rol, rotl64(a, b & 63))                                            \
    X(Ror, rotr64(a, b & 63))                                            \
    X(Rol32, rotl32(static_cast<uint32_t>(a), b & 31))                   \
    X(Ror32, rotr32(static_cast<uint32_t>(a), b & 31))                   \
    X(Mulmod,                                                            \
      crypto::ideaMulMod(static_cast<uint16_t>(a),                       \
                         static_cast<uint16_t>(b)))

// EXTBL shares the binary-ALU shape but sources only ra (the byte
// selector is not a dependence, matching the interpreter's addSrc).
#define VM_ALU_OPS(X)                                                    \
    VM_ALU_OPS_SRC_AB(X)                                                 \
    X(Extbl, (a >> (8 * (b & 7))) & 0xFF)

namespace
{

enum Handler : uint16_t
{
    H_Halt,
    H_Br,
    H_Beq,
    H_Bne,
    H_Blt,
    H_Bge,
    H_Ld1,
    H_Ld2,
    H_Ld4,
    H_Ld8,
    H_St1,
    H_St2,
    H_St4,
    H_St8,
    H_Cmoveq,
    H_Cmovne,
    H_Rolx32,
    H_Rorx32,
    H_Sbox,
    H_SboxAlias,
    H_Sboxx,
    H_SboxxAlias,
    H_SboxTrap,
    H_Sboxsync,
    H_Grp,
    H_Xbox,
    H_EmitOnly,
#define X(name, expr) H_##name##R, H_##name##I,
    VM_ALU_OPS(X)
#undef X
    H_Count
};

} // namespace

ThreadedMachine::ThreadedMachine(size_t mem_bytes)
    : mem_(mem_bytes, 0), frameSnap_((mem_bytes + 1023) / 1024, nullptr)
{
}

void
ThreadedMachine::setReg(Reg r, uint64_t v)
{
    if (r.n != reg_zero.n)
        regs_[r.n] = v;
}

void
ThreadedMachine::writeMem(uint64_t addr, const std::vector<uint8_t> &bytes)
{
    detail::checkAddrRange(addr, bytes.size(), mem_.size(),
                           /*is_store=*/true);
    std::copy(bytes.begin(), bytes.end(), mem_.begin() + addr);
}

std::vector<uint8_t>
ThreadedMachine::readMem(uint64_t addr, size_t n) const
{
    detail::checkAddrRange(addr, n, mem_.size(), /*is_store=*/false);
    return {mem_.begin() + addr, mem_.begin() + addr + n};
}

void
ThreadedMachine::write32(uint64_t addr, uint32_t v)
{
    detail::checkAddrRange(addr, 4, mem_.size(), /*is_store=*/true);
    detail::checkAlign(addr, 4, /*is_store=*/true);
    util::store32le(mem_.data() + addr, v);
}

uint32_t
ThreadedMachine::read32(uint64_t addr) const
{
    detail::checkAddrRange(addr, 4, mem_.size(), /*is_store=*/false);
    detail::checkAlign(addr, 4, /*is_store=*/false);
    return util::load32le(mem_.data() + addr);
}

const uint8_t *
ThreadedMachine::snapshotFrame(uint64_t frame)
{
    const uint64_t base = frame << 10;
    // Same bounds rule as the interpreter's snapshot path: the whole
    // 1 KB frame must be in memory, and the trap reports the frame
    // base, not the faulting word.
    detail::checkAddrRange(base, 1024, mem_.size(), /*is_store=*/false);
    auto snap = std::make_unique<std::array<uint8_t, 1024>>();
    std::copy(mem_.begin() + base, mem_.begin() + base + 1024,
              snap->begin());
    const uint8_t *p = snap->data();
    frameSnap_[frame] = p;
    snapStore_.push_back(std::move(snap));
    return p;
}

void
ThreadedMachine::clearSnapshots()
{
    if (snapStore_.empty())
        return;
    std::fill(frameSnap_.begin(), frameSnap_.end(), nullptr);
    snapStore_.clear();
}

void
ThreadedMachine::prepare(const Program &program)
{
    if (decodedFor_ != &program || decodedSize_ != program.size())
        decode(program);
}

void
ThreadedMachine::decode(const Program &program)
{
    code_.clear();
    code_.reserve(program.size());

    for (uint32_t pc = 0; pc < program.size(); pc++) {
        const Inst &inst = program[pc];
        DecodedInst d;
        DynInst &t = d.tmpl;

        t.pc = pc;
        t.op = inst.op;
        t.cls = opClass(inst);
        t.tableId = inst.tableId;
        t.aliased = inst.aliased;
        t.nextPc = pc + 1;

        d.imm = inst.imm;
        d.target = static_cast<uint32_t>(inst.target);
        d.ra = inst.ra.n;
        d.rb = inst.rb.n;
        d.rc = inst.rc.n;
        d.byteSel = inst.byteSel;
        d.bImm = inst.useImm;
        d.writes = inst.writesDest();
        if (d.writes)
            t.dest = inst.rc.n;

        // Same source-dependence rules as the interpreter's addSrc:
        // R63 is never a source, at most three sources are recorded.
        auto addSrc = [&t](Reg r) {
            if (r.n != reg_zero.n && t.numSrcs < 3)
                t.srcs[t.numSrcs++] = r.n;
        };

        switch (inst.op) {
          case Opcode::Halt:
            d.handler = H_Halt;
            t.nextPc = 0;
            break;

          case Opcode::Br:
            d.handler = H_Br;
            t.branch = true;
            t.taken = true;
            t.nextPc = d.target;
            break;

          case Opcode::Beq:
          case Opcode::Bne:
          case Opcode::Blt:
          case Opcode::Bge:
            addSrc(inst.ra);
            t.branch = true;
            switch (inst.op) {
              case Opcode::Beq: d.handler = H_Beq; break;
              case Opcode::Bne: d.handler = H_Bne; break;
              case Opcode::Blt: d.handler = H_Blt; break;
              default: d.handler = H_Bge; break;
            }
            break;

          case Opcode::Ldq:
          case Opcode::Ldl:
          case Opcode::Ldwu:
          case Opcode::Ldbu:
            addSrc(inst.ra);
            t.isLoad = true;
            t.size = static_cast<uint8_t>(memSize(inst.op));
            t.addrSrc = inst.ra.n;
            switch (memSize(inst.op)) {
              case 8: d.handler = H_Ld8; break;
              case 4: d.handler = H_Ld4; break;
              case 2: d.handler = H_Ld2; break;
              default: d.handler = H_Ld1; break;
            }
            break;

          case Opcode::Stq:
          case Opcode::Stl:
          case Opcode::Stw:
          case Opcode::Stb:
            addSrc(inst.ra);
            addSrc(inst.rc); // store value
            t.isStore = true;
            t.size = static_cast<uint8_t>(memSize(inst.op));
            t.addrSrc = inst.ra.n;
            switch (memSize(inst.op)) {
              case 8: d.handler = H_St8; break;
              case 4: d.handler = H_St4; break;
              case 2: d.handler = H_St2; break;
              default: d.handler = H_St1; break;
            }
            break;

          case Opcode::Extbl:
            addSrc(inst.ra);
            d.handler = inst.useImm ? H_ExtblI : H_ExtblR;
            break;

          case Opcode::Cmoveq:
          case Opcode::Cmovne:
            addSrc(inst.ra);
            addSrc(inst.rb);
            addSrc(inst.rc); // old value is a source
            d.handler =
                inst.op == Opcode::Cmoveq ? H_Cmoveq : H_Cmovne;
            break;

          case Opcode::Rolx32:
          case Opcode::Rorx32:
            addSrc(inst.ra);
            addSrc(inst.rc); // destination is also a source
            d.handler =
                inst.op == Opcode::Rolx32 ? H_Rolx32 : H_Rorx32;
            break;

          case Opcode::Sbox:
          case Opcode::Sboxx:
            addSrc(inst.ra);
            addSrc(inst.rb);
            if (inst.op == Opcode::Sboxx)
                addSrc(inst.rc); // destination is also a source
            t.isLoad = true;
            t.size = 4;
            if (inst.tableId >= max_sbox_tables)
                d.handler = H_SboxTrap; // trap fires at execution
            else if (inst.op == Opcode::Sboxx)
                d.handler = inst.aliased ? H_SboxxAlias : H_Sboxx;
            else
                d.handler = inst.aliased ? H_SboxAlias : H_Sbox;
            break;

          case Opcode::Sboxsync:
            d.handler = H_Sboxsync;
            break;

          case Opcode::Grp:
            addSrc(inst.ra);
            addSrc(inst.rb);
            d.handler = H_Grp;
            break;

          case Opcode::Xbox:
            addSrc(inst.ra);
            addSrc(inst.rb);
            d.handler = H_Xbox;
            break;

#define X(name, expr)                                                    \
          case Opcode::name:                                             \
            addSrc(inst.ra);                                             \
            if (!inst.useImm)                                            \
                addSrc(inst.rb);                                         \
            d.handler = inst.useImm ? H_##name##I : H_##name##R;         \
            break;
          VM_ALU_OPS_SRC_AB(X)
#undef X
        }

        // Pure register-to-register operations with rc == R63 compute
        // nothing observable: the interpreter discards the result, so
        // the decoded form only has to emit the template. (Memory ops
        // keep their handlers: side effects and traps still happen.)
        const bool pure = !inst.isBranch() && !inst.isMem()
            && inst.op != Opcode::Halt && inst.op != Opcode::Sboxsync;
        if (pure && !d.writes)
            d.handler = H_EmitOnly;

        // Packed fast path: the fixed record and both flag variants
        // are static too. Unconditional branches and Halt carry their
        // taken/next-pc-exception bits in the template (and thus in
        // baseFlags); conditional branches get a second flag word for
        // the taken outcome, whose next-pc exception exists exactly
        // when the target is not the fall-through.
        d.baseFlags = PackedTrace::packRowBase(t, d.row);
        if (t.branch && !t.taken) {
            d.takenFlags =
                static_cast<uint16_t>(d.baseFlags | PackedTrace::f_taken);
            if (d.target != pc + 1)
                d.takenFlags |= PackedTrace::f_next_pc_exc;
        }

        code_.push_back(d);
    }

    decodedFor_ = &program;
    decodedSize_ = program.size();
}

RunStats
ThreadedMachine::run(const Program &program, TraceSink *sink,
                     uint64_t max_insts)
{
    if (decodedFor_ != &program || decodedSize_ != program.size())
        decode(program);

    uint32_t pc = 0;
    uint64_t seq = 0;
    // Packed fast path: only when the sink is a pure PackedTrace
    // appender AND its trace is empty — appendRow's sequence numbers
    // are implicit in the row position, so they only line up with this
    // run's seq counter starting from a fresh trace.
    bool keep = false;
    PackedTrace *fast = sink ? sink->packedSink(keep) : nullptr;
    if (fast && !fast->empty())
        fast = nullptr;
    try {
        return exec(sink, fast, keep, max_insts, pc, seq);
    } catch (const Trap &t) {
        // Rethrow with execution context, exactly like the interpreter.
        throw Trap::annotated(t, pc, seq, regs_);
    }
}

// --- handler bodies, shared between dispatch modes --------------------

// Stage one retirement on the packed fast path and land the batch
// when the staging buffer fills. Used only under `if (fast)`.
#define VM_FAST_ROW(fl, addrv, npcv, resv)                               \
    do {                                                                 \
        stage.add(d->row, (fl), (addrv), (npcv), (resv));                \
        if (stage.full())                                                \
            stage.flush(*fast);                                          \
    } while (0)

// Emit of an instruction whose trace record is fully static (Halt, Br,
// Sboxsync, EmitOnly). The template's nextPc doubles as the next-pc
// exception value when baseFlags carries that bit (Halt's 0, Br's
// target) and is ignored otherwise.
#define VM_EMIT_STATIC()                                                 \
    if (fast) {                                                          \
        VM_FAST_ROW(d->baseFlags, 0, d->tmpl.nextPc, 0);                 \
    } else if (sink) {                                                   \
        dyn = d->tmpl;                                                   \
        dyn.seq = seq;                                                   \
        sink->emit(dyn);                                                 \
    }

// Common tail of every rc-writing ALU-shaped handler. The EmitOnly
// rerouting at decode guarantees rc != R63 here.
#define VM_ALU_TAIL(r)                                                   \
    regs[d->rc] = (r);                                                   \
    if (fast) {                                                          \
        VM_FAST_ROW(keep && (r) != 0                                     \
                        ? static_cast<uint16_t>(                         \
                              d->baseFlags                               \
                              | PackedTrace::f_has_result)               \
                        : d->baseFlags,                                  \
                    0, 0, (r));                                          \
    } else if (sink) {                                                   \
        dyn = d->tmpl;                                                   \
        dyn.seq = seq;                                                   \
        dyn.result = (r);                                                \
        sink->emit(dyn);                                                 \
    }                                                                    \
    seq++;                                                               \
    pc++;                                                                \
    VM_DISPATCH()

#define VM_ALU(name, expr)                                               \
    VM_CASE(name##R)                                                     \
    {                                                                    \
        const uint64_t a = regs[d->ra];                                  \
        const uint64_t b = regs[d->rb];                                  \
        const uint64_t r = (expr);                                       \
        VM_ALU_TAIL(r);                                                  \
    }                                                                    \
    VM_CASE(name##I)                                                     \
    {                                                                    \
        const uint64_t a = regs[d->ra];                                  \
        const uint64_t b = static_cast<uint64_t>(d->imm);                \
        const uint64_t r = (expr);                                       \
        VM_ALU_TAIL(r);                                                  \
    }

#define VM_CONDBR(name, cond_expr)                                       \
    VM_CASE(name)                                                        \
    {                                                                    \
        const uint64_t a = regs[d->ra];                                  \
        const bool take = (cond_expr);                                   \
        if (fast) {                                                      \
            VM_FAST_ROW(take ? d->takenFlags : d->baseFlags, 0,          \
                        d->target, 0);                                   \
        } else if (sink) {                                               \
            dyn = d->tmpl;                                               \
            dyn.seq = seq;                                               \
            if (take) {                                                  \
                dyn.taken = true;                                        \
                dyn.nextPc = d->target;                                  \
            }                                                            \
            sink->emit(dyn);                                             \
        }                                                                \
        seq++;                                                           \
        pc = take ? d->target : pc + 1;                                  \
        VM_DISPATCH();                                                   \
    }

#define VM_LOAD(N)                                                       \
    {                                                                    \
        const uint64_t addr =                                            \
            regs[d->ra] + static_cast<uint64_t>(d->imm);                 \
        if (N > mem_size || addr > mem_size - N)                         \
            detail::throwOobAccess(addr, N, mem_size,                    \
                                   /*is_store=*/false);                  \
        if (N > 1 && (addr & (N - 1)))                                   \
            detail::throwMisaligned(addr, N, /*is_store=*/false);        \
        const uint64_t v = loadLE<N>(mem + addr);                        \
        if (d->writes)                                                   \
            regs[d->rc] = v;                                             \
        if (fast) {                                                      \
            uint16_t flags = d->baseFlags;                               \
            if (addr != 0) {                                             \
                flags |= PackedTrace::f_has_addr;                        \
                if (addr >> 32)                                          \
                    flags |= PackedTrace::f_wide_addr;                   \
            }                                                            \
            if (keep && d->writes && v != 0)                             \
                flags |= PackedTrace::f_has_result;                      \
            VM_FAST_ROW(flags, addr, 0, d->writes ? v : 0);              \
        } else if (sink) {                                               \
            dyn = d->tmpl;                                               \
            dyn.seq = seq;                                               \
            dyn.addr = addr;                                             \
            if (d->writes)                                               \
                dyn.result = v;                                          \
            sink->emit(dyn);                                             \
        }                                                                \
        seq++;                                                           \
        pc++;                                                            \
        VM_DISPATCH();                                                   \
    }

#define VM_STORE(N)                                                      \
    {                                                                    \
        const uint64_t addr =                                            \
            regs[d->ra] + static_cast<uint64_t>(d->imm);                 \
        if (N > mem_size || addr > mem_size - N)                         \
            detail::throwOobAccess(addr, N, mem_size,                    \
                                   /*is_store=*/true);                   \
        if (N > 1 && (addr & (N - 1)))                                   \
            detail::throwMisaligned(addr, N, /*is_store=*/true);         \
        storeLE<N>(mem + addr, regs[d->rc]);                             \
        if (fast) {                                                      \
            uint16_t flags = d->baseFlags;                               \
            if (addr != 0) {                                             \
                flags |= PackedTrace::f_has_addr;                        \
                if (addr >> 32)                                          \
                    flags |= PackedTrace::f_wide_addr;                   \
            }                                                            \
            VM_FAST_ROW(flags, addr, 0, 0);                              \
        } else if (sink) {                                               \
            dyn = d->tmpl;                                               \
            dyn.seq = seq;                                               \
            dyn.addr = addr;                                             \
            sink->emit(dyn);                                             \
        }                                                                \
        seq++;                                                           \
        pc++;                                                            \
        VM_DISPATCH();                                                   \
    }

#define VM_CMOV(name, cond_expr)                                         \
    VM_CASE(name)                                                        \
    {                                                                    \
        const uint64_t a = regs[d->ra];                                  \
        const uint64_t b = d->bImm ? static_cast<uint64_t>(d->imm)       \
                                   : regs[d->rb];                        \
        const uint64_t r = (cond_expr) ? b : regs[d->rc];                \
        VM_ALU_TAIL(r);                                                  \
    }

#define VM_ROTX(name, rot_fn)                                            \
    VM_CASE(name)                                                        \
    {                                                                    \
        const uint64_t a = regs[d->ra];                                  \
        const uint64_t r =                                               \
            (rot_fn(static_cast<uint32_t>(a), d->imm & 31)               \
             ^ regs[d->rc])                                              \
            & mask32;                                                    \
        VM_ALU_TAIL(r);                                                  \
    }

// SBOX lookup: table-relative address from the selected index byte,
// served from live memory (aliased form, or relaxed sync mode) or from
// the 1 KB frame snapshot table (strict non-aliased form).
#define VM_SBOX(name, xor_rc, live_mem)                                  \
    VM_CASE(name)                                                        \
    {                                                                    \
        const uint64_t a = regs[d->ra];                                  \
        const uint64_t index =                                           \
            (regs[d->rb] >> (8 * d->byteSel)) & 0xFF;                    \
        const uint64_t addr = (a & ~0x3FFull) | (index << 2);            \
        if (4 > mem_size || addr > mem_size - 4)                         \
            detail::throwOobAccess(addr, 4, mem_size,                    \
                                   /*is_store=*/false);                  \
        const uint8_t *p;                                                \
        if (live_mem || !strict) {                                       \
            p = mem + addr;                                              \
        } else {                                                         \
            p = frameSnap[addr >> 10];                                   \
            if (!p)                                                      \
                p = snapshotFrame(addr >> 10);                           \
            p += addr & 0x3FF;                                           \
        }                                                                \
        const uint64_t v = loadLE<4>(p);                                 \
        uint64_t resv = 0;                                               \
        if (xor_rc) {                                                    \
            const uint64_t r = regs[d->rc] ^ v;                          \
            if (d->writes) {                                             \
                regs[d->rc] = r;                                         \
                resv = r;                                                \
            }                                                            \
        } else if (d->writes) {                                          \
            regs[d->rc] = v;                                             \
            resv = v;                                                    \
        }                                                                \
        if (fast) {                                                      \
            uint16_t flags = d->baseFlags;                               \
            if (addr != 0) {                                             \
                flags |= PackedTrace::f_has_addr;                        \
                if (addr >> 32)                                          \
                    flags |= PackedTrace::f_wide_addr;                   \
            }                                                            \
            if (keep && resv != 0)                                       \
                flags |= PackedTrace::f_has_result;                      \
            VM_FAST_ROW(flags, addr, 0, resv);                           \
        } else if (sink) {                                               \
            dyn = d->tmpl;                                               \
            dyn.seq = seq;                                               \
            dyn.addr = addr;                                             \
            dyn.result = resv;                                           \
            sink->emit(dyn);                                             \
        }                                                                \
        seq++;                                                           \
        pc++;                                                            \
        VM_DISPATCH();                                                   \
    }

RunStats
ThreadedMachine::exec(TraceSink *sink, PackedTrace *fast,
                      bool keepResults, uint64_t max_insts, uint32_t &pc,
                      uint64_t &seq)
{
    const bool keep = keepResults;
    const DecodedInst *const code = code_.data();
    const uint32_t code_size = static_cast<uint32_t>(code_.size());
    uint64_t *const __restrict regs = regs_.data();
    uint8_t *const __restrict mem = mem_.data();
    const uint64_t mem_size = mem_.size();
    const uint8_t *const *const frameSnap = frameSnap_.data();
    const bool strict = strictSbox_;

    // Fast-path retirements stage into this L1-resident buffer and
    // land in cap-sized batches (VM_FAST_ROW). The guard flushes the
    // partial batch on every exit — the Halt return, fuel exhaustion,
    // and trap unwinds — so the trace always holds exactly the retired
    // prefix when control leaves this frame.
    PackedTrace::Stage stage;
    struct StageFlush
    {
        PackedTrace *t;
        PackedTrace::Stage &s;
        ~StageFlush()
        {
            if (t && !s.empty())
                s.flush(*t);
        }
    } stage_flush{fast, stage};

    DynInst dyn;
    const DecodedInst *d = nullptr;

#ifdef CRYPTARCH_THREADED_GOTO

#define VM_CASE(h) L_##h:
#define VM_DISPATCH()                                                    \
    do {                                                                 \
        if (pc >= code_size)                                             \
            detail::throwPcOverrun(pc, code_size);                       \
        if (seq >= max_insts)                                            \
            detail::throwFuelExhausted(max_insts);                       \
        d = code + pc;                                                   \
        goto *jt[d->handler];                                            \
    } while (0)

    const void *const jt[] = {
        &&L_Halt,
        &&L_Br,
        &&L_Beq,
        &&L_Bne,
        &&L_Blt,
        &&L_Bge,
        &&L_Ld1,
        &&L_Ld2,
        &&L_Ld4,
        &&L_Ld8,
        &&L_St1,
        &&L_St2,
        &&L_St4,
        &&L_St8,
        &&L_Cmoveq,
        &&L_Cmovne,
        &&L_Rolx32,
        &&L_Rorx32,
        &&L_Sbox,
        &&L_SboxAlias,
        &&L_Sboxx,
        &&L_SboxxAlias,
        &&L_SboxTrap,
        &&L_Sboxsync,
        &&L_Grp,
        &&L_Xbox,
        &&L_EmitOnly,
#define X(name, expr) &&L_##name##R, &&L_##name##I,
        VM_ALU_OPS(X)
#undef X
    };
    static_assert(sizeof(jt) / sizeof(jt[0]) == H_Count,
                  "dispatch table out of sync with Handler enum");

    VM_DISPATCH();

#else // switch dispatch

#define VM_CASE(h) case H_##h:
#define VM_DISPATCH() break

    for (;;) {
        if (pc >= code_size)
            detail::throwPcOverrun(pc, code_size);
        if (seq >= max_insts)
            detail::throwFuelExhausted(max_insts);
        d = code + pc;
        switch (static_cast<Handler>(d->handler)) {

#endif

    VM_CASE(Halt)
    {
        VM_EMIT_STATIC();
        seq++;
        RunStats stats;
        stats.instructions = seq;
        return stats;
    }

    VM_CASE(Br)
    {
        VM_EMIT_STATIC();
        seq++;
        pc = d->target;
        VM_DISPATCH();
    }

    VM_CONDBR(Beq, a == 0)
    VM_CONDBR(Bne, a != 0)
    VM_CONDBR(Blt, static_cast<int64_t>(a) < 0)
    VM_CONDBR(Bge, static_cast<int64_t>(a) >= 0)

    VM_CASE(Ld1) VM_LOAD(1)
    VM_CASE(Ld2) VM_LOAD(2)
    VM_CASE(Ld4) VM_LOAD(4)
    VM_CASE(Ld8) VM_LOAD(8)

    VM_CASE(St1) VM_STORE(1)
    VM_CASE(St2) VM_STORE(2)
    VM_CASE(St4) VM_STORE(4)
    VM_CASE(St8) VM_STORE(8)

    VM_CMOV(Cmoveq, a == 0)
    VM_CMOV(Cmovne, a != 0)

    VM_ROTX(Rolx32, rotl32)
    VM_ROTX(Rorx32, rotr32)

    VM_SBOX(Sbox, false, false)
    VM_SBOX(SboxAlias, false, true)
    VM_SBOX(Sboxx, true, false)
    VM_SBOX(SboxxAlias, true, true)

    VM_CASE(SboxTrap)
    {
        detail::throwInvalidSboxTable(d->tmpl.tableId);
    }

    VM_CASE(Sboxsync)
    {
        clearSnapshots();
        VM_EMIT_STATIC();
        seq++;
        pc++;
        VM_DISPATCH();
    }

    VM_CASE(Grp)
    {
        const uint64_t a = regs[d->ra];
        const uint64_t control = regs[d->rb];
        uint64_t lo = 0, hi = 0;
        unsigned nlo = 0, nhi = 0;
        for (unsigned i = 0; i < 64; i++) {
            uint64_t bit = (a >> i) & 1;
            if ((control >> i) & 1)
                hi |= bit << nhi++;
            else
                lo |= bit << nlo++;
        }
        uint64_t r = lo;
        if (nlo < 64) // nlo == 64 (all-zero control) leaves hi empty
            r |= hi << nlo;
        VM_ALU_TAIL(r);
    }

    VM_CASE(Xbox)
    {
        const uint64_t a = regs[d->ra];
        const uint64_t map = regs[d->rb];
        uint64_t r = 0;
        for (unsigned j = 0; j < 8; j++) {
            unsigned src_bit = (map >> (6 * j)) & 0x3F;
            uint64_t bit = (a >> src_bit) & 1;
            r |= bit << (8 * d->byteSel + j);
        }
        VM_ALU_TAIL(r);
    }

    VM_CASE(EmitOnly)
    {
        VM_EMIT_STATIC();
        seq++;
        pc++;
        VM_DISPATCH();
    }

#define X(name, expr) VM_ALU(name, expr)
    VM_ALU_OPS(X)
#undef X

#ifdef CRYPTARCH_THREADED_GOTO
    __builtin_unreachable();
#else
          default:
            detail::throwPcOverrun(pc, code_size); // corrupt handler id
        }
    }
#endif
}

#undef VM_CASE
#undef VM_DISPATCH
#undef VM_EMIT_STATIC
#undef VM_FAST_ROW

} // namespace cryptarch::isa
