#include "isa/program.hh"

#include <sstream>

namespace cryptarch::isa
{

std::string
Program::disassemble() const
{
    std::ostringstream os;
    for (size_t i = 0; i < insts.size(); i++)
        os << i << ":\t" << isa::disassemble(insts[i]) << "\n";
    return os.str();
}

void
Assembler::emit(Inst inst)
{
    insts.push_back(inst);
}

void
Assembler::label(const std::string &name)
{
    if (labels.count(name)) {
        std::ostringstream os;
        os << "duplicate label '" << name << "' at instruction "
           << insts.size() << " (first defined at instruction "
           << labels[name] << ")";
        throw AsmError(os.str(), name, insts.size());
    }
    labels[name] = static_cast<int32_t>(insts.size());
}

void
Assembler::emitBranch(Opcode op, Reg a, const std::string &target)
{
    Inst inst;
    inst.op = op;
    inst.ra = a;
    fixups.emplace_back(insts.size(), target);
    emit(inst);
}

void Assembler::br(const std::string &t) { emitBranch(Opcode::Br, reg_zero, t); }
void Assembler::beq(Reg a, const std::string &t) { emitBranch(Opcode::Beq, a, t); }
void Assembler::bne(Reg a, const std::string &t) { emitBranch(Opcode::Bne, a, t); }
void Assembler::blt(Reg a, const std::string &t) { emitBranch(Opcode::Blt, a, t); }
void Assembler::bge(Reg a, const std::string &t) { emitBranch(Opcode::Bge, a, t); }

void
Assembler::halt()
{
    Inst inst;
    inst.op = Opcode::Halt;
    emit(inst);
}

void
Assembler::load(Opcode op, Reg rd, Reg base, int64_t disp)
{
    Inst inst;
    inst.op = op;
    inst.ra = base;
    inst.rc = rd;
    inst.imm = disp;
    emit(inst);
}

void
Assembler::store(Opcode op, Reg value, Reg base, int64_t disp)
{
    Inst inst;
    inst.op = op;
    inst.ra = base;
    inst.rc = value;
    inst.imm = disp;
    emit(inst);
}

void Assembler::ldq(Reg rd, Reg base, int64_t d) { load(Opcode::Ldq, rd, base, d); }
void Assembler::ldl(Reg rd, Reg base, int64_t d) { load(Opcode::Ldl, rd, base, d); }
void Assembler::ldwu(Reg rd, Reg base, int64_t d) { load(Opcode::Ldwu, rd, base, d); }
void Assembler::ldbu(Reg rd, Reg base, int64_t d) { load(Opcode::Ldbu, rd, base, d); }
void Assembler::stq(Reg v, Reg base, int64_t d) { store(Opcode::Stq, v, base, d); }
void Assembler::stl(Reg v, Reg base, int64_t d) { store(Opcode::Stl, v, base, d); }
void Assembler::stw(Reg v, Reg base, int64_t d) { store(Opcode::Stw, v, base, d); }
void Assembler::stb(Reg v, Reg base, int64_t d) { store(Opcode::Stb, v, base, d); }

void
Assembler::alu(Opcode op, Reg a, Reg b, Reg d)
{
    Inst inst;
    inst.op = op;
    inst.ra = a;
    inst.rb = b;
    inst.rc = d;
    emit(inst);
}

void
Assembler::aluImm(Opcode op, Reg a, int64_t imm, Reg d)
{
    Inst inst;
    inst.op = op;
    inst.ra = a;
    inst.rc = d;
    inst.useImm = true;
    inst.imm = imm;
    emit(inst);
}

void Assembler::addq(Reg a, Reg b, Reg d) { alu(Opcode::Addq, a, b, d); }
void Assembler::addq(Reg a, int64_t i, Reg d) { aluImm(Opcode::Addq, a, i, d); }
void Assembler::subq(Reg a, Reg b, Reg d) { alu(Opcode::Subq, a, b, d); }
void Assembler::subq(Reg a, int64_t i, Reg d) { aluImm(Opcode::Subq, a, i, d); }
void Assembler::addl(Reg a, Reg b, Reg d) { alu(Opcode::Addl, a, b, d); }
void Assembler::addl(Reg a, int64_t i, Reg d) { aluImm(Opcode::Addl, a, i, d); }
void Assembler::subl(Reg a, Reg b, Reg d) { alu(Opcode::Subl, a, b, d); }
void Assembler::subl(Reg a, int64_t i, Reg d) { aluImm(Opcode::Subl, a, i, d); }
void Assembler::and_(Reg a, Reg b, Reg d) { alu(Opcode::And, a, b, d); }
void Assembler::and_(Reg a, int64_t i, Reg d) { aluImm(Opcode::And, a, i, d); }
void Assembler::bis(Reg a, Reg b, Reg d) { alu(Opcode::Bis, a, b, d); }
void Assembler::bis(Reg a, int64_t i, Reg d) { aluImm(Opcode::Bis, a, i, d); }
void Assembler::xor_(Reg a, Reg b, Reg d) { alu(Opcode::Xor, a, b, d); }
void Assembler::xor_(Reg a, int64_t i, Reg d) { aluImm(Opcode::Xor, a, i, d); }
void Assembler::bic(Reg a, Reg b, Reg d) { alu(Opcode::Bic, a, b, d); }
void Assembler::bic(Reg a, int64_t i, Reg d) { aluImm(Opcode::Bic, a, i, d); }
void Assembler::ornot(Reg a, Reg b, Reg d) { alu(Opcode::Ornot, a, b, d); }
void Assembler::sll(Reg a, Reg b, Reg d) { alu(Opcode::Sll, a, b, d); }
void Assembler::sll(Reg a, int64_t i, Reg d) { aluImm(Opcode::Sll, a, i, d); }
void Assembler::srl(Reg a, Reg b, Reg d) { alu(Opcode::Srl, a, b, d); }
void Assembler::srl(Reg a, int64_t i, Reg d) { aluImm(Opcode::Srl, a, i, d); }
void Assembler::sra(Reg a, int64_t i, Reg d) { aluImm(Opcode::Sra, a, i, d); }
void Assembler::sll32(Reg a, Reg b, Reg d) { alu(Opcode::Sll32, a, b, d); }
void Assembler::sll32(Reg a, int64_t i, Reg d) { aluImm(Opcode::Sll32, a, i, d); }
void Assembler::srl32(Reg a, Reg b, Reg d) { alu(Opcode::Srl32, a, b, d); }
void Assembler::srl32(Reg a, int64_t i, Reg d) { aluImm(Opcode::Srl32, a, i, d); }
void Assembler::extbl(Reg a, int64_t b, Reg d) { aluImm(Opcode::Extbl, a, b, d); }
void Assembler::s4add(Reg a, Reg b, Reg d) { alu(Opcode::S4add, a, b, d); }
void Assembler::s8add(Reg a, Reg b, Reg d) { alu(Opcode::S8add, a, b, d); }
void Assembler::cmpeq(Reg a, Reg b, Reg d) { alu(Opcode::Cmpeq, a, b, d); }
void Assembler::cmpeq(Reg a, int64_t i, Reg d) { aluImm(Opcode::Cmpeq, a, i, d); }
void Assembler::cmpult(Reg a, Reg b, Reg d) { alu(Opcode::Cmpult, a, b, d); }
void Assembler::cmpult(Reg a, int64_t i, Reg d) { aluImm(Opcode::Cmpult, a, i, d); }
void Assembler::cmplt(Reg a, Reg b, Reg d) { alu(Opcode::Cmplt, a, b, d); }
void Assembler::cmoveq(Reg c, Reg v, Reg d) { alu(Opcode::Cmoveq, c, v, d); }
void Assembler::cmovne(Reg c, Reg v, Reg d) { alu(Opcode::Cmovne, c, v, d); }
void Assembler::mulq(Reg a, Reg b, Reg d) { alu(Opcode::Mulq, a, b, d); }
void Assembler::mull(Reg a, Reg b, Reg d) { alu(Opcode::Mull, a, b, d); }
void Assembler::mull(Reg a, int64_t i, Reg d) { aluImm(Opcode::Mull, a, i, d); }

void
Assembler::li(int64_t value, Reg d)
{
    aluImm(Opcode::Bis, reg_zero, value, d);
}

void
Assembler::mov(Reg src, Reg d)
{
    alu(Opcode::Bis, src, reg_zero, d);
}

void Assembler::rol(Reg a, Reg b, Reg d) { alu(Opcode::Rol, a, b, d); }
void Assembler::ror(Reg a, Reg b, Reg d) { alu(Opcode::Ror, a, b, d); }
void Assembler::rol32(Reg a, Reg b, Reg d) { alu(Opcode::Rol32, a, b, d); }
void Assembler::rol32(Reg a, int64_t i, Reg d) { aluImm(Opcode::Rol32, a, i, d); }
void Assembler::ror32(Reg a, Reg b, Reg d) { alu(Opcode::Ror32, a, b, d); }
void Assembler::ror32(Reg a, int64_t i, Reg d) { aluImm(Opcode::Ror32, a, i, d); }
void Assembler::rolx32(Reg src, int64_t i, Reg d) { aluImm(Opcode::Rolx32, src, i, d); }
void Assembler::rorx32(Reg src, int64_t i, Reg d) { aluImm(Opcode::Rorx32, src, i, d); }
void Assembler::mulmod(Reg a, Reg b, Reg d) { alu(Opcode::Mulmod, a, b, d); }

namespace
{

void
checkTableId(unsigned table_id, size_t inst_index)
{
    if (table_id >= max_sbox_tables) {
        std::ostringstream os;
        os << "SBOX table id " << table_id << " out of range (max "
           << max_sbox_tables - 1 << ") at instruction " << inst_index;
        throw AsmError(os.str(), "", inst_index);
    }
}

} // namespace

void
Assembler::sbox(unsigned table_id, unsigned byte_sel, Reg table, Reg index,
                Reg d, bool aliased)
{
    checkTableId(table_id, insts.size());
    Inst inst;
    inst.op = Opcode::Sbox;
    inst.ra = table;
    inst.rb = index;
    inst.rc = d;
    inst.tableId = static_cast<uint8_t>(table_id);
    inst.byteSel = static_cast<uint8_t>(byte_sel & 7);
    inst.aliased = aliased;
    emit(inst);
}

void
Assembler::sboxsync(unsigned table_id)
{
    Inst inst;
    inst.op = Opcode::Sboxsync;
    inst.tableId = static_cast<uint8_t>(table_id);
    emit(inst);
}

void
Assembler::xbox(unsigned byte_sel, Reg src, Reg map, Reg d)
{
    Inst inst;
    inst.op = Opcode::Xbox;
    inst.ra = src;
    inst.rb = map;
    inst.rc = d;
    inst.byteSel = static_cast<uint8_t>(byte_sel & 7);
    emit(inst);
}

void
Assembler::grp(Reg src, Reg control, Reg d)
{
    alu(Opcode::Grp, src, control, d);
}

void
Assembler::sboxx(unsigned table_id, unsigned byte_sel, Reg table,
                 Reg index, Reg d, bool aliased)
{
    checkTableId(table_id, insts.size());
    Inst inst;
    inst.op = Opcode::Sboxx;
    inst.ra = table;
    inst.rb = index;
    inst.rc = d;
    inst.tableId = static_cast<uint8_t>(table_id);
    inst.byteSel = static_cast<uint8_t>(byte_sel & 7);
    inst.aliased = aliased;
    emit(inst);
}

Program
Assembler::finalize()
{
    for (const auto &[idx, name] : fixups) {
        auto it = labels.find(name);
        if (it == labels.end()) {
            std::ostringstream os;
            os << "undefined label '" << name
               << "' referenced by the branch at instruction " << idx
               << " (" << isa::disassemble(insts[idx]) << ")";
            throw AsmError(os.str(), name, idx);
        }
        insts[idx].target = it->second;
    }
    Program p;
    p.insts = insts;
    return p;
}

} // namespace cryptarch::isa
