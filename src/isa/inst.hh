/**
 * @file
 * CryptISA instruction definitions.
 *
 * CryptISA is a 64-bit Alpha-like load/store ISA extended with the
 * paper's cryptography instructions (Figure 8):
 *
 *  - ROL/ROR            rotates by register or immediate (32/64-bit)
 *  - ROLX/RORX          constant rotate fused with XOR-accumulate
 *  - MULMOD             16-bit multiplication modulo 0x10001
 *  - SBOX/SBOXSYNC      one-instruction substitution-table access
 *  - XBOX               partial 64-bit general bit permutation
 *
 * The baseline subset deliberately mirrors the Alpha: no rotate
 * instructions (they are synthesized from shifts), byte extracts
 * (EXTBL), scaled add (S4ADD) for table addressing, and conditional
 * moves.
 */

#ifndef CRYPTARCH_ISA_INST_HH
#define CRYPTARCH_ISA_INST_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace cryptarch::isa
{

/** Architectural register name. R63 reads as zero and ignores writes. */
struct Reg
{
    uint8_t n = 63;

    constexpr bool operator==(const Reg &o) const { return n == o.n; }
};

/** Number of architectural registers. */
constexpr unsigned num_regs = 64;
/** The hardwired zero register. */
constexpr Reg reg_zero{63};

/**
 * SBOX table designators the encoding can name (the paper's #<tt>
 * field, sized generously). The assembler refuses larger ids; the
 * machine traps on them (a corrupted program is data, not UB).
 */
constexpr unsigned max_sbox_tables = 16;

enum class Opcode : uint8_t
{
    // Control
    Halt,
    Br,      ///< unconditional branch
    Beq,     ///< branch if ra == 0
    Bne,     ///< branch if ra != 0
    Blt,     ///< branch if (int64)ra < 0
    Bge,     ///< branch if (int64)ra >= 0

    // Memory
    Ldq,     ///< 64-bit load
    Ldl,     ///< 32-bit load, zero-extended
    Ldwu,    ///< 16-bit load, zero-extended
    Ldbu,    ///< 8-bit load, zero-extended
    Stq,     ///< 64-bit store
    Stl,     ///< 32-bit store
    Stw,     ///< 16-bit store
    Stb,     ///< 8-bit store

    // Integer ALU (rb or immediate second operand)
    Addq,
    Subq,
    Addl,    ///< 32-bit add, result zero-extended
    Subl,    ///< 32-bit subtract, result zero-extended
    And,
    Bis,     ///< or
    Xor,
    Bic,     ///< a & ~b
    Ornot,   ///< a | ~b
    Sll,
    Srl,
    Sra,
    Sll32,   ///< shift low 32 bits, zero-extended result
    Srl32,   ///< shift low 32 bits, zero-extended result
    Extbl,   ///< extract byte (rb/imm selects byte index 0..7)
    S4add,   ///< (ra << 2) + rb: table address scaling
    S8add,   ///< (ra << 3) + rb
    Cmpeq,   ///< rc = (ra == rb)
    Cmpult,  ///< rc = (ra < rb) unsigned
    Cmplt,   ///< rc = (ra < rb) signed
    Cmoveq,  ///< if (ra == 0) rc = rb
    Cmovne,  ///< if (ra != 0) rc = rb

    // Multiplies
    Mulq,    ///< 64-bit multiply (7 cycles)
    Mull,    ///< 32-bit multiply, zero-extended (4-cycle early out)

    // --- ISA extensions (paper Figure 8) ---
    Rol,     ///< 64-bit rotate left by register (low 6 bits)
    Ror,     ///< 64-bit rotate right by register
    Rol32,   ///< 32-bit rotate left (low 5 bits of rb/imm)
    Ror32,   ///< 32-bit rotate right
    Rolx32,  ///< rc = rotl32(ra, imm) ^ rc (rc is also a source)
    Rorx32,  ///< rc = rotr32(ra, imm) ^ rc
    Mulmod,  ///< rc = (ra * rb) mod 0x10001, IDEA zero convention
    Sbox,    ///< rc = MEM32[(ra & ~0x3FF) | (byte_sel(rb) << 2)]
    Sboxsync, ///< make stores visible to subsequent SBOX accesses
    Xbox,    ///< partial general permutation (see Inst::byteSel)
    Grp,     ///< Shi & Lee group permutation: bits of ra with rb-bit 0
             ///< packed low, rb-bit 1 packed high (64-bit)
    Sboxx,   ///< fused substitute-and-XOR: rc ^= SBOX lookup. A
             ///< three-register-read operation (table, index, rc) of
             ///< the kind the paper's conclusions propose for future
             ///< cryptographic processors ("four operand instructions
             ///< to permit increased operation combining").
};

/** Functional-unit class an opcode occupies (paper Table 2 resources). */
enum class OpClass : uint8_t
{
    Nop,       ///< Halt
    Control,   ///< branches
    IntAlu,    ///< 1-cycle integer ops
    IntMult,   ///< 64-bit multiply, 7 cycles
    IntMult32, ///< 32-bit multiply, 4-cycle early out
    MulMod,    ///< modular multiply, 4 cycles
    RotUnit,   ///< rotates, ROLX/RORX and XBOX (rotator/XBOX unit)
    Load,
    Store,
    SboxRead,  ///< non-aliased SBOX access
    SboxSync,
};

/** Number of OpClass values (size of any per-class accumulator). */
constexpr size_t num_op_classes =
    static_cast<size_t>(OpClass::SboxSync) + 1;

/**
 * Canonical OpClass name, the single table behind per-class statistics
 * keys (BENCH_*.json class_counts, the stall-attribution report).
 */
const char *opClassName(OpClass cls);

/** One CryptISA instruction. */
struct Inst
{
    Opcode op = Opcode::Halt;
    Reg ra{};           ///< first source
    Reg rb{};           ///< second source (ignored when useImm)
    Reg rc{};           ///< destination (source too for ROLX/RORX/CMOV)
    bool useImm = false;
    int64_t imm = 0;    ///< immediate operand / memory displacement
    int32_t target = -1; ///< branch target (instruction index)

    // Extension fields.
    uint8_t tableId = 0; ///< SBOX table designator #<tt>
    uint8_t byteSel = 0; ///< SBOX #<bb> / XBOX #<bbb> byte selector
    bool aliased = false; ///< SBOX aliased flag

    /** True if this instruction writes rc. */
    bool writesDest() const;
    /** True for conditional and unconditional branches. */
    bool isBranch() const;
    /** True for loads, stores and SBOX accesses. */
    bool isMem() const;
};

/** Map an instruction to its functional-unit class. */
OpClass opClass(const Inst &inst);

/** Human-readable mnemonic, for disassembly and test output. */
std::string opName(Opcode op);

/** Disassemble one instruction. */
std::string disassemble(const Inst &inst);

} // namespace cryptarch::isa

#endif // CRYPTARCH_ISA_INST_HH
