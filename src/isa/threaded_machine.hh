/**
 * @file
 * Pre-decoded threaded-code execution backend.
 *
 * The interpreter (isa::Machine) re-derives everything about an
 * instruction every time it executes it: operand sources, functional
 * unit class, memory size, destination-write decision, and — worst of
 * all on the SBOX-heavy kernels — a std::map lookup per substitution
 * read. ThreadedMachine does all of that exactly once per program:
 * decode() lowers each static instruction into a DecodedInst holding a
 * resolved handler id (immediate and register forms are distinct
 * handlers), a pre-filled DynInst template with every static trace
 * field already set, and the resolved operands (register numbers,
 * immediates, branch-target pc). Execution is then a tight
 * dispatch loop — computed-goto direct threading under GCC/Clang, a
 * dense-switch loop elsewhere — that patches only the dynamic fields
 * (seq, address, taken, result) into a copy of the template and
 * streams it to the sink.
 *
 * When the sink reports a packed fast path (TraceSink::packedSink —
 * the driver's RecordedTrace does), even the per-retirement DynInst
 * goes away: decode() additionally pre-packs each instruction's
 * 14-byte PackedTrace fixed record, and retirement appends that row
 * directly with only the dynamic flag bits patched. The rows follow
 * append()'s canonicalization rules exactly, so the recorded trace is
 * byte-identical to one built through emit() — the parity tests
 * compare serialized traces from both paths to prove it.
 *
 * Data memory is the same flat byte array the interpreter uses
 * (1 KB-aligned SBOX frames, pow2-sized by default so bounds and
 * alignment checks reduce to single mask/compare operations), and SBOX
 * snapshot visibility is served from a flat per-frame pointer table
 * instead of a map.
 *
 * Semantics are bit-for-bit the interpreter's: identical DynInst
 * streams (tests/isa/test_backends.cc proves this field by field over
 * the whole kernel catalog), identical architectural side effects and
 * identical traps (same cause, same seq, same message). The one
 * deliberate difference: scheduled fault injection is not supported —
 * the driver routes fault runs to the interpreter.
 */

#ifndef CRYPTARCH_ISA_THREADED_MACHINE_HH
#define CRYPTARCH_ISA_THREADED_MACHINE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "isa/exec_backend.hh"
#include "isa/packed_trace.hh"
#include "isa/program.hh"

namespace cryptarch::isa
{

/** The pre-decoded threaded-code backend (see file header). */
class ThreadedMachine : public ExecBackend
{
  public:
    explicit ThreadedMachine(size_t mem_bytes = 1 << 22);

    ExecBackendKind
    kind() const override
    {
        return ExecBackendKind::Threaded;
    }

    uint64_t reg(Reg r) const override { return regs_[r.n]; }
    void setReg(Reg r, uint64_t v) override;

    void writeMem(uint64_t addr, const std::vector<uint8_t> &bytes)
        override;
    std::vector<uint8_t> readMem(uint64_t addr, size_t n) const override;
    void write32(uint64_t addr, uint32_t v) override;
    uint32_t read32(uint64_t addr) const override;

    /**
     * Pre-decode @p program into the flat handler/operand array. run()
     * decodes on demand; calling prepare() first lets callers time the
     * one-time decode separately from steady-state execution. The
     * decoded form is cached by program identity, so a prepare()
     * directly followed by run() of the same program decodes once.
     */
    void prepare(const Program &program) override;

    RunStats run(const Program &program, TraceSink *sink = nullptr,
                 uint64_t max_insts = 1ull << 32) override;

    void setStrictSboxSync(bool strict) override
    {
        strictSbox_ = strict;
    }

    /**
     * One pre-decoded instruction: a resolved handler id, the operand
     * fields that handler reads, and a DynInst template with every
     * static trace field already filled in.
     */
    struct DecodedInst
    {
        DynInst tmpl;       ///< static trace fields pre-filled
        int64_t imm = 0;    ///< immediate operand / displacement
        uint32_t target = 0; ///< taken-branch successor pc
        uint16_t handler = 0; ///< index into the dispatch table
        uint8_t ra = reg_zero.n;
        uint8_t rb = reg_zero.n;
        uint8_t rc = reg_zero.n;
        uint8_t byteSel = 0; ///< SBOX index byte / XBOX byte position
        bool writes = false; ///< instruction writes rc
        bool bImm = false;  ///< CMOV second operand is the immediate

        /** Pre-packed fixed record of tmpl (PackedTrace::packRowBase). */
        uint8_t row[PackedTrace::row_bytes] = {};
        uint16_t baseFlags = 0;  ///< flag word for the addr/result-free case
        uint16_t takenFlags = 0; ///< conditional branches: flags when taken
    };

  private:
    void decode(const Program &program);
    RunStats exec(TraceSink *sink, PackedTrace *fast, bool keepResults,
                  uint64_t max_insts, uint32_t &pc, uint64_t &seq);
    /** Cold path: snapshot the 1 KB frame at index @p frame. */
    const uint8_t *snapshotFrame(uint64_t frame);
    void clearSnapshots();

    std::array<uint64_t, num_regs> regs_{};
    std::vector<uint8_t> mem_;
    bool strictSbox_ = true;

    /** Per-1KB-frame snapshot pointers (null = live / not taken). */
    std::vector<const uint8_t *> frameSnap_;
    /** Owning storage behind frameSnap_ entries. */
    std::vector<std::unique_ptr<std::array<uint8_t, 1024>>> snapStore_;

    /** Decoded program cache, keyed by identity of the last program. */
    const Program *decodedFor_ = nullptr;
    size_t decodedSize_ = 0;
    std::vector<DecodedInst> code_;
};

} // namespace cryptarch::isa

#endif // CRYPTARCH_ISA_THREADED_MACHINE_HH
