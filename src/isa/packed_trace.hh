/**
 * @file
 * Structure-of-arrays compact encoding of a dynamic instruction stream.
 *
 * A trace replayed across a model grid is read once per timing model,
 * so replay throughput is bounded by how many bytes per instruction
 * stream through the cache hierarchy. A full DynInst is 56 bytes;
 * PackedTrace stores the same information in 14 fixed bytes per
 * instruction plus small side tables, and decodes back to DynInst on
 * the fly during replay:
 *
 *   fixed record (14 B/inst, interleaved)
 *     pc        u32   static instruction index
 *     op, cls   u8+u8
 *     dest      u8
 *     addrSrc   u8
 *     tableId   u8
 *     srcs      3xu8  source registers (always three slots)
 *     flags     u16   see flag bits below
 *
 *   In memory the fixed fields are interleaved as one 14-byte record
 *   per instruction (offsets above, little-endian) rather than stored
 *   as separate columns: recording appends one contiguous record per
 *   instruction and replay decodes one, so both directions touch a
 *   single sequential stream instead of eight. The serialized stream
 *   (serialize()/deserialize()) still writes per-column payloads —
 *   the format predates the interleaving and is checksummed, so the
 *   layout change cannot move bytes in any artifact.
 *
 *   side tables (entries only where the common case fails)
 *     addr32    u32   effective address, when != 0 and < 2^32
 *     addrWide  u64   escape for addresses >= 2^32
 *     nextPcExc u32   successor pc, when != pc + 1 (taken branches,
 *                     the final Halt)
 *     result    u64   written value, when kept and != 0
 *
 * flags bits: 0-1 numSrcs, 2 isLoad, 3 isStore, 4 branch, 5 taken,
 * 6 aliased, 7 hasAddr, 8 nextPc exception, 9 hasResult,
 * 10-12 size code (decode table {0,1,2,4,8}), 13 wide address.
 *
 * Sequence numbers are implicit: appended instructions must arrive
 * with seq equal to their index (the functional Machine emits them
 * that way), and decode reconstructs seq from the cursor position.
 * Side-table membership is order-dependent, so decoding is sequential
 * through a Reader cursor — exactly the access pattern replay has.
 */

#ifndef CRYPTARCH_ISA_PACKED_TRACE_HH
#define CRYPTARCH_ISA_PACKED_TRACE_HH

#include <array>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "isa/machine.hh"

namespace cryptarch::isa
{

/** What a packed-trace stream failed to validate. */
enum class TraceErrorKind : uint8_t
{
    BadMagic,     ///< stream does not start with the trace magic
    BadVersion,   ///< unknown format version
    Truncated,    ///< stream shorter than its header promises
    BadChecksum,  ///< payload checksum mismatch (bit corruption)
    Inconsistent, ///< columns/flags/side tables disagree
    Overrun,      ///< decode consumed past a side table's end
};

/** Stable short name of a trace error kind ("bad-magic", ...). */
const char *traceErrorKindName(TraceErrorKind kind);

/**
 * A packed-trace stream was rejected. Every malformed input path —
 * truncation, corruption, inconsistent side tables — raises this
 * typed error instead of undefined behavior.
 */
class TraceFormatError : public std::runtime_error
{
  public:
    TraceFormatError(TraceErrorKind kind, const std::string &detail)
        : std::runtime_error("PackedTrace ["
                             + std::string(traceErrorKindName(kind))
                             + "]: " + detail),
          kind_(kind)
    {
    }

    TraceErrorKind kind() const { return kind_; }

  private:
    TraceErrorKind kind_;
};

class PackedTrace
{
  public:
    /** Bytes of one interleaved fixed record (the 14 in "14 B/inst"). */
    static constexpr size_t row_bytes = 14;

    /**
     * Append @p inst to the stream. @p inst.seq must equal size().
     * With @p keepResult false the result value is dropped (decodes
     * as 0) — timing models never read it, and results are the one
     * field that would otherwise dominate the encoding.
     */
    void append(const DynInst &inst, bool keepResult = true);

    // Flag-word bit layout (see file comment). Public because the
    // fast-path row producer below patches dynamic bits per
    // retirement, and because the format tests assert against it.
    static constexpr uint16_t num_srcs_mask = 0x0003;
    static constexpr uint16_t f_load = 1u << 2;
    static constexpr uint16_t f_store = 1u << 3;
    static constexpr uint16_t f_branch = 1u << 4;
    static constexpr uint16_t f_taken = 1u << 5;
    static constexpr uint16_t f_aliased = 1u << 6;
    static constexpr uint16_t f_has_addr = 1u << 7;
    static constexpr uint16_t f_next_pc_exc = 1u << 8;
    static constexpr uint16_t f_has_result = 1u << 9;
    static constexpr unsigned size_code_shift = 10;
    static constexpr uint16_t size_code_mask = 0x7;
    static constexpr uint16_t f_wide_addr = 1u << 13;

    /**
     * Pack @p inst's static fields into @p row and return its base
     * flag word: everything append() would compute for an instruction
     * whose addr and result are zero (taken and the next-pc exception
     * come from @p inst itself, so branch templates carry the right
     * static bits). A fast-path producer packs one row per static
     * instruction at decode time, then per retirement ORs in whichever
     * of f_taken / f_has_addr / f_wide_addr / f_next_pc_exc /
     * f_has_result apply and calls appendRow().
     */
    static uint16_t packRowBase(const DynInst &inst,
                                uint8_t (&row)[row_bytes]);

    /**
     * Fast-path append for producers that pre-pack fixed records at
     * decode time (the threaded execution backend). @p row is the
     * 14-byte record from packRowBase(); its flag bytes are replaced
     * by @p flags, the FINAL flag word for this retirement. Side-table
     * entries are appended for exactly the side-table flags set in
     * @p flags, taking the values from @p addr, @p nextPc, and
     * @p result. The caller must follow append()'s canonicalization
     * rules (has-addr iff addr != 0, wide iff addr >= 2^32, next-pc
     * exception iff nextPc != pc + 1, result kept iff nonzero and
     * wanted) so the encoding — not just the decode — is identical to
     * an append() of the equivalent DynInst. The backend parity tests
     * compare serialized bytes to prove it. Sequence numbers stay
     * implicit: the row lands at index size().
     */
    void appendRow(const uint8_t (&row)[row_bytes], uint16_t flags,
                   uint64_t addr, uint32_t nextPc, uint64_t result);

    /**
     * Retirement staging buffer for the row fast path. A per-row
     * vector::push_back costs several times the 14-byte copy itself
     * (capacity check, end-pointer update, aliasing reloads), so the
     * threaded backend accumulates retirements into this L1-resident
     * buffer with add() — same arguments and canonicalization contract
     * as appendRow() — and lands them in cap-sized batches with
     * flush(), which bulk-inserts each column. A Stage is bound to the
     * single trace it flushes into; rows appear in the trace only
     * after a flush, so the producer must flush before the trace is
     * read (the backend flushes on every exit path, traps included).
     */
    class Stage
    {
      public:
        /** Rows buffered between flushes. */
        static constexpr uint32_t cap = 256;

        /** Stage one retirement; see appendRow() for the contract. */
        void add(const uint8_t (&row)[row_bytes], uint16_t flags,
                 uint64_t addr, uint32_t nextPc, uint64_t result);

        bool full() const { return nRows == cap; }
        bool empty() const { return nRows == 0; }

        /** Append everything staged to @p t and reset to empty. */
        void flush(PackedTrace &t);

      private:
        std::array<uint8_t, row_bytes> rows[cap];
        uint32_t addr32[cap];
        uint64_t addrWide[cap];
        uint32_t nextPcExc[cap];
        uint64_t result[cap];
        uint32_t nRows = 0;
        uint32_t nAddr32 = 0;
        uint32_t nWide = 0;
        uint32_t nNextPc = 0;
        uint32_t nResult = 0;
    };

    /** Pre-size the fixed records for @p n instructions. */
    void reserve(size_t n);

    size_t size() const { return fixed_.size(); }
    bool empty() const { return fixed_.empty(); }

    /** Total bytes held across fixed columns and side tables. */
    size_t packedBytes() const;

    void clear();

    /**
     * Serialize to a self-describing byte stream: versioned header
     * (magic, version, per-table entry counts), FNV-1a checksum over
     * the payload, then the columns and side tables little-endian.
     */
    std::vector<uint8_t> serialize() const;

    /**
     * Parse a stream produced by serialize(). Validates the magic,
     * version, length, checksum, and that the flag columns and side
     * tables are mutually consistent (every decode is in bounds before
     * a Reader ever runs). Throws TraceFormatError on any defect.
     */
    static PackedTrace deserialize(std::span<const uint8_t> bytes);

    /**
     * Sequential decode cursor. Readers are cheap to construct and
     * independent, so a trace can be replayed concurrently.
     */
    class Reader
    {
      public:
        explicit Reader(const PackedTrace &t) : trace(&t) {}

        bool done() const { return index >= trace->size(); }

        /** Decode the next instruction; valid only when !done().
         *  Defined inline below: the decode runs once per replayed
         *  instruction and wants to fold into the replay loop rather
         *  than pay a cross-TU call returning a 56-byte DynInst.
         *  Fully bounds-checked: a side-table overrun (possible only
         *  on a hand-built inconsistent trace; deserialize() validates
         *  streams up front) throws TraceFormatError instead of
         *  reading out of bounds. */
        DynInst next();

      private:
        const PackedTrace *trace;
        size_t index = 0;
        size_t addr32Pos = 0;
        size_t addrWidePos = 0;
        size_t nextPcPos = 0;
        size_t resultPos = 0;
    };

    Reader reader() const { return Reader(*this); }

  private:
    /** Access sizes the ISA produces, indexed by size code. */
    static constexpr uint8_t size_table[5] = {0, 1, 2, 4, 8};

    static uint16_t sizeCode(uint8_t size);

    /** Raise TraceFormatError unless flags and side tables agree. */
    void validateConsistency() const;

    [[noreturn]] static void overrun(const char *table, size_t index);

    /** Record field offsets within a 14-byte fixed record. */
    static constexpr size_t off_pc = 0;
    static constexpr size_t off_op = 4;
    static constexpr size_t off_cls = 5;
    static constexpr size_t off_dest = 6;
    static constexpr size_t off_addr_src = 7;
    static constexpr size_t off_table_id = 8;
    static constexpr size_t off_srcs = 9;
    static constexpr size_t off_flags = 12;

    static uint32_t
    rowPc(const uint8_t *row)
    {
        return static_cast<uint32_t>(row[off_pc])
            | static_cast<uint32_t>(row[off_pc + 1]) << 8
            | static_cast<uint32_t>(row[off_pc + 2]) << 16
            | static_cast<uint32_t>(row[off_pc + 3]) << 24;
    }

    static uint16_t
    rowFlags(const uint8_t *row)
    {
        return static_cast<uint16_t>(
            row[off_flags] | row[off_flags + 1] << 8);
    }

    /**
     * One row_bytes-sized record per instruction. std::array keeps the
     * element trivially copyable with size == alignment == 1 packing,
     * so push_back is one capacity check plus a 14-byte copy — this is
     * the recording hot path.
     */
    std::vector<std::array<uint8_t, row_bytes>> fixed_;

    std::vector<uint32_t> addr32_;
    std::vector<uint64_t> addrWide_;
    std::vector<uint32_t> nextPcExc_;
    std::vector<uint64_t> result_;
};

inline void
PackedTrace::appendRow(const uint8_t (&row)[row_bytes], uint16_t flags,
                       uint64_t addr, uint32_t nextPc, uint64_t result)
{
    std::array<uint8_t, row_bytes> rec;
    std::memcpy(rec.data(), row, row_bytes);
    rec[off_flags] = static_cast<uint8_t>(flags);
    rec[off_flags + 1] = static_cast<uint8_t>(flags >> 8);
    fixed_.push_back(rec);
    if (flags & f_has_addr) {
        if (flags & f_wide_addr)
            addrWide_.push_back(addr);
        else
            addr32_.push_back(static_cast<uint32_t>(addr));
    }
    if (flags & f_next_pc_exc)
        nextPcExc_.push_back(nextPc);
    if (flags & f_has_result)
        result_.push_back(result);
}

inline void
PackedTrace::Stage::add(const uint8_t (&row)[row_bytes], uint16_t flags,
                        uint64_t addr, uint32_t nextPc, uint64_t result)
{
    assert(nRows < cap);
    std::array<uint8_t, row_bytes> &rec = rows[nRows++];
    std::memcpy(rec.data(), row, row_bytes);
    rec[off_flags] = static_cast<uint8_t>(flags);
    rec[off_flags + 1] = static_cast<uint8_t>(flags >> 8);
    if (flags & f_has_addr) {
        if (flags & f_wide_addr)
            addrWide[nWide++] = addr;
        else
            addr32[nAddr32++] = static_cast<uint32_t>(addr);
    }
    if (flags & f_next_pc_exc)
        nextPcExc[nNextPc++] = nextPc;
    if (flags & f_has_result)
        this->result[nResult++] = result;
}

inline DynInst
PackedTrace::Reader::next()
{
    const PackedTrace &t = *trace;
    const size_t i = index;
    const uint8_t *row = t.fixed_[i].data();
    const uint16_t flags = rowFlags(row);

    DynInst d;
    d.seq = i;
    d.pc = rowPc(row);
    d.op = static_cast<Opcode>(row[off_op]);
    d.cls = static_cast<OpClass>(row[off_cls]);
    d.numSrcs = flags & num_srcs_mask;
    d.srcs = {row[off_srcs], row[off_srcs + 1], row[off_srcs + 2]};
    d.dest = row[off_dest];
    d.isLoad = flags & f_load;
    d.isStore = flags & f_store;
    d.size = size_table[(flags >> size_code_shift) & size_code_mask];
    d.addrSrc = row[off_addr_src];
    d.branch = flags & f_branch;
    d.taken = flags & f_taken;
    d.tableId = row[off_table_id];
    d.aliased = flags & f_aliased;

    if (flags & f_has_addr) {
        if (flags & f_wide_addr) {
            if (addrWidePos >= t.addrWide_.size())
                overrun("addrWide", i);
            d.addr = t.addrWide_[addrWidePos++];
        } else {
            if (addr32Pos >= t.addr32_.size())
                overrun("addr32", i);
            d.addr = t.addr32_[addr32Pos++];
        }
    }
    if (flags & f_next_pc_exc) {
        if (nextPcPos >= t.nextPcExc_.size())
            overrun("nextPcExc", i);
        d.nextPc = t.nextPcExc_[nextPcPos++];
    } else {
        d.nextPc = d.pc + 1;
    }
    if (flags & f_has_result) {
        if (resultPos >= t.result_.size())
            overrun("result", i);
        d.result = t.result_[resultPos++];
    }

    ++index;
    return d;
}

} // namespace cryptarch::isa

#endif // CRYPTARCH_ISA_PACKED_TRACE_HH
