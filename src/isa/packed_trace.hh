/**
 * @file
 * Structure-of-arrays compact encoding of a dynamic instruction stream.
 *
 * A trace replayed across a model grid is read once per timing model,
 * so replay throughput is bounded by how many bytes per instruction
 * stream through the cache hierarchy. A full DynInst is 56 bytes;
 * PackedTrace stores the same information in 14 fixed bytes per
 * instruction plus small side tables, and decodes back to DynInst on
 * the fly during replay:
 *
 *   fixed SoA columns (14 B/inst)
 *     pc        u32   static instruction index
 *     op, cls   u8+u8
 *     dest      u8
 *     addrSrc   u8
 *     tableId   u8
 *     srcs      3xu8  source registers (always three slots)
 *     flags     u16   see flag bits below
 *
 *   side tables (entries only where the common case fails)
 *     addr32    u32   effective address, when != 0 and < 2^32
 *     addrWide  u64   escape for addresses >= 2^32
 *     nextPcExc u32   successor pc, when != pc + 1 (taken branches,
 *                     the final Halt)
 *     result    u64   written value, when kept and != 0
 *
 * flags bits: 0-1 numSrcs, 2 isLoad, 3 isStore, 4 branch, 5 taken,
 * 6 aliased, 7 hasAddr, 8 nextPc exception, 9 hasResult,
 * 10-12 size code (decode table {0,1,2,4,8}), 13 wide address.
 *
 * Sequence numbers are implicit: appended instructions must arrive
 * with seq equal to their index (the functional Machine emits them
 * that way), and decode reconstructs seq from the cursor position.
 * Side-table membership is order-dependent, so decoding is sequential
 * through a Reader cursor — exactly the access pattern replay has.
 */

#ifndef CRYPTARCH_ISA_PACKED_TRACE_HH
#define CRYPTARCH_ISA_PACKED_TRACE_HH

#include <cassert>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "isa/machine.hh"

namespace cryptarch::isa
{

/** What a packed-trace stream failed to validate. */
enum class TraceErrorKind : uint8_t
{
    BadMagic,     ///< stream does not start with the trace magic
    BadVersion,   ///< unknown format version
    Truncated,    ///< stream shorter than its header promises
    BadChecksum,  ///< payload checksum mismatch (bit corruption)
    Inconsistent, ///< columns/flags/side tables disagree
    Overrun,      ///< decode consumed past a side table's end
};

/** Stable short name of a trace error kind ("bad-magic", ...). */
const char *traceErrorKindName(TraceErrorKind kind);

/**
 * A packed-trace stream was rejected. Every malformed input path —
 * truncation, corruption, inconsistent side tables — raises this
 * typed error instead of undefined behavior.
 */
class TraceFormatError : public std::runtime_error
{
  public:
    TraceFormatError(TraceErrorKind kind, const std::string &detail)
        : std::runtime_error("PackedTrace ["
                             + std::string(traceErrorKindName(kind))
                             + "]: " + detail),
          kind_(kind)
    {
    }

    TraceErrorKind kind() const { return kind_; }

  private:
    TraceErrorKind kind_;
};

class PackedTrace
{
  public:
    /**
     * Append @p inst to the stream. @p inst.seq must equal size().
     * With @p keepResult false the result value is dropped (decodes
     * as 0) — timing models never read it, and results are the one
     * field that would otherwise dominate the encoding.
     */
    void append(const DynInst &inst, bool keepResult = true);

    /** Pre-size the fixed columns for @p n instructions. */
    void reserve(size_t n);

    size_t size() const { return flags_.size(); }
    bool empty() const { return flags_.empty(); }

    /** Total bytes held across fixed columns and side tables. */
    size_t packedBytes() const;

    void clear();

    /**
     * Serialize to a self-describing byte stream: versioned header
     * (magic, version, per-table entry counts), FNV-1a checksum over
     * the payload, then the columns and side tables little-endian.
     */
    std::vector<uint8_t> serialize() const;

    /**
     * Parse a stream produced by serialize(). Validates the magic,
     * version, length, checksum, and that the flag columns and side
     * tables are mutually consistent (every decode is in bounds before
     * a Reader ever runs). Throws TraceFormatError on any defect.
     */
    static PackedTrace deserialize(std::span<const uint8_t> bytes);

    /**
     * Sequential decode cursor. Readers are cheap to construct and
     * independent, so a trace can be replayed concurrently.
     */
    class Reader
    {
      public:
        explicit Reader(const PackedTrace &t) : trace(&t) {}

        bool done() const { return index >= trace->size(); }

        /** Decode the next instruction; valid only when !done().
         *  Defined inline below: the decode runs once per replayed
         *  instruction and wants to fold into the replay loop rather
         *  than pay a cross-TU call returning a 56-byte DynInst.
         *  Fully bounds-checked: a side-table overrun (possible only
         *  on a hand-built inconsistent trace; deserialize() validates
         *  streams up front) throws TraceFormatError instead of
         *  reading out of bounds. */
        DynInst next();

      private:
        const PackedTrace *trace;
        size_t index = 0;
        size_t addr32Pos = 0;
        size_t addrWidePos = 0;
        size_t nextPcPos = 0;
        size_t resultPos = 0;
    };

    Reader reader() const { return Reader(*this); }

  private:
    // flags bit layout (see file comment).
    static constexpr uint16_t num_srcs_mask = 0x0003;
    static constexpr uint16_t f_load = 1u << 2;
    static constexpr uint16_t f_store = 1u << 3;
    static constexpr uint16_t f_branch = 1u << 4;
    static constexpr uint16_t f_taken = 1u << 5;
    static constexpr uint16_t f_aliased = 1u << 6;
    static constexpr uint16_t f_has_addr = 1u << 7;
    static constexpr uint16_t f_next_pc_exc = 1u << 8;
    static constexpr uint16_t f_has_result = 1u << 9;
    static constexpr unsigned size_code_shift = 10;
    static constexpr uint16_t size_code_mask = 0x7;
    static constexpr uint16_t f_wide_addr = 1u << 13;

    /** Access sizes the ISA produces, indexed by size code. */
    static constexpr uint8_t size_table[5] = {0, 1, 2, 4, 8};

    static uint16_t sizeCode(uint8_t size);

    /** Raise TraceFormatError unless flags and side tables agree. */
    void validateConsistency() const;

    [[noreturn]] static void overrun(const char *table, size_t index);

    std::vector<uint32_t> pc_;
    std::vector<uint8_t> op_;
    std::vector<uint8_t> cls_;
    std::vector<uint8_t> dest_;
    std::vector<uint8_t> addrSrc_;
    std::vector<uint8_t> tableId_;
    std::vector<uint8_t> srcs_; ///< 3 slots per instruction, flat
    std::vector<uint16_t> flags_;

    std::vector<uint32_t> addr32_;
    std::vector<uint64_t> addrWide_;
    std::vector<uint32_t> nextPcExc_;
    std::vector<uint64_t> result_;
};

inline DynInst
PackedTrace::Reader::next()
{
    const PackedTrace &t = *trace;
    const size_t i = index;
    const uint16_t flags = t.flags_[i];

    DynInst d;
    d.seq = i;
    d.pc = t.pc_[i];
    d.op = static_cast<Opcode>(t.op_[i]);
    d.cls = static_cast<OpClass>(t.cls_[i]);
    d.numSrcs = flags & num_srcs_mask;
    d.srcs = {t.srcs_[3 * i], t.srcs_[3 * i + 1], t.srcs_[3 * i + 2]};
    d.dest = t.dest_[i];
    d.isLoad = flags & f_load;
    d.isStore = flags & f_store;
    d.size = size_table[(flags >> size_code_shift) & size_code_mask];
    d.addrSrc = t.addrSrc_[i];
    d.branch = flags & f_branch;
    d.taken = flags & f_taken;
    d.tableId = t.tableId_[i];
    d.aliased = flags & f_aliased;

    if (flags & f_has_addr) {
        if (flags & f_wide_addr) {
            if (addrWidePos >= t.addrWide_.size())
                overrun("addrWide", i);
            d.addr = t.addrWide_[addrWidePos++];
        } else {
            if (addr32Pos >= t.addr32_.size())
                overrun("addr32", i);
            d.addr = t.addr32_[addr32Pos++];
        }
    }
    if (flags & f_next_pc_exc) {
        if (nextPcPos >= t.nextPcExc_.size())
            overrun("nextPcExc", i);
        d.nextPc = t.nextPcExc_[nextPcPos++];
    } else {
        d.nextPc = d.pc + 1;
    }
    if (flags & f_has_result) {
        if (resultPos >= t.result_.size())
            overrun("result", i);
        d.result = t.result_[resultPos++];
    }

    ++index;
    return d;
}

} // namespace cryptarch::isa

#endif // CRYPTARCH_ISA_PACKED_TRACE_HH
