#include "isa/inst.hh"

#include <array>
#include <sstream>

namespace cryptarch::isa
{

bool
Inst::writesDest() const
{
    switch (op) {
      case Opcode::Halt:
      case Opcode::Br:
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
      case Opcode::Stq:
      case Opcode::Stl:
      case Opcode::Stw:
      case Opcode::Stb:
      case Opcode::Sboxsync:
        return false;
      default:
        return rc.n != reg_zero.n;
    }
}

bool
Inst::isBranch() const
{
    switch (op) {
      case Opcode::Br:
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
        return true;
      default:
        return false;
    }
}

bool
Inst::isMem() const
{
    switch (op) {
      case Opcode::Ldq:
      case Opcode::Ldl:
      case Opcode::Ldwu:
      case Opcode::Ldbu:
      case Opcode::Stq:
      case Opcode::Stl:
      case Opcode::Stw:
      case Opcode::Stb:
      case Opcode::Sbox:
      case Opcode::Sboxx:
        return true;
      default:
        return false;
    }
}

OpClass
opClass(const Inst &inst)
{
    switch (inst.op) {
      case Opcode::Halt:
        return OpClass::Nop;
      case Opcode::Br:
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
        return OpClass::Control;
      case Opcode::Ldq:
      case Opcode::Ldl:
      case Opcode::Ldwu:
      case Opcode::Ldbu:
        return OpClass::Load;
      case Opcode::Stq:
      case Opcode::Stl:
      case Opcode::Stw:
      case Opcode::Stb:
        return OpClass::Store;
      case Opcode::Mulq:
        return OpClass::IntMult;
      case Opcode::Mull:
        return OpClass::IntMult32;
      case Opcode::Mulmod:
        return OpClass::MulMod;
      case Opcode::Rol:
      case Opcode::Ror:
      case Opcode::Rol32:
      case Opcode::Ror32:
      case Opcode::Rolx32:
      case Opcode::Rorx32:
      case Opcode::Xbox:
      case Opcode::Grp:
        return OpClass::RotUnit;
      case Opcode::Sbox:
      case Opcode::Sboxx:
        // Aliased SBOX accesses behave as loads with optimized address
        // generation; non-aliased ones bypass the memory ordering queue.
        return inst.aliased ? OpClass::Load : OpClass::SboxRead;
      case Opcode::Sboxsync:
        return OpClass::SboxSync;
      default:
        return OpClass::IntAlu;
    }
}

namespace
{

constexpr std::array<const char *, num_op_classes> op_class_names = {
    "Nop",    "Control",  "IntAlu", "IntMult",  "IntMult32", "MulMod",
    "RotUnit", "Load",    "Store",  "SboxRead", "SboxSync",
};
static_assert(op_class_names.size() == num_op_classes,
              "op_class_names must name every OpClass");

} // namespace

const char *
opClassName(OpClass cls)
{
    return op_class_names[static_cast<size_t>(cls)];
}

std::string
opName(Opcode op)
{
    switch (op) {
      case Opcode::Halt: return "halt";
      case Opcode::Br: return "br";
      case Opcode::Beq: return "beq";
      case Opcode::Bne: return "bne";
      case Opcode::Blt: return "blt";
      case Opcode::Bge: return "bge";
      case Opcode::Ldq: return "ldq";
      case Opcode::Ldl: return "ldl";
      case Opcode::Ldwu: return "ldwu";
      case Opcode::Ldbu: return "ldbu";
      case Opcode::Stq: return "stq";
      case Opcode::Stl: return "stl";
      case Opcode::Stw: return "stw";
      case Opcode::Stb: return "stb";
      case Opcode::Addq: return "addq";
      case Opcode::Subq: return "subq";
      case Opcode::Addl: return "addl";
      case Opcode::Subl: return "subl";
      case Opcode::And: return "and";
      case Opcode::Bis: return "bis";
      case Opcode::Xor: return "xor";
      case Opcode::Bic: return "bic";
      case Opcode::Ornot: return "ornot";
      case Opcode::Sll: return "sll";
      case Opcode::Srl: return "srl";
      case Opcode::Sra: return "sra";
      case Opcode::Sll32: return "sll32";
      case Opcode::Srl32: return "srl32";
      case Opcode::Extbl: return "extbl";
      case Opcode::S4add: return "s4add";
      case Opcode::S8add: return "s8add";
      case Opcode::Cmpeq: return "cmpeq";
      case Opcode::Cmpult: return "cmpult";
      case Opcode::Cmplt: return "cmplt";
      case Opcode::Cmoveq: return "cmoveq";
      case Opcode::Cmovne: return "cmovne";
      case Opcode::Mulq: return "mulq";
      case Opcode::Mull: return "mull";
      case Opcode::Rol: return "rol";
      case Opcode::Ror: return "ror";
      case Opcode::Rol32: return "rol32";
      case Opcode::Ror32: return "ror32";
      case Opcode::Rolx32: return "rolx32";
      case Opcode::Rorx32: return "rorx32";
      case Opcode::Mulmod: return "mulmod";
      case Opcode::Sbox: return "sbox";
      case Opcode::Sboxsync: return "sboxsync";
      case Opcode::Xbox: return "xbox";
      case Opcode::Grp: return "grp";
      case Opcode::Sboxx: return "sboxx";
    }
    return "?";
}

std::string
disassemble(const Inst &inst)
{
    std::ostringstream os;
    os << opName(inst.op);
    if (inst.op == Opcode::Sbox || inst.op == Opcode::Sboxx) {
        os << "." << int(inst.tableId) << "." << int(inst.byteSel);
        if (inst.aliased)
            os << ".a";
        os << " r" << int(inst.ra.n) << ", r" << int(inst.rb.n) << ", r"
           << int(inst.rc.n);
        return os.str();
    }
    if (inst.op == Opcode::Xbox) {
        os << "." << int(inst.byteSel) << " r" << int(inst.ra.n) << ", r"
           << int(inst.rb.n) << ", r" << int(inst.rc.n);
        return os.str();
    }
    if (inst.op == Opcode::Sboxsync) {
        os << "." << int(inst.tableId);
        return os.str();
    }
    if (inst.isBranch()) {
        if (inst.op != Opcode::Br)
            os << " r" << int(inst.ra.n) << ",";
        os << " @" << inst.target;
        return os.str();
    }
    if (inst.isMem()) {
        os << " r" << int(inst.rc.n) << ", " << inst.imm << "(r"
           << int(inst.ra.n) << ")";
        return os.str();
    }
    if (inst.op == Opcode::Halt)
        return os.str();
    os << " r" << int(inst.ra.n) << ", ";
    if (inst.useImm)
        os << "#" << inst.imm;
    else
        os << "r" << int(inst.rb.n);
    os << ", r" << int(inst.rc.n);
    return os.str();
}

} // namespace cryptarch::isa
