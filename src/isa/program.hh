/**
 * @file
 * CryptISA programs and the assembler builder used to write them.
 *
 * Kernels are authored in C++ through the Assembler's mnemonic methods
 * (the moral equivalent of the paper's hand-coded assembly). Forward
 * branch references are declared with labels and resolved by
 * finalize().
 */

#ifndef CRYPTARCH_ISA_PROGRAM_HH
#define CRYPTARCH_ISA_PROGRAM_HH

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "isa/inst.hh"

namespace cryptarch::isa
{

/**
 * An assembly-time failure: undefined or duplicate labels, operands
 * outside their encodable range. Carries the offending label (when
 * label-related) and the instruction index the error was detected at,
 * and names both in what() — the assembler analogue of isa::Trap.
 */
class AsmError : public std::runtime_error
{
  public:
    AsmError(const std::string &detail, std::string label,
             size_t inst_index)
        : std::runtime_error("Assembler: " + detail),
          label_(std::move(label)), index_(inst_index)
    {
    }

    /** The label involved, empty when not label-related. */
    const std::string &label() const { return label_; }
    /** Instruction index where the error was detected. */
    size_t instIndex() const { return index_; }

  private:
    std::string label_;
    size_t index_;
};

/** A finalized instruction sequence. */
struct Program
{
    std::vector<Inst> insts;

    size_t size() const { return insts.size(); }
    const Inst &operator[](size_t i) const { return insts[i]; }

    /** Full disassembly listing, one instruction per line. */
    std::string disassemble() const;
};

/**
 * Builder for CryptISA programs. Register-allocation-free: callers
 * manage registers (the kernels use a simple bump allocator, see
 * @ref RegPool).
 */
class Assembler
{
  public:
    // --- labels and control flow ---
    void label(const std::string &name);
    void br(const std::string &target);
    void beq(Reg a, const std::string &target);
    void bne(Reg a, const std::string &target);
    void blt(Reg a, const std::string &target);
    void bge(Reg a, const std::string &target);
    void halt();

    // --- memory ---
    void ldq(Reg rd, Reg base, int64_t disp = 0);
    void ldl(Reg rd, Reg base, int64_t disp = 0);
    void ldwu(Reg rd, Reg base, int64_t disp = 0);
    void ldbu(Reg rd, Reg base, int64_t disp = 0);
    void stq(Reg value, Reg base, int64_t disp = 0);
    void stl(Reg value, Reg base, int64_t disp = 0);
    void stw(Reg value, Reg base, int64_t disp = 0);
    void stb(Reg value, Reg base, int64_t disp = 0);

    // --- ALU, register and immediate forms ---
    void addq(Reg a, Reg b, Reg d);
    void addq(Reg a, int64_t imm, Reg d);
    void subq(Reg a, Reg b, Reg d);
    void subq(Reg a, int64_t imm, Reg d);
    void addl(Reg a, Reg b, Reg d);
    void addl(Reg a, int64_t imm, Reg d);
    void subl(Reg a, Reg b, Reg d);
    void subl(Reg a, int64_t imm, Reg d);
    void and_(Reg a, Reg b, Reg d);
    void and_(Reg a, int64_t imm, Reg d);
    void bis(Reg a, Reg b, Reg d);
    void bis(Reg a, int64_t imm, Reg d);
    void xor_(Reg a, Reg b, Reg d);
    void xor_(Reg a, int64_t imm, Reg d);
    void bic(Reg a, Reg b, Reg d);
    void bic(Reg a, int64_t imm, Reg d);
    void ornot(Reg a, Reg b, Reg d);
    void sll(Reg a, Reg b, Reg d);
    void sll(Reg a, int64_t imm, Reg d);
    void srl(Reg a, Reg b, Reg d);
    void srl(Reg a, int64_t imm, Reg d);
    void sra(Reg a, int64_t imm, Reg d);
    void sll32(Reg a, Reg b, Reg d);
    void sll32(Reg a, int64_t imm, Reg d);
    void srl32(Reg a, Reg b, Reg d);
    void srl32(Reg a, int64_t imm, Reg d);
    void extbl(Reg a, int64_t byte, Reg d);
    void s4add(Reg a, Reg b, Reg d);
    void s8add(Reg a, Reg b, Reg d);
    void cmpeq(Reg a, Reg b, Reg d);
    void cmpeq(Reg a, int64_t imm, Reg d);
    void cmpult(Reg a, Reg b, Reg d);
    void cmpult(Reg a, int64_t imm, Reg d);
    void cmplt(Reg a, Reg b, Reg d);
    void cmoveq(Reg cond, Reg val, Reg d);
    void cmovne(Reg cond, Reg val, Reg d);
    void mulq(Reg a, Reg b, Reg d);
    void mull(Reg a, Reg b, Reg d);
    void mull(Reg a, int64_t imm, Reg d);

    /** Load a 64-bit constant (counted as one IntAlu instruction). */
    void li(int64_t value, Reg d);
    /** Register move (BIS with zero). */
    void mov(Reg src, Reg d);

    // --- ISA extensions ---
    void rol(Reg a, Reg b, Reg d);
    void ror(Reg a, Reg b, Reg d);
    void rol32(Reg a, Reg b, Reg d);
    void rol32(Reg a, int64_t imm, Reg d);
    void ror32(Reg a, Reg b, Reg d);
    void ror32(Reg a, int64_t imm, Reg d);
    void rolx32(Reg src, int64_t imm, Reg d);
    void rorx32(Reg src, int64_t imm, Reg d);
    void mulmod(Reg a, Reg b, Reg d);
    void sbox(unsigned table_id, unsigned byte_sel, Reg table, Reg index,
              Reg d, bool aliased = false);
    void sboxsync(unsigned table_id = 0);
    void xbox(unsigned byte_sel, Reg src, Reg map, Reg d);
    /** Shi & Lee group permutation (related-work extension). */
    void grp(Reg src, Reg control, Reg d);
    /** Fused substitute-and-XOR (future-work extension): d ^= table
     *  lookup. Three register reads: table, index, d. */
    void sboxx(unsigned table_id, unsigned byte_sel, Reg table,
               Reg index, Reg d, bool aliased = false);

    /** Number of instructions emitted so far. */
    size_t size() const { return insts.size(); }

    /**
     * Resolve labels and produce the program. Throws std::runtime_error
     * on undefined labels.
     */
    Program finalize();

  private:
    void emit(Inst inst);
    void emitBranch(Opcode op, Reg a, const std::string &target);
    void alu(Opcode op, Reg a, Reg b, Reg d);
    void aluImm(Opcode op, Reg a, int64_t imm, Reg d);
    void load(Opcode op, Reg rd, Reg base, int64_t disp);
    void store(Opcode op, Reg value, Reg base, int64_t disp);

    std::vector<Inst> insts;
    std::map<std::string, int32_t> labels;
    std::vector<std::pair<size_t, std::string>> fixups;
};

/**
 * Trivial bump allocator for scratch registers. Registers 0..62 are
 * allocatable; R63 is the zero register.
 */
class RegPool
{
  public:
    /** Reserve the next free register. Throws when exhausted. */
    Reg
    alloc()
    {
        if (next >= reg_zero.n)
            throw std::runtime_error("RegPool: out of registers");
        return Reg{next++};
    }

    /** Registers currently allocated. */
    unsigned allocated() const { return next; }

  private:
    uint8_t next = 0;
};

} // namespace cryptarch::isa

#endif // CRYPTARCH_ISA_PROGRAM_HH
