/**
 * @file
 * Structured machine traps.
 *
 * Every failure mode of the functional interpreter is a Trap: a typed
 * exception carrying the cause, the faulting pc and dynamic sequence
 * number, the effective address (for memory faults) and a snapshot of
 * the architectural register file at the moment of the trap. The
 * what() string renders all of that, so a failed sweep cell or a
 * fault-injection run is diagnosable from the message alone, while
 * legacy call sites that catch std::runtime_error keep working
 * unchanged.
 */

#ifndef CRYPTARCH_ISA_TRAP_HH
#define CRYPTARCH_ISA_TRAP_HH

#include <array>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>

#include "isa/inst.hh"

namespace cryptarch::isa
{

/** Why the machine trapped. */
enum class TrapCause : uint8_t
{
    OobLoad,       ///< load (or SBOX read) beyond memory bounds
    OobStore,      ///< store beyond memory bounds
    Misaligned,    ///< naturally-misaligned memory access
    PcOverrun,     ///< pc ran off the end of the program
    FuelExhausted, ///< dynamic instruction limit hit (livelock guard)
    InvalidSboxTable, ///< SBOX table designator out of range
    NoProgress,    ///< scheduler forward-progress watchdog fired
};

/** Stable short name of a trap cause ("oob-load", "pc-overrun", ...). */
const char *trapCauseName(TrapCause cause);

/**
 * A machine trap. Derives std::runtime_error so existing catch sites
 * keep working; catch Trap explicitly for the structured fields.
 */
class Trap : public std::runtime_error
{
  public:
    /** A trap raised outside run() (bulk memory accessors): no pc. */
    Trap(TrapCause cause, const std::string &detail);

    /**
     * Rebuild @p t with execution context attached: faulting pc,
     * dynamic sequence number and a register-file snapshot. run()
     * calls this so every trap escaping an execution names where it
     * happened.
     */
    static Trap annotated(const Trap &t, uint32_t pc, uint64_t seq,
                          const std::array<uint64_t, num_regs> &regs);

    TrapCause cause() const { return cause_; }
    /** Faulting static instruction index; unset outside run(). */
    std::optional<uint32_t> pc() const { return pc_; }
    /** Faulting dynamic sequence number; unset outside run(). */
    std::optional<uint64_t> seq() const { return seq_; }
    /** Effective address of a faulting memory access. */
    std::optional<uint64_t> addr() const { return addr_; }
    /** Access size in bytes of a faulting memory access. */
    std::optional<unsigned> accessSize() const { return size_; }
    /** SBOX table designator of an InvalidSboxTable trap. */
    std::optional<unsigned> tableId() const { return table_; }

    /** Register file at the trap; present only on annotated traps. */
    const std::optional<std::array<uint64_t, num_regs>> &
    regs() const
    {
        return regs_;
    }

    /** Attach the effective address and size of a memory fault. */
    Trap &withAccess(uint64_t addr, unsigned size);
    /** Attach the offending SBOX table designator. */
    Trap &withTable(unsigned table);

  private:
    Trap(TrapCause cause, const std::string &what, int);

    TrapCause cause_;
    std::optional<uint32_t> pc_;
    std::optional<uint64_t> seq_;
    std::optional<uint64_t> addr_;
    std::optional<unsigned> size_;
    std::optional<unsigned> table_;
    std::optional<std::array<uint64_t, num_regs>> regs_;
};

} // namespace cryptarch::isa

#endif // CRYPTARCH_ISA_TRAP_HH
