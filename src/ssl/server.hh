/**
 * @file
 * Server-at-scale SSL workload model (growing paper Figure 2 from one
 * session into a loaded server).
 *
 * The paper characterizes an SSL *server*: Figure 2's fractions came
 * from a web server under load, not from a lone handshake. This module
 * simulates that server as an open-loop queueing system over a
 * population of sessions:
 *
 *  - sessions arrive by a seeded Poisson process (exponential
 *    inter-arrival gaps via inverse CDF over Xorshift64::nextDouble);
 *  - each session draws a payload length from a log-normal
 *    distribution (web-object-like: median ~8 KB, heavy right tail,
 *    clamped to a configurable range) and a geometric number of
 *    requests over which the payload is split;
 *  - per-session service cycles are composed from measured rates (see
 *    ServerRates): one server-side RSA private operation — skipped by
 *    the resumed fraction of sessions, the session cache the paper's
 *    Figure 2 text credits for amortizing handshakes — one bulk key
 *    setup paid by *every* session (the Figure 6 axis: resumed
 *    sessions still derive fresh keys, so Blowfish's 521-encryption
 *    key schedule makes key agility a first-class cost), a kernel
 *    prologue per request, the steady-state cycles/byte bulk rate,
 *    and per-request / per-byte server overhead with kept-alive
 *    follow-on requests discounted;
 *  - each session carries CBC chaining state across its requests: the
 *    running chain block is advanced through the session's bulk block
 *    cipher at every request boundary (a keystream-style mix for
 *    stream ciphers), so follow-on requests continue the chain instead
 *    of paying a fresh IV + key setup — that is *why* setup is charged
 *    once per session and not once per request. The XOR-fold of every
 *    session's final chain is reported as a population digest, a
 *    cheap end-to-end determinism check on the whole simulation;
 *  - the server is a bank of identical cores behind one FCFS queue
 *    (M/G/c): a session's latency is queue wait plus service.
 *
 * For each offered-load factor the simulation reports the latency
 * percentiles (p50/p95/p99), the offered vs. achieved throughput in
 * sessions per gigacycle, and the realized utilization — past
 * saturation (load > 1) achieved throughput pins at capacity while
 * the percentiles diverge, which is the curve shape the bench plots.
 *
 * Everything is deterministic: one Xorshift64 stream per simulation,
 * sequential event loop, and the grid runner writes results into
 * pre-assigned slots so output is identical for any worker-thread
 * count.
 */

#ifndef CRYPTARCH_SSL_SERVER_HH
#define CRYPTARCH_SSL_SERVER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "crypto/cipher.hh"

namespace cryptarch::ssl
{

/**
 * Measured per-(cipher, machine-model) cost constants feeding the
 * server simulation. The bench fills these from the sweep runner's
 * kernel replays plus measureHandshakeOps(); tests may fill them by
 * hand. All values are cycles (or cycles/byte).
 */
struct ServerRates
{
    crypto::CipherId cipher{};
    std::string model; ///< machine-model label (reporting only)

    double serverHandshakeCycles = 0; ///< RSA private op (CRT), server
    double clientHandshakeCycles = 0; ///< client public op (reference)
    double keySetupCycles = 0;  ///< bulk-cipher key schedule, per session
    double prologueCycles = 0;  ///< kernel prologue, per request
    double cyclesPerByte = 0;   ///< steady-state bulk rate
    double requestOverheadCycles = 500e3; ///< parsing/socket/scheduling
    double perByteOverheadCycles = 4.0;   ///< copy/checksum per byte
};

/** Shape of the simulated session population and server. */
struct ServerSimParams
{
    uint64_t sessions = 1000000; ///< population size per simulation
    unsigned servers = 8;        ///< identical cores behind one queue
    uint64_t seed = 0x5CA1AB1E;  ///< RNG seed (population + arrivals)

    double meanRequestsPerSession = 4.0; ///< geometric, >= 1
    double log2MedianBytes = 13.0;       ///< log-normal median (8 KB)
    double log2SigmaBytes = 1.6;         ///< log-normal spread (base 2)
    size_t minBytes = 256;               ///< clamp floor
    size_t maxBytes = 1u << 20;          ///< clamp ceiling (1 MB)

    /**
     * Session-cache hit rate: a resumed session skips the RSA private
     * operation but still derives fresh session keys, so it pays the
     * bulk key schedule in full. This is what makes key agility a
     * first-class axis — under heavy resumption the Figure 6 setup
     * outlier (Blowfish) dominates the remaining handshake work.
     */
    double resumedFraction = 0.7;
    /**
     * Overhead factor for follow-on requests on the kept-alive
     * connection: request 1 pays requestOverheadCycles in full,
     * requests 2..n pay this fraction of it.
     */
    double keepAliveFactor = 0.25;

    /** Offered load as a fraction of server capacity; >1 saturates. */
    std::vector<double> loadFactors = {0.5, 0.8, 0.95, 1.1};
};

/** One point of the offered-load vs. latency/throughput curve. */
struct ServerLoadPoint
{
    double loadFactor = 0;        ///< offered / capacity
    double offeredPerGcycle = 0;  ///< arrival rate, sessions/Gcycle
    double achievedPerGcycle = 0; ///< completions / makespan
    double utilization = 0;       ///< busy core-cycles / available
    double p50Cycles = 0;         ///< median session latency
    double p95Cycles = 0;
    double p99Cycles = 0;
    double meanCycles = 0;
};

/** Result of one (rates, params) server simulation. */
struct ServerSimResult
{
    uint64_t sessions = 0;
    unsigned servers = 0;

    // Population aggregates (load-independent).
    double meanServiceCycles = 0;
    double meanSessionBytes = 0;
    double meanRequests = 0;
    double resumedShare = 0; ///< realized session-cache hit rate
    /** Figure 2 fractions aggregated over the whole population. */
    double handshakeFraction = 0; ///< public-key (server RSA)
    double setupFraction = 0;     ///< bulk key schedule
    double bulkFraction = 0;      ///< symmetric cipher work
    double otherFraction = 0;     ///< request + per-byte overhead
    /** XOR-fold of all sessions' final CBC chain state. */
    uint64_t chainDigest = 0;

    std::vector<ServerLoadPoint> points; ///< one per load factor
};

/**
 * Run one server simulation. Sequential and deterministic: identical
 * (rates, params) always produce an identical result, including the
 * chain digest.
 */
ServerSimResult runServerSim(const ServerRates &rates,
                             const ServerSimParams &params);

/**
 * Run one simulation per entry of @p rates on a pool of @p threads
 * workers (0 = hardware concurrency, capped at the cell count).
 * Results are written into pre-assigned slots, so the returned vector
 * is ordered exactly like @p rates for any thread count — the same
 * determinism contract as driver::runCells.
 */
std::vector<ServerSimResult>
runServerSims(const std::vector<ServerRates> &rates,
              const ServerSimParams &params, unsigned threads = 0);

} // namespace cryptarch::ssl

#endif // CRYPTARCH_SSL_SERVER_HH
