#include "ssl/rsa.hh"

#include <stdexcept>

namespace cryptarch::ssl
{

using util::BigInt;
using util::Xorshift64;

namespace
{

/** Small primes for fast trial-division filtering. */
constexpr uint32_t small_primes[] = {
    3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59,
    61, 67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127,
    131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191,
    193, 197, 199, 211, 223, 227, 229, 233, 239, 241, 251,
};

bool
divisibleBySmallPrime(const BigInt &n)
{
    for (uint32_t p : small_primes) {
        auto dm = BigInt::divmod(n, BigInt(p));
        if (dm.rem.isZero())
            return !(n == BigInt(p));
    }
    return false;
}

} // namespace

bool
isProbablePrime(const BigInt &n, Xorshift64 &rng, int rounds)
{
    if (n < BigInt(2))
        return false;
    if (n == BigInt(2) || n == BigInt(3))
        return true;
    if (!n.isOdd())
        return false;
    if (divisibleBySmallPrime(n))
        return false;

    // n - 1 = d * 2^r with d odd.
    BigInt n1 = BigInt::sub(n, BigInt(1));
    BigInt d = n1;
    unsigned r = 0;
    while (!d.isOdd()) {
        d = BigInt::shr(d, 1);
        r++;
    }

    for (int round = 0; round < rounds; round++) {
        // Random base in [2, n-2].
        BigInt a = BigInt::mod(BigInt::randomBits(n.bitLength() + 8, rng),
                               BigInt::sub(n, BigInt(3)));
        a = BigInt::add(a, BigInt(2));
        BigInt x = BigInt::modExp(a, d, n);
        if (x == BigInt(1) || x == n1)
            continue;
        bool witness = true;
        for (unsigned i = 1; i < r; i++) {
            x = BigInt::mod(BigInt::mul(x, x), n);
            if (x == n1) {
                witness = false;
                break;
            }
        }
        if (witness)
            return false;
    }
    return true;
}

BigInt
generatePrime(unsigned bits, Xorshift64 &rng)
{
    if (bits < 8)
        throw std::invalid_argument("generatePrime: too few bits");
    while (true) {
        BigInt cand = BigInt::randomBits(bits, rng);
        if (!cand.isOdd())
            cand = BigInt::add(cand, BigInt(1));
        if (isProbablePrime(cand, rng))
            return cand;
    }
}

RsaKey
generateRsaKey(unsigned bits, Xorshift64 &rng)
{
    RsaKey key;
    key.bits = bits;
    key.e = BigInt(65537);
    while (true) {
        key.p = generatePrime(bits / 2, rng);
        key.q = generatePrime(bits - bits / 2, rng);
        if (key.p == key.q)
            continue;
        key.n = BigInt::mul(key.p, key.q);
        BigInt p1 = BigInt::sub(key.p, BigInt(1));
        BigInt q1 = BigInt::sub(key.q, BigInt(1));
        BigInt phi = BigInt::mul(p1, q1);
        key.d = BigInt::modInverse(key.e, phi);
        if (key.d.isZero())
            continue; // gcd(e, phi) != 1: pick new primes
        key.dp = BigInt::mod(key.d, p1);
        key.dq = BigInt::mod(key.d, q1);
        key.qinv = BigInt::modInverse(key.q, key.p);
        if (key.qinv.isZero())
            continue;
        return key;
    }
}

BigInt
rsaPublic(const BigInt &m, const RsaKey &key)
{
    if (!(m < key.n))
        throw std::invalid_argument("rsaPublic: message >= modulus");
    return BigInt::modExp(m, key.e, key.n);
}

BigInt
rsaPrivateNoCrt(const BigInt &c, const RsaKey &key)
{
    if (!(c < key.n))
        throw std::invalid_argument("rsaPrivate: ciphertext >= modulus");
    return BigInt::modExp(c, key.d, key.n);
}

BigInt
rsaPrivate(const BigInt &c, const RsaKey &key)
{
    if (!(c < key.n))
        throw std::invalid_argument("rsaPrivate: ciphertext >= modulus");
    // Garner's CRT recombination: two half-size exponentiations.
    BigInt m1 = BigInt::modExp(BigInt::mod(c, key.p), key.dp, key.p);
    BigInt m2 = BigInt::modExp(BigInt::mod(c, key.q), key.dq, key.q);
    // h = qinv * (m1 - m2) mod p
    BigInt diff;
    if (m1 >= m2) {
        diff = BigInt::sub(m1, m2);
    } else {
        diff = BigInt::sub(BigInt::add(m1, key.p), BigInt::mod(m2, key.p));
        diff = BigInt::mod(diff, key.p);
    }
    BigInt h = BigInt::mod(BigInt::mul(key.qinv, diff), key.p);
    return BigInt::add(m2, BigInt::mul(h, key.q));
}

} // namespace cryptarch::ssl
