#include "ssl/server.hh"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <queue>
#include <thread>

#include "util/xorshift.hh"

namespace cryptarch::ssl
{

namespace
{

using util::Xorshift64;

uint64_t
splitmix64(uint64_t x)
{
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

/** Exponential sample with the given mean (inverse CDF). */
double
expSample(Xorshift64 &rng, double mean)
{
    // 1 - nextDouble() is in (0, 1], so the log never sees zero.
    return -std::log(1.0 - rng.nextDouble()) * mean;
}

/** Standard normal sample (Box-Muller, one value per pair of draws). */
double
normalSample(Xorshift64 &rng)
{
    double u1 = 1.0 - rng.nextDouble(); // (0, 1]
    double u2 = rng.nextDouble();
    return std::sqrt(-2.0 * std::log(u1))
        * std::cos(2.0 * 3.141592653589793 * u2);
}

/** Geometric number of requests with the given mean, in [1, 64]. */
uint32_t
requestCount(Xorshift64 &rng, double mean)
{
    if (mean <= 1.0)
        return 1;
    double p = 1.0 / mean;
    double u = 1.0 - rng.nextDouble(); // (0, 1]
    double k = 1.0 + std::floor(std::log(u) / std::log(1.0 - p));
    return static_cast<uint32_t>(std::clamp(k, 1.0, 64.0));
}

/**
 * Per-session CBC chain carried across requests. Block ciphers advance
 * a real chain block through the session's bulk cipher (one shared key
 * schedule per simulation — the chain models the *state*, key agility
 * is billed through ServerRates::keySetupCycles); RC4 keeps a 64-bit
 * keystream-style mix. Either way the final fold feeds the population
 * digest.
 */
class ChainState
{
  public:
    explicit ChainState(const crypto::BlockCipher *cipher,
                        unsigned block_bytes, uint64_t iv)
        : cipher_(cipher), blockBytes_(block_bytes)
    {
        for (unsigned i = 0; i < blockBytes_ && i < sizeof(block_); i++)
            block_[i] = static_cast<uint8_t>(iv >> (8 * (i & 7)));
        mix_ = iv;
    }

    void
    absorbRequest(uint64_t request_bytes)
    {
        if (cipher_) {
            for (unsigned i = 0; i < 8; i++)
                block_[i] ^= static_cast<uint8_t>(request_bytes
                                                  >> (8 * i));
            cipher_->encryptBlock(block_, block_);
        } else {
            mix_ = splitmix64(mix_ ^ request_bytes);
        }
    }

    uint64_t
    fold() const
    {
        if (!cipher_)
            return mix_;
        uint64_t f = 0;
        for (unsigned i = 0; i < 8; i++)
            f |= static_cast<uint64_t>(block_[i]) << (8 * i);
        return f;
    }

  private:
    const crypto::BlockCipher *cipher_;
    unsigned blockBytes_;
    uint8_t block_[32] = {};
    uint64_t mix_ = 0;
};

} // namespace

ServerSimResult
runServerSim(const ServerRates &rates, const ServerSimParams &params)
{
    const auto &info = crypto::cipherInfo(rates.cipher);
    std::unique_ptr<crypto::BlockCipher> chain_cipher;
    Xorshift64 rng(params.seed);
    if (!info.isStream) {
        chain_cipher = crypto::makeBlockCipher(rates.cipher);
        chain_cipher->setKey(rng.bytes(info.keyBits / 8));
    }

    const uint64_t n = params.sessions;
    ServerSimResult res;
    res.sessions = n;
    res.servers = params.servers;

    // --- population pass: draw every session, compose its service ---
    std::vector<double> service(n);
    double handshake_sum = 0, setup_sum = 0, bulk_sum = 0, other_sum = 0;
    double bytes_sum = 0, requests_sum = 0;
    uint64_t digest = 0, resumed_count = 0;

    for (uint64_t i = 0; i < n; i++) {
        bool resumed = rng.nextDouble() < params.resumedFraction;
        resumed_count += resumed;
        double z = normalSample(rng);
        double log2b = params.log2MedianBytes + params.log2SigmaBytes * z;
        double b = std::exp2(log2b);
        b = std::clamp(b, static_cast<double>(params.minBytes),
                       static_cast<double>(params.maxBytes));
        uint64_t bytes = static_cast<uint64_t>(b);
        uint32_t requests =
            requestCount(rng, params.meanRequestsPerSession);

        // CBC chaining state carried across the session's requests:
        // each boundary advances the running chain block, no fresh IV
        // or key schedule mid-session.
        ChainState chain(chain_cipher.get(), info.blockBytes, rng.next());
        uint64_t per_req = bytes / requests, extra = bytes % requests;
        for (uint32_t r = 0; r < requests; r++)
            chain.absorbRequest(per_req + (r < extra ? 1 : 0));
        digest ^= splitmix64(chain.fold()
                             ^ (i * 0x9E3779B97F4A7C15ull));

        // Resumed sessions skip the RSA private op but still derive
        // fresh session keys (the full key schedule); follow-on
        // requests ride the kept-alive connection at a fraction of
        // the first request's overhead.
        double handshake = resumed ? 0.0 : rates.serverHandshakeCycles;
        double setup = rates.keySetupCycles;
        double bulk = rates.prologueCycles * requests
            + rates.cyclesPerByte * static_cast<double>(bytes);
        double other = rates.requestOverheadCycles
                * (1.0 + params.keepAliveFactor * (requests - 1))
            + rates.perByteOverheadCycles * static_cast<double>(bytes);
        service[i] = handshake + setup + bulk + other;

        handshake_sum += handshake;
        setup_sum += setup;
        bulk_sum += bulk;
        other_sum += other;
        bytes_sum += static_cast<double>(bytes);
        requests_sum += requests;
    }

    double total = handshake_sum + setup_sum + bulk_sum + other_sum;
    res.meanServiceCycles = total / static_cast<double>(n);
    res.meanSessionBytes = bytes_sum / static_cast<double>(n);
    res.meanRequests = requests_sum / static_cast<double>(n);
    res.resumedShare =
        static_cast<double>(resumed_count) / static_cast<double>(n);
    res.handshakeFraction = handshake_sum / total;
    res.setupFraction = setup_sum / total;
    res.bulkFraction = bulk_sum / total;
    res.otherFraction = other_sum / total;
    res.chainDigest = digest;

    // --- load pass: FCFS M/G/c queue per offered-load factor ---
    std::vector<double> latency(n);
    for (size_t li = 0; li < params.loadFactors.size(); li++) {
        double load = params.loadFactors[li];
        // Capacity is servers/meanService sessions per cycle; the
        // offered rate scales it by the load factor.
        double lambda = load * params.servers / res.meanServiceCycles;
        Xorshift64 arng(params.seed
                        + 0x9E3779B97F4A7C15ull * (li + 1));

        std::priority_queue<double, std::vector<double>,
                            std::greater<double>>
            free_at;
        for (unsigned s = 0; s < params.servers; s++)
            free_at.push(0.0);

        double t = 0, makespan = 0;
        for (uint64_t i = 0; i < n; i++) {
            t += expSample(arng, 1.0 / lambda);
            double f = free_at.top();
            free_at.pop();
            double start = std::max(t, f);
            double done = start + service[i];
            free_at.push(done);
            latency[i] = done - t;
            makespan = std::max(makespan, done);
        }

        ServerLoadPoint pt;
        pt.loadFactor = load;
        pt.offeredPerGcycle = lambda * 1e9;
        pt.achievedPerGcycle = static_cast<double>(n) / makespan * 1e9;
        pt.utilization = total / (params.servers * makespan);
        double mean = 0;
        for (double l : latency)
            mean += l;
        pt.meanCycles = mean / static_cast<double>(n);
        auto pct = [&](double q) {
            size_t k = static_cast<size_t>(
                q * static_cast<double>(n - 1));
            std::nth_element(latency.begin(), latency.begin() + k,
                             latency.end());
            return latency[k];
        };
        pt.p50Cycles = pct(0.50);
        pt.p95Cycles = pct(0.95);
        pt.p99Cycles = pct(0.99);
        res.points.push_back(pt);
    }
    return res;
}

std::vector<ServerSimResult>
runServerSims(const std::vector<ServerRates> &rates,
              const ServerSimParams &params, unsigned threads)
{
    std::vector<ServerSimResult> results(rates.size());
    if (rates.empty())
        return results;
    unsigned hw = std::thread::hardware_concurrency();
    if (!threads)
        threads = hw ? hw : 1;
    threads = std::min<unsigned>(
        threads, static_cast<unsigned>(rates.size()));

    // Pre-assigned result slots: worker scheduling cannot reorder or
    // interleave output, so any thread count yields identical results.
    std::atomic<size_t> next{0};
    auto worker = [&] {
        for (size_t i = next.fetch_add(1); i < rates.size();
             i = next.fetch_add(1))
            results[i] = runServerSim(rates[i], params);
    };
    std::vector<std::thread> pool;
    for (unsigned i = 1; i < threads; i++)
        pool.emplace_back(worker);
    worker();
    for (auto &th : pool)
        th.join();
    return results;
}

} // namespace cryptarch::ssl
