/**
 * @file
 * RSA public-key substrate for the SSL session model.
 *
 * The paper's Figure 2 splits web-server run time into public-key,
 * private-key (symmetric) and other work. The dominant public-key cost
 * is modular exponentiation of multiprecision numbers [Montgomery 85],
 * which this module implements for real: Miller-Rabin prime
 * generation, key construction, and CRT-accelerated private-key
 * operations over util::BigInt (whose word-multiply counter feeds the
 * cycle model).
 */

#ifndef CRYPTARCH_SSL_RSA_HH
#define CRYPTARCH_SSL_RSA_HH

#include "util/bigint.hh"
#include "util/xorshift.hh"

namespace cryptarch::ssl
{

/** An RSA key pair with CRT private components. */
struct RsaKey
{
    unsigned bits = 0;
    util::BigInt n;   ///< modulus p*q
    util::BigInt e;   ///< public exponent (65537)
    util::BigInt d;   ///< private exponent
    util::BigInt p, q;
    util::BigInt dp, dq, qinv; ///< CRT components
};

/** Miller-Rabin primality test with @p rounds random bases. */
bool isProbablePrime(const util::BigInt &n, util::Xorshift64 &rng,
                     int rounds = 16);

/** Generate a random probable prime with exactly @p bits bits. */
util::BigInt generatePrime(unsigned bits, util::Xorshift64 &rng);

/** Generate an RSA key pair with a @p bits-bit modulus. */
RsaKey generateRsaKey(unsigned bits, util::Xorshift64 &rng);

/** Public operation: m^e mod n. @p m must be < n. */
util::BigInt rsaPublic(const util::BigInt &m, const RsaKey &key);

/** Private operation via CRT: c^d mod n. @p c must be < n. */
util::BigInt rsaPrivate(const util::BigInt &c, const RsaKey &key);

/** Private operation without CRT (for validation and cost contrast). */
util::BigInt rsaPrivateNoCrt(const util::BigInt &c, const RsaKey &key);

} // namespace cryptarch::ssl

#endif // CRYPTARCH_SSL_RSA_HH
