#include "ssl/session.hh"

#include "kernels/kernel.hh"
#include "sim/pipeline.hh"
#include "util/xorshift.hh"

namespace cryptarch::ssl
{

using util::BigInt;
using util::Xorshift64;

SessionModel::SessionModel(crypto::CipherId bulk_cipher,
                           SessionModelParams p)
    : cipher(bulk_cipher), params(p)
{
    // --- handshake cost: count word multiplies of a real handshake ---
    Xorshift64 rng(0x55E55107);
    RsaKey key = generateRsaKey(params.rsaBits, rng);
    BigInt premaster = BigInt::mod(
        BigInt::randomBits(params.rsaBits - 2, rng), key.n);
    BigInt::resetMulOps();
    BigInt wrapped = rsaPublic(premaster, key); // client side
    (void)rsaPrivate(wrapped, key);             // server side
    handshakeCyc =
        static_cast<double>(BigInt::mulOps()) * params.cyclesPerWordMul;

    // --- bulk cost: simulate the cipher kernel on the 4W machine ---
    const auto &info = crypto::cipherInfo(cipher);
    const size_t probe_bytes = 4096;
    auto cipher_key = rng.bytes(info.keyBits / 8);
    auto iv = rng.bytes(info.isStream ? 0 : info.blockBytes);
    auto build =
        kernels::buildKernel(cipher, kernels::KernelVariant::BaselineRot,
                             cipher_key, iv, probe_bytes);
    isa::Machine m;
    auto pt = rng.bytes(probe_bytes);
    build.install(m, kernels::toWordImage(cipher, pt));
    sim::OooScheduler sched(sim::MachineConfig::fourWide());
    m.run(build.program, &sched, 1ull << 30);
    auto stats = sched.finish();
    bulkCpb = static_cast<double>(stats.cycles) / probe_bytes;

    // --- setup cost: instruction estimate over the measured IPC ---
    uint64_t setup_insts = info.isStream
        ? crypto::makeStreamCipher(cipher)->setupOpEstimate()
        : crypto::makeBlockCipher(cipher)->setupOpEstimate();
    setupCyc = static_cast<double>(setup_insts) / stats.ipc();
}

SessionCost
SessionModel::cost(size_t bytes) const
{
    SessionCost c;
    c.publicKeyCycles = handshakeCyc;
    c.privateKeyCycles = setupCyc + bulkCpb * static_cast<double>(bytes);
    c.otherCycles = params.requestOverheadCycles
        + params.perByteOverheadCycles * static_cast<double>(bytes);
    return c;
}

} // namespace cryptarch::ssl
