#include "ssl/session.hh"

#include <stdexcept>

#include "kernels/kernel.hh"
#include "sim/pipeline.hh"
#include "util/xorshift.hh"

namespace cryptarch::ssl
{

using util::BigInt;
using util::Xorshift64;

HandshakeOps
measureHandshakeOps(unsigned rsaBits, uint64_t seed)
{
    Xorshift64 rng(seed);
    RsaKey key = generateRsaKey(rsaBits, rng);
    BigInt premaster =
        BigInt::mod(BigInt::randomBits(rsaBits - 2, rng), key.n);

    HandshakeOps ops;
    // Separate resets: the client's wrap and the server's unwrap each
    // own their counter window, so neither side's multiplies can leak
    // into the other's bill.
    BigInt::resetMulOps();
    BigInt wrapped = rsaPublic(premaster, key); // client side
    ops.clientMulOps = BigInt::mulOps();
    BigInt::resetMulOps();
    (void)rsaPrivate(wrapped, key); // server side
    ops.serverMulOps = BigInt::mulOps();
    return ops;
}

SessionModel::SessionModel(crypto::CipherId bulk_cipher,
                           SessionModelParams p)
    : cipher(bulk_cipher), params(p)
{
    // --- handshake cost: count word multiplies of a real handshake ---
    HandshakeOps ops = measureHandshakeOps(params.rsaBits);
    clientHandshakeCyc =
        static_cast<double>(ops.clientMulOps) * params.cyclesPerWordMul;
    serverHandshakeCyc =
        static_cast<double>(ops.serverMulOps) * params.cyclesPerWordMul;

    // --- bulk cost: simulate the cipher kernel at two probe lengths;
    // the marginal slope is the steady-state rate and the intercept the
    // one-time prologue, so neither contaminates the other ---
    const auto &info = crypto::cipherInfo(cipher);
    if (params.probeBytesLo >= params.probeBytesHi
        || params.probeBytesLo % info.blockBytes
        || params.probeBytesHi % info.blockBytes)
        throw std::invalid_argument(
            "SessionModel: probe sizes must be increasing multiples of "
            "the cipher block size");

    Xorshift64 rng(0xB0B5CA1E);
    auto cipher_key = rng.bytes(info.keyBits / 8);
    auto iv = rng.bytes(info.isStream ? 0 : info.blockBytes);

    double last_ipc = 1.0;
    auto probe_cycles = [&](size_t probe_bytes) {
        auto build = kernels::buildKernel(
            cipher, kernels::KernelVariant::BaselineRot, cipher_key, iv,
            probe_bytes);
        isa::Machine m;
        auto pt = rng.bytes(probe_bytes);
        build.install(m, kernels::toWordImage(cipher, pt));
        sim::OooScheduler sched(params.model);
        m.run(build.program, &sched, 1ull << 30);
        auto stats = sched.finish();
        last_ipc = stats.ipc();
        return static_cast<double>(stats.cycles);
    };
    double cyc_lo = probe_cycles(params.probeBytesLo);
    double cyc_hi = probe_cycles(params.probeBytesHi);
    bulkCpb = (cyc_hi - cyc_lo)
        / static_cast<double>(params.probeBytesHi - params.probeBytesLo);
    prologueCyc =
        cyc_lo - bulkCpb * static_cast<double>(params.probeBytesLo);

    // --- setup cost: instruction estimate over the measured IPC ---
    uint64_t setup_insts = info.isStream
        ? crypto::makeStreamCipher(cipher)->setupOpEstimate()
        : crypto::makeBlockCipher(cipher)->setupOpEstimate();
    setupCyc = static_cast<double>(setup_insts) / last_ipc;
}

SessionCost
SessionModel::cost(size_t bytes) const
{
    SessionCost c;
    c.publicKeyCycles = serverHandshakeCyc;
    c.privateKeyCycles =
        setupCyc + prologueCyc + bulkCpb * static_cast<double>(bytes);
    c.otherCycles = params.requestOverheadCycles
        + params.perByteOverheadCycles * static_cast<double>(bytes);
    return c;
}

} // namespace cryptarch::ssl
