/**
 * @file
 * SSL session cost model (paper Figure 2).
 *
 * A session is one public-key handshake (RSA private-key operation on
 * the server plus the client's cheap public operation) followed by
 * bulk private-key encryption of the payload, plus fixed per-request
 * server/OS overhead. The paper's Figure 2 plots the fraction of
 * server run time in each component against session length.
 *
 * All three components are computed, not transcribed:
 *  - public-key cycles derive from the actual count of 32x32 word
 *    multiplies executed by the Montgomery modexp (util::BigInt's
 *    instrumentation), scaled by a cycles-per-multiply constant;
 *  - private-key cycles come from the cycle-level simulator running
 *    the cipher kernel on the baseline 4W machine (cycles/byte plus
 *    amortized key-setup cost);
 *  - "other" is a fixed per-request overhead plus a per-byte copy
 *    cost, the calibration documented in EXPERIMENTS.md.
 */

#ifndef CRYPTARCH_SSL_SESSION_HH
#define CRYPTARCH_SSL_SESSION_HH

#include <cstdint>

#include "crypto/cipher.hh"
#include "ssl/rsa.hh"

namespace cryptarch::ssl
{

/** Cycle breakdown of one session. */
struct SessionCost
{
    double publicKeyCycles = 0;
    double privateKeyCycles = 0;
    double otherCycles = 0;

    double
    total() const
    {
        return publicKeyCycles + privateKeyCycles + otherCycles;
    }

    double publicFraction() const { return publicKeyCycles / total(); }
    double privateFraction() const { return privateKeyCycles / total(); }
    double otherFraction() const { return otherCycles / total(); }
};

/** Tunable constants of the cost model. */
struct SessionModelParams
{
    unsigned rsaBits = 1024;
    /** Cycles per 32x32->64 multiply in the bignum inner loop
     *  (multiply + accumulate + carry bookkeeping on the 4W core). */
    double cyclesPerWordMul = 2.5;
    /** Fixed request handling overhead (parsing, socket, scheduling). */
    double requestOverheadCycles = 500e3;
    /** Per-payload-byte server copy/checksum cost. */
    double perByteOverheadCycles = 4.0;
};

/** Figure 2 generator for one bulk cipher. */
class SessionModel
{
  public:
    /**
     * Build the model: generates an RSA key, measures the handshake's
     * word-multiply count, and times @p bulk_cipher's kernel on the
     * baseline machine.
     */
    explicit SessionModel(crypto::CipherId bulk_cipher,
                          SessionModelParams params = {});

    /** Cycle breakdown for a session transferring @p bytes. */
    SessionCost cost(size_t bytes) const;

    /** Measured bulk encryption rate, cycles per byte (4W model). */
    double bulkCyclesPerByte() const { return bulkCpb; }
    /** Amortized key-setup cycles charged once per session. */
    double setupCycles() const { return setupCyc; }
    /** Handshake cost in cycles. */
    double handshakeCycles() const { return handshakeCyc; }

  private:
    crypto::CipherId cipher;
    SessionModelParams params;
    double handshakeCyc = 0;
    double bulkCpb = 0;
    double setupCyc = 0;
};

} // namespace cryptarch::ssl

#endif // CRYPTARCH_SSL_SESSION_HH
