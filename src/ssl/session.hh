/**
 * @file
 * SSL session cost model (paper Figure 2).
 *
 * A session is one public-key handshake (RSA private-key operation on
 * the server; the client's public operation is measured for reference
 * but is *not* server work) followed by bulk private-key encryption of
 * the payload, plus fixed per-request server/OS overhead. The paper's
 * Figure 2 plots the fraction of server run time in each component
 * against session length.
 *
 * All components are computed, not transcribed:
 *  - public-key cycles derive from the actual count of 32x32 word
 *    multiplies executed by the server's CRT Montgomery modexp
 *    (util::BigInt's instrumentation), scaled by a cycles-per-multiply
 *    constant; the client's rsaPublic multiplies are counted with a
 *    separate reset so they never inflate the server column;
 *  - private-key cycles come from the cycle-level simulator running
 *    the cipher kernel at two probe lengths: the marginal slope
 *    between the probes is the steady-state cycles/byte rate, and the
 *    intercept is the one-time kernel prologue (register/key loads,
 *    cold caches and predictor warmup), charged once per kernel
 *    invocation instead of being smeared into the per-byte rate;
 *  - "other" is a fixed per-request overhead plus a per-byte copy
 *    cost, the calibration documented in EXPERIMENTS.md.
 */

#ifndef CRYPTARCH_SSL_SESSION_HH
#define CRYPTARCH_SSL_SESSION_HH

#include <cstdint>

#include "crypto/cipher.hh"
#include "sim/config.hh"
#include "ssl/rsa.hh"

namespace cryptarch::ssl
{

/** Cycle breakdown of one session. */
struct SessionCost
{
    double publicKeyCycles = 0;
    double privateKeyCycles = 0;
    double otherCycles = 0;

    double
    total() const
    {
        return publicKeyCycles + privateKeyCycles + otherCycles;
    }

    double publicFraction() const { return publicKeyCycles / total(); }
    double privateFraction() const { return privateKeyCycles / total(); }
    double otherFraction() const { return otherCycles / total(); }
};

/**
 * Word-multiply counts of one full RSA handshake, measured with
 * separate counter resets so the two sides never blend: the server
 * performs the CRT private operation, the client the cheap public
 * (e = 65537) operation on the premaster secret.
 */
struct HandshakeOps
{
    uint64_t clientMulOps = 0; ///< rsaPublic (client side)
    uint64_t serverMulOps = 0; ///< rsaPrivate via CRT (server side)
};

/**
 * Generate an RSA key of @p rsaBits, run one wrap/unwrap handshake and
 * return each side's 32x32 word-multiply count. Deterministic for a
 * given (@p rsaBits, @p seed).
 */
HandshakeOps measureHandshakeOps(unsigned rsaBits,
                                 uint64_t seed = 0x55E55107);

/** Tunable constants of the cost model. */
struct SessionModelParams
{
    unsigned rsaBits = 1024;
    /** Cycles per 32x32->64 multiply in the bignum inner loop
     *  (multiply + accumulate + carry bookkeeping on the 4W core). */
    double cyclesPerWordMul = 2.5;
    /** Fixed request handling overhead (parsing, socket, scheduling). */
    double requestOverheadCycles = 500e3;
    /** Per-payload-byte server copy/checksum cost. */
    double perByteOverheadCycles = 4.0;
    /** Timing model the bulk kernel runs on. */
    sim::MachineConfig model = sim::MachineConfig::fourWide();
    /**
     * The two bulk-probe lengths. The reported cycles/byte is the
     * marginal slope between them, so it must not depend on the probe
     * sizes themselves (regression-tested); both must be multiples of
     * the cipher block size.
     */
    size_t probeBytesLo = 2048;
    size_t probeBytesHi = 4096;
};

/** Figure 2 generator for one bulk cipher. */
class SessionModel
{
  public:
    /**
     * Build the model: generates an RSA key, measures the handshake's
     * word-multiply count per side, and times @p bulk_cipher's kernel
     * at two probe lengths on the configured machine.
     */
    explicit SessionModel(crypto::CipherId bulk_cipher,
                          SessionModelParams params = {});

    /** Cycle breakdown for a session transferring @p bytes. */
    SessionCost cost(size_t bytes) const;

    /** Steady-state bulk rate, cycles per byte (marginal slope). */
    double bulkCyclesPerByte() const { return bulkCpb; }
    /** One-time kernel prologue cycles, charged per invocation. */
    double prologueCycles() const { return prologueCyc; }
    /** Amortized key-setup cycles charged once per session. */
    double setupCycles() const { return setupCyc; }
    /** Server-side handshake cost (the CRT private op) in cycles. */
    double handshakeCycles() const { return serverHandshakeCyc; }
    /** Client-side public-op cost in cycles (reference only; never
     *  part of the server breakdown). */
    double clientHandshakeCycles() const { return clientHandshakeCyc; }

  private:
    crypto::CipherId cipher;
    SessionModelParams params;
    double serverHandshakeCyc = 0;
    double clientHandshakeCyc = 0;
    double bulkCpb = 0;
    double prologueCyc = 0;
    double setupCyc = 0;
};

} // namespace cryptarch::ssl

#endif // CRYPTARCH_SSL_SESSION_HH
