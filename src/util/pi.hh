/**
 * @file
 * Arbitrary-precision hexadecimal digits of pi.
 *
 * Blowfish initializes its P-array and four S-boxes with the first 8336
 * hexadecimal digits of the fractional part of pi. Rather than embedding
 * 4 KB of opaque constants, cryptarch regenerates them at cipher-setup
 * time with a fixed-point evaluation of Machin's formula
 *
 *     pi = 16*atan(1/5) - 4*atan(1/239)
 *
 * The first generated words are cross-checked against the well-known
 * leading Blowfish constants (0x243F6A88, 0x85A308D3, ...) in the unit
 * tests, and the published Blowfish known-answer vectors transitively
 * validate the whole stream.
 */

#ifndef CRYPTARCH_UTIL_PI_HH
#define CRYPTARCH_UTIL_PI_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cryptarch::util
{

/**
 * Compute the first @p nwords 32-bit words of the fractional part of pi,
 * most significant word first. Word 0 is 0x243F6A88.
 *
 * Cost is O(nwords^2); generating the 1042 words Blowfish needs takes a
 * few milliseconds.
 */
std::vector<uint32_t> piFractionWords(size_t nwords);

} // namespace cryptarch::util

#endif // CRYPTARCH_UTIL_PI_HH
