/**
 * @file
 * FNV-1a 64-bit checksum, used by the packed-trace serialization to
 * detect corrupted or truncated streams before anything decodes them.
 * Not cryptographic — the threat model is bit rot and buggy writers,
 * not an adversary (the ciphers in src/crypto/ handle those).
 */

#ifndef CRYPTARCH_UTIL_CHECKSUM_HH
#define CRYPTARCH_UTIL_CHECKSUM_HH

#include <cstddef>
#include <cstdint>

namespace cryptarch::util
{

constexpr uint64_t fnv1a64_init = 0xCBF29CE484222325ull;

/** Fold @p n bytes into a running FNV-1a state. */
inline uint64_t
fnv1a64(const void *data, size_t n, uint64_t state = fnv1a64_init)
{
    const auto *p = static_cast<const uint8_t *>(data);
    for (size_t i = 0; i < n; i++) {
        state ^= p[i];
        state *= 0x100000001B3ull;
    }
    return state;
}

} // namespace cryptarch::util

#endif // CRYPTARCH_UTIL_CHECKSUM_HH
