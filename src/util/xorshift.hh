/**
 * @file
 * Deterministic xorshift64* pseudo-random generator.
 *
 * Used for reproducible test inputs, synthetic plaintext generation in the
 * benchmark harness, and the substituted MARS S-box table (see DESIGN.md
 * section 2.2). Not cryptographically secure; not used for key material in
 * any security-relevant sense.
 */

#ifndef CRYPTARCH_UTIL_XORSHIFT_HH
#define CRYPTARCH_UTIL_XORSHIFT_HH

#include <cstdint>
#include <vector>

namespace cryptarch::util
{

/**
 * xorshift64* generator with the multiplier from Vigna's original paper.
 * A zero seed is remapped so the state never sticks at zero.
 */
class Xorshift64
{
  public:
    explicit Xorshift64(uint64_t seed = 0x9E3779B97F4A7C15ull)
        : state(seed ? seed : 0x9E3779B97F4A7C15ull)
    {}

    /** Next 64-bit pseudo-random value. */
    uint64_t
    next()
    {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        return state * 0x2545F4914F6CDD1Dull;
    }

    /** Next 32-bit pseudo-random value. */
    uint32_t next32() { return static_cast<uint32_t>(next() >> 32); }

    /** Next byte. */
    uint8_t nextByte() { return static_cast<uint8_t>(next() >> 56); }

    /** Uniform value in [0, bound). @p bound must be nonzero. */
    uint64_t nextBelow(uint64_t bound) { return next() % bound; }

    /** Fill @p n bytes of reproducible pseudo-random data. */
    std::vector<uint8_t>
    bytes(size_t n)
    {
        std::vector<uint8_t> out(n);
        for (auto &b : out)
            b = nextByte();
        return out;
    }

  private:
    uint64_t state;
};

} // namespace cryptarch::util

#endif // CRYPTARCH_UTIL_XORSHIFT_HH
