/**
 * @file
 * Deterministic xorshift64* pseudo-random generator.
 *
 * Used for reproducible test inputs, synthetic plaintext generation in the
 * benchmark harness, and the substituted MARS S-box table (see DESIGN.md
 * section 2.2). Not cryptographically secure; not used for key material in
 * any security-relevant sense.
 */

#ifndef CRYPTARCH_UTIL_XORSHIFT_HH
#define CRYPTARCH_UTIL_XORSHIFT_HH

#include <cstdint>
#include <vector>

namespace cryptarch::util
{

/**
 * xorshift64* generator with the multiplier from Vigna's original paper.
 * A zero seed is remapped so the state never sticks at zero.
 */
class Xorshift64
{
  public:
    explicit Xorshift64(uint64_t seed = 0x9E3779B97F4A7C15ull)
        : state(seed ? seed : 0x9E3779B97F4A7C15ull)
    {}

    /** Next 64-bit pseudo-random value. */
    uint64_t
    next()
    {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        return state * 0x2545F4914F6CDD1Dull;
    }

    /** Next 32-bit pseudo-random value. */
    uint32_t next32() { return static_cast<uint32_t>(next() >> 32); }

    /** Next byte. */
    uint8_t nextByte() { return static_cast<uint8_t>(next() >> 56); }

    /**
     * Uniform value in [0, bound). @p bound must be nonzero.
     *
     * Rejection sampling: a plain `next() % bound` over-weights the
     * low residues whenever 2^64 is not a multiple of @p bound (for
     * bound = 3·2^62 the bottom quarter of the range is drawn twice
     * as often). Draws below `2^64 mod bound` are discarded so every
     * residue keeps exactly floor(2^64 / bound) preimages; the
     * expected number of retries is below one for any bound.
     */
    uint64_t
    nextBelow(uint64_t bound)
    {
        const uint64_t threshold = -bound % bound; // 2^64 mod bound
        uint64_t r = next();
        while (r < threshold)
            r = next();
        return r % bound;
    }

    /**
     * Uniform double in [0, 1): the top 53 bits of one draw scaled by
     * 2^-53, so every value is an exact dyadic rational and 1.0 is
     * never returned. Feeds inverse-CDF sampling (exponential
     * inter-arrival gaps, log-normal session lengths) in the server
     * workload model.
     */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Fill @p n bytes of reproducible pseudo-random data. */
    std::vector<uint8_t>
    bytes(size_t n)
    {
        std::vector<uint8_t> out(n);
        for (auto &b : out)
            b = nextByte();
        return out;
    }

  private:
    uint64_t state;
};

} // namespace cryptarch::util

#endif // CRYPTARCH_UTIL_XORSHIFT_HH
