#include "util/bigint.hh"

#include <cassert>
#include <stdexcept>

namespace cryptarch::util
{

namespace
{
uint64_t g_mul_ops = 0;
} // namespace

uint64_t BigInt::mulOps() { return g_mul_ops; }
void BigInt::resetMulOps() { g_mul_ops = 0; }

BigInt::BigInt(uint64_t v)
{
    if (v) {
        limbs.push_back(static_cast<uint32_t>(v));
        if (v >> 32)
            limbs.push_back(static_cast<uint32_t>(v >> 32));
    }
}

void
BigInt::trim()
{
    while (!limbs.empty() && limbs.back() == 0)
        limbs.pop_back();
}

BigInt
BigInt::fromHex(std::string_view hex)
{
    BigInt r;
    for (char c : hex) {
        int v;
        if (c >= '0' && c <= '9')
            v = c - '0';
        else if (c >= 'a' && c <= 'f')
            v = c - 'a' + 10;
        else if (c >= 'A' && c <= 'F')
            v = c - 'A' + 10;
        else
            throw std::invalid_argument("BigInt::fromHex: bad digit");
        r = shl(r, 4);
        r = add(r, BigInt(static_cast<uint64_t>(v)));
    }
    return r;
}

std::string
BigInt::toHex() const
{
    if (limbs.empty())
        return "0";
    static const char digits[] = "0123456789abcdef";
    std::string out;
    bool leading = true;
    for (size_t i = limbs.size(); i-- > 0;) {
        for (int sh = 28; sh >= 0; sh -= 4) {
            int d = (limbs[i] >> sh) & 0xF;
            if (leading && d == 0 && !(i == 0 && sh == 0))
                continue;
            leading = false;
            out.push_back(digits[d]);
        }
    }
    return out;
}

unsigned
BigInt::bitLength() const
{
    if (limbs.empty())
        return 0;
    uint32_t top = limbs.back();
    unsigned bits = (limbs.size() - 1) * 32;
    while (top) {
        bits++;
        top >>= 1;
    }
    return bits;
}

bool
BigInt::bit(unsigned i) const
{
    size_t limb = i / 32;
    if (limb >= limbs.size())
        return false;
    return (limbs[limb] >> (i % 32)) & 1;
}

uint64_t
BigInt::low64() const
{
    uint64_t v = limbs.empty() ? 0 : limbs[0];
    if (limbs.size() > 1)
        v |= static_cast<uint64_t>(limbs[1]) << 32;
    return v;
}

int
BigInt::compare(const BigInt &a, const BigInt &b)
{
    if (a.limbs.size() != b.limbs.size())
        return a.limbs.size() < b.limbs.size() ? -1 : 1;
    for (size_t i = a.limbs.size(); i-- > 0;) {
        if (a.limbs[i] != b.limbs[i])
            return a.limbs[i] < b.limbs[i] ? -1 : 1;
    }
    return 0;
}

BigInt
BigInt::add(const BigInt &a, const BigInt &b)
{
    BigInt r;
    size_t n = std::max(a.limbs.size(), b.limbs.size());
    r.limbs.resize(n + 1, 0);
    uint64_t carry = 0;
    for (size_t i = 0; i < n; i++) {
        uint64_t s = carry;
        if (i < a.limbs.size())
            s += a.limbs[i];
        if (i < b.limbs.size())
            s += b.limbs[i];
        r.limbs[i] = static_cast<uint32_t>(s);
        carry = s >> 32;
    }
    r.limbs[n] = static_cast<uint32_t>(carry);
    r.trim();
    return r;
}

BigInt
BigInt::sub(const BigInt &a, const BigInt &b)
{
    assert(compare(a, b) >= 0);
    BigInt r;
    r.limbs.resize(a.limbs.size(), 0);
    int64_t borrow = 0;
    for (size_t i = 0; i < a.limbs.size(); i++) {
        int64_t d = static_cast<int64_t>(a.limbs[i]) - borrow
            - (i < b.limbs.size() ? b.limbs[i] : 0);
        borrow = d < 0 ? 1 : 0;
        r.limbs[i] = static_cast<uint32_t>(d);
    }
    assert(borrow == 0);
    r.trim();
    return r;
}

BigInt
BigInt::mul(const BigInt &a, const BigInt &b)
{
    if (a.isZero() || b.isZero())
        return {};
    BigInt r;
    r.limbs.assign(a.limbs.size() + b.limbs.size(), 0);
    for (size_t i = 0; i < a.limbs.size(); i++) {
        uint64_t carry = 0;
        for (size_t j = 0; j < b.limbs.size(); j++) {
            uint64_t cur = static_cast<uint64_t>(a.limbs[i]) * b.limbs[j]
                + r.limbs[i + j] + carry;
            g_mul_ops++;
            r.limbs[i + j] = static_cast<uint32_t>(cur);
            carry = cur >> 32;
        }
        r.limbs[i + b.limbs.size()] = static_cast<uint32_t>(carry);
    }
    r.trim();
    return r;
}

BigInt
BigInt::shl(const BigInt &a, unsigned n)
{
    if (a.isZero() || n == 0)
        return a;
    unsigned limb_shift = n / 32, bit_shift = n % 32;
    BigInt r;
    r.limbs.assign(a.limbs.size() + limb_shift + 1, 0);
    for (size_t i = 0; i < a.limbs.size(); i++) {
        uint64_t v = static_cast<uint64_t>(a.limbs[i]) << bit_shift;
        r.limbs[i + limb_shift] |= static_cast<uint32_t>(v);
        r.limbs[i + limb_shift + 1] |= static_cast<uint32_t>(v >> 32);
    }
    r.trim();
    return r;
}

BigInt
BigInt::shr(const BigInt &a, unsigned n)
{
    unsigned limb_shift = n / 32, bit_shift = n % 32;
    if (limb_shift >= a.limbs.size())
        return {};
    BigInt r;
    r.limbs.assign(a.limbs.size() - limb_shift, 0);
    for (size_t i = 0; i < r.limbs.size(); i++) {
        uint64_t v = a.limbs[i + limb_shift] >> bit_shift;
        if (bit_shift && i + limb_shift + 1 < a.limbs.size()) {
            v |= static_cast<uint64_t>(a.limbs[i + limb_shift + 1])
                << (32 - bit_shift);
        }
        r.limbs[i] = static_cast<uint32_t>(v);
    }
    r.trim();
    return r;
}

BigInt::DivMod
BigInt::divmod(const BigInt &a, const BigInt &b)
{
    if (b.isZero())
        throw std::domain_error("BigInt::divmod: divide by zero");
    DivMod out;
    if (compare(a, b) < 0) {
        out.rem = a;
        return out;
    }
    // Binary long division: walk the dividend bits MSB-first, shifting
    // them into the remainder and subtracting the divisor when possible.
    unsigned bits = a.bitLength();
    out.quot.limbs.assign((bits + 31) / 32, 0);
    BigInt rem;
    for (unsigned i = bits; i-- > 0;) {
        rem = shl(rem, 1);
        if (a.bit(i)) {
            if (rem.limbs.empty())
                rem.limbs.push_back(1);
            else
                rem.limbs[0] |= 1;
        }
        if (compare(rem, b) >= 0) {
            rem = sub(rem, b);
            out.quot.limbs[i / 32] |= 1u << (i % 32);
        }
    }
    out.quot.trim();
    out.rem = rem;
    return out;
}

BigInt
BigInt::mod(const BigInt &a, const BigInt &m)
{
    return divmod(a, m).rem;
}

BigInt
BigInt::modExp(const BigInt &base, const BigInt &exp, const BigInt &m)
{
    if (m.isZero())
        throw std::domain_error("BigInt::modExp: zero modulus");
    if (m.isOdd()) {
        Montgomery ctx(m);
        return ctx.modExp(base, exp);
    }
    // Even modulus: plain square-and-multiply with division reduction.
    BigInt result(1);
    result = mod(result, m);
    BigInt b = mod(base, m);
    for (unsigned i = exp.bitLength(); i-- > 0;) {
        result = mod(mul(result, result), m);
        if (exp.bit(i))
            result = mod(mul(result, b), m);
    }
    return result;
}

BigInt
BigInt::modInverse(const BigInt &a, const BigInt &m)
{
    // Extended Euclid on (a mod m, m) tracking only the coefficient of a.
    // Coefficients can go "negative"; track sign separately.
    BigInt r0 = mod(a, m), r1 = m;
    BigInt s0(1), s1(0);
    bool s0neg = false, s1neg = false;
    while (!r1.isZero()) {
        DivMod qr = divmod(r0, r1);
        // (r0, r1) <- (r1, r0 - q*r1)
        r0 = r1;
        r1 = qr.rem;
        // (s0, s1) <- (s1, s0 - q*s1)
        BigInt qs = mul(qr.quot, s1);
        BigInt new_s;
        bool new_neg;
        if (s0neg == s1neg) {
            // s0 - q*s1 where both share a sign: result sign may flip.
            if (compare(s0, qs) >= 0) {
                new_s = sub(s0, qs);
                new_neg = s0neg;
            } else {
                new_s = sub(qs, s0);
                new_neg = !s0neg;
            }
        } else {
            new_s = add(s0, qs);
            new_neg = s0neg;
        }
        s0 = s1;
        s0neg = s1neg;
        s1 = new_s;
        s1neg = new_neg;
    }
    if (r0 != BigInt(1))
        return {}; // not invertible
    if (s0neg)
        return sub(m, mod(s0, m));
    return mod(s0, m);
}

// ---------------------------------------------------------------------
// Montgomery context
// ---------------------------------------------------------------------

Montgomery::Montgomery(const BigInt &m) : modulus(m), nlimbs(m.limbs.size())
{
    if (!m.isOdd())
        throw std::domain_error("Montgomery: modulus must be odd");
    // nprime = -m^-1 mod 2^32 via Newton iteration on the low limb.
    uint32_t m0 = m.limbs[0];
    uint32_t inv = m0; // 3-bit correct seed for odd m0
    for (int i = 0; i < 5; i++)
        inv *= 2 - m0 * inv;
    nprime = static_cast<uint32_t>(0u - inv);
    // R^2 mod m by 2*32*nlimbs modular doublings of 1.
    BigInt t(1);
    for (size_t i = 0; i < 2 * 32 * nlimbs; i++) {
        t = BigInt::add(t, t);
        if (BigInt::compare(t, modulus) >= 0)
            t = BigInt::sub(t, modulus);
    }
    r2 = t;
}

BigInt
Montgomery::mulRedc(const BigInt &a, const BigInt &b) const
{
    // CIOS (coarsely integrated operand scanning) Montgomery multiply.
    std::vector<uint32_t> t(nlimbs + 2, 0);
    for (size_t i = 0; i < nlimbs; i++) {
        uint32_t ai = i < a.limbs.size() ? a.limbs[i] : 0;
        // t += ai * b
        uint64_t carry = 0;
        for (size_t j = 0; j < nlimbs; j++) {
            uint32_t bj = j < b.limbs.size() ? b.limbs[j] : 0;
            uint64_t cur = static_cast<uint64_t>(ai) * bj + t[j] + carry;
            g_mul_ops++;
            t[j] = static_cast<uint32_t>(cur);
            carry = cur >> 32;
        }
        uint64_t cur = static_cast<uint64_t>(t[nlimbs]) + carry;
        t[nlimbs] = static_cast<uint32_t>(cur);
        t[nlimbs + 1] = static_cast<uint32_t>(cur >> 32);
        // u = t[0] * nprime mod 2^32; t += u * m; t >>= 32
        uint32_t u = t[0] * nprime;
        carry = 0;
        for (size_t j = 0; j < nlimbs; j++) {
            uint64_t c2 = static_cast<uint64_t>(u) * modulus.limbs[j]
                + t[j] + carry;
            g_mul_ops++;
            t[j] = static_cast<uint32_t>(c2);
            carry = c2 >> 32;
        }
        cur = static_cast<uint64_t>(t[nlimbs]) + carry;
        t[nlimbs] = static_cast<uint32_t>(cur);
        t[nlimbs + 1] += static_cast<uint32_t>(cur >> 32);
        // shift right one limb
        for (size_t j = 0; j < nlimbs + 1; j++)
            t[j] = t[j + 1];
        t[nlimbs + 1] = 0;
    }
    BigInt r;
    r.limbs.assign(t.begin(), t.begin() + nlimbs + 1);
    r.trim();
    if (BigInt::compare(r, modulus) >= 0)
        r = BigInt::sub(r, modulus);
    return r;
}

BigInt
Montgomery::toDomain(const BigInt &a) const
{
    return mulRedc(BigInt::mod(a, modulus), r2);
}

BigInt
Montgomery::fromDomain(const BigInt &a) const
{
    return mulRedc(a, BigInt(1));
}

BigInt
Montgomery::modExp(const BigInt &base, const BigInt &exp) const
{
    BigInt result = toDomain(BigInt(1));
    BigInt b = toDomain(base);
    for (unsigned i = exp.bitLength(); i-- > 0;) {
        result = mulRedc(result, result);
        if (exp.bit(i))
            result = mulRedc(result, b);
    }
    return fromDomain(result);
}

} // namespace cryptarch::util
