/**
 * @file
 * Multiprecision unsigned integer arithmetic.
 *
 * This is the substrate for the public-key half of the SSL session model
 * (Figure 2 of the paper): RSA key generation, encryption and decryption
 * built on Montgomery modular exponentiation — the same algorithm family
 * the paper cites as the dominant public-key cost [Montgomery 1985].
 *
 * The implementation deliberately counts 32x32->64 word multiplications
 * (see @ref mulOps) so the SSL model can convert public-key work into an
 * architecture-level cost instead of a hard-coded percentage.
 */

#ifndef CRYPTARCH_UTIL_BIGINT_HH
#define CRYPTARCH_UTIL_BIGINT_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cryptarch::util
{

class BigInt;

/** Result pair of BigInt::divmod. */
struct BigIntDivMod;

/**
 * Arbitrary-precision unsigned integer, little-endian 32-bit limbs with
 * no leading zero limbs (zero is an empty limb vector).
 */
class BigInt
{
  public:
    BigInt() = default;
    /* implicit */ BigInt(uint64_t v);

    /** Parse a hexadecimal string (no 0x prefix, case-insensitive). */
    static BigInt fromHex(std::string_view hex);

    /** Uniform random value with exactly @p bits bits (MSB set). */
    template <typename Rng>
    static BigInt
    randomBits(unsigned bits, Rng &rng)
    {
        BigInt r;
        unsigned limbs = (bits + 31) / 32;
        r.limbs.resize(limbs);
        for (auto &l : r.limbs)
            l = static_cast<uint32_t>(rng.next() >> 32);
        unsigned top = (bits - 1) % 32;
        r.limbs.back() &= (top == 31) ? 0xFFFFFFFFu : ((2u << top) - 1);
        r.limbs.back() |= (1u << top);
        r.trim();
        return r;
    }

    std::string toHex() const;

    bool isZero() const { return limbs.empty(); }
    bool isOdd() const { return !limbs.empty() && (limbs[0] & 1); }
    /** Number of significant bits (0 for zero). */
    unsigned bitLength() const;
    /** Value of bit @p i (0 = LSB). */
    bool bit(unsigned i) const;
    /** Low 64 bits of the value. */
    uint64_t low64() const;

    /** Three-way comparison: -1, 0, +1. */
    static int compare(const BigInt &a, const BigInt &b);

    bool operator==(const BigInt &o) const { return compare(*this, o) == 0; }
    bool operator!=(const BigInt &o) const { return compare(*this, o) != 0; }
    bool operator<(const BigInt &o) const { return compare(*this, o) < 0; }
    bool operator<=(const BigInt &o) const { return compare(*this, o) <= 0; }
    bool operator>(const BigInt &o) const { return compare(*this, o) > 0; }
    bool operator>=(const BigInt &o) const { return compare(*this, o) >= 0; }

    static BigInt add(const BigInt &a, const BigInt &b);
    /** a - b; requires a >= b. */
    static BigInt sub(const BigInt &a, const BigInt &b);
    /** Schoolbook product (counts word multiplies). */
    static BigInt mul(const BigInt &a, const BigInt &b);
    /** Left shift by @p n bits. */
    static BigInt shl(const BigInt &a, unsigned n);
    /** Right shift by @p n bits. */
    static BigInt shr(const BigInt &a, unsigned n);

    /** Quotient and remainder of a / b (binary long division). */
    using DivMod = BigIntDivMod;
    static DivMod divmod(const BigInt &a, const BigInt &b);
    static BigInt mod(const BigInt &a, const BigInt &m);

    /**
     * Modular exponentiation base^exp mod m. Uses Montgomery REDC when
     * the modulus is odd (the normal RSA path), falling back to
     * divide-based reduction otherwise.
     */
    static BigInt modExp(const BigInt &base, const BigInt &exp,
                         const BigInt &m);

    /**
     * Modular inverse of a mod m via extended Euclid; returns zero when
     * gcd(a, m) != 1.
     */
    static BigInt modInverse(const BigInt &a, const BigInt &m);

    /**
     * Global count of 32x32->64 multiplications performed by mul/modExp
     * since process start. The SSL session model samples this around a
     * public-key operation to derive its cycle cost.
     */
    static uint64_t mulOps();
    static void resetMulOps();

  private:
    void trim();

    std::vector<uint32_t> limbs;

    friend class Montgomery;
};

struct BigIntDivMod
{
    BigInt quot, rem;
};

/**
 * Montgomery context for repeated multiplication modulo a fixed odd
 * modulus. R = 2^(32*n) where n is the modulus limb count.
 */
class Montgomery
{
  public:
    /** @p m must be odd and nonzero. */
    explicit Montgomery(const BigInt &m);

    /** Convert into the Montgomery domain: aR mod m. */
    BigInt toDomain(const BigInt &a) const;
    /** Convert out of the Montgomery domain: aR^-1 mod m. */
    BigInt fromDomain(const BigInt &a) const;
    /** Montgomery product: a*b*R^-1 mod m (both inputs in-domain). */
    BigInt mulRedc(const BigInt &a, const BigInt &b) const;
    /** Full modexp with in-domain square-and-multiply. */
    BigInt modExp(const BigInt &base, const BigInt &exp) const;

  private:
    BigInt modulus;
    BigInt r2; ///< R^2 mod m, for domain conversion.
    uint32_t nprime; ///< -m^-1 mod 2^32.
    size_t nlimbs;
};

} // namespace cryptarch::util

#endif // CRYPTARCH_UTIL_BIGINT_HH
