#include "util/env.hh"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <set>

namespace cryptarch::util
{

namespace
{

std::atomic<uint64_t> warning_count{0};

std::mutex warned_mutex;
std::set<std::string> &
warnedVars()
{
    static std::set<std::string> vars;
    return vars;
}

/**
 * Emit the typed warning for @p var once per process: repeated bad
 * reads of the same variable (every sweep cell re-reading policy) must
 * not turn one typo into thousands of stderr lines.
 */
void
warnOnce(const char *var, const char *got, const std::string &accepted)
{
    {
        std::lock_guard<std::mutex> lock(warned_mutex);
        if (!warnedVars().insert(var).second)
            return;
    }
    warning_count.fetch_add(1, std::memory_order_relaxed);
    std::fprintf(stderr,
                 "cryptarch: ignoring unrecognized %s='%s' (accepted: "
                 "%s); using the default\n",
                 var, got, accepted.c_str());
}

} // namespace

std::string
describeEnvChoices(std::initializer_list<EnvChoice> choices)
{
    std::string out;
    for (const auto &c : choices) {
        if (!out.empty())
            out += ", ";
        out += c.name;
    }
    return out;
}

int
envChoice(const char *var, std::initializer_list<EnvChoice> choices,
          int dflt)
{
    const char *env = std::getenv(var);
    if (!env)
        return dflt;
    for (const auto &c : choices)
        if (std::strcmp(env, c.name) == 0)
            return c.value;
    warnOnce(var, env, describeEnvChoices(choices));
    return dflt;
}

bool
envFlag(const char *var, bool dflt)
{
    const char *env = std::getenv(var);
    if (!env)
        return dflt;
    static constexpr const char *truthy[] = {"1", "on", "true", "yes"};
    static constexpr const char *falsy[] = {"0", "off", "false", "no"};
    for (const char *t : truthy)
        if (std::strcmp(env, t) == 0)
            return true;
    for (const char *f : falsy)
        if (std::strcmp(env, f) == 0)
            return false;
    warnOnce(var, env, "1, on, true, yes, 0, off, false, no");
    return dflt;
}

uint64_t
envU64(const char *var, uint64_t dflt)
{
    const char *env = std::getenv(var);
    if (!env)
        return dflt;
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(env, &end, 10);
    if (errno != 0 || end == env || *end != '\0') {
        warnOnce(var, env, "an unsigned decimal integer");
        return dflt;
    }
    return static_cast<uint64_t>(v);
}

double
envDouble(const char *var, double dflt)
{
    const char *env = std::getenv(var);
    if (!env)
        return dflt;
    errno = 0;
    char *end = nullptr;
    double v = std::strtod(env, &end);
    if (errno != 0 || end == env || *end != '\0' || v < 0) {
        warnOnce(var, env, "a non-negative decimal number");
        return dflt;
    }
    return v;
}

uint64_t
envWarningCount()
{
    return warning_count.load(std::memory_order_relaxed);
}

void
resetEnvWarningsForTesting()
{
    std::lock_guard<std::mutex> lock(warned_mutex);
    warnedVars().clear();
}

} // namespace cryptarch::util
