/**
 * @file
 * Centralized CRYPTARCH_* environment parsing.
 *
 * Every knob the simulator reads from the environment goes through
 * these helpers so unrecognized values behave uniformly: the caller's
 * default is used AND one typed warning line naming the variable, the
 * rejected value and the accepted values is emitted to stderr — once
 * per variable per process, so a sweep spawning thousands of cells
 * cannot flood the log. Historically each call site parsed its
 * variable ad hoc and fell back silently (CRYPTARCH_EXEC_BACKEND=typo
 * quietly meant "auto"), which is exactly the class of config mistake
 * this repo's hardening layer exists to surface.
 */

#ifndef CRYPTARCH_UTIL_ENV_HH
#define CRYPTARCH_UTIL_ENV_HH

#include <cstdint>
#include <initializer_list>
#include <string>

namespace cryptarch::util
{

/** One accepted spelling of an enumerated environment value. */
struct EnvChoice
{
    const char *name;
    int value;
};

/**
 * Parse @p var as one of @p choices. Unset returns @p dflt; a value
 * matching a choice name returns that choice's value; anything else
 * warns (once per variable) and returns @p dflt.
 */
int envChoice(const char *var, std::initializer_list<EnvChoice> choices,
              int dflt);

/**
 * Parse @p var as a boolean flag: "1"/"on"/"true"/"yes" are true,
 * "0"/"off"/"false"/"no" are false, unset is @p dflt, anything else
 * warns (once) and is @p dflt.
 */
bool envFlag(const char *var, bool dflt);

/**
 * Parse @p var as an unsigned decimal integer. Unset returns @p dflt;
 * trailing garbage or overflow warns (once) and returns @p dflt.
 */
uint64_t envU64(const char *var, uint64_t dflt);

/**
 * Parse @p var as a non-negative decimal number (seconds-style knobs).
 * Unset returns @p dflt; malformed or negative values warn (once) and
 * return @p dflt.
 */
double envDouble(const char *var, double dflt);

/**
 * The "accepted: ..." clause the warning prints for @p choices —
 * exposed so tests can assert the message contract without scraping
 * stderr.
 */
std::string describeEnvChoices(std::initializer_list<EnvChoice> choices);

/**
 * Process-wide count of unrecognized-value warnings emitted. Tests
 * assert the once-per-variable policy through this counter.
 */
uint64_t envWarningCount();

/** Forget which variables already warned (test isolation only). */
void resetEnvWarningsForTesting();

} // namespace cryptarch::util

#endif // CRYPTARCH_UTIL_ENV_HH
