/**
 * @file
 * Small bit-manipulation helpers shared across cryptarch.
 *
 * Every cipher in the suite is specified in terms of 32-bit rotates and
 * byte extraction; these helpers keep that arithmetic in one place and
 * keep it well-defined for all shift amounts (including 0 and the word
 * size, which are UB with naive shift expressions).
 */

#ifndef CRYPTARCH_UTIL_BITOPS_HH
#define CRYPTARCH_UTIL_BITOPS_HH

#include <cstdint>

namespace cryptarch::util
{

/** Rotate a 32-bit word left by @p n (any n; only low 5 bits matter). */
constexpr uint32_t
rotl32(uint32_t x, unsigned n)
{
    n &= 31;
    return n == 0 ? x : ((x << n) | (x >> (32 - n)));
}

/** Rotate a 32-bit word right by @p n (any n; only low 5 bits matter). */
constexpr uint32_t
rotr32(uint32_t x, unsigned n)
{
    n &= 31;
    return n == 0 ? x : ((x >> n) | (x << (32 - n)));
}

/** Rotate a 64-bit word left by @p n (any n; only low 6 bits matter). */
constexpr uint64_t
rotl64(uint64_t x, unsigned n)
{
    n &= 63;
    return n == 0 ? x : ((x << n) | (x >> (64 - n)));
}

/** Rotate a 64-bit word right by @p n (any n; only low 6 bits matter). */
constexpr uint64_t
rotr64(uint64_t x, unsigned n)
{
    n &= 63;
    return n == 0 ? x : ((x >> n) | (x << (64 - n)));
}

/** Extract byte @p i (0 = least significant) of a 32-bit word. */
constexpr uint8_t
byteOf(uint32_t x, unsigned i)
{
    return static_cast<uint8_t>(x >> (8 * (i & 3)));
}

/** Load a 32-bit little-endian word from a byte buffer. */
constexpr uint32_t
load32le(const uint8_t *p)
{
    return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8)
        | (static_cast<uint32_t>(p[2]) << 16)
        | (static_cast<uint32_t>(p[3]) << 24);
}

/** Store a 32-bit word little-endian into a byte buffer. */
constexpr void
store32le(uint8_t *p, uint32_t x)
{
    p[0] = static_cast<uint8_t>(x);
    p[1] = static_cast<uint8_t>(x >> 8);
    p[2] = static_cast<uint8_t>(x >> 16);
    p[3] = static_cast<uint8_t>(x >> 24);
}

/** Load a 32-bit big-endian word from a byte buffer. */
constexpr uint32_t
load32be(const uint8_t *p)
{
    return (static_cast<uint32_t>(p[0]) << 24)
        | (static_cast<uint32_t>(p[1]) << 16)
        | (static_cast<uint32_t>(p[2]) << 8) | static_cast<uint32_t>(p[3]);
}

/** Store a 32-bit word big-endian into a byte buffer. */
constexpr void
store32be(uint8_t *p, uint32_t x)
{
    p[0] = static_cast<uint8_t>(x >> 24);
    p[1] = static_cast<uint8_t>(x >> 16);
    p[2] = static_cast<uint8_t>(x >> 8);
    p[3] = static_cast<uint8_t>(x);
}

/** Load a 64-bit big-endian word from a byte buffer. */
constexpr uint64_t
load64be(const uint8_t *p)
{
    return (static_cast<uint64_t>(load32be(p)) << 32) | load32be(p + 4);
}

/** Store a 64-bit word big-endian into a byte buffer. */
constexpr void
store64be(uint8_t *p, uint64_t x)
{
    store32be(p, static_cast<uint32_t>(x >> 32));
    store32be(p + 4, static_cast<uint32_t>(x));
}

} // namespace cryptarch::util

#endif // CRYPTARCH_UTIL_BITOPS_HH
