#include "util/hex.hh"

#include <cctype>
#include <stdexcept>

namespace cryptarch::util
{

namespace
{

constexpr char digits[] = "0123456789abcdef";

int
hexVal(char c)
{
    if (c >= '0' && c <= '9')
        return c - '0';
    if (c >= 'a' && c <= 'f')
        return c - 'a' + 10;
    if (c >= 'A' && c <= 'F')
        return c - 'A' + 10;
    return -1;
}

} // namespace

std::string
toHex(const uint8_t *data, size_t n)
{
    std::string out;
    out.reserve(n * 2);
    for (size_t i = 0; i < n; i++) {
        out.push_back(digits[data[i] >> 4]);
        out.push_back(digits[data[i] & 0xF]);
    }
    return out;
}

std::string
toHex(const std::vector<uint8_t> &data)
{
    return toHex(data.data(), data.size());
}

std::vector<uint8_t>
fromHex(std::string_view hex)
{
    std::vector<uint8_t> out;
    out.reserve(hex.size() / 2);
    int hi = -1;
    for (char c : hex) {
        if (std::isspace(static_cast<unsigned char>(c)))
            continue;
        int v = hexVal(c);
        if (v < 0)
            throw std::invalid_argument("fromHex: non-hex character");
        if (hi < 0) {
            hi = v;
        } else {
            out.push_back(static_cast<uint8_t>((hi << 4) | v));
            hi = -1;
        }
    }
    if (hi >= 0)
        throw std::invalid_argument("fromHex: odd number of hex digits");
    return out;
}

} // namespace cryptarch::util
