#include "util/pi.hh"

#include <cassert>

namespace cryptarch::util
{

namespace
{

/**
 * Unsigned fixed-point number: one integer word followed by @c frac
 * fraction words, most significant first. All arithmetic is exact; the
 * caller allocates guard words to absorb truncation error.
 */
class FixedPoint
{
  public:
    explicit FixedPoint(size_t frac_words) : words(frac_words + 1, 0) {}

    /** Set to the reciprocal of a small integer: this = 1 / d. */
    void
    setReciprocal(uint32_t d)
    {
        for (auto &w : words)
            w = 0;
        words[0] = 1;
        divideBy(d);
    }

    /** In-place divide by a small integer (long division, MSW first). */
    void
    divideBy(uint32_t d)
    {
        uint64_t rem = 0;
        // Skip leading zero words: quotient words there stay zero and the
        // remainder stays zero, so only start at the first nonzero word.
        size_t start = firstNonzero();
        for (size_t i = start; i < words.size(); i++) {
            uint64_t cur = (rem << 32) | words[i];
            words[i] = static_cast<uint32_t>(cur / d);
            rem = cur % d;
        }
    }

    /** this += other (same width). */
    void
    add(const FixedPoint &other)
    {
        assert(words.size() == other.words.size());
        uint64_t carry = 0;
        for (size_t i = words.size(); i-- > 0;) {
            uint64_t sum = static_cast<uint64_t>(words[i])
                + other.words[i] + carry;
            words[i] = static_cast<uint32_t>(sum);
            carry = sum >> 32;
        }
    }

    /** this -= other (same width); caller guarantees this >= other. */
    void
    sub(const FixedPoint &other)
    {
        assert(words.size() == other.words.size());
        int64_t borrow = 0;
        for (size_t i = words.size(); i-- > 0;) {
            int64_t diff = static_cast<int64_t>(words[i])
                - static_cast<int64_t>(other.words[i]) - borrow;
            borrow = diff < 0 ? 1 : 0;
            words[i] = static_cast<uint32_t>(diff);
        }
        assert(borrow == 0);
    }

    /** this *= m for a small integer m (used for the 16x / 4x scaling). */
    void
    multiplyBy(uint32_t m)
    {
        uint64_t carry = 0;
        for (size_t i = words.size(); i-- > 0;) {
            uint64_t prod = static_cast<uint64_t>(words[i]) * m + carry;
            words[i] = static_cast<uint32_t>(prod);
            carry = prod >> 32;
        }
        assert(carry == 0);
    }

    bool
    isZero() const
    {
        return firstNonzero() == words.size();
    }

    /** Fraction words (after the integer word). */
    std::vector<uint32_t>
    fraction(size_t n) const
    {
        assert(n + 1 <= words.size());
        return {words.begin() + 1, words.begin() + 1 + n};
    }

  private:
    size_t
    firstNonzero() const
    {
        size_t i = 0;
        while (i < words.size() && words[i] == 0)
            i++;
        return i;
    }

    std::vector<uint32_t> words;
};

/**
 * Fixed-point arctangent of a reciprocal: atan(1/q) via the Gregory
 * series 1/q - 1/(3 q^3) + 1/(5 q^5) - ...
 */
FixedPoint
atanReciprocal(uint32_t q, size_t frac_words)
{
    FixedPoint term(frac_words);
    FixedPoint sum(frac_words);
    FixedPoint scratch(frac_words);

    term.setReciprocal(q);
    sum = term;
    const uint32_t q2 = q * q;
    for (uint32_t n = 3; !term.isZero(); n += 2) {
        term.divideBy(q2);
        scratch = term;
        scratch.divideBy(n);
        if ((n & 2) != 0) // n = 3, 7, 11, ... : subtract
            sum.sub(scratch);
        else // n = 5, 9, 13, ... : add
            sum.add(scratch);
    }
    return sum;
}

} // namespace

std::vector<uint32_t>
piFractionWords(size_t nwords)
{
    // Guard words absorb truncation error from the series evaluation.
    const size_t frac = nwords + 3;

    FixedPoint a5 = atanReciprocal(5, frac);
    a5.multiplyBy(16);
    FixedPoint a239 = atanReciprocal(239, frac);
    a239.multiplyBy(4);
    a5.sub(a239);

    return a5.fraction(nwords);
}

} // namespace cryptarch::util
