/**
 * @file
 * Hex encoding/decoding helpers for test vectors and tool output.
 */

#ifndef CRYPTARCH_UTIL_HEX_HH
#define CRYPTARCH_UTIL_HEX_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cryptarch::util
{

/** Encode @p data as lowercase hex. */
std::string toHex(const std::vector<uint8_t> &data);

/** Encode @p n bytes at @p data as lowercase hex. */
std::string toHex(const uint8_t *data, size_t n);

/**
 * Decode a hex string (case-insensitive, whitespace ignored) into bytes.
 * Throws std::invalid_argument on non-hex characters or odd digit count.
 */
std::vector<uint8_t> fromHex(std::string_view hex);

} // namespace cryptarch::util

#endif // CRYPTARCH_UTIL_HEX_HH
