#include "driver/packed_trace.hh"

namespace cryptarch::driver
{

uint16_t
PackedTrace::sizeCode(uint8_t size)
{
    switch (size) {
    case 0:
        return 0;
    case 1:
        return 1;
    case 2:
        return 2;
    case 4:
        return 3;
    case 8:
        return 4;
    default:
        assert(!"unencodable access size");
        return 0;
    }
}

void
PackedTrace::append(const isa::DynInst &inst, bool keepResult)
{
    assert(inst.seq == size() && "seq must equal append index");
    assert(inst.numSrcs <= 3);

    uint16_t flags = inst.numSrcs & num_srcs_mask;
    if (inst.isLoad)
        flags |= f_load;
    if (inst.isStore)
        flags |= f_store;
    if (inst.branch)
        flags |= f_branch;
    if (inst.taken)
        flags |= f_taken;
    if (inst.aliased)
        flags |= f_aliased;
    flags |= sizeCode(inst.size) << size_code_shift;

    if (inst.addr != 0) {
        flags |= f_has_addr;
        if (inst.addr >> 32) {
            flags |= f_wide_addr;
            addrWide_.push_back(inst.addr);
        } else {
            addr32_.push_back(static_cast<uint32_t>(inst.addr));
        }
    }
    if (inst.nextPc != inst.pc + 1) {
        flags |= f_next_pc_exc;
        nextPcExc_.push_back(inst.nextPc);
    }
    if (keepResult && inst.result != 0) {
        flags |= f_has_result;
        result_.push_back(inst.result);
    }

    pc_.push_back(inst.pc);
    op_.push_back(static_cast<uint8_t>(inst.op));
    cls_.push_back(static_cast<uint8_t>(inst.cls));
    dest_.push_back(inst.dest);
    addrSrc_.push_back(inst.addrSrc);
    tableId_.push_back(inst.tableId);
    srcs_.push_back(inst.srcs[0]);
    srcs_.push_back(inst.srcs[1]);
    srcs_.push_back(inst.srcs[2]);
    flags_.push_back(flags);
}

void
PackedTrace::reserve(size_t n)
{
    pc_.reserve(n);
    op_.reserve(n);
    cls_.reserve(n);
    dest_.reserve(n);
    addrSrc_.reserve(n);
    tableId_.reserve(n);
    srcs_.reserve(3 * n);
    flags_.reserve(n);
}

size_t
PackedTrace::packedBytes() const
{
    return pc_.size() * sizeof(uint32_t) + op_.size() + cls_.size()
        + dest_.size() + addrSrc_.size() + tableId_.size() + srcs_.size()
        + flags_.size() * sizeof(uint16_t)
        + addr32_.size() * sizeof(uint32_t)
        + addrWide_.size() * sizeof(uint64_t)
        + nextPcExc_.size() * sizeof(uint32_t)
        + result_.size() * sizeof(uint64_t);
}

void
PackedTrace::clear()
{
    pc_.clear();
    op_.clear();
    cls_.clear();
    dest_.clear();
    addrSrc_.clear();
    tableId_.clear();
    srcs_.clear();
    flags_.clear();
    addr32_.clear();
    addrWide_.clear();
    nextPcExc_.clear();
    result_.clear();
}

} // namespace cryptarch::driver
