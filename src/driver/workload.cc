#include "driver/workload.hh"

#include "util/xorshift.hh"

namespace cryptarch::driver
{

Workload
makeWorkload(crypto::CipherId id, size_t bytes, uint64_t seed)
{
    const auto &info = crypto::cipherInfo(id);
    util::Xorshift64 rng(seed + static_cast<uint64_t>(id));
    Workload w;
    w.key = rng.bytes(info.keyBits / 8);
    w.iv = rng.bytes(info.isStream ? 0 : info.blockBytes);
    w.plaintext = rng.bytes(bytes);
    return w;
}

std::vector<crypto::CipherId>
allCiphers()
{
    std::vector<crypto::CipherId> ids;
    for (const auto &info : crypto::cipherCatalog())
        ids.push_back(info.id);
    return ids;
}

} // namespace cryptarch::driver
