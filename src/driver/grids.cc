#include "driver/grids.hh"

namespace cryptarch::driver
{

using kernels::KernelVariant;
using sim::MachineConfig;

SweepSpec
fig04Spec()
{
    SweepSpec spec;
    spec.ciphers = allCiphers();
    spec.variants = {KernelVariant::BaselineRot};
    spec.models = {MachineConfig::alpha21264(), MachineConfig::fourWide(),
                   MachineConfig::dataflow()};
    return spec;
}

std::vector<SweepCell>
fig10Cells()
{
    const MachineConfig w4 = MachineConfig::fourWide();
    std::vector<SweepCell> cells;
    for (auto id : allCiphers()) {
        cells.push_back({id, KernelVariant::BaselineRot, w4, session_bytes});
        cells.push_back(
            {id, KernelVariant::BaselineNoRot, w4, session_bytes});
        cells.push_back({id, KernelVariant::Optimized, w4, session_bytes});
        cells.push_back({id, KernelVariant::Optimized,
                         MachineConfig::fourWidePlus(), session_bytes});
        cells.push_back({id, KernelVariant::Optimized,
                         MachineConfig::eightWidePlus(), session_bytes});
        cells.push_back({id, KernelVariant::Optimized,
                         MachineConfig::dataflow(), session_bytes});
    }
    return cells;
}

SweepSpec
tab02Spec()
{
    SweepSpec spec;
    spec.ciphers = allCiphers();
    spec.variants = {KernelVariant::Optimized};
    spec.models = {MachineConfig::fourWide(), MachineConfig::fourWidePlus(),
                   MachineConfig::eightWidePlus(),
                   MachineConfig::dataflow()};
    return spec;
}

} // namespace cryptarch::driver
