#include "driver/sweep.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <tuple>

#include "driver/cell_exec.hh"
#include "driver/procpool.hh"
#include "isa/trap.hh"
#include "sim/validate.hh"
#include "util/env.hh"
#include "verify/oracle.hh"

namespace cryptarch::driver
{

const char *
cellOutcomeName(CellOutcome outcome)
{
    switch (outcome) {
      case CellOutcome::Ok: return "ok";
      case CellOutcome::Trapped: return "trapped";
      case CellOutcome::VerifyFailed: return "verify_failed";
      case CellOutcome::Error: return "error";
      case CellOutcome::Crashed: return "crashed";
      case CellOutcome::TimedOut: return "timed_out";
      case CellOutcome::Rejected: return "rejected";
      case CellOutcome::Stalled: return "stalled";
    }
    return "?";
}

SweepIsolation
parseSweepIsolation(std::string_view name, SweepIsolation dflt)
{
    if (name == "thread")
        return SweepIsolation::Thread;
    if (name == "process")
        return SweepIsolation::Process;
    // Anything unrecognized: the caller's safe default, same policy as
    // the CRYPTARCH_TRACE_COMPRESS / CRYPTARCH_EXEC_BACKEND parsers.
    return dflt;
}

SweepOptions
sweepOptionsFromEnv()
{
    // Centralized parsing (util/env.hh): an unrecognized value keeps
    // the safe default AND emits one typed warning naming the accepted
    // values, instead of the historical silent fallback.
    SweepOptions opts;
    opts.isolation = static_cast<SweepIsolation>(util::envChoice(
        "CRYPTARCH_SWEEP_ISOLATE",
        {{"thread", static_cast<int>(SweepIsolation::Thread)},
         {"process", static_cast<int>(SweepIsolation::Process)}},
        static_cast<int>(SweepIsolation::Thread)));
    if (const char *env = std::getenv("CRYPTARCH_SWEEP_JOURNAL"))
        opts.journalPath = env;
    opts.cellDeadlineSeconds =
        util::envDouble("CRYPTARCH_SWEEP_DEADLINE", 0);
    opts.respawnBudget = static_cast<unsigned>(
        util::envU64("CRYPTARCH_SWEEP_RESPAWNS", opts.respawnBudget));
    return opts;
}

namespace detail
{

void
classifyFailure(SweepResult &r, std::exception_ptr ep)
{
    try {
        std::rethrow_exception(ep);
    } catch (const sim::ConfigRejected &e) {
        r.outcome = CellOutcome::Rejected;
        r.message = e.what();
    } catch (const isa::Trap &t) {
        // A forward-progress watchdog trip is a property of the
        // machine model, not the workload: its own outcome keeps
        // `trapped` meaning "the functional machine faulted".
        r.outcome = t.cause() == isa::TrapCause::NoProgress
            ? CellOutcome::Stalled
            : CellOutcome::Trapped;
        r.message = t.what();
    } catch (const verify::VerifyError &e) {
        r.outcome = CellOutcome::VerifyFailed;
        r.message = e.what();
    } catch (const std::exception &e) {
        r.outcome = CellOutcome::Error;
        r.message = e.what();
    } catch (...) {
        r.outcome = CellOutcome::Error;
        r.message = "unknown error";
    }
}

bool
isDeterministicFailure(std::exception_ptr ep)
{
    try {
        std::rethrow_exception(ep);
    } catch (const sim::ConfigRejected &) {
        return true;
    } catch (const isa::Trap &) {
        return true;
    } catch (const verify::VerifyError &) {
        return true;
    } catch (...) {
        return false;
    }
}

SweepResult
makeResultShell(const SweepCell &cell)
{
    SweepResult r;
    r.cipher = cell.cipher;
    r.variant = cell.variant;
    r.model = cell.model.name;
    r.bytes = cell.bytes;
    return r;
}

void
executeCell(const SweepCell &cell, TraceGroup &group, SweepResult &r)
{
    // The whole body is wrapped: an exception escaping any step —
    // std::bad_alloc while building the result included — marks the
    // cell Error instead of std::terminate-ing the sweep.
    try {
        std::call_once(group.once, [&]() {
            try {
                group.trace = recordKernelTrace(cell.cipher, cell.variant,
                                                cell.bytes);
            } catch (...) {
                group.recordError = std::current_exception();
                if (isDeterministicFailure(group.recordError))
                    return;
                // One retry for anything unrecognized (transient
                // allocation failure and the like).
                try {
                    group.trace = recordKernelTrace(cell.cipher,
                                                    cell.variant,
                                                    cell.bytes);
                    group.recordError = nullptr;
                } catch (...) {
                    group.recordError = std::current_exception();
                }
            }
        });
        if (group.recordError) {
            classifyFailure(r, group.recordError);
            return;
        }
        try {
            r.stats = group.trace.replay(cell.model);
        } catch (...) {
            std::exception_ptr ep = std::current_exception();
            if (!isDeterministicFailure(ep)) {
                // The same transient-failure allowance recording has:
                // one retry before the cell is marked Error.
                try {
                    r.stats = group.trace.replay(cell.model);
                    return;
                } catch (...) {
                    ep = std::current_exception();
                }
            }
            classifyFailure(r, ep);
        }
    } catch (...) {
        classifyFailure(r, std::current_exception());
    }
}

} // namespace detail

namespace
{

using detail::GroupKey;
using detail::keyOf;
using detail::TraceGroup;

/**
 * Open the journal for @p cells, falling back to a fresh run when the
 * existing file is rejected. Cells whose journaled payloads load are
 * marked done with their recorded results; a payload the codec
 * rejects (possible only across a codec change — record checksums
 * already passed) degrades to rerunning that cell.
 */
void
resumeFromJournal(SweepJournal &journal, const std::string &path,
                  const std::vector<SweepCell> &cells,
                  std::vector<SweepResult> &results,
                  std::vector<char> &done)
{
    const uint64_t fp = gridFingerprint(cells);
    try {
        journal.open(path, fp, cells.size());
    } catch (const JournalError &e) {
        std::fprintf(stderr,
                     "sweep: journal %s rejected (%s); starting fresh\n",
                     path.c_str(), e.what());
        journal.openFresh(path, fp, cells.size());
        return;
    }
    for (const auto &[index, payload] : journal.loadedRecords()) {
        try {
            deserializeResultPayload(payload, results[index]);
            done[index] = 1;
        } catch (const JournalError &e) {
            std::fprintf(stderr,
                         "sweep: journal record for cell %u unusable "
                         "(%s); re-running it\n",
                         index, e.what());
        }
    }
}

void
runCellsThread(const std::vector<SweepCell> &cells,
               const std::vector<uint32_t> &todo,
               const SweepOptions &options,
               std::vector<SweepResult> &results, SweepJournal *journal)
{
    // Group table is fully built before workers start; workers only
    // race on each group's once_flag.
    std::map<GroupKey, std::unique_ptr<TraceGroup>> groups;
    for (uint32_t i : todo) {
        auto &slot = groups[keyOf(cells[i])];
        if (!slot)
            slot = std::make_unique<TraceGroup>();
    }

    std::atomic<size_t> next{0};
    std::mutex journalMutex;

    auto worker = [&]() {
        for (;;) {
            size_t k = next.fetch_add(1, std::memory_order_relaxed);
            if (k >= todo.size())
                return;
            const uint32_t i = todo[k];
            const SweepCell &cell = cells[i];
            SweepResult r = detail::makeResultShell(cell);
            detail::executeCell(cell, *groups.at(keyOf(cell)), r);
            if (journal) {
                auto payload = serializeResultPayload(r);
                std::lock_guard<std::mutex> lock(journalMutex);
                journal->append(i, payload);
            }
            results[i] = std::move(r);
        }
    };

    unsigned n =
        options.threads ? options.threads : std::thread::hardware_concurrency();
    n = std::max(1u,
                 std::min<unsigned>(n, static_cast<unsigned>(todo.size())));

    std::vector<std::thread> pool;
    pool.reserve(n - 1);
    for (unsigned t = 0; t + 1 < n; t++)
        pool.emplace_back(worker);
    worker();
    for (auto &t : pool)
        t.join();
}

} // namespace

std::vector<SweepResult>
runCells(const std::vector<SweepCell> &cells, const SweepOptions &options)
{
    std::vector<SweepResult> results;
    results.reserve(cells.size());
    for (const auto &cell : cells)
        results.push_back(detail::makeResultShell(cell));
    if (cells.empty())
        return results;

    std::vector<char> done(cells.size(), 0);
    SweepJournal journal;
    if (!options.journalPath.empty())
        resumeFromJournal(journal, options.journalPath, cells, results,
                          done);

    std::vector<uint32_t> todo;
    todo.reserve(cells.size());
    for (size_t i = 0; i < cells.size(); i++)
        if (!done[i])
            todo.push_back(static_cast<uint32_t>(i));
    if (todo.empty())
        return results;

    SweepJournal *jp = journal.isOpen() ? &journal : nullptr;
    if (options.isolation == SweepIsolation::Process)
        runCellsProcess(cells, todo, options, results, jp);
    else
        runCellsThread(cells, todo, options, results, jp);
    return results;
}

std::vector<SweepResult>
runCells(const std::vector<SweepCell> &cells, unsigned threads)
{
    SweepOptions options = sweepOptionsFromEnv();
    if (threads)
        options.threads = threads;
    return runCells(cells, options);
}

std::vector<SweepResult>
runSweep(const SweepSpec &spec, const SweepOptions &options)
{
    std::vector<SweepCell> cells;
    cells.reserve(spec.ciphers.size() * spec.variants.size()
                  * spec.models.size());
    for (auto cipher : spec.ciphers)
        for (auto variant : spec.variants)
            for (const auto &model : spec.models)
                cells.push_back({cipher, variant, model, spec.bytes});
    return runCells(cells, options);
}

std::vector<SweepResult>
runSweep(const SweepSpec &spec)
{
    SweepOptions options = sweepOptionsFromEnv();
    if (spec.threads)
        options.threads = spec.threads;
    return runSweep(spec, options);
}

const SweepResult &
findResult(const std::vector<SweepResult> &results, crypto::CipherId cipher,
           kernels::KernelVariant variant, std::string_view model)
{
    for (const auto &r : results)
        if (r.cipher == cipher && r.variant == variant && r.model == model)
            return r;
    throw std::out_of_range("sweep: no result for ("
                            + crypto::cipherInfo(cipher).name + ", "
                            + kernels::variantName(variant) + ", "
                            + std::string(model) + ")");
}

} // namespace cryptarch::driver
