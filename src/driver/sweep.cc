#include "driver/sweep.hh"

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <tuple>

#include "isa/trap.hh"
#include "verify/oracle.hh"

namespace cryptarch::driver
{

const char *
cellOutcomeName(CellOutcome outcome)
{
    switch (outcome) {
      case CellOutcome::Ok: return "ok";
      case CellOutcome::Trapped: return "trapped";
      case CellOutcome::VerifyFailed: return "verify_failed";
      case CellOutcome::Error: return "error";
    }
    return "?";
}

namespace
{

/**
 * Cells sharing a kernel share one lazily recorded trace — or one
 * cached recording failure, so a kernel that traps or fails the oracle
 * is still interpreted exactly once, not once per model.
 */
struct TraceGroup
{
    std::once_flag once;
    RecordedTrace trace;
    std::exception_ptr recordError;
};

/** Fill outcome/message from the exception behind @p ep. */
void
classifyFailure(SweepResult &r, std::exception_ptr ep)
{
    try {
        std::rethrow_exception(ep);
    } catch (const isa::Trap &t) {
        r.outcome = CellOutcome::Trapped;
        r.message = t.what();
    } catch (const verify::VerifyError &e) {
        r.outcome = CellOutcome::VerifyFailed;
        r.message = e.what();
    } catch (const std::exception &e) {
        r.outcome = CellOutcome::Error;
        r.message = e.what();
    } catch (...) {
        r.outcome = CellOutcome::Error;
        r.message = "unknown error";
    }
}

/** Deterministic failures are not worth a second functional run. */
bool
isDeterministicFailure(std::exception_ptr ep)
{
    try {
        std::rethrow_exception(ep);
    } catch (const isa::Trap &) {
        return true;
    } catch (const verify::VerifyError &) {
        return true;
    } catch (...) {
        return false;
    }
}

using GroupKey = std::tuple<crypto::CipherId, kernels::KernelVariant, size_t>;

GroupKey
keyOf(const SweepCell &cell)
{
    return {cell.cipher, cell.variant, cell.bytes};
}

} // namespace

std::vector<SweepResult>
runCells(const std::vector<SweepCell> &cells, unsigned threads)
{
    std::vector<SweepResult> results(cells.size());
    if (cells.empty())
        return results;

    // Group table is fully built before workers start; workers only
    // race on each group's once_flag.
    std::map<GroupKey, std::unique_ptr<TraceGroup>> groups;
    for (const auto &cell : cells) {
        auto &slot = groups[keyOf(cell)];
        if (!slot)
            slot = std::make_unique<TraceGroup>();
    }

    std::atomic<size_t> next{0};

    auto worker = [&]() {
        for (;;) {
            size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= cells.size())
                return;
            const SweepCell &cell = cells[i];
            SweepResult r;
            r.cipher = cell.cipher;
            r.variant = cell.variant;
            r.model = cell.model.name;
            r.bytes = cell.bytes;

            TraceGroup &group = *groups.at(keyOf(cell));
            std::call_once(group.once, [&]() {
                try {
                    group.trace = recordKernelTrace(cell.cipher,
                                                    cell.variant,
                                                    cell.bytes);
                } catch (...) {
                    group.recordError = std::current_exception();
                    if (isDeterministicFailure(group.recordError))
                        return;
                    // One retry for anything unrecognized (transient
                    // allocation failure and the like).
                    try {
                        group.trace = recordKernelTrace(cell.cipher,
                                                        cell.variant,
                                                        cell.bytes);
                        group.recordError = nullptr;
                    } catch (...) {
                        group.recordError = std::current_exception();
                    }
                }
            });
            if (group.recordError) {
                classifyFailure(r, group.recordError);
            } else {
                try {
                    r.stats = group.trace.replay(cell.model);
                } catch (...) {
                    classifyFailure(r, std::current_exception());
                }
            }
            results[i] = std::move(r);
        }
    };

    unsigned n = threads ? threads : std::thread::hardware_concurrency();
    n = std::max(1u, std::min<unsigned>(n, cells.size()));

    std::vector<std::thread> pool;
    pool.reserve(n - 1);
    for (unsigned t = 0; t + 1 < n; t++)
        pool.emplace_back(worker);
    worker();
    for (auto &t : pool)
        t.join();

    return results;
}

std::vector<SweepResult>
runSweep(const SweepSpec &spec)
{
    std::vector<SweepCell> cells;
    cells.reserve(spec.ciphers.size() * spec.variants.size()
                  * spec.models.size());
    for (auto cipher : spec.ciphers)
        for (auto variant : spec.variants)
            for (const auto &model : spec.models)
                cells.push_back({cipher, variant, model, spec.bytes});
    return runCells(cells, spec.threads);
}

const SweepResult &
findResult(const std::vector<SweepResult> &results, crypto::CipherId cipher,
           kernels::KernelVariant variant, std::string_view model)
{
    for (const auto &r : results)
        if (r.cipher == cipher && r.variant == variant && r.model == model)
            return r;
    throw std::out_of_range("sweep: no result for ("
                            + crypto::cipherInfo(cipher).name + ", "
                            + kernels::variantName(variant) + ", "
                            + std::string(model) + ")");
}

} // namespace cryptarch::driver
