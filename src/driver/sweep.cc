#include "driver/sweep.hh"

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <tuple>

namespace cryptarch::driver
{

namespace
{

/** Cells sharing a kernel share one lazily recorded trace. */
struct TraceGroup
{
    std::once_flag once;
    RecordedTrace trace;
};

using GroupKey = std::tuple<crypto::CipherId, kernels::KernelVariant, size_t>;

GroupKey
keyOf(const SweepCell &cell)
{
    return {cell.cipher, cell.variant, cell.bytes};
}

} // namespace

std::vector<SweepResult>
runCells(const std::vector<SweepCell> &cells, unsigned threads)
{
    std::vector<SweepResult> results(cells.size());
    if (cells.empty())
        return results;

    // Group table is fully built before workers start; workers only
    // race on each group's once_flag.
    std::map<GroupKey, std::unique_ptr<TraceGroup>> groups;
    for (const auto &cell : cells) {
        auto &slot = groups[keyOf(cell)];
        if (!slot)
            slot = std::make_unique<TraceGroup>();
    }

    std::atomic<size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr error;
    std::mutex errorMutex;

    auto worker = [&]() {
        while (!failed.load(std::memory_order_relaxed)) {
            size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= cells.size())
                return;
            const SweepCell &cell = cells[i];
            try {
                TraceGroup &group = *groups.at(keyOf(cell));
                std::call_once(group.once, [&]() {
                    group.trace = recordKernelTrace(cell.cipher,
                                                    cell.variant,
                                                    cell.bytes);
                });
                SweepResult r;
                r.cipher = cell.cipher;
                r.variant = cell.variant;
                r.model = cell.model.name;
                r.bytes = cell.bytes;
                r.stats = group.trace.replay(cell.model);
                results[i] = std::move(r);
            } catch (...) {
                std::lock_guard<std::mutex> lock(errorMutex);
                if (!error)
                    error = std::current_exception();
                failed.store(true, std::memory_order_relaxed);
            }
        }
    };

    unsigned n = threads ? threads : std::thread::hardware_concurrency();
    n = std::max(1u, std::min<unsigned>(n, cells.size()));

    std::vector<std::thread> pool;
    pool.reserve(n - 1);
    for (unsigned t = 0; t + 1 < n; t++)
        pool.emplace_back(worker);
    worker();
    for (auto &t : pool)
        t.join();

    if (error)
        std::rethrow_exception(error);
    return results;
}

std::vector<SweepResult>
runSweep(const SweepSpec &spec)
{
    std::vector<SweepCell> cells;
    cells.reserve(spec.ciphers.size() * spec.variants.size()
                  * spec.models.size());
    for (auto cipher : spec.ciphers)
        for (auto variant : spec.variants)
            for (const auto &model : spec.models)
                cells.push_back({cipher, variant, model, spec.bytes});
    return runCells(cells, spec.threads);
}

const SweepResult &
findResult(const std::vector<SweepResult> &results, crypto::CipherId cipher,
           kernels::KernelVariant variant, std::string_view model)
{
    for (const auto &r : results)
        if (r.cipher == cipher && r.variant == variant && r.model == model)
            return r;
    throw std::out_of_range("sweep: no result for ("
                            + crypto::cipherInfo(cipher).name + ", "
                            + kernels::variantName(variant) + ", "
                            + std::string(model) + ")");
}

} // namespace cryptarch::driver
