/**
 * @file
 * Internal per-cell execution shared by the thread-pool sweep runner
 * (sweep.cc) and the forked process-pool workers (procpool.cc). Not
 * installed API: the contracts here (TraceGroup sharing, the
 * retry-once allowance, the never-throws guarantee) are documented on
 * driver::runCells.
 */

#ifndef CRYPTARCH_DRIVER_CELL_EXEC_HH
#define CRYPTARCH_DRIVER_CELL_EXEC_HH

#include <exception>
#include <mutex>
#include <tuple>

#include "driver/sweep.hh"
#include "driver/trace.hh"

namespace cryptarch::driver::detail
{

/**
 * Cells sharing a kernel share one lazily recorded trace — or one
 * cached recording failure, so a kernel that traps or fails the oracle
 * is still interpreted exactly once, not once per model.
 */
struct TraceGroup
{
    std::once_flag once;
    RecordedTrace trace;
    std::exception_ptr recordError;
};

/** The trace-sharing key: cells alike in these share a TraceGroup. */
using GroupKey = std::tuple<crypto::CipherId, kernels::KernelVariant, size_t>;

inline GroupKey
keyOf(const SweepCell &cell)
{
    return {cell.cipher, cell.variant, cell.bytes};
}

/** Fill outcome/message from the exception behind @p ep. */
void classifyFailure(SweepResult &r, std::exception_ptr ep);

/** Deterministic failures are not worth a second functional run. */
bool isDeterministicFailure(std::exception_ptr ep);

/** A result shell: @p cell's coordinates, no stats yet. */
SweepResult makeResultShell(const SweepCell &cell);

/**
 * Record (once per @p group, with the transient-failure retry) and
 * replay @p cell into @p r. Replay failures get the same retry-once
 * allowance as recording. Never throws: any escaping exception —
 * including one raised while building the result — classifies the
 * cell instead of propagating.
 */
void executeCell(const SweepCell &cell, TraceGroup &group, SweepResult &r);

} // namespace cryptarch::driver::detail

#endif // CRYPTARCH_DRIVER_CELL_EXEC_HH
