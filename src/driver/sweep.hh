/**
 * @file
 * Parallel (cipher x variant x model) sweep runner.
 *
 * A sweep is a list of cells; cells sharing a (cipher, variant, bytes)
 * kernel are grouped so the kernel is functionally interpreted exactly
 * once (recorded via RecordedTrace), then each cell replays the group's
 * trace into its own OooScheduler. Cells execute on a thread pool;
 * results are collected into a vector ordered exactly like the input
 * cells, so output is deterministic regardless of thread count or
 * scheduling.
 *
 * Sweeps are fail-soft: one trapping or verify-failing cell does not
 * abort the grid. Every cell gets a SweepResult with an outcome; the
 * failing cell carries the error message and zeroed stats, every other
 * cell its real timing. Bench drivers render partial grids with the
 * failed cells marked and exit nonzero.
 */

#ifndef CRYPTARCH_DRIVER_SWEEP_HH
#define CRYPTARCH_DRIVER_SWEEP_HH

#include <string>
#include <string_view>
#include <vector>

#include "driver/trace.hh"
#include "sim/config.hh"

namespace cryptarch::driver
{

/** One point of the sweep grid. */
struct SweepCell
{
    crypto::CipherId cipher{};
    kernels::KernelVariant variant{};
    sim::MachineConfig model;
    size_t bytes = session_bytes;
};

/** How a cell's record/replay ended. */
enum class CellOutcome : uint8_t
{
    Ok,           ///< real stats
    Trapped,      ///< the functional machine raised an isa::Trap
    VerifyFailed, ///< the record-time oracle rejected the output
    Error,        ///< anything else (kernel build, bad parameters, ...)
};

/** Stable outcome name ("ok", "trapped", "verify_failed", "error"). */
const char *cellOutcomeName(CellOutcome outcome);

/** Timing result of one cell, tagged with its coordinates. */
struct SweepResult
{
    crypto::CipherId cipher{};
    kernels::KernelVariant variant{};
    std::string model;
    size_t bytes = session_bytes;
    sim::SimStats stats;

    CellOutcome outcome = CellOutcome::Ok;
    /** The error's what() string; empty when outcome is Ok. */
    std::string message;

    bool ok() const { return outcome == CellOutcome::Ok; }
};

/** A dense grid: every cipher x every variant x every model. */
struct SweepSpec
{
    std::vector<crypto::CipherId> ciphers;
    std::vector<kernels::KernelVariant> variants;
    std::vector<sim::MachineConfig> models;
    size_t bytes = session_bytes;
    /** Worker threads; 0 = hardware concurrency. */
    unsigned threads = 0;
};

/**
 * Execute @p cells in parallel on @p threads workers (0 = hardware
 * concurrency). Returns one result per cell, in cell order. Each
 * distinct (cipher, variant, bytes) kernel is functionally interpreted
 * exactly once across the whole call — including when recording fails:
 * traps and oracle rejections are deterministic, so the failure is
 * cached and fanned out to every cell of the group. Unrecognized
 * record/replay errors are retried once (transient-failure allowance)
 * before the cell is marked Error. Never throws for per-cell failures.
 */
std::vector<SweepResult> runCells(const std::vector<SweepCell> &cells,
                                  unsigned threads = 0);

/**
 * Execute the dense grid of @p spec. Results are ordered cipher-major,
 * then variant, then model: index = (ci * #variants + vi) * #models + mi.
 */
std::vector<SweepResult> runSweep(const SweepSpec &spec);

/**
 * First result matching (cipher, variant, model name). Throws
 * std::out_of_range when the sweep has no such cell.
 */
const SweepResult &findResult(const std::vector<SweepResult> &results,
                              crypto::CipherId cipher,
                              kernels::KernelVariant variant,
                              std::string_view model);

} // namespace cryptarch::driver

#endif // CRYPTARCH_DRIVER_SWEEP_HH
