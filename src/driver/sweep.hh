/**
 * @file
 * Parallel (cipher x variant x model) sweep runner.
 *
 * A sweep is a list of cells; cells sharing a (cipher, variant, bytes)
 * kernel are grouped so the kernel is functionally interpreted exactly
 * once (recorded via RecordedTrace), then each cell replays the group's
 * trace into its own OooScheduler. Cells execute on a thread pool;
 * results are collected into a vector ordered exactly like the input
 * cells, so output is deterministic regardless of thread count or
 * scheduling.
 *
 * Sweeps are fail-soft: one trapping or verify-failing cell does not
 * abort the grid. Every cell gets a SweepResult with an outcome; the
 * failing cell carries the error message and zeroed stats, every other
 * cell its real timing. Bench drivers render partial grids with the
 * failed cells marked and exit nonzero.
 *
 * Execution is isolation-selectable (SweepOptions / the
 * CRYPTARCH_SWEEP_* environment): the default Thread mode runs cells
 * on an in-process pool exactly as before, while Process mode forks
 * POSIX worker processes that claim group-aligned cell batches over a
 * pipe protocol and stream back checksummed serialized results
 * (src/driver/procpool.hh). Process mode survives host-level faults
 * the thread pool cannot: a worker that dies on a signal marks only
 * its in-flight cell `crashed`, a worker past its per-cell watchdog
 * deadline is killed and the cell marked `timed_out`, and the dead
 * worker's remaining batch is requeued to survivors (workers are
 * respawned up to a bounded budget). Either mode can additionally
 * record an append-only checkpoint journal so a killed sweep resumes
 * without redoing finished cells and still emits byte-identical
 * BENCH_*.json artifacts.
 */

#ifndef CRYPTARCH_DRIVER_SWEEP_HH
#define CRYPTARCH_DRIVER_SWEEP_HH

#include <string>
#include <string_view>
#include <vector>

#include "driver/trace.hh"
#include "sim/config.hh"

namespace cryptarch::driver
{

/** One point of the sweep grid. */
struct SweepCell
{
    crypto::CipherId cipher{};
    kernels::KernelVariant variant{};
    sim::MachineConfig model;
    size_t bytes = session_bytes;
};

/** How a cell's record/replay ended. */
enum class CellOutcome : uint8_t
{
    Ok,           ///< real stats
    Trapped,      ///< the functional machine raised an isa::Trap
    VerifyFailed, ///< the record-time oracle rejected the output
    Error,        ///< anything else (kernel build, bad parameters, ...)
    Crashed,      ///< worker process died (signal or unexpected exit)
    TimedOut,     ///< cell exceeded the watchdog deadline; worker killed
    // New values append (journal payloads carry the numeric value).
    Rejected,     ///< config validation refused the cell's machine model
    Stalled,      ///< the scheduler's forward-progress watchdog fired
};

/** Number of cell outcomes (size of any per-outcome accumulator). */
constexpr size_t num_cell_outcomes =
    static_cast<size_t>(CellOutcome::Stalled) + 1;

/** Stable outcome name ("ok", "trapped", ..., "rejected", "stalled"). */
const char *cellOutcomeName(CellOutcome outcome);

/** Timing result of one cell, tagged with its coordinates. */
struct SweepResult
{
    crypto::CipherId cipher{};
    kernels::KernelVariant variant{};
    std::string model;
    size_t bytes = session_bytes;
    sim::SimStats stats;

    CellOutcome outcome = CellOutcome::Ok;
    /** The error's what() string; empty when outcome is Ok. */
    std::string message;

    /**
     * Index of the worker process that last held the cell, -1 outside
     * process isolation. Only host-level failures (Crashed, TimedOut,
     * corrupt-frame/exhaustion Error) carry attribution — healthy
     * cells keep -1 in every mode, so ok-grid artifacts stay
     * byte-identical across thread counts, isolation modes, and
     * kill-and-resume reruns.
     */
    int worker = -1;

    bool ok() const { return outcome == CellOutcome::Ok; }
};

/** Where sweep cells execute (see the file comment). */
enum class SweepIsolation : uint8_t
{
    Thread,  ///< in-process thread pool (the historical behavior)
    Process, ///< forked worker processes with watchdog supervision
};

/**
 * Crash-safety knobs for runCells/runSweep. Defaults reproduce the
 * historical thread-pool behavior exactly; sweepOptionsFromEnv() is
 * the bench-facing way to opt in without new plumbing.
 */
struct SweepOptions
{
    SweepIsolation isolation = SweepIsolation::Thread;
    /** Worker threads or processes; 0 = hardware concurrency. */
    unsigned threads = 0;
    /**
     * Per-cell watchdog deadline, process isolation only: a worker
     * that produces no result for this long is SIGKILLed and the
     * in-flight cell marked TimedOut. <= 0 selects the default
     * (default_cell_deadline_seconds). Thread mode has no watchdog —
     * a hung cell there would leave the pool wedged either way.
     */
    double cellDeadlineSeconds = 0;
    /** Dead workers respawned before the pool gives up requeued work. */
    unsigned respawnBudget = 8;
    /**
     * Append-only checkpoint journal path; empty = none. Completed
     * cells are recorded as they finish (either isolation mode); a
     * rerun against the same grid skips them and emits byte-identical
     * results. Truncated or corrupted journals are rejected with a
     * typed error (procpool.hh JournalError) and the sweep falls back
     * to a fresh run, rewriting the journal.
     */
    std::string journalPath;
};

/** Default watchdog deadline when SweepOptions leaves it unset. */
constexpr double default_cell_deadline_seconds = 300.0;

/**
 * Sweep options from the environment: CRYPTARCH_SWEEP_ISOLATE
 * ("thread" | "process"; anything else keeps the thread default),
 * CRYPTARCH_SWEEP_JOURNAL (path), CRYPTARCH_SWEEP_DEADLINE (seconds),
 * CRYPTARCH_SWEEP_RESPAWNS (count). The plain runCells/runSweep
 * entry points start from these, so every existing bench is
 * crash-isolatable without touching its command line.
 */
SweepOptions sweepOptionsFromEnv();

/** Parse an isolation name; unrecognized values return @p dflt. */
SweepIsolation parseSweepIsolation(std::string_view name,
                                   SweepIsolation dflt);

/** A dense grid: every cipher x every variant x every model. */
struct SweepSpec
{
    std::vector<crypto::CipherId> ciphers;
    std::vector<kernels::KernelVariant> variants;
    std::vector<sim::MachineConfig> models;
    size_t bytes = session_bytes;
    /** Worker threads; 0 = hardware concurrency. */
    unsigned threads = 0;
};

/**
 * Execute @p cells in parallel on @p threads workers (0 = hardware
 * concurrency). Returns one result per cell, in cell order. Each
 * distinct (cipher, variant, bytes) kernel is functionally interpreted
 * exactly once across the whole call — including when recording fails:
 * traps and oracle rejections are deterministic, so the failure is
 * cached and fanned out to every cell of the group. Unrecognized
 * record/replay errors — on the record AND the replay path — are
 * retried once (transient-failure allowance) before the cell is
 * marked Error, and any exception escaping a cell (including failures
 * while building its result) marks that cell Error instead of
 * terminating the sweep. Never throws for per-cell failures.
 *
 * Isolation, watchdog, and journal policy come from
 * sweepOptionsFromEnv(); @p threads, when nonzero, overrides the
 * worker count. The SweepOptions overload takes full control.
 */
std::vector<SweepResult> runCells(const std::vector<SweepCell> &cells,
                                  unsigned threads = 0);

/** As above with explicit crash-safety options. */
std::vector<SweepResult> runCells(const std::vector<SweepCell> &cells,
                                  const SweepOptions &options);

/**
 * Execute the dense grid of @p spec. Results are ordered cipher-major,
 * then variant, then model: index = (ci * #variants + vi) * #models + mi.
 */
std::vector<SweepResult> runSweep(const SweepSpec &spec);

/** As above with explicit crash-safety options (spec.threads is
 *  superseded by options.threads). */
std::vector<SweepResult> runSweep(const SweepSpec &spec,
                                  const SweepOptions &options);

/**
 * First result matching (cipher, variant, model name). Throws
 * std::out_of_range when the sweep has no such cell.
 */
const SweepResult &findResult(const std::vector<SweepResult> &results,
                              crypto::CipherId cipher,
                              kernels::KernelVariant variant,
                              std::string_view model);

} // namespace cryptarch::driver

#endif // CRYPTARCH_DRIVER_SWEEP_HH
