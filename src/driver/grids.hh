/**
 * @file
 * The paper figure/table sweep grids, defined once.
 *
 * The bench binaries and the driver tests share these definitions, so
 * the "one functional interpretation per (cipher, variant)" property
 * the tests assert is a property of exactly the grids the figures run.
 */

#ifndef CRYPTARCH_DRIVER_GRIDS_HH
#define CRYPTARCH_DRIVER_GRIDS_HH

#include "driver/sweep.hh"

namespace cryptarch::driver
{

/**
 * Figure 4: all ciphers, BaselineRot kernels, on the 21264-class, 4W
 * and DF machines (the 1-CPI column is the trace length, free with any
 * of the three). One functional pass per cipher.
 */
SweepSpec fig04Spec();

/**
 * Figure 10: per cipher, the five bars — BaselineNoRot on 4W,
 * Optimized on 4W/4W+/8W+/DF — plus the BaselineRot/4W normalization
 * baseline. Three functional passes per cipher (one per variant).
 */
std::vector<SweepCell> fig10Cells();

/**
 * Table 2 companion run: the optimized kernels across the four
 * first-class machine models, giving the per-model SimStats behind the
 * model-parameter table. One functional pass per cipher.
 */
SweepSpec tab02Spec();

} // namespace cryptarch::driver

#endif // CRYPTARCH_DRIVER_GRIDS_HH
