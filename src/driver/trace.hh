/**
 * @file
 * Record-once / replay-many dynamic kernel traces.
 *
 * The functional Machine is deterministic, so the dynamic instruction
 * stream of a (cipher, variant, session) triple is a pure function of
 * its inputs — it does not depend on the timing model observing it.
 * RecordedTrace captures that stream through the ordinary
 * isa::TraceSink interface and can replay it into any number of
 * sim::OooScheduler instances, which is how the sweep runner turns a
 * (cipher x variant x model) grid into one functional interpretation
 * per kernel instead of one per timing model — the record/replay
 * structure SimpleScalar-style studies exploit.
 */

#ifndef CRYPTARCH_DRIVER_TRACE_HH
#define CRYPTARCH_DRIVER_TRACE_HH

#include <cstdint>
#include <vector>

#include "driver/workload.hh"
#include "isa/machine.hh"
#include "isa/packed_trace.hh"
#include "kernels/kernel.hh"
#include "sim/pipeline.hh"

namespace cryptarch::driver
{

// The packed encoding lives in src/isa/ (it encodes isa::DynInst and
// the verify layer corrupts serialized streams without linking the
// driver); these aliases keep the historical driver:: spellings valid.
using isa::PackedTrace;
using isa::TraceErrorKind;
using isa::TraceFormatError;

/**
 * A captured dynamic instruction stream, stored packed (see
 * packed_trace.hh: 14 fixed bytes per instruction plus side tables,
 * vs. 56 bytes for a raw isa::DynInst). Result values are dropped at
 * record time — no timing model reads them, and the value-prediction
 * studies attach their sinks live to the Machine instead of replaying.
 */
class RecordedTrace : public isa::TraceSink
{
  public:
    void
    emit(const isa::DynInst &inst) override
    {
        packed.append(inst, /*keepResult=*/false);
    }

    /** Feed the captured stream, in order, into any sink. */
    void replay(isa::TraceSink &sink) const;

    /** Replay into a fresh OooScheduler for @p cfg; returns its stats. */
    sim::SimStats replay(const sim::MachineConfig &cfg) const;

    /** Dynamic instruction count (the 1-CPI machine's cycle count). */
    uint64_t instructions() const { return packed.size(); }

    bool empty() const { return packed.empty(); }

    /** Bytes held by the packed encoding (fixed columns + tables). */
    size_t packedBytes() const { return packed.packedBytes(); }

    /** Pre-size the encoding for an expected instruction count. */
    void reserveInsts(size_t n) { packed.reserve(n); }

    /** The underlying encoding; decode through a Reader cursor. */
    const PackedTrace &stream() const { return packed; }

  private:
    PackedTrace packed;
};

/**
 * Build the (cipher, variant, direction) kernel over the standard
 * deterministic workload for @p bytes, run it functionally exactly
 * once, and capture the trace. Increments functionalRuns().
 *
 * Every recording is oracle-checked before any model replays it: the
 * machine's output buffer is compared byte-for-byte against the
 * reference cipher (decrypt kernels consume the reference ciphertext
 * and must recover the plaintext). A mismatch throws
 * verify::VerifyError, so no timing figure can be computed from a
 * functionally wrong run.
 */
RecordedTrace recordKernelTrace(crypto::CipherId cipher,
                                kernels::KernelVariant variant,
                                size_t bytes = session_bytes,
                                kernels::KernelDirection direction
                                    = kernels::KernelDirection::Encrypt);

/**
 * Process-wide count of functional Machine interpretations performed
 * through the driver — the instrumentation the driver tests use to
 * prove a sweep interprets each kernel exactly once, no matter how
 * many timing models it feeds.
 */
uint64_t functionalRuns();

} // namespace cryptarch::driver

#endif // CRYPTARCH_DRIVER_TRACE_HH
