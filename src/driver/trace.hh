/**
 * @file
 * Record-once / replay-many dynamic kernel traces.
 *
 * The functional Machine is deterministic, so the dynamic instruction
 * stream of a (cipher, variant, session) triple is a pure function of
 * its inputs — it does not depend on the timing model observing it.
 * RecordedTrace captures that stream through the ordinary
 * isa::TraceSink interface and can replay it into any number of
 * sim::OooScheduler instances, which is how the sweep runner turns a
 * (cipher x variant x model) grid into one functional interpretation
 * per kernel instead of one per timing model — the record/replay
 * structure SimpleScalar-style studies exploit.
 *
 * Storage is two-tier. Every stream is captured as a PackedTrace
 * (14 B/inst); after recording, the driver attempts the loop-aware
 * CompressedTrace encoding (see isa/compressed_trace.hh) and adopts it
 * only when the loop detector structurally accepts the stream, the
 * encoding is actually smaller, AND a full differential expansion
 * check (verify::verifyExpansion) proves the expanded stream identical
 * to the packed one. Replay then expands on the fly; every refusal
 * path falls back to the packed copy with no output change.
 */

#ifndef CRYPTARCH_DRIVER_TRACE_HH
#define CRYPTARCH_DRIVER_TRACE_HH

#include <cstdint>
#include <vector>

#include "driver/workload.hh"
#include "isa/compressed_trace.hh"
#include "isa/machine.hh"
#include "isa/packed_trace.hh"
#include "kernels/kernel.hh"
#include "sim/pipeline.hh"

namespace cryptarch::driver
{

// The packed encoding lives in src/isa/ (it encodes isa::DynInst and
// the verify layer corrupts serialized streams without linking the
// driver); these aliases keep the historical driver:: spellings valid.
using isa::CompressedTrace;
using isa::CompressOutcome;
using isa::PackedTrace;
using isa::TraceErrorKind;
using isa::TraceFormatError;

/**
 * Process-wide trace-storage policy, settable programmatically or via
 * the CRYPTARCH_TRACE_COMPRESS environment variable ("off", "auto",
 * "on"; default auto).
 *
 *   Off   never attempt compression; store packed only.
 *   Auto  compress when the loop detector accepts AND the encoding is
 *         smaller AND the expansion check passes; else keep packed.
 *   On    like Auto but adopt an accepted encoding even when it is
 *         not smaller (the CI byte-identity gate uses this to force
 *         every compressible kernel through the expansion path).
 */
enum class TraceCompression : uint8_t { Off, Auto, On };

TraceCompression traceCompression();
void setTraceCompression(TraceCompression mode);

/**
 * Process-wide execution-backend policy for the record phase, settable
 * programmatically or via the CRYPTARCH_EXEC_BACKEND environment
 * variable ("interpreter", "threaded", "auto"; default auto).
 *
 *   Interpreter  record with the reference interpreter only.
 *   Threaded     record with the pre-decoded threaded-code backend.
 *   Auto         like Threaded (the split leaves room for future
 *                heuristics, e.g. interpreting tiny sessions whose
 *                pre-decode would dominate).
 *
 * Adoption is gated exactly like trace compression: the first
 * recording of each (cipher, variant, direction) under Threaded/Auto
 * runs the interpreter too and proves the threaded DynInst stream
 * field-for-field identical (results included) before the threaded
 * stream is used; any divergence or trap difference permanently falls
 * back to the interpreter for that kernel. Fault-injection runs never
 * come through here — the fault harness drives isa::Machine directly,
 * the only backend with supportsFaults().
 */
enum class ExecBackendSelection : uint8_t { Interpreter, Threaded, Auto };

ExecBackendSelection execBackendSelection();
void setExecBackendSelection(ExecBackendSelection sel);

/** Differential backend-adoption checks performed (first-use gates). */
uint64_t backendGateChecks();
/** Gate failures that fell back to the interpreter stream. */
uint64_t backendGateFallbacks();
/** Recordings whose returned trace came from the threaded backend. */
uint64_t threadedRecordings();
/** Forget all gate verdicts (tests/benches re-exercising the gate). */
void resetExecBackendGate();

/**
 * Where recordKernelTrace's wall-clock time went, in seconds. The
 * fields are disjoint phases of the call, so their sum never exceeds
 * its wall clock (the driver tests assert it). recordSeconds is
 * deliberately ONLY the producing run — setup and pre-decode are
 * split out so per-backend record_seconds columns compare the
 * executors, not the workload synthesis both share.
 */
struct RecordTiming
{
    double setupSeconds = 0;    ///< workload synthesis + kernel build
    double recordSeconds = 0;   ///< the trace-producing run
    double decodeSeconds = 0;   ///< threaded backend pre-decode
    double gateSeconds = 0;     ///< first-use gate: reference run + compare
    double verifySeconds = 0;   ///< record-time output oracle
    double compressSeconds = 0; ///< compression attempt + expand check
};

/**
 * A captured dynamic instruction stream, stored packed (see
 * packed_trace.hh) or loop-compressed (see compressed_trace.hh) —
 * compress() decides which and drops the loser. Result values are
 * dropped at record time — no timing model reads them, and the
 * value-prediction studies attach their sinks live to the Machine
 * instead of replaying.
 */
class RecordedTrace : public isa::TraceSink
{
  public:
    void
    emit(const isa::DynInst &inst) override
    {
        packed.append(inst, /*keepResult=*/false);
    }

    /**
     * Recording is a pure packed append (results dropped, same as
     * emit()), so the threaded backend may take its pre-packed row
     * fast path when producing into a RecordedTrace.
     */
    isa::PackedTrace *
    packedSink(bool &keepResults) override
    {
        keepResults = false;
        return &packed;
    }

    /** Feed the captured stream, in order, into any sink. */
    void replay(isa::TraceSink &sink) const;

    /** Replay into a fresh OooScheduler for @p cfg; returns its stats. */
    sim::SimStats replay(const sim::MachineConfig &cfg) const;

    /** Dynamic instruction count (the 1-CPI machine's cycle count). */
    uint64_t
    instructions() const
    {
        return compressed_ ? comp.instructions() : packed.size();
    }

    bool empty() const { return instructions() == 0; }

    /**
     * Bytes actually held by the stored representation: the packed
     * columns + side tables, or the compressed skeleton + deltas +
     * stitches. This is what BENCH_simspeed.json reports — measured,
     * never extrapolated.
     */
    size_t storedBytes() const
    {
        return compressed_ ? comp.storedBytes() : packed.packedBytes();
    }

    /**
     * Bytes the stream occupies (or occupied, before compress()
     * dropped it) as a PackedTrace — the compression-ratio baseline.
     */
    size_t packedEquivalentBytes() const
    {
        return compressed_ ? packedBytesBeforeDrop : packed.packedBytes();
    }

    /** Pre-size the packed encoding for an expected instruction count. */
    void reserveInsts(size_t n) { packed.reserve(n); }

    /**
     * Attempt to replace the packed storage with the loop-compressed
     * encoding under @p mode (no-op returning NotAttempted for Off).
     * Returns why the stream did or did not compress; on any refusal
     * the packed copy stays authoritative. Safe to call again (idempotent
     * once compressed).
     */
    CompressOutcome compress(TraceCompression mode);

    /** Whether replay expands the compressed encoding. */
    bool isCompressed() const { return compressed_; }

    /** Outcome of the last compress() call (NotAttempted before any). */
    CompressOutcome compressOutcome() const { return outcome_; }

    /**
     * Decode whichever representation is stored into a standalone
     * PackedTrace (a copy — use the replay paths for hot loops).
     */
    PackedTrace toPacked() const;

    /** The compressed encoding; valid only when isCompressed(). */
    const CompressedTrace &compressedStream() const { return comp; }

  private:
    PackedTrace packed;
    CompressedTrace comp;
    bool compressed_ = false;
    CompressOutcome outcome_ = CompressOutcome::NotAttempted;
    size_t packedBytesBeforeDrop = 0;
};

/**
 * Build the (cipher, variant, direction) kernel over the standard
 * deterministic workload for @p bytes, run it functionally exactly
 * once with the selected execution backend (see ExecBackendSelection;
 * first threaded use of a kernel is differentially gated against the
 * interpreter), capture the trace, and apply the process-wide
 * compression policy to it. Increments functionalRuns().
 *
 * Every recording is oracle-checked before any model replays it: the
 * machine's output buffer is compared byte-for-byte against the
 * reference cipher (decrypt kernels consume the reference ciphertext
 * and must recover the plaintext). A mismatch throws
 * verify::VerifyError, so no timing figure can be computed from a
 * functionally wrong run.
 *
 * @p timing, when non-null, receives the wall-clock split between the
 * functional run, the oracle, and the compression attempt — the bench
 * drivers report these as separate phases.
 */
RecordedTrace recordKernelTrace(crypto::CipherId cipher,
                                kernels::KernelVariant variant,
                                size_t bytes = session_bytes,
                                kernels::KernelDirection direction
                                    = kernels::KernelDirection::Encrypt,
                                RecordTiming *timing = nullptr);

/**
 * Process-wide count of functional Machine interpretations performed
 * through the driver — the instrumentation the driver tests use to
 * prove a sweep interprets each kernel exactly once, no matter how
 * many timing models it feeds.
 */
uint64_t functionalRuns();

} // namespace cryptarch::driver

#endif // CRYPTARCH_DRIVER_TRACE_HH
