#include "driver/trace.hh"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <tuple>
#include <utility>

#include "verify/expand_check.hh"
#include "verify/oracle.hh"

namespace cryptarch::driver
{

namespace
{

std::atomic<uint64_t> functional_runs{0};

/**
 * First-session instruction-count estimates, keyed by
 * (cipher, variant, direction) — decrypt kernels of the same cipher
 * can differ in dynamic length (extra chaining loads), so direction
 * is part of the key. A kernel's dynamic length is linear in its
 * session bytes, so one observation sizes every later recording's
 * reserve() and the packed columns never regrow mid-record.
 */
std::mutex estimate_mutex;
std::map<std::tuple<int, int, int>, double> insts_per_byte;

TraceCompression
initialCompressionMode()
{
    const char *env = std::getenv("CRYPTARCH_TRACE_COMPRESS");
    if (env) {
        if (std::strcmp(env, "off") == 0)
            return TraceCompression::Off;
        if (std::strcmp(env, "on") == 0)
            return TraceCompression::On;
        // "auto" or anything unrecognized: the safe default.
    }
    return TraceCompression::Auto;
}

std::atomic<TraceCompression> compression_mode{initialCompressionMode()};

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now()
                                         - t0)
        .count();
}

} // namespace

TraceCompression
traceCompression()
{
    return compression_mode.load(std::memory_order_relaxed);
}

void
setTraceCompression(TraceCompression mode)
{
    compression_mode.store(mode, std::memory_order_relaxed);
}

void
RecordedTrace::replay(isa::TraceSink &sink) const
{
    if (compressed_) {
        comp.expandInto(sink);
        return;
    }
    for (auto r = packed.reader(); !r.done();)
        sink.emit(r.next());
}

sim::SimStats
RecordedTrace::replay(const sim::MachineConfig &cfg) const
{
    sim::OooScheduler sched(cfg);
    // Feed the concrete scheduler directly: packed decode lands in a
    // register-resident temporary for exactly one emit; compressed
    // expansion emits straight from the patched body template.
    if (compressed_) {
        comp.expandInto(sched);
    } else {
        for (auto r = packed.reader(); !r.done();) {
            isa::DynInst d = r.next();
            sched.emit(d);
        }
    }
    return sched.finish();
}

CompressOutcome
RecordedTrace::compress(TraceCompression mode)
{
    if (compressed_)
        return outcome_;
    if (mode == TraceCompression::Off) {
        outcome_ = CompressOutcome::NotAttempted;
        return outcome_;
    }
    CompressedTrace candidate;
    outcome_ = CompressedTrace::compress(packed, candidate);
    if (outcome_ != CompressOutcome::Accepted)
        return outcome_;
    if (mode == TraceCompression::Auto
        && candidate.storedBytes() >= packed.packedBytes()) {
        outcome_ = CompressOutcome::NoGain;
        return outcome_;
    }
    // The packed copy is dropped only after the expanded stream is
    // proven identical to it — downstream figures cannot change.
    if (!verify::verifyExpansion(packed, candidate)) {
        outcome_ = CompressOutcome::ExpandMismatch;
        return outcome_;
    }
    packedBytesBeforeDrop = packed.packedBytes();
    comp = std::move(candidate);
    compressed_ = true;
    packed.clear();
    return outcome_;
}

PackedTrace
RecordedTrace::toPacked() const
{
    if (!compressed_)
        return packed;
    PackedTrace out;
    out.reserve(comp.instructions());
    for (auto r = comp.reader(); !r.done();)
        out.append(r.next(), /*keepResult=*/true);
    return out;
}

RecordedTrace
recordKernelTrace(crypto::CipherId cipher, kernels::KernelVariant variant,
                  size_t bytes, kernels::KernelDirection direction,
                  RecordTiming *timing)
{
    const auto t_record = std::chrono::steady_clock::now();
    Workload w = makeWorkload(cipher, bytes);
    // Decrypt kernels consume the reference ciphertext of the standard
    // plaintext, so the oracle below checks round-trip recovery.
    std::vector<uint8_t> input =
        direction == kernels::KernelDirection::Encrypt
            ? w.plaintext
            : verify::referenceProcess(cipher, w.key, w.iv, w.plaintext,
                                       kernels::KernelDirection::Encrypt);
    auto build = kernels::buildKernel(cipher, variant, w.key, w.iv, bytes,
                                      direction);
    isa::Machine m;
    build.install(m, kernels::toWordImage(cipher, input));

    RecordedTrace trace;
    const auto key = std::make_tuple(static_cast<int>(cipher),
                                     static_cast<int>(variant),
                                     static_cast<int>(direction));
    {
        std::lock_guard<std::mutex> lock(estimate_mutex);
        auto it = insts_per_byte.find(key);
        if (it != insts_per_byte.end())
            trace.reserveInsts(
                static_cast<size_t>(it->second * bytes) + 64);
    }

    m.run(build.program, &trace, 1ull << 32);
    functional_runs.fetch_add(1, std::memory_order_relaxed);
    const double record_seconds = secondsSince(t_record);

    const auto t_verify = std::chrono::steady_clock::now();
    verify::verifyKernelOutput(build, m, w.key, w.iv, input, direction);
    const double verify_seconds = secondsSince(t_verify);

    if (bytes > 0) {
        std::lock_guard<std::mutex> lock(estimate_mutex);
        insts_per_byte[key] =
            static_cast<double>(trace.instructions()) / bytes;
    }

    const auto t_compress = std::chrono::steady_clock::now();
    trace.compress(traceCompression());
    const double compress_seconds = secondsSince(t_compress);

    if (timing) {
        timing->recordSeconds = record_seconds;
        timing->verifySeconds = verify_seconds;
        timing->compressSeconds = compress_seconds;
    }
    return trace;
}

uint64_t
functionalRuns()
{
    return functional_runs.load(std::memory_order_relaxed);
}

} // namespace cryptarch::driver
