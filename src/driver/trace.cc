#include "driver/trace.hh"

#include <atomic>

namespace cryptarch::driver
{

namespace
{

std::atomic<uint64_t> functional_runs{0};

} // namespace

void
RecordedTrace::replay(isa::TraceSink &sink) const
{
    for (const auto &inst : insts)
        sink.emit(inst);
}

sim::SimStats
RecordedTrace::replay(const sim::MachineConfig &cfg) const
{
    sim::OooScheduler sched(cfg);
    replay(static_cast<isa::TraceSink &>(sched));
    return sched.finish();
}

RecordedTrace
recordKernelTrace(crypto::CipherId cipher, kernels::KernelVariant variant,
                  size_t bytes)
{
    Workload w = makeWorkload(cipher, bytes);
    auto build = kernels::buildKernel(cipher, variant, w.key, w.iv, bytes);
    isa::Machine m;
    build.install(m, kernels::toWordImage(cipher, w.plaintext));
    RecordedTrace trace;
    m.run(build.program, &trace, 1ull << 32);
    functional_runs.fetch_add(1, std::memory_order_relaxed);
    return trace;
}

uint64_t
functionalRuns()
{
    return functional_runs.load(std::memory_order_relaxed);
}

} // namespace cryptarch::driver
