#include "driver/trace.hh"

#include <atomic>
#include <map>
#include <mutex>
#include <utility>

#include "verify/oracle.hh"

namespace cryptarch::driver
{

namespace
{

std::atomic<uint64_t> functional_runs{0};

/**
 * First-session instruction-count estimates, keyed by
 * (cipher, variant). A kernel's dynamic length is linear in its
 * session bytes, so one observation sizes every later recording's
 * reserve() and the packed columns never regrow mid-record.
 */
std::mutex estimate_mutex;
std::map<std::pair<int, int>, double> insts_per_byte;

} // namespace

void
RecordedTrace::replay(isa::TraceSink &sink) const
{
    for (auto r = packed.reader(); !r.done();)
        sink.emit(r.next());
}

sim::SimStats
RecordedTrace::replay(const sim::MachineConfig &cfg) const
{
    sim::OooScheduler sched(cfg);
    // Decode straight into the concrete scheduler: the DynInst lives
    // in a register-resident temporary for exactly one emit.
    for (auto r = packed.reader(); !r.done();) {
        isa::DynInst d = r.next();
        sched.emit(d);
    }
    return sched.finish();
}

RecordedTrace
recordKernelTrace(crypto::CipherId cipher, kernels::KernelVariant variant,
                  size_t bytes, kernels::KernelDirection direction)
{
    Workload w = makeWorkload(cipher, bytes);
    // Decrypt kernels consume the reference ciphertext of the standard
    // plaintext, so the oracle below checks round-trip recovery.
    std::vector<uint8_t> input =
        direction == kernels::KernelDirection::Encrypt
            ? w.plaintext
            : verify::referenceProcess(cipher, w.key, w.iv, w.plaintext,
                                       kernels::KernelDirection::Encrypt);
    auto build = kernels::buildKernel(cipher, variant, w.key, w.iv, bytes,
                                      direction);
    isa::Machine m;
    build.install(m, kernels::toWordImage(cipher, input));

    RecordedTrace trace;
    const auto key = std::make_pair(static_cast<int>(cipher),
                                    static_cast<int>(variant));
    {
        std::lock_guard<std::mutex> lock(estimate_mutex);
        auto it = insts_per_byte.find(key);
        if (it != insts_per_byte.end())
            trace.reserveInsts(
                static_cast<size_t>(it->second * bytes) + 64);
    }

    m.run(build.program, &trace, 1ull << 32);
    functional_runs.fetch_add(1, std::memory_order_relaxed);
    verify::verifyKernelOutput(build, m, w.key, w.iv, input, direction);

    if (bytes > 0) {
        std::lock_guard<std::mutex> lock(estimate_mutex);
        insts_per_byte[key] =
            static_cast<double>(trace.instructions()) / bytes;
    }
    return trace;
}

uint64_t
functionalRuns()
{
    return functional_runs.load(std::memory_order_relaxed);
}

} // namespace cryptarch::driver
