#include "driver/trace.hh"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <tuple>
#include <utility>

#include "isa/threaded_machine.hh"
#include "util/env.hh"
#include "verify/expand_check.hh"
#include "verify/oracle.hh"

namespace cryptarch::driver
{

namespace
{

std::atomic<uint64_t> functional_runs{0};

/**
 * First-session instruction-count estimates, keyed by
 * (cipher, variant, direction) — decrypt kernels of the same cipher
 * can differ in dynamic length (extra chaining loads), so direction
 * is part of the key. A kernel's dynamic length is linear in its
 * session bytes, so one observation sizes every later recording's
 * reserve() and the packed columns never regrow mid-record.
 */
std::mutex estimate_mutex;
std::map<std::tuple<int, int, int>, double> insts_per_byte;

TraceCompression
initialCompressionMode()
{
    // util/env.hh: unrecognized values keep the safe default and warn
    // once, naming the accepted spellings.
    return static_cast<TraceCompression>(util::envChoice(
        "CRYPTARCH_TRACE_COMPRESS",
        {{"auto", static_cast<int>(TraceCompression::Auto)},
         {"on", static_cast<int>(TraceCompression::On)},
         {"off", static_cast<int>(TraceCompression::Off)}},
        static_cast<int>(TraceCompression::Auto)));
}

std::atomic<TraceCompression> compression_mode{initialCompressionMode()};

ExecBackendSelection
initialBackendSelection()
{
    return static_cast<ExecBackendSelection>(util::envChoice(
        "CRYPTARCH_EXEC_BACKEND",
        {{"auto", static_cast<int>(ExecBackendSelection::Auto)},
         {"interpreter",
          static_cast<int>(ExecBackendSelection::Interpreter)},
         {"threaded", static_cast<int>(ExecBackendSelection::Threaded)}},
        static_cast<int>(ExecBackendSelection::Auto)));
}

std::atomic<ExecBackendSelection> backend_selection{
    initialBackendSelection()};

std::atomic<uint64_t> gate_checks{0};
std::atomic<uint64_t> gate_fallbacks{0};
std::atomic<uint64_t> threaded_recordings{0};

/**
 * Sticky per-kernel adoption verdicts. A kernel that ever failed the
 * differential gate records with the interpreter for the rest of the
 * process — a wrong-but-fast backend must not get a second chance to
 * contaminate figures.
 */
std::mutex gate_mutex;
std::map<std::tuple<int, int, int>, bool> gate_passed;

/**
 * Capture for the gate: packed stream WITH result values. Advertises
 * the packed fast path so a gated threaded run exercises exactly the
 * row-append machinery that steady-state recordings use.
 */
struct RefTraceSink : isa::TraceSink
{
    isa::PackedTrace trace;

    void
    emit(const isa::DynInst &inst) override
    {
        trace.append(inst, /*keepResult=*/true);
    }

    isa::PackedTrace *
    packedSink(bool &keepResults) override
    {
        keepResults = true;
        return &trace;
    }
};

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now()
                                         - t0)
        .count();
}

} // namespace

TraceCompression
traceCompression()
{
    return compression_mode.load(std::memory_order_relaxed);
}

void
setTraceCompression(TraceCompression mode)
{
    compression_mode.store(mode, std::memory_order_relaxed);
}

ExecBackendSelection
execBackendSelection()
{
    return backend_selection.load(std::memory_order_relaxed);
}

void
setExecBackendSelection(ExecBackendSelection sel)
{
    backend_selection.store(sel, std::memory_order_relaxed);
}

uint64_t
backendGateChecks()
{
    return gate_checks.load(std::memory_order_relaxed);
}

uint64_t
backendGateFallbacks()
{
    return gate_fallbacks.load(std::memory_order_relaxed);
}

uint64_t
threadedRecordings()
{
    return threaded_recordings.load(std::memory_order_relaxed);
}

void
resetExecBackendGate()
{
    std::lock_guard<std::mutex> lock(gate_mutex);
    gate_passed.clear();
}

void
RecordedTrace::replay(isa::TraceSink &sink) const
{
    if (compressed_) {
        comp.expandInto(sink);
        return;
    }
    for (auto r = packed.reader(); !r.done();)
        sink.emit(r.next());
}

sim::SimStats
RecordedTrace::replay(const sim::MachineConfig &cfg) const
{
    sim::OooScheduler sched(cfg);
    // Feed the concrete scheduler directly: packed decode lands in a
    // register-resident temporary for exactly one emit; compressed
    // expansion emits straight from the patched body template.
    if (compressed_) {
        comp.expandInto(sched);
    } else {
        for (auto r = packed.reader(); !r.done();) {
            isa::DynInst d = r.next();
            sched.emit(d);
        }
    }
    return sched.finish();
}

CompressOutcome
RecordedTrace::compress(TraceCompression mode)
{
    if (compressed_)
        return outcome_;
    if (mode == TraceCompression::Off) {
        outcome_ = CompressOutcome::NotAttempted;
        return outcome_;
    }
    CompressedTrace candidate;
    outcome_ = CompressedTrace::compress(packed, candidate);
    if (outcome_ != CompressOutcome::Accepted)
        return outcome_;
    if (mode == TraceCompression::Auto
        && candidate.storedBytes() >= packed.packedBytes()) {
        outcome_ = CompressOutcome::NoGain;
        return outcome_;
    }
    // The packed copy is dropped only after the expanded stream is
    // proven identical to it — downstream figures cannot change.
    if (!verify::verifyExpansion(packed, candidate)) {
        outcome_ = CompressOutcome::ExpandMismatch;
        return outcome_;
    }
    packedBytesBeforeDrop = packed.packedBytes();
    comp = std::move(candidate);
    compressed_ = true;
    packed.clear();
    return outcome_;
}

PackedTrace
RecordedTrace::toPacked() const
{
    if (!compressed_)
        return packed;
    PackedTrace out;
    out.reserve(comp.instructions());
    for (auto r = comp.reader(); !r.done();)
        out.append(r.next(), /*keepResult=*/true);
    return out;
}

RecordedTrace
recordKernelTrace(crypto::CipherId cipher, kernels::KernelVariant variant,
                  size_t bytes, kernels::KernelDirection direction,
                  RecordTiming *timing)
{
    const auto t_setup = std::chrono::steady_clock::now();
    Workload w = makeWorkload(cipher, bytes);
    // Decrypt kernels consume the reference ciphertext of the standard
    // plaintext, so the oracle below checks round-trip recovery.
    std::vector<uint8_t> input =
        direction == kernels::KernelDirection::Encrypt
            ? w.plaintext
            : verify::referenceProcess(cipher, w.key, w.iv, w.plaintext,
                                       kernels::KernelDirection::Encrypt);
    auto build = kernels::buildKernel(cipher, variant, w.key, w.iv, bytes,
                                      direction);
    const std::vector<uint8_t> image = kernels::toWordImage(cipher, input);

    const auto key = std::make_tuple(static_cast<int>(cipher),
                                     static_cast<int>(variant),
                                     static_cast<int>(direction));
    size_t reserve_insts = 0;
    {
        std::lock_guard<std::mutex> lock(estimate_mutex);
        auto it = insts_per_byte.find(key);
        if (it != insts_per_byte.end())
            reserve_insts = static_cast<size_t>(it->second * bytes) + 64;
    }

    const ExecBackendSelection sel =
        backend_selection.load(std::memory_order_relaxed);
    std::optional<bool> verdict; // unset: this kernel is ungated so far
    if (sel != ExecBackendSelection::Interpreter) {
        std::lock_guard<std::mutex> lock(gate_mutex);
        auto it = gate_passed.find(key);
        if (it != gate_passed.end())
            verdict = it->second;
    }

    RecordedTrace trace;
    if (reserve_insts)
        trace.reserveInsts(reserve_insts);

    // Workload synthesis + kernel build are backend-independent setup;
    // recordSeconds is only the producing run, timed below per path.
    const double setup_seconds = secondsSince(t_setup);
    double record_seconds = 0;
    double decode_seconds = 0;
    double gate_seconds = 0;
    bool used_threaded = false;
    // Whichever backend produced the adopted trace; the oracle reads
    // the output buffer from it.
    std::unique_ptr<isa::ExecBackend> ran;

    if (sel == ExecBackendSelection::Interpreter
        || (verdict && !*verdict)) {
        auto m = std::make_unique<isa::Machine>();
        build.install(*m, image);
        const auto t_run = std::chrono::steady_clock::now();
        m->run(build.program, &trace, 1ull << 32);
        record_seconds += secondsSince(t_run);
        ran = std::move(m);
    } else if (verdict && *verdict) {
        // Steady state: this kernel already proved stream identity.
        auto tm = std::make_unique<isa::ThreadedMachine>();
        build.install(*tm, image);
        const auto t_decode = std::chrono::steady_clock::now();
        tm->prepare(build.program);
        decode_seconds = secondsSince(t_decode);
        const auto t_run = std::chrono::steady_clock::now();
        tm->run(build.program, &trace, 1ull << 32);
        record_seconds += secondsSince(t_run);
        used_threaded = true;
        ran = std::move(tm);
    } else {
        // First threaded use of this kernel: record the interpreter
        // reference (results kept), run the threaded backend into its
        // own packed capture — through the same row fast path steady
        // state uses — then compare the two streams field for field,
        // results included. The comparison forwards the matching
        // stream into the returned trace, so the run that proves
        // identity is the run whose stream gets adopted. A trap
        // anywhere in the threaded run, a field divergence, or a
        // length difference falls back to the reference stream and
        // pins the kernel to the interpreter. An interpreter trap
        // propagates to the caller exactly as an interpreter-only
        // recording would.
        gate_checks.fetch_add(1, std::memory_order_relaxed);

        auto m = std::make_unique<isa::Machine>();
        build.install(*m, image);
        RefTraceSink ref;
        if (reserve_insts)
            ref.trace.reserve(reserve_insts);
        const auto t_gate = std::chrono::steady_clock::now();
        m->run(build.program, &ref, 1ull << 32);
        gate_seconds = secondsSince(t_gate);

        auto tm = std::make_unique<isa::ThreadedMachine>();
        build.install(*tm, image);
        const auto t_decode = std::chrono::steady_clock::now();
        tm->prepare(build.program);
        decode_seconds = secondsSince(t_decode);

        RefTraceSink cand;
        if (reserve_insts)
            cand.trace.reserve(reserve_insts);
        bool ok = true;
        const auto t_run = std::chrono::steady_clock::now();
        try {
            tm->run(build.program, &cand, 1ull << 32);
        } catch (const isa::Trap &) {
            ok = false;
        }
        record_seconds += secondsSince(t_run);

        const auto t_compare = std::chrono::steady_clock::now();
        if (ok) {
            verify::StreamMatchSink matcher(ref.trace, &trace);
            for (auto r = cand.trace.reader(); !r.done();)
                matcher.emit(r.next());
            ok = matcher.complete();
        }

        {
            std::lock_guard<std::mutex> lock(gate_mutex);
            gate_passed[key] = ok;
        }
        if (ok) {
            used_threaded = true;
            ran = std::move(tm);
        } else {
            gate_fallbacks.fetch_add(1, std::memory_order_relaxed);
            // Rebuild the returned trace from the reference stream:
            // byte-identical to an interpreter-only recording.
            trace = RecordedTrace();
            if (reserve_insts)
                trace.reserveInsts(reserve_insts);
            for (auto r = ref.trace.reader(); !r.done();)
                trace.emit(r.next());
            ran = std::move(m);
        }
        gate_seconds += secondsSince(t_compare);
    }

    functional_runs.fetch_add(1, std::memory_order_relaxed);
    if (used_threaded)
        threaded_recordings.fetch_add(1, std::memory_order_relaxed);

    const auto t_verify = std::chrono::steady_clock::now();
    verify::verifyKernelOutput(build, *ran, w.key, w.iv, input, direction);
    const double verify_seconds = secondsSince(t_verify);

    if (bytes > 0) {
        std::lock_guard<std::mutex> lock(estimate_mutex);
        insts_per_byte[key] =
            static_cast<double>(trace.instructions()) / bytes;
    }

    const auto t_compress = std::chrono::steady_clock::now();
    trace.compress(traceCompression());
    const double compress_seconds = secondsSince(t_compress);

    if (timing) {
        timing->setupSeconds = setup_seconds;
        timing->recordSeconds = record_seconds;
        timing->decodeSeconds = decode_seconds;
        timing->gateSeconds = gate_seconds;
        timing->verifySeconds = verify_seconds;
        timing->compressSeconds = compress_seconds;
    }
    return trace;
}

uint64_t
functionalRuns()
{
    return functional_runs.load(std::memory_order_relaxed);
}

} // namespace cryptarch::driver
