/**
 * @file
 * Crash-safe sweep execution: process-isolated workers, watchdog
 * deadlines, and the resumable checkpoint journal.
 *
 * ## Process pool
 *
 * runCellsProcess() forks POSIX worker processes (no exec — workers
 * inherit the cell vector, so only indices cross the pipes). The
 * parent partitions the pending cells into group-aligned batches (one
 * batch per (cipher, variant, bytes) TraceGroup, so a worker records
 * each kernel once and replays it per model, same as the thread pool)
 * and supervises a single-threaded poll loop:
 *
 *   parent -> worker   CMD frame:  magic, count, count x u32 indices
 *   worker -> parent   RES frame:  magic, index, payload length,
 *                                  FNV-1a checksum, payload
 *
 * The payload is the serialized SweepResult body (see codec below).
 * Every result frame is checksummed; a frame that fails validation
 * kills the worker and marks the in-flight cell Error rather than
 * trusting a corrupt stream.
 *
 * Fault handling, per the fail-soft sweep contract:
 *   - worker dies on a signal / exits mid-batch: the in-flight cell
 *     (the first one without a result) becomes Crashed with the
 *     signal or exit status in its message; the rest of the batch is
 *     requeued to surviving workers.
 *   - no result within the per-cell watchdog deadline: the worker is
 *     SIGKILLed and the in-flight cell becomes TimedOut; the rest of
 *     the batch is requeued.
 *   - dead workers are respawned while requeued work remains, up to
 *     SweepOptions::respawnBudget; past the budget, still-pending
 *     cells are marked Error ("respawn budget exhausted") and are NOT
 *     journaled, so a rerun retries them.
 *
 * Each worker death retires at least the in-flight cell, so a batch
 * whose every cell crashes deterministically still terminates after
 * one death per cell (budget permitting).
 *
 * ## Checkpoint journal
 *
 * An append-only file in the PackedTrace/CompressedTrace serialization
 * style: a versioned header binding the journal to its grid, then one
 * FNV-checksummed record per finished cell:
 *
 *   header  u32 magic "CSWJ", u32 version, u64 grid fingerprint,
 *           u64 cell count
 *   record  u32 cell index, u32 payload length, payload bytes,
 *           u64 FNV-1a over (index, length, payload)
 *
 * The grid fingerprint folds every cell's coordinates (cipher,
 * variant, session bytes, model name), so a journal can never replay
 * into a different sweep. Records are appended with one write() each
 * as cells finish — in either isolation mode — and loading tolerates
 * exactly one defect class: an incomplete trailing record (the
 * expected artifact of a SIGKILL mid-append), which is dropped and
 * truncated away. Everything else — short or bad header, wrong grid,
 * a bit-flipped record, an impossible index — raises JournalError and
 * the sweep falls back to a fresh run with a rewritten journal.
 * Resumed cells reuse their journaled results verbatim, which is what
 * makes a kill-and-resume BENCH_*.json byte-identical to an
 * uninterrupted run.
 *
 * ## Chaos fault points
 *
 * Worker cells contain an env-triggered fault hook for the chaos
 * harness (bench/chaos.cc): CRYPTARCH_SWEEP_CHAOS holds
 * ';'-separated "action@Cipher/Variant/Model" points (actions crash,
 * abort, exit, hang) evaluated in the worker immediately before the
 * matching cell executes. The hook is how crash/hang classification
 * and kill-and-resume are exercised without special builds; it never
 * fires unless the variable is set.
 */

#ifndef CRYPTARCH_DRIVER_PROCPOOL_HH
#define CRYPTARCH_DRIVER_PROCPOOL_HH

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "driver/sweep.hh"

namespace cryptarch::driver
{

/** What a checkpoint journal (or result payload) failed to validate. */
enum class JournalErrorKind : uint8_t
{
    BadMagic,     ///< file does not start with the journal magic
    BadVersion,   ///< unknown journal/codec version
    GridMismatch, ///< journal belongs to a different sweep grid
    Truncated,    ///< header (or a promised payload) cut short
    BadChecksum,  ///< record checksum mismatch (bit corruption)
    Inconsistent, ///< impossible index, length, or payload contents
    Io,           ///< host I/O failure reading or appending
};

/** Stable short name of a journal error kind ("bad-magic", ...). */
const char *journalErrorKindName(JournalErrorKind kind);

/**
 * A checkpoint journal or serialized result was rejected. Every
 * malformed-input path raises this typed error; runCells catches it,
 * warns, and falls back to a fresh run.
 */
class JournalError : public std::runtime_error
{
  public:
    JournalError(JournalErrorKind kind, const std::string &detail)
        : std::runtime_error("SweepJournal ["
                             + std::string(journalErrorKindName(kind))
                             + "]: " + detail),
          kind_(kind)
    {
    }

    JournalErrorKind kind() const { return kind_; }

  private:
    JournalErrorKind kind_;
};

/**
 * Serialize the non-coordinate body of @p r (outcome, worker,
 * message, full SimStats) as the versioned little-endian payload the
 * pipe protocol and the journal share. Coordinates are never encoded:
 * both consumers already know the cell and refill them, so a payload
 * cannot disagree with its grid position.
 */
std::vector<uint8_t> serializeResultPayload(const SweepResult &r);

/**
 * Decode a serializeResultPayload() stream into @p r, leaving the
 * coordinate fields untouched. Throws JournalError (BadVersion /
 * Truncated / Inconsistent) on any defect, including trailing bytes.
 */
void deserializeResultPayload(std::span<const uint8_t> payload,
                              SweepResult &r);

/**
 * FNV-1a fingerprint of a cell list's coordinates. Journals store it
 * so a resume against a different grid is a typed GridMismatch, not
 * silently wrong results.
 */
uint64_t gridFingerprint(const std::vector<SweepCell> &cells);

/**
 * The append-only checkpoint journal. One instance per sweep; the
 * thread pool serializes append() under its own mutex, the process
 * pool appends from its single-threaded supervisor loop.
 */
class SweepJournal
{
  public:
    static constexpr uint32_t magic = 0x4A575343; // "CSWJ" little-endian
    static constexpr uint32_t version = 1;
    /** Sanity bound on a record's payload length. */
    static constexpr uint32_t max_payload = 1u << 24;

    SweepJournal() = default;
    ~SweepJournal();
    SweepJournal(const SweepJournal &) = delete;
    SweepJournal &operator=(const SweepJournal &) = delete;

    /**
     * Open @p path for a grid of @p cellCount cells fingerprinted by
     * @p fingerprint, loading every complete valid record (available
     * afterwards via loadedRecords()) and truncating away a partial
     * trailing record. A missing or empty file becomes a fresh
     * journal. Throws JournalError on corruption; the instance is
     * closed afterwards and openFresh() is the recovery path.
     */
    void open(const std::string &path, uint64_t fingerprint,
              uint64_t cellCount);

    /** Open @p path discarding any existing contents (fresh header). */
    void openFresh(const std::string &path, uint64_t fingerprint,
                   uint64_t cellCount);

    bool isOpen() const { return fd_ >= 0; }

    /** (cell index, payload) for each record open() accepted. */
    const std::vector<std::pair<uint32_t, std::vector<uint8_t>>> &
    loadedRecords() const
    {
        return loaded_;
    }

    /**
     * Append one finished cell as a single write(), so a kill can
     * only ever leave a partial *trailing* record. Throws
     * JournalError(Io) when the host write fails.
     */
    void append(uint32_t index, std::span<const uint8_t> payload);

  private:
    void close();

    int fd_ = -1;
    std::vector<std::pair<uint32_t, std::vector<uint8_t>>> loaded_;
};

/** Chaos fault actions (see the file comment). */
enum class ChaosAction : uint8_t
{
    None,  ///< no fault point for this cell
    Crash, ///< raise SIGSEGV before the cell runs
    Abort, ///< std::abort() before the cell runs
    Exit,  ///< _exit(3) before the cell runs
    Hang,  ///< block forever (watchdog food)
};

/** One parsed "action@Cipher/Variant/Model" fault point. */
struct ChaosPoint
{
    ChaosAction action = ChaosAction::None;
    std::string cipher;
    std::string variant;
    std::string model;
};

/**
 * Parse a CRYPTARCH_SWEEP_CHAOS spec. Malformed points are dropped
 * (the hook is test tooling; a typo must not take down a sweep).
 */
std::vector<ChaosPoint> parseChaosSpec(std::string_view spec);

/** The action matching @p cell, None when nothing matches. */
ChaosAction chaosActionFor(const std::vector<ChaosPoint> &points,
                           const SweepCell &cell);

/**
 * Execute the cells listed in @p todo (indices into @p cells) under
 * process isolation, writing into the pre-shelled @p results and
 * appending each finished cell to @p journal when non-null. Called by
 * runCells — not directly by benches — after journal resume has
 * already filtered @p todo.
 */
void runCellsProcess(const std::vector<SweepCell> &cells,
                     const std::vector<uint32_t> &todo,
                     const SweepOptions &options,
                     std::vector<SweepResult> &results,
                     SweepJournal *journal);

} // namespace cryptarch::driver

#endif // CRYPTARCH_DRIVER_PROCPOOL_HH
