#include "driver/json.hh"

#include <array>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <tuple>

namespace cryptarch::driver
{

namespace
{

std::string
escape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            // Escape through unsigned char: a plain (signed) char
            // sign-extends through the %x varargs promotion, turning
            // 0x80 into "￿ff80". High-bit bytes are escaped too —
            // the emitter's strings are ASCII identifiers, so a stray
            // non-ASCII byte must surface as a visible \u00xx escape
            // rather than corrupt the file's UTF-8.
            if (const auto u = static_cast<unsigned char>(c);
                u < 0x20 || u >= 0x7f) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", u);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
cacheJson(std::ostringstream &os, const char *name,
          const sim::CacheStats &c)
{
    os << "\"" << name << "\": {\"accesses\": " << c.accesses
       << ", \"misses\": " << c.misses << "}";
}

void
stallJson(std::ostringstream &os, const sim::StallVector &v)
{
    os << "{";
    for (size_t c = 0; c < sim::num_stall_causes; c++)
        os << (c ? ", " : "") << "\""
           << sim::stall_cause_names[c] << "\": " << v[c];
    os << "}";
}

} // namespace

std::string
toJson(const sim::SimStats &stats)
{
    // Per-class keys come from the one OpClass-name table; a new
    // OpClass extends both the array and the table or fails to build.
    static_assert(std::tuple_size_v<decltype(stats.classCounts)>
                      == isa::num_op_classes,
                  "classCounts must cover every OpClass");

    std::ostringstream os;
    os << "{\"instructions\": " << stats.instructions
       << ", \"cycles\": " << stats.cycles << ", \"ipc\": " << stats.ipc()
       << ", \"cond_branches\": " << stats.condBranches
       << ", \"mispredicts\": " << stats.mispredicts
       << ", \"loads\": " << stats.loads << ", \"stores\": " << stats.stores
       << ", \"sbox_accesses\": " << stats.sboxAccesses
       << ", \"sbox_cache_hits\": " << stats.sboxCacheHits
       << ", \"sbox_cache_accesses\": " << stats.sboxCacheAccesses
       << ", \"sbox_cache_misses\": " << stats.sboxCacheMisses
       << ", \"sbox_caches\": [";
    for (size_t i = 0; i < stats.sboxCaches.size(); i++) {
        os << (i ? ", " : "") << "{\"accesses\": "
           << stats.sboxCaches[i].accesses << ", \"misses\": "
           << stats.sboxCaches[i].misses << "}";
    }
    os << "], \"class_counts\": {";
    for (size_t i = 0; i < stats.classCounts.size(); i++)
        os << (i ? ", " : "") << "\""
           << isa::opClassName(static_cast<isa::OpClass>(i))
           << "\": " << stats.classCounts[i];
    os << "}, \"stall_cycles\": ";
    stallJson(os, stats.stallCycles);
    // Per-class stall breakdowns, for classes that stalled at all.
    os << ", \"stall_by_class\": {";
    bool first = true;
    for (size_t i = 0; i < stats.stallByClass.size(); i++) {
        const auto &v = stats.stallByClass[i];
        uint64_t total = 0;
        for (uint64_t n : v)
            total += n;
        if (!total)
            continue;
        os << (first ? "" : ", ") << "\""
           << isa::opClassName(static_cast<isa::OpClass>(i)) << "\": ";
        stallJson(os, v);
        first = false;
    }
    os << "}, ";
    cacheJson(os, "l1", stats.l1);
    os << ", ";
    cacheJson(os, "l2", stats.l2);
    os << ", ";
    cacheJson(os, "tlb", stats.tlb);
    os << "}";
    return os.str();
}

void
writeBenchJson(const std::string &path, std::string_view bench,
               const std::vector<SweepResult> &results)
{
    writeBenchJson(path, bench, results, {});
}

void
writeBenchJson(const std::string &path, std::string_view bench,
               const std::vector<SweepResult> &results,
               const std::vector<std::string> &resultExtras)
{
    std::ofstream out(path);
    if (!out)
        throw std::runtime_error("cannot write " + path);

    std::array<uint64_t, num_cell_outcomes> counts{};
    for (const auto &r : results)
        counts[static_cast<size_t>(r.outcome)]++;

    out << "{\n  \"bench\": \"" << escape(bench) << "\",\n"
        << "  \"schema\": 5,\n  \"outcomes\": {";
    for (size_t o = 0; o < num_cell_outcomes; o++)
        out << (o ? ", " : "") << "\""
            << cellOutcomeName(static_cast<CellOutcome>(o))
            << "\": " << counts[o];
    out << "},\n  \"results\": [\n";
    for (size_t i = 0; i < results.size(); i++) {
        const auto &r = results[i];
        out << "    {\"cipher\": \""
            << escape(crypto::cipherInfo(r.cipher).name) << "\", \"variant\": \""
            << escape(kernels::variantName(r.variant)) << "\", \"model\": \""
            << escape(r.model) << "\", \"session_bytes\": " << r.bytes
            << ", \"outcome\": \"" << cellOutcomeName(r.outcome) << "\"";
        if (!r.message.empty())
            out << ",\n     \"message\": \"" << escape(r.message) << "\"";
        if (r.worker >= 0)
            out << ",\n     \"worker\": " << r.worker;
        if (i < resultExtras.size() && !resultExtras[i].empty())
            out << ",\n     " << resultExtras[i];
        out << ",\n     \"stats\": " << toJson(r.stats) << "}"
            << (i + 1 < results.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    if (!out.flush())
        throw std::runtime_error("failed writing " + path);
}

} // namespace cryptarch::driver
