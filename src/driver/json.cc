#include "driver/json.hh"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace cryptarch::driver
{

namespace
{

std::string
escape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
cacheJson(std::ostringstream &os, const char *name,
          const sim::CacheStats &c)
{
    os << "\"" << name << "\": {\"accesses\": " << c.accesses
       << ", \"misses\": " << c.misses << "}";
}

} // namespace

std::string
toJson(const sim::SimStats &stats)
{
    std::ostringstream os;
    os << "{\"instructions\": " << stats.instructions
       << ", \"cycles\": " << stats.cycles << ", \"ipc\": " << stats.ipc()
       << ", \"cond_branches\": " << stats.condBranches
       << ", \"mispredicts\": " << stats.mispredicts
       << ", \"loads\": " << stats.loads << ", \"stores\": " << stats.stores
       << ", \"sbox_accesses\": " << stats.sboxAccesses
       << ", \"sbox_cache_hits\": " << stats.sboxCacheHits
       << ", \"class_counts\": [";
    for (size_t i = 0; i < stats.classCounts.size(); i++)
        os << (i ? ", " : "") << stats.classCounts[i];
    os << "], ";
    cacheJson(os, "l1", stats.l1);
    os << ", ";
    cacheJson(os, "l2", stats.l2);
    os << ", ";
    cacheJson(os, "tlb", stats.tlb);
    os << "}";
    return os.str();
}

void
writeBenchJson(const std::string &path, std::string_view bench,
               const std::vector<SweepResult> &results)
{
    std::ofstream out(path);
    if (!out)
        throw std::runtime_error("cannot write " + path);

    out << "{\n  \"bench\": \"" << escape(bench) << "\",\n"
        << "  \"schema\": 1,\n  \"results\": [\n";
    for (size_t i = 0; i < results.size(); i++) {
        const auto &r = results[i];
        out << "    {\"cipher\": \""
            << escape(crypto::cipherInfo(r.cipher).name) << "\", \"variant\": \""
            << escape(kernels::variantName(r.variant)) << "\", \"model\": \""
            << escape(r.model) << "\", \"session_bytes\": " << r.bytes
            << ",\n     \"stats\": " << toJson(r.stats) << "}"
            << (i + 1 < results.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    if (!out.flush())
        throw std::runtime_error("failed writing " + path);
}

} // namespace cryptarch::driver
