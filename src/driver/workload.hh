/**
 * @file
 * Deterministic bench workload material (keys, IVs, plaintext).
 *
 * Moved out of bench/common.hh so the driver library and the legacy
 * bench helpers generate byte-identical sessions: a trace the sweep
 * runner records is a trace of exactly the workload the single-model
 * helpers time.
 */

#ifndef CRYPTARCH_DRIVER_WORKLOAD_HH
#define CRYPTARCH_DRIVER_WORKLOAD_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "crypto/cipher.hh"

namespace cryptarch::driver
{

/** The paper's standard session length (section 4.2). */
constexpr size_t session_bytes = 4096;

/** Deterministic key material for a cipher. */
struct Workload
{
    std::vector<uint8_t> key;
    std::vector<uint8_t> iv;
    std::vector<uint8_t> plaintext;
};

/**
 * Key/IV/plaintext for @p id, seeded per cipher so every bench and
 * test sees the same session for the same (cipher, bytes) pair.
 */
Workload makeWorkload(crypto::CipherId id, size_t bytes = session_bytes,
                      uint64_t seed = 0xBE7CB);

/** All eight cipher ids in Table 1 order. */
std::vector<crypto::CipherId> allCiphers();

} // namespace cryptarch::driver

#endif // CRYPTARCH_DRIVER_WORKLOAD_HH
