#include "driver/procpool.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <map>
#include <thread>

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "driver/cell_exec.hh"
#include "util/checksum.hh"

namespace cryptarch::driver
{

const char *
journalErrorKindName(JournalErrorKind kind)
{
    switch (kind) {
      case JournalErrorKind::BadMagic: return "bad-magic";
      case JournalErrorKind::BadVersion: return "bad-version";
      case JournalErrorKind::GridMismatch: return "grid-mismatch";
      case JournalErrorKind::Truncated: return "truncated";
      case JournalErrorKind::BadChecksum: return "bad-checksum";
      case JournalErrorKind::Inconsistent: return "inconsistent";
      case JournalErrorKind::Io: return "io";
    }
    return "?";
}

namespace
{

// ---------------------------------------------------------------------
// Little-endian byte codec shared by the result payload, the pipe
// frames, and the journal (the PackedTrace serialization convention).

void
putU16(std::vector<uint8_t> &b, uint16_t v)
{
    b.push_back(static_cast<uint8_t>(v));
    b.push_back(static_cast<uint8_t>(v >> 8));
}

void
putU32(std::vector<uint8_t> &b, uint32_t v)
{
    for (int i = 0; i < 4; i++)
        b.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
putU64(std::vector<uint8_t> &b, uint64_t v)
{
    for (int i = 0; i < 8; i++)
        b.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
putString(std::vector<uint8_t> &b, const std::string &s)
{
    putU32(b, static_cast<uint32_t>(s.size()));
    b.insert(b.end(), s.begin(), s.end());
}

uint32_t
loadU32(const uint8_t *p)
{
    uint32_t v = 0;
    for (int i = 0; i < 4; i++)
        v |= static_cast<uint32_t>(p[i]) << (8 * i);
    return v;
}

uint64_t
loadU64(const uint8_t *p)
{
    uint64_t v = 0;
    for (int i = 0; i < 8; i++)
        v |= static_cast<uint64_t>(p[i]) << (8 * i);
    return v;
}

/** Longest string the payload codec accepts (error messages). */
constexpr uint32_t max_string_bytes = 1u << 20;

/** Result payload codec version (bumped with SimStats changes). */
constexpr uint16_t payload_version = 1;

/** Bounds-checked sequential payload reader. */
class ByteReader
{
  public:
    explicit ByteReader(std::span<const uint8_t> bytes) : s(bytes) {}

    uint8_t
    getU8(const char *what)
    {
        need(1, what);
        return s[pos++];
    }

    uint16_t
    getU16(const char *what)
    {
        need(2, what);
        auto v = static_cast<uint16_t>(s[pos] | (s[pos + 1] << 8));
        pos += 2;
        return v;
    }

    uint32_t
    getU32(const char *what)
    {
        need(4, what);
        uint32_t v = loadU32(s.data() + pos);
        pos += 4;
        return v;
    }

    uint64_t
    getU64(const char *what)
    {
        need(8, what);
        uint64_t v = loadU64(s.data() + pos);
        pos += 8;
        return v;
    }

    std::string
    getString(const char *what)
    {
        uint32_t len = getU32(what);
        if (len > max_string_bytes)
            throw JournalError(JournalErrorKind::Inconsistent,
                               std::string("impossible string length in ")
                                   + what);
        need(len, what);
        std::string out(reinterpret_cast<const char *>(s.data() + pos), len);
        pos += len;
        return out;
    }

    bool done() const { return pos == s.size(); }

  private:
    void
    need(size_t n, const char *what)
    {
        if (s.size() - pos < n)
            throw JournalError(JournalErrorKind::Truncated,
                               std::string("payload cut short reading ")
                                   + what);
    }

    std::span<const uint8_t> s;
    size_t pos = 0;
};

// ---------------------------------------------------------------------
// Full-buffer pipe/file I/O (EINTR-safe).

bool
writeFull(int fd, const void *data, size_t n)
{
    const auto *p = static_cast<const uint8_t *>(data);
    while (n) {
        ssize_t w = ::write(fd, p, n);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += w;
        n -= static_cast<size_t>(w);
    }
    return true;
}

/** False on EOF or error before @p n bytes arrive. */
bool
readFull(int fd, void *data, size_t n)
{
    auto *p = static_cast<uint8_t *>(data);
    while (n) {
        ssize_t r = ::read(fd, p, n);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (r == 0)
            return false;
        p += r;
        n -= static_cast<size_t>(r);
    }
    return true;
}

} // namespace

// ---------------------------------------------------------------------
// Result payload codec.

std::vector<uint8_t>
serializeResultPayload(const SweepResult &r)
{
    std::vector<uint8_t> b;
    b.reserve(512 + r.message.size());
    putU16(b, payload_version);
    b.push_back(static_cast<uint8_t>(r.outcome));
    putU32(b, static_cast<uint32_t>(r.worker));
    putString(b, r.message);

    const sim::SimStats &st = r.stats;
    putString(b, st.model);
    putU64(b, st.instructions);
    putU64(b, st.cycles);
    putU64(b, st.condBranches);
    putU64(b, st.mispredicts);
    putU64(b, st.loads);
    putU64(b, st.stores);
    putU64(b, st.sboxAccesses);
    putU64(b, st.sboxCacheHits);
    putU64(b, st.sboxCacheAccesses);
    putU64(b, st.sboxCacheMisses);
    putU32(b, static_cast<uint32_t>(st.sboxCaches.size()));
    for (const auto &c : st.sboxCaches) {
        putU64(b, c.accesses);
        putU64(b, c.misses);
    }
    for (const sim::CacheStats *c : {&st.l1, &st.l2, &st.tlb}) {
        putU64(b, c->accesses);
        putU64(b, c->misses);
    }
    putU32(b, static_cast<uint32_t>(st.classCounts.size()));
    for (uint64_t v : st.classCounts)
        putU64(b, v);
    putU32(b, static_cast<uint32_t>(sim::num_stall_causes));
    for (uint64_t v : st.stallCycles)
        putU64(b, v);
    for (const auto &perClass : st.stallByClass)
        for (uint64_t v : perClass)
            putU64(b, v);
    return b;
}

void
deserializeResultPayload(std::span<const uint8_t> payload, SweepResult &r)
{
    ByteReader in(payload);
    if (in.getU16("version") != payload_version)
        throw JournalError(JournalErrorKind::BadVersion,
                           "unknown result payload version");
    const uint8_t outcome = in.getU8("outcome");
    if (outcome >= num_cell_outcomes)
        throw JournalError(JournalErrorKind::Inconsistent,
                           "impossible cell outcome");
    const auto worker = static_cast<int32_t>(in.getU32("worker"));
    std::string message = in.getString("message");

    sim::SimStats st;
    st.model = in.getString("stats model");
    st.instructions = in.getU64("instructions");
    st.cycles = in.getU64("cycles");
    st.condBranches = in.getU64("cond branches");
    st.mispredicts = in.getU64("mispredicts");
    st.loads = in.getU64("loads");
    st.stores = in.getU64("stores");
    st.sboxAccesses = in.getU64("sbox accesses");
    st.sboxCacheHits = in.getU64("sbox cache hits");
    st.sboxCacheAccesses = in.getU64("sbox cache accesses");
    st.sboxCacheMisses = in.getU64("sbox cache misses");
    const uint32_t nSbox = in.getU32("sbox cache count");
    if (nSbox > 4096)
        throw JournalError(JournalErrorKind::Inconsistent,
                           "impossible SBox cache count");
    st.sboxCaches.resize(nSbox);
    for (auto &c : st.sboxCaches) {
        c.accesses = in.getU64("sbox cache accesses[i]");
        c.misses = in.getU64("sbox cache misses[i]");
    }
    for (sim::CacheStats *c : {&st.l1, &st.l2, &st.tlb}) {
        c->accesses = in.getU64("cache accesses");
        c->misses = in.getU64("cache misses");
    }
    if (in.getU32("op-class count") != isa::num_op_classes)
        throw JournalError(JournalErrorKind::Inconsistent,
                           "op-class count mismatch (foreign build?)");
    for (auto &v : st.classCounts)
        v = in.getU64("class count");
    if (in.getU32("stall-cause count") != sim::num_stall_causes)
        throw JournalError(JournalErrorKind::Inconsistent,
                           "stall-cause count mismatch (foreign build?)");
    for (auto &v : st.stallCycles)
        v = in.getU64("stall cycles");
    for (auto &perClass : st.stallByClass)
        for (auto &v : perClass)
            v = in.getU64("per-class stall cycles");
    if (!in.done())
        throw JournalError(JournalErrorKind::Inconsistent,
                           "trailing bytes after payload");

    r.outcome = static_cast<CellOutcome>(outcome);
    r.worker = worker;
    r.message = std::move(message);
    r.stats = std::move(st);
}

uint64_t
gridFingerprint(const std::vector<SweepCell> &cells)
{
    std::vector<uint8_t> b;
    b.reserve(32 * cells.size() + 8);
    putU64(b, cells.size());
    for (const auto &cell : cells) {
        putU32(b, static_cast<uint32_t>(cell.cipher));
        putU32(b, static_cast<uint32_t>(cell.variant));
        putU64(b, cell.bytes);
        putString(b, cell.model.name);
    }
    return util::fnv1a64(b.data(), b.size());
}

// ---------------------------------------------------------------------
// Checkpoint journal.

namespace
{

/** Journal header: magic, version, grid fingerprint, cell count. */
constexpr size_t journal_header_bytes = 4 + 4 + 8 + 8;
/** Per-record framing: index, payload length, trailing checksum. */
constexpr size_t record_overhead_bytes = 4 + 4 + 8;

std::vector<uint8_t>
journalHeader(uint64_t fingerprint, uint64_t cellCount)
{
    std::vector<uint8_t> b;
    b.reserve(journal_header_bytes);
    putU32(b, SweepJournal::magic);
    putU32(b, SweepJournal::version);
    putU64(b, fingerprint);
    putU64(b, cellCount);
    return b;
}

} // namespace

SweepJournal::~SweepJournal()
{
    close();
}

void
SweepJournal::close()
{
    if (fd_ >= 0)
        ::close(fd_);
    fd_ = -1;
}

void
SweepJournal::open(const std::string &path, uint64_t fingerprint,
                   uint64_t cellCount)
{
    close();
    loaded_.clear();
    fd_ = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
    if (fd_ < 0)
        throw JournalError(JournalErrorKind::Io, "cannot open " + path + ": "
                                                     + std::strerror(errno));
    auto fail = [&](JournalErrorKind kind,
                    const std::string &detail) -> void {
        close();
        loaded_.clear();
        throw JournalError(kind, detail);
    };

    // Journals are one small record per cell: read whole, then parse.
    std::vector<uint8_t> data;
    uint8_t chunk[65536];
    for (;;) {
        ssize_t n = ::read(fd_, chunk, sizeof(chunk));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            fail(JournalErrorKind::Io,
                 std::string("read failed: ") + std::strerror(errno));
        }
        if (n == 0)
            break;
        data.insert(data.end(), chunk, chunk + n);
    }

    if (data.empty()) {
        // Missing or empty file: a fresh journal.
        auto header = journalHeader(fingerprint, cellCount);
        if (!writeFull(fd_, header.data(), header.size()))
            fail(JournalErrorKind::Io, "cannot write journal header");
        return;
    }

    if (data.size() < journal_header_bytes)
        fail(JournalErrorKind::Truncated, "header cut short");
    if (loadU32(&data[0]) != magic)
        fail(JournalErrorKind::BadMagic, "not a sweep journal");
    if (loadU32(&data[4]) != version)
        fail(JournalErrorKind::BadVersion, "unknown journal version");
    if (loadU64(&data[8]) != fingerprint || loadU64(&data[16]) != cellCount)
        fail(JournalErrorKind::GridMismatch,
             "journal belongs to a different sweep grid");

    std::vector<char> seen(cellCount, 0);
    size_t off = journal_header_bytes;
    while (data.size() - off >= record_overhead_bytes) {
        const uint8_t *rec = data.data() + off;
        const uint32_t index = loadU32(rec);
        const uint32_t len = loadU32(rec + 4);
        if (len > max_payload)
            fail(JournalErrorKind::Inconsistent, "impossible record length");
        if (data.size() - off < record_overhead_bytes + len)
            break; // partial trailing record: the SIGKILL-mid-append case
        const uint64_t sum = util::fnv1a64(rec, 8 + len);
        if (sum != loadU64(rec + 8 + len))
            fail(JournalErrorKind::BadChecksum, "record checksum mismatch");
        if (index >= cellCount)
            fail(JournalErrorKind::Inconsistent, "record index out of range");
        if (seen[index])
            fail(JournalErrorKind::Inconsistent, "duplicate cell record");
        seen[index] = 1;
        loaded_.emplace_back(index,
                             std::vector<uint8_t>(rec + 8, rec + 8 + len));
        off += record_overhead_bytes + len;
    }

    // Drop the partial tail (if any) so appends start on a record
    // boundary, then position at the end.
    if (off < data.size() && ::ftruncate(fd_, static_cast<off_t>(off)) != 0)
        fail(JournalErrorKind::Io, "cannot truncate partial record");
    if (::lseek(fd_, 0, SEEK_END) < 0)
        fail(JournalErrorKind::Io, "seek failed");
}

void
SweepJournal::openFresh(const std::string &path, uint64_t fingerprint,
                        uint64_t cellCount)
{
    close();
    loaded_.clear();
    fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
    if (fd_ < 0)
        throw JournalError(JournalErrorKind::Io, "cannot open " + path + ": "
                                                     + std::strerror(errno));
    auto header = journalHeader(fingerprint, cellCount);
    if (!writeFull(fd_, header.data(), header.size())) {
        close();
        throw JournalError(JournalErrorKind::Io,
                           "cannot write journal header");
    }
}

void
SweepJournal::append(uint32_t index, std::span<const uint8_t> payload)
{
    if (fd_ < 0)
        return;
    std::vector<uint8_t> rec;
    rec.reserve(record_overhead_bytes + payload.size());
    putU32(rec, index);
    putU32(rec, static_cast<uint32_t>(payload.size()));
    rec.insert(rec.end(), payload.begin(), payload.end());
    putU64(rec, util::fnv1a64(rec.data(), rec.size()));
    // One write per record: a kill can only sever the trailing record,
    // which open() tolerates and truncates away.
    if (!writeFull(fd_, rec.data(), rec.size()))
        throw JournalError(JournalErrorKind::Io,
                           std::string("append failed: ")
                               + std::strerror(errno));
}

// ---------------------------------------------------------------------
// Chaos fault points.

std::vector<ChaosPoint>
parseChaosSpec(std::string_view spec)
{
    std::vector<ChaosPoint> points;
    for (size_t pos = 0; pos < spec.size();) {
        size_t end = spec.find(';', pos);
        if (end == std::string_view::npos)
            end = spec.size();
        const std::string_view tok = spec.substr(pos, end - pos);
        pos = end + 1;
        const size_t at = tok.find('@');
        if (at == std::string_view::npos)
            continue;
        const std::string_view action = tok.substr(0, at);
        const std::string_view target = tok.substr(at + 1);
        const size_t s1 = target.find('/');
        if (s1 == std::string_view::npos)
            continue;
        const size_t s2 = target.find('/', s1 + 1);
        if (s2 == std::string_view::npos)
            continue;
        ChaosPoint p;
        if (action == "crash")
            p.action = ChaosAction::Crash;
        else if (action == "abort")
            p.action = ChaosAction::Abort;
        else if (action == "exit")
            p.action = ChaosAction::Exit;
        else if (action == "hang")
            p.action = ChaosAction::Hang;
        else
            continue; // malformed points are dropped, not fatal
        p.cipher = std::string(target.substr(0, s1));
        p.variant = std::string(target.substr(s1 + 1, s2 - s1 - 1));
        p.model = std::string(target.substr(s2 + 1));
        points.push_back(std::move(p));
    }
    return points;
}

ChaosAction
chaosActionFor(const std::vector<ChaosPoint> &points, const SweepCell &cell)
{
    if (points.empty())
        return ChaosAction::None;
    const std::string &cipher = crypto::cipherInfo(cell.cipher).name;
    const std::string variant = kernels::variantName(cell.variant);
    for (const auto &p : points)
        if (p.cipher == cipher && p.variant == variant
            && p.model == cell.model.name)
            return p.action;
    return ChaosAction::None;
}

namespace
{

/** Fire a chaos fault point. Returns only for None. */
void
applyChaos(ChaosAction action)
{
    switch (action) {
      case ChaosAction::None:
        return;
      case ChaosAction::Crash:
        ::raise(SIGSEGV);
        ::_exit(99); // sanitizers may turn the signal into an exit
      case ChaosAction::Abort:
        std::abort();
      case ChaosAction::Exit:
        ::_exit(3);
      case ChaosAction::Hang:
        for (;;)
            ::pause(); // watchdog food; SIGKILL is the only way out
    }
}

// ---------------------------------------------------------------------
// Pipe protocol.

constexpr uint32_t cmd_magic = 0x42575343; // "CSWB" little-endian
constexpr uint32_t res_magic = 0x52575343; // "CSWR" little-endian
/** Result frame header: magic, cell index, payload length, checksum. */
constexpr size_t res_header_bytes = 4 + 4 + 4 + 8;

/**
 * Worker process main loop: claim batches from the command pipe, run
 * each cell (chaos hook first), stream back one checksummed result
 * frame per cell. Exits on command-pipe EOF (orderly shutdown), a
 * malformed command, or a dead parent.
 */
[[noreturn]] void
workerMain(int cmdFd, int resFd, const std::vector<SweepCell> &cells)
{
    const char *chaosEnv = std::getenv("CRYPTARCH_SWEEP_CHAOS");
    const auto chaos = parseChaosSpec(chaosEnv ? chaosEnv : "");

    for (;;) {
        uint8_t hdr[8];
        if (!readFull(cmdFd, hdr, sizeof(hdr)))
            break; // EOF: orderly shutdown
        if (loadU32(hdr) != cmd_magic)
            ::_exit(4);
        const uint32_t count = loadU32(hdr + 4);
        if (count == 0 || count > cells.size())
            ::_exit(4);
        std::vector<uint8_t> raw(size_t{count} * 4);
        if (!readFull(cmdFd, raw.data(), raw.size()))
            break;

        // Batches are group-aligned: one TraceGroup records the
        // kernel once, every cell of the batch replays it.
        detail::TraceGroup group;
        for (uint32_t k = 0; k < count; k++) {
            const uint32_t idx = loadU32(&raw[size_t{k} * 4]);
            if (idx >= cells.size())
                ::_exit(4);
            const SweepCell &cell = cells[idx];
            applyChaos(chaosActionFor(chaos, cell));
            SweepResult r = detail::makeResultShell(cell);
            detail::executeCell(cell, group, r);

            const auto payload = serializeResultPayload(r);
            std::vector<uint8_t> frame;
            frame.reserve(res_header_bytes + payload.size());
            putU32(frame, res_magic);
            putU32(frame, idx);
            putU32(frame, static_cast<uint32_t>(payload.size()));
            uint64_t sum = util::fnv1a64(frame.data() + 4, 8);
            sum = util::fnv1a64(payload.data(), payload.size(), sum);
            putU64(frame, sum);
            frame.insert(frame.end(), payload.begin(), payload.end());
            if (!writeFull(resFd, frame.data(), frame.size()))
                ::_exit(0); // parent went away
        }
    }
    ::_exit(0);
}

/** Parent-side state of one worker slot. */
struct WorkerProc
{
    pid_t pid = -1;
    int cmdFd = -1;
    int resFd = -1;
    bool alive = false;
    std::vector<uint32_t> batch;
    size_t got = 0; ///< results received for the current batch
    std::chrono::steady_clock::time_point deadline{};
    std::vector<uint8_t> buf; ///< unparsed result-pipe bytes

    bool busy() const { return alive && got < batch.size(); }
};

/** Fork a worker into slot @p w. The child closes the other slots'
 *  pipe ends (no exec, so nothing is CLOEXEC'd for us). */
bool
spawnWorker(WorkerProc &w, std::vector<WorkerProc> &all,
            const std::vector<SweepCell> &cells)
{
    int toChild[2];
    int fromChild[2];
    if (::pipe(toChild) != 0)
        return false;
    if (::pipe(fromChild) != 0) {
        ::close(toChild[0]);
        ::close(toChild[1]);
        return false;
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
        ::close(toChild[0]);
        ::close(toChild[1]);
        ::close(fromChild[0]);
        ::close(fromChild[1]);
        return false;
    }
    if (pid == 0) {
        ::close(toChild[1]);
        ::close(fromChild[0]);
        for (const auto &other : all)
            if (other.alive) {
                ::close(other.cmdFd);
                ::close(other.resFd);
            }
        workerMain(toChild[0], fromChild[1], cells);
    }
    ::close(toChild[0]);
    ::close(fromChild[1]);
    w.pid = pid;
    w.cmdFd = toChild[1];
    w.resFd = fromChild[0];
    w.alive = true;
    w.batch.clear();
    w.got = 0;
    w.buf.clear();
    return true;
}

} // namespace

// ---------------------------------------------------------------------
// The supervisor.

void
runCellsProcess(const std::vector<SweepCell> &cells,
                const std::vector<uint32_t> &todo,
                const SweepOptions &options,
                std::vector<SweepResult> &results, SweepJournal *journal)
{
    using Clock = std::chrono::steady_clock;

    // Group-aligned batches in first-appearance order, so results are
    // deterministic and each batch shares one recorded trace.
    std::map<detail::GroupKey, size_t> batchOf;
    std::vector<std::vector<uint32_t>> batchList;
    for (uint32_t i : todo) {
        auto [it, fresh] =
            batchOf.try_emplace(detail::keyOf(cells[i]), batchList.size());
        if (fresh)
            batchList.emplace_back();
        batchList[it->second].push_back(i);
    }
    std::deque<std::vector<uint32_t>> queue(batchList.begin(),
                                            batchList.end());

    const double deadlineSecs = options.cellDeadlineSeconds > 0
        ? options.cellDeadlineSeconds
        : default_cell_deadline_seconds;
    const auto deadlineDur = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(deadlineSecs));

    unsigned want = options.threads ? options.threads
                                    : std::thread::hardware_concurrency();
    want = std::max(1u, std::min<unsigned>(
                            want, static_cast<unsigned>(queue.size())));

    // A worker dying between frames must surface as EPIPE on our next
    // write, not kill the whole bench with SIGPIPE.
    struct sigaction ignorePipe{};
    struct sigaction oldPipe{};
    ignorePipe.sa_handler = SIG_IGN;
    ::sigaction(SIGPIPE, &ignorePipe, &oldPipe);

    std::vector<WorkerProc> workers(want);
    unsigned respawnsLeft = options.respawnBudget;

    auto journalAppend = [&](uint32_t idx) {
        if (!journal)
            return;
        const auto payload = serializeResultPayload(results[idx]);
        journal->append(idx, payload);
    };

    auto finalizeCell = [&](uint32_t idx, CellOutcome outcome,
                            std::string message, int workerIndex,
                            bool journalIt) {
        SweepResult r = detail::makeResultShell(cells[idx]);
        r.outcome = outcome;
        r.message = std::move(message);
        r.worker = workerIndex;
        results[idx] = std::move(r);
        if (journalIt)
            journalAppend(idx);
    };

    auto requeueRemainder = [&](WorkerProc &w) {
        // Everything after the in-flight cell goes back to survivors.
        if (w.got + 1 < w.batch.size())
            queue.emplace_front(w.batch.begin()
                                    + static_cast<ptrdiff_t>(w.got) + 1,
                                w.batch.end());
    };

    auto reapWorker = [&](WorkerProc &w) -> int {
        int status = 0;
        while (::waitpid(w.pid, &status, 0) < 0 && errno == EINTR) {
        }
        ::close(w.cmdFd);
        ::close(w.resFd);
        w.cmdFd = w.resFd = -1;
        w.alive = false;
        return status;
    };

    auto describeDeath = [](int status) -> std::string {
        char buf[160];
        if (WIFSIGNALED(status)) {
            const int sig = WTERMSIG(status);
            const char *name = ::strsignal(sig);
            std::snprintf(
                buf, sizeof(buf),
                "worker killed by signal %d (%s) while running cell", sig,
                name ? name : "?");
        } else if (WIFEXITED(status)) {
            std::snprintf(buf, sizeof(buf),
                          "worker exited with status %d while running cell",
                          WEXITSTATUS(status));
        } else {
            std::snprintf(buf, sizeof(buf),
                          "worker vanished (wait status 0x%x) "
                          "while running cell",
                          static_cast<unsigned>(status));
        }
        return buf;
    };

    auto handleDeath = [&](WorkerProc &w, int wi) {
        const int status = reapWorker(w);
        if (w.got < w.batch.size()) {
            finalizeCell(w.batch[w.got], CellOutcome::Crashed,
                         describeDeath(status), wi, /*journalIt=*/true);
            requeueRemainder(w);
        }
        w.batch.clear();
        w.got = 0;
        w.buf.clear();
    };

    auto handleTimeout = [&](WorkerProc &w, int wi) {
        ::kill(w.pid, SIGKILL);
        reapWorker(w);
        char msg[128];
        std::snprintf(msg, sizeof(msg),
                      "cell exceeded %.1f s watchdog deadline; "
                      "worker killed",
                      deadlineSecs);
        finalizeCell(w.batch[w.got], CellOutcome::TimedOut, msg, wi,
                     /*journalIt=*/true);
        requeueRemainder(w);
        w.batch.clear();
        w.got = 0;
        w.buf.clear();
    };

    auto handleProtocolError = [&](WorkerProc &w, int wi,
                                   const std::string &what) {
        ::kill(w.pid, SIGKILL);
        reapWorker(w);
        if (w.got < w.batch.size()) {
            finalizeCell(w.batch[w.got], CellOutcome::Error,
                         "corrupt result frame from worker: " + what, wi,
                         /*journalIt=*/true);
            requeueRemainder(w);
        }
        w.batch.clear();
        w.got = 0;
        w.buf.clear();
    };

    // Parse complete frames from w.buf into results. Returns a
    // protocol-error description, empty while the stream is
    // well-formed.
    auto parseFrames = [&](WorkerProc &w) -> std::string {
        size_t off = 0;
        std::string error;
        while (w.buf.size() - off >= res_header_bytes) {
            const uint8_t *p = w.buf.data() + off;
            if (loadU32(p) != res_magic) {
                error = "bad frame magic";
                break;
            }
            const uint32_t idx = loadU32(p + 4);
            const uint32_t len = loadU32(p + 8);
            if (len > SweepJournal::max_payload) {
                error = "impossible frame length";
                break;
            }
            if (w.buf.size() - off < res_header_bytes + len)
                break; // incomplete frame: wait for more bytes
            uint64_t sum = util::fnv1a64(p + 4, 8);
            sum = util::fnv1a64(p + res_header_bytes, len, sum);
            if (sum != loadU64(p + 12)) {
                error = "frame checksum mismatch";
                break;
            }
            if (w.got >= w.batch.size() || idx != w.batch[w.got]) {
                error = "unexpected cell index in frame";
                break;
            }
            try {
                deserializeResultPayload({p + res_header_bytes, len},
                                         results[idx]);
            } catch (const JournalError &e) {
                // Undo any partial fill before failing the worker.
                results[idx] = detail::makeResultShell(cells[idx]);
                error = e.what();
                break;
            }
            journalAppend(idx);
            w.got++;
            w.deadline = Clock::now() + deadlineDur;
            off += res_header_bytes + len;
        }
        w.buf.erase(w.buf.begin(),
                    w.buf.begin() + static_cast<ptrdiff_t>(off));
        return error;
    };

    auto dispatch = [&](WorkerProc &w) {
        w.batch = std::move(queue.front());
        queue.pop_front();
        w.got = 0;
        w.buf.clear();
        std::vector<uint8_t> frame;
        frame.reserve(8 + 4 * w.batch.size());
        putU32(frame, cmd_magic);
        putU32(frame, static_cast<uint32_t>(w.batch.size()));
        for (uint32_t idx : w.batch)
            putU32(frame, idx);
        if (!writeFull(w.cmdFd, frame.data(), frame.size())) {
            // The worker died while idle: nothing was in flight, so
            // the whole batch goes back and the slot is respawnable.
            queue.push_front(std::move(w.batch));
            w.batch.clear();
            reapWorker(w);
            w.got = 0;
            return;
        }
        w.deadline = Clock::now() + deadlineDur;
    };

    for (auto &w : workers)
        if (!spawnWorker(w, workers, cells))
            break; // fork pressure: run with fewer workers

    for (;;) {
        // Refill dead slots while queued work remains (bounded budget).
        for (auto &w : workers)
            if (!w.alive && !queue.empty() && respawnsLeft > 0) {
                respawnsLeft--;
                spawnWorker(w, workers, cells);
            }

        // Hand batches to idle live workers.
        for (auto &w : workers)
            if (w.alive && !w.busy() && !queue.empty())
                dispatch(w);

        std::vector<int> busyIdx;
        for (size_t wi = 0; wi < workers.size(); wi++)
            if (workers[wi].busy())
                busyIdx.push_back(static_cast<int>(wi));

        if (busyIdx.empty()) {
            if (queue.empty())
                break; // every cell accounted for
            const bool anyAlive =
                std::any_of(workers.begin(), workers.end(),
                            [](const WorkerProc &w) { return w.alive; });
            if (!anyAlive && respawnsLeft == 0) {
                // Budget exhausted with work pending: fail the cells
                // *without* journaling them, so a rerun retries.
                for (const auto &batch : queue)
                    for (uint32_t idx : batch)
                        finalizeCell(idx, CellOutcome::Error,
                                     "worker respawn budget exhausted; "
                                     "cell not run",
                                     -1, /*journalIt=*/false);
                queue.clear();
                break;
            }
            continue; // respawn/dispatch next round
        }

        // Poll until data or the nearest watchdog deadline.
        auto now = Clock::now();
        long waitMs = 60'000;
        for (int wi : busyIdx) {
            const auto remain =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    workers[static_cast<size_t>(wi)].deadline - now)
                    .count();
            waitMs = std::min(waitMs, std::max<long>(0, remain + 1));
        }
        std::vector<pollfd> fds;
        fds.reserve(busyIdx.size());
        for (int wi : busyIdx)
            fds.push_back({workers[static_cast<size_t>(wi)].resFd, POLLIN,
                           0});
        const int rc = ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
                              static_cast<int>(waitMs));
        if (rc < 0 && errno != EINTR)
            continue; // defensive: fall through to the watchdog pass

        for (size_t k = 0; rc > 0 && k < fds.size(); k++) {
            WorkerProc &w = workers[static_cast<size_t>(busyIdx[k])];
            if (!w.alive
                || !(fds[k].revents & (POLLIN | POLLHUP | POLLERR)))
                continue;
            uint8_t chunk[65536];
            const ssize_t n = ::read(w.resFd, chunk, sizeof(chunk));
            if (n > 0) {
                w.buf.insert(w.buf.end(), chunk, chunk + n);
                const std::string err = parseFrames(w);
                if (!err.empty())
                    handleProtocolError(w, busyIdx[k], err);
            } else if (n == 0) {
                handleDeath(w, busyIdx[k]);
            } else if (errno != EINTR && errno != EAGAIN) {
                handleDeath(w, busyIdx[k]);
            }
        }

        // Watchdog pass: anyone past deadline is killed.
        now = Clock::now();
        for (int wi : busyIdx) {
            WorkerProc &w = workers[static_cast<size_t>(wi)];
            if (w.busy() && now >= w.deadline)
                handleTimeout(w, wi);
        }
    }

    // Orderly shutdown: EOF on the command pipes, then reap everyone.
    for (auto &w : workers)
        if (w.alive)
            ::close(w.cmdFd);
    for (auto &w : workers) {
        if (!w.alive)
            continue;
        int status = 0;
        while (::waitpid(w.pid, &status, 0) < 0 && errno == EINTR) {
        }
        ::close(w.resFd);
        w.alive = false;
    }
    ::sigaction(SIGPIPE, &oldPipe, nullptr);
}

} // namespace cryptarch::driver
