/**
 * @file
 * Machine-readable bench results (BENCH_*.json).
 *
 * Every migrated bench emits its full sweep next to the paper-formatted
 * text table, so regenerated figures are diffable and downstream
 * tooling never has to scrape printf output. Schema (version 5):
 *
 *   {
 *     "bench": "<figure/table id>",
 *     "schema": 5,
 *     "outcomes": {"ok": N, "trapped": N, "verify_failed": N,
 *                  "error": N, "crashed": N, "timed_out": N,
 *                  "rejected": N, "stalled": N},
 *     "results": [
 *       {
 *         "cipher": "RC4",
 *         "variant": "BaselineRot",
 *         "model": "4W",
 *         "session_bytes": 4096,
 *         "outcome": "ok" | "trapped" | "verify_failed" | "error"
 *                  | "crashed" | "timed_out" | "rejected" | "stalled",
 *         "message": "<error what(), present only on failed cells>",
 *         "worker": N,  // worker attribution; host-level failures only
 *         "stats": {
 *           "instructions": N, "cycles": N, "ipc": x,
 *           "cond_branches": N, "mispredicts": N,
 *           "loads": N, "stores": N,
 *           "sbox_accesses": N, "sbox_cache_hits": N,
 *           "sbox_cache_accesses": N, "sbox_cache_misses": N,
 *           "sbox_caches": [{"accesses": N, "misses": N} per cache],
 *           "class_counts": {"<OpClass name>": N, ... all 11},
 *           "stall_cycles": {"<cause>": N, ... sim/stall.hh order},
 *           "stall_by_class": {"<OpClass name>": {"<cause>": N, ...},
 *                              ... classes with nonzero stalls only},
 *           "l1":  {"accesses": N, "misses": N},
 *           "l2":  {"accesses": N, "misses": N},
 *           "tlb": {"accesses": N, "misses": N}
 *         }
 *       }, ...
 *     ]
 *   }
 *
 * Schema history: v2 added the SBox-cache access/miss totals, named
 * per-OpClass class_counts (v1 emitted an anonymous array that could
 * silently desynchronize from the enum) and the stall-attribution
 * counters. v3 added the fail-soft cell "outcome" (with "message" on
 * failed cells); failed cells keep their coordinates but carry zeroed
 * stats. v4 added the top-level "outcomes" count object (one key per
 * CellOutcome, zeros included), the "crashed"/"timed_out" outcomes
 * from process isolation, and the per-result "worker" index — emitted
 * only on cells a worker process failed (crashed, timed out, or
 * corrupted mid-frame), so healthy grids remain byte-identical across
 * isolation modes, thread counts, and kill-and-resume reruns. v5 added
 * the "rejected" (config validation refused the machine model) and
 * "stalled" (the scheduler's forward-progress watchdog fired) outcomes
 * from the simulator hardening layer; both appear in the "outcomes"
 * counts and as per-result outcome values, zeroed stats as with every
 * failed cell.
 *
 * All emitted strings are escaped: quote/backslash/newline/tab with
 * their short escapes, every other byte outside printable ASCII
 * (< 0x20 or >= 0x7f) as a \u00xx escape of the unsigned byte value,
 * so error messages containing arbitrary bytes cannot corrupt the
 * file.
 */

#ifndef CRYPTARCH_DRIVER_JSON_HH
#define CRYPTARCH_DRIVER_JSON_HH

#include <string>
#include <string_view>
#include <vector>

#include "driver/sweep.hh"

namespace cryptarch::driver
{

/** Serialize one SimStats as a JSON object (single line, no newline). */
std::string toJson(const sim::SimStats &stats);

/**
 * Write the schema above to @p path (conventionally
 * "BENCH_<bench>.json" in the working directory). Throws
 * std::runtime_error when the file cannot be written.
 */
void writeBenchJson(const std::string &path, std::string_view bench,
                    const std::vector<SweepResult> &results);

/**
 * Same schema, with extra per-result members: @p resultExtras[i] is a
 * raw JSON fragment ("\"key\": value, ...") spliced into result i's
 * object between "session_bytes" and "stats". Empty fragments add
 * nothing; the vector may be shorter than @p results. The simspeed
 * self-benchmark uses this for its host-side timing members.
 */
void writeBenchJson(const std::string &path, std::string_view bench,
                    const std::vector<SweepResult> &results,
                    const std::vector<std::string> &resultExtras);

} // namespace cryptarch::driver

#endif // CRYPTARCH_DRIVER_JSON_HH
