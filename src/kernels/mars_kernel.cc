/**
 * @file
 * MARS CBC encryption kernel in CryptISA.
 *
 * MARS mixes every mechanism the paper studies: unkeyed S-box mixing
 * phases (byte-indexed lookups into the 512-word table), a keyed core
 * whose E-function does a 32-bit multiply, an S-box lookup and two
 * data-dependent rotates per round, and pervasive constant rotates
 * (the reason MARS suffers the worst rotate-less slowdown, 40%).
 *
 * The 512-entry S-box exceeds the SBOX instruction's 256-entry limit;
 * following the paper's guidance ("larger SBoxes could be implemented
 * by striping the table across multiple architectural tables and
 * selecting the correct value based on the upper bits"), the E-function
 * reads both halves and selects with a conditional move.
 */

#include "crypto/mars.hh"
#include "kernels/builders.hh"
#include "kernels/emit.hh"
#include "util/bitops.hh"

namespace cryptarch::kernels
{

using isa::Reg;

KernelBuild
buildMarsKernel(KernelVariant v, std::span<const uint8_t> key,
                std::span<const uint8_t> iv, size_t bytes,
                KernelDirection dir)
{
    const bool dec = dir == KernelDirection::Decrypt;
    crypto::Mars ref;
    ref.setKey(key);

    KernelBuild b;
    const auto &sbox = crypto::Mars::sbox();
    // S0 on table frame 0, S1 on frame 1 (contiguous 2 KB for the
    // baseline's 9-bit indexed loads).
    b.memInit.emplace_back(tableAddr(0),
                           words32(std::span<const uint32_t>(
                               sbox.data(), 256)));
    b.memInit.emplace_back(tableAddr(1),
                           words32(std::span<const uint32_t>(
                               sbox.data() + 256, 256)));
    b.memInit.emplace_back(subkey_region,
                           words32(std::span<const uint32_t>(
                               ref.subkeys().data(), 40)));
    const uint32_t iv_words[4] = {
        util::load32le(iv.data()), util::load32le(iv.data() + 4),
        util::load32le(iv.data() + 8), util::load32le(iv.data() + 12)};
    b.memInit.emplace_back(iv_region, words32(iv_words));

    KernelCtx ctx(v);
    auto &as = ctx.as;
    auto &rp = ctx.regs;

    Reg in_ptr = rp.alloc(), out_ptr = rp.alloc(), count = rp.alloc();
    Reg kb = rp.alloc();
    Reg sb0 = rp.alloc(), sb1 = rp.alloc();
    Reg ch[4], d[4];
    for (auto &r : ch)
        r = rp.alloc();
    for (auto &r : d)
        r = rp.alloc();
    Reg t = rp.alloc(), k = rp.alloc(), k2 = rp.alloc();
    Reg el = rp.alloc(), em = rp.alloc(), er = rp.alloc();
    Reg s1 = rp.alloc(), s2 = rp.alloc();

    ctx.cat(OpCategory::Arithmetic);
    as.li(b.inAddr, in_ptr);
    as.li(b.outAddr, out_ptr);
    as.li(static_cast<int64_t>(bytes / 16), count);
    as.li(subkey_region, kb);
    as.li(static_cast<int64_t>(tableAddr(0)), sb0);
    as.li(static_cast<int64_t>(tableAddr(1)), sb1);
    Reg ivb = t;
    as.li(iv_region, ivb);
    ctx.cat(OpCategory::Memory);
    for (int i = 0; i < 4; i++)
        as.ldl(ch[i], ivb, 4 * i);

    // S0/S1 lookup of byte @p bs of @p x.
    auto mix = [&](Reg base, unsigned table_id, Reg x, unsigned bs,
                   Reg dst) {
        ctx.sboxLoad(table_id, base, x, bs, dst, s1);
    };

    // l = S[m & 0x1ff]: both halves + select on bit 8 (optimized), or
    // one 9-bit indexed load from the contiguous table (baseline).
    auto sbox512 = [&](Reg m, Reg dst) {
        ctx.cat(OpCategory::Substitution);
        if (ctx.optimized()) {
            as.sbox(0, 0, sb0, m, dst);
            as.sbox(1, 0, sb1, m, s2);
            as.and_(m, 0x100, s1);
            as.cmovne(s1, s2, dst);
        } else {
            as.and_(m, 0x1FF, s1);
            as.s4add(s1, sb0, s1);
            as.ldl(dst, s1, 0);
        }
    };

    as.label("block");
    ctx.cat(OpCategory::Memory);
    for (int i = 0; i < 4; i++)
        as.ldl(d[i], in_ptr, 4 * i);
    if (!dec) {
        ctx.cat(OpCategory::Logic);
        for (int i = 0; i < 4; i++)
            as.xor_(d[i], ch[i], d[i]);
        // Input whitening: D[i] += K[i].
        for (int i = 0; i < 4; i++) {
            ctx.cat(OpCategory::Memory);
            as.ldl(k, kb, 4 * i);
            ctx.cat(OpCategory::Arithmetic);
            as.addl(d[i], k, d[i]);
        }
    } else {
        // Inverse output whitening: D[i] += K[36+i].
        for (int i = 0; i < 4; i++) {
            ctx.cat(OpCategory::Memory);
            as.ldl(k, kb, 4 * (36 + i));
            ctx.cat(OpCategory::Arithmetic);
            as.addl(d[i], k, d[i]);
        }
    }

    int n0 = 0, n1 = 1, n2 = 2, n3 = 3;
    auto rotateNames = [&] {
        int first = n0;
        n0 = n1;
        n1 = n2;
        n2 = n3;
        n3 = first;
    };
    auto rotateNamesBack = [&] {
        int last = n3;
        n3 = n2;
        n2 = n1;
        n1 = n0;
        n0 = last;
    };
    (void)rotateNamesBack;

    if (!dec) {
    // ---- forward mixing (8 unkeyed rounds, unrolled) ----
    for (int i = 0; i < 8; i++) {
        mix(sb0, 0, d[n0], 0, t);
        ctx.cat(OpCategory::Logic);
        as.xor_(d[n1], t, d[n1]);
        mix(sb1, 1, d[n0], 1, t);
        ctx.cat(OpCategory::Arithmetic);
        as.addl(d[n1], t, d[n1]);
        mix(sb0, 0, d[n0], 2, t);
        ctx.cat(OpCategory::Arithmetic);
        as.addl(d[n2], t, d[n2]);
        mix(sb1, 1, d[n0], 3, t);
        ctx.cat(OpCategory::Logic);
        as.xor_(d[n3], t, d[n3]);
        ctx.rotr32i(d[n0], 24, d[n0], s1);
        if (i == 0 || i == 4) {
            ctx.cat(OpCategory::Arithmetic);
            as.addl(d[n0], d[n3], d[n0]);
        }
        if (i == 1 || i == 5) {
            ctx.cat(OpCategory::Arithmetic);
            as.addl(d[n0], d[n1], d[n0]);
        }
        rotateNames();
    }

    // ---- cryptographic core (16 keyed rounds, unrolled) ----
    for (int i = 0; i < 16; i++) {
        ctx.cat(OpCategory::Memory);
        as.ldl(k, kb, 4 * (2 * i + 4));
        as.ldl(k2, kb, 4 * (2 * i + 5));
        // E-function on d[n0].
        ctx.cat(OpCategory::Arithmetic);
        as.addl(d[n0], k, em);
        ctx.rotl32i(d[n0], 13, er, s1); // er = rotl13(d0), reused below
        ctx.cat(OpCategory::Arithmetic);
        as.bis(er, isa::reg_zero, d[n0]); // d0 <- rotl13(d0)
        ctx.mul32(er, k2, er);
        sbox512(em, el);
        ctx.rotl32i(er, 5, er, s1);
        ctx.rotl32v(em, er, em, s1, s2);
        ctx.cat(OpCategory::Logic);
        as.xor_(el, er, el);
        ctx.rotl32i(er, 5, er, s1);
        ctx.cat(OpCategory::Logic);
        as.xor_(el, er, el);
        ctx.rotl32v(el, er, el, s1, s2);
        // Apply outputs.
        ctx.cat(OpCategory::Arithmetic);
        as.addl(d[n2], em, d[n2]);
        if (i < 8) {
            as.addl(d[n1], el, d[n1]);
            ctx.cat(OpCategory::Logic);
            as.xor_(d[n3], er, d[n3]);
        } else {
            as.addl(d[n3], el, d[n3]);
            ctx.cat(OpCategory::Logic);
            as.xor_(d[n1], er, d[n1]);
        }
        rotateNames();
    }

    // ---- backwards mixing (8 unkeyed rounds, unrolled) ----
    for (int i = 0; i < 8; i++) {
        if (i == 2 || i == 6) {
            ctx.cat(OpCategory::Arithmetic);
            as.subl(d[n0], d[n3], d[n0]);
        }
        if (i == 3 || i == 7) {
            ctx.cat(OpCategory::Arithmetic);
            as.subl(d[n0], d[n1], d[n0]);
        }
        mix(sb1, 1, d[n0], 0, t);
        ctx.cat(OpCategory::Logic);
        as.xor_(d[n1], t, d[n1]);
        mix(sb0, 0, d[n0], 3, t);
        ctx.cat(OpCategory::Arithmetic);
        as.subl(d[n2], t, d[n2]);
        mix(sb1, 1, d[n0], 2, t);
        ctx.cat(OpCategory::Arithmetic);
        as.subl(d[n3], t, d[n3]);
        mix(sb0, 0, d[n0], 1, t);
        ctx.cat(OpCategory::Logic);
        as.xor_(d[n3], t, d[n3]);
        ctx.rotl32i(d[n0], 24, d[n0], s1);
        rotateNames();
    }

    // Output whitening: C[i] = D[i] - K[36+i].
    {
        int names[4] = {n0, n1, n2, n3};
        for (int i = 0; i < 4; i++) {
            ctx.cat(OpCategory::Memory);
            as.ldl(k, kb, 4 * (36 + i));
            ctx.cat(OpCategory::Arithmetic);
            as.subl(d[names[i]], k, ch[i]);
        }
        ctx.cat(OpCategory::Memory);
        for (int i = 0; i < 4; i++)
            as.stl(ch[i], out_ptr, 4 * i);
    }
    } else {
    // ---- inverse backwards mixing (rounds reversed) ----
    for (int i = 7; i >= 0; i--) {
        rotateNamesBack();
        ctx.rotr32i(d[n0], 24, d[n0], s1);
        mix(sb0, 0, d[n0], 1, t);
        ctx.cat(OpCategory::Logic);
        as.xor_(d[n3], t, d[n3]);
        mix(sb1, 1, d[n0], 2, t);
        ctx.cat(OpCategory::Arithmetic);
        as.addl(d[n3], t, d[n3]);
        mix(sb0, 0, d[n0], 3, t);
        ctx.cat(OpCategory::Arithmetic);
        as.addl(d[n2], t, d[n2]);
        mix(sb1, 1, d[n0], 0, t);
        ctx.cat(OpCategory::Logic);
        as.xor_(d[n1], t, d[n1]);
        if (i == 3 || i == 7) {
            ctx.cat(OpCategory::Arithmetic);
            as.addl(d[n0], d[n1], d[n0]);
        }
        if (i == 2 || i == 6) {
            ctx.cat(OpCategory::Arithmetic);
            as.addl(d[n0], d[n3], d[n0]);
        }
    }

    // ---- inverse core (rounds reversed) ----
    for (int i = 15; i >= 0; i--) {
        rotateNamesBack();
        ctx.rotr32i(d[n0], 13, d[n0], s1);
        ctx.cat(OpCategory::Memory);
        as.ldl(k, kb, 4 * (2 * i + 4));
        as.ldl(k2, kb, 4 * (2 * i + 5));
        // E-function on the restored d[n0].
        ctx.cat(OpCategory::Arithmetic);
        as.addl(d[n0], k, em);
        ctx.rotl32i(d[n0], 13, er, s1);
        ctx.mul32(er, k2, er);
        sbox512(em, el);
        ctx.rotl32i(er, 5, er, s1);
        ctx.rotl32v(em, er, em, s1, s2);
        ctx.cat(OpCategory::Logic);
        as.xor_(el, er, el);
        ctx.rotl32i(er, 5, er, s1);
        ctx.cat(OpCategory::Logic);
        as.xor_(el, er, el);
        ctx.rotl32v(el, er, el, s1, s2);
        // Remove the outputs.
        ctx.cat(OpCategory::Arithmetic);
        as.subl(d[n2], em, d[n2]);
        if (i < 8) {
            as.subl(d[n1], el, d[n1]);
            ctx.cat(OpCategory::Logic);
            as.xor_(d[n3], er, d[n3]);
        } else {
            as.subl(d[n3], el, d[n3]);
            ctx.cat(OpCategory::Logic);
            as.xor_(d[n1], er, d[n1]);
        }
    }

    // ---- inverse forward mixing (rounds reversed) ----
    for (int i = 7; i >= 0; i--) {
        rotateNamesBack();
        if (i == 1 || i == 5) {
            ctx.cat(OpCategory::Arithmetic);
            as.subl(d[n0], d[n1], d[n0]);
        }
        if (i == 0 || i == 4) {
            ctx.cat(OpCategory::Arithmetic);
            as.subl(d[n0], d[n3], d[n0]);
        }
        ctx.rotl32i(d[n0], 24, d[n0], s1);
        mix(sb1, 1, d[n0], 3, t);
        ctx.cat(OpCategory::Logic);
        as.xor_(d[n3], t, d[n3]);
        mix(sb0, 0, d[n0], 2, t);
        ctx.cat(OpCategory::Arithmetic);
        as.subl(d[n2], t, d[n2]);
        mix(sb1, 1, d[n0], 1, t);
        ctx.cat(OpCategory::Arithmetic);
        as.subl(d[n1], t, d[n1]);
        mix(sb0, 0, d[n0], 0, t);
        ctx.cat(OpCategory::Logic);
        as.xor_(d[n1], t, d[n1]);
    }

    // Inverse input whitening, CBC-XOR, store, reload chain.
    {
        int names[4] = {n0, n1, n2, n3};
        for (int i = 0; i < 4; i++) {
            ctx.cat(OpCategory::Memory);
            as.ldl(k, kb, 4 * i);
            ctx.cat(OpCategory::Arithmetic);
            as.subl(d[names[i]], k, d[names[i]]);
            ctx.cat(OpCategory::Logic);
            as.xor_(d[names[i]], ch[i], d[names[i]]);
        }
        ctx.cat(OpCategory::Memory);
        for (int i = 0; i < 4; i++)
            as.stl(d[names[i]], out_ptr, 4 * i);
        for (int i = 0; i < 4; i++)
            as.ldl(ch[i], in_ptr, 4 * i);
    }
    }

    ctx.cat(OpCategory::Arithmetic);
    as.addq(in_ptr, 16, in_ptr);
    as.addq(out_ptr, 16, out_ptr);
    as.subq(count, 1, count);
    ctx.cat(OpCategory::Control);
    as.bne(count, "block");
    as.halt();

    b.program = as.finalize();
    b.categories = takeCategories(ctx);
    return b;
}

} // namespace cryptarch::kernels
