/**
 * @file
 * RC6 CBC encryption kernel in CryptISA.
 *
 * RC6 is a computational cipher: each round is two quadratic functions
 * x*(2x+1) (32-bit multiplies with the 4-cycle early-out), two
 * constant rotates and two data-dependent rotates. It is the heaviest
 * beneficiary of plain hardware rotates (24% slowdown without them in
 * Figure 10's Orig/4W bar) and gains only modestly from the rest of
 * the extension set.
 */

#include "crypto/rc6.hh"
#include "kernels/builders.hh"
#include "kernels/emit.hh"
#include "util/bitops.hh"

namespace cryptarch::kernels
{

using isa::Reg;

KernelBuild
buildRc6Kernel(KernelVariant v, std::span<const uint8_t> key,
               std::span<const uint8_t> iv, size_t bytes,
               KernelDirection dir)
{
    const bool dec = dir == KernelDirection::Decrypt;
    crypto::Rc6 ref;
    ref.setKey(key);

    KernelBuild b;
    b.memInit.emplace_back(subkey_region,
                           words32(std::span<const uint32_t>(
                               ref.roundKeys().data(),
                               ref.roundKeys().size())));
    const uint32_t iv_words[4] = {
        util::load32le(iv.data()), util::load32le(iv.data() + 4),
        util::load32le(iv.data() + 8), util::load32le(iv.data() + 12)};
    b.memInit.emplace_back(iv_region, words32(iv_words));

    KernelCtx ctx(v);
    auto &as = ctx.as;
    auto &rp = ctx.regs;

    Reg in_ptr = rp.alloc(), out_ptr = rp.alloc(), count = rp.alloc();
    Reg kb = rp.alloc();
    Reg ch[4];
    for (auto &r : ch)
        r = rp.alloc();
    Reg w[4]; // a, b, c, d under compile-time renaming
    for (auto &r : w)
        r = rp.alloc();
    Reg t = rp.alloc(), u = rp.alloc(), k = rp.alloc();
    Reg s1 = rp.alloc(), s2 = rp.alloc();

    ctx.cat(OpCategory::Arithmetic);
    as.li(b.inAddr, in_ptr);
    as.li(b.outAddr, out_ptr);
    as.li(static_cast<int64_t>(bytes / 16), count);
    as.li(subkey_region, kb);
    Reg ivb = t;
    as.li(iv_region, ivb);
    ctx.cat(OpCategory::Memory);
    for (int i = 0; i < 4; i++)
        as.ldl(ch[i], ivb, 4 * i);

    // quad(x) = rotl32(x * (2x + 1), 5) into @p d.
    auto quad = [&](Reg x, Reg d) {
        ctx.cat(OpCategory::Arithmetic);
        as.addl(x, x, d);
        as.addl(d, 1, d);
        ctx.mul32(x, d, d);
        ctx.rotl32i(d, 5, d, s1);
    };

    as.label("block");
    ctx.cat(OpCategory::Memory);
    for (int i = 0; i < 4; i++)
        as.ldl(w[i], in_ptr, 4 * i);
    if (!dec) {
        ctx.cat(OpCategory::Logic);
        for (int i = 0; i < 4; i++)
            as.xor_(w[i], ch[i], w[i]);
    }

    int a = 0, bb = 1, c = 2, d = 3;
    if (!dec) {
        // Pre-whitening: B += S[0], D += S[1].
        ctx.cat(OpCategory::Memory);
        as.ldl(k, kb, 0);
        ctx.cat(OpCategory::Arithmetic);
        as.addl(w[1], k, w[1]);
        ctx.cat(OpCategory::Memory);
        as.ldl(k, kb, 4);
        ctx.cat(OpCategory::Arithmetic);
        as.addl(w[3], k, w[3]);

        // 20 rounds, fully unrolled; the (a,b,c,d) <- (b,c,d,a)
        // rotation is compile-time register renaming.
        for (int round = 1; round <= crypto::Rc6::rounds; round++) {
            quad(w[bb], t);
            quad(w[d], u);
            ctx.cat(OpCategory::Logic);
            as.xor_(w[a], t, w[a]);
            ctx.rotl32v(w[a], u, w[a], s1, s2);
            ctx.cat(OpCategory::Memory);
            as.ldl(k, kb, 4 * (2 * round));
            ctx.cat(OpCategory::Arithmetic);
            as.addl(w[a], k, w[a]);
            ctx.cat(OpCategory::Logic);
            as.xor_(w[c], u, w[c]);
            ctx.rotl32v(w[c], t, w[c], s1, s2);
            ctx.cat(OpCategory::Memory);
            as.ldl(k, kb, 4 * (2 * round + 1));
            ctx.cat(OpCategory::Arithmetic);
            as.addl(w[c], k, w[c]);
            int tmp = a;
            a = bb;
            bb = c;
            c = d;
            d = tmp;
        }

        // Post-whitening: A += S[2r+2], C += S[2r+3].
        ctx.cat(OpCategory::Memory);
        as.ldl(k, kb, 4 * (2 * crypto::Rc6::rounds + 2));
        ctx.cat(OpCategory::Arithmetic);
        as.addl(w[a], k, w[a]);
        ctx.cat(OpCategory::Memory);
        as.ldl(k, kb, 4 * (2 * crypto::Rc6::rounds + 3));
        ctx.cat(OpCategory::Arithmetic);
        as.addl(w[c], k, w[c]);
    } else {
        // Inverse post-whitening: C -= S[2r+3], A -= S[2r+2].
        ctx.cat(OpCategory::Memory);
        as.ldl(k, kb, 4 * (2 * crypto::Rc6::rounds + 3));
        ctx.cat(OpCategory::Arithmetic);
        as.subl(w[2], k, w[2]);
        ctx.cat(OpCategory::Memory);
        as.ldl(k, kb, 4 * (2 * crypto::Rc6::rounds + 2));
        ctx.cat(OpCategory::Arithmetic);
        as.subl(w[0], k, w[0]);

        // Rounds in reverse with the name rotation inverted.
        for (int round = crypto::Rc6::rounds; round >= 1; round--) {
            int tmp = d;
            d = c;
            c = bb;
            bb = a;
            a = tmp;
            quad(w[bb], t);
            quad(w[d], u);
            // c = rotr(c - S[2i+1], t) ^ u
            ctx.cat(OpCategory::Memory);
            as.ldl(k, kb, 4 * (2 * round + 1));
            ctx.cat(OpCategory::Arithmetic);
            as.subl(w[c], k, w[c]);
            ctx.rotr32v(w[c], t, w[c], s1, s2);
            ctx.cat(OpCategory::Logic);
            as.xor_(w[c], u, w[c]);
            // a = rotr(a - S[2i], u) ^ t
            ctx.cat(OpCategory::Memory);
            as.ldl(k, kb, 4 * (2 * round));
            ctx.cat(OpCategory::Arithmetic);
            as.subl(w[a], k, w[a]);
            ctx.rotr32v(w[a], u, w[a], s1, s2);
            ctx.cat(OpCategory::Logic);
            as.xor_(w[a], t, w[a]);
        }

        // Inverse pre-whitening: D -= S[1], B -= S[0].
        ctx.cat(OpCategory::Memory);
        as.ldl(k, kb, 4);
        ctx.cat(OpCategory::Arithmetic);
        as.subl(w[d], k, w[d]);
        ctx.cat(OpCategory::Memory);
        as.ldl(k, kb, 0);
        ctx.cat(OpCategory::Arithmetic);
        as.subl(w[bb], k, w[bb]);
    }

    int names[4] = {a, bb, c, d};
    if (!dec) {
        ctx.cat(OpCategory::Memory);
        for (int i = 0; i < 4; i++)
            as.stl(w[names[i]], out_ptr, 4 * i);
        ctx.cat(OpCategory::Arithmetic);
        for (int i = 0; i < 4; i++)
            as.bis(w[names[i]], isa::reg_zero, ch[i]);
    } else {
        ctx.cat(OpCategory::Logic);
        for (int i = 0; i < 4; i++)
            as.xor_(w[names[i]], ch[i], w[names[i]]);
        ctx.cat(OpCategory::Memory);
        for (int i = 0; i < 4; i++)
            as.stl(w[names[i]], out_ptr, 4 * i);
        for (int i = 0; i < 4; i++)
            as.ldl(ch[i], in_ptr, 4 * i);
    }

    as.addq(in_ptr, 16, in_ptr);
    as.addq(out_ptr, 16, out_ptr);
    as.subq(count, 1, count);
    ctx.cat(OpCategory::Control);
    as.bne(count, "block");
    as.halt();

    b.program = as.finalize();
    b.categories = takeCategories(ctx);
    return b;
}

} // namespace cryptarch::kernels
