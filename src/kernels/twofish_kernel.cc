/**
 * @file
 * Twofish CBC encryption kernel in CryptISA (full keying).
 *
 * The g function is four lookups into the key-dependent 256x32 tables
 * (MDS folded in) — one per SBox cache on the 4W+ machine. The second
 * g operates on ROL(R1, 8), which is free in both variants: the byte
 * rotation is absorbed into the lookup byte selectors. The
 * rotl-then-xor of the fourth word is a ROLX in the optimized variant
 * (one of the two combining opportunities the paper identified).
 */

#include "crypto/twofish.hh"
#include "kernels/builders.hh"
#include "kernels/emit.hh"
#include "util/bitops.hh"

namespace cryptarch::kernels
{

using isa::Reg;

KernelBuild
buildTwofishKernel(KernelVariant v, std::span<const uint8_t> key,
                   std::span<const uint8_t> iv, size_t bytes,
                   KernelDirection dir)
{
    const bool dec = dir == KernelDirection::Decrypt;
    crypto::Twofish ref;
    ref.setKey(key);

    KernelBuild b;
    for (int i = 0; i < 4; i++) {
        b.memInit.emplace_back(tableAddr(i),
                               words32(std::span<const uint32_t>(
                                   ref.gTables()[i].data(), 256)));
    }
    b.memInit.emplace_back(subkey_region,
                           words32(std::span<const uint32_t>(
                               ref.subkeys().data(), 40)));
    const uint32_t iv_words[4] = {
        util::load32le(iv.data()), util::load32le(iv.data() + 4),
        util::load32le(iv.data() + 8), util::load32le(iv.data() + 12)};
    b.memInit.emplace_back(iv_region, words32(iv_words));

    KernelCtx ctx(v);
    auto &as = ctx.as;
    auto &rp = ctx.regs;

    Reg in_ptr = rp.alloc(), out_ptr = rp.alloc(), count = rp.alloc();
    Reg kb = rp.alloc();
    Reg tbase[4];
    for (auto &r : tbase)
        r = rp.alloc();
    Reg wk[8]; // whitening keys K0..K7 in registers
    for (auto &r : wk)
        r = rp.alloc();
    Reg ch[4], r_[4];
    for (auto &r : ch)
        r = rp.alloc();
    for (auto &r : r_)
        r = rp.alloc();
    Reg t0 = rp.alloc(), t1 = rp.alloc(), tt = rp.alloc(),
        k = rp.alloc();
    Reg s1 = rp.alloc(), s2 = rp.alloc();

    ctx.cat(OpCategory::Arithmetic);
    as.li(b.inAddr, in_ptr);
    as.li(b.outAddr, out_ptr);
    as.li(static_cast<int64_t>(bytes / 16), count);
    as.li(subkey_region, kb);
    for (int i = 0; i < 4; i++)
        as.li(static_cast<int64_t>(tableAddr(i)), tbase[i]);
    ctx.cat(OpCategory::Memory);
    for (int i = 0; i < 8; i++)
        as.ldl(wk[i], kb, 4 * i);
    Reg ivb = t0;
    ctx.cat(OpCategory::Arithmetic);
    as.li(iv_region, ivb);
    ctx.cat(OpCategory::Memory);
    for (int i = 0; i < 4; i++)
        as.ldl(ch[i], ivb, 4 * i);

    // g(x) into acc; byte lane j of x indexes table (j + sel) & 3 when
    // the input is pre-rotated by 8*sel bits (sel=1 implements
    // g(ROL(x,8)) for free).
    auto gfunc = [&](Reg x, Reg acc, int sel) {
        // table lane j reads byte (j - sel) mod 4 of x.
        ctx.sboxLoad(0, tbase[0], x, (0 - sel) & 3, acc, s1);
        ctx.sboxLoadXor(1, tbase[1], x, (1 - sel) & 3, acc, tt, s2);
        ctx.sboxLoadXor(2, tbase[2], x, (2 - sel) & 3, acc, tt, s1);
        ctx.sboxLoadXor(3, tbase[3], x, (3 - sel) & 3, acc, tt, s2);
    };

    as.label("block");
    int i0 = 0, i1 = 1, i2 = 2, i3 = 3;
    if (!dec) {
        ctx.cat(OpCategory::Memory);
        for (int i = 0; i < 4; i++)
            as.ldl(r_[i], in_ptr, 4 * i);
        ctx.cat(OpCategory::Logic);
        for (int i = 0; i < 4; i++)
            as.xor_(r_[i], ch[i], r_[i]);
        for (int i = 0; i < 4; i++)
            as.xor_(r_[i], wk[i], r_[i]);

        // 16 rounds with the half swap as compile-time renaming:
        // indices (i0,i1) are the Feistel inputs, (i2,i3) the targets.
        for (int round = 0; round < crypto::Twofish::rounds; round++) {
            gfunc(r_[i0], t0, 0);
            gfunc(r_[i1], t1, 1); // g(ROL(r1,8)) via byte selectors
            ctx.cat(OpCategory::Memory);
            as.ldl(k, kb, 4 * (2 * round + 8));
            ctx.cat(OpCategory::Arithmetic);
            as.addl(t0, t1, tt); // tt = t0 + t1
            as.addl(tt, k, tt);  // f0
            ctx.cat(OpCategory::Memory);
            as.ldl(k, kb, 4 * (2 * round + 9));
            ctx.cat(OpCategory::Arithmetic);
            as.addl(t0, t1, t0);
            as.addl(t0, t1, t0); // t0 = t0 + 2*t1
            as.addl(t0, k, t0);  // f1
            // r2' = rotr(r2 ^ f0, 1)
            ctx.cat(OpCategory::Logic);
            as.xor_(r_[i2], tt, r_[i2]);
            ctx.rotr32i(r_[i2], 1, r_[i2], s1);
            // r3' = rotl(r3, 1) ^ f1  — the ROLX pattern.
            if (ctx.optimized()) {
                ctx.cat(OpCategory::Rotate);
                as.rolx32(r_[i3], 1, t0); // t0 = rotl(r3,1) ^ f1
                std::swap(r_[i3], t0);    // compile-time rename
            } else {
                ctx.rotl32i(r_[i3], 1, r_[i3], s1);
                ctx.cat(OpCategory::Logic);
                as.xor_(r_[i3], t0, r_[i3]);
            }
            // Swap halves for the next round.
            std::swap(i0, i2);
            std::swap(i1, i3);
        }

        // Output whitening undoes the last swap:
        // C_i = R[(i+2)&3] ^ K4+i in logical order (i0,i1,i2,i3).
        int logical[4] = {i0, i1, i2, i3};
        for (int i = 0; i < 4; i++) {
            ctx.cat(OpCategory::Logic);
            as.xor_(r_[logical[(i + 2) & 3]], wk[4 + i], ch[i]);
        }
        ctx.cat(OpCategory::Memory);
        for (int i = 0; i < 4; i++)
            as.stl(ch[i], out_ptr, 4 * i);
    } else {
        // Inverse cipher: input whitening with K4..K7 into swapped
        // slots, rounds backwards with the inverse half-function.
        ctx.cat(OpCategory::Memory);
        for (int i = 0; i < 4; i++)
            as.ldl(r_[(i + 2) & 3], in_ptr, 4 * i);
        ctx.cat(OpCategory::Logic);
        for (int i = 0; i < 4; i++)
            as.xor_(r_[(i + 2) & 3], wk[4 + i], r_[(i + 2) & 3]);

        for (int round = crypto::Twofish::rounds - 1; round >= 0;
             round--) {
            // Undo the swap: the new Feistel inputs are old (i2,i3).
            std::swap(i0, i2);
            std::swap(i1, i3);
            gfunc(r_[i0], t0, 0);
            gfunc(r_[i1], t1, 1);
            ctx.cat(OpCategory::Memory);
            as.ldl(k, kb, 4 * (2 * round + 8));
            ctx.cat(OpCategory::Arithmetic);
            as.addl(t0, t1, tt); // f0
            as.addl(tt, k, tt);
            ctx.cat(OpCategory::Memory);
            as.ldl(k, kb, 4 * (2 * round + 9));
            ctx.cat(OpCategory::Arithmetic);
            as.addl(t0, t1, t0);
            as.addl(t0, t1, t0);
            as.addl(t0, k, t0);  // f1
            // r2 = rotl(n2, 1) ^ f0 — the ROLX pattern.
            if (ctx.optimized()) {
                ctx.cat(OpCategory::Rotate);
                as.rolx32(r_[i2], 1, tt); // tt = rotl(n2,1) ^ f0
                std::swap(r_[i2], tt);
            } else {
                ctx.rotl32i(r_[i2], 1, r_[i2], s1);
                ctx.cat(OpCategory::Logic);
                as.xor_(r_[i2], tt, r_[i2]);
            }
            // r3 = rotr(n3 ^ f1, 1)
            ctx.cat(OpCategory::Logic);
            as.xor_(r_[i3], t0, r_[i3]);
            ctx.rotr32i(r_[i3], 1, r_[i3], s1);
        }

        // Undo the input whitening, CBC-XOR, store, reload chain.
        int logical[4] = {i0, i1, i2, i3};
        for (int i = 0; i < 4; i++) {
            ctx.cat(OpCategory::Logic);
            as.xor_(r_[logical[i]], wk[i], r_[logical[i]]);
            as.xor_(r_[logical[i]], ch[i], r_[logical[i]]);
        }
        ctx.cat(OpCategory::Memory);
        for (int i = 0; i < 4; i++)
            as.stl(r_[logical[i]], out_ptr, 4 * i);
        for (int i = 0; i < 4; i++)
            as.ldl(ch[i], in_ptr, 4 * i);
    }

    ctx.cat(OpCategory::Arithmetic);
    as.addq(in_ptr, 16, in_ptr);
    as.addq(out_ptr, 16, out_ptr);
    as.subq(count, 1, count);
    ctx.cat(OpCategory::Control);
    as.bne(count, "block");
    as.halt();

    b.program = as.finalize();
    b.categories = takeCategories(ctx);
    return b;
}

} // namespace cryptarch::kernels
