/**
 * @file
 * Blowfish CBC encryption kernel in CryptISA.
 *
 * Structure mirrors the CryptSoft software formulation: the 18-entry
 * P-array lives in registers (loaded once per session), the four
 * 256x32 S-boxes are 1 KB tables accessed once per F evaluation, and
 * the 16 rounds are fully unrolled. Per round the optimized variant
 * needs one XOR + four SBOX + three combines + one XOR; the baseline
 * expands each S-box access to extract/scale/load.
 */

#include "crypto/blowfish.hh"
#include "kernels/builders.hh"
#include "kernels/emit.hh"
#include "util/bitops.hh"
#include "util/pi.hh"

#include <stdexcept>

namespace cryptarch::kernels
{

using isa::Reg;

KernelBuild
buildBlowfishKernel(KernelVariant v, std::span<const uint8_t> key,
                    std::span<const uint8_t> iv, size_t bytes,
                    KernelDirection dir)
{
    const bool dec = dir == KernelDirection::Decrypt;
    crypto::Blowfish ref;
    ref.setKey(key);

    KernelBuild b;
    // Memory image: four S-boxes on 1 KB frames, P-array, IV words.
    for (int box = 0; box < 4; box++) {
        b.memInit.emplace_back(
            tableAddr(box), words32(std::span<const uint32_t>(
                                ref.sBoxes()[box].data(), 256)));
    }
    b.memInit.emplace_back(subkey_region,
                           words32(std::span<const uint32_t>(
                               ref.pArray().data(), 18)));
    const uint32_t iv_words[2] = {util::load32be(iv.data()),
                                  util::load32be(iv.data() + 4)};
    b.memInit.emplace_back(iv_region, words32(iv_words));

    KernelCtx ctx(v);
    auto &as = ctx.as;
    auto &rp = ctx.regs;

    Reg in_ptr = rp.alloc(), out_ptr = rp.alloc(), count = rp.alloc();
    Reg cl = rp.alloc(), cr = rp.alloc(); // CBC chain
    Reg l = rp.alloc(), r = rp.alloc();
    Reg t0 = rp.alloc(), t1 = rp.alloc();
    Reg sc0 = rp.alloc(), sc1 = rp.alloc();
    Reg sbase[4];
    for (int i = 0; i < 4; i++)
        sbase[i] = rp.alloc();
    Reg p[18];
    for (int i = 0; i < 18; i++)
        p[i] = rp.alloc();

    // ----- session prologue -----
    ctx.cat(OpCategory::Arithmetic);
    as.li(b.inAddr, in_ptr);
    as.li(b.outAddr, out_ptr);
    as.li(static_cast<int64_t>(bytes / 8), count);
    for (int i = 0; i < 4; i++)
        as.li(static_cast<int64_t>(tableAddr(i)), sbase[i]);
    Reg kb = t0; // reuse scratch for base pointers
    as.li(subkey_region, kb);
    ctx.cat(OpCategory::Memory);
    for (int i = 0; i < 18; i++)
        as.ldl(p[i], kb, 4 * i);
    ctx.cat(OpCategory::Arithmetic);
    as.li(iv_region, kb);
    ctx.cat(OpCategory::Memory);
    as.ldl(cl, kb, 0);
    as.ldl(cr, kb, 4);

    // F(x) accumulated into acc: ((S0[b3] + S1[b2]) ^ S2[b1]) + S3[b0].
    auto feistel = [&](Reg x, Reg acc) {
        ctx.sboxLoad(0, sbase[0], x, 3, acc, sc0);
        ctx.sboxLoad(1, sbase[1], x, 2, t1, sc1);
        ctx.cat(OpCategory::Arithmetic);
        as.addl(acc, t1, acc);
        ctx.sboxLoadXor(2, sbase[2], x, 1, acc, t1, sc0);
        ctx.sboxLoad(3, sbase[3], x, 0, t1, sc1);
        ctx.cat(OpCategory::Arithmetic);
        as.addl(acc, t1, acc);
    };

    // ----- block loop -----
    as.label("block");
    ctx.cat(OpCategory::Memory);
    as.ldl(l, in_ptr, 0);
    as.ldl(r, in_ptr, 4);
    if (!dec) {
        // CBC: XOR the running chain into the plaintext.
        ctx.cat(OpCategory::Logic);
        as.xor_(l, cl, l);
        as.xor_(r, cr, r);
    }

    // Decryption is the same Feistel ladder with the P-array walked
    // backwards: pairs (17,16)...(3,2) and final whitening (0,1).
    for (int i = 0; i < 16; i += 2) {
        int pa = dec ? 17 - i : i;
        int pb = dec ? 16 - i : i + 1;
        ctx.cat(OpCategory::Logic);
        as.xor_(l, p[pa], l);
        feistel(l, t0);
        ctx.cat(OpCategory::Logic);
        as.xor_(r, t0, r);
        as.xor_(r, p[pb], r);
        feistel(r, t0);
        ctx.cat(OpCategory::Logic);
        as.xor_(l, t0, l);
    }
    if (!dec) {
        // Whitening + final swap: ciphertext = (r ^ P17, l ^ P16),
        // which is also the next CBC chain value.
        ctx.cat(OpCategory::Logic);
        as.xor_(r, p[17], cl);
        as.xor_(l, p[16], cr);
        ctx.cat(OpCategory::Memory);
        as.stl(cl, out_ptr, 0);
        as.stl(cr, out_ptr, 4);
    } else {
        // Whitening + swap, then CBC-XOR with the chain; the chain
        // becomes this block's ciphertext (reloaded from the input).
        ctx.cat(OpCategory::Logic);
        as.xor_(r, p[0], t0);
        as.xor_(l, p[1], t1);
        as.xor_(t0, cl, t0);
        as.xor_(t1, cr, t1);
        ctx.cat(OpCategory::Memory);
        as.stl(t0, out_ptr, 0);
        as.stl(t1, out_ptr, 4);
        as.ldl(cl, in_ptr, 0);
        as.ldl(cr, in_ptr, 4);
    }

    ctx.cat(OpCategory::Arithmetic);
    as.addq(in_ptr, 8, in_ptr);
    as.addq(out_ptr, 8, out_ptr);
    as.subq(count, 1, count);
    ctx.cat(OpCategory::Control);
    as.bne(count, "block");
    as.halt();

    b.program = as.finalize();
    b.categories = takeCategories(ctx);
    return b;
}

KernelBuild
buildBlowfishSetupKernel(KernelVariant v, std::span<const uint8_t> key)
{
    if (key.size() != 16)
        throw std::invalid_argument(
            "buildBlowfishSetupKernel: 128-bit keys only");

    KernelBuild b;
    b.cipher = crypto::CipherId::Blowfish;
    b.variant = v;
    b.name = "Blowfish/" + variantName(v) + "/setup";
    b.sessionBytes = 0;

    // Memory image: pi-initialized P and S tables (pre-key), plus the
    // four key words XOR'ed cyclically into P. With a 16-byte key the
    // cyclic pattern is exactly four big-endian words.
    const auto &pi = util::piFractionWords(18 + 4 * 256);
    b.memInit.emplace_back(subkey_region,
                           words32(std::span<const uint32_t>(pi.data(),
                                                             18)));
    for (int box = 0; box < 4; box++) {
        b.memInit.emplace_back(
            tableAddr(box),
            words32(std::span<const uint32_t>(pi.data() + 18 + 256 * box,
                                              256)));
    }
    uint32_t key_words[4];
    for (int i = 0; i < 4; i++)
        key_words[i] = util::load32be(key.data() + 4 * i);
    b.memInit.emplace_back(aux_region, words32(key_words));

    KernelCtx ctx(v);
    auto &as = ctx.as;
    auto &rp = ctx.regs;

    Reg pbase = rp.alloc(), kwbase = rp.alloc();
    Reg l = rp.alloc(), r = rp.alloc();
    Reg t0 = rp.alloc(), t1 = rp.alloc();
    Reg sc0 = rp.alloc(), sc1 = rp.alloc();
    Reg sptr = rp.alloc(), count = rp.alloc();
    Reg sbase[4];
    for (auto &reg : sbase)
        reg = rp.alloc();
    Reg p[18];
    for (auto &reg : p)
        reg = rp.alloc();
    Reg kw[4];
    for (auto &reg : kw)
        reg = rp.alloc();

    ctx.cat(OpCategory::Arithmetic);
    as.li(subkey_region, pbase);
    as.li(aux_region, kwbase);
    for (int i = 0; i < 4; i++)
        as.li(static_cast<int64_t>(tableAddr(i)), sbase[i]);

    // Phase 1: P[i] ^= key (cyclic), with P held in registers after.
    ctx.cat(OpCategory::Memory);
    for (int i = 0; i < 4; i++)
        as.ldl(kw[i], kwbase, 4 * i);
    for (int i = 0; i < 18; i++)
        as.ldl(p[i], pbase, 4 * i);
    ctx.cat(OpCategory::Logic);
    for (int i = 0; i < 18; i++)
        as.xor_(p[i], kw[i % 4], p[i]);

    // The encryption ladder. Setup reads tables it is rewriting, so
    // the optimized variant must use the aliased SBOX form.
    auto feistel = [&](Reg x, Reg acc) {
        ctx.sboxLoad(0, sbase[0], x, 3, acc, sc0, /*aliased=*/true);
        ctx.sboxLoad(1, sbase[1], x, 2, t1, sc1, true);
        ctx.cat(OpCategory::Arithmetic);
        as.addl(acc, t1, acc);
        ctx.sboxLoadXor(2, sbase[2], x, 1, acc, t1, sc0, true);
        ctx.sboxLoad(3, sbase[3], x, 0, t1, sc1, true);
        ctx.cat(OpCategory::Arithmetic);
        as.addl(acc, t1, acc);
    };
    auto ladder = [&] {
        for (int i = 0; i < 16; i += 2) {
            ctx.cat(OpCategory::Logic);
            as.xor_(l, p[i], l);
            feistel(l, t0);
            ctx.cat(OpCategory::Logic);
            as.xor_(r, t0, r);
            as.xor_(r, p[i + 1], r);
            feistel(r, t0);
            ctx.cat(OpCategory::Logic);
            as.xor_(l, t0, l);
        }
        // Whitening + swap: (l, r) <- (r ^ P17, l ^ P16).
        ctx.cat(OpCategory::Logic);
        as.xor_(r, p[17], t0);
        as.xor_(l, p[16], t1);
        ctx.cat(OpCategory::Arithmetic);
        as.bis(t0, isa::reg_zero, l);
        as.bis(t1, isa::reg_zero, r);
    };

    // Phase 2: nine ladder applications refill the register P-array.
    ctx.cat(OpCategory::Arithmetic);
    as.li(0, l);
    as.li(0, r);
    for (int i = 0; i < 18; i += 2) {
        ladder();
        ctx.cat(OpCategory::Arithmetic);
        as.bis(l, isa::reg_zero, p[i]);
        as.bis(r, isa::reg_zero, p[i + 1]);
    }

    // Phase 3: 512 ladder applications refill the S-boxes (the tables
    // are contiguous 1 KB frames, so one running pointer suffices).
    ctx.cat(OpCategory::Arithmetic);
    as.li(static_cast<int64_t>(tableAddr(0)), sptr);
    as.li(512, count); // 4 boxes x 256 entries / 2 words per ladder
    as.label("fill");
    ladder();
    ctx.cat(OpCategory::Memory);
    as.stl(l, sptr, 0);
    as.stl(r, sptr, 4);
    ctx.cat(OpCategory::Arithmetic);
    as.addq(sptr, 8, sptr);
    as.subq(count, 1, count);
    ctx.cat(OpCategory::Control);
    as.bne(count, "fill");

    // Publish: P-array back to memory, then SBOXSYNC so subsequent
    // (non-aliased) SBOX instructions observe the new tables.
    ctx.cat(OpCategory::Memory);
    for (int i = 0; i < 18; i++)
        as.stl(p[i], pbase, 4 * i);
    if (ctx.optimized()) {
        ctx.cat(OpCategory::Substitution);
        as.sboxsync();
    }
    as.halt();

    b.program = as.finalize();
    b.categories = takeCategories(ctx);
    return b;
}

} // namespace cryptarch::kernels
