/**
 * @file
 * Cipher kernels hand-coded in CryptISA.
 *
 * For every cipher in the suite a kernel is provided in three variants:
 *
 *  - BaselineNoRot  the stock Alpha-like ISA: rotates synthesized from
 *                   shifts (3 insts constant / 4 variable), S-box reads
 *                   via extract/scale/load (3 insts, 5 cycles), modular
 *                   multiplies via multiply-and-correct sequences,
 *                   permutations via shift/mask swap networks.
 *  - BaselineRot    the same code with hardware ROL/ROR (the paper's
 *                   normalization target — "many architectures have
 *                   fast rotates").
 *  - Optimized      the full extension set: SBOX substitutions,
 *                   MULMOD, ROLX/RORX combining, XBOX permutations.
 *
 * Every kernel encrypts a whole CBC session (IV load, per-block
 * chaining, block loop) so the dynamic trace includes the real loop
 * structure. Kernels are validated byte-for-byte against the reference
 * ciphers (tests/kernels/).
 *
 * I/O convention: block data crosses kernel memory in the cipher's
 * natural word layout (the words an Alpha implementation would load
 * with 32-bit loads). toWordImage()/fromWordImage() convert between
 * raw byte streams and that layout.
 */

#ifndef CRYPTARCH_KERNELS_KERNEL_HH
#define CRYPTARCH_KERNELS_KERNEL_HH

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "crypto/cipher.hh"
#include "isa/machine.hh"
#include "isa/program.hh"

namespace cryptarch::kernels
{

/** Code-generation variant (see file header). */
enum class KernelVariant
{
    BaselineNoRot,
    BaselineRot,
    Optimized,
    /**
     * Optimized, with general permutations performed by Shi & Lee's
     * GRP instruction instead of XBOX (the enhancement the paper's
     * related-work section reports being underway: 5 instructions per
     * 32-bit permutation instead of 7, log2(n) GRP steps). Only 3DES
     * has in-kernel permutations, so every other cipher's kernel is
     * identical to Optimized.
     */
    OptimizedGrp,
    /**
     * Optimized, plus the fused substitute-and-XOR instruction SBOXX —
     * the paper's *future work* ("four operand instructions to permit
     * increased operation combining", section 8), which it excluded
     * from the main proposal because a third register read port slows
     * the register file. The ablation_fused bench quantifies what the
     * extra port would buy on the substitution ciphers.
     */
    OptimizedFused,
};

/** Name of a variant for reports. */
std::string variantName(KernelVariant v);

/**
 * Kernel direction. The paper measures encryption only, noting
 * "because of the symmetry between the encryption and decryption
 * algorithms, performance was comparable for these codes for all
 * experiments" (footnote 1); the decryption kernels exist to let a
 * user verify that claim and to make the library complete.
 */
enum class KernelDirection
{
    Encrypt,
    Decrypt,
};

/** Name of a direction for reports. */
std::string directionName(KernelDirection d);

/**
 * Operation category for the Figure 7 kernel characterization. Each
 * static instruction is classified when the kernel is emitted (the
 * paper classified its instructions by hand the same way).
 */
enum class OpCategory : uint8_t
{
    Arithmetic,   ///< adds/subs/moves incl. address arithmetic
    Logic,        ///< XOR/AND/OR
    Rotate,       ///< rotates (incl. synthesized rotate sequences)
    Multiply,     ///< multiplies and modular-multiply sequences
    Substitution, ///< S-box accesses (SBOX or load sequences)
    Permute,      ///< general bit permutations (XBOX or swap networks)
    Memory,       ///< other loads/stores (data, keys, IV)
    Control,      ///< branches
};

constexpr unsigned num_op_categories = 8;

/** Category display name (Figure 7 legend). */
std::string categoryName(OpCategory c);

/** A fully built kernel: program + memory image + I/O map. */
struct KernelBuild
{
    std::string name;
    crypto::CipherId cipher;
    KernelVariant variant;

    isa::Program program;
    /** Per static instruction, the Figure 7 category. */
    std::vector<OpCategory> categories;
    /** Initial memory contents: (address, bytes) pairs. */
    std::vector<std::pair<uint64_t, std::vector<uint8_t>>> memInit;

    uint64_t inAddr = 0x100000;
    uint64_t outAddr = 0x200000;
    /** Bytes of plaintext processed per run. */
    size_t sessionBytes = 0;

    /**
     * Install tables/keys and the plaintext word image into an
     * execution backend. @p in_image must be sessionBytes long (see
     * toWordImage).
     */
    void install(isa::ExecBackend &m,
                 std::span<const uint8_t> in_image) const;

    /** Read back the ciphertext word image after a run. */
    std::vector<uint8_t> readOutput(const isa::ExecBackend &m) const;
};

/**
 * Build the kernel for @p cipher/@p variant keyed with @p key, chaining
 * from @p iv, processing @p session_bytes (a multiple of the block
 * size; RC4 ignores the IV). Decrypt kernels consume ciphertext in
 * the input buffer and produce plaintext (CBC chaining reversed).
 */
KernelBuild buildKernel(crypto::CipherId cipher, KernelVariant variant,
                        std::span<const uint8_t> key,
                        std::span<const uint8_t> iv, size_t session_bytes,
                        KernelDirection direction
                            = KernelDirection::Encrypt);

/**
 * Blowfish key-setup kernel: XOR the key into the pi-initialized
 * P-array and replace P and all four S-boxes with 521 successive
 * encryptions of the zero block — the Figure 6 outlier, here runnable
 * in the simulator so its cost is measured rather than estimated. The
 * optimized variant uses aliased SBOX accesses (setup mutates the
 * tables it reads) and ends with SBOXSYNC, the placement the paper
 * prescribes ("always at the end of key setup routines").
 *
 * After a run, the expanded P-array is at the subkey region and the
 * S-boxes on their table frames, ready for the encryption kernel.
 */
KernelBuild buildBlowfishSetupKernel(KernelVariant variant,
                                     std::span<const uint8_t> key);

/** Convert a raw byte stream into the cipher's kernel word layout. */
std::vector<uint8_t> toWordImage(crypto::CipherId cipher,
                                 std::span<const uint8_t> bytes);

/** Convert a kernel word image back into the raw byte stream. */
std::vector<uint8_t> fromWordImage(crypto::CipherId cipher,
                                   std::span<const uint8_t> image);

/**
 * Dynamic operation-mix collector (Figure 7): counts retired
 * instructions per category using the kernel's static classification.
 */
class OpMixCounter : public isa::TraceSink
{
  public:
    explicit OpMixCounter(const KernelBuild &build) : build(build) {}

    void
    emit(const isa::DynInst &inst) override
    {
        if (inst.pc < build.categories.size())
            counts[static_cast<size_t>(build.categories[inst.pc])]++;
        total++;
    }

    uint64_t count(OpCategory c) const
    {
        return counts[static_cast<size_t>(c)];
    }
    uint64_t totalInsts() const { return total; }

    double
    fraction(OpCategory c) const
    {
        return total ? static_cast<double>(count(c)) / total : 0.0;
    }

  private:
    const KernelBuild &build;
    std::array<uint64_t, num_op_categories> counts{};
    uint64_t total = 0;
};

} // namespace cryptarch::kernels

#endif // CRYPTARCH_KERNELS_KERNEL_HH
