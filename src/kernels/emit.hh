/**
 * @file
 * Shared code-generation helpers for the cipher kernels.
 *
 * KernelCtx wraps the assembler with (a) per-instruction Figure 7
 * category tracking and (b) variant-aware emission of the operations
 * the paper's extensions target: rotates, S-box accesses and modular
 * multiplies. The instruction counts of the baseline expansions match
 * the paper's accounting (3-instruction constant rotate, 4-instruction
 * variable rotate, 3-instruction S-box access).
 */

#ifndef CRYPTARCH_KERNELS_EMIT_HH
#define CRYPTARCH_KERNELS_EMIT_HH

#include <string>

#include "isa/program.hh"
#include "kernels/kernel.hh"

namespace cryptarch::kernels
{

using isa::Reg;

/** Emission context shared by all kernel builders. */
class KernelCtx
{
  public:
    explicit KernelCtx(KernelVariant variant) : variant(variant) {}

    isa::Assembler as;
    isa::RegPool regs;
    KernelVariant variant;

    bool
    hasRotates() const
    {
        return variant != KernelVariant::BaselineNoRot;
    }

    bool
    optimized() const
    {
        return variant == KernelVariant::Optimized
            || variant == KernelVariant::OptimizedGrp
            || variant == KernelVariant::OptimizedFused;
    }

    bool fused() const { return variant == KernelVariant::OptimizedFused; }

    /** Set the category applied to subsequently emitted instructions. */
    void
    cat(OpCategory c)
    {
        sync();
        current = c;
    }

    /** Pad the category list up to the emitted instruction count. */
    void
    sync()
    {
        while (cats.size() < as.size())
            cats.push_back(current);
    }

    /** Unique label factory for expansion-internal branches. */
    std::string
    uniqueLabel(const std::string &prefix)
    {
        return prefix + "$" + std::to_string(labelCounter++);
    }

    // ----- variant-aware operation emitters -----

    /** d = rotl32(a, n); clobbers @p scratch in baseline variants. */
    void rotl32i(Reg a, unsigned n, Reg d, Reg scratch);
    /** d = rotr32(a, n). */
    void rotr32i(Reg a, unsigned n, Reg d, Reg scratch);
    /** d = rotl32(a, b) for variable b; clobbers two scratches. */
    void rotl32v(Reg a, Reg b, Reg d, Reg s1, Reg s2);
    /** d = rotr32(a, b). */
    void rotr32v(Reg a, Reg b, Reg d, Reg s1, Reg s2);
    /** d = rotl32(a, n) ^ d (the ROLX pattern); two scratches needed
     *  by the rotate-less baseline. */
    void rotlXor(Reg a, unsigned n, Reg d, Reg s1, Reg s2);

    /**
     * d = MEM32[table + 4 * byte(x, byte_sel)] — one S-box access.
     * Optimized: a single SBOX instruction steered to @p table_id.
     * Baseline: extract + scaled-add + load (3 insts, 5 cycles).
     */
    void sboxLoad(unsigned table_id, Reg table_base, Reg x,
                  unsigned byte_sel, Reg d, Reg scratch,
                  bool aliased = false);

    /**
     * acc ^= MEM32[table + 4 * byte(x, byte_sel)] — an S-box access
     * folded into an XOR accumulation. One SBOXX instruction in the
     * OptimizedFused variant; an S-box access plus an XOR otherwise.
     * @p t receives the loaded value in the unfused forms.
     */
    void sboxLoadXor(unsigned table_id, Reg table_base, Reg x,
                     unsigned byte_sel, Reg acc, Reg t, Reg scratch,
                     bool aliased = false);

    /**
     * d = (a * b) mod 0x10001 with IDEA's zero convention, for clean
     * 16-bit operands. Optimized: one MULMOD. Baseline: multiply plus
     * Lai's low-high correction with a zero-operand fixup branch.
     * @p const_one must hold 1. Clobbers @p t and @p s.
     */
    void mulmod16(Reg a, Reg b, Reg d, Reg t, Reg s, Reg const_one);

    /**
     * d = low 32 bits of a * b. The baseline uses the stock 7-cycle
     * multiplier (Alpha's MULL latency); the optimized variant uses
     * the paper's word-sized multiply with the 4-cycle early-out
     * ("the 4W model also supports optimized multiplication").
     */
    void mul32(Reg a, Reg b, Reg d);

  private:
    std::vector<OpCategory> cats;
    OpCategory current = OpCategory::Arithmetic;
    unsigned labelCounter = 0;

    friend struct KernelLoop;
    friend std::vector<OpCategory> takeCategories(KernelCtx &ctx);
};

/** Finalize category tracking and hand the list over. */
std::vector<OpCategory> takeCategories(KernelCtx &ctx);

} // namespace cryptarch::kernels

#endif // CRYPTARCH_KERNELS_EMIT_HH
