#include "kernels/kernel.hh"

#include <stdexcept>

#include "kernels/builders.hh"
#include "util/bitops.hh"

namespace cryptarch::kernels
{

using crypto::CipherId;

std::string
variantName(KernelVariant v)
{
    switch (v) {
      case KernelVariant::BaselineNoRot:
        return "baseline-norot";
      case KernelVariant::BaselineRot:
        return "baseline-rot";
      case KernelVariant::Optimized:
        return "optimized";
      case KernelVariant::OptimizedGrp:
        return "optimized-grp";
      case KernelVariant::OptimizedFused:
        return "optimized-fused";
    }
    return "?";
}

std::string
directionName(KernelDirection d)
{
    return d == KernelDirection::Encrypt ? "encrypt" : "decrypt";
}

std::string
categoryName(OpCategory c)
{
    switch (c) {
      case OpCategory::Arithmetic: return "Arithmetic";
      case OpCategory::Logic: return "Logic";
      case OpCategory::Rotate: return "Rotates";
      case OpCategory::Multiply: return "Multiplies";
      case OpCategory::Substitution: return "Substitutions";
      case OpCategory::Permute: return "Permutes";
      case OpCategory::Memory: return "Loads/Stores";
      case OpCategory::Control: return "Control";
    }
    return "?";
}

std::vector<uint8_t>
words32(std::span<const uint32_t> ws)
{
    std::vector<uint8_t> out(ws.size() * 4);
    for (size_t i = 0; i < ws.size(); i++)
        util::store32le(out.data() + 4 * i, ws[i]);
    return out;
}

std::vector<uint8_t>
words16To32(std::span<const uint16_t> ws)
{
    std::vector<uint8_t> out(ws.size() * 4);
    for (size_t i = 0; i < ws.size(); i++)
        util::store32le(out.data() + 4 * i, ws[i]);
    return out;
}

std::vector<uint8_t>
words64(std::span<const uint64_t> ws)
{
    std::vector<uint8_t> out(ws.size() * 8);
    for (size_t i = 0; i < ws.size(); i++) {
        util::store32le(out.data() + 8 * i, static_cast<uint32_t>(ws[i]));
        util::store32le(out.data() + 8 * i + 4,
                        static_cast<uint32_t>(ws[i] >> 32));
    }
    return out;
}

namespace
{

/** Word layout of a cipher's kernel I/O. */
struct WordLayout
{
    unsigned wordBytes;  ///< 1 (raw), 2 or 4
    bool bigEndian;      ///< cipher reads words big-endian from bytes
};

WordLayout
layoutOf(CipherId id)
{
    switch (id) {
      case CipherId::TripleDES:
      case CipherId::Blowfish:
        return {4, true};
      case CipherId::IDEA:
        return {2, true};
      case CipherId::Rijndael:
        return {4, true};
      case CipherId::MARS:
      case CipherId::RC6:
      case CipherId::Twofish:
        return {4, false};
      case CipherId::RC4:
        return {1, false};
    }
    throw std::invalid_argument("layoutOf: unknown cipher");
}

} // namespace

std::vector<uint8_t>
toWordImage(CipherId cipher, std::span<const uint8_t> bytes)
{
    WordLayout l = layoutOf(cipher);
    if (l.wordBytes == 1 || !l.bigEndian)
        return {bytes.begin(), bytes.end()};
    if (bytes.size() % l.wordBytes != 0)
        throw std::invalid_argument("toWordImage: ragged input");
    std::vector<uint8_t> out(bytes.size());
    for (size_t i = 0; i < bytes.size(); i += l.wordBytes) {
        for (unsigned j = 0; j < l.wordBytes; j++)
            out[i + j] = bytes[i + (l.wordBytes - 1 - j)];
    }
    return out;
}

std::vector<uint8_t>
fromWordImage(CipherId cipher, std::span<const uint8_t> image)
{
    // Byte reversal per word is an involution.
    return toWordImage(cipher, image);
}

void
KernelBuild::install(isa::ExecBackend &m,
                     std::span<const uint8_t> in_image) const
{
    if (in_image.size() != sessionBytes)
        throw std::invalid_argument("KernelBuild::install: bad input size");
    for (const auto &[addr, bytes] : memInit)
        m.writeMem(addr, bytes);
    m.writeMem(inAddr, {in_image.begin(), in_image.end()});
}

std::vector<uint8_t>
KernelBuild::readOutput(const isa::ExecBackend &m) const
{
    return m.readMem(outAddr, sessionBytes);
}

KernelBuild
buildKernel(CipherId cipher, KernelVariant variant,
            std::span<const uint8_t> key, std::span<const uint8_t> iv,
            size_t session_bytes, KernelDirection direction)
{
    const auto &info = crypto::cipherInfo(cipher);
    if (cipher != CipherId::RC4 && session_bytes % info.blockBytes != 0)
        throw std::invalid_argument(
            "buildKernel: session not a whole number of blocks");
    if (session_bytes == 0)
        throw std::invalid_argument("buildKernel: empty session");

    KernelBuild b;
    switch (cipher) {
      case CipherId::Blowfish:
        b = buildBlowfishKernel(variant, key, iv, session_bytes,
                               direction);
        break;
      case CipherId::IDEA:
        b = buildIdeaKernel(variant, key, iv, session_bytes,
                               direction);
        break;
      case CipherId::RC6:
        b = buildRc6Kernel(variant, key, iv, session_bytes,
                               direction);
        break;
      case CipherId::RC4:
        b = buildRc4Kernel(variant, key, iv, session_bytes,
                               direction);
        break;
      case CipherId::Rijndael:
        b = buildRijndaelKernel(variant, key, iv, session_bytes,
                               direction);
        break;
      case CipherId::Twofish:
        b = buildTwofishKernel(variant, key, iv, session_bytes,
                               direction);
        break;
      case CipherId::MARS:
        b = buildMarsKernel(variant, key, iv, session_bytes,
                               direction);
        break;
      case CipherId::TripleDES:
        b = buildTripleDesKernel(variant, key, iv, session_bytes,
                               direction);
        break;
    }
    b.cipher = cipher;
    b.variant = variant;
    b.name = info.name + "/" + variantName(variant) + "/"
        + directionName(direction);
    b.sessionBytes = session_bytes;
    return b;
}

} // namespace cryptarch::kernels
