/**
 * @file
 * IDEA CBC encryption kernel in CryptISA.
 *
 * IDEA's diffusion is 34 multiplications modulo 2^16+1 per 64-bit
 * block (four per round plus two in the output transform). The
 * baseline variant expands each into a 32-bit multiply plus Lai's
 * low-high correction with a zero-operand fixup branch (~11
 * instructions, 7+ cycles); the optimized variant is a single 4-cycle
 * MULMOD — the source of IDEA's 159% speedup in Figure 10.
 */

#include "crypto/idea.hh"
#include "kernels/builders.hh"
#include "kernels/emit.hh"

namespace cryptarch::kernels
{

using isa::Reg;

KernelBuild
buildIdeaKernel(KernelVariant v, std::span<const uint8_t> key,
                std::span<const uint8_t> iv, size_t bytes,
                KernelDirection dir)
{
    const bool dec = dir == KernelDirection::Decrypt;
    crypto::Idea ref;
    ref.setKey(key);

    KernelBuild b;
    // 52 subkeys as 16-bit values in 32-bit slots (ldl-addressable).
    // Decryption is the identical kernel driven by the inverted key
    // schedule — IDEA's defining symmetry.
    const auto &keys = dec ? ref.decryptKeys() : ref.encryptKeys();
    b.memInit.emplace_back(subkey_region,
                           words16To32(std::span<const uint16_t>(
                               keys.data(), 52)));
    const uint16_t iv_words[4] = {
        static_cast<uint16_t>((iv[0] << 8) | iv[1]),
        static_cast<uint16_t>((iv[2] << 8) | iv[3]),
        static_cast<uint16_t>((iv[4] << 8) | iv[5]),
        static_cast<uint16_t>((iv[6] << 8) | iv[7]),
    };
    b.memInit.emplace_back(iv_region, words16To32(iv_words));

    KernelCtx ctx(v);
    auto &as = ctx.as;
    auto &rp = ctx.regs;

    Reg in_ptr = rp.alloc(), out_ptr = rp.alloc(), count = rp.alloc();
    Reg kb = rp.alloc();
    Reg c0 = rp.alloc(), c1 = rp.alloc(), c2 = rp.alloc(),
        c3 = rp.alloc();
    Reg x0 = rp.alloc(), x1 = rp.alloc(), x2 = rp.alloc(),
        x3 = rp.alloc();
    Reg t0 = rp.alloc(), t1 = rp.alloc(), t2 = rp.alloc();
    Reg s0 = rp.alloc(), s1 = rp.alloc();
    Reg one = rp.alloc();

    ctx.cat(OpCategory::Arithmetic);
    as.li(b.inAddr, in_ptr);
    as.li(b.outAddr, out_ptr);
    as.li(static_cast<int64_t>(bytes / 8), count);
    as.li(subkey_region, kb);
    as.li(1, one);
    Reg ivb = t0;
    as.li(iv_region, ivb);
    ctx.cat(OpCategory::Memory);
    as.ldwu(c0, ivb, 0);
    as.ldwu(c1, ivb, 4);
    as.ldwu(c2, ivb, 8);
    as.ldwu(c3, ivb, 12);

    // 16-bit modular add: d = (a + k) & 0xffff.
    auto add16 = [&](Reg a, Reg k, Reg d) {
        ctx.cat(OpCategory::Arithmetic);
        as.addl(a, k, d);
        as.and_(d, 0xFFFF, d);
    };

    as.label("block");
    ctx.cat(OpCategory::Memory);
    as.ldwu(x0, in_ptr, 0);
    as.ldwu(x1, in_ptr, 2);
    as.ldwu(x2, in_ptr, 4);
    as.ldwu(x3, in_ptr, 6);
    if (!dec) {
        ctx.cat(OpCategory::Logic);
        as.xor_(x0, c0, x0);
        as.xor_(x1, c1, x1);
        as.xor_(x2, c2, x2);
        as.xor_(x3, c3, x3);
    }

    Reg k0 = rp.alloc(), k1 = rp.alloc(), k2 = rp.alloc(),
        k3 = rp.alloc(), k4 = rp.alloc(), k5 = rp.alloc();

    for (int round = 0; round < 8; round++) {
        const int base = round * 24; // 6 keys x 4 bytes
        ctx.cat(OpCategory::Memory);
        as.ldl(k0, kb, base + 0);
        as.ldl(k1, kb, base + 4);
        as.ldl(k2, kb, base + 8);
        as.ldl(k3, kb, base + 12);
        as.ldl(k4, kb, base + 16);
        as.ldl(k5, kb, base + 20);

        ctx.mulmod16(x0, k0, x0, s0, s1, one);
        add16(x1, k1, x1);
        add16(x2, k2, x2);
        ctx.mulmod16(x3, k3, x3, s0, s1, one);

        ctx.cat(OpCategory::Logic);
        as.xor_(x0, x2, t0);
        ctx.mulmod16(t0, k4, t0, s0, s1, one);
        ctx.cat(OpCategory::Logic);
        as.xor_(x1, x3, t1);
        add16(t1, t0, t1);
        ctx.mulmod16(t1, k5, t1, s0, s1, one);
        add16(t0, t1, t2);

        ctx.cat(OpCategory::Logic);
        as.xor_(x0, t1, x0);
        as.xor_(x3, t2, x3);
        // Swap middle words while mixing: x1' = x2 ^ t1, x2' = x1 ^ t2.
        as.xor_(x1, t2, s0);
        as.xor_(x2, t1, x1);
        as.bis(s0, isa::reg_zero, x2);
    }

    // Output transform (undoes the final swap).
    ctx.cat(OpCategory::Memory);
    as.ldl(k0, kb, 48 * 4);
    as.ldl(k1, kb, 49 * 4);
    as.ldl(k2, kb, 50 * 4);
    as.ldl(k3, kb, 51 * 4);
    if (!dec) {
        ctx.mulmod16(x0, k0, c0, s0, s1, one);
        add16(x2, k1, c1);
        add16(x1, k2, c2);
        ctx.mulmod16(x3, k3, c3, s0, s1, one);

        ctx.cat(OpCategory::Memory);
        as.stw(c0, out_ptr, 0);
        as.stw(c1, out_ptr, 2);
        as.stw(c2, out_ptr, 4);
        as.stw(c3, out_ptr, 6);
    } else {
        Reg y0 = k0, y1 = k1, y2 = k2, y3 = k3; // reuse key temps
        ctx.mulmod16(x0, k0, y0, s0, s1, one);
        add16(x2, k1, y1);
        add16(x1, k2, y2);
        ctx.mulmod16(x3, k3, y3, s0, s1, one);
        ctx.cat(OpCategory::Logic);
        as.xor_(y0, c0, y0);
        as.xor_(y1, c1, y1);
        as.xor_(y2, c2, y2);
        as.xor_(y3, c3, y3);
        ctx.cat(OpCategory::Memory);
        as.stw(y0, out_ptr, 0);
        as.stw(y1, out_ptr, 2);
        as.stw(y2, out_ptr, 4);
        as.stw(y3, out_ptr, 6);
        as.ldwu(c0, in_ptr, 0);
        as.ldwu(c1, in_ptr, 2);
        as.ldwu(c2, in_ptr, 4);
        as.ldwu(c3, in_ptr, 6);
    }

    ctx.cat(OpCategory::Arithmetic);
    as.addq(in_ptr, 8, in_ptr);
    as.addq(out_ptr, 8, out_ptr);
    as.subq(count, 1, count);
    ctx.cat(OpCategory::Control);
    as.bne(count, "block");
    as.halt();

    b.program = as.finalize();
    b.categories = takeCategories(ctx);
    return b;
}

} // namespace cryptarch::kernels
