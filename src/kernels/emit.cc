#include "kernels/emit.hh"

namespace cryptarch::kernels
{

void
KernelCtx::rotl32i(Reg a, unsigned n, Reg d, Reg scratch)
{
    n &= 31;
    cat(OpCategory::Rotate);
    if (hasRotates()) {
        as.rol32(a, static_cast<int64_t>(n), d);
        return;
    }
    if (n == 0) {
        as.bis(a, isa::reg_zero, d);
        return;
    }
    // 3 instructions, 2 cycles (the paper's synthesized constant
    // rotate): the two shifts are independent.
    as.sll32(a, n, scratch);
    as.srl32(a, 32 - n, d);
    as.bis(scratch, d, d);
}

void
KernelCtx::rotr32i(Reg a, unsigned n, Reg d, Reg scratch)
{
    rotl32i(a, (32 - (n & 31)) & 31, d, scratch);
}

void
KernelCtx::rotl32v(Reg a, Reg b, Reg d, Reg s1, Reg s2)
{
    cat(OpCategory::Rotate);
    if (hasRotates()) {
        as.rol32(a, b, d);
        return;
    }
    // 4 instructions, 3 cycles: negate (32-b mod 32), two shifts, or.
    as.sll32(a, b, s1);
    as.subl(isa::reg_zero, b, s2);
    as.srl32(a, s2, d);
    as.bis(s1, d, d);
}

void
KernelCtx::rotr32v(Reg a, Reg b, Reg d, Reg s1, Reg s2)
{
    cat(OpCategory::Rotate);
    if (hasRotates()) {
        as.ror32(a, b, d);
        return;
    }
    as.srl32(a, b, s1);
    as.subl(isa::reg_zero, b, s2);
    as.sll32(a, s2, d);
    as.bis(s1, d, d);
}

void
KernelCtx::rotlXor(Reg a, unsigned n, Reg d, Reg s1, Reg s2)
{
    if (optimized()) {
        cat(OpCategory::Rotate);
        as.rolx32(a, static_cast<int64_t>(n & 31), d);
        return;
    }
    rotl32i(a, n, s1, s2);
    cat(OpCategory::Logic);
    as.xor_(d, s1, d);
}

void
KernelCtx::sboxLoad(unsigned table_id, Reg table_base, Reg x,
                    unsigned byte_sel, Reg d, Reg scratch, bool aliased)
{
    cat(OpCategory::Substitution);
    if (optimized()) {
        as.sbox(table_id, byte_sel, table_base, x, d, aliased);
        return;
    }
    // extract byte, scale-and-add, load: 3 instructions / 5 cycles.
    as.extbl(x, static_cast<int64_t>(byte_sel), scratch);
    as.s4add(scratch, table_base, scratch);
    as.ldl(d, scratch, 0);
}

void
KernelCtx::sboxLoadXor(unsigned table_id, Reg table_base, Reg x,
                       unsigned byte_sel, Reg acc, Reg t, Reg scratch,
                       bool aliased)
{
    if (fused()) {
        cat(OpCategory::Substitution);
        as.sboxx(table_id, byte_sel, table_base, x, acc, aliased);
        return;
    }
    sboxLoad(table_id, table_base, x, byte_sel, t, scratch, aliased);
    cat(OpCategory::Logic);
    as.xor_(acc, t, acc);
}

void
KernelCtx::mul32(Reg a, Reg b, Reg d)
{
    cat(OpCategory::Multiply);
    if (optimized())
        as.mull(a, b, d);
    else
        as.mulq(a, b, d);
}

void
KernelCtx::mulmod16(Reg a, Reg b, Reg d, Reg t, Reg s, Reg const_one)
{
    cat(OpCategory::Multiply);
    if (optimized()) {
        as.mulmod(a, b, d);
        return;
    }
    std::string zero_case = uniqueLabel("mmz");
    std::string done = uniqueLabel("mme");
    // Typical path: stock multiply then Lai's lo-hi correction. The
    // product of two 16-bit operands fits 32 bits, so the 64-bit
    // result is directly usable.
    as.mulq(a, b, t);
    as.beq(t, zero_case);
    as.and_(t, 0xFFFF, d);   // lo
    as.srl32(t, 16, t);      // hi
    as.cmpult(d, t, s);      // carry when lo < hi
    as.subl(d, t, d);
    as.addl(d, s, d);
    as.and_(d, 0xFFFF, d);
    as.br(done);
    as.label(zero_case);
    // One operand encodes 2^16: result = (1 - a - b) mod 2^16.
    as.addl(a, b, d);
    as.subl(const_one, d, d);
    as.and_(d, 0xFFFF, d);
    as.label(done);
}

std::vector<OpCategory>
takeCategories(KernelCtx &ctx)
{
    ctx.sync();
    return std::move(ctx.cats);
}

} // namespace cryptarch::kernels
