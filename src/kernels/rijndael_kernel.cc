/**
 * @file
 * Rijndael (AES-128) CBC encryption kernel in CryptISA.
 *
 * The classic 32-bit software formulation: each of the nine middle
 * rounds is sixteen T-table lookups (four tables Te0..Te3, steered to
 * the four SBox caches on the 4W+ machine) plus twelve XORs and four
 * round-key loads. The final round substitutes through the raw S-box
 * (a replicated 256x32 table) and repositions bytes with shifts; those
 * accesses use the aliased SBOX form so they do not thrash the Te
 * sector caches between blocks.
 */

#include "crypto/rijndael.hh"
#include "kernels/builders.hh"
#include "kernels/emit.hh"
#include "util/bitops.hh"

namespace cryptarch::kernels
{

using isa::Reg;

KernelBuild
buildRijndaelKernel(KernelVariant v, std::span<const uint8_t> key,
                    std::span<const uint8_t> iv, size_t bytes,
                    KernelDirection dir)
{
    const bool dec = dir == KernelDirection::Decrypt;
    crypto::Rijndael ref;
    ref.setKey(key);

    KernelBuild b;
    // The equivalent inverse cipher has the same shape as encryption:
    // swap in the decryption T tables, the inverse S-box and the
    // inverse-ordered round keys, and reverse the ShiftRows direction.
    const auto &te = dec ? crypto::Rijndael::decTables()
                         : crypto::Rijndael::encTables();
    for (int i = 0; i < 4; i++) {
        b.memInit.emplace_back(tableAddr(i),
                               words32(std::span<const uint32_t>(
                                   te[i].data(), 256)));
    }
    // Final-round byte substitution table, zero-extended.
    const auto &final_box =
        dec ? crypto::Rijndael::invSbox() : crypto::Rijndael::sbox();
    std::vector<uint32_t> s32(256);
    for (int i = 0; i < 256; i++)
        s32[i] = final_box[i];
    b.memInit.emplace_back(tableAddr(4), words32(s32));

    const auto &rks = dec ? ref.decKeys() : ref.encKeys();
    b.memInit.emplace_back(subkey_region,
                           words32(std::span<const uint32_t>(
                               rks.data(), rks.size())));
    const uint32_t iv_words[4] = {
        util::load32be(iv.data()), util::load32be(iv.data() + 4),
        util::load32be(iv.data() + 8), util::load32be(iv.data() + 12)};
    b.memInit.emplace_back(iv_region, words32(iv_words));

    KernelCtx ctx(v);
    auto &as = ctx.as;
    auto &rp = ctx.regs;

    Reg in_ptr = rp.alloc(), out_ptr = rp.alloc(), count = rp.alloc();
    Reg kb = rp.alloc();
    Reg tbase[5];
    for (auto &r : tbase)
        r = rp.alloc();
    Reg ch[4], w[4], n[4];
    for (auto &r : ch)
        r = rp.alloc();
    for (auto &r : w)
        r = rp.alloc();
    for (auto &r : n)
        r = rp.alloc();
    Reg t = rp.alloc(), k = rp.alloc(), scratch = rp.alloc();

    ctx.cat(OpCategory::Arithmetic);
    as.li(b.inAddr, in_ptr);
    as.li(b.outAddr, out_ptr);
    as.li(static_cast<int64_t>(bytes / 16), count);
    as.li(subkey_region, kb);
    for (int i = 0; i < 5; i++)
        as.li(static_cast<int64_t>(tableAddr(i)), tbase[i]);
    Reg ivb = t;
    as.li(iv_region, ivb);
    ctx.cat(OpCategory::Memory);
    for (int i = 0; i < 4; i++)
        as.ldl(ch[i], ivb, 4 * i);

    // ShiftRows walks columns forward when encrypting, backward in
    // the equivalent inverse cipher.
    auto lane = [dec](int j, int k) {
        return dec ? (j + 4 - k) & 3 : (j + k) & 3;
    };

    as.label("block");
    ctx.cat(OpCategory::Memory);
    for (int i = 0; i < 4; i++)
        as.ldl(w[i], in_ptr, 4 * i);
    if (!dec) {
        ctx.cat(OpCategory::Logic);
        for (int i = 0; i < 4; i++)
            as.xor_(w[i], ch[i], w[i]);
    }
    // Initial AddRoundKey.
    for (int i = 0; i < 4; i++) {
        ctx.cat(OpCategory::Memory);
        as.ldl(k, kb, 4 * i);
        ctx.cat(OpCategory::Logic);
        as.xor_(w[i], k, w[i]);
    }

    // Middle rounds: n[j] = Te0[b3 w[j]] ^ Te1[b2 w[j+1]]
    //                      ^ Te2[b1 w[j+2]] ^ Te3[b0 w[j+3]] ^ rk.
    Reg *cur = w, *nxt = n;
    for (int round = 1; round < crypto::Rijndael::rounds; round++) {
        for (int j = 0; j < 4; j++) {
            ctx.sboxLoad(0, tbase[0], cur[j], 3, nxt[j], scratch);
            ctx.sboxLoadXor(1, tbase[1], cur[lane(j, 1)], 2, nxt[j], t,
                            scratch);
            ctx.sboxLoadXor(2, tbase[2], cur[lane(j, 2)], 1, nxt[j], t,
                            scratch);
            ctx.sboxLoadXor(3, tbase[3], cur[lane(j, 3)], 0, nxt[j], t,
                            scratch);
            ctx.cat(OpCategory::Memory);
            as.ldl(k, kb, 4 * (4 * round + j));
            ctx.cat(OpCategory::Logic);
            as.xor_(nxt[j], k, nxt[j]);
        }
        std::swap(cur, nxt);
    }

    // Final round: SubBytes + ShiftRows + AddRoundKey.
    for (int j = 0; j < 4; j++) {
        // byte 3 (MSB) from cur[j], byte 2 from cur[j+1], ...
        ctx.sboxLoad(4, tbase[4], cur[j], 3, nxt[j], scratch,
                     /*aliased=*/true);
        ctx.cat(OpCategory::Logic);
        as.sll32(nxt[j], 24, nxt[j]);
        ctx.sboxLoad(4, tbase[4], cur[lane(j, 1)], 2, t, scratch, true);
        ctx.cat(OpCategory::Logic);
        as.sll32(t, 16, t);
        as.bis(nxt[j], t, nxt[j]);
        ctx.sboxLoad(4, tbase[4], cur[lane(j, 2)], 1, t, scratch, true);
        ctx.cat(OpCategory::Logic);
        as.sll32(t, 8, t);
        as.bis(nxt[j], t, nxt[j]);
        ctx.sboxLoad(4, tbase[4], cur[lane(j, 3)], 0, t, scratch, true);
        ctx.cat(OpCategory::Logic);
        as.bis(nxt[j], t, nxt[j]);
        ctx.cat(OpCategory::Memory);
        as.ldl(k, kb, 4 * (4 * crypto::Rijndael::rounds + j));
        ctx.cat(OpCategory::Logic);
        as.xor_(nxt[j], k, nxt[j]);
    }

    if (!dec) {
        ctx.cat(OpCategory::Memory);
        for (int i = 0; i < 4; i++)
            as.stl(nxt[i], out_ptr, 4 * i);
        ctx.cat(OpCategory::Arithmetic);
        for (int i = 0; i < 4; i++)
            as.bis(nxt[i], isa::reg_zero, ch[i]);
    } else {
        ctx.cat(OpCategory::Logic);
        for (int i = 0; i < 4; i++)
            as.xor_(nxt[i], ch[i], nxt[i]);
        ctx.cat(OpCategory::Memory);
        for (int i = 0; i < 4; i++)
            as.stl(nxt[i], out_ptr, 4 * i);
        for (int i = 0; i < 4; i++)
            as.ldl(ch[i], in_ptr, 4 * i);
    }

    as.addq(in_ptr, 16, in_ptr);
    as.addq(out_ptr, 16, out_ptr);
    as.subq(count, 1, count);
    ctx.cat(OpCategory::Control);
    as.bne(count, "block");
    as.halt();

    b.program = as.finalize();
    b.categories = takeCategories(ctx);
    return b;
}

} // namespace cryptarch::kernels
