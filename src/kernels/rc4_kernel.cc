/**
 * @file
 * RC4 stream encryption kernel in CryptISA.
 *
 * RC4 is the suite's outlier: a key-based random number generator
 * whose iterations are mostly independent, and the only cipher that
 * *stores into* its substitution table. The optimized variant uses the
 * aliased form of SBOX (paper Figure 8's <aliased> flag): a load with
 * optimized address generation that still observes the swap stores,
 * implemented by treating it as a 2-cycle load in the memory ordering
 * queue.
 *
 * The table holds 32-bit entries (values 0..255) so that S[i] is
 * directly SBOX-addressable; the key schedule (run natively at build
 * time) provides the initial permutation state.
 */

#include "crypto/rc4.hh"
#include "kernels/builders.hh"
#include "kernels/emit.hh"

namespace cryptarch::kernels
{

using isa::Reg;

KernelBuild
buildRc4Kernel(KernelVariant v, std::span<const uint8_t> key,
               std::span<const uint8_t> iv, size_t bytes,
               KernelDirection dir)
{
    (void)iv;  // stream cipher: no chaining vector
    (void)dir; // XOR keystream: encryption and decryption coincide
    crypto::Rc4 ref;
    ref.setKey(key);

    KernelBuild b;
    std::vector<uint32_t> table(256);
    for (int i = 0; i < 256; i++)
        table[i] = ref.state()[i];
    b.memInit.emplace_back(tableAddr(0), words32(table));

    KernelCtx ctx(v);
    auto &as = ctx.as;
    auto &rp = ctx.regs;

    Reg in_ptr = rp.alloc(), out_ptr = rp.alloc(), count = rp.alloc();
    Reg sbase = rp.alloc();
    Reg i = rp.alloc(), j = rp.alloc();
    Reg si = rp.alloc(), sj = rp.alloc();
    Reg ai = rp.alloc(), aj = rp.alloc();
    Reg t = rp.alloc(), kstream = rp.alloc(), data = rp.alloc();
    Reg scratch = rp.alloc();

    ctx.cat(OpCategory::Arithmetic);
    as.li(b.inAddr, in_ptr);
    as.li(b.outAddr, out_ptr);
    as.li(static_cast<int64_t>(tableAddr(0)), sbase);
    as.li(0, i);
    as.li(0, j);

    // S[x] load: aliased SBOX when optimized, scaled load otherwise.
    // @p idx must hold a clean 0..255 value (byte 0 is the index).
    auto tableLoad = [&](Reg idx, Reg d) {
        ctx.cat(OpCategory::Substitution);
        if (ctx.optimized()) {
            as.sbox(0, 0, sbase, idx, d, /*aliased=*/true);
        } else {
            as.s4add(idx, sbase, scratch);
            as.ldl(d, scratch, 0);
        }
    };

    // One RC4 iteration processing the byte at pointer offset @p o.
    auto rc4Byte = [&](size_t o) {
        // i = (i + 1) & 0xff; j = (j + S[i]) & 0xff
        ctx.cat(OpCategory::Arithmetic);
        as.addl(i, 1, i);
        as.and_(i, 0xFF, i);
        tableLoad(i, si);
        ctx.cat(OpCategory::Arithmetic);
        as.addl(j, si, j);
        as.and_(j, 0xFF, j);
        tableLoad(j, sj);

        // swap S[i], S[j] — stores into the substitution table.
        ctx.cat(OpCategory::Substitution);
        as.s4add(i, sbase, ai);
        as.s4add(j, sbase, aj);
        as.stl(sj, ai, 0);
        as.stl(si, aj, 0);

        // keystream byte = S[(S[i] + S[j]) & 0xff]
        ctx.cat(OpCategory::Arithmetic);
        as.addl(si, sj, t);
        as.and_(t, 0xFF, t);
        tableLoad(t, kstream);

        ctx.cat(OpCategory::Memory);
        as.ldbu(data, in_ptr, static_cast<int64_t>(o));
        ctx.cat(OpCategory::Logic);
        as.xor_(data, kstream, data);
        ctx.cat(OpCategory::Memory);
        as.stb(data, out_ptr, static_cast<int64_t>(o));
    };

    // The paper treats RC4's "block" as 8 bytes (Table 1); the loop
    // is unrolled eightfold accordingly, which also exposes the
    // inter-iteration parallelism the paper highlights. A straight-
    // line epilogue handles ragged session tails.
    const size_t unroll = 8;
    const size_t main_bytes = bytes - bytes % unroll;
    if (main_bytes) {
        ctx.cat(OpCategory::Arithmetic);
        as.li(static_cast<int64_t>(main_bytes), count);
        as.label("blk8");
        for (size_t o = 0; o < unroll; o++)
            rc4Byte(o);
        ctx.cat(OpCategory::Arithmetic);
        as.addq(in_ptr, unroll, in_ptr);
        as.addq(out_ptr, unroll, out_ptr);
        as.subq(count, unroll, count);
        ctx.cat(OpCategory::Control);
        as.bne(count, "blk8");
    }
    for (size_t o = 0; o < bytes % unroll; o++)
        rc4Byte(o);
    as.halt();

    b.program = as.finalize();
    b.categories = takeCategories(ctx);
    return b;
}

} // namespace cryptarch::kernels
