/**
 * @file
 * Internal interface between the kernel dispatcher and the per-cipher
 * kernel builders, plus the shared kernel memory map.
 */

#ifndef CRYPTARCH_KERNELS_BUILDERS_HH
#define CRYPTARCH_KERNELS_BUILDERS_HH

#include <cstdint>
#include <span>
#include <vector>

#include "kernels/kernel.hh"

namespace cryptarch::kernels
{

/** Kernel memory map: SBox tables are 1 KB-aligned as SBOX requires. */
constexpr uint64_t table_region = 0x1000;
constexpr uint64_t subkey_region = 0x8000;
constexpr uint64_t iv_region = 0x9000;
constexpr uint64_t aux_region = 0xA000;

/** Base address of 1 KB-aligned table number @p k. */
constexpr uint64_t
tableAddr(unsigned k)
{
    return table_region + static_cast<uint64_t>(k) * 0x400;
}

/** Serialize 32-bit words little-endian. */
std::vector<uint8_t> words32(std::span<const uint32_t> ws);
/** Serialize 16-bit words zero-extended to 32-bit table entries. */
std::vector<uint8_t> words16To32(std::span<const uint16_t> ws);
/** Serialize 64-bit words little-endian. */
std::vector<uint8_t> words64(std::span<const uint64_t> ws);

// Per-cipher builders (one translation unit each). Each receives the
// kernel direction; the dispatcher stamps cipher/variant/name.
KernelBuild buildBlowfishKernel(KernelVariant v,
                                std::span<const uint8_t> key,
                                std::span<const uint8_t> iv, size_t bytes,
                                KernelDirection dir);
KernelBuild buildIdeaKernel(KernelVariant v, std::span<const uint8_t> key,
                            std::span<const uint8_t> iv, size_t bytes,
                                KernelDirection dir);
KernelBuild buildRc6Kernel(KernelVariant v, std::span<const uint8_t> key,
                           std::span<const uint8_t> iv, size_t bytes,
                                KernelDirection dir);
KernelBuild buildRc4Kernel(KernelVariant v, std::span<const uint8_t> key,
                           std::span<const uint8_t> iv, size_t bytes,
                                KernelDirection dir);
KernelBuild buildRijndaelKernel(KernelVariant v,
                                std::span<const uint8_t> key,
                                std::span<const uint8_t> iv, size_t bytes,
                                KernelDirection dir);
KernelBuild buildTwofishKernel(KernelVariant v,
                               std::span<const uint8_t> key,
                               std::span<const uint8_t> iv, size_t bytes,
                                KernelDirection dir);
KernelBuild buildMarsKernel(KernelVariant v, std::span<const uint8_t> key,
                            std::span<const uint8_t> iv, size_t bytes,
                                KernelDirection dir);
KernelBuild buildTripleDesKernel(KernelVariant v,
                                 std::span<const uint8_t> key,
                                 std::span<const uint8_t> iv,
                                 size_t bytes, KernelDirection dir);

} // namespace cryptarch::kernels

#endif // CRYPTARCH_KERNELS_BUILDERS_HH
