/**
 * @file
 * Triple-DES (EDE3) CBC encryption kernel in CryptISA.
 *
 * The paper's worst performer and the motivation for XBOX: 48 Feistel
 * rounds per 64-bit block plus the 64-bit initial/final permutations.
 *
 * Round structure: the E expansion is realized by two rotated copies
 * of R (Q = ROR(R,1) carries the even S-box chunks on byte-aligned
 * fields, T = ROL(R,1) the odd ones), XOR'ed with per-round key words
 * whose 6-bit subkey chunks were pre-placed on the same fields at
 * build time. Each S-box is a 256-entry replication of the combined
 * S+P table ("replicate SBox entries, thereby creating don't-care
 * bits" — paper section 5), so a chunk lookup is one byte-indexed
 * access. The interior FP/IP pairs of EDE cancel, so the kernel runs
 * IP once, 48 rounds with the middle key schedule reversed, and FP
 * once.
 *
 * Permutations: the optimized variant packs the halves and uses four
 * XBOX + three ORs per 32-bit output (7 instructions, as the paper
 * counts); the baselines use the classic five-step PERM_OP swap
 * network. The eight SP tables exceed the four SBox caches, so the
 * optimized variant uses the aliased SBOX form (D-cache path) rather
 * than thrash the single-tag sector caches.
 */

#include "crypto/des.hh"
#include "kernels/builders.hh"
#include "kernels/emit.hh"
#include "util/bitops.hh"

namespace cryptarch::kernels
{

using isa::Reg;

namespace
{

/** Bit position (LSB = 0) of the single set bit of a 64-bit value. */
unsigned
bitIndex(uint64_t v)
{
    unsigned i = 0;
    while (!(v & 1)) {
        v >>= 1;
        i++;
    }
    return i;
}

/**
 * XBOX map registers for a permutation: out[i] = in[perm64[i]] over a
 * packed 64-bit value; map @p j covers output bits 8j..8j+7.
 */
std::vector<uint64_t>
xboxMaps(const std::array<unsigned, 64> &perm)
{
    std::vector<uint64_t> maps(8, 0);
    for (unsigned i = 0; i < 64; i++)
        maps[i / 8] |= static_cast<uint64_t>(perm[i] & 63)
            << (6 * (i % 8));
    return maps;
}

/** Derive IP (or FP) as an LSB-indexed 64-bit permutation by probing
 *  the validated reference implementation. */
std::array<unsigned, 64>
derivePerm(uint64_t (*f)(uint64_t))
{
    std::array<unsigned, 64> perm{};
    for (unsigned src = 0; src < 64; src++) {
        uint64_t out = f(1ull << src);
        perm[bitIndex(out)] = src;
    }
    return perm;
}

/**
 * GRP control words realizing a permutation in log2(64) = 6 steps: a
 * stable LSB-first radix partition of the bits by destination index
 * [Shi & Lee 00]. Each step's control word sends bits with a 0 digit
 * to the low end and bits with a 1 digit to the high end, matching
 * the GRP instruction's semantics.
 */
std::vector<uint64_t>
grpControls(const std::array<unsigned, 64> &perm)
{
    // dest_of[src] = output position of input bit src.
    std::array<unsigned, 64> dest_of{};
    for (unsigned out = 0; out < 64; out++)
        dest_of[perm[out]] = out;

    std::array<unsigned, 64> labels{}; // source bit at each position
    for (unsigned p = 0; p < 64; p++)
        labels[p] = p;

    std::vector<uint64_t> controls;
    for (unsigned k = 0; k < 6; k++) {
        uint64_t control = 0;
        std::vector<unsigned> lows, highs;
        for (unsigned p = 0; p < 64; p++) {
            if ((dest_of[labels[p]] >> k) & 1) {
                control |= 1ull << p;
                highs.push_back(labels[p]);
            } else {
                lows.push_back(labels[p]);
            }
        }
        controls.push_back(control);
        unsigned p = 0;
        for (unsigned s : lows)
            labels[p++] = s;
        for (unsigned s : highs)
            labels[p++] = s;
    }
    return controls;
}

/**
 * Per-round key words in the kernel's E-chunk arrangement.
 * kq: chunks 0,2,4,6 at bit offsets 26,18,10,2 (fields of Q).
 * kt: chunks 1,3,5,7 at bit offsets 24,16,8,0 (fields of T).
 */
std::pair<uint32_t, uint32_t>
arrangeKey(uint64_t subkey)
{
    auto chunk = [&](int i) {
        return static_cast<uint32_t>((subkey >> (42 - 6 * i)) & 0x3F);
    };
    uint32_t kq = (chunk(0) << 26) | (chunk(2) << 18) | (chunk(4) << 10)
        | (chunk(6) << 2);
    uint32_t kt = (chunk(1) << 24) | (chunk(3) << 16) | (chunk(5) << 8)
        | chunk(7);
    return {kq, kt};
}

} // namespace

KernelBuild
buildTripleDesKernel(KernelVariant v, std::span<const uint8_t> key,
                     std::span<const uint8_t> iv, size_t bytes,
                     KernelDirection dir)
{
    const bool dec = dir == KernelDirection::Decrypt;
    crypto::TripleDes ref;
    ref.setKey(key);

    KernelBuild b;

    // Eight replicated SP tables. Even-chunk boxes (S1,S3,S5,S7 of the
    // spec, indices 0,2,4,6) carry the chunk in the TOP six bits of
    // the index byte; odd-chunk boxes in the BOTTOM six.
    const auto &sp = crypto::Des::spBoxes();
    for (int box = 0; box < 8; box++) {
        std::vector<uint32_t> table(256);
        for (int idx = 0; idx < 256; idx++) {
            unsigned chunk = (box % 2 == 0) ? (idx >> 2) & 0x3F
                                            : idx & 0x3F;
            table[idx] = sp[box][chunk];
        }
        b.memInit.emplace_back(tableAddr(box), words32(table));
    }

    // 48 round-key pairs. Encryption is E(K1) D(K2) E(K3): stage 0
    // forward, stage 1 reversed, stage 2 forward. Decryption is the
    // EDE inverse D(K3) E(K2) D(K1): cores in reverse order, with the
    // outer key schedules reversed — the kernel code is identical.
    std::vector<uint32_t> keywords;
    for (int stage = 0; stage < 3; stage++) {
        int core_idx = dec ? 2 - stage : stage;
        bool reversed = dec ? (stage != 1) : (stage == 1);
        const auto &ks = ref.core(core_idx).subkeys();
        for (int r = 0; r < 16; r++) {
            uint64_t sk = reversed ? ks[15 - r] : ks[r];
            auto [kq, kt] = arrangeKey(sk);
            keywords.push_back(kq);
            keywords.push_back(kt);
        }
    }
    b.memInit.emplace_back(subkey_region, words32(keywords));

    // Permutation descriptors (optimized variants): IP and FP as
    // packed 64-bit permutations, derived from the KAT-validated
    // reference. XBOX maps live at aux_region, GRP radix-partition
    // control words at aux_region + 0x100.
    auto ip_perm = derivePerm(&crypto::Des::initialPermutation);
    auto fp_perm = derivePerm(&crypto::Des::finalPermutation);
    auto maps = xboxMaps(ip_perm);
    auto fp_maps = xboxMaps(fp_perm);
    maps.insert(maps.end(), fp_maps.begin(), fp_maps.end());
    b.memInit.emplace_back(aux_region, words64(maps));
    auto controls = grpControls(ip_perm);
    auto fp_controls = grpControls(fp_perm);
    controls.insert(controls.end(), fp_controls.begin(),
                    fp_controls.end());
    b.memInit.emplace_back(aux_region + 0x100, words64(controls));

    const uint32_t iv_words[2] = {util::load32be(iv.data()),
                                  util::load32be(iv.data() + 4)};
    b.memInit.emplace_back(iv_region, words32(iv_words));

    KernelCtx ctx(v);
    auto &as = ctx.as;
    auto &rp = ctx.regs;

    Reg in_ptr = rp.alloc(), out_ptr = rp.alloc(), count = rp.alloc();
    Reg kb = rp.alloc();
    Reg tbase[8];
    for (auto &r : tbase)
        r = rp.alloc();
    Reg cl = rp.alloc(), cr = rp.alloc(); // CBC chain
    Reg l = rp.alloc(), r = rp.alloc();
    Reg q = rp.alloc(), tt = rp.alloc();
    Reg u = rp.alloc(), w = rp.alloc();
    Reg acc = rp.alloc(), acc2 = rp.alloc(), t0 = rp.alloc();
    Reg s1 = rp.alloc(), s2 = rp.alloc();
    // XBOX needs 16 map registers; GRP needs 12 control registers.
    Reg maps_reg[16];
    if (v == KernelVariant::Optimized || v == KernelVariant::OptimizedGrp) {
        for (auto &mr : maps_reg)
            mr = rp.alloc();
    }
    Reg packed = rp.alloc(), part = rp.alloc();

    ctx.cat(OpCategory::Arithmetic);
    as.li(b.inAddr, in_ptr);
    as.li(b.outAddr, out_ptr);
    as.li(static_cast<int64_t>(bytes / 8), count);
    as.li(subkey_region, kb);
    for (int i = 0; i < 8; i++)
        as.li(static_cast<int64_t>(tableAddr(i)), tbase[i]);
    if (v == KernelVariant::Optimized) {
        Reg mb = s1;
        as.li(aux_region, mb);
        ctx.cat(OpCategory::Memory);
        for (int i = 0; i < 16; i++)
            as.ldq(maps_reg[i], mb, 8 * i);
    } else if (v == KernelVariant::OptimizedGrp) {
        Reg mb = s1;
        as.li(aux_region + 0x100, mb);
        ctx.cat(OpCategory::Memory);
        for (int i = 0; i < 12; i++)
            as.ldq(maps_reg[i], mb, 8 * i);
    }
    ctx.cat(OpCategory::Arithmetic);
    Reg ivb = s1;
    as.li(iv_region, ivb);
    ctx.cat(OpCategory::Memory);
    as.ldl(cl, ivb, 0);
    as.ldl(cr, ivb, 4);

    // One Feistel f application: target ^= f(src, round key pair).
    auto feistel = [&](Reg src, Reg target, int key_index) {
        ctx.rotr32i(src, 1, q, s1);
        ctx.rotl32i(src, 1, tt, s1);
        ctx.cat(OpCategory::Memory);
        as.ldl(u, kb, 8 * key_index);
        as.ldl(w, kb, 8 * key_index + 4);
        ctx.cat(OpCategory::Logic);
        as.xor_(q, u, u);
        as.xor_(tt, w, w);
        bool aliased = true; // see file header: avoid sector thrash
        // Two balanced accumulation chains (u-boxes and w-boxes) so
        // fused 2-cycle lookups don't serialize into one 8-deep chain.
        ctx.sboxLoad(0, tbase[0], u, 3, acc, s1, aliased);
        ctx.sboxLoadXor(2, tbase[2], u, 2, acc, t0, s1, aliased);
        ctx.sboxLoadXor(4, tbase[4], u, 1, acc, t0, s1, aliased);
        ctx.sboxLoadXor(6, tbase[6], u, 0, acc, t0, s1, aliased);
        ctx.sboxLoad(1, tbase[1], w, 3, acc2, s2, aliased);
        ctx.sboxLoadXor(3, tbase[3], w, 2, acc2, t0, s2, aliased);
        ctx.sboxLoadXor(5, tbase[5], w, 1, acc2, t0, s2, aliased);
        ctx.sboxLoadXor(7, tbase[7], w, 0, acc2, t0, s2, aliased);
        ctx.cat(OpCategory::Logic);
        as.xor_(acc, acc2, acc);
        as.xor_(target, acc, target);
    };

    // The five-step PERM_OP swap network (and its reverse for FP).
    // Step: t = ((a >> n) ^ b) & m; b ^= t; a ^= t << n.
    struct SwapStep
    {
        int n;
        uint32_t m;
        bool a_is_l;
    };
    const SwapStep ip_steps[5] = {
        {4, 0x0F0F0F0F, true},
        {16, 0x0000FFFF, true},
        {2, 0x33333333, false},
        {8, 0x00FF00FF, false},
        {1, 0x55555555, true},
    };
    auto permOp = [&](const SwapStep &st) {
        Reg a = st.a_is_l ? l : r;
        Reg bb = st.a_is_l ? r : l;
        ctx.cat(OpCategory::Permute);
        as.srl32(a, st.n, s1);
        as.xor_(s1, bb, s1);
        as.and_(s1, static_cast<int64_t>(st.m), s1);
        as.xor_(bb, s1, bb);
        as.sll32(s1, st.n, s1);
        as.xor_(a, s1, a);
    };

    // 64-bit permutation via XBOX: pack (l,r), produce (l,r).
    auto xboxPermute = [&](int map_base) {
        ctx.cat(OpCategory::Permute);
        as.sll(l, 32, packed);
        as.bis(packed, r, packed);
        // High half (bits 32..63) -> l.
        as.xbox(4, packed, maps_reg[map_base + 4], l);
        as.xbox(5, packed, maps_reg[map_base + 5], part);
        as.bis(l, part, l);
        as.xbox(6, packed, maps_reg[map_base + 6], part);
        as.bis(l, part, l);
        as.xbox(7, packed, maps_reg[map_base + 7], part);
        as.bis(l, part, l);
        ctx.cat(OpCategory::Permute);
        as.srl(l, 32, l);
        // Low half -> r.
        as.xbox(0, packed, maps_reg[map_base + 0], r);
        as.xbox(1, packed, maps_reg[map_base + 1], part);
        as.bis(r, part, r);
        as.xbox(2, packed, maps_reg[map_base + 2], part);
        as.bis(r, part, r);
        as.xbox(3, packed, maps_reg[map_base + 3], part);
        as.bis(r, part, r);
    };

    // 64-bit permutation via six chained GRP steps (Shi & Lee):
    // pack (l,r), radix-partition by destination index, unpack.
    auto grpPermute = [&](int ctrl_base) {
        ctx.cat(OpCategory::Permute);
        as.sll(l, 32, packed);
        as.bis(packed, r, packed);
        for (int i = 0; i < 6; i++)
            as.grp(packed, maps_reg[ctrl_base + i], packed);
        as.srl(packed, 32, l);
        as.and_(packed, 0xFFFFFFFFll, r);
    };

    as.label("block");
    ctx.cat(OpCategory::Memory);
    as.ldl(l, in_ptr, 0);
    as.ldl(r, in_ptr, 4);
    if (!dec) {
        ctx.cat(OpCategory::Logic);
        as.xor_(l, cl, l);
        as.xor_(r, cr, r);
    }

    // Initial permutation.
    if (v == KernelVariant::Optimized) {
        xboxPermute(0);
    } else if (v == KernelVariant::OptimizedGrp) {
        grpPermute(0);
    } else {
        for (const auto &st : ip_steps)
            permOp(st);
    }

    // 48 rounds; between 16-round stages the halves swap (the
    // cancelled FP/IP pair reduces to an exchange). Track the swap
    // with compile-time renaming: regs[0] is the current L.
    Reg half[2] = {l, r};
    for (int stage = 0; stage < 3; stage++) {
        if (stage > 0)
            std::swap(half[0], half[1]);
        for (int round = 0; round < 16; round += 2) {
            int ki = stage * 16 + round;
            // L ^= f(R); then R ^= f(L) (pair-unrolled renaming).
            feistel(half[1], half[0], ki);
            feistel(half[0], half[1], ki + 1);
        }
    }
    // Pre-FP value is (R48, L48): one more swap.
    std::swap(half[0], half[1]);
    // Move into the canonical l/r names if the net renaming requires.
    if (!(half[0] == l)) {
        ctx.cat(OpCategory::Arithmetic);
        as.bis(half[0], isa::reg_zero, s2);
        as.bis(half[1], isa::reg_zero, r);
        as.bis(s2, isa::reg_zero, l);
    }

    // Final permutation.
    if (v == KernelVariant::Optimized) {
        xboxPermute(8);
    } else if (v == KernelVariant::OptimizedGrp) {
        grpPermute(6);
    } else {
        for (int i = 4; i >= 0; i--)
            permOp(ip_steps[i]);
    }

    if (!dec) {
        ctx.cat(OpCategory::Memory);
        as.stl(l, out_ptr, 0);
        as.stl(r, out_ptr, 4);
        ctx.cat(OpCategory::Arithmetic);
        as.bis(l, isa::reg_zero, cl);
        as.bis(r, isa::reg_zero, cr);
    } else {
        // CBC decrypt: plaintext = D(ct) ^ chain; chain becomes the
        // ciphertext (reloaded from the input buffer).
        ctx.cat(OpCategory::Logic);
        as.xor_(l, cl, l);
        as.xor_(r, cr, r);
        ctx.cat(OpCategory::Memory);
        as.stl(l, out_ptr, 0);
        as.stl(r, out_ptr, 4);
        as.ldl(cl, in_ptr, 0);
        as.ldl(cr, in_ptr, 4);
    }

    as.addq(in_ptr, 8, in_ptr);
    as.addq(out_ptr, 8, out_ptr);
    as.subq(count, 1, count);
    ctx.cat(OpCategory::Control);
    as.bne(count, "block");
    as.halt();

    b.program = as.finalize();
    b.categories = takeCategories(ctx);
    return b;
}

} // namespace cryptarch::kernels
