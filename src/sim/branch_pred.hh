/**
 * @file
 * Bimodal branch predictor with 2-bit saturating counters.
 *
 * Cipher kernel branches are dominated by round-loop back edges, so a
 * simple bimodal table predicts them almost perfectly — exactly the
 * observation the paper makes when it finds branch mispredictions are
 * not a bottleneck for any cipher.
 */

#ifndef CRYPTARCH_SIM_BRANCH_PRED_HH
#define CRYPTARCH_SIM_BRANCH_PRED_HH

#include <cstdint>
#include <vector>

namespace cryptarch::sim
{

/** Bimodal predictor. Unconditional branches are always predicted. */
class BranchPredictor
{
  public:
    explicit BranchPredictor(unsigned entries = 2048);

    /**
     * Predict and update for a conditional branch at @p pc whose real
     * outcome is @p taken. Returns true when the prediction was
     * correct.
     */
    bool predict(uint32_t pc, bool taken);

    uint64_t lookups() const { return numLookups; }
    uint64_t mispredicts() const { return numMispredicts; }

    double
    accuracy() const
    {
        return numLookups
            ? 1.0 - static_cast<double>(numMispredicts) / numLookups
            : 1.0;
    }

  private:
    std::vector<uint8_t> table; ///< 2-bit counters, initialized weakly taken
    uint32_t indexMask = 0;     ///< size-1 when the table is a power of two
    uint64_t numLookups = 0;
    uint64_t numMispredicts = 0;
};

} // namespace cryptarch::sim

#endif // CRYPTARCH_SIM_BRANCH_PRED_HH
