/**
 * @file
 * Typed MachineConfig validation, canonicalization, and the simulator
 * hardening policies (validation / invariant audit / progress budget).
 *
 * MachineConfig is ~30 unchecked numeric fields, and the design-space
 * work (ROADMAP item 5) generates configs nobody hand-audited. This
 * module is the admission layer: validateConfig() classifies every way
 * a config can break the simulator into a ConfigError taxonomy,
 * canonicalizeConfig() repairs the benign cases (non-power-of-two
 * predictor/TLB entry counts round down, with a one-time warning), and
 * the scheduler constructor routes through hardenedConfig() so a bad
 * config becomes a typed ConfigRejected at construction instead of
 * a divide-by-zero, an unbounded allocation, or a livelocked issue
 * loop deep inside a sweep cell.
 *
 * The taxonomy:
 *
 *   ZeroGeometry         a structural count that must be nonzero is 0
 *                        (cache blockBytes/assoc/sizeBytes, TLB
 *                        entries/assoc, pageBytes, predictorEntries)
 *   BadGeometry          nonzero but internally inconsistent (cache
 *                        smaller than one set, size not divisible by
 *                        blockBytes*assoc, TLB entries % assoc != 0)
 *   NonPow2              a count the indexing path requires to be a
 *                        power of two is not (raw validation only;
 *                        canonicalizeConfig repairs these)
 *   InconsistentLatency  latency relations that cannot describe a real
 *                        machine (a 0-cycle functional unit, L2 hit
 *                        slower than memory, 32-bit multiply slower
 *                        than 64-bit)
 *   UnsatisfiableFuPool  an OpClass whose widest instruction can never
 *                        book its units (mulHalfSlots == 1: a 64-bit
 *                        MULQ consumes 2 half-slots, so the issue loop
 *                        would retry forever)
 *   Oversized            structurally valid but big enough to take the
 *                        host down (multi-gigabyte line arrays,
 *                        window/latency values that degenerate the
 *                        cycle bookkeeping)
 *
 * Policies (all overridable programmatically, read once from the
 * environment at static init — worker processes fork from the parent,
 * so setters are the reliable way to flip policy for a child sweep):
 *
 *   CRYPTARCH_SIM_VALIDATE        on (default) | off
 *   CRYPTARCH_SIM_AUDIT           off (default) | on: per-retired-
 *                                 instruction invariant auditing
 *   CRYPTARCH_SIM_PROGRESS_BUDGET base FU-retry budget before the
 *                                 scheduler's forward-progress watchdog
 *                                 traps (0/unset = auto-scaled)
 */

#ifndef CRYPTARCH_SIM_VALIDATE_HH
#define CRYPTARCH_SIM_VALIDATE_HH

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/config.hh"

namespace cryptarch::sim
{

/** Classification of a rejected MachineConfig (see file comment). */
enum class ConfigErrorKind : uint8_t
{
    ZeroGeometry,
    BadGeometry,
    NonPow2,
    InconsistentLatency,
    UnsatisfiableFuPool,
    Oversized,
};

/** Stable short name ("zero-geometry", "non-pow2", ...). */
const char *configErrorKindName(ConfigErrorKind kind);

/** One validation failure: the kind, the offending field, and why. */
struct ConfigError
{
    ConfigErrorKind kind{};
    std::string field;
    std::string detail;

    /** "config error [kind] field: detail" — the ConfigRejected
     *  what() string. */
    std::string message() const;
};

/**
 * Validate @p cfg without modifying it. Returns the first error found
 * (field-declaration order), or nullopt for an admissible config.
 * Validation is raw: a canonicalizable non-pow2 count is still
 * reported (as NonPow2) — construction paths canonicalize first.
 */
std::optional<ConfigError> validateConfig(const MachineConfig &cfg);

/** One repair canonicalizeConfig made. */
struct ConfigAdjustment
{
    std::string field;
    unsigned from = 0;
    unsigned to = 0;
};

/**
 * Repair the benign deviations of @p cfg: predictorEntries and
 * dtlbEntries that are not powers of two round *down* to one (the
 * indexing fast path masks; rounding up would claim capacity the
 * request never asked for). Every repair emits a one-time warning per
 * field per process and is appended to @p adjustments when given.
 * Fields that are zero or already powers of two pass through
 * untouched, so every preset is a fixed point of this function.
 */
MachineConfig
canonicalizeConfig(const MachineConfig &cfg,
                   std::vector<ConfigAdjustment> *adjustments = nullptr);

/**
 * A config refused admission. Derives std::invalid_argument so generic
 * catch sites see a readable message; catch ConfigRejected for the
 * structured ConfigError (the sweep layer maps it to the `rejected`
 * cell outcome).
 */
class ConfigRejected : public std::invalid_argument
{
  public:
    explicit ConfigRejected(ConfigError err);

    const ConfigError &error() const { return err_; }

  private:
    ConfigError err_;
};

/**
 * A runtime invariant-audit violation (CRYPTARCH_SIM_AUDIT=1): the
 * scheduler's cycle accounting contradicted itself on a retired
 * instruction. std::logic_error — this is a simulator bug, not a
 * workload or config failure.
 */
class AuditError : public std::logic_error
{
  public:
    AuditError(const std::string &invariant, uint64_t seq, uint32_t pc,
               const std::string &detail);

    const std::string &invariant() const { return invariant_; }
    uint64_t seq() const { return seq_; }
    uint32_t pc() const { return pc_; }

  private:
    std::string invariant_;
    uint64_t seq_;
    uint32_t pc_;
};

/** How a scheduler treats the config it is handed. */
enum class ConfigPolicy : uint8_t
{
    Validate, ///< canonicalize, then reject invalid (the default)
    Trusted,  ///< take the config verbatim (tests probing raw behavior)
};

/**
 * The construction-time admission pipeline: canonicalize @p cfg and
 * throw ConfigRejected if validation still fails. Trusted policy — or
 * validation disabled process-wide — returns @p cfg verbatim.
 */
MachineConfig hardenedConfig(const MachineConfig &cfg, ConfigPolicy policy);

/** Config validation at scheduler construction (default on). */
bool configValidationEnabled();
void setConfigValidation(bool enabled);

/** Per-retired-instruction invariant auditing (default off). */
bool simAuditEnabled();
void setSimAudit(bool enabled);

/**
 * Base FU-retry budget of the forward-progress watchdog; 0 selects the
 * auto-scaled default (window size + latency chain, see pipeline.cc).
 */
uint64_t progressBudgetOverride();
void setProgressBudgetOverride(uint64_t budget);

} // namespace cryptarch::sim

#endif // CRYPTARCH_SIM_VALIDATE_HH
