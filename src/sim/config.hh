/**
 * @file
 * Microarchitecture model configurations (paper Table 2).
 *
 * Four first-class machines are modeled:
 *
 *   4W   4-issue out-of-order core, 128-entry window, 4 ALUs, 2 D-cache
 *        ports, 2 rotator/XBOX units, optimized multiplies (1x64-bit or
 *        2x32-bit or 2xMULMOD per cycle); SBOX instructions use D-cache
 *        ports (2-cycle access). Loosely modeled after the Alpha 21264.
 *   4W+  4W plus four dedicated single-ported SBox sector caches
 *        (1-cycle access) and two more rotator/XBOX units.
 *   8W+  doubled fetch/issue/resources: 8-wide, 256-entry window,
 *        8 ALUs, 4 D-cache ports, dual-ported SBox caches.
 *   DF   the dataflow machine: infinite fetch/window/issue/resources,
 *        perfect branch prediction, perfect memory and perfect alias
 *        disambiguation. Only true data dependences and operation
 *        latencies constrain execution.
 *
 * Figure 5's bottleneck-isolation models start from DF and re-insert a
 *single constraint (alias ordering, branch prediction, issue width,
 * real memory, baseline FU resources, or finite window).
 */

#ifndef CRYPTARCH_SIM_CONFIG_HH
#define CRYPTARCH_SIM_CONFIG_HH

#include <cstdint>
#include <string>

namespace cryptarch::sim
{

/** Value used for "unlimited" resource counts. */
constexpr unsigned unlimited = 0;

/** Set-associative cache geometry. */
struct CacheGeometry
{
    uint32_t sizeBytes = 0;
    uint32_t assoc = 1;
    uint32_t blockBytes = 32;
};

/** Full machine model description. */
struct MachineConfig
{
    std::string name = "4W";

    // --- Frontend ---
    /** Branch-terminated fetch blocks per cycle (0 = unlimited). */
    unsigned fetchBlocksPerCycle = 1;
    /** Maximum instructions fetched per cycle (0 = unlimited). */
    unsigned fetchWidth = 4;
    /** Perfect branch prediction (the DF setting). */
    bool perfectBranch = false;
    /** Minimum misprediction redirect penalty, cycles. */
    unsigned mispredictPenalty = 8;
    /** Bimodal predictor table entries (power of two). */
    unsigned predictorEntries = 2048;

    // --- Window / issue ---
    /** Re-order buffer entries (0 = unlimited). */
    unsigned windowSize = 128;
    /** Issue (and retire) width (0 = unlimited). */
    unsigned issueWidth = 4;
    /** Frontend depth from fetch to earliest issue, cycles. */
    unsigned frontendDepth = 2;

    // --- Functional units (0 = unlimited) ---
    unsigned numIntAlu = 4;
    /** Rotator/XBOX units (also execute ROLX/RORX). */
    unsigned numRotUnits = 2;
    /**
     * Multiplier half-slots per cycle: a 64-bit MULQ consumes two, a
     * 32-bit MULL or a MULMOD consumes one ("1-64 / 2-32 / 2-16 mod"
     * in Table 2).
     */
    unsigned mulHalfSlots = 2;
    unsigned numDCachePorts = 2;
    /** Dedicated SBox sector caches (0 = SBOX uses D-cache ports). */
    unsigned numSboxCaches = 0;
    /** Accesses per SBox cache per cycle. */
    unsigned sboxCachePorts = 1;
    /** Ideal SBOX handling: 1-cycle, no ports (the DF setting). */
    bool perfectSbox = false;

    // --- Latencies (cycles) ---
    unsigned aluLat = 1;
    unsigned rotLat = 1;
    unsigned mulLat64 = 7;
    unsigned mulLat32 = 4;
    unsigned mulmodLat = 4;
    /** L1 D-cache hit latency for ordinary loads. */
    unsigned loadLat = 3;
    /** SBOX access through a D-cache port (optimized address gen). */
    unsigned sboxOnDcacheLat = 2;
    /** SBOX access through a dedicated SBox cache. */
    unsigned sboxCacheLat = 1;

    // --- Memory system ---
    /** Perfect memory: every access is an L1 hit (the DF setting). */
    bool perfectMemory = false;
    /** Perfect alias disambiguation: loads never wait on prior store
     *  addresses (the DF setting). */
    bool perfectAlias = false;
    CacheGeometry l1d{32 * 1024, 2, 32};
    CacheGeometry l2{512 * 1024, 4, 32};
    unsigned l2HitLat = 12;
    unsigned memLat = 120;
    /** Next-line prefetch in the L1 D-cache. */
    bool nextLinePrefetch = true;
    unsigned dtlbEntries = 32;
    unsigned dtlbAssoc = 8;
    unsigned pageBytes = 8192;
    unsigned dtlbMissLat = 30;

    // --- Factory functions for the paper's models ---
    static MachineConfig fourWide();      ///< Table 2 "4W"
    /**
     * The "21264-class" machine of Figure 4: the 4W core re-parameterized
     * with the Alpha 21264's published differences — an 80-entry
     * in-flight window, a larger predictor, a 7-cycle redirect penalty
     * and the 64 KB 2-way 64 B-line L1 D-cache. The paper measured real
     * 600 MHz 21264 hardware and found it within 10-15% of the 4W
     * model; we have no Alpha hardware, so this config is the stand-in
     * (see DESIGN.md 2.2) — close to 4W by construction, but not the
     * same machine.
     */
    static MachineConfig alpha21264();
    static MachineConfig fourWidePlus();  ///< Table 2 "4W+"
    static MachineConfig eightWidePlus(); ///< Table 2 "8W+"
    static MachineConfig dataflow();      ///< Table 2 "DF"

    /** Figure 5 isolation models: DF plus exactly one constraint. */
    static MachineConfig dfPlusAlias();
    static MachineConfig dfPlusBranch();
    static MachineConfig dfPlusIssue();
    static MachineConfig dfPlusMem();
    static MachineConfig dfPlusResources();
    static MachineConfig dfPlusWindow();
};

} // namespace cryptarch::sim

#endif // CRYPTARCH_SIM_CONFIG_HH
