/**
 * @file
 * Cache, TLB and SBox-cache models for the timing simulator.
 *
 * These are latency-oracle models: each access returns the cycles the
 * access costs and updates replacement state. The out-of-order
 * scheduler queries them in program order, which is accurate enough
 * for the cipher kernels (the paper observes they rarely miss at all —
 * one value is read and then computed on for hundreds of cycles).
 */

#ifndef CRYPTARCH_SIM_CACHE_HH
#define CRYPTARCH_SIM_CACHE_HH

#include <array>
#include <cstdint>
#include <vector>

#include "sim/config.hh"

namespace cryptarch::sim
{

/** Hit/miss statistics of a cache-like structure. */
struct CacheStats
{
    uint64_t accesses = 0;
    uint64_t misses = 0;

    double
    missRate() const
    {
        return accesses ? static_cast<double>(misses) / accesses : 0.0;
    }
};

/** Set-associative cache with LRU replacement. */
class Cache
{
  public:
    Cache(const CacheGeometry &geom);

    /** Probe-and-fill: returns true on hit. */
    bool access(uint64_t addr);
    /** Fill without counting an access (prefetch). */
    void prefetch(uint64_t addr);
    /** Probe without filling or counting. */
    bool contains(uint64_t addr) const;

    const CacheStats &stats() const { return stat; }

  private:
    struct Line
    {
        uint64_t tag = 0;
        bool valid = false;
        uint64_t lruStamp = 0;
    };

    // Block/set math runs on every simulated memory access, so the
    // usual power-of-two geometries use precomputed shift/mask forms
    // instead of a divide and a modulo per probe.
    uint64_t
    blockOf(uint64_t addr) const
    {
        return blockShift >= 0 ? addr >> blockShift : addr / blockBytes;
    }

    uint32_t
    setOf(uint64_t block) const
    {
        return setsPow2 ? block & (numSets - 1) : block % numSets;
    }

    uint32_t blockBytes;
    uint32_t numSets;
    uint32_t assoc;
    int blockShift = -1; ///< log2(blockBytes) when a power of two
    bool setsPow2 = false;
    std::vector<Line> lines; ///< numSets x assoc
    uint64_t stamp = 0;
    CacheStats stat;
};

/** Set-associative TLB (a Cache over page numbers). */
class Tlb
{
  public:
    Tlb(unsigned entries, unsigned assoc, unsigned page_bytes);

    /** Returns true on TLB hit. */
    bool access(uint64_t addr);

    const CacheStats &stats() const { return stat; }

  private:
    Cache backing;
    unsigned pageBytes;
    CacheStats stat;
};

/**
 * Two-level data memory: L1 with next-line prefetch backed by a
 * unified L2, plus a DTLB. Returns total access latency in cycles.
 */
class MemoryHierarchy
{
  public:
    explicit MemoryHierarchy(const MachineConfig &cfg);

    /** Latency of a data access of @p size bytes at @p addr. */
    unsigned access(uint64_t addr, unsigned size);

    const CacheStats &l1Stats() const { return l1.stats(); }
    const CacheStats &l2Stats() const { return l2.stats(); }
    const CacheStats &tlbStats() const { return tlb.stats(); }

  private:
    const MachineConfig &cfg;
    Cache l1;
    Cache l2;
    Tlb tlb;
};

/**
 * A dedicated SBox cache: one tag (the table base) over a 1 KB frame
 * of 32-byte sectors, per paper section 5. Read-only; SBOXSYNC clears
 * the sector valid bits, a tag change flushes.
 */
class SboxCache
{
  public:
    /** Access the table frame at @p frame_base with byte offset
     *  @p offset; returns true when the sector was valid (1-cycle
     *  access), false when it had to be demand-fetched from the
     *  D-cache. */
    bool access(uint64_t frame_base, unsigned offset);

    /** SBOXSYNC: invalidate all sectors (tag kept). */
    void sync();

    const CacheStats &stats() const { return stat; }

  private:
    static constexpr unsigned num_sectors = 32; // 1 KB / 32 B
    uint64_t tag = 0;
    bool tagValid = false;
    std::array<bool, num_sectors> sectorValid{};
    CacheStats stat;
};

} // namespace cryptarch::sim

#endif // CRYPTARCH_SIM_CACHE_HH
