#include "sim/branch_pred.hh"

namespace cryptarch::sim
{

BranchPredictor::BranchPredictor(unsigned entries)
    : table(entries ? entries : 1, 2) // weakly taken
{
    // The usual table sizes are powers of two; index with a mask then
    // (a modulo per conditional branch shows up in replay profiles).
    if ((table.size() & (table.size() - 1)) == 0)
        indexMask = static_cast<uint32_t>(table.size() - 1);
}

bool
BranchPredictor::predict(uint32_t pc, bool taken)
{
    numLookups++;
    uint8_t &ctr =
        table[indexMask ? pc & indexMask : pc % table.size()];
    bool prediction = ctr >= 2;
    if (taken) {
        if (ctr < 3)
            ctr++;
    } else {
        if (ctr > 0)
            ctr--;
    }
    if (prediction != taken) {
        numMispredicts++;
        return false;
    }
    return true;
}

} // namespace cryptarch::sim
