#include "sim/branch_pred.hh"

namespace cryptarch::sim
{

BranchPredictor::BranchPredictor(unsigned entries)
    : table(entries ? entries : 1, 2) // weakly taken
{
}

bool
BranchPredictor::predict(uint32_t pc, bool taken)
{
    numLookups++;
    uint8_t &ctr = table[pc % table.size()];
    bool prediction = ctr >= 2;
    if (taken) {
        if (ctr < 3)
            ctr++;
    } else {
        if (ctr > 0)
            ctr--;
    }
    if (prediction != taken) {
        numMispredicts++;
        return false;
    }
    return true;
}

} // namespace cryptarch::sim
