#include "sim/config.hh"

namespace cryptarch::sim
{

MachineConfig
MachineConfig::fourWide()
{
    MachineConfig c;
    c.name = "4W";
    return c;
}

MachineConfig
MachineConfig::alpha21264()
{
    MachineConfig c;
    c.name = "21264";
    c.windowSize = 80;
    c.predictorEntries = 4096;
    c.mispredictPenalty = 7;
    c.l1d = {64 * 1024, 2, 64};
    return c;
}

MachineConfig
MachineConfig::fourWidePlus()
{
    MachineConfig c;
    c.name = "4W+";
    c.numSboxCaches = 4;
    c.sboxCachePorts = 1;
    c.numRotUnits = 4;
    return c;
}

MachineConfig
MachineConfig::eightWidePlus()
{
    MachineConfig c;
    c.name = "8W+";
    c.fetchBlocksPerCycle = 2;
    c.fetchWidth = 8;
    c.windowSize = 256;
    c.issueWidth = 8;
    c.numIntAlu = 8;
    c.numRotUnits = 8;
    c.mulHalfSlots = 4;
    c.numDCachePorts = 4;
    c.numSboxCaches = 4;
    c.sboxCachePorts = 2;
    return c;
}

MachineConfig
MachineConfig::dataflow()
{
    MachineConfig c;
    c.name = "DF";
    c.fetchBlocksPerCycle = unlimited;
    c.fetchWidth = unlimited;
    c.perfectBranch = true;
    c.windowSize = unlimited;
    c.issueWidth = unlimited;
    c.frontendDepth = 0;
    c.numIntAlu = unlimited;
    c.numRotUnits = unlimited;
    c.mulHalfSlots = unlimited;
    c.numDCachePorts = unlimited;
    c.numSboxCaches = 0;
    c.sboxCachePorts = unlimited;
    c.perfectSbox = true;
    c.perfectMemory = true;
    c.perfectAlias = true;
    return c;
}

MachineConfig
MachineConfig::dfPlusAlias()
{
    MachineConfig c = dataflow();
    c.name = "DF+Alias";
    c.perfectAlias = false;
    return c;
}

MachineConfig
MachineConfig::dfPlusBranch()
{
    MachineConfig c = dataflow();
    c.name = "DF+Branch";
    c.perfectBranch = false;
    // A misprediction also re-limits fetch: redirects cost the minimum
    // penalty but fetch stays otherwise unlimited, isolating the
    // branch effect.
    return c;
}

MachineConfig
MachineConfig::dfPlusIssue()
{
    MachineConfig c = dataflow();
    c.name = "DF+Issue";
    c.issueWidth = 4;
    c.fetchWidth = 4;
    c.fetchBlocksPerCycle = 1;
    return c;
}

MachineConfig
MachineConfig::dfPlusMem()
{
    MachineConfig c = dataflow();
    c.name = "DF+Mem";
    c.perfectMemory = false;
    return c;
}

MachineConfig
MachineConfig::dfPlusResources()
{
    MachineConfig c = dataflow();
    c.name = "DF+Res";
    MachineConfig base = fourWide();
    c.numIntAlu = base.numIntAlu;
    c.numRotUnits = base.numRotUnits;
    c.mulHalfSlots = base.mulHalfSlots;
    c.numDCachePorts = base.numDCachePorts;
    c.numSboxCaches = base.numSboxCaches;
    c.sboxCachePorts = base.sboxCachePorts;
    // Baseline SBOX handling (D-cache ports) replaces the ideal one,
    // but memory stays perfect: misses cost nothing extra.
    c.perfectSbox = false;
    return c;
}

MachineConfig
MachineConfig::dfPlusWindow()
{
    MachineConfig c = dataflow();
    c.name = "DF+Window";
    c.windowSize = 128;
    return c;
}

} // namespace cryptarch::sim
