#include "sim/pipeline.hh"

#include <algorithm>
#include <bit>
#include <cstdio>

#include "isa/trap.hh"

namespace cryptarch::sim
{

using isa::DynInst;
using isa::OpClass;

OooScheduler::OooScheduler(const MachineConfig &config, ConfigPolicy policy)
    : cfg(hardenedConfig(config, policy)), issueSlots(cfg.issueWidth),
      retireSlots(cfg.issueWidth),
      aluUnits(cfg.numIntAlu), rotUnits(cfg.numRotUnits),
      mulSlots(cfg.mulHalfSlots), dcachePorts(cfg.numDCachePorts),
      retireRing(cfg.windowSize ? cfg.windowSize : 1, 0),
      predictor(cfg.predictorEntries), memory(cfg)
{
    stats.model = cfg.name;
    // Forward-progress watchdog: the base FU-retry budget. A valid
    // config's issue retry loop is bounded by the booked backlog
    // (at most a few probes per in-flight instruction), so a budget
    // scaled from the window span plus the full latency chain — and
    // growing with the instruction index in issueOf, which covers the
    // legitimately linear backlog of the unlimited-window DF isolation
    // models — never fires on real machines, while an unsatisfiable
    // pool trips it within ~budget probes of the first blocked op.
    progressBudgetBase = progressBudgetOverride();
    if (progressBudgetBase == 0) {
        const uint64_t windowClamp =
            cfg.windowSize != unlimited ? cfg.windowSize : 4096;
        const uint64_t latChain = cfg.aluLat + cfg.rotLat + cfg.mulLat64
            + cfg.mulLat32 + cfg.mulmodLat + cfg.loadLat
            + cfg.sboxOnDcacheLat + cfg.sboxCacheLat + cfg.l2HitLat
            + cfg.memLat + cfg.dtlbMissLat + cfg.mispredictPenalty;
        progressBudgetBase = 4096 + 64 * windowClamp + 16 * latChain;
    }
    auditing = simAuditEnabled();
    if (!cfg.perfectSbox && cfg.numSboxCaches > 0) {
        sboxCaches.resize(cfg.numSboxCaches);
        for (unsigned i = 0; i < cfg.numSboxCaches; i++)
            sboxPorts.emplace_back(cfg.sboxCachePorts);
        // Table-to-cache selection runs per SBOX read; for the usual
        // power-of-two cache counts replace the modulo with a mask.
        if ((cfg.numSboxCaches & (cfg.numSboxCaches - 1)) == 0)
            sboxIndexMask = cfg.numSboxCaches - 1;
    }
}

Cycle
OooScheduler::fetchOf(const DynInst &inst)
{
    (void)inst;
    if (nextCycleFetch) {
        fetchCycle++;
        fetchedThisCycle = 0;
        blocksThisCycle = 0;
        nextCycleFetch = false;
    }
    if (cfg.fetchWidth != unlimited
        && fetchedThisCycle >= cfg.fetchWidth) {
        fetchCycle++;
        fetchedThisCycle = 0;
        blocksThisCycle = 0;
    }
    fetchedThisCycle++;
    return fetchCycle;
}

Cycle
OooScheduler::issueOf(const DynInst &inst, Cycle ready, unsigned &lat,
                      unsigned &memExtra, StallVector &stall,
                      unsigned &touched)
{
    // Select the operation's functional unit pool, unit count, base
    // latency, and the stall cause its contention is charged to.
    CycleResource *fu = nullptr;
    unsigned units = 1;
    lat = cfg.aluLat;
    memExtra = 0;
    StallCause fuCause = StallCause::FuAlu;

    switch (inst.cls) {
      case OpClass::Nop:
        lat = 0;
        break;
      case OpClass::Control:
      case OpClass::IntAlu:
        fu = &aluUnits;
        lat = cfg.aluLat;
        break;
      case OpClass::RotUnit:
        fu = &rotUnits;
        fuCause = StallCause::FuRot;
        lat = cfg.rotLat;
        break;
      case OpClass::IntMult:
        fu = &mulSlots;
        fuCause = StallCause::FuMul;
        units = 2;
        lat = cfg.mulLat64;
        break;
      case OpClass::IntMult32:
        fu = &mulSlots;
        fuCause = StallCause::FuMul;
        units = 1;
        lat = cfg.mulLat32;
        break;
      case OpClass::MulMod:
        fu = &mulSlots;
        fuCause = StallCause::FuMul;
        units = 1;
        lat = cfg.mulmodLat;
        break;
      case OpClass::Load:
        fu = &dcachePorts;
        fuCause = StallCause::FuDcache;
        // Aliased SBOX accesses are loads with optimized address
        // generation (2 cycles); ordinary loads take the full path.
        lat = (inst.op == isa::Opcode::Sbox) ? cfg.sboxOnDcacheLat
                                             : cfg.loadLat;
        memExtra = memory.access(inst.addr, inst.size);
        lat += memExtra;
        break;
      case OpClass::Store:
        fu = &dcachePorts;
        fuCause = StallCause::FuDcache;
        lat = 1;
        (void)memory.access(inst.addr, inst.size);
        break;
      case OpClass::SboxRead: {
        if (cfg.perfectSbox) {
            // Dataflow-style machine: 1-cycle SBox, no port pressure.
            lat = cfg.sboxCacheLat;
            fu = nullptr;
        } else if (!sboxCaches.empty()) {
            unsigned which = sboxIndexMask
                ? inst.tableId & sboxIndexMask
                : inst.tableId % static_cast<unsigned>(sboxCaches.size());
            bool hit = sboxCaches[which].access(inst.addr & ~0x3FFull,
                                                inst.addr & 0x3FF);
            if (hit) {
                stats.sboxCacheHits++;
                lat = cfg.sboxCacheLat;
            } else {
                // Demand-fetch the sector from the D-cache.
                memExtra = memory.access(inst.addr, inst.size);
                lat = cfg.sboxCacheLat + cfg.sboxOnDcacheLat + memExtra;
            }
            fu = &sboxPorts[which];
            fuCause = StallCause::FuSbox;
        } else {
            // SBOX shares D-cache ports (the 4W configuration).
            memExtra = memory.access(inst.addr, inst.size);
            lat = cfg.sboxOnDcacheLat + memExtra;
            fu = &dcachePorts;
            fuCause = StallCause::FuDcache;
        }
        break;
      }
      case OpClass::SboxSync:
        lat = 1;
        for (auto &sc : sboxCaches)
            sc.sync();
        break;
    }

    // Find the first cycle with both an issue slot and a unit. Both
    // are reserved jointly; every cycle that loses the race is charged
    // to the constraint that lost it (the issue slot first — without
    // one the unit is unreachable regardless). nextFree() walks the
    // issue ring directly, so a run of slot-full cycles costs one
    // array scan instead of a lookup per losing cycle.
    // The two causes this loop can charge accumulate in locals and
    // are stored once on exit: every stall slot is written at most
    // once per instruction, which is what lets emit() leave the
    // vector uninitialized outside recorded-timeline windows.
    Cycle cycle = ready;
    uint64_t slotWait = 0;
    uint64_t fuWait = 0;
    Cycle slotAt;
    while (true) {
        slotAt = issueSlots.nextFree(cycle);
        slotWait += slotAt - cycle;
        issueSlots.bookProbed(slotAt);
        if (!fu || fu->tryBook(slotAt, units))
            break;
        issueSlots.unbook(slotAt);
        fuWait++;
        // Forward-progress watchdog: fuWait counts exactly the failed
        // unit bookings, so the uncontended path pays nothing and a
        // contended retry pays one compare. An unsatisfiable pool
        // (units can never fit the capacity) turns into a typed trap
        // instead of an infinite loop.
        if (fuWait > progressBudgetBase + 8 * instIndex) [[unlikely]]
            throwNoProgress(inst, ready, slotAt, fuCause, slotWait,
                            fuWait);
        cycle = slotAt + 1;
    }
    if (slotWait) {
        stall[static_cast<size_t>(StallCause::IssueSlot)] = slotWait;
        touched |= 1u << static_cast<size_t>(StallCause::IssueSlot);
    }
    if (fuWait) {
        stall[static_cast<size_t>(fuCause)] = fuWait;
        touched |= 1u << static_cast<size_t>(fuCause);
    }
    return slotAt;
}

void
OooScheduler::pruneResources(Cycle horizon)
{
    issueSlots.retireBefore(horizon);
    retireSlots.retireBefore(horizon);
    aluUnits.retireBefore(horizon);
    rotUnits.retireBefore(horizon);
    mulSlots.retireBefore(horizon);
    dcachePorts.retireBefore(horizon);
    for (auto &p : sboxPorts)
        p.retireBefore(horizon);
}

void
OooScheduler::throwNoProgress(const DynInst &inst, Cycle ready,
                              Cycle probed, StallCause fuCause,
                              uint64_t slotWait, uint64_t fuWait) const
{
    // The stalled-frontier snapshot: the oldest un-issued instruction
    // and the constraint blocking it, so a `stalled` sweep cell is
    // diagnosable from the message alone.
    char buf[320];
    std::snprintf(
        buf, sizeof(buf),
        "scheduler made no forward progress on model '%s': seq=%llu "
        "pc=%u class=%s blocked on %s (ready cycle %llu, probed through "
        "cycle %llu: %llu failed unit bookings, %llu issue-slot wait "
        "cycles; base budget %llu, CRYPTARCH_SIM_PROGRESS_BUDGET "
        "overrides)",
        cfg.name.c_str(), static_cast<unsigned long long>(inst.seq),
        static_cast<unsigned>(inst.pc), isa::opClassName(inst.cls),
        stallCauseName(fuCause), static_cast<unsigned long long>(ready),
        static_cast<unsigned long long>(probed),
        static_cast<unsigned long long>(fuWait),
        static_cast<unsigned long long>(slotWait),
        static_cast<unsigned long long>(progressBudgetBase));
    throw isa::Trap(isa::TrapCause::NoProgress, buf);
}

void
OooScheduler::auditRetired(const DynInst &inst, Cycle fetch,
                           Cycle dispatch, Cycle ready, Cycle issue,
                           Cycle complete, Cycle retire,
                           const StallVector &stall) const
{
    auto fail = [&](const char *invariant, const std::string &detail) {
        throw AuditError(invariant, inst.seq, inst.pc, detail);
    };
    if (fetch > dispatch || dispatch > ready || ready > issue
        || issue > complete || complete > retire)
        fail("event-order",
             "fetch=" + std::to_string(fetch) + " dispatch="
                 + std::to_string(dispatch) + " ready="
                 + std::to_string(ready) + " issue="
                 + std::to_string(issue) + " complete="
                 + std::to_string(complete) + " retire="
                 + std::to_string(retire)
                 + " violates fetch<=dispatch<=ready<=issue<=complete"
                   "<=retire");
    // Conservation: the dispatch-to-issue stall causes tile the
    // dispatch-to-issue span exactly — no cycle lost, none counted
    // twice (the exclusion semantics DESIGN.md documents).
    const uint64_t tiled = dispatchToIssueCycles(stall);
    if (tiled != issue - dispatch)
        fail("stall-tiling",
             "attributed " + std::to_string(tiled)
                 + " dispatch-to-issue cycles but issue-dispatch is "
                 + std::to_string(issue - dispatch));
    // Resource books never exceed capacity at the cycles this
    // instruction just booked.
    auto overbooked = [](const CycleResource &r, Cycle at) {
        return r.limited() && r.bookedAt(at) > r.capacity();
    };
    if (overbooked(issueSlots, issue))
        fail("issue-width",
             std::to_string(issueSlots.bookedAt(issue))
                 + " issue slots booked at cycle "
                 + std::to_string(issue) + " with width "
                 + std::to_string(issueSlots.capacity()));
    if (overbooked(retireSlots, retire))
        fail("retire-width",
             std::to_string(retireSlots.bookedAt(retire))
                 + " retire slots booked at cycle "
                 + std::to_string(retire) + " with width "
                 + std::to_string(retireSlots.capacity()));
    for (const auto *fu : {&aluUnits, &rotUnits, &mulSlots, &dcachePorts})
        if (overbooked(*fu, issue))
            fail("fu-capacity",
                 "a functional-unit pool is overbooked at cycle "
                     + std::to_string(issue) + " ("
                     + std::to_string(fu->bookedAt(issue)) + " > "
                     + std::to_string(fu->capacity()) + ")");
}

void
OooScheduler::emit(const DynInst &inst)
{
    stats.instructions++;
    stats.classCounts[static_cast<size_t>(inst.cls)]++;
    if (inst.isLoad)
        stats.loads++;
    if (inst.isStore)
        stats.stores++;
    if (inst.cls == OpClass::SboxRead)
        stats.sboxAccesses++;

    // ----- fetch -----
    Cycle fetch = fetchOf(inst);

    // Per-instruction stall breakdown, accumulated into SimStats and
    // (inside the recorded window) the timeline entry. `touched` keeps
    // one bit per cause that was charged; every charged slot is
    // written exactly once, so the vector itself stays uninitialized —
    // except when a timeline window is recording, whose entries copy
    // the whole array and need the untouched slots zeroed.
    StallVector stall;
    unsigned touched = 0;
    // The auditor reads the whole vector (tiling conservation), so it
    // needs the untouched slots zeroed just like timeline entries do.
    if (timelineCount || auditing)
        stall.fill(0);

    // ----- operand / ordering readiness constraints (raw) -----
    // Track each gating constraint separately so the binding one (the
    // max) can be charged with the wait it causes, and so the window
    // charge below can be limited to delay beyond ALL of them.
    Cycle readyOp = fetch + cfg.frontendDepth;
    unsigned bindMemExtra = 0;
    for (unsigned s = 0; s < inst.numSrcs; s++) {
        Cycle r = regReady[inst.srcs[s]];
        if (r > readyOp) {
            readyOp = r;
            bindMemExtra = regMemExtra[inst.srcs[s]];
        } else if (r == readyOp
                   && regMemExtra[inst.srcs[s]] > bindMemExtra) {
            bindMemExtra = regMemExtra[inst.srcs[s]];
        }
    }

    Cycle readyAlias = 0;
    Cycle readySync = 0;
    if (inst.isLoad && !cfg.perfectAlias
        && !(inst.cls == OpClass::SboxRead)) {
        // Loads may not issue until all earlier store addresses are
        // known. Non-aliased SBOX reads bypass the ordering queue.
        readyAlias = storeAddrFrontier;
    }
    if (inst.cls == OpClass::SboxRead) {
        // SBOX visibility is gated by the last SBOXSYNC.
        readySync = syncFrontier;
    }
    if (inst.cls == OpClass::SboxSync) {
        // A sync publishes all prior stores.
        readySync = storeDataFrontier;
    }

    // ----- dispatch: frontend depth + window occupancy -----
    Cycle dispatch = fetch + cfg.frontendDepth;
    if (pendingRedirectStall) {
        // The first instruction fetched after a misprediction redirect
        // absorbs the restart delay — but only the part not hidden
        // behind its other constraints. The decoupled frontend runs
        // arbitrarily far ahead of execution, so the raw fetchCycle
        // jump (back to the resolving branch's completion) mostly
        // re-covers ground the window and the dependences had already
        // claimed; the genuine bubble is the excess over all of them.
        Cycle covered = std::max({readyOp, readyAlias, readySync,
                                  lastDispatch});
        if (cfg.windowSize != unlimited)
            covered = std::max(covered, retireRing[ringPos]);
        if (dispatch > covered) {
            stall[static_cast<size_t>(StallCause::FetchRedirect)] =
                std::min<Cycle>(pendingRedirectStall, dispatch - covered);
            touched |=
                1u << static_cast<size_t>(StallCause::FetchRedirect);
        }
        pendingRedirectStall = 0;
    }
    if (cfg.windowSize != unlimited) {
        Cycle freed = retireRing[ringPos];
        if (freed > dispatch) {
            // Charge the window only for delay beyond every other
            // readiness constraint (an instruction held by the window
            // while its operands were not ready anyway lost nothing —
            // the overlap Figure 5's exclusion models also assign to
            // the dependence, not the window), and charge each
            // window-stalled dispatch cycle once, to the first
            // instruction blocked by it: dispatch is in order, so the
            // window holds back a *frontier*, and charging every
            // co-blocked instruction would scale the count with the
            // window size (the decoupled frontend fetches arbitrarily
            // far ahead) and drown every real cause.
            Cycle covered = std::max(
                {dispatch, readyOp, readyAlias, readySync, lastDispatch});
            if (freed > covered) {
                stall[static_cast<size_t>(StallCause::WindowFull)] =
                    freed - covered;
                touched |=
                    1u << static_cast<size_t>(StallCause::WindowFull);
            }
            dispatch = freed;
        }
    }
    lastDispatch = std::max(lastDispatch, dispatch);

    readyOp = std::max(readyOp, dispatch);
    readyAlias = std::max(readyAlias, dispatch);
    readySync = std::max(readySync, dispatch);
    Cycle ready = std::max({readyOp, readyAlias, readySync});
    if (Cycle wait = ready - dispatch) {
        // Charge the binding constraint. Ties favor the ordering
        // constraints (alias, then sync): they are the machine-imposed
        // serializations the paper's exclusion models isolate, and a
        // dependence that merely ties them would not have issued any
        // earlier without them either.
        if (readyAlias == ready && readyAlias > dispatch) {
            stall[static_cast<size_t>(StallCause::StoreAlias)] = wait;
            touched |= 1u << static_cast<size_t>(StallCause::StoreAlias);
        } else if (readySync == ready && readySync > dispatch) {
            stall[static_cast<size_t>(StallCause::SboxVisibility)] = wait;
            touched |=
                1u << static_cast<size_t>(StallCause::SboxVisibility);
        } else {
            // An operand wait; the part covered by the producer's
            // memory-hierarchy extra latency is the DF+Mem cost.
            uint64_t memPart = std::min<uint64_t>(wait, bindMemExtra);
            stall[static_cast<size_t>(StallCause::MemLatency)] = memPart;
            stall[static_cast<size_t>(StallCause::Operand)] =
                wait - memPart;
            // A zero slot here just adds 0 in the accumulation pass.
            touched |= 1u << static_cast<size_t>(StallCause::MemLatency)
                     | 1u << static_cast<size_t>(StallCause::Operand);
        }
    }

    // ----- issue + latency -----
    unsigned lat = 0;
    unsigned memExtra = 0;
    Cycle issue = issueOf(inst, ready, lat, memExtra, stall, touched);
    Cycle complete = issue + lat;
    maxComplete = std::max(maxComplete, complete);

    // Most instructions stall for at most one or two causes; walk the
    // touched-cause bits instead of all num_stall_causes slots.
    for (unsigned m = touched; m;) {
        unsigned c = static_cast<unsigned>(std::countr_zero(m));
        m &= m - 1;
        stats.stallCycles[c] += stall[c];
        stats.stallByClass[static_cast<size_t>(inst.cls)][c] += stall[c];
    }

    // ----- side effects on global ordering state -----
    if (inst.isStore) {
        // The address generation micro-op only needs the base
        // register, so the address resolves before the data arrives
        // (split store handling, as in sim-outorder).
        Cycle addr_ready = std::max(dispatch,
                                    regReady[inst.addrSrc]) + 1;
        storeAddrFrontier = std::max(storeAddrFrontier,
                                     std::min(addr_ready, issue));
        storeDataFrontier = std::max(storeDataFrontier, complete);
    }
    if (inst.cls == OpClass::SboxSync)
        syncFrontier = complete;

    if (inst.branch) {
        bool correct = true;
        if (inst.op != isa::Opcode::Br) {
            stats.condBranches++;
            correct = predictor.predict(inst.pc, inst.taken);
            if (!correct)
                stats.mispredicts++;
        }
        if (!cfg.perfectBranch && !correct) {
            // Redirect: fetch resumes after resolution plus the
            // minimum misprediction penalty.
            Cycle redirected = std::max<Cycle>(
                fetchCycle, complete + cfg.mispredictPenalty);
            pendingRedirectStall += redirected - fetchCycle;
            fetchCycle = redirected;
            fetchedThisCycle = 0;
            blocksThisCycle = 0;
            nextCycleFetch = false;
        } else if (inst.taken
                   && cfg.fetchBlocksPerCycle != unlimited) {
            // A (predicted) taken branch terminates a fetch block.
            blocksThisCycle++;
            if (blocksThisCycle >= cfg.fetchBlocksPerCycle)
                nextCycleFetch = true;
        }
    }

    // ----- writeback -----
    if (inst.dest != isa::reg_zero.n) {
        regReady[inst.dest] = complete;
        regMemExtra[inst.dest] = memExtra;
    }

    // ----- retire (in order, retire-width per cycle) -----
    Cycle retire = std::max(complete, lastRetire);
    retire = retireSlots.reserve(retire);
    lastRetire = retire;

    if (auditing)
        auditRetired(inst, fetch, dispatch, ready, issue, complete,
                     retire, stall);

    // One unsigned compare covers both window bounds (seq below
    // timelineFirst wraps past any count).
    if (inst.seq - timelineFirst < timelineCount) {
        timeline.push_back({inst.seq, inst.pc, inst.op, fetch, dispatch,
                            ready, issue, complete, retire, stall});
    }
    // The ring cursor tracks instIndex % windowSize without paying a
    // division per instruction; slot ringPos holds the retire cycle
    // of instruction instIndex - windowSize (the window's oldest).
    if (cfg.windowSize != unlimited) {
        retireRing[ringPos] = retire;
        if (++ringPos == retireRing.size())
            ringPos = 0;
    }
    instIndex++;

    // Prune resource rings behind the retirement frontier.
    if ((instIndex & 0xFFF) == 0) {
        pruneResources(cfg.windowSize != unlimited ? retireRing[ringPos]
                                                   : lastRetire);
    }
}

SimStats
OooScheduler::finish()
{
    stats.cycles = std::max(lastRetire, maxComplete) + 1;
    stats.l1 = memory.l1Stats();
    stats.l2 = memory.l2Stats();
    stats.tlb = memory.tlbStats();
    // Merge per-SBox-cache accesses/misses; without this only the hit
    // count would survive and hit *rates* would be incomputable.
    stats.sboxCaches.clear();
    stats.sboxCacheAccesses = 0;
    stats.sboxCacheMisses = 0;
    for (const auto &sc : sboxCaches) {
        stats.sboxCaches.push_back(sc.stats());
        stats.sboxCacheAccesses += sc.stats().accesses;
        stats.sboxCacheMisses += sc.stats().misses;
    }
    return stats;
}

SimStats
simulate(isa::Machine &machine, const isa::Program &program,
         const MachineConfig &config, uint64_t max_insts,
         ConfigPolicy policy)
{
    OooScheduler sched(config, policy);
    machine.run(program, &sched, max_insts);
    return sched.finish();
}

} // namespace cryptarch::sim
