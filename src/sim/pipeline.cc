#include "sim/pipeline.hh"

#include <algorithm>

namespace cryptarch::sim
{

using isa::DynInst;
using isa::OpClass;

OooScheduler::OooScheduler(const MachineConfig &config)
    : cfg(config), issueSlots(cfg.issueWidth), retireSlots(cfg.issueWidth),
      aluUnits(cfg.numIntAlu), rotUnits(cfg.numRotUnits),
      mulSlots(cfg.mulHalfSlots), dcachePorts(cfg.numDCachePorts),
      retireRing(cfg.windowSize ? cfg.windowSize : 1, 0),
      predictor(cfg.predictorEntries), memory(cfg)
{
    stats.model = cfg.name;
    if (!cfg.perfectSbox && cfg.numSboxCaches > 0) {
        sboxCaches.resize(cfg.numSboxCaches);
        for (unsigned i = 0; i < cfg.numSboxCaches; i++)
            sboxPorts.emplace_back(cfg.sboxCachePorts);
    }
}

Cycle
OooScheduler::fetchOf(const DynInst &inst)
{
    (void)inst;
    if (nextCycleFetch) {
        fetchCycle++;
        fetchedThisCycle = 0;
        blocksThisCycle = 0;
        nextCycleFetch = false;
    }
    if (cfg.fetchWidth != unlimited
        && fetchedThisCycle >= cfg.fetchWidth) {
        fetchCycle++;
        fetchedThisCycle = 0;
        blocksThisCycle = 0;
    }
    fetchedThisCycle++;
    return fetchCycle;
}

Cycle
OooScheduler::issueOf(const DynInst &inst, Cycle ready, unsigned &lat)
{
    // Select the operation's functional unit pool, unit count, and
    // base latency.
    CycleResource *fu = nullptr;
    unsigned units = 1;
    lat = cfg.aluLat;

    switch (inst.cls) {
      case OpClass::Nop:
        lat = 0;
        break;
      case OpClass::Control:
      case OpClass::IntAlu:
        fu = &aluUnits;
        lat = cfg.aluLat;
        break;
      case OpClass::RotUnit:
        fu = &rotUnits;
        lat = cfg.rotLat;
        break;
      case OpClass::IntMult:
        fu = &mulSlots;
        units = 2;
        lat = cfg.mulLat64;
        break;
      case OpClass::IntMult32:
        fu = &mulSlots;
        units = 1;
        lat = cfg.mulLat32;
        break;
      case OpClass::MulMod:
        fu = &mulSlots;
        units = 1;
        lat = cfg.mulmodLat;
        break;
      case OpClass::Load:
        fu = &dcachePorts;
        // Aliased SBOX accesses are loads with optimized address
        // generation (2 cycles); ordinary loads take the full path.
        lat = (inst.op == isa::Opcode::Sbox) ? cfg.sboxOnDcacheLat
                                             : cfg.loadLat;
        lat += memory.access(inst.addr, inst.size);
        break;
      case OpClass::Store:
        fu = &dcachePorts;
        lat = 1;
        (void)memory.access(inst.addr, inst.size);
        break;
      case OpClass::SboxRead: {
        if (cfg.perfectSbox) {
            // Dataflow-style machine: 1-cycle SBox, no port pressure.
            lat = cfg.sboxCacheLat;
            fu = nullptr;
        } else if (!sboxCaches.empty()) {
            unsigned which = inst.tableId % sboxCaches.size();
            bool hit = sboxCaches[which].access(inst.addr & ~0x3FFull,
                                                inst.addr & 0x3FF);
            if (hit) {
                stats.sboxCacheHits++;
                lat = cfg.sboxCacheLat;
            } else {
                // Demand-fetch the sector from the D-cache.
                lat = cfg.sboxCacheLat + cfg.sboxOnDcacheLat
                    + memory.access(inst.addr, inst.size);
            }
            fu = &sboxPorts[which];
        } else {
            // SBOX shares D-cache ports (the 4W configuration).
            lat = cfg.sboxOnDcacheLat + memory.access(inst.addr,
                                                      inst.size);
            fu = &dcachePorts;
        }
        break;
      }
      case OpClass::SboxSync:
        lat = 1;
        for (auto &sc : sboxCaches)
            sc.sync();
        break;
    }

    // Find the first cycle with both an issue slot and a unit.
    Cycle cycle = ready;
    while (true) {
        bool slot_ok = issueSlots.canReserve(cycle);
        bool fu_ok = fu == nullptr || fu->canReserve(cycle, units);
        if (slot_ok && fu_ok) {
            issueSlots.book(cycle);
            if (fu)
                fu->book(cycle, units);
            return cycle;
        }
        cycle++;
    }
}

void
OooScheduler::emit(const DynInst &inst)
{
    stats.instructions++;
    stats.classCounts[static_cast<size_t>(inst.cls)]++;
    if (inst.isLoad)
        stats.loads++;
    if (inst.isStore)
        stats.stores++;
    if (inst.cls == OpClass::SboxRead)
        stats.sboxAccesses++;

    // ----- fetch -----
    Cycle fetch = fetchOf(inst);

    // ----- dispatch: frontend depth + window occupancy -----
    Cycle dispatch = fetch + cfg.frontendDepth;
    if (cfg.windowSize != unlimited) {
        Cycle freed = retireRing[instIndex % cfg.windowSize];
        dispatch = std::max(dispatch, freed);
    }

    // ----- operand / ordering readiness -----
    Cycle ready = dispatch;
    for (unsigned s = 0; s < inst.numSrcs; s++)
        ready = std::max(ready, regReady[inst.srcs[s]]);

    if (inst.isLoad && !cfg.perfectAlias
        && !(inst.cls == OpClass::SboxRead)) {
        // Loads may not issue until all earlier store addresses are
        // known. Non-aliased SBOX reads bypass the ordering queue.
        ready = std::max(ready, storeAddrFrontier);
    }
    if (inst.cls == OpClass::SboxRead) {
        // SBOX visibility is gated by the last SBOXSYNC.
        ready = std::max(ready, syncFrontier);
    }
    if (inst.cls == OpClass::SboxSync) {
        // A sync publishes all prior stores.
        ready = std::max(ready, storeDataFrontier);
    }

    // ----- issue + latency -----
    unsigned lat = 0;
    Cycle issue = issueOf(inst, ready, lat);
    Cycle complete = issue + lat;
    maxComplete = std::max(maxComplete, complete);

    // ----- side effects on global ordering state -----
    if (inst.isStore) {
        // The address generation micro-op only needs the base
        // register, so the address resolves before the data arrives
        // (split store handling, as in sim-outorder).
        Cycle addr_ready = std::max(dispatch,
                                    regReady[inst.addrSrc]) + 1;
        storeAddrFrontier = std::max(storeAddrFrontier,
                                     std::min(addr_ready, issue));
        storeDataFrontier = std::max(storeDataFrontier, complete);
    }
    if (inst.cls == OpClass::SboxSync)
        syncFrontier = complete;

    if (inst.branch) {
        bool correct = true;
        if (inst.op != isa::Opcode::Br) {
            stats.condBranches++;
            correct = predictor.predict(inst.pc, inst.taken);
            if (!correct)
                stats.mispredicts++;
        }
        if (!cfg.perfectBranch && !correct) {
            // Redirect: fetch resumes after resolution plus the
            // minimum misprediction penalty.
            fetchCycle = std::max<Cycle>(fetchCycle,
                                         complete + cfg.mispredictPenalty);
            fetchedThisCycle = 0;
            blocksThisCycle = 0;
            nextCycleFetch = false;
        } else if (inst.taken
                   && cfg.fetchBlocksPerCycle != unlimited) {
            // A (predicted) taken branch terminates a fetch block.
            blocksThisCycle++;
            if (blocksThisCycle >= cfg.fetchBlocksPerCycle)
                nextCycleFetch = true;
        }
    }

    // ----- writeback -----
    if (inst.dest != isa::reg_zero.n)
        regReady[inst.dest] = complete;

    // ----- retire (in order, retire-width per cycle) -----
    Cycle retire = std::max(complete, lastRetire);
    retire = retireSlots.reserve(retire);
    lastRetire = retire;

    if (inst.seq >= timelineFirst
        && inst.seq < timelineFirst + timelineCount) {
        timeline.push_back({inst.seq, inst.pc, inst.op, fetch, dispatch,
                            ready, issue, complete, retire});
    }
    if (cfg.windowSize != unlimited)
        retireRing[instIndex % cfg.windowSize] = retire;
    instIndex++;

    // Prune resource maps behind the retirement frontier.
    if ((instIndex & 0xFFF) == 0) {
        Cycle horizon = cfg.windowSize != unlimited
            ? retireRing[instIndex % cfg.windowSize]
            : lastRetire;
        issueSlots.retireBefore(horizon);
        retireSlots.retireBefore(horizon);
        aluUnits.retireBefore(horizon);
        rotUnits.retireBefore(horizon);
        mulSlots.retireBefore(horizon);
        dcachePorts.retireBefore(horizon);
        for (auto &p : sboxPorts)
            p.retireBefore(horizon);
    }
}

SimStats
OooScheduler::finish()
{
    stats.cycles = std::max(lastRetire, maxComplete) + 1;
    stats.l1 = memory.l1Stats();
    stats.l2 = memory.l2Stats();
    stats.tlb = memory.tlbStats();
    return stats;
}

SimStats
simulate(isa::Machine &machine, const isa::Program &program,
         const MachineConfig &config, uint64_t max_insts)
{
    OooScheduler sched(config);
    machine.run(program, &sched, max_insts);
    return sched.finish();
}

} // namespace cryptarch::sim
