/**
 * @file
 * Stall-cause taxonomy for the out-of-order scheduler.
 *
 * The paper locates cipher bottlenecks indirectly: Figure 5 starts
 * from the dataflow machine and re-inserts one constraint at a time,
 * comparing end-to-end IPC. The scheduler computes every event cycle
 * needed to measure those bottlenecks *directly*, so we classify each
 * cycle an instruction spends between dispatch and issue (plus the
 * frontend delays that push dispatch itself out) into exactly one
 * cause and accumulate per-cause totals. One simulation then tells
 * the same story as the paper's eight.
 *
 * The mapping onto Figure 5's exclusion models:
 *
 *   Operand        true dependence height — what DF itself exposes
 *   MemLatency     DF+Mem   (operand waits due to cache/TLB miss extra)
 *   StoreAlias     DF+Alias (loads held for prior store addresses)
 *   SboxVisibility SBOXSYNC gating (reads wait for the last sync;
 *                  syncs wait for prior store data)
 *   WindowFull     DF+Window (dispatch held for the ROB to drain)
 *   FetchRedirect  DF+Branch (fetch restart after a misprediction)
 *   IssueSlot      DF+Issue  (issue-width contention)
 *   FuAlu..FuSbox  DF+Res    (per-functional-unit contention)
 */

#ifndef CRYPTARCH_SIM_STALL_HH
#define CRYPTARCH_SIM_STALL_HH

#include <array>
#include <cstddef>
#include <cstdint>

namespace cryptarch::sim
{

/** Why an instruction spent a cycle waiting instead of issuing. */
enum class StallCause : uint8_t
{
    Operand,        ///< waiting for a source register's producer
    MemLatency,     ///< operand wait due to memory-hierarchy extra cycles
    StoreAlias,     ///< load held until prior store addresses resolved
    SboxVisibility, ///< SBOXSYNC gating (read-after-sync, sync-after-store)
    WindowFull,     ///< dispatch held: instruction windowSize back not retired
    FetchRedirect,  ///< fetch restarted after a branch misprediction
    IssueSlot,      ///< issue-width contention
    FuAlu,          ///< integer-ALU contention
    FuRot,          ///< rotator/XBOX-unit contention
    FuMul,          ///< multiplier half-slot contention
    FuDcache,       ///< D-cache port contention
    FuSbox,         ///< SBox-cache port contention
};

/** Number of stall causes (size of any per-cause accumulator). */
constexpr size_t num_stall_causes =
    static_cast<size_t>(StallCause::FuSbox) + 1;

/** Per-cause cycle accumulator. */
using StallVector = std::array<uint64_t, num_stall_causes>;

/**
 * Short machine-readable cause names, indexed by StallCause. Shared by
 * the JSON emitter, the fig05 companion report and the pipeline viewer
 * so every surface prints the same vocabulary.
 */
inline constexpr std::array<const char *, num_stall_causes>
    stall_cause_names = {
        "operand",  "mem",        "alias",  "sbox_sync",
        "window",   "redirect",   "issue",  "fu_alu",
        "fu_rot",   "fu_mul",     "fu_dcache", "fu_sbox",
};

/** Name of one cause (see stall_cause_names). */
inline const char *
stallCauseName(StallCause c)
{
    return stall_cause_names[static_cast<size_t>(c)];
}

/** Cycles in @p v attributable to the span between dispatch and issue
 *  (everything except the pre-dispatch WindowFull/FetchRedirect
 *  delays). For every instruction this sums to (issue - dispatch). */
inline uint64_t
dispatchToIssueCycles(const StallVector &v)
{
    uint64_t sum = 0;
    for (size_t c = 0; c < num_stall_causes; c++)
        if (c != static_cast<size_t>(StallCause::WindowFull)
            && c != static_cast<size_t>(StallCause::FetchRedirect))
            sum += v[c];
    return sum;
}

/** Sum of the per-functional-unit contention causes in @p v. */
inline uint64_t
fuContentionCycles(const StallVector &v)
{
    return v[static_cast<size_t>(StallCause::FuAlu)]
        + v[static_cast<size_t>(StallCause::FuRot)]
        + v[static_cast<size_t>(StallCause::FuMul)]
        + v[static_cast<size_t>(StallCause::FuDcache)]
        + v[static_cast<size_t>(StallCause::FuSbox)];
}

} // namespace cryptarch::sim

#endif // CRYPTARCH_SIM_STALL_HH
