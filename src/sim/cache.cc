#include "sim/cache.hh"

#include <array>

#include "sim/validate.hh"

namespace cryptarch::sim
{

Cache::Cache(const CacheGeometry &geom)
    : blockBytes(geom.blockBytes), assoc(geom.assoc)
{
    // Constructing from a degenerate geometry used to be UB (divide by
    // zero below, zero-sized line array indexed on access). Config
    // validation rejects these before a scheduler is built; direct
    // constructions get the same typed error here.
    if (geom.blockBytes == 0 || geom.assoc == 0 || geom.sizeBytes == 0)
        throw ConfigRejected(
            {ConfigErrorKind::ZeroGeometry, "cache",
             "blockBytes, assoc and sizeBytes must all be nonzero"});
    const uint64_t setBytes =
        static_cast<uint64_t>(geom.blockBytes) * geom.assoc;
    if (geom.sizeBytes < setBytes
        || geom.sizeBytes % setBytes != 0)
        throw ConfigRejected(
            {ConfigErrorKind::BadGeometry, "cache",
             "sizeBytes (" + std::to_string(geom.sizeBytes)
                 + ") must be a nonzero multiple of blockBytes*assoc ("
                 + std::to_string(setBytes) + ")"});
    numSets = geom.sizeBytes / (geom.blockBytes * geom.assoc);
    lines.resize(static_cast<size_t>(numSets) * assoc);
    if (blockBytes && (blockBytes & (blockBytes - 1)) == 0) {
        blockShift = 0;
        while ((1u << blockShift) != blockBytes)
            blockShift++;
    }
    setsPow2 = numSets && (numSets & (numSets - 1)) == 0;
}

bool
Cache::access(uint64_t addr)
{
    stat.accesses++;
    uint64_t block = blockOf(addr);
    uint32_t set = setOf(block);
    Line *ways = &lines[static_cast<size_t>(set) * assoc];
    stamp++;
    for (uint32_t w = 0; w < assoc; w++) {
        if (ways[w].valid && ways[w].tag == block) {
            ways[w].lruStamp = stamp;
            return true;
        }
    }
    stat.misses++;
    // Fill the LRU way.
    Line *victim = &ways[0];
    for (uint32_t w = 1; w < assoc; w++) {
        if (!ways[w].valid) {
            victim = &ways[w];
            break;
        }
        if (ways[w].lruStamp < victim->lruStamp && victim->valid)
            victim = &ways[w];
    }
    victim->valid = true;
    victim->tag = block;
    victim->lruStamp = stamp;
    return false;
}

void
Cache::prefetch(uint64_t addr)
{
    if (contains(addr))
        return;
    uint64_t block = blockOf(addr);
    uint32_t set = setOf(block);
    Line *ways = &lines[static_cast<size_t>(set) * assoc];
    stamp++;
    Line *victim = &ways[0];
    for (uint32_t w = 1; w < assoc; w++) {
        if (!ways[w].valid) {
            victim = &ways[w];
            break;
        }
        if (ways[w].lruStamp < victim->lruStamp && victim->valid)
            victim = &ways[w];
    }
    victim->valid = true;
    victim->tag = block;
    victim->lruStamp = stamp;
}

bool
Cache::contains(uint64_t addr) const
{
    uint64_t block = blockOf(addr);
    uint32_t set = setOf(block);
    const Line *ways = &lines[static_cast<size_t>(set) * assoc];
    for (uint32_t w = 0; w < assoc; w++) {
        if (ways[w].valid && ways[w].tag == block)
            return true;
    }
    return false;
}

Tlb::Tlb(unsigned entries, unsigned assoc, unsigned page_bytes)
    : backing(CacheGeometry{entries * page_bytes, assoc, page_bytes}),
      pageBytes(page_bytes)
{
}

bool
Tlb::access(uint64_t addr)
{
    stat.accesses++;
    bool hit = backing.access(addr);
    if (!hit)
        stat.misses++;
    (void)pageBytes;
    return hit;
}

MemoryHierarchy::MemoryHierarchy(const MachineConfig &cfg)
    : cfg(cfg), l1(cfg.l1d), l2(cfg.l2),
      tlb(cfg.dtlbEntries, cfg.dtlbAssoc, cfg.pageBytes)
{
}

unsigned
MemoryHierarchy::access(uint64_t addr, unsigned size)
{
    (void)size;
    if (cfg.perfectMemory)
        return 0;

    unsigned extra = 0;
    if (!tlb.access(addr))
        extra += cfg.dtlbMissLat;

    if (l1.access(addr)) {
        // L1 hit: no cycles beyond the base load latency.
    } else if (l2.access(addr)) {
        extra += cfg.l2HitLat;
    } else {
        extra += cfg.memLat;
    }
    if (cfg.nextLinePrefetch) {
        uint64_t next = addr + cfg.l1d.blockBytes;
        if (!l1.contains(next)) {
            l1.prefetch(next);
            l2.prefetch(next);
        }
    }
    return extra;
}

bool
SboxCache::access(uint64_t frame_base, unsigned offset)
{
    stat.accesses++;
    unsigned sector = (offset / 32) % num_sectors;
    if (tagValid && tag == frame_base && sectorValid[sector])
        return true;
    stat.misses++;
    if (!tagValid || tag != frame_base) {
        // Tag change: flush every sector.
        sectorValid.fill(false);
        tag = frame_base;
        tagValid = true;
    }
    sectorValid[sector] = true;
    return false;
}

void
SboxCache::sync()
{
    sectorValid.fill(false);
}

} // namespace cryptarch::sim
