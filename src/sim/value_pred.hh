/**
 * @file
 * Infinite last-value predictor (paper section 4.3).
 *
 * The paper instruments its model with an infinite-sized last-value
 * predictor [Lipasti & Shen 96] over every instruction in each cipher
 * kernel and finds the most predictable dependence edge is correct only
 * 6.3% of the time — diffusion destroys value locality, ruling out
 * value speculation as an optimization. This sink reproduces that
 * experiment on the dynamic trace.
 */

#ifndef CRYPTARCH_SIM_VALUE_PRED_HH
#define CRYPTARCH_SIM_VALUE_PRED_HH

#include <cstdint>
#include <unordered_map>

#include "isa/machine.hh"

namespace cryptarch::sim
{

/** Per-static-instruction last-value predictability collector. */
class LastValuePredictor : public isa::TraceSink
{
  public:
    void
    emit(const isa::DynInst &inst) override
    {
        if (inst.dest == isa::reg_zero.n)
            return;
        auto &e = table[inst.pc];
        if (e.executions > 0 && e.lastValue == inst.result)
            e.correct++;
        if (e.executions == 0)
            e.firstValue = inst.result;
        else if (inst.result != e.firstValue)
            e.invariant = false;
        e.lastValue = inst.result;
        e.executions++;
    }

    /**
     * Highest per-instruction prediction rate among instructions that
     * executed at least @p min_execs times (0.0 when none qualify).
     * With @p exclude_invariant, instructions that produced the same
     * value on every execution (loop-invariant reloads of keys and
     * table bases — trivially predictable but never on a cipher
     * dependence chain) are skipped; that matches the paper's framing
     * of "dependence edges".
     */
    double
    bestPredictability(uint64_t min_execs = 64,
                       bool exclude_invariant = false) const
    {
        double best = 0.0;
        for (const auto &[pc, e] : table) {
            if (e.executions < min_execs || e.executions < 2)
                continue;
            if (exclude_invariant && e.invariant)
                continue;
            double rate = static_cast<double>(e.correct)
                / static_cast<double>(e.executions - 1);
            best = std::max(best, rate);
        }
        return best;
    }

    /** Number of qualifying loop-invariant instructions. */
    uint64_t
    invariantCount(uint64_t min_execs = 64) const
    {
        uint64_t n = 0;
        for (const auto &[pc, e] : table) {
            if (e.executions >= min_execs && e.invariant)
                n++;
        }
        return n;
    }

    /** Mean prediction rate over qualifying instructions. */
    double
    meanPredictability(uint64_t min_execs = 64) const
    {
        double sum = 0.0;
        uint64_t n = 0;
        for (const auto &[pc, e] : table) {
            if (e.executions < min_execs || e.executions < 2)
                continue;
            sum += static_cast<double>(e.correct)
                / static_cast<double>(e.executions - 1);
            n++;
        }
        return n ? sum / n : 0.0;
    }

  private:
    struct Entry
    {
        uint64_t lastValue = 0;
        uint64_t firstValue = 0;
        uint64_t executions = 0;
        uint64_t correct = 0;
        bool invariant = true;
    };

    std::unordered_map<uint32_t, Entry> table;
};

} // namespace cryptarch::sim

#endif // CRYPTARCH_SIM_VALUE_PRED_HH
