#include "sim/validate.hh"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <set>

#include "util/env.hh"

namespace cryptarch::sim
{

namespace
{

// Size caps: a config past these is not "a big machine", it is an
// allocation bomb (the cache line array, predictor table and window
// ring are sized directly from them). Far above every real design
// point — the paper's largest structure is the 512 KB L2.
constexpr uint64_t max_cache_lines = 1u << 22;     // 4M lines
constexpr unsigned max_predictor_entries = 1u << 26;
constexpr unsigned max_tlb_entries = 1u << 22;
constexpr unsigned max_page_bytes = 1u << 30;
constexpr unsigned max_window_size = 1u << 24;
// The resource ring amortizes pruning over its entry count, so sweep
// cost per instruction is proportional to the largest in-flight
// latency gap: a 2^20-cycle latency turns a 512-byte kernel into
// ~10^11 bookkeeping operations. 2^12 keeps the worst admissible
// machine around a second per cell while sitting 34x above the
// paper's largest real latency (memLat = 120).
constexpr unsigned max_latency = 1u << 12;
constexpr unsigned max_width = 1u << 16;

bool
isPow2(unsigned v)
{
    return v && (v & (v - 1)) == 0;
}

unsigned
floorPow2(unsigned v)
{
    unsigned p = 1;
    while (p <= v / 2)
        p *= 2;
    return p;
}

std::optional<ConfigError>
checkGeometry(const char *name, const CacheGeometry &g)
{
    const std::string f(name);
    if (g.blockBytes == 0)
        return ConfigError{ConfigErrorKind::ZeroGeometry,
                           f + ".blockBytes",
                           "block size must be nonzero"};
    if (g.assoc == 0)
        return ConfigError{ConfigErrorKind::ZeroGeometry, f + ".assoc",
                           "associativity must be nonzero"};
    if (g.sizeBytes == 0)
        return ConfigError{ConfigErrorKind::ZeroGeometry, f + ".sizeBytes",
                           "capacity must be nonzero"};
    const uint64_t setBytes =
        static_cast<uint64_t>(g.blockBytes) * g.assoc;
    if (g.sizeBytes < setBytes)
        return ConfigError{ConfigErrorKind::BadGeometry, f + ".sizeBytes",
                           "capacity " + std::to_string(g.sizeBytes)
                               + " smaller than one set ("
                               + std::to_string(setBytes) + " bytes)"};
    if (g.sizeBytes % setBytes != 0)
        return ConfigError{ConfigErrorKind::BadGeometry, f + ".sizeBytes",
                           "capacity " + std::to_string(g.sizeBytes)
                               + " not a multiple of blockBytes*assoc ("
                               + std::to_string(setBytes) + ")"};
    if (g.sizeBytes / g.blockBytes > max_cache_lines)
        return ConfigError{ConfigErrorKind::Oversized, f + ".sizeBytes",
                           std::to_string(g.sizeBytes / g.blockBytes)
                               + " lines exceeds the "
                               + std::to_string(max_cache_lines)
                               + "-line cap"};
    return std::nullopt;
}

std::optional<ConfigError>
checkLatency(const char *field, unsigned lat)
{
    if (lat == 0)
        return ConfigError{ConfigErrorKind::InconsistentLatency, field,
                           "a 0-cycle operation latency cannot describe "
                           "a real unit"};
    if (lat > max_latency)
        return ConfigError{ConfigErrorKind::Oversized, field,
                           std::to_string(lat) + " cycles exceeds the "
                               + std::to_string(max_latency)
                               + "-cycle cap"};
    return std::nullopt;
}

std::optional<ConfigError>
checkWidth(const char *field, unsigned width)
{
    // 0 = unlimited is always admissible.
    if (width > max_width)
        return ConfigError{ConfigErrorKind::Oversized, field,
                           std::to_string(width) + " exceeds the "
                               + std::to_string(max_width) + " cap"};
    return std::nullopt;
}

/** One-time-per-field canonicalization warnings (same policy as
 *  util::env's unrecognized-value warnings). */
void
warnAdjustment(const std::string &field, unsigned from, unsigned to)
{
    static std::mutex mutex;
    static std::set<std::string> warned;
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (!warned.insert(field).second)
            return;
    }
    std::fprintf(stderr,
                 "cryptarch: canonicalized %s from %u to %u (the "
                 "indexing path requires a power of two)\n",
                 field.c_str(), from, to);
}

// Hardening policies, read once at static init (the trace.cc policy
// pattern). Forked sweep workers inherit these by memory copy, so
// harnesses flip them through the setters, not setenv.
std::atomic<bool> validate_enabled{
    util::envFlag("CRYPTARCH_SIM_VALIDATE", true)};
std::atomic<bool> audit_enabled{util::envFlag("CRYPTARCH_SIM_AUDIT", false)};
std::atomic<uint64_t> progress_budget{
    util::envU64("CRYPTARCH_SIM_PROGRESS_BUDGET", 0)};

} // namespace

const char *
configErrorKindName(ConfigErrorKind kind)
{
    switch (kind) {
      case ConfigErrorKind::ZeroGeometry: return "zero-geometry";
      case ConfigErrorKind::BadGeometry: return "bad-geometry";
      case ConfigErrorKind::NonPow2: return "non-pow2";
      case ConfigErrorKind::InconsistentLatency:
        return "inconsistent-latency";
      case ConfigErrorKind::UnsatisfiableFuPool:
        return "unsatisfiable-fu-pool";
      case ConfigErrorKind::Oversized: return "oversized";
    }
    return "?";
}

std::string
ConfigError::message() const
{
    return "config error [" + std::string(configErrorKindName(kind)) + "] "
        + field + ": " + detail;
}

std::optional<ConfigError>
validateConfig(const MachineConfig &cfg)
{
    // --- Frontend ---
    if (auto e = checkWidth("fetchBlocksPerCycle", cfg.fetchBlocksPerCycle))
        return e;
    if (auto e = checkWidth("fetchWidth", cfg.fetchWidth))
        return e;
    if (cfg.mispredictPenalty > max_latency)
        return ConfigError{ConfigErrorKind::Oversized, "mispredictPenalty",
                           std::to_string(cfg.mispredictPenalty)
                               + " cycles exceeds the "
                               + std::to_string(max_latency)
                               + "-cycle cap"};
    if (cfg.predictorEntries == 0)
        return ConfigError{ConfigErrorKind::ZeroGeometry,
                           "predictorEntries",
                           "the predictor table must have entries"};
    if (!isPow2(cfg.predictorEntries))
        return ConfigError{ConfigErrorKind::NonPow2, "predictorEntries",
                           std::to_string(cfg.predictorEntries)
                               + " is not a power of two (the bimodal "
                                 "index masks)"};
    if (cfg.predictorEntries > max_predictor_entries)
        return ConfigError{ConfigErrorKind::Oversized, "predictorEntries",
                           std::to_string(cfg.predictorEntries)
                               + " exceeds the "
                               + std::to_string(max_predictor_entries)
                               + "-entry cap"};

    // --- Window / issue ---
    if (cfg.windowSize > max_window_size)
        return ConfigError{ConfigErrorKind::Oversized, "windowSize",
                           std::to_string(cfg.windowSize)
                               + " exceeds the "
                               + std::to_string(max_window_size)
                               + "-entry cap"};
    if (auto e = checkWidth("issueWidth", cfg.issueWidth))
        return e;
    if (cfg.frontendDepth > max_latency)
        return ConfigError{ConfigErrorKind::Oversized, "frontendDepth",
                           std::to_string(cfg.frontendDepth)
                               + " cycles exceeds the "
                               + std::to_string(max_latency)
                               + "-cycle cap"};

    // --- Functional units ---
    if (auto e = checkWidth("numIntAlu", cfg.numIntAlu))
        return e;
    if (auto e = checkWidth("numRotUnits", cfg.numRotUnits))
        return e;
    if (auto e = checkWidth("mulHalfSlots", cfg.mulHalfSlots))
        return e;
    if (auto e = checkWidth("numDCachePorts", cfg.numDCachePorts))
        return e;
    if (auto e = checkWidth("numSboxCaches", cfg.numSboxCaches))
        return e;
    if (auto e = checkWidth("sboxCachePorts", cfg.sboxCachePorts))
        return e;
    // A 64-bit MULQ books 2 multiplier half-slots in one cycle; a pool
    // of exactly 1 can never satisfy it and the issue retry loop would
    // spin forever. 0 is the unlimited escape; >= 2 fits.
    if (cfg.mulHalfSlots == 1)
        return ConfigError{ConfigErrorKind::UnsatisfiableFuPool,
                           "mulHalfSlots",
                           "a 64-bit multiply consumes 2 half-slots per "
                           "cycle; a 1-slot pool can never issue it "
                           "(use 0 for unlimited or >= 2)"};

    // --- Latencies ---
    if (auto e = checkLatency("aluLat", cfg.aluLat))
        return e;
    if (auto e = checkLatency("rotLat", cfg.rotLat))
        return e;
    if (auto e = checkLatency("mulLat64", cfg.mulLat64))
        return e;
    if (auto e = checkLatency("mulLat32", cfg.mulLat32))
        return e;
    if (auto e = checkLatency("mulmodLat", cfg.mulmodLat))
        return e;
    if (auto e = checkLatency("loadLat", cfg.loadLat))
        return e;
    if (auto e = checkLatency("sboxOnDcacheLat", cfg.sboxOnDcacheLat))
        return e;
    if (auto e = checkLatency("sboxCacheLat", cfg.sboxCacheLat))
        return e;
    if (cfg.mulLat32 > cfg.mulLat64)
        return ConfigError{ConfigErrorKind::InconsistentLatency,
                           "mulLat32",
                           "32-bit multiply ("
                               + std::to_string(cfg.mulLat32)
                               + " cycles) slower than 64-bit ("
                               + std::to_string(cfg.mulLat64) + ")"};

    // --- Memory system ---
    if (auto e = checkGeometry("l1d", cfg.l1d))
        return e;
    if (auto e = checkGeometry("l2", cfg.l2))
        return e;
    if (cfg.l2HitLat > max_latency)
        return ConfigError{ConfigErrorKind::Oversized, "l2HitLat",
                           std::to_string(cfg.l2HitLat)
                               + " cycles exceeds the "
                               + std::to_string(max_latency)
                               + "-cycle cap"};
    if (cfg.memLat > max_latency)
        return ConfigError{ConfigErrorKind::Oversized, "memLat",
                           std::to_string(cfg.memLat)
                               + " cycles exceeds the "
                               + std::to_string(max_latency)
                               + "-cycle cap"};
    if (cfg.l2HitLat > cfg.memLat)
        return ConfigError{ConfigErrorKind::InconsistentLatency,
                           "l2HitLat",
                           "L2 hit (" + std::to_string(cfg.l2HitLat)
                               + " cycles) slower than memory ("
                               + std::to_string(cfg.memLat) + ")"};
    if (cfg.pageBytes == 0)
        return ConfigError{ConfigErrorKind::ZeroGeometry, "pageBytes",
                           "page size must be nonzero"};
    if (cfg.pageBytes > max_page_bytes)
        return ConfigError{ConfigErrorKind::Oversized, "pageBytes",
                           std::to_string(cfg.pageBytes)
                               + " exceeds the "
                               + std::to_string(max_page_bytes)
                               + "-byte cap"};
    if (cfg.dtlbEntries == 0)
        return ConfigError{ConfigErrorKind::ZeroGeometry, "dtlbEntries",
                           "the DTLB must have entries"};
    if (!isPow2(cfg.dtlbEntries))
        return ConfigError{ConfigErrorKind::NonPow2, "dtlbEntries",
                           std::to_string(cfg.dtlbEntries)
                               + " is not a power of two (the set index "
                                 "masks)"};
    if (cfg.dtlbEntries > max_tlb_entries)
        return ConfigError{ConfigErrorKind::Oversized, "dtlbEntries",
                           std::to_string(cfg.dtlbEntries)
                               + " exceeds the "
                               + std::to_string(max_tlb_entries)
                               + "-entry cap"};
    if (cfg.dtlbAssoc == 0)
        return ConfigError{ConfigErrorKind::ZeroGeometry, "dtlbAssoc",
                           "associativity must be nonzero"};
    if (cfg.dtlbEntries < cfg.dtlbAssoc)
        return ConfigError{ConfigErrorKind::BadGeometry, "dtlbEntries",
                           std::to_string(cfg.dtlbEntries)
                               + " entries fewer than the associativity ("
                               + std::to_string(cfg.dtlbAssoc) + ")"};
    if (cfg.dtlbEntries % cfg.dtlbAssoc != 0)
        return ConfigError{ConfigErrorKind::BadGeometry, "dtlbEntries",
                           std::to_string(cfg.dtlbEntries)
                               + " entries not a multiple of the "
                                 "associativity ("
                               + std::to_string(cfg.dtlbAssoc) + ")"};
    // The TLB backs onto a Cache sized entries*pageBytes in a 32-bit
    // field; past this cap the product overflows and the geometry
    // silently wraps.
    if (static_cast<uint64_t>(cfg.dtlbEntries) * cfg.pageBytes
        > (1u << 31))
        return ConfigError{ConfigErrorKind::Oversized, "dtlbEntries",
                           "entries * pageBytes exceeds the 2 GiB "
                           "backing-geometry cap"};
    if (cfg.dtlbMissLat > max_latency)
        return ConfigError{ConfigErrorKind::Oversized, "dtlbMissLat",
                           std::to_string(cfg.dtlbMissLat)
                               + " cycles exceeds the "
                               + std::to_string(max_latency)
                               + "-cycle cap"};
    return std::nullopt;
}

MachineConfig
canonicalizeConfig(const MachineConfig &cfg,
                   std::vector<ConfigAdjustment> *adjustments)
{
    MachineConfig out = cfg;
    auto repair = [&](const char *field, unsigned &value) {
        if (value == 0 || isPow2(value))
            return;
        unsigned to = floorPow2(value);
        warnAdjustment(field, value, to);
        if (adjustments)
            adjustments->push_back({field, value, to});
        value = to;
    };
    repair("predictorEntries", out.predictorEntries);
    repair("dtlbEntries", out.dtlbEntries);
    return out;
}

ConfigRejected::ConfigRejected(ConfigError err)
    : std::invalid_argument(err.message()), err_(std::move(err))
{
}

AuditError::AuditError(const std::string &invariant, uint64_t seq,
                       uint32_t pc, const std::string &detail)
    : std::logic_error("audit violation [" + invariant + "] at seq="
                       + std::to_string(seq) + " pc="
                       + std::to_string(pc) + ": " + detail),
      invariant_(invariant), seq_(seq), pc_(pc)
{
}

MachineConfig
hardenedConfig(const MachineConfig &cfg, ConfigPolicy policy)
{
    if (policy == ConfigPolicy::Trusted || !configValidationEnabled())
        return cfg;
    MachineConfig canon = canonicalizeConfig(cfg);
    if (auto err = validateConfig(canon))
        throw ConfigRejected(std::move(*err));
    return canon;
}

bool
configValidationEnabled()
{
    return validate_enabled.load(std::memory_order_relaxed);
}

void
setConfigValidation(bool enabled)
{
    validate_enabled.store(enabled, std::memory_order_relaxed);
}

bool
simAuditEnabled()
{
    return audit_enabled.load(std::memory_order_relaxed);
}

void
setSimAudit(bool enabled)
{
    audit_enabled.store(enabled, std::memory_order_relaxed);
}

uint64_t
progressBudgetOverride()
{
    return progress_budget.load(std::memory_order_relaxed);
}

void
setProgressBudgetOverride(uint64_t budget)
{
    progress_budget.store(budget, std::memory_order_relaxed);
}

} // namespace cryptarch::sim
