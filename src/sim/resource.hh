/**
 * @file
 * Per-cycle resource reservation used by the out-of-order scheduler.
 *
 * A CycleResource models a pool with fixed per-cycle capacity (issue
 * slots, ALUs, cache ports, multiplier half-slots). reserve() finds the
 * first cycle at or after a lower bound with spare capacity and books
 * it. Bookkeeping lives in a hash map pruned behind a monotonically
 * advancing horizon so multi-million-instruction traces stay cheap.
 */

#ifndef CRYPTARCH_SIM_RESOURCE_HH
#define CRYPTARCH_SIM_RESOURCE_HH

#include <cstdint>
#include <unordered_map>

#include "sim/config.hh"

namespace cryptarch::sim
{

/** Cycle type used throughout the timing model. */
using Cycle = uint64_t;

class CycleResource
{
  public:
    /** @param capacity units available per cycle; 0 = unlimited. */
    explicit CycleResource(unsigned capacity = 0) : cap(capacity) {}

    /**
     * Book @p units at the first cycle >= @p earliest with room and
     * return it. Unlimited resources return @p earliest unchanged.
     */
    Cycle
    reserve(Cycle earliest, unsigned units = 1)
    {
        if (cap == unlimited)
            return earliest;
        Cycle cycle = earliest;
        while (true) {
            auto &used = usage[cycle];
            if (used + units <= cap) {
                used += units;
                return cycle;
            }
            cycle++;
        }
    }

    /** True when @p units fit at @p cycle without booking them. */
    bool
    canReserve(Cycle cycle, unsigned units = 1) const
    {
        if (cap == unlimited)
            return true;
        auto it = usage.find(cycle);
        return (it == usage.end() ? 0 : it->second) + units <= cap;
    }

    /** Book @p units at @p cycle; caller checked canReserve. */
    void
    book(Cycle cycle, unsigned units = 1)
    {
        if (cap != unlimited)
            usage[cycle] += units;
    }

    /**
     * Book @p units at @p cycle if they fit, with a single table
     * lookup (canReserve+book costs two). Returns false and books
     * nothing when the cycle is full. The scheduler's joint
     * slot-and-unit reservation is built on this.
     */
    bool
    tryBook(Cycle cycle, unsigned units = 1)
    {
        if (cap == unlimited)
            return true;
        auto &used = usage[cycle];
        if (used + units > cap)
            return false;
        used += units;
        return true;
    }

    /** Undo a successful tryBook at @p cycle (joint-reservation rollback). */
    void
    unbook(Cycle cycle, unsigned units = 1)
    {
        if (cap != unlimited)
            usage[cycle] -= units;
    }

    /**
     * Drop bookkeeping for cycles below @p horizon. Callers guarantee
     * they will never reserve below the horizon again.
     */
    void
    retireBefore(Cycle horizon)
    {
        if (cap == unlimited)
            return;
        // Amortize: only sweep when the table grows.
        if (usage.size() < 4096)
            return;
        for (auto it = usage.begin(); it != usage.end();) {
            if (it->first < horizon)
                it = usage.erase(it);
            else
                ++it;
        }
    }

    bool limited() const { return cap != unlimited; }

  private:
    unsigned cap;
    std::unordered_map<Cycle, unsigned> usage;
};

} // namespace cryptarch::sim

#endif // CRYPTARCH_SIM_RESOURCE_HH
