/**
 * @file
 * Per-cycle resource reservation used by the out-of-order scheduler.
 *
 * A CycleResource models a pool with fixed per-cycle capacity (issue
 * slots, ALUs, cache ports, multiplier half-slots). reserve() finds the
 * first cycle at or after a lower bound with spare capacity and books
 * it.
 *
 * Bookkeeping is a power-of-two sliding-window ring buffer indexed by
 * `cycle & mask`: every probe, booking and rollback is one array
 * access, and nextFree() walks consecutive cells instead of paying a
 * hash lookup per losing cycle the way the original
 * std::unordered_map implementation did (kept as the differential
 * reference in tests/sim/cycle_resource_ref.hh).
 *
 * The replacement is bit-identical to that reference by construction,
 * which requires reproducing two behaviors of the map faithfully:
 *
 *  1. Entry bookkeeping. The map created an entry for every *probed*
 *     cycle (operator[] on a full cycle still inserts), and its
 *     amortization gate — "only sweep once the table holds >= 4096
 *     entries" — keys off that entry count. Each ring cell therefore
 *     carries an exists bit next to its 31-bit count, and `entries`
 *     tracks exactly what the map's size() would be.
 *
 *  2. Erase timing. retireBefore() drops bookkeeping below the
 *     horizon only when `entries` crossed the threshold, exactly like
 *     the reference. This matters because the scheduler's horizon for
 *     unlimited-window machines (the Figure 5 DF-isolation models) is
 *     not a true lower bound on future probes: probes below an erased
 *     horizon do occur there, find the count reset to zero, and that
 *     phantom capacity is part of the published per-model numbers.
 *     The ring keeps those low cells addressable (the window slides
 *     only across absent cells, and re-grows downward if a probe
 *     lands below the base), so it reproduces the reference exactly
 *     instead of only on contract-respecting callers.
 *
 * Window invariant: cells outside [base, base + size) are absent
 * (count 0, no entry), absent cells store the value 0, and every
 * existing cell lies in [minExist, hiCycle) ⊆ [base, base + size).
 * Sliding the window forward across absent cells is therefore free —
 * no zeroing pass — and the window only needs to cover the span
 * between the lowest live booking and the highest probed cycle (the
 * max in-flight latency for well-behaved callers).
 */

#ifndef CRYPTARCH_SIM_RESOURCE_HH
#define CRYPTARCH_SIM_RESOURCE_HH

#include <cstdint>
#include <vector>

#include "sim/config.hh"

namespace cryptarch::sim
{

/** Cycle type used throughout the timing model. */
using Cycle = uint64_t;

class CycleResource
{
  public:
    /** @param capacity units available per cycle; 0 = unlimited. */
    explicit CycleResource(unsigned capacity = 0) : cap(capacity) {}

    /**
     * Book @p units at the first cycle >= @p earliest with room and
     * return it. Unlimited resources return @p earliest unchanged.
     */
    Cycle
    reserve(Cycle earliest, unsigned units = 1)
    {
        if (cap == unlimited)
            return earliest;
        Cycle cycle = nextFree(earliest, units);
        bookProbed(cycle, units);
        return cycle;
    }

    /**
     * First cycle >= @p cycle with room for @p units, without booking
     * it. Every probed cycle — the winner included — is recorded as an
     * entry, exactly like the reference map's reserve loop
     * (operator[] inserts on every probe, and the erase amortization
     * keys off the entry count), so this is not const. The scan
     * terminates at the first cycle past the highest existing entry,
     * whose cell necessarily reads zero. @p units must fit the
     * capacity (the reference loop diverges otherwise too).
     */
    Cycle
    nextFree(Cycle cycle, unsigned units = 1)
    {
        if (cap == unlimited)
            return cycle;
        while (touch(cycle) + units > cap)
            ++cycle;
        return cycle;
    }

    /** True when @p units fit at @p cycle without booking them. */
    bool
    canReserve(Cycle cycle, unsigned units = 1) const
    {
        if (cap == unlimited)
            return true;
        return countAt(cycle) + units <= cap;
    }

    /** Book @p units at @p cycle; caller checked canReserve. */
    void
    book(Cycle cycle, unsigned units = 1)
    {
        if (cap == unlimited)
            return;
        touch(cycle);
        cells[cycle & mask] += units;
    }

    /**
     * Book @p units at a cycle this resource just returned from
     * nextFree(): the winning cell was touched by the scan, so the
     * entry exists and a single raw add suffices (the issueOf probe
     * loop's companion to nextFree).
     */
    void
    bookProbed(Cycle cycle, unsigned units = 1)
    {
        if (cap != unlimited)
            cells[cycle & mask] += units;
    }

    /**
     * Book @p units at @p cycle if they fit, with a single cell
     * access (canReserve+book costs two). Returns false and books
     * nothing when the cycle is full. The scheduler's joint
     * slot-and-unit reservation is built on this.
     */
    bool
    tryBook(Cycle cycle, unsigned units = 1)
    {
        if (cap == unlimited)
            return true;
        if (touch(cycle) + units > cap)
            return false;
        cells[cycle & mask] += units;
        return true;
    }

    /**
     * Undo a successful tryBook at @p cycle (joint-reservation
     * rollback). Only valid immediately after that tryBook — the cell
     * must still be inside the window.
     */
    void
    unbook(Cycle cycle, unsigned units = 1)
    {
        if (cap != unlimited)
            cells[cycle & mask] -= units;
    }

    /**
     * Drop bookkeeping for cycles below @p horizon. Matches the
     * reference map exactly: the sweep only runs once the structure
     * holds >= 4096 entries (and is skipped outright when the minimum
     * existing entry is already at or above the horizon — the
     * watermark the reference implementation also applies).
     */
    void
    retireBefore(Cycle horizon)
    {
        if (cap == unlimited || entries < prune_threshold)
            return;
        if (minExist >= horizon)
            return;
        Cycle end = horizon < hiCycle ? horizon : hiCycle;
        // The swept cycles are contiguous ring positions (modulo at
        // most one wrap), so sweep them as raw spans — the count-and-
        // zero loop then vectorizes instead of paying a mask and a
        // branch per cycle.
        size_t removed = 0;
        Cycle c = minExist;
        while (c < end) {
            size_t pos = c & mask;
            size_t span = cells.size() - pos;
            if (end - c < span)
                span = end - c;
            uint32_t *cell = cells.data() + pos;
            for (size_t i = 0; i < span; i++) {
                removed += cell[i] != 0;
                cell[i] = 0;
            }
            c += span;
        }
        entries -= removed;
        minExist = horizon;
    }

    bool limited() const { return cap != unlimited; }

    /** Per-cycle capacity (0 = unlimited). */
    unsigned capacity() const { return cap; }

    /**
     * Units currently booked at @p cycle, without creating an entry.
     * The invariant auditor checks bookings never exceed capacity;
     * the scheduler itself never needs this read-only probe.
     */
    unsigned bookedAt(Cycle cycle) const { return countAt(cycle); }

    /** Number of live entries (the reference map's size()). */
    size_t entryCount() const { return entries; }

  private:
    static constexpr uint32_t exists_bit = 0x80000000u;
    static constexpr uint32_t count_mask = exists_bit - 1;
    /** First-allocation window size. Sized so that a scheduler-paced
     *  resource (one entry per cycle, swept every prune_threshold
     *  entries plus the in-flight overshoot) almost never regrows:
     *  warm-up rebuilds otherwise show up in replay profiles. */
    static constexpr size_t initial_cells = 16384;
    /** Entry-count gate before retireBefore sweeps — the reference
     *  map's amortization threshold, load-bearing for erase timing. */
    static constexpr size_t prune_threshold = 4096;

    /** Count at @p cycle without creating an entry (map::find). */
    unsigned
    countAt(Cycle cycle) const
    {
        // One compare covers below-window too: cycle < base wraps the
        // unsigned difference past any vector size. Empty cells give
        // size 0, so everything is out of window.
        if (cycle - base >= cells.size())
            return 0;
        return cells[cycle & mask] & count_mask;
    }

    /**
     * Ensure @p cycle has a cell inside the window, mark it existing
     * (map::operator[]), and return its current count.
     */
    unsigned
    touch(Cycle cycle)
    {
        // Single window check (see countAt): below-base wraps, empty
        // cells have size 0 — both land in reshape.
        if (cycle - base >= cells.size())
            reshape(cycle);
        uint32_t &v = cells[cycle & mask];
        if (!(v & exists_bit)) {
            v = exists_bit;
            if (entries == 0 || cycle < minExist)
                minExist = cycle;
            ++entries;
            if (cycle >= hiCycle)
                hiCycle = cycle + 1;
        }
        return v & count_mask;
    }

    /** Slide or grow the window so @p cycle becomes addressable. */
    void
    reshape(Cycle cycle)
    {
        if (cells.empty()) {
            cells.assign(initial_cells, 0);
            mask = cells.size() - 1;
            base = cycle;
            hiCycle = cycle;
            minExist = cycle;
            return;
        }
        // Live cells occupy [lo, hiCycle); everything else stores 0.
        Cycle lo = entries ? minExist : hiCycle;
        if (cycle < base) {
            // Probe below the window (an unlimited-window model
            // re-probing cycles the horizon already passed). A cell's
            // ring position is cycle & mask — independent of base —
            // so when the live span still fits a window starting at
            // the probe, sliding the base down is free: cells below
            // the old base are absent (store 0) and no cell leaves
            // the new window's top.
            if (hiCycle - cycle <= cells.size()) {
                base = cycle;
                return;
            }
            // Otherwise re-grow so probe and live span fit together.
            rebuild(cycle, lo, cycle);
            return;
        }
        // Slide forward across absent cells — they already store 0,
        // so advancing the base costs nothing.
        Cycle needBase = cycle - cells.size() + 1;
        if (needBase <= lo) {
            base = needBase;
            return;
        }
        // The live span itself no longer fits: grow.
        rebuild(lo, lo, cycle);
    }

    /** Reallocate so the window starts at @p newBase and covers both
     *  every live cell in [@p lo, hiCycle) and @p probe. */
    void
    rebuild(Cycle newBase, Cycle lo, Cycle probe)
    {
        Cycle top = hiCycle > probe + 1 ? hiCycle : probe + 1;
        Cycle span = top - newBase;
        size_t newSize = cells.size();
        while (newSize < span)
            newSize *= 2;
        std::vector<uint32_t> next(newSize, 0);
        size_t newMask = newSize - 1;
        for (Cycle c = lo; c < hiCycle; ++c)
            next[c & newMask] = cells[c & mask];
        cells.swap(next);
        mask = newMask;
        base = newBase;
    }

    unsigned cap;
    std::vector<uint32_t> cells; ///< exists_bit | 31-bit unit count
    size_t mask = 0;
    Cycle base = 0;    ///< cycle addressed by window start
    Cycle hiCycle = 0; ///< one past the highest existing cell
    Cycle minExist = 0; ///< lower bound on the lowest existing cell
    size_t entries = 0; ///< live entry count (reference map size())
};

} // namespace cryptarch::sim

#endif // CRYPTARCH_SIM_RESOURCE_HH
