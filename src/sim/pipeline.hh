/**
 * @file
 * The out-of-order timing scheduler.
 *
 * OooScheduler consumes the dynamic instruction stream from the
 * functional Machine (it is an isa::TraceSink) and computes, for each
 * instruction, the cycle at which it fetches, dispatches, issues,
 * completes and retires under the configured microarchitecture — the
 * same dependence-and-resource-driven modeling sim-outorder performs,
 * expressed as an online scheduling recurrence:
 *
 *   fetch    <- fetch bandwidth, taken-branch block limits,
 *               branch-misprediction redirects
 *   dispatch <- fetch + frontend depth, window occupancy (the
 *               instruction windowSize earlier must have retired)
 *   ready    <- operand readiness, load/store alias ordering,
 *               SBOXSYNC visibility
 *   issue    <- first cycle >= ready with an issue slot AND a free
 *               functional unit (ALU, rotator/XBOX, multiplier
 *               half-slots, D-cache port or SBox cache port)
 *   complete <- issue + operation latency (+ memory hierarchy extra)
 *   retire   <- in order, retire-width per cycle
 *
 * All constraints can be disabled individually (capacity 0 = unlimited,
 * perfect flags), which yields the paper's DF machine and the Figure 5
 * single-bottleneck models.
 */

#ifndef CRYPTARCH_SIM_PIPELINE_HH
#define CRYPTARCH_SIM_PIPELINE_HH

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "isa/machine.hh"
#include "sim/branch_pred.hh"
#include "sim/cache.hh"
#include "sim/config.hh"
#include "sim/resource.hh"
#include "sim/stall.hh"
#include "sim/validate.hh"

namespace cryptarch::sim
{

/** Timing results of one simulated run. */
struct SimStats
{
    std::string model;
    uint64_t instructions = 0;
    Cycle cycles = 0;

    uint64_t condBranches = 0;
    uint64_t mispredicts = 0;
    uint64_t loads = 0;
    uint64_t stores = 0;
    uint64_t sboxAccesses = 0;   ///< non-aliased SBOX reads
    uint64_t sboxCacheHits = 0;  ///< SBox sector-cache hits (4W+/8W+)
    /** SBox sector-cache accesses/misses summed over all caches, so
     *  hit rates are computable from the report alone. */
    uint64_t sboxCacheAccesses = 0;
    uint64_t sboxCacheMisses = 0;
    /** Per-SBox-cache access/miss totals (empty without SBox caches). */
    std::vector<CacheStats> sboxCaches;

    CacheStats l1;
    CacheStats l2;
    CacheStats tlb;

    /** Dynamic instruction count per functional-unit class. */
    std::array<uint64_t, isa::num_op_classes> classCounts{};

    /** Cycles instructions spent stalled, by cause (sim/stall.hh). */
    StallVector stallCycles{};
    /** The same cycles, broken down by the stalling OpClass. */
    std::array<StallVector, isa::num_op_classes> stallByClass{};

    double
    ipc() const
    {
        return cycles ? static_cast<double>(instructions) / cycles : 0.0;
    }

    /** Total attributed stall cycles, every cause. */
    uint64_t
    totalStallCycles() const
    {
        uint64_t sum = 0;
        for (uint64_t v : stallCycles)
            sum += v;
        return sum;
    }
};

/**
 * Pipeline timeline sample for one instruction — the data behind a
 * SimpleView-style stall visualization (the paper's methodology for
 * locating cipher bottlenecks).
 */
struct TimelineEntry
{
    uint64_t seq = 0;
    uint32_t pc = 0;
    isa::Opcode op = isa::Opcode::Halt;
    Cycle fetch = 0;
    Cycle dispatch = 0;
    Cycle ready = 0;
    Cycle issue = 0;
    Cycle complete = 0;
    Cycle retire = 0;
    /**
     * Per-cause stall cycles of this instruction. The causes other
     * than WindowFull/FetchRedirect sum exactly to (issue - dispatch);
     * WindowFull and FetchRedirect are dispatch delays charged only
     * beyond every other readiness constraint and only at the in-order
     * dispatch frontier, so frontend run-ahead is never counted as a
     * machine stall (see DESIGN.md on stall accounting).
     */
    StallVector stall{};
};

/** Trace-driven out-of-order core model. `final` lets the replay hot
 *  loop devirtualize emit() when feeding a concrete scheduler. */
class OooScheduler final : public isa::TraceSink
{
  public:
    /**
     * Construct for @p config. Under the default policy the config is
     * canonicalized (validate.hh) and rejected with a typed
     * ConfigRejected when invalid; ConfigPolicy::Trusted skips the
     * admission layer (tests probing raw degenerate behavior).
     *
     * Even trusted schedulers keep the forward-progress watchdog: an
     * issue retry loop that exceeds its budget (auto-scaled from the
     * window size and latency chain, base overridable via
     * CRYPTARCH_SIM_PROGRESS_BUDGET) throws a typed
     * isa::Trap{NoProgress} carrying the stalled-frontier snapshot
     * instead of spinning forever.
     */
    explicit OooScheduler(const MachineConfig &config,
                          ConfigPolicy policy = ConfigPolicy::Validate);

    void emit(const isa::DynInst &inst) override;

    /** Final statistics; call after the trace is fully emitted. */
    SimStats finish();

    /**
     * Record the pipeline timeline of dynamic instructions
     * [@p first, @p first + @p count) for later visualization.
     */
    void
    recordTimeline(uint64_t first, uint64_t count)
    {
        timelineFirst = first;
        timelineCount = count;
        // Reserve the full window up front so a pipeline_view run
        // never regrows the timeline mid-emit (allocation jitter would
        // sit right on the simulated hot path it is visualizing).
        // Callers may pass a huge count as a "rest of the run"
        // sentinel, so cap the eager reservation at 1M entries; longer
        // windows fall back to amortized growth past that point.
        timeline.reserve(count < (1u << 20) ? count : (1u << 20));
    }

    const std::vector<TimelineEntry> &timelineEntries() const
    {
        return timeline;
    }

  private:
    Cycle fetchOf(const isa::DynInst &inst);
    /**
     * Schedule @p inst at the first cycle >= @p ready with an issue
     * slot and a free functional unit. Returns the issue cycle and
     * sets @p lat to the operation latency and @p memExtra to the
     * memory-hierarchy portion of it (cycles beyond a hit). Every
     * probed cycle that loses the joint reservation race is charged
     * to the losing constraint in @p stall, with the cause's bit set
     * in @p touched (emit()'s accumulation pass walks only those).
     */
    Cycle issueOf(const isa::DynInst &inst, Cycle ready, unsigned &lat,
                  unsigned &memExtra, StallVector &stall,
                  unsigned &touched);
    /** Single prune entry point: drop bookkeeping below @p horizon in
     *  every per-cycle resource, the SBox-cache ports included. */
    void pruneResources(Cycle horizon);
    /** Forward-progress watchdog trip: build and throw the typed
     *  isa::Trap{NoProgress} with the stalled-frontier snapshot. */
    [[noreturn]] void throwNoProgress(const isa::DynInst &inst,
                                      Cycle ready, Cycle probed,
                                      StallCause fuCause,
                                      uint64_t slotWait,
                                      uint64_t fuWait) const;
    /** CRYPTARCH_SIM_AUDIT invariant checks on one retired
     *  instruction; throws AuditError on the first violation. */
    void auditRetired(const isa::DynInst &inst, Cycle fetch,
                      Cycle dispatch, Cycle ready, Cycle issue,
                      Cycle complete, Cycle retire,
                      const StallVector &stall) const;

    MachineConfig cfg;
    SimStats stats;

    // Hardening state: the watchdog's base FU-retry budget (the
    // per-instruction allowance grows with instIndex, see issueOf) and
    // whether the per-retired-instruction invariant auditor runs.
    uint64_t progressBudgetBase = 0;
    bool auditing = false;

    // Register scoreboard: completion cycle of the latest writer.
    std::array<Cycle, isa::num_regs> regReady{};
    // Memory-hierarchy extra cycles inside the latest writer's latency
    // (for attributing operand waits to MemLatency vs. Operand).
    std::array<unsigned, isa::num_regs> regMemExtra{};

    // Frontend state.
    Cycle fetchCycle = 0;
    unsigned fetchedThisCycle = 0;
    unsigned blocksThisCycle = 0;
    bool nextCycleFetch = false;
    // Fetch delay from the latest misprediction redirect, charged to
    // the next instruction that fetches.
    Cycle pendingRedirectStall = 0;

    // Memory ordering.
    Cycle storeAddrFrontier = 0; ///< latest known store address-resolve
    Cycle storeDataFrontier = 0; ///< latest store completion
    Cycle syncFrontier = 0;      ///< last SBOXSYNC completion

    // Resources.
    CycleResource issueSlots;
    CycleResource retireSlots;
    CycleResource aluUnits;
    CycleResource rotUnits;
    CycleResource mulSlots;
    CycleResource dcachePorts;
    std::vector<CycleResource> sboxPorts;
    // sboxCaches.size()-1 when that is a power of two: table-to-cache
    // selection by mask instead of a modulo per SBOX read.
    unsigned sboxIndexMask = 0;

    // Window occupancy ring: retire cycle of instruction i - windowSize.
    std::vector<Cycle> retireRing;
    uint64_t instIndex = 0;
    // Cursor into retireRing == instIndex % windowSize, maintained
    // incrementally (a modulo per emitted instruction is measurable).
    size_t ringPos = 0;
    Cycle lastRetire = 0;
    Cycle maxComplete = 0;
    // Dispatch frontier (dispatch is in order): used to charge each
    // window-stalled dispatch cycle to exactly one instruction.
    Cycle lastDispatch = 0;

    BranchPredictor predictor;
    MemoryHierarchy memory;
    std::vector<SboxCache> sboxCaches;

    uint64_t timelineFirst = 0;
    uint64_t timelineCount = 0;
    std::vector<TimelineEntry> timeline;
};

/**
 * Convenience wrapper: functionally execute @p program on @p machine
 * while timing it on @p config. @p policy is the scheduler's config
 * admission policy (see OooScheduler).
 */
SimStats simulate(isa::Machine &machine, const isa::Program &program,
                  const MachineConfig &config,
                  uint64_t max_insts = 1ull << 32,
                  ConfigPolicy policy = ConfigPolicy::Validate);

} // namespace cryptarch::sim

#endif // CRYPTARCH_SIM_PIPELINE_HH
