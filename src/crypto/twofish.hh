/**
 * @file
 * Twofish block cipher (Schneier et al., AES finalist).
 *
 * Twofish is the paper's running example (its kernel opens section 2):
 * 16 Feistel-ish rounds mixing key-dependent S-box lookups (the g
 * function), the pseudo-Hadamard transform, modular adds and 1-bit
 * rotates. The "full keying" software option precomputes four
 * 256x32-bit tables combining the S-box chain with the MDS matrix, so
 * the round kernel is eight table lookups plus arithmetic — exactly the
 * shape the SBOX instruction accelerates.
 */

#ifndef CRYPTARCH_CRYPTO_TWOFISH_HH
#define CRYPTARCH_CRYPTO_TWOFISH_HH

#include <array>
#include <cstdint>

#include "crypto/cipher.hh"

namespace cryptarch::crypto
{

/** Twofish-128: 16 rounds, 128-bit key. */
class Twofish : public BlockCipher
{
  public:
    static constexpr int rounds = 16;

    const CipherInfo &info() const override;
    void setKey(std::span<const uint8_t> key) override;
    void encryptBlock(const uint8_t *in, uint8_t *out) const override;
    void decryptBlock(const uint8_t *in, uint8_t *out) const override;
    uint64_t setupOpEstimate() const override;

    /** The 40 expanded subkeys (whitening + rounds). */
    const std::array<uint32_t, 40> &subkeys() const { return k; }

    /**
     * Full-keying tables: g(X) = t[0][b0] ^ t[1][b1] ^ t[2][b2]
     * ^ t[3][b3]. These are what the CryptISA kernel indexes with SBOX
     * instructions.
     */
    const std::array<std::array<uint32_t, 256>, 4> &gTables() const
    {
        return gt;
    }

    /** The fixed q0 byte permutation (for tests). */
    static const std::array<uint8_t, 256> &q0();
    /** The fixed q1 byte permutation (for tests). */
    static const std::array<uint8_t, 256> &q1();

  private:
    uint32_t g(uint32_t x) const;

    std::array<uint32_t, 40> k{};
    std::array<std::array<uint32_t, 256>, 4> gt{};
};

} // namespace cryptarch::crypto

#endif // CRYPTARCH_CRYPTO_TWOFISH_HH
