#include "crypto/mars.hh"

#include <stdexcept>

#include "util/bitops.hh"
#include "util/xorshift.hh"

namespace cryptarch::crypto
{

using util::load32le;
using util::rotl32;
using util::rotr32;
using util::store32le;

namespace
{

/** Fixed words XOR'ed into the multiplicative-key fixing step. */
constexpr uint32_t b_table[4] = {
    0xA4A8D57B, 0x5B5D193B, 0xC8A8309B, 0x73F9A978,
};

/**
 * Mask of bits eligible for fixing in a multiplicative key: bit l is
 * set iff 2 <= l <= 30, its neighbours equal it, and it lies inside a
 * run of at least ten consecutive equal bits.
 */
uint32_t
fixingMask(uint32_t w)
{
    uint32_t mask = 0;
    int run_start = 0;
    auto bit = [&](int i) { return (w >> i) & 1; };
    for (int i = 1; i <= 32; i++) {
        if (i == 32 || bit(i) != bit(run_start)) {
            int run_len = i - run_start;
            if (run_len >= 10) {
                for (int l = run_start; l < i; l++) {
                    if (l >= 2 && l <= 30 && l > run_start
                        && l < i - 1) {
                        mask |= 1u << l;
                    }
                }
            }
            run_start = i;
        }
    }
    return mask;
}

} // namespace

const std::array<uint32_t, 512> &
Mars::sbox()
{
    // Substituted table (see file header): deterministic, full-period
    // pseudo-random words. The generation seed is fixed so ciphertext
    // is stable across builds and the CryptISA kernel sees identical
    // table contents.
    static const auto table = [] {
        std::array<uint32_t, 512> s{};
        util::Xorshift64 rng(0x4D41525353424F58ull); // "MARSSBOX"
        for (auto &w : s)
            w = rng.next32();
        return s;
    }();
    return table;
}

void
Mars::eFunction(uint32_t in, uint32_t k_add, uint32_t k_mul, uint32_t &l,
                uint32_t &m, uint32_t &r)
{
    const auto &s = sbox();
    m = in + k_add;
    r = rotl32(in, 13) * k_mul;
    l = s[m & 0x1FF];
    r = rotl32(r, 5);
    m = rotl32(m, r & 31);
    l ^= r;
    r = rotl32(r, 5);
    l ^= r;
    l = rotl32(l, r & 31);
}

const CipherInfo &
Mars::info() const
{
    return cipherInfo(CipherId::MARS);
}

void
Mars::setKey(std::span<const uint8_t> key)
{
    if (key.size() != 16)
        throw std::invalid_argument("Mars: key must be 16 bytes");

    const auto &s = sbox();

    // Linear fill, then four generations of stirring and extraction.
    std::array<uint32_t, 15> t{};
    for (int i = 0; i < 4; i++)
        t[i] = load32le(key.data() + 4 * i);
    t[4] = 4; // key length in words

    for (int gen = 0; gen < 4; gen++) {
        for (int i = 0; i < 15; i++) {
            t[i] ^= rotl32(t[(i + 8) % 15] ^ t[(i + 13) % 15], 3)
                ^ static_cast<uint32_t>(4 * i + gen);
        }
        for (int pass = 0; pass < 4; pass++) {
            for (int i = 0; i < 15; i++)
                t[i] = rotl32(t[i] + s[t[(i + 14) % 15] & 0x1FF], 9);
        }
        for (int i = 0; i < 10; i++)
            k[10 * gen + i] = t[(4 * i) % 15];
    }

    // Fix the multiplicative keys (used by the E-function's 32-bit
    // multiply, indices 5, 7, ..., 35): force the two low bits to 2|3
    // and break up long runs of equal bits that weaken the multiply.
    for (int i = 5; i <= 35; i += 2) {
        uint32_t j = k[i] & 3;
        uint32_t w = k[i] | 3;
        uint32_t mask = fixingMask(w);
        uint32_t rot = k[i - 1] & 31;
        uint32_t p = rotl32(b_table[j], rot);
        k[i] = w ^ (p & mask);
    }
}

void
Mars::encryptBlock(const uint8_t *in, uint8_t *out) const
{
    const auto &s = sbox();
    const uint32_t *s0 = s.data();       // S0: first 256 words
    const uint32_t *s1 = s.data() + 256; // S1: second 256 words

    uint32_t d[4];
    for (int i = 0; i < 4; i++)
        d[i] = load32le(in + 4 * i) + k[i];

    // Forward mixing: 8 unkeyed rounds of S-box mixing.
    for (int i = 0; i < 8; i++) {
        d[1] ^= s0[d[0] & 0xFF];
        d[1] += s1[(d[0] >> 8) & 0xFF];
        d[2] += s0[(d[0] >> 16) & 0xFF];
        d[3] ^= s1[(d[0] >> 24) & 0xFF];
        d[0] = rotr32(d[0], 24);
        if (i == 0 || i == 4)
            d[0] += d[3];
        if (i == 1 || i == 5)
            d[0] += d[1];
        uint32_t first = d[0];
        d[0] = d[1];
        d[1] = d[2];
        d[2] = d[3];
        d[3] = first;
    }

    // Cryptographic core: 8 rounds of forward mode, 8 of backwards.
    for (int i = 0; i < 16; i++) {
        uint32_t l, m, r;
        eFunction(d[0], k[2 * i + 4], k[2 * i + 5], l, m, r);
        d[0] = rotl32(d[0], 13);
        d[2] += m;
        if (i < 8) {
            d[1] += l;
            d[3] ^= r;
        } else {
            d[3] += l;
            d[1] ^= r;
        }
        uint32_t first = d[0];
        d[0] = d[1];
        d[1] = d[2];
        d[2] = d[3];
        d[3] = first;
    }

    // Backwards mixing: 8 unkeyed rounds undoing the mixing bias.
    for (int i = 0; i < 8; i++) {
        if (i == 2 || i == 6)
            d[0] -= d[3];
        if (i == 3 || i == 7)
            d[0] -= d[1];
        d[1] ^= s1[d[0] & 0xFF];
        d[2] -= s0[(d[0] >> 24) & 0xFF];
        d[3] -= s1[(d[0] >> 16) & 0xFF];
        d[3] ^= s0[(d[0] >> 8) & 0xFF];
        d[0] = rotl32(d[0], 24);
        uint32_t first = d[0];
        d[0] = d[1];
        d[1] = d[2];
        d[2] = d[3];
        d[3] = first;
    }

    for (int i = 0; i < 4; i++)
        store32le(out + 4 * i, d[i] - k[36 + i]);
}

void
Mars::decryptBlock(const uint8_t *in, uint8_t *out) const
{
    const auto &s = sbox();
    const uint32_t *s0 = s.data();
    const uint32_t *s1 = s.data() + 256;

    uint32_t d[4];
    for (int i = 0; i < 4; i++)
        d[i] = load32le(in + 4 * i) + k[36 + i];

    // Invert the backwards mixing (run its rounds in reverse).
    for (int i = 7; i >= 0; i--) {
        uint32_t last = d[3];
        d[3] = d[2];
        d[2] = d[1];
        d[1] = d[0];
        d[0] = last;
        d[0] = rotr32(d[0], 24);
        d[3] ^= s0[(d[0] >> 8) & 0xFF];
        d[3] += s1[(d[0] >> 16) & 0xFF];
        d[2] += s0[(d[0] >> 24) & 0xFF];
        d[1] ^= s1[d[0] & 0xFF];
        if (i == 3 || i == 7)
            d[0] += d[1];
        if (i == 2 || i == 6)
            d[0] += d[3];
    }

    // Invert the core.
    for (int i = 15; i >= 0; i--) {
        uint32_t last = d[3];
        d[3] = d[2];
        d[2] = d[1];
        d[1] = d[0];
        d[0] = last;
        d[0] = rotr32(d[0], 13);
        uint32_t l, m, r;
        eFunction(d[0], k[2 * i + 4], k[2 * i + 5], l, m, r);
        d[2] -= m;
        if (i < 8) {
            d[1] -= l;
            d[3] ^= r;
        } else {
            d[3] -= l;
            d[1] ^= r;
        }
    }

    // Invert the forward mixing.
    for (int i = 7; i >= 0; i--) {
        uint32_t last = d[3];
        d[3] = d[2];
        d[2] = d[1];
        d[1] = d[0];
        d[0] = last;
        if (i == 1 || i == 5)
            d[0] -= d[1];
        if (i == 0 || i == 4)
            d[0] -= d[3];
        d[0] = rotl32(d[0], 24);
        d[3] ^= s1[(d[0] >> 24) & 0xFF];
        d[2] -= s0[(d[0] >> 16) & 0xFF];
        d[1] -= s1[(d[0] >> 8) & 0xFF];
        d[1] ^= s0[d[0] & 0xFF];
    }

    for (int i = 0; i < 4; i++)
        store32le(out + 4 * i, d[i] - k[i]);
}

uint64_t
Mars::setupOpEstimate() const
{
    // Four generations of: a 15-word linear stir (~8 instructions per
    // word), four 15-word S-box stirring passes (~9 each), and key
    // extraction; plus 16 multiplicative-key fixups (~40 each).
    return 4 * (15 * 8 + 4 * 15 * 9 + 10 * 2) + 16 * 40;
}

} // namespace cryptarch::crypto
