#include "crypto/modes.hh"

#include <stdexcept>

#include "util/bitops.hh"

namespace cryptarch::crypto
{

void
EcbEncryptor::encrypt(std::span<const uint8_t> in, std::span<uint8_t> out)
{
    const size_t bs = cipher.info().blockBytes;
    if (in.size() % bs != 0 || out.size() < in.size())
        throw std::invalid_argument("EcbEncryptor: bad buffer size");
    for (size_t off = 0; off < in.size(); off += bs)
        cipher.encryptBlock(in.data() + off, out.data() + off);
}

std::vector<uint8_t>
EcbEncryptor::encrypt(std::span<const uint8_t> in)
{
    std::vector<uint8_t> out(in.size());
    encrypt(in, out);
    return out;
}

void
EcbDecryptor::decrypt(std::span<const uint8_t> in, std::span<uint8_t> out)
{
    const size_t bs = cipher.info().blockBytes;
    if (in.size() % bs != 0 || out.size() < in.size())
        throw std::invalid_argument("EcbDecryptor: bad buffer size");
    for (size_t off = 0; off < in.size(); off += bs)
        cipher.decryptBlock(in.data() + off, out.data() + off);
}

std::vector<uint8_t>
EcbDecryptor::decrypt(std::span<const uint8_t> in)
{
    std::vector<uint8_t> out(in.size());
    decrypt(in, out);
    return out;
}

CtrCipher::CtrCipher(const BlockCipher &cipher,
                     std::span<const uint8_t> nonce)
    : cipher(cipher)
{
    const size_t bs = cipher.info().blockBytes;
    if (bs < 8)
        throw std::invalid_argument(
            "CtrCipher: block too small for a 4-byte counter");
    if (nonce.size() != bs - 4)
        throw std::invalid_argument(
            "CtrCipher: nonce must be blockBytes - 4 bytes");
    counterBlock.assign(nonce.begin(), nonce.end());
    counterBlock.resize(bs, 0);
    keystream.resize(bs);
    used = keystream.size(); // force refill on first use
}

void
CtrCipher::refill()
{
    const size_t bs = cipher.info().blockBytes;
    util::store32be(counterBlock.data() + bs - 4, counter);
    counter++;
    cipher.encryptBlock(counterBlock.data(), keystream.data());
    used = 0;
}

void
CtrCipher::process(const uint8_t *in, uint8_t *out, size_t n)
{
    for (size_t i = 0; i < n; i++) {
        if (used == keystream.size())
            refill();
        out[i] = in[i] ^ keystream[used++];
    }
}

std::vector<uint8_t>
CtrCipher::process(std::span<const uint8_t> in)
{
    std::vector<uint8_t> out(in.size());
    process(in.data(), out.data(), in.size());
    return out;
}

} // namespace cryptarch::crypto
