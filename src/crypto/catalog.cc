/**
 * @file
 * Cipher catalog (paper Table 1) and factory functions.
 */

#include <stdexcept>

#include "crypto/blowfish.hh"
#include "crypto/cipher.hh"
#include "crypto/des.hh"
#include "crypto/idea.hh"
#include "crypto/mars.hh"
#include "crypto/rc4.hh"
#include "crypto/rc6.hh"
#include "crypto/rijndael.hh"
#include "crypto/twofish.hh"

namespace cryptarch::crypto
{

const std::vector<CipherInfo> &
cipherCatalog()
{
    // Key size, block size, and rounds per block reproduce Table 1.
    // 3DES: three 56-bit keys plus parity storage (the paper lists 186
    // bits, i.e. 3 x 62 significant stored bits under SSL's encoding);
    // we carry the conventional 168-bit EDE3 keying in 24 bytes.
    static const std::vector<CipherInfo> catalog = {
        {CipherId::TripleDES, "3DES", 192, 8, 48, "CryptSoft",
         "SSL, SSH", false},
        {CipherId::Blowfish, "Blowfish", 128, 8, 16, "CryptSoft",
         "Norton Utilities", false},
        {CipherId::IDEA, "IDEA", 128, 8, 8, "Ascom", "PGP, SSH", false},
        {CipherId::MARS, "Mars", 128, 16, 16, "IBM", "AES Candidate",
         false},
        {CipherId::RC4, "RC4", 128, 1, 1, "CryptSoft", "SSL", true},
        {CipherId::RC6, "RC6", 128, 16, 18, "RSA Security",
         "AES Candidate", false},
        {CipherId::Rijndael, "Rijndael", 128, 16, 10, "Rijmen",
         "AES Candidate", false},
        {CipherId::Twofish, "Twofish", 128, 16, 16, "Counterpane",
         "AES Candidate", false},
    };
    return catalog;
}

const CipherInfo &
cipherInfo(CipherId id)
{
    for (const auto &info : cipherCatalog()) {
        if (info.id == id)
            return info;
    }
    throw std::invalid_argument("cipherInfo: unknown cipher id");
}

std::unique_ptr<BlockCipher>
makeBlockCipher(CipherId id)
{
    switch (id) {
      case CipherId::TripleDES:
        return std::make_unique<TripleDes>();
      case CipherId::Blowfish:
        return std::make_unique<Blowfish>();
      case CipherId::IDEA:
        return std::make_unique<Idea>();
      case CipherId::MARS:
        return std::make_unique<Mars>();
      case CipherId::RC6:
        return std::make_unique<Rc6>();
      case CipherId::Rijndael:
        return std::make_unique<Rijndael>();
      case CipherId::Twofish:
        return std::make_unique<Twofish>();
      case CipherId::RC4:
        throw std::invalid_argument(
            "makeBlockCipher: RC4 is a stream cipher");
    }
    throw std::invalid_argument("makeBlockCipher: unknown cipher id");
}

std::unique_ptr<StreamCipher>
makeStreamCipher(CipherId id)
{
    if (id != CipherId::RC4)
        throw std::invalid_argument(
            "makeStreamCipher: only RC4 is a stream cipher");
    return std::make_unique<Rc4>();
}

} // namespace cryptarch::crypto
