/**
 * @file
 * Additional block-cipher modes: ECB and CTR.
 *
 * The paper runs everything in CBC ("nearly all applications use CBC
 * mode"), which src/crypto/cbc.hh provides. ECB and CTR round out the
 * library for downstream users: ECB is the raw per-block codebook
 * (useful for key-schedule tests and as the paper's implicit mode for
 * kernel microbenchmarks), and CTR turns any block cipher into a
 * stream cipher whose blocks are independent — the parallelism
 * contrast the paper draws against CBC's serial recurrence.
 */

#ifndef CRYPTARCH_CRYPTO_MODES_HH
#define CRYPTARCH_CRYPTO_MODES_HH

#include <cstdint>
#include <span>
#include <vector>

#include "crypto/cipher.hh"

namespace cryptarch::crypto
{

/** Electronic-codebook mode: independent per-block encryption. */
class EcbEncryptor
{
  public:
    explicit EcbEncryptor(const BlockCipher &cipher) : cipher(cipher) {}

    /** Encrypt a whole number of blocks. */
    void encrypt(std::span<const uint8_t> in, std::span<uint8_t> out);
    std::vector<uint8_t> encrypt(std::span<const uint8_t> in);

  private:
    const BlockCipher &cipher;
};

/** Electronic-codebook mode decryptor. */
class EcbDecryptor
{
  public:
    explicit EcbDecryptor(const BlockCipher &cipher) : cipher(cipher) {}

    void decrypt(std::span<const uint8_t> in, std::span<uint8_t> out);
    std::vector<uint8_t> decrypt(std::span<const uint8_t> in);

  private:
    const BlockCipher &cipher;
};

/**
 * Counter mode: XOR the input with E(nonce || counter). Encryption and
 * decryption coincide; partial trailing blocks are supported. The
 * counter occupies the last 4 bytes of the block, big-endian, starting
 * at 0 and incremented per block; the nonce fills the leading bytes.
 */
class CtrCipher
{
  public:
    /** @p nonce must be blockBytes - 4 bytes long. */
    CtrCipher(const BlockCipher &cipher, std::span<const uint8_t> nonce);

    /** XOR the keystream onto @p n bytes (stateful across calls). */
    void process(const uint8_t *in, uint8_t *out, size_t n);

    std::vector<uint8_t> process(std::span<const uint8_t> in);

  private:
    void refill();

    const BlockCipher &cipher;
    std::vector<uint8_t> counterBlock;
    std::vector<uint8_t> keystream;
    size_t used = 0;      ///< consumed bytes of the current keystream
    uint32_t counter = 0; ///< next block counter value
};

} // namespace cryptarch::crypto

#endif // CRYPTARCH_CRYPTO_MODES_HH
