/**
 * @file
 * RC6 block cipher (Rivest et al., AES finalist).
 *
 * RC6 is one of the paper's "computational" ciphers: diffusion comes
 * from the quadratic function x*(2x+1) — a 32-bit multiply with an
 * early-out after 4 cycles on the modeled machines — followed by
 * data-dependent rotates. It is the cipher that benefits most purely
 * from hardware rotate support (24% slowdown without rotates).
 */

#ifndef CRYPTARCH_CRYPTO_RC6_HH
#define CRYPTARCH_CRYPTO_RC6_HH

#include <array>
#include <cstdint>

#include "crypto/cipher.hh"

namespace cryptarch::crypto
{

/** RC6-32/20/16: 32-bit words, 20 rounds, 128-bit key. */
class Rc6 : public BlockCipher
{
  public:
    static constexpr int rounds = 20;

    const CipherInfo &info() const override;
    void setKey(std::span<const uint8_t> key) override;
    void encryptBlock(const uint8_t *in, uint8_t *out) const override;
    void decryptBlock(const uint8_t *in, uint8_t *out) const override;
    uint64_t setupOpEstimate() const override;

    /** The 2*rounds+4 expanded round keys, for the CryptISA kernel. */
    const std::array<uint32_t, 2 * rounds + 4> &roundKeys() const
    {
        return s;
    }

  private:
    std::array<uint32_t, 2 * rounds + 4> s{};
};

} // namespace cryptarch::crypto

#endif // CRYPTARCH_CRYPTO_RC6_HH
