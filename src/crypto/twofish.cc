#include "crypto/twofish.hh"

#include <stdexcept>

#include "util/bitops.hh"

namespace cryptarch::crypto
{

using util::load32le;
using util::rotl32;
using util::rotr32;
using util::store32le;

namespace
{

// 4-bit permutation tables defining the fixed q0/q1 byte permutations
// (Twofish paper, section 4.3.5).
constexpr uint8_t q0t[4][16] = {
    {0x8, 0x1, 0x7, 0xD, 0x6, 0xF, 0x3, 0x2,
     0x0, 0xB, 0x5, 0x9, 0xE, 0xC, 0xA, 0x4},
    {0xE, 0xC, 0xB, 0x8, 0x1, 0x2, 0x3, 0x5,
     0xF, 0x4, 0xA, 0x6, 0x7, 0x0, 0x9, 0xD},
    {0xB, 0xA, 0x5, 0xE, 0x6, 0xD, 0x9, 0x0,
     0xC, 0x8, 0xF, 0x3, 0x2, 0x4, 0x7, 0x1},
    {0xD, 0x7, 0xF, 0x4, 0x1, 0x2, 0x6, 0xE,
     0x9, 0xB, 0x3, 0x0, 0x8, 0x5, 0xC, 0xA},
};

constexpr uint8_t q1t[4][16] = {
    {0x2, 0x8, 0xB, 0xD, 0xF, 0x7, 0x6, 0xE,
     0x3, 0x1, 0x9, 0x4, 0x0, 0xA, 0xC, 0x5},
    {0x1, 0xE, 0x2, 0xB, 0x4, 0xC, 0x3, 0x7,
     0x6, 0xD, 0xA, 0x5, 0xF, 0x9, 0x0, 0x8},
    {0x4, 0xC, 0x7, 0x5, 0x1, 0x6, 0x9, 0xA,
     0x0, 0xE, 0xD, 0x8, 0x2, 0xB, 0x3, 0xF},
    {0xB, 0x9, 0x5, 0x1, 0xC, 0x3, 0xD, 0xE,
     0x6, 0x4, 0x7, 0xF, 0x2, 0x0, 0x8, 0xA},
};

// MDS matrix over GF(2^8) mod x^8 + x^6 + x^5 + x^3 + 1 (0x169).
constexpr uint8_t mds[4][4] = {
    {0x01, 0xEF, 0x5B, 0x5B},
    {0x5B, 0xEF, 0xEF, 0x01},
    {0xEF, 0x5B, 0x01, 0xEF},
    {0xEF, 0x01, 0xEF, 0x5B},
};

// RS matrix over GF(2^8) mod x^8 + x^6 + x^3 + x^2 + 1 (0x14D).
constexpr uint8_t rs[4][8] = {
    {0x01, 0xA4, 0x55, 0x87, 0x5A, 0x58, 0xDB, 0x9E},
    {0xA4, 0x56, 0x82, 0xF3, 0x1E, 0xC6, 0x68, 0xE5},
    {0x02, 0xA1, 0xFC, 0xC1, 0x47, 0xAE, 0x3D, 0x19},
    {0xA4, 0x55, 0x87, 0x5A, 0x58, 0xDB, 0x9E, 0x03},
};

constexpr uint32_t rho = 0x01010101;

/** GF(2^8) multiply modulo the given reduction polynomial. */
uint8_t
gfMul(uint8_t a, uint8_t b, uint16_t poly)
{
    uint16_t acc = 0;
    uint16_t aa = a;
    while (b) {
        if (b & 1)
            acc ^= aa;
        aa <<= 1;
        if (aa & 0x100)
            aa ^= poly;
        b >>= 1;
    }
    return static_cast<uint8_t>(acc);
}

uint8_t
ror4(uint8_t x, int n)
{
    return static_cast<uint8_t>(((x >> n) | (x << (4 - n))) & 0xF);
}

/** Build a q permutation from its four 4-bit tables. */
std::array<uint8_t, 256>
buildQ(const uint8_t t[4][16])
{
    std::array<uint8_t, 256> q{};
    for (int x = 0; x < 256; x++) {
        uint8_t a0 = x >> 4, b0 = x & 0xF;
        uint8_t a1 = a0 ^ b0;
        uint8_t b1 = static_cast<uint8_t>((a0 ^ ror4(b0, 1) ^ (8 * a0))
                                          & 0xF);
        uint8_t a2 = t[0][a1], b2 = t[1][b1];
        uint8_t a3 = a2 ^ b2;
        uint8_t b3 = static_cast<uint8_t>((a2 ^ ror4(b2, 1) ^ (8 * a2))
                                          & 0xF);
        uint8_t a4 = t[2][a3], b4 = t[3][b3];
        q[x] = static_cast<uint8_t>((b4 << 4) | a4);
    }
    return q;
}

/** MDS matrix-vector product; returns a little-endian packed word. */
uint32_t
mdsMul(const uint8_t y[4])
{
    uint32_t z = 0;
    for (int row = 0; row < 4; row++) {
        uint8_t acc = 0;
        for (int col = 0; col < 4; col++)
            acc ^= gfMul(mds[row][col], y[col], 0x169);
        z |= static_cast<uint32_t>(acc) << (8 * row);
    }
    return z;
}

/**
 * The byte-level S-box chain of h for 128-bit keys (k = 2): byte lane
 * @p j of input byte @p x, with inner key word @p l1 and outer @p l0.
 */
uint8_t
sboxChain(int j, uint8_t x, uint32_t l0, uint32_t l1)
{
    const auto &qa = crypto::Twofish::q0();
    const auto &qb = crypto::Twofish::q1();
    uint8_t k1 = static_cast<uint8_t>(l1 >> (8 * j));
    uint8_t k0 = static_cast<uint8_t>(l0 >> (8 * j));
    switch (j) {
      case 0:
        return qb[qa[qa[x] ^ k1] ^ k0];
      case 1:
        return qa[qa[qb[x] ^ k1] ^ k0];
      case 2:
        return qb[qb[qa[x] ^ k1] ^ k0];
      default:
        return qa[qb[qb[x] ^ k1] ^ k0];
    }
}

/** The h function for k = 2 (inner key word l1, outer l0). */
uint32_t
hFunc(uint32_t x, uint32_t l0, uint32_t l1)
{
    uint8_t y[4];
    for (int j = 0; j < 4; j++)
        y[j] = sboxChain(j, static_cast<uint8_t>(x >> (8 * j)), l0, l1);
    return mdsMul(y);
}

} // namespace

const std::array<uint8_t, 256> &
Twofish::q0()
{
    static const auto table = buildQ(q0t);
    return table;
}

const std::array<uint8_t, 256> &
Twofish::q1()
{
    static const auto table = buildQ(q1t);
    return table;
}

const CipherInfo &
Twofish::info() const
{
    return cipherInfo(CipherId::Twofish);
}

void
Twofish::setKey(std::span<const uint8_t> key)
{
    if (key.size() != 16)
        throw std::invalid_argument("Twofish: key must be 16 bytes");

    // Even key words feed the A-side subkey halves, odd words the
    // B side; the RS code of each key half keys the S-boxes.
    uint32_t m[4];
    for (int i = 0; i < 4; i++)
        m[i] = load32le(key.data() + 4 * i);

    uint32_t s[2];
    for (int half = 0; half < 2; half++) {
        uint32_t word = 0;
        for (int row = 0; row < 4; row++) {
            uint8_t acc = 0;
            for (int col = 0; col < 8; col++)
                acc ^= gfMul(rs[row][col], key[8 * half + col], 0x14D);
            word |= static_cast<uint32_t>(acc) << (8 * row);
        }
        s[half] = word;
    }

    for (int i = 0; i < 20; i++) {
        uint32_t a = hFunc(2 * i * rho, m[0], m[2]);
        uint32_t b = rotl32(hFunc((2 * i + 1) * rho, m[1], m[3]), 8);
        k[2 * i] = a + b;
        k[2 * i + 1] = rotl32(a + 2 * b, 9);
    }

    // Full keying: fold the key-dependent S-box chain and the MDS
    // contribution of each byte lane into four 256-entry tables, so
    // g(X) is four lookups and three XORs. The S vector is listed
    // high-half first (S1 outer, S0 inner), per the spec's
    // S = (S_{k-1}, ..., S_0) ordering.
    for (int j = 0; j < 4; j++) {
        for (int x = 0; x < 256; x++) {
            uint8_t y[4] = {0, 0, 0, 0};
            y[j] = sboxChain(j, static_cast<uint8_t>(x), s[1], s[0]);
            gt[j][x] = mdsMul(y);
        }
    }
}

uint32_t
Twofish::g(uint32_t x) const
{
    return gt[0][x & 0xFF] ^ gt[1][(x >> 8) & 0xFF]
        ^ gt[2][(x >> 16) & 0xFF] ^ gt[3][(x >> 24) & 0xFF];
}

void
Twofish::encryptBlock(const uint8_t *in, uint8_t *out) const
{
    uint32_t r[4];
    for (int i = 0; i < 4; i++)
        r[i] = load32le(in + 4 * i) ^ k[i];

    for (int round = 0; round < rounds; round++) {
        uint32_t t0 = g(r[0]);
        uint32_t t1 = g(rotl32(r[1], 8));
        uint32_t f0 = t0 + t1 + k[2 * round + 8];
        uint32_t f1 = t0 + 2 * t1 + k[2 * round + 9];
        uint32_t n2 = rotr32(r[2] ^ f0, 1);
        uint32_t n3 = rotl32(r[3], 1) ^ f1;
        // Swap halves for the next round.
        r[2] = r[0];
        r[3] = r[1];
        r[0] = n2;
        r[1] = n3;
    }

    // Output whitening undoes the last swap.
    for (int i = 0; i < 4; i++)
        store32le(out + 4 * i, r[(i + 2) & 3] ^ k[i + 4]);
}

void
Twofish::decryptBlock(const uint8_t *in, uint8_t *out) const
{
    uint32_t r[4];
    for (int i = 0; i < 4; i++)
        r[(i + 2) & 3] = load32le(in + 4 * i) ^ k[i + 4];

    for (int round = rounds - 1; round >= 0; round--) {
        // Undo the swap, then invert the round transform.
        uint32_t n2 = r[0], n3 = r[1];
        r[0] = r[2];
        r[1] = r[3];
        uint32_t t0 = g(r[0]);
        uint32_t t1 = g(rotl32(r[1], 8));
        uint32_t f0 = t0 + t1 + k[2 * round + 8];
        uint32_t f1 = t0 + 2 * t1 + k[2 * round + 9];
        r[2] = rotl32(n2, 1) ^ f0;
        r[3] = rotr32(n3 ^ f1, 1);
    }

    for (int i = 0; i < 4; i++)
        store32le(out + 4 * i, r[i] ^ k[i]);
}

uint64_t
Twofish::setupOpEstimate() const
{
    // 20 subkey pairs, each two h evaluations (~8 q lookups + MDS math,
    // ~70 instructions each), plus the RS computation and the 1024-entry
    // full-keying table build (three q lookups, two XORs and a
    // precomputed-MDS lookup per entry, ~15 instructions).
    return 20 * 2 * 70 + 2 * 150 + 1024 * 15;
}

} // namespace cryptarch::crypto
