/**
 * @file
 * Blowfish block cipher (Schneier, 1993).
 *
 * Blowfish is the paper's setup-cost outlier (Figure 6): key expansion
 * encrypts the all-zero block 521 times to fill the P-array and the four
 * 256-entry S-boxes — the work of encrypting ~8 KB of payload — so setup
 * only amortizes below 10% for sessions longer than 64 KB.
 *
 * The initialization constants are the hexadecimal digits of pi,
 * regenerated at first use by util::piFractionWords (see DESIGN.md).
 */

#ifndef CRYPTARCH_CRYPTO_BLOWFISH_HH
#define CRYPTARCH_CRYPTO_BLOWFISH_HH

#include <array>
#include <cstdint>

#include "crypto/cipher.hh"

namespace cryptarch::crypto
{

/** Blowfish with the paper's 128-bit key configuration. */
class Blowfish : public BlockCipher
{
  public:
    const CipherInfo &info() const override;
    void setKey(std::span<const uint8_t> key) override;
    void encryptBlock(const uint8_t *in, uint8_t *out) const override;
    void decryptBlock(const uint8_t *in, uint8_t *out) const override;
    uint64_t setupOpEstimate() const override;

    /** Expanded P-array (18 words), for the CryptISA kernel. */
    const std::array<uint32_t, 18> &pArray() const { return p; }
    /** Expanded S-boxes (4 x 256 words), for the CryptISA kernel. */
    const std::array<std::array<uint32_t, 256>, 4> &sBoxes() const
    {
        return s;
    }

    /** Encrypt a 64-bit block given as (left, right) word pair. */
    void encryptWords(uint32_t &l, uint32_t &r) const;
    /** Decrypt a 64-bit block given as (left, right) word pair. */
    void decryptWords(uint32_t &l, uint32_t &r) const;

  private:
    uint32_t f(uint32_t x) const;

    std::array<uint32_t, 18> p{};
    std::array<std::array<uint32_t, 256>, 4> s{};
};

} // namespace cryptarch::crypto

#endif // CRYPTARCH_CRYPTO_BLOWFISH_HH
