/**
 * @file
 * Public interfaces of the cryptarch cipher library.
 *
 * Eight private-key symmetric ciphers are provided — the exact suite
 * analyzed by the paper (Table 1): 3DES, Blowfish, IDEA, MARS, RC4, RC6,
 * Rijndael and Twofish. Seven are block ciphers behind @ref BlockCipher;
 * RC4 is a stream cipher behind @ref StreamCipher.
 */

#ifndef CRYPTARCH_CRYPTO_CIPHER_HH
#define CRYPTARCH_CRYPTO_CIPHER_HH

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace cryptarch::crypto
{

/** Identifiers for the eight analyzed ciphers, in Table 1 order. */
enum class CipherId
{
    TripleDES,
    Blowfish,
    IDEA,
    MARS,
    RC4,
    RC6,
    Rijndael,
    Twofish,
};

/** Static description of a cipher configuration (paper Table 1). */
struct CipherInfo
{
    CipherId id;
    std::string name;
    unsigned keyBits;   ///< key size used for all experiments
    unsigned blockBytes; ///< bytes per kernel application (RC4: 1)
    unsigned rounds;    ///< kernel rounds per block
    std::string author;
    std::string application;
    bool isStream;      ///< true for RC4
};

/**
 * A key-parameterized block cipher. Implementations are stateless after
 * setKey() apart from the expanded key material, so one object may
 * encrypt and decrypt interleaved.
 */
class BlockCipher
{
  public:
    virtual ~BlockCipher() = default;

    /** Static configuration of this cipher. */
    virtual const CipherInfo &info() const = 0;

    /**
     * Expand a key. Throws std::invalid_argument unless key.size() ==
     * info().keyBits / 8.
     */
    virtual void setKey(std::span<const uint8_t> key) = 0;

    /** Encrypt one block; @p in and @p out hold info().blockBytes. */
    virtual void encryptBlock(const uint8_t *in, uint8_t *out) const = 0;

    /** Decrypt one block; @p in and @p out hold info().blockBytes. */
    virtual void decryptBlock(const uint8_t *in, uint8_t *out) const = 0;

    /**
     * Estimated dynamic instruction count of setKey() on the paper's
     * baseline machine, used by the Figure 6 setup-cost experiment. The
     * per-cipher derivation is documented next to each implementation.
     */
    virtual uint64_t setupOpEstimate() const = 0;
};

/** A key-parameterized stream cipher (RC4). */
class StreamCipher
{
  public:
    virtual ~StreamCipher() = default;

    virtual const CipherInfo &info() const = 0;

    /** Initialize/reset keystream state. Key length 1..256 bytes. */
    virtual void setKey(std::span<const uint8_t> key) = 0;

    /** XOR the keystream onto @p n bytes (encrypt == decrypt). */
    virtual void process(const uint8_t *in, uint8_t *out, size_t n) = 0;

    /** @copydoc BlockCipher::setupOpEstimate */
    virtual uint64_t setupOpEstimate() const = 0;
};

/** Table 1: the full analyzed suite in presentation order. */
const std::vector<CipherInfo> &cipherCatalog();

/** Info entry for one cipher. */
const CipherInfo &cipherInfo(CipherId id);

/** Construct a fresh block cipher; throws for CipherId::RC4. */
std::unique_ptr<BlockCipher> makeBlockCipher(CipherId id);

/** Construct the RC4 stream cipher. */
std::unique_ptr<StreamCipher> makeStreamCipher(CipherId id);

} // namespace cryptarch::crypto

#endif // CRYPTARCH_CRYPTO_CIPHER_HH
