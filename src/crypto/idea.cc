#include "crypto/idea.hh"

#include <stdexcept>

namespace cryptarch::crypto
{

uint16_t
ideaMulMod(uint16_t a, uint16_t b)
{
    // Multiplication in GF(2^16 + 1) where register value 0 encodes the
    // field element 2^16. The low-high correction below is Lai's
    // division-free reduction [Lai 92], the same algorithm the paper's
    // MULMOD functional unit implements.
    if (a == 0)
        return static_cast<uint16_t>(0x10001u - b); // 2^16 * b mod p
    if (b == 0)
        return static_cast<uint16_t>(0x10001u - a);
    uint32_t prod = static_cast<uint32_t>(a) * b;
    uint16_t lo = static_cast<uint16_t>(prod);
    uint16_t hi = static_cast<uint16_t>(prod >> 16);
    // lo - hi mod p, with a +1 correction when lo < hi.
    return static_cast<uint16_t>(lo - hi + (lo < hi ? 1 : 0));
}

uint16_t
ideaMulInverse(uint16_t a)
{
    // Extended Euclid over the prime 0x10001; 0 encodes 2^16 which is
    // its own inverse (2^16 * 2^16 = 2^32 = (p-1)^2 = 1 mod p).
    if (a == 0)
        return 0;
    if (a == 1)
        return 1;
    int32_t t0 = 0, t1 = 1;
    int32_t r0 = 0x10001, r1 = a;
    while (r1 != 0) {
        int32_t q = r0 / r1;
        int32_t r2 = r0 - q * r1;
        int32_t t2 = t0 - q * t1;
        r0 = r1;
        r1 = r2;
        t0 = t1;
        t1 = t2;
    }
    if (t0 < 0)
        t0 += 0x10001;
    return static_cast<uint16_t>(t0);
}

const CipherInfo &
Idea::info() const
{
    return cipherInfo(CipherId::IDEA);
}

void
Idea::setKey(std::span<const uint8_t> key)
{
    if (key.size() != 16)
        throw std::invalid_argument("Idea: key must be 16 bytes");

    // First 8 subkeys are the key itself; each further batch comes from
    // rotating the 128-bit key left by 25 bits.
    std::array<uint16_t, 8> k;
    for (int i = 0; i < 8; i++) {
        k[i] = static_cast<uint16_t>((key[2 * i] << 8) | key[2 * i + 1]);
    }
    int taken = 0;
    while (taken < 52) {
        for (int i = 0; i < 8 && taken < 52; i++)
            ek[taken++] = k[i];
        // Rotate the 128-bit value left 25 bits: each 16-bit word becomes
        // bits of words (i+1, i+2) of the old value.
        std::array<uint16_t, 8> nk;
        for (int i = 0; i < 8; i++) {
            nk[i] = static_cast<uint16_t>((k[(i + 1) & 7] << 9)
                                          | (k[(i + 2) & 7] >> 7));
        }
        k = nk;
    }

    // Decryption subkeys: inverted key schedule run backwards.
    for (int round = 0; round < 9; round++) {
        const uint16_t *src = &ek[(8 - round) * 6];
        uint16_t *dst = &dk[round * 6];
        dst[0] = ideaMulInverse(src[0]);
        if (round == 0 || round == 8) {
            dst[1] = static_cast<uint16_t>(-src[1]);
            dst[2] = static_cast<uint16_t>(-src[2]);
        } else {
            // Middle rounds swap the two additive subkeys.
            dst[1] = static_cast<uint16_t>(-src[2]);
            dst[2] = static_cast<uint16_t>(-src[1]);
        }
        dst[3] = ideaMulInverse(src[3]);
        if (round < 8) {
            dst[4] = ek[(7 - round) * 6 + 4];
            dst[5] = ek[(7 - round) * 6 + 5];
        }
    }
}

void
Idea::applyKernel(const std::array<uint16_t, 52> &keys, const uint8_t *in,
                  uint8_t *out)
{
    uint16_t x0 = static_cast<uint16_t>((in[0] << 8) | in[1]);
    uint16_t x1 = static_cast<uint16_t>((in[2] << 8) | in[3]);
    uint16_t x2 = static_cast<uint16_t>((in[4] << 8) | in[5]);
    uint16_t x3 = static_cast<uint16_t>((in[6] << 8) | in[7]);

    const uint16_t *k = keys.data();
    for (int round = 0; round < 8; round++, k += 6) {
        x0 = ideaMulMod(x0, k[0]);
        x1 = static_cast<uint16_t>(x1 + k[1]);
        x2 = static_cast<uint16_t>(x2 + k[2]);
        x3 = ideaMulMod(x3, k[3]);
        uint16_t t0 = ideaMulMod(static_cast<uint16_t>(x0 ^ x2), k[4]);
        uint16_t t1 = ideaMulMod(
            static_cast<uint16_t>((x1 ^ x3) + t0), k[5]);
        uint16_t t2 = static_cast<uint16_t>(t0 + t1);
        x0 ^= t1;
        x3 ^= t2;
        uint16_t swap = static_cast<uint16_t>(x1 ^ t2);
        x1 = static_cast<uint16_t>(x2 ^ t1);
        x2 = swap;
    }
    // Output transformation (half round) — note x1/x2 swap back.
    uint16_t y0 = ideaMulMod(x0, k[0]);
    uint16_t y1 = static_cast<uint16_t>(x2 + k[1]);
    uint16_t y2 = static_cast<uint16_t>(x1 + k[2]);
    uint16_t y3 = ideaMulMod(x3, k[3]);

    out[0] = static_cast<uint8_t>(y0 >> 8);
    out[1] = static_cast<uint8_t>(y0);
    out[2] = static_cast<uint8_t>(y1 >> 8);
    out[3] = static_cast<uint8_t>(y1);
    out[4] = static_cast<uint8_t>(y2 >> 8);
    out[5] = static_cast<uint8_t>(y2);
    out[6] = static_cast<uint8_t>(y3 >> 8);
    out[7] = static_cast<uint8_t>(y3);
}

void
Idea::encryptBlock(const uint8_t *in, uint8_t *out) const
{
    applyKernel(ek, in, out);
}

void
Idea::decryptBlock(const uint8_t *in, uint8_t *out) const
{
    applyKernel(dk, in, out);
}

uint64_t
Idea::setupOpEstimate() const
{
    // IDEA was designed for cheap setup: 52 subkeys built from rotates
    // and masks (~6 instructions each). Decryption additionally needs 18
    // modular inverses (~60 instructions each via Euclid), but the
    // Figure 6 experiment measures the encryption-side session setup.
    return 52 * 6 + 64;
}

} // namespace cryptarch::crypto
