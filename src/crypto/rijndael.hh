/**
 * @file
 * Rijndael block cipher (Daemen & Rijmen) — AES-128 configuration.
 *
 * Rijndael is the paper's fastest block cipher (48.5 bytes/1000 cycles
 * on the 4W machine) and the one that benefits most from the SBOX
 * instruction: in the standard 32-bit software formulation every round
 * is sixteen table lookups into four 256x32-bit tables plus XORs, so
 * cutting an SBox access from three instructions/five cycles to one
 * instruction/two cycles nearly doubles its throughput.
 *
 * All tables (S-box, inverse S-box, the four round-transform T tables
 * and their inverses) are derived programmatically from GF(2^8)
 * arithmetic rather than transcribed.
 */

#ifndef CRYPTARCH_CRYPTO_RIJNDAEL_HH
#define CRYPTARCH_CRYPTO_RIJNDAEL_HH

#include <array>
#include <cstdint>

#include "crypto/cipher.hh"

namespace cryptarch::crypto
{

/** Rijndael-128/128 (AES-128): 10 rounds. */
class Rijndael : public BlockCipher
{
  public:
    static constexpr int rounds = 10;

    const CipherInfo &info() const override;
    void setKey(std::span<const uint8_t> key) override;
    void encryptBlock(const uint8_t *in, uint8_t *out) const override;
    void decryptBlock(const uint8_t *in, uint8_t *out) const override;
    uint64_t setupOpEstimate() const override;

    /** Byte substitution table, derived from GF(2^8) inversion. */
    static const std::array<uint8_t, 256> &sbox();
    /** Inverse byte substitution table. */
    static const std::array<uint8_t, 256> &invSbox();
    /**
     * Encryption T tables: T[j][b] = MixColumns column contribution of
     * S[b] in byte position j. The CryptISA kernel indexes these with
     * SBOX instructions.
     */
    static const std::array<std::array<uint32_t, 256>, 4> &encTables();
    /** Decryption T tables (InvMixColumns of InvS). */
    static const std::array<std::array<uint32_t, 256>, 4> &decTables();

    /** Expanded encryption round keys as 4*(rounds+1) big-endian words. */
    const std::array<uint32_t, 4 * (rounds + 1)> &encKeys() const
    {
        return ek;
    }
    /** Expanded equivalent-inverse-cipher decryption round keys. */
    const std::array<uint32_t, 4 * (rounds + 1)> &decKeys() const
    {
        return dk;
    }

  private:
    std::array<uint32_t, 4 * (rounds + 1)> ek{};
    std::array<uint32_t, 4 * (rounds + 1)> dk{};
};

} // namespace cryptarch::crypto

#endif // CRYPTARCH_CRYPTO_RIJNDAEL_HH
