/**
 * @file
 * Chaining-block-cipher (CBC) mode.
 *
 * The paper runs every block cipher in CBC mode: ciphertext block i is
 * XOR'ed with plaintext block i+1 before encryption, making the whole
 * session one long serial recurrence (paper section 2). The intermediate
 * vector carries across calls so a session can be processed in pieces.
 */

#ifndef CRYPTARCH_CRYPTO_CBC_HH
#define CRYPTARCH_CRYPTO_CBC_HH

#include <cstdint>
#include <span>
#include <vector>

#include "crypto/cipher.hh"

namespace cryptarch::crypto
{

/** CBC-mode encryptor wrapping a keyed block cipher. */
class CbcEncryptor
{
  public:
    /**
     * @param cipher a keyed block cipher (must outlive this object)
     * @param iv initial intermediate vector, cipher block size bytes
     */
    CbcEncryptor(const BlockCipher &cipher, std::span<const uint8_t> iv);

    /**
     * Encrypt a whole number of blocks in place of @p in into @p out.
     * @p in size must be a multiple of the block size.
     */
    void encrypt(std::span<const uint8_t> in, std::span<uint8_t> out);

    /** Convenience: encrypt and return a fresh buffer. */
    std::vector<uint8_t> encrypt(std::span<const uint8_t> in);

  private:
    const BlockCipher &cipher;
    std::vector<uint8_t> iv;
};

/** CBC-mode decryptor wrapping a keyed block cipher. */
class CbcDecryptor
{
  public:
    CbcDecryptor(const BlockCipher &cipher, std::span<const uint8_t> iv);

    /** Decrypt a whole number of blocks. */
    void decrypt(std::span<const uint8_t> in, std::span<uint8_t> out);

    /** Convenience: decrypt and return a fresh buffer. */
    std::vector<uint8_t> decrypt(std::span<const uint8_t> in);

  private:
    const BlockCipher &cipher;
    std::vector<uint8_t> iv;
};

} // namespace cryptarch::crypto

#endif // CRYPTARCH_CRYPTO_CBC_HH
