/**
 * @file
 * DES and Triple-DES (EDE3).
 *
 * 3DES is the paper's worst-performing cipher: 48 Feistel rounds per
 * 64-bit block plus the initial/final general bit permutations that map
 * poorly onto a general-purpose ISA (the motivation for the XBOX
 * instruction). The paper configures 3DES per the SSLv3 specification:
 * EDE with three independent 56-bit keys, CBC mode.
 */

#ifndef CRYPTARCH_CRYPTO_DES_HH
#define CRYPTARCH_CRYPTO_DES_HH

#include <array>
#include <cstdint>
#include <span>

#include "crypto/cipher.hh"

namespace cryptarch::crypto
{

/**
 * Single-key DES core. Exposed (rather than kept private to 3DES)
 * because the CryptISA 3DES kernel and the unit tests validate against
 * single-DES known-answer vectors.
 */
class Des
{
  public:
    /** Expand a 64-bit key (parity bits ignored) into 16 subkeys. */
    void setKey(std::span<const uint8_t, 8> key);

    /** Encrypt a 64-bit block presented as a big-endian integer. */
    uint64_t encrypt(uint64_t block) const;

    /** Decrypt a 64-bit block presented as a big-endian integer. */
    uint64_t decrypt(uint64_t block) const;

    /** The 16 expanded 48-bit subkeys (bit 47 first E-bit). */
    const std::array<uint64_t, 16> &subkeys() const { return keys; }

    /** Initial permutation, public for kernel cross-validation. */
    static uint64_t initialPermutation(uint64_t v);
    /** Final permutation (inverse of IP). */
    static uint64_t finalPermutation(uint64_t v);
    /** The Feistel f-function: 32-bit half, 48-bit subkey. */
    static uint32_t feistel(uint32_t half, uint64_t subkey);

    /**
     * Combined S-box + P-permutation lookup tables ("SP boxes"), eight
     * 64-entry tables of 32-bit words. This is the classic software
     * formulation CryptSoft-style implementations use and what the
     * CryptISA kernel's SBOX instructions index.
     */
    static const std::array<std::array<uint32_t, 64>, 8> &spBoxes();

  private:
    std::array<uint64_t, 16> keys{};
};

/** Triple-DES EDE3 block cipher (24-byte key = K1 | K2 | K3). */
class TripleDes : public BlockCipher
{
  public:
    const CipherInfo &info() const override;
    void setKey(std::span<const uint8_t> key) override;
    void encryptBlock(const uint8_t *in, uint8_t *out) const override;
    void decryptBlock(const uint8_t *in, uint8_t *out) const override;
    uint64_t setupOpEstimate() const override;

    /** The three DES cores, for kernel table extraction. */
    const Des &core(int i) const { return des[i]; }

  private:
    std::array<Des, 3> des;
};

} // namespace cryptarch::crypto

#endif // CRYPTARCH_CRYPTO_DES_HH
