/**
 * @file
 * RC4 stream cipher.
 *
 * RC4 is the paper's parallelism outlier: it is a key-based random
 * number generator XOR'ed onto the input stream, and successive
 * generator iterations are (mostly) independent, so it reaches 88
 * bytes/1000 cycles on the baseline machine — more than 10x 3DES — and
 * still has untapped ILP on the 8-wide machine. Uniquely among the
 * suite, RC4 *stores into* its S-box table, which is why the SBOX
 * instruction grew an aliased variant.
 */

#ifndef CRYPTARCH_CRYPTO_RC4_HH
#define CRYPTARCH_CRYPTO_RC4_HH

#include <array>
#include <cstdint>

#include "crypto/cipher.hh"

namespace cryptarch::crypto
{

/** RC4 with the paper's 128-bit key configuration. */
class Rc4 : public StreamCipher
{
  public:
    const CipherInfo &info() const override;
    void setKey(std::span<const uint8_t> key) override;
    void process(const uint8_t *in, uint8_t *out, size_t n) override;
    uint64_t setupOpEstimate() const override;

    /** Current permutation state, for kernel cross-validation. */
    const std::array<uint8_t, 256> &state() const { return s; }
    /** Current (i, j) indices, for kernel cross-validation. */
    std::pair<uint8_t, uint8_t> indices() const { return {i, j}; }

  private:
    std::array<uint8_t, 256> s{};
    uint8_t i = 0, j = 0;
};

} // namespace cryptarch::crypto

#endif // CRYPTARCH_CRYPTO_RC4_HH
