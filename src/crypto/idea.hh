/**
 * @file
 * IDEA block cipher (Lai & Massey, 1991).
 *
 * IDEA is the paper's poster child for the MULMOD instruction: its
 * diffusion comes from multiplication modulo the prime 2^16 + 1 (with
 * the convention that the all-zero operand represents 2^16). On the
 * baseline machine each of the 34 modular multiplies per 64-bit block
 * costs a 7-cycle multiply plus correction code; the MULMOD extension
 * collapses the whole operation to 4 cycles, giving IDEA the best
 * speedup in Figure 10 (159%).
 */

#ifndef CRYPTARCH_CRYPTO_IDEA_HH
#define CRYPTARCH_CRYPTO_IDEA_HH

#include <array>
#include <cstdint>

#include "crypto/cipher.hh"

namespace cryptarch::crypto
{

/**
 * IDEA multiplication modulo 0x10001 with the 0 == 2^16 convention.
 * Public because the CryptISA MULMOD instruction and the IDEA kernel
 * validate against it.
 */
uint16_t ideaMulMod(uint16_t a, uint16_t b);

/** Multiplicative inverse modulo 0x10001 under the IDEA convention. */
uint16_t ideaMulInverse(uint16_t a);

/** IDEA with its fixed 128-bit key, 8.5 rounds. */
class Idea : public BlockCipher
{
  public:
    const CipherInfo &info() const override;
    void setKey(std::span<const uint8_t> key) override;
    void encryptBlock(const uint8_t *in, uint8_t *out) const override;
    void decryptBlock(const uint8_t *in, uint8_t *out) const override;
    uint64_t setupOpEstimate() const override;

    /** The 52 expanded encryption subkeys, for the CryptISA kernel. */
    const std::array<uint16_t, 52> &encryptKeys() const { return ek; }
    /** The 52 expanded decryption subkeys. */
    const std::array<uint16_t, 52> &decryptKeys() const { return dk; }

  private:
    static void applyKernel(const std::array<uint16_t, 52> &keys,
                            const uint8_t *in, uint8_t *out);

    std::array<uint16_t, 52> ek{};
    std::array<uint16_t, 52> dk{};
};

} // namespace cryptarch::crypto

#endif // CRYPTARCH_CRYPTO_IDEA_HH
