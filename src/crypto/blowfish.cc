#include "crypto/blowfish.hh"

#include <stdexcept>
#include <vector>

#include "util/bitops.hh"
#include "util/pi.hh"

namespace cryptarch::crypto
{

using util::load32be;
using util::store32be;

namespace
{

/** 18 P words + 4*256 S words of pi, computed once per process. */
const std::vector<uint32_t> &
piInit()
{
    static const std::vector<uint32_t> words =
        util::piFractionWords(18 + 4 * 256);
    return words;
}

} // namespace

const CipherInfo &
Blowfish::info() const
{
    return cipherInfo(CipherId::Blowfish);
}

uint32_t
Blowfish::f(uint32_t x) const
{
    uint32_t a = (x >> 24) & 0xFF, b = (x >> 16) & 0xFF;
    uint32_t c = (x >> 8) & 0xFF, d = x & 0xFF;
    return ((s[0][a] + s[1][b]) ^ s[2][c]) + s[3][d];
}

void
Blowfish::encryptWords(uint32_t &l, uint32_t &r) const
{
    for (int i = 0; i < 16; i += 2) {
        l ^= p[i];
        r ^= f(l);
        r ^= p[i + 1];
        l ^= f(r);
    }
    l ^= p[16];
    r ^= p[17];
    std::swap(l, r);
}

void
Blowfish::decryptWords(uint32_t &l, uint32_t &r) const
{
    for (int i = 16; i > 0; i -= 2) {
        l ^= p[i + 1];
        r ^= f(l);
        r ^= p[i];
        l ^= f(r);
    }
    l ^= p[1];
    r ^= p[0];
    std::swap(l, r);
}

void
Blowfish::setKey(std::span<const uint8_t> key)
{
    if (key.empty() || key.size() > 56)
        throw std::invalid_argument("Blowfish: key must be 1..56 bytes");

    const auto &pi = piInit();
    for (int i = 0; i < 18; i++)
        p[i] = pi[i];
    for (int box = 0; box < 4; box++)
        for (int i = 0; i < 256; i++)
            s[box][i] = pi[18 + box * 256 + i];

    // XOR the key cyclically onto the P-array.
    size_t k = 0;
    for (int i = 0; i < 18; i++) {
        uint32_t word = 0;
        for (int j = 0; j < 4; j++) {
            word = (word << 8) | key[k];
            k = (k + 1) % key.size();
        }
        p[i] ^= word;
    }

    // Replace P and S with successive encryptions of the zero block:
    // (18 + 1024) / 2 + 1 = 521 kernel applications.
    uint32_t l = 0, r = 0;
    for (int i = 0; i < 18; i += 2) {
        encryptWords(l, r);
        p[i] = l;
        p[i + 1] = r;
    }
    for (int box = 0; box < 4; box++) {
        for (int i = 0; i < 256; i += 2) {
            encryptWords(l, r);
            s[box][i] = l;
            s[box][i + 1] = r;
        }
    }
}

void
Blowfish::encryptBlock(const uint8_t *in, uint8_t *out) const
{
    uint32_t l = load32be(in), r = load32be(in + 4);
    encryptWords(l, r);
    store32be(out, l);
    store32be(out + 4, r);
}

void
Blowfish::decryptBlock(const uint8_t *in, uint8_t *out) const
{
    uint32_t l = load32be(in), r = load32be(in + 4);
    decryptWords(l, r);
    store32be(out, l);
    store32be(out + 4, r);
}

uint64_t
Blowfish::setupOpEstimate() const
{
    // 521 block encryptions (16 rounds x ~14 baseline instructions per
    // round with load-based S-boxes, plus whitening), plus the 1042-word
    // table initialization XOR/copy loop (~4 instructions per word).
    const uint64_t per_block = 16 * 14 + 10;
    return 521 * per_block + 1042 * 4 + 18 * 8;
}

} // namespace cryptarch::crypto
