#include "crypto/rc6.hh"

#include <stdexcept>

#include "util/bitops.hh"

namespace cryptarch::crypto
{

using util::load32le;
using util::rotl32;
using util::rotr32;
using util::store32le;

namespace
{

constexpr uint32_t p32 = 0xB7E15163; // binary expansion of e - 2
constexpr uint32_t q32 = 0x9E3779B9; // binary expansion of phi - 1

} // namespace

const CipherInfo &
Rc6::info() const
{
    return cipherInfo(CipherId::RC6);
}

void
Rc6::setKey(std::span<const uint8_t> key)
{
    if (key.size() != 16)
        throw std::invalid_argument("Rc6: key must be 16 bytes");

    // RC5/RC6 key schedule: arithmetic-progression fill, then three
    // passes of combined key/state mixing with data-dependent rotates.
    std::array<uint32_t, 4> l;
    for (int i = 0; i < 4; i++)
        l[i] = load32le(key.data() + 4 * i);

    s[0] = p32;
    for (size_t i = 1; i < s.size(); i++)
        s[i] = s[i - 1] + q32;

    uint32_t a = 0, b = 0;
    size_t i = 0, j = 0;
    const size_t iters = 3 * std::max(s.size(), l.size());
    for (size_t n = 0; n < iters; n++) {
        a = s[i] = rotl32(s[i] + a + b, 3);
        b = l[j] = rotl32(l[j] + a + b, (a + b) & 31);
        i = (i + 1) % s.size();
        j = (j + 1) % l.size();
    }
}

void
Rc6::encryptBlock(const uint8_t *in, uint8_t *out) const
{
    uint32_t a = load32le(in), b = load32le(in + 4);
    uint32_t c = load32le(in + 8), d = load32le(in + 12);

    b += s[0];
    d += s[1];
    for (int i = 1; i <= rounds; i++) {
        uint32_t t = rotl32(b * (2 * b + 1), 5);
        uint32_t u = rotl32(d * (2 * d + 1), 5);
        a = rotl32(a ^ t, u & 31) + s[2 * i];
        c = rotl32(c ^ u, t & 31) + s[2 * i + 1];
        uint32_t tmp = a;
        a = b;
        b = c;
        c = d;
        d = tmp;
    }
    a += s[2 * rounds + 2];
    c += s[2 * rounds + 3];

    store32le(out, a);
    store32le(out + 4, b);
    store32le(out + 8, c);
    store32le(out + 12, d);
}

void
Rc6::decryptBlock(const uint8_t *in, uint8_t *out) const
{
    uint32_t a = load32le(in), b = load32le(in + 4);
    uint32_t c = load32le(in + 8), d = load32le(in + 12);

    c -= s[2 * rounds + 3];
    a -= s[2 * rounds + 2];
    for (int i = rounds; i >= 1; i--) {
        uint32_t tmp = d;
        d = c;
        c = b;
        b = a;
        a = tmp;
        uint32_t t = rotl32(b * (2 * b + 1), 5);
        uint32_t u = rotl32(d * (2 * d + 1), 5);
        c = rotr32(c - s[2 * i + 1], t & 31) ^ u;
        a = rotr32(a - s[2 * i], u & 31) ^ t;
    }
    d -= s[1];
    b -= s[0];

    store32le(out, a);
    store32le(out + 4, b);
    store32le(out + 8, c);
    store32le(out + 12, d);
}

uint64_t
Rc6::setupOpEstimate() const
{
    // 44-word fill (~3 instructions each) plus 132 mixing iterations of
    // two adds/rotates each (~12 instructions without HW rotates).
    return 44 * 3 + 132 * 12;
}

} // namespace cryptarch::crypto
