#include "crypto/rijndael.hh"

#include <stdexcept>

#include "util/bitops.hh"

namespace cryptarch::crypto
{

using util::load32be;
using util::rotr32;
using util::store32be;

namespace
{

/** Multiply in GF(2^8) with the Rijndael polynomial x^8+x^4+x^3+x+1. */
uint8_t
gmul(uint8_t a, uint8_t b)
{
    uint8_t r = 0;
    while (b) {
        if (b & 1)
            r ^= a;
        bool hi = a & 0x80;
        a <<= 1;
        if (hi)
            a ^= 0x1B;
        b >>= 1;
    }
    return r;
}

/** Inverse in GF(2^8) (0 maps to 0), via exponentiation a^254. */
uint8_t
ginv(uint8_t a)
{
    if (a == 0)
        return 0;
    // a^254 = a^(2+4+8+16+32+64+128)
    uint8_t result = 1, sq = a;
    for (int bit = 1; bit < 8; bit++) {
        sq = gmul(sq, sq);
        result = gmul(result, sq);
    }
    return result;
}

} // namespace

const std::array<uint8_t, 256> &
Rijndael::sbox()
{
    static const auto table = [] {
        std::array<uint8_t, 256> t{};
        for (int x = 0; x < 256; x++) {
            uint8_t b = ginv(static_cast<uint8_t>(x));
            // Affine transform: b ^ rotl(b,1) ^ rotl(b,2) ^ rotl(b,3)
            // ^ rotl(b,4) ^ 0x63.
            uint8_t r = 0x63;
            for (int i = 0; i < 5; i++)
                r ^= static_cast<uint8_t>((b << i) | (b >> (8 - i)));
            t[x] = r;
        }
        return t;
    }();
    return table;
}

const std::array<uint8_t, 256> &
Rijndael::invSbox()
{
    static const auto table = [] {
        std::array<uint8_t, 256> t{};
        const auto &s = sbox();
        for (int x = 0; x < 256; x++)
            t[s[x]] = static_cast<uint8_t>(x);
        return t;
    }();
    return table;
}

const std::array<std::array<uint32_t, 256>, 4> &
Rijndael::encTables()
{
    static const auto tables = [] {
        std::array<std::array<uint32_t, 256>, 4> te{};
        const auto &s = sbox();
        for (int x = 0; x < 256; x++) {
            uint8_t v = s[x];
            uint32_t w = (static_cast<uint32_t>(gmul(v, 2)) << 24)
                | (static_cast<uint32_t>(v) << 16)
                | (static_cast<uint32_t>(v) << 8) | gmul(v, 3);
            for (int j = 0; j < 4; j++)
                te[j][x] = rotr32(w, 8 * j);
        }
        return te;
    }();
    return tables;
}

const std::array<std::array<uint32_t, 256>, 4> &
Rijndael::decTables()
{
    static const auto tables = [] {
        std::array<std::array<uint32_t, 256>, 4> td{};
        const auto &is = invSbox();
        for (int x = 0; x < 256; x++) {
            uint8_t v = is[x];
            uint32_t w = (static_cast<uint32_t>(gmul(v, 14)) << 24)
                | (static_cast<uint32_t>(gmul(v, 9)) << 16)
                | (static_cast<uint32_t>(gmul(v, 13)) << 8) | gmul(v, 11);
            for (int j = 0; j < 4; j++)
                td[j][x] = rotr32(w, 8 * j);
        }
        return td;
    }();
    return tables;
}

const CipherInfo &
Rijndael::info() const
{
    return cipherInfo(CipherId::Rijndael);
}

void
Rijndael::setKey(std::span<const uint8_t> key)
{
    if (key.size() != 16)
        throw std::invalid_argument("Rijndael: key must be 16 bytes");

    const auto &s = sbox();
    for (int i = 0; i < 4; i++)
        ek[i] = load32be(key.data() + 4 * i);
    uint32_t rcon = 1;
    for (int i = 4; i < 44; i++) {
        uint32_t t = ek[i - 1];
        if (i % 4 == 0) {
            // SubWord(RotWord(t)) ^ rcon
            t = (t << 8) | (t >> 24);
            t = (static_cast<uint32_t>(s[(t >> 24) & 0xFF]) << 24)
                | (static_cast<uint32_t>(s[(t >> 16) & 0xFF]) << 16)
                | (static_cast<uint32_t>(s[(t >> 8) & 0xFF]) << 8)
                | s[t & 0xFF];
            t ^= rcon << 24;
            rcon = gmul(static_cast<uint8_t>(rcon), 2);
        }
        ek[i] = ek[i - 4] ^ t;
    }

    // Equivalent inverse cipher keys: reversed round order, with
    // InvMixColumns applied to the interior round keys.
    for (int i = 0; i < 4; i++) {
        dk[i] = ek[40 + i];
        dk[40 + i] = ek[i];
    }
    for (int r = 1; r < rounds; r++) {
        for (int i = 0; i < 4; i++) {
            uint32_t w = ek[4 * (rounds - r) + i];
            uint8_t b0 = w >> 24, b1 = w >> 16, b2 = w >> 8, b3 = w;
            dk[4 * r + i] =
                (static_cast<uint32_t>(
                     gmul(b0, 14) ^ gmul(b1, 11) ^ gmul(b2, 13)
                     ^ gmul(b3, 9))
                 << 24)
                | (static_cast<uint32_t>(
                       gmul(b0, 9) ^ gmul(b1, 14) ^ gmul(b2, 11)
                       ^ gmul(b3, 13))
                   << 16)
                | (static_cast<uint32_t>(
                       gmul(b0, 13) ^ gmul(b1, 9) ^ gmul(b2, 14)
                       ^ gmul(b3, 11))
                   << 8)
                | static_cast<uint32_t>(gmul(b0, 11) ^ gmul(b1, 13)
                                        ^ gmul(b2, 9) ^ gmul(b3, 14));
        }
    }
}

void
Rijndael::encryptBlock(const uint8_t *in, uint8_t *out) const
{
    const auto &te = encTables();
    const auto &s = sbox();

    uint32_t w[4];
    for (int i = 0; i < 4; i++)
        w[i] = load32be(in + 4 * i) ^ ek[i];

    for (int r = 1; r < rounds; r++) {
        uint32_t n[4];
        for (int j = 0; j < 4; j++) {
            n[j] = te[0][(w[j] >> 24) & 0xFF]
                ^ te[1][(w[(j + 1) & 3] >> 16) & 0xFF]
                ^ te[2][(w[(j + 2) & 3] >> 8) & 0xFF]
                ^ te[3][w[(j + 3) & 3] & 0xFF] ^ ek[4 * r + j];
        }
        for (int j = 0; j < 4; j++)
            w[j] = n[j];
    }
    // Final round: SubBytes + ShiftRows + AddRoundKey (no MixColumns).
    uint32_t n[4];
    for (int j = 0; j < 4; j++) {
        n[j] = (static_cast<uint32_t>(s[(w[j] >> 24) & 0xFF]) << 24)
            | (static_cast<uint32_t>(s[(w[(j + 1) & 3] >> 16) & 0xFF])
               << 16)
            | (static_cast<uint32_t>(s[(w[(j + 2) & 3] >> 8) & 0xFF]) << 8)
            | s[w[(j + 3) & 3] & 0xFF];
        n[j] ^= ek[4 * rounds + j];
    }
    for (int j = 0; j < 4; j++)
        store32be(out + 4 * j, n[j]);
}

void
Rijndael::decryptBlock(const uint8_t *in, uint8_t *out) const
{
    const auto &td = decTables();
    const auto &is = invSbox();

    uint32_t w[4];
    for (int i = 0; i < 4; i++)
        w[i] = load32be(in + 4 * i) ^ dk[i];

    for (int r = 1; r < rounds; r++) {
        uint32_t n[4];
        for (int j = 0; j < 4; j++) {
            n[j] = td[0][(w[j] >> 24) & 0xFF]
                ^ td[1][(w[(j + 3) & 3] >> 16) & 0xFF]
                ^ td[2][(w[(j + 2) & 3] >> 8) & 0xFF]
                ^ td[3][w[(j + 1) & 3] & 0xFF] ^ dk[4 * r + j];
        }
        for (int j = 0; j < 4; j++)
            w[j] = n[j];
    }
    uint32_t n[4];
    for (int j = 0; j < 4; j++) {
        n[j] = (static_cast<uint32_t>(is[(w[j] >> 24) & 0xFF]) << 24)
            | (static_cast<uint32_t>(is[(w[(j + 3) & 3] >> 16) & 0xFF])
               << 16)
            | (static_cast<uint32_t>(is[(w[(j + 2) & 3] >> 8) & 0xFF])
               << 8)
            | is[w[(j + 1) & 3] & 0xFF];
        n[j] ^= dk[4 * rounds + j];
    }
    for (int j = 0; j < 4; j++)
        store32be(out + 4 * j, n[j]);
}

uint64_t
Rijndael::setupOpEstimate() const
{
    // 40 key-expansion words at ~8 instructions each, with the four
    // SubWord rounds costing four table loads (~16 instructions) extra.
    return 40 * 8 + 10 * 16;
}

} // namespace cryptarch::crypto
