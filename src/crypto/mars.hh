/**
 * @file
 * MARS block cipher (IBM, AES finalist).
 *
 * MARS is a "mixed structure" cipher: eight rounds of unkeyed S-box
 * mixing, a 16-round keyed cryptographic core built around the
 * E-function (a 32-bit multiply, an S-box lookup and two data-dependent
 * rotates per round), then eight rounds of unkeyed unmixing. It is the
 * heaviest rotate user in the suite — the paper measures a 40% slowdown
 * on machines without rotate instructions (Figure 10, Orig/4W).
 *
 * SUBSTITUTION (see DESIGN.md 2.2): the official 512-word MARS S-box is
 * a table of SHA-derived constants that cannot be regenerated from the
 * paper. This implementation uses a deterministic xorshift-generated
 * table with the same size and role. Every architectural property the
 * paper measures (operation mix, table footprint, dependence structure)
 * is preserved; interoperability with official MARS ciphertext is not,
 * so MARS is validated structurally rather than by known-answer vectors.
 */

#ifndef CRYPTARCH_CRYPTO_MARS_HH
#define CRYPTARCH_CRYPTO_MARS_HH

#include <array>
#include <cstdint>

#include "crypto/cipher.hh"

namespace cryptarch::crypto
{

/** MARS with a 128-bit key: 8 + 16 + 8 rounds. */
class Mars : public BlockCipher
{
  public:
    const CipherInfo &info() const override;
    void setKey(std::span<const uint8_t> key) override;
    void encryptBlock(const uint8_t *in, uint8_t *out) const override;
    void decryptBlock(const uint8_t *in, uint8_t *out) const override;
    uint64_t setupOpEstimate() const override;

    /** The 512-word S-box (S0 = first half, S1 = second half). */
    static const std::array<uint32_t, 512> &sbox();

    /** The 40 expanded subkeys, for the CryptISA kernel. */
    const std::array<uint32_t, 40> &subkeys() const { return k; }

    /**
     * The keyed E-function: expands one data word into three using the
     * round's additive subkey @p k_add and multiplicative subkey
     * @p k_mul. Public for kernel cross-validation.
     */
    static void eFunction(uint32_t in, uint32_t k_add, uint32_t k_mul,
                          uint32_t &l, uint32_t &m, uint32_t &r);

  private:
    std::array<uint32_t, 40> k{};
};

} // namespace cryptarch::crypto

#endif // CRYPTARCH_CRYPTO_MARS_HH
