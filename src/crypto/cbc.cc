#include "crypto/cbc.hh"

#include <cassert>
#include <stdexcept>

namespace cryptarch::crypto
{

CbcEncryptor::CbcEncryptor(const BlockCipher &cipher,
                           std::span<const uint8_t> iv)
    : cipher(cipher), iv(iv.begin(), iv.end())
{
    if (iv.size() != cipher.info().blockBytes)
        throw std::invalid_argument("CbcEncryptor: IV size != block size");
}

void
CbcEncryptor::encrypt(std::span<const uint8_t> in, std::span<uint8_t> out)
{
    const size_t bs = cipher.info().blockBytes;
    if (in.size() % bs != 0 || out.size() < in.size())
        throw std::invalid_argument("CbcEncryptor: bad buffer size");
    std::vector<uint8_t> xored(bs);
    for (size_t off = 0; off < in.size(); off += bs) {
        for (size_t i = 0; i < bs; i++)
            xored[i] = in[off + i] ^ iv[i];
        cipher.encryptBlock(xored.data(), out.data() + off);
        std::copy(out.begin() + off, out.begin() + off + bs, iv.begin());
    }
}

std::vector<uint8_t>
CbcEncryptor::encrypt(std::span<const uint8_t> in)
{
    std::vector<uint8_t> out(in.size());
    encrypt(in, out);
    return out;
}

CbcDecryptor::CbcDecryptor(const BlockCipher &cipher,
                           std::span<const uint8_t> iv)
    : cipher(cipher), iv(iv.begin(), iv.end())
{
    if (iv.size() != cipher.info().blockBytes)
        throw std::invalid_argument("CbcDecryptor: IV size != block size");
}

void
CbcDecryptor::decrypt(std::span<const uint8_t> in, std::span<uint8_t> out)
{
    const size_t bs = cipher.info().blockBytes;
    if (in.size() % bs != 0 || out.size() < in.size())
        throw std::invalid_argument("CbcDecryptor: bad buffer size");
    std::vector<uint8_t> plain(bs);
    std::vector<uint8_t> next_iv(bs);
    for (size_t off = 0; off < in.size(); off += bs) {
        std::copy(in.begin() + off, in.begin() + off + bs, next_iv.begin());
        cipher.decryptBlock(in.data() + off, plain.data());
        for (size_t i = 0; i < bs; i++)
            out[off + i] = plain[i] ^ iv[i];
        iv = next_iv;
    }
}

std::vector<uint8_t>
CbcDecryptor::decrypt(std::span<const uint8_t> in)
{
    std::vector<uint8_t> out(in.size());
    decrypt(in, out);
    return out;
}

} // namespace cryptarch::crypto
