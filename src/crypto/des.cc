#include "crypto/des.hh"

#include <stdexcept>

#include "util/bitops.hh"

namespace cryptarch::crypto
{

using util::load64be;
using util::rotl32;
using util::rotr32;
using util::store64be;

namespace
{

// FIPS 46 tables. Bit numbering follows the standard: bit 1 is the most
// significant bit of the input.

constexpr int ip_table[64] = {
    58, 50, 42, 34, 26, 18, 10, 2, 60, 52, 44, 36, 28, 20, 12, 4,
    62, 54, 46, 38, 30, 22, 14, 6, 64, 56, 48, 40, 32, 24, 16, 8,
    57, 49, 41, 33, 25, 17, 9, 1, 59, 51, 43, 35, 27, 19, 11, 3,
    61, 53, 45, 37, 29, 21, 13, 5, 63, 55, 47, 39, 31, 23, 15, 7,
};

constexpr int pc1_table[56] = {
    57, 49, 41, 33, 25, 17, 9, 1, 58, 50, 42, 34, 26, 18,
    10, 2, 59, 51, 43, 35, 27, 19, 11, 3, 60, 52, 44, 36,
    63, 55, 47, 39, 31, 23, 15, 7, 62, 54, 46, 38, 30, 22,
    14, 6, 61, 53, 45, 37, 29, 21, 13, 5, 28, 20, 12, 4,
};

constexpr int pc2_table[48] = {
    14, 17, 11, 24, 1, 5, 3, 28, 15, 6, 21, 10,
    23, 19, 12, 4, 26, 8, 16, 7, 27, 20, 13, 2,
    41, 52, 31, 37, 47, 55, 30, 40, 51, 45, 33, 48,
    44, 49, 39, 56, 34, 53, 46, 42, 50, 36, 29, 32,
};

constexpr int key_shifts[16] = {
    1, 1, 2, 2, 2, 2, 2, 2, 1, 2, 2, 2, 2, 2, 2, 1,
};

constexpr int p_table[32] = {
    16, 7, 20, 21, 29, 12, 28, 17, 1, 15, 23, 26, 5, 18, 31, 10,
    2, 8, 24, 14, 32, 27, 3, 9, 19, 13, 30, 6, 22, 11, 4, 25,
};

constexpr uint8_t sboxes[8][64] = {
    {
        14, 4, 13, 1, 2, 15, 11, 8, 3, 10, 6, 12, 5, 9, 0, 7,
        0, 15, 7, 4, 14, 2, 13, 1, 10, 6, 12, 11, 9, 5, 3, 8,
        4, 1, 14, 8, 13, 6, 2, 11, 15, 12, 9, 7, 3, 10, 5, 0,
        15, 12, 8, 2, 4, 9, 1, 7, 5, 11, 3, 14, 10, 0, 6, 13,
    },
    {
        15, 1, 8, 14, 6, 11, 3, 4, 9, 7, 2, 13, 12, 0, 5, 10,
        3, 13, 4, 7, 15, 2, 8, 14, 12, 0, 1, 10, 6, 9, 11, 5,
        0, 14, 7, 11, 10, 4, 13, 1, 5, 8, 12, 6, 9, 3, 2, 15,
        13, 8, 10, 1, 3, 15, 4, 2, 11, 6, 7, 12, 0, 5, 14, 9,
    },
    {
        10, 0, 9, 14, 6, 3, 15, 5, 1, 13, 12, 7, 11, 4, 2, 8,
        13, 7, 0, 9, 3, 4, 6, 10, 2, 8, 5, 14, 12, 11, 15, 1,
        13, 6, 4, 9, 8, 15, 3, 0, 11, 1, 2, 12, 5, 10, 14, 7,
        1, 10, 13, 0, 6, 9, 8, 7, 4, 15, 14, 3, 11, 5, 2, 12,
    },
    {
        7, 13, 14, 3, 0, 6, 9, 10, 1, 2, 8, 5, 11, 12, 4, 15,
        13, 8, 11, 5, 6, 15, 0, 3, 4, 7, 2, 12, 1, 10, 14, 9,
        10, 6, 9, 0, 12, 11, 7, 13, 15, 1, 3, 14, 5, 2, 8, 4,
        3, 15, 0, 6, 10, 1, 13, 8, 9, 4, 5, 11, 12, 7, 2, 14,
    },
    {
        2, 12, 4, 1, 7, 10, 11, 6, 8, 5, 3, 15, 13, 0, 14, 9,
        14, 11, 2, 12, 4, 7, 13, 1, 5, 0, 15, 10, 3, 9, 8, 6,
        4, 2, 1, 11, 10, 13, 7, 8, 15, 9, 12, 5, 6, 3, 0, 14,
        11, 8, 12, 7, 1, 14, 2, 13, 6, 15, 0, 9, 10, 4, 5, 3,
    },
    {
        12, 1, 10, 15, 9, 2, 6, 8, 0, 13, 3, 4, 14, 7, 5, 11,
        10, 15, 4, 2, 7, 12, 9, 5, 6, 1, 13, 14, 0, 11, 3, 8,
        9, 14, 15, 5, 2, 8, 12, 3, 7, 0, 4, 10, 1, 13, 11, 6,
        4, 3, 2, 12, 9, 5, 15, 10, 11, 14, 1, 7, 6, 0, 8, 13,
    },
    {
        4, 11, 2, 14, 15, 0, 8, 13, 3, 12, 9, 7, 5, 10, 6, 1,
        13, 0, 11, 7, 4, 9, 1, 10, 14, 3, 5, 12, 2, 15, 8, 6,
        1, 4, 11, 13, 12, 3, 7, 14, 10, 15, 6, 8, 0, 5, 9, 2,
        6, 11, 13, 8, 1, 4, 10, 7, 9, 5, 0, 15, 14, 2, 3, 12,
    },
    {
        13, 2, 8, 4, 6, 15, 11, 1, 10, 9, 3, 14, 5, 0, 12, 7,
        1, 15, 13, 8, 10, 3, 7, 4, 12, 5, 6, 11, 0, 14, 9, 2,
        7, 11, 4, 1, 9, 12, 14, 2, 0, 6, 10, 13, 15, 3, 5, 8,
        2, 1, 14, 7, 4, 10, 8, 13, 15, 12, 9, 0, 3, 5, 6, 11,
    },
};

/**
 * Generic bit permutation with FIPS numbering: output bit i (1-based,
 * MSB first, @p out_bits wide) takes input bit table[i-1] of an
 * @p in_bits wide value.
 */
uint64_t
permuteBits(uint64_t v, const int *table, int out_bits, int in_bits)
{
    uint64_t r = 0;
    for (int i = 0; i < out_bits; i++) {
        uint64_t bit = (v >> (in_bits - table[i])) & 1;
        r |= bit << (out_bits - 1 - i);
    }
    return r;
}

/** S-box lookup: 6-bit chunk value (spec bit order) through box i. */
uint32_t
sboxLookup(int box, uint32_t chunk)
{
    uint32_t row = ((chunk >> 4) & 2) | (chunk & 1);
    uint32_t col = (chunk >> 1) & 0xF;
    return sboxes[box][row * 16 + col];
}

/** Inverse of the initial permutation, derived rather than transcribed. */
const std::array<int, 64> &
fpTable()
{
    static const std::array<int, 64> table = [] {
        std::array<int, 64> t{};
        for (int i = 0; i < 64; i++)
            t[ip_table[i] - 1] = i + 1;
        return t;
    }();
    return table;
}

} // namespace

uint64_t
Des::initialPermutation(uint64_t v)
{
    return permuteBits(v, ip_table, 64, 64);
}

uint64_t
Des::finalPermutation(uint64_t v)
{
    return permuteBits(v, fpTable().data(), 64, 64);
}

const std::array<std::array<uint32_t, 64>, 8> &
Des::spBoxes()
{
    // SP box i maps a 6-bit E-chunk to the P-permuted contribution of
    // S-box i: the 4-bit S output placed in its nibble position and run
    // through P. Built once from the FIPS tables.
    static const auto tables = [] {
        std::array<std::array<uint32_t, 64>, 8> sp{};
        for (int box = 0; box < 8; box++) {
            for (uint32_t v = 0; v < 64; v++) {
                uint32_t nibble = sboxLookup(box, v);
                uint64_t placed = static_cast<uint64_t>(nibble)
                    << (28 - 4 * box);
                sp[box][v] = static_cast<uint32_t>(
                    permuteBits(placed, p_table, 32, 32));
            }
        }
        return sp;
    }();
    return tables;
}

uint32_t
Des::feistel(uint32_t half, uint64_t subkey)
{
    const auto &sp = spBoxes();
    // E expansion: chunk i is spec bits 4i..4i+5 of the half, taken
    // cyclically (bit 0 means bit 32). Rotating right by one aligns
    // chunk boundaries so each chunk is a 6-bit field of the rotation.
    uint32_t q = rotr32(half, 1);
    uint32_t out = 0;
    for (int i = 0; i < 8; i++) {
        uint32_t chunk = rotr32(q, (26 - 4 * i) & 31) & 0x3F;
        uint32_t k6 = (subkey >> (42 - 6 * i)) & 0x3F;
        out ^= sp[i][chunk ^ k6];
    }
    return out;
}

void
Des::setKey(std::span<const uint8_t, 8> key)
{
    uint64_t k = load64be(key.data());
    uint64_t cd = permuteBits(k, pc1_table, 56, 64);
    uint32_t c = static_cast<uint32_t>(cd >> 28);
    uint32_t d = static_cast<uint32_t>(cd & 0x0FFFFFFF);
    for (int round = 0; round < 16; round++) {
        int s = key_shifts[round];
        c = ((c << s) | (c >> (28 - s))) & 0x0FFFFFFF;
        d = ((d << s) | (d >> (28 - s))) & 0x0FFFFFFF;
        uint64_t merged = (static_cast<uint64_t>(c) << 28) | d;
        keys[round] = permuteBits(merged, pc2_table, 48, 56);
    }
}

uint64_t
Des::encrypt(uint64_t block) const
{
    uint64_t v = initialPermutation(block);
    uint32_t l = static_cast<uint32_t>(v >> 32);
    uint32_t r = static_cast<uint32_t>(v);
    for (int round = 0; round < 16; round++) {
        uint32_t next_r = l ^ feistel(r, keys[round]);
        l = r;
        r = next_r;
    }
    // Final swap: the last round's halves are exchanged before FP.
    uint64_t pre = (static_cast<uint64_t>(r) << 32) | l;
    return finalPermutation(pre);
}

uint64_t
Des::decrypt(uint64_t block) const
{
    uint64_t v = initialPermutation(block);
    uint32_t l = static_cast<uint32_t>(v >> 32);
    uint32_t r = static_cast<uint32_t>(v);
    for (int round = 15; round >= 0; round--) {
        uint32_t next_r = l ^ feistel(r, keys[round]);
        l = r;
        r = next_r;
    }
    uint64_t pre = (static_cast<uint64_t>(r) << 32) | l;
    return finalPermutation(pre);
}

// ---------------------------------------------------------------------
// Triple-DES EDE3
// ---------------------------------------------------------------------

const CipherInfo &
TripleDes::info() const
{
    return cipherInfo(CipherId::TripleDES);
}

void
TripleDes::setKey(std::span<const uint8_t> key)
{
    if (key.size() != 24)
        throw std::invalid_argument("TripleDes: key must be 24 bytes");
    for (int i = 0; i < 3; i++)
        des[i].setKey(key.subspan(i * 8).first<8>());
}

void
TripleDes::encryptBlock(const uint8_t *in, uint8_t *out) const
{
    uint64_t v = load64be(in);
    v = des[0].encrypt(v);
    v = des[1].decrypt(v);
    v = des[2].encrypt(v);
    store64be(out, v);
}

void
TripleDes::decryptBlock(const uint8_t *in, uint8_t *out) const
{
    uint64_t v = load64be(in);
    v = des[2].decrypt(v);
    v = des[1].encrypt(v);
    v = des[0].decrypt(v);
    store64be(out, v);
}

uint64_t
TripleDes::setupOpEstimate() const
{
    // Three key schedules; each runs PC1 (56 bit gathers), then 16 rounds
    // of two 28-bit rotates plus PC2 (48 bit gathers). A bit gather is
    // roughly 4 baseline instructions (shift/mask/shift/or).
    const uint64_t per_key = 56 * 4 + 16 * (2 * 4 + 48 * 4);
    return 3 * per_key;
}

} // namespace cryptarch::crypto
