#include "crypto/rc4.hh"

#include <stdexcept>

namespace cryptarch::crypto
{

const CipherInfo &
Rc4::info() const
{
    return cipherInfo(CipherId::RC4);
}

void
Rc4::setKey(std::span<const uint8_t> key)
{
    if (key.empty() || key.size() > 256)
        throw std::invalid_argument("Rc4: key must be 1..256 bytes");
    for (int n = 0; n < 256; n++)
        s[n] = static_cast<uint8_t>(n);
    uint8_t acc = 0;
    for (int n = 0; n < 256; n++) {
        acc = static_cast<uint8_t>(acc + s[n] + key[n % key.size()]);
        std::swap(s[n], s[acc]);
    }
    i = j = 0;
}

void
Rc4::process(const uint8_t *in, uint8_t *out, size_t n)
{
    for (size_t b = 0; b < n; b++) {
        i = static_cast<uint8_t>(i + 1);
        j = static_cast<uint8_t>(j + s[i]);
        std::swap(s[i], s[j]);
        uint8_t k = s[static_cast<uint8_t>(s[i] + s[j])];
        out[b] = in[b] ^ k;
    }
}

uint64_t
Rc4::setupOpEstimate() const
{
    // Identity fill (256 stores + loop overhead) plus the 256-iteration
    // key-mixing swap loop (~10 instructions per iteration).
    return 256 * 3 + 256 * 10;
}

} // namespace cryptarch::crypto
