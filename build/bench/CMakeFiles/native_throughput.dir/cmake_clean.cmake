file(REMOVE_RECURSE
  "CMakeFiles/native_throughput.dir/native_throughput.cc.o"
  "CMakeFiles/native_throughput.dir/native_throughput.cc.o.d"
  "native_throughput"
  "native_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/native_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
