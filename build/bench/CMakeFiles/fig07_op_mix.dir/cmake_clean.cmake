file(REMOVE_RECURSE
  "CMakeFiles/fig07_op_mix.dir/fig07_op_mix.cc.o"
  "CMakeFiles/fig07_op_mix.dir/fig07_op_mix.cc.o.d"
  "fig07_op_mix"
  "fig07_op_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_op_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
