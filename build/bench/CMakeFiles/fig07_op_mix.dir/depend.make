# Empty dependencies file for fig07_op_mix.
# This may be replaced when dependencies are built.
