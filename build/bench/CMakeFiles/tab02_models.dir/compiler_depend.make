# Empty compiler generated dependencies file for tab02_models.
# This may be replaced when dependencies are built.
