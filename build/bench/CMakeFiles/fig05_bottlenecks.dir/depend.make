# Empty dependencies file for fig05_bottlenecks.
# This may be replaced when dependencies are built.
