
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/tab01_ciphers.cc" "bench/CMakeFiles/tab01_ciphers.dir/tab01_ciphers.cc.o" "gcc" "bench/CMakeFiles/tab01_ciphers.dir/tab01_ciphers.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ssl/CMakeFiles/cryptarch_ssl.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/cryptarch_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cryptarch_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/cryptarch_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/cryptarch_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cryptarch_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
