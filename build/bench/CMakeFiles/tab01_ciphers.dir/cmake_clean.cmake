file(REMOVE_RECURSE
  "CMakeFiles/tab01_ciphers.dir/tab01_ciphers.cc.o"
  "CMakeFiles/tab01_ciphers.dir/tab01_ciphers.cc.o.d"
  "tab01_ciphers"
  "tab01_ciphers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab01_ciphers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
