# Empty dependencies file for tab01_ciphers.
# This may be replaced when dependencies are built.
