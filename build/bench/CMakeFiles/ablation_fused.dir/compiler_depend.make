# Empty compiler generated dependencies file for ablation_fused.
# This may be replaced when dependencies are built.
