file(REMOVE_RECURSE
  "CMakeFiles/ablation_fused.dir/ablation_fused.cc.o"
  "CMakeFiles/ablation_fused.dir/ablation_fused.cc.o.d"
  "ablation_fused"
  "ablation_fused.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fused.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
