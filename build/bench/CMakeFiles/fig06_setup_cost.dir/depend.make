# Empty dependencies file for fig06_setup_cost.
# This may be replaced when dependencies are built.
