file(REMOVE_RECURSE
  "CMakeFiles/fig06_setup_cost.dir/fig06_setup_cost.cc.o"
  "CMakeFiles/fig06_setup_cost.dir/fig06_setup_cost.cc.o.d"
  "fig06_setup_cost"
  "fig06_setup_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_setup_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
