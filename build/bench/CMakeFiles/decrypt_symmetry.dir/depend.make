# Empty dependencies file for decrypt_symmetry.
# This may be replaced when dependencies are built.
