file(REMOVE_RECURSE
  "CMakeFiles/decrypt_symmetry.dir/decrypt_symmetry.cc.o"
  "CMakeFiles/decrypt_symmetry.dir/decrypt_symmetry.cc.o.d"
  "decrypt_symmetry"
  "decrypt_symmetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decrypt_symmetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
