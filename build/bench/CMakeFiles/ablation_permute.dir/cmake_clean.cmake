file(REMOVE_RECURSE
  "CMakeFiles/ablation_permute.dir/ablation_permute.cc.o"
  "CMakeFiles/ablation_permute.dir/ablation_permute.cc.o.d"
  "ablation_permute"
  "ablation_permute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_permute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
