# Empty dependencies file for ablation_permute.
# This may be replaced when dependencies are built.
