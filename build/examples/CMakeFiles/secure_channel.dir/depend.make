# Empty dependencies file for secure_channel.
# This may be replaced when dependencies are built.
