file(REMOVE_RECURSE
  "CMakeFiles/pipeline_view.dir/pipeline_view.cpp.o"
  "CMakeFiles/pipeline_view.dir/pipeline_view.cpp.o.d"
  "pipeline_view"
  "pipeline_view.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_view.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
