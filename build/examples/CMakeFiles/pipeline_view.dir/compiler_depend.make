# Empty compiler generated dependencies file for pipeline_view.
# This may be replaced when dependencies are built.
