
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/crypto/test_blowfish.cc" "tests/CMakeFiles/cryptarch_tests.dir/crypto/test_blowfish.cc.o" "gcc" "tests/CMakeFiles/cryptarch_tests.dir/crypto/test_blowfish.cc.o.d"
  "/root/repo/tests/crypto/test_catalog.cc" "tests/CMakeFiles/cryptarch_tests.dir/crypto/test_catalog.cc.o" "gcc" "tests/CMakeFiles/cryptarch_tests.dir/crypto/test_catalog.cc.o.d"
  "/root/repo/tests/crypto/test_cbc.cc" "tests/CMakeFiles/cryptarch_tests.dir/crypto/test_cbc.cc.o" "gcc" "tests/CMakeFiles/cryptarch_tests.dir/crypto/test_cbc.cc.o.d"
  "/root/repo/tests/crypto/test_decrypt_kat.cc" "tests/CMakeFiles/cryptarch_tests.dir/crypto/test_decrypt_kat.cc.o" "gcc" "tests/CMakeFiles/cryptarch_tests.dir/crypto/test_decrypt_kat.cc.o.d"
  "/root/repo/tests/crypto/test_des.cc" "tests/CMakeFiles/cryptarch_tests.dir/crypto/test_des.cc.o" "gcc" "tests/CMakeFiles/cryptarch_tests.dir/crypto/test_des.cc.o.d"
  "/root/repo/tests/crypto/test_idea.cc" "tests/CMakeFiles/cryptarch_tests.dir/crypto/test_idea.cc.o" "gcc" "tests/CMakeFiles/cryptarch_tests.dir/crypto/test_idea.cc.o.d"
  "/root/repo/tests/crypto/test_mars.cc" "tests/CMakeFiles/cryptarch_tests.dir/crypto/test_mars.cc.o" "gcc" "tests/CMakeFiles/cryptarch_tests.dir/crypto/test_mars.cc.o.d"
  "/root/repo/tests/crypto/test_modes.cc" "tests/CMakeFiles/cryptarch_tests.dir/crypto/test_modes.cc.o" "gcc" "tests/CMakeFiles/cryptarch_tests.dir/crypto/test_modes.cc.o.d"
  "/root/repo/tests/crypto/test_properties.cc" "tests/CMakeFiles/cryptarch_tests.dir/crypto/test_properties.cc.o" "gcc" "tests/CMakeFiles/cryptarch_tests.dir/crypto/test_properties.cc.o.d"
  "/root/repo/tests/crypto/test_rc4.cc" "tests/CMakeFiles/cryptarch_tests.dir/crypto/test_rc4.cc.o" "gcc" "tests/CMakeFiles/cryptarch_tests.dir/crypto/test_rc4.cc.o.d"
  "/root/repo/tests/crypto/test_rc6.cc" "tests/CMakeFiles/cryptarch_tests.dir/crypto/test_rc6.cc.o" "gcc" "tests/CMakeFiles/cryptarch_tests.dir/crypto/test_rc6.cc.o.d"
  "/root/repo/tests/crypto/test_rijndael.cc" "tests/CMakeFiles/cryptarch_tests.dir/crypto/test_rijndael.cc.o" "gcc" "tests/CMakeFiles/cryptarch_tests.dir/crypto/test_rijndael.cc.o.d"
  "/root/repo/tests/crypto/test_twofish.cc" "tests/CMakeFiles/cryptarch_tests.dir/crypto/test_twofish.cc.o" "gcc" "tests/CMakeFiles/cryptarch_tests.dir/crypto/test_twofish.cc.o.d"
  "/root/repo/tests/integration/test_paper_shapes.cc" "tests/CMakeFiles/cryptarch_tests.dir/integration/test_paper_shapes.cc.o" "gcc" "tests/CMakeFiles/cryptarch_tests.dir/integration/test_paper_shapes.cc.o.d"
  "/root/repo/tests/isa/test_assembler.cc" "tests/CMakeFiles/cryptarch_tests.dir/isa/test_assembler.cc.o" "gcc" "tests/CMakeFiles/cryptarch_tests.dir/isa/test_assembler.cc.o.d"
  "/root/repo/tests/isa/test_grp.cc" "tests/CMakeFiles/cryptarch_tests.dir/isa/test_grp.cc.o" "gcc" "tests/CMakeFiles/cryptarch_tests.dir/isa/test_grp.cc.o.d"
  "/root/repo/tests/isa/test_machine.cc" "tests/CMakeFiles/cryptarch_tests.dir/isa/test_machine.cc.o" "gcc" "tests/CMakeFiles/cryptarch_tests.dir/isa/test_machine.cc.o.d"
  "/root/repo/tests/isa/test_machine_ops.cc" "tests/CMakeFiles/cryptarch_tests.dir/isa/test_machine_ops.cc.o" "gcc" "tests/CMakeFiles/cryptarch_tests.dir/isa/test_machine_ops.cc.o.d"
  "/root/repo/tests/isa/test_trace.cc" "tests/CMakeFiles/cryptarch_tests.dir/isa/test_trace.cc.o" "gcc" "tests/CMakeFiles/cryptarch_tests.dir/isa/test_trace.cc.o.d"
  "/root/repo/tests/kernels/test_kernels.cc" "tests/CMakeFiles/cryptarch_tests.dir/kernels/test_kernels.cc.o" "gcc" "tests/CMakeFiles/cryptarch_tests.dir/kernels/test_kernels.cc.o.d"
  "/root/repo/tests/kernels/test_setup_kernel.cc" "tests/CMakeFiles/cryptarch_tests.dir/kernels/test_setup_kernel.cc.o" "gcc" "tests/CMakeFiles/cryptarch_tests.dir/kernels/test_setup_kernel.cc.o.d"
  "/root/repo/tests/kernels/test_structure.cc" "tests/CMakeFiles/cryptarch_tests.dir/kernels/test_structure.cc.o" "gcc" "tests/CMakeFiles/cryptarch_tests.dir/kernels/test_structure.cc.o.d"
  "/root/repo/tests/sim/test_cache.cc" "tests/CMakeFiles/cryptarch_tests.dir/sim/test_cache.cc.o" "gcc" "tests/CMakeFiles/cryptarch_tests.dir/sim/test_cache.cc.o.d"
  "/root/repo/tests/sim/test_config.cc" "tests/CMakeFiles/cryptarch_tests.dir/sim/test_config.cc.o" "gcc" "tests/CMakeFiles/cryptarch_tests.dir/sim/test_config.cc.o.d"
  "/root/repo/tests/sim/test_pipeline.cc" "tests/CMakeFiles/cryptarch_tests.dir/sim/test_pipeline.cc.o" "gcc" "tests/CMakeFiles/cryptarch_tests.dir/sim/test_pipeline.cc.o.d"
  "/root/repo/tests/sim/test_predictor.cc" "tests/CMakeFiles/cryptarch_tests.dir/sim/test_predictor.cc.o" "gcc" "tests/CMakeFiles/cryptarch_tests.dir/sim/test_predictor.cc.o.d"
  "/root/repo/tests/sim/test_timeline.cc" "tests/CMakeFiles/cryptarch_tests.dir/sim/test_timeline.cc.o" "gcc" "tests/CMakeFiles/cryptarch_tests.dir/sim/test_timeline.cc.o.d"
  "/root/repo/tests/ssl/test_rsa.cc" "tests/CMakeFiles/cryptarch_tests.dir/ssl/test_rsa.cc.o" "gcc" "tests/CMakeFiles/cryptarch_tests.dir/ssl/test_rsa.cc.o.d"
  "/root/repo/tests/ssl/test_session.cc" "tests/CMakeFiles/cryptarch_tests.dir/ssl/test_session.cc.o" "gcc" "tests/CMakeFiles/cryptarch_tests.dir/ssl/test_session.cc.o.d"
  "/root/repo/tests/util/test_bigint.cc" "tests/CMakeFiles/cryptarch_tests.dir/util/test_bigint.cc.o" "gcc" "tests/CMakeFiles/cryptarch_tests.dir/util/test_bigint.cc.o.d"
  "/root/repo/tests/util/test_bitops.cc" "tests/CMakeFiles/cryptarch_tests.dir/util/test_bitops.cc.o" "gcc" "tests/CMakeFiles/cryptarch_tests.dir/util/test_bitops.cc.o.d"
  "/root/repo/tests/util/test_hex.cc" "tests/CMakeFiles/cryptarch_tests.dir/util/test_hex.cc.o" "gcc" "tests/CMakeFiles/cryptarch_tests.dir/util/test_hex.cc.o.d"
  "/root/repo/tests/util/test_pi.cc" "tests/CMakeFiles/cryptarch_tests.dir/util/test_pi.cc.o" "gcc" "tests/CMakeFiles/cryptarch_tests.dir/util/test_pi.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ssl/CMakeFiles/cryptarch_ssl.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/cryptarch_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cryptarch_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/cryptarch_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/cryptarch_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cryptarch_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
