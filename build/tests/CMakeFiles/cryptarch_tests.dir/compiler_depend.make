# Empty compiler generated dependencies file for cryptarch_tests.
# This may be replaced when dependencies are built.
