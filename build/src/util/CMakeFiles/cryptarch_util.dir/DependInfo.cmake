
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/bigint.cc" "src/util/CMakeFiles/cryptarch_util.dir/bigint.cc.o" "gcc" "src/util/CMakeFiles/cryptarch_util.dir/bigint.cc.o.d"
  "/root/repo/src/util/hex.cc" "src/util/CMakeFiles/cryptarch_util.dir/hex.cc.o" "gcc" "src/util/CMakeFiles/cryptarch_util.dir/hex.cc.o.d"
  "/root/repo/src/util/pi.cc" "src/util/CMakeFiles/cryptarch_util.dir/pi.cc.o" "gcc" "src/util/CMakeFiles/cryptarch_util.dir/pi.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
