file(REMOVE_RECURSE
  "CMakeFiles/cryptarch_util.dir/bigint.cc.o"
  "CMakeFiles/cryptarch_util.dir/bigint.cc.o.d"
  "CMakeFiles/cryptarch_util.dir/hex.cc.o"
  "CMakeFiles/cryptarch_util.dir/hex.cc.o.d"
  "CMakeFiles/cryptarch_util.dir/pi.cc.o"
  "CMakeFiles/cryptarch_util.dir/pi.cc.o.d"
  "libcryptarch_util.a"
  "libcryptarch_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cryptarch_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
