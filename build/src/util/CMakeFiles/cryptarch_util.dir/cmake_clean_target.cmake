file(REMOVE_RECURSE
  "libcryptarch_util.a"
)
