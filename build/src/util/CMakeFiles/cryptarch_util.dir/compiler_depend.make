# Empty compiler generated dependencies file for cryptarch_util.
# This may be replaced when dependencies are built.
