file(REMOVE_RECURSE
  "libcryptarch_crypto.a"
)
