# Empty compiler generated dependencies file for cryptarch_crypto.
# This may be replaced when dependencies are built.
