
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/blowfish.cc" "src/crypto/CMakeFiles/cryptarch_crypto.dir/blowfish.cc.o" "gcc" "src/crypto/CMakeFiles/cryptarch_crypto.dir/blowfish.cc.o.d"
  "/root/repo/src/crypto/catalog.cc" "src/crypto/CMakeFiles/cryptarch_crypto.dir/catalog.cc.o" "gcc" "src/crypto/CMakeFiles/cryptarch_crypto.dir/catalog.cc.o.d"
  "/root/repo/src/crypto/cbc.cc" "src/crypto/CMakeFiles/cryptarch_crypto.dir/cbc.cc.o" "gcc" "src/crypto/CMakeFiles/cryptarch_crypto.dir/cbc.cc.o.d"
  "/root/repo/src/crypto/des.cc" "src/crypto/CMakeFiles/cryptarch_crypto.dir/des.cc.o" "gcc" "src/crypto/CMakeFiles/cryptarch_crypto.dir/des.cc.o.d"
  "/root/repo/src/crypto/idea.cc" "src/crypto/CMakeFiles/cryptarch_crypto.dir/idea.cc.o" "gcc" "src/crypto/CMakeFiles/cryptarch_crypto.dir/idea.cc.o.d"
  "/root/repo/src/crypto/mars.cc" "src/crypto/CMakeFiles/cryptarch_crypto.dir/mars.cc.o" "gcc" "src/crypto/CMakeFiles/cryptarch_crypto.dir/mars.cc.o.d"
  "/root/repo/src/crypto/modes.cc" "src/crypto/CMakeFiles/cryptarch_crypto.dir/modes.cc.o" "gcc" "src/crypto/CMakeFiles/cryptarch_crypto.dir/modes.cc.o.d"
  "/root/repo/src/crypto/rc4.cc" "src/crypto/CMakeFiles/cryptarch_crypto.dir/rc4.cc.o" "gcc" "src/crypto/CMakeFiles/cryptarch_crypto.dir/rc4.cc.o.d"
  "/root/repo/src/crypto/rc6.cc" "src/crypto/CMakeFiles/cryptarch_crypto.dir/rc6.cc.o" "gcc" "src/crypto/CMakeFiles/cryptarch_crypto.dir/rc6.cc.o.d"
  "/root/repo/src/crypto/rijndael.cc" "src/crypto/CMakeFiles/cryptarch_crypto.dir/rijndael.cc.o" "gcc" "src/crypto/CMakeFiles/cryptarch_crypto.dir/rijndael.cc.o.d"
  "/root/repo/src/crypto/twofish.cc" "src/crypto/CMakeFiles/cryptarch_crypto.dir/twofish.cc.o" "gcc" "src/crypto/CMakeFiles/cryptarch_crypto.dir/twofish.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cryptarch_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
