file(REMOVE_RECURSE
  "CMakeFiles/cryptarch_crypto.dir/blowfish.cc.o"
  "CMakeFiles/cryptarch_crypto.dir/blowfish.cc.o.d"
  "CMakeFiles/cryptarch_crypto.dir/catalog.cc.o"
  "CMakeFiles/cryptarch_crypto.dir/catalog.cc.o.d"
  "CMakeFiles/cryptarch_crypto.dir/cbc.cc.o"
  "CMakeFiles/cryptarch_crypto.dir/cbc.cc.o.d"
  "CMakeFiles/cryptarch_crypto.dir/des.cc.o"
  "CMakeFiles/cryptarch_crypto.dir/des.cc.o.d"
  "CMakeFiles/cryptarch_crypto.dir/idea.cc.o"
  "CMakeFiles/cryptarch_crypto.dir/idea.cc.o.d"
  "CMakeFiles/cryptarch_crypto.dir/mars.cc.o"
  "CMakeFiles/cryptarch_crypto.dir/mars.cc.o.d"
  "CMakeFiles/cryptarch_crypto.dir/modes.cc.o"
  "CMakeFiles/cryptarch_crypto.dir/modes.cc.o.d"
  "CMakeFiles/cryptarch_crypto.dir/rc4.cc.o"
  "CMakeFiles/cryptarch_crypto.dir/rc4.cc.o.d"
  "CMakeFiles/cryptarch_crypto.dir/rc6.cc.o"
  "CMakeFiles/cryptarch_crypto.dir/rc6.cc.o.d"
  "CMakeFiles/cryptarch_crypto.dir/rijndael.cc.o"
  "CMakeFiles/cryptarch_crypto.dir/rijndael.cc.o.d"
  "CMakeFiles/cryptarch_crypto.dir/twofish.cc.o"
  "CMakeFiles/cryptarch_crypto.dir/twofish.cc.o.d"
  "libcryptarch_crypto.a"
  "libcryptarch_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cryptarch_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
