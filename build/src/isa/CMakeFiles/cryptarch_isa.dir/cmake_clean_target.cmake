file(REMOVE_RECURSE
  "libcryptarch_isa.a"
)
