# Empty compiler generated dependencies file for cryptarch_isa.
# This may be replaced when dependencies are built.
