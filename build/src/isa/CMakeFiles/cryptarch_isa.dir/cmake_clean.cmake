file(REMOVE_RECURSE
  "CMakeFiles/cryptarch_isa.dir/inst.cc.o"
  "CMakeFiles/cryptarch_isa.dir/inst.cc.o.d"
  "CMakeFiles/cryptarch_isa.dir/machine.cc.o"
  "CMakeFiles/cryptarch_isa.dir/machine.cc.o.d"
  "CMakeFiles/cryptarch_isa.dir/program.cc.o"
  "CMakeFiles/cryptarch_isa.dir/program.cc.o.d"
  "libcryptarch_isa.a"
  "libcryptarch_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cryptarch_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
