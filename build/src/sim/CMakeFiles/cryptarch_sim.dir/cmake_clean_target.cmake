file(REMOVE_RECURSE
  "libcryptarch_sim.a"
)
