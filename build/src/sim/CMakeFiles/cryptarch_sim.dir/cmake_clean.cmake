file(REMOVE_RECURSE
  "CMakeFiles/cryptarch_sim.dir/branch_pred.cc.o"
  "CMakeFiles/cryptarch_sim.dir/branch_pred.cc.o.d"
  "CMakeFiles/cryptarch_sim.dir/cache.cc.o"
  "CMakeFiles/cryptarch_sim.dir/cache.cc.o.d"
  "CMakeFiles/cryptarch_sim.dir/config.cc.o"
  "CMakeFiles/cryptarch_sim.dir/config.cc.o.d"
  "CMakeFiles/cryptarch_sim.dir/pipeline.cc.o"
  "CMakeFiles/cryptarch_sim.dir/pipeline.cc.o.d"
  "libcryptarch_sim.a"
  "libcryptarch_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cryptarch_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
