# Empty dependencies file for cryptarch_sim.
# This may be replaced when dependencies are built.
