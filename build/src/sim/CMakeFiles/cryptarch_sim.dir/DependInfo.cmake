
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/branch_pred.cc" "src/sim/CMakeFiles/cryptarch_sim.dir/branch_pred.cc.o" "gcc" "src/sim/CMakeFiles/cryptarch_sim.dir/branch_pred.cc.o.d"
  "/root/repo/src/sim/cache.cc" "src/sim/CMakeFiles/cryptarch_sim.dir/cache.cc.o" "gcc" "src/sim/CMakeFiles/cryptarch_sim.dir/cache.cc.o.d"
  "/root/repo/src/sim/config.cc" "src/sim/CMakeFiles/cryptarch_sim.dir/config.cc.o" "gcc" "src/sim/CMakeFiles/cryptarch_sim.dir/config.cc.o.d"
  "/root/repo/src/sim/pipeline.cc" "src/sim/CMakeFiles/cryptarch_sim.dir/pipeline.cc.o" "gcc" "src/sim/CMakeFiles/cryptarch_sim.dir/pipeline.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/cryptarch_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/cryptarch_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cryptarch_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
