# Empty dependencies file for cryptarch_ssl.
# This may be replaced when dependencies are built.
