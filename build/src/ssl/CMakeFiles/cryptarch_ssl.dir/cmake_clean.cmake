file(REMOVE_RECURSE
  "CMakeFiles/cryptarch_ssl.dir/rsa.cc.o"
  "CMakeFiles/cryptarch_ssl.dir/rsa.cc.o.d"
  "CMakeFiles/cryptarch_ssl.dir/session.cc.o"
  "CMakeFiles/cryptarch_ssl.dir/session.cc.o.d"
  "libcryptarch_ssl.a"
  "libcryptarch_ssl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cryptarch_ssl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
