file(REMOVE_RECURSE
  "libcryptarch_ssl.a"
)
