file(REMOVE_RECURSE
  "libcryptarch_kernels.a"
)
