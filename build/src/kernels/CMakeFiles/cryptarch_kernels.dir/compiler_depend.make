# Empty compiler generated dependencies file for cryptarch_kernels.
# This may be replaced when dependencies are built.
