
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/blowfish_kernel.cc" "src/kernels/CMakeFiles/cryptarch_kernels.dir/blowfish_kernel.cc.o" "gcc" "src/kernels/CMakeFiles/cryptarch_kernels.dir/blowfish_kernel.cc.o.d"
  "/root/repo/src/kernels/des3_kernel.cc" "src/kernels/CMakeFiles/cryptarch_kernels.dir/des3_kernel.cc.o" "gcc" "src/kernels/CMakeFiles/cryptarch_kernels.dir/des3_kernel.cc.o.d"
  "/root/repo/src/kernels/emit.cc" "src/kernels/CMakeFiles/cryptarch_kernels.dir/emit.cc.o" "gcc" "src/kernels/CMakeFiles/cryptarch_kernels.dir/emit.cc.o.d"
  "/root/repo/src/kernels/idea_kernel.cc" "src/kernels/CMakeFiles/cryptarch_kernels.dir/idea_kernel.cc.o" "gcc" "src/kernels/CMakeFiles/cryptarch_kernels.dir/idea_kernel.cc.o.d"
  "/root/repo/src/kernels/kernel.cc" "src/kernels/CMakeFiles/cryptarch_kernels.dir/kernel.cc.o" "gcc" "src/kernels/CMakeFiles/cryptarch_kernels.dir/kernel.cc.o.d"
  "/root/repo/src/kernels/mars_kernel.cc" "src/kernels/CMakeFiles/cryptarch_kernels.dir/mars_kernel.cc.o" "gcc" "src/kernels/CMakeFiles/cryptarch_kernels.dir/mars_kernel.cc.o.d"
  "/root/repo/src/kernels/rc4_kernel.cc" "src/kernels/CMakeFiles/cryptarch_kernels.dir/rc4_kernel.cc.o" "gcc" "src/kernels/CMakeFiles/cryptarch_kernels.dir/rc4_kernel.cc.o.d"
  "/root/repo/src/kernels/rc6_kernel.cc" "src/kernels/CMakeFiles/cryptarch_kernels.dir/rc6_kernel.cc.o" "gcc" "src/kernels/CMakeFiles/cryptarch_kernels.dir/rc6_kernel.cc.o.d"
  "/root/repo/src/kernels/rijndael_kernel.cc" "src/kernels/CMakeFiles/cryptarch_kernels.dir/rijndael_kernel.cc.o" "gcc" "src/kernels/CMakeFiles/cryptarch_kernels.dir/rijndael_kernel.cc.o.d"
  "/root/repo/src/kernels/twofish_kernel.cc" "src/kernels/CMakeFiles/cryptarch_kernels.dir/twofish_kernel.cc.o" "gcc" "src/kernels/CMakeFiles/cryptarch_kernels.dir/twofish_kernel.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/cryptarch_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/cryptarch_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cryptarch_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
