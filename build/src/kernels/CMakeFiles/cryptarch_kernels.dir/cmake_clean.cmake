file(REMOVE_RECURSE
  "CMakeFiles/cryptarch_kernels.dir/blowfish_kernel.cc.o"
  "CMakeFiles/cryptarch_kernels.dir/blowfish_kernel.cc.o.d"
  "CMakeFiles/cryptarch_kernels.dir/des3_kernel.cc.o"
  "CMakeFiles/cryptarch_kernels.dir/des3_kernel.cc.o.d"
  "CMakeFiles/cryptarch_kernels.dir/emit.cc.o"
  "CMakeFiles/cryptarch_kernels.dir/emit.cc.o.d"
  "CMakeFiles/cryptarch_kernels.dir/idea_kernel.cc.o"
  "CMakeFiles/cryptarch_kernels.dir/idea_kernel.cc.o.d"
  "CMakeFiles/cryptarch_kernels.dir/kernel.cc.o"
  "CMakeFiles/cryptarch_kernels.dir/kernel.cc.o.d"
  "CMakeFiles/cryptarch_kernels.dir/mars_kernel.cc.o"
  "CMakeFiles/cryptarch_kernels.dir/mars_kernel.cc.o.d"
  "CMakeFiles/cryptarch_kernels.dir/rc4_kernel.cc.o"
  "CMakeFiles/cryptarch_kernels.dir/rc4_kernel.cc.o.d"
  "CMakeFiles/cryptarch_kernels.dir/rc6_kernel.cc.o"
  "CMakeFiles/cryptarch_kernels.dir/rc6_kernel.cc.o.d"
  "CMakeFiles/cryptarch_kernels.dir/rijndael_kernel.cc.o"
  "CMakeFiles/cryptarch_kernels.dir/rijndael_kernel.cc.o.d"
  "CMakeFiles/cryptarch_kernels.dir/twofish_kernel.cc.o"
  "CMakeFiles/cryptarch_kernels.dir/twofish_kernel.cc.o.d"
  "libcryptarch_kernels.a"
  "libcryptarch_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cryptarch_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
