/**
 * @file
 * Validation of the Blowfish key-setup kernel: after a run, the
 * machine's P-array and S-box memory must equal the reference key
 * schedule, and a subsequent encryption kernel run on the produced
 * tables must encrypt correctly.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "crypto/blowfish.hh"
#include "crypto/cbc.hh"
#include "kernels/kernel.hh"
#include "util/bitops.hh"
#include "util/xorshift.hh"

namespace
{

using namespace cryptarch;
using kernels::KernelVariant;
using util::Xorshift64;

class BlowfishSetup : public ::testing::TestWithParam<KernelVariant>
{};

TEST_P(BlowfishSetup, ProducesReferenceKeySchedule)
{
    Xorshift64 rng(0x5E7);
    auto key = rng.bytes(16);

    crypto::Blowfish ref;
    ref.setKey(key);

    auto build = kernels::buildBlowfishSetupKernel(GetParam(), key);
    isa::Machine m;
    for (const auto &[addr, bytes] : build.memInit)
        m.writeMem(addr, bytes);
    auto stats = m.run(build.program, nullptr, 1ull << 28);

    // Blowfish setup is the work of ~521 block encryptions; anything
    // dramatically smaller means the kernel skipped work.
    EXPECT_GT(stats.instructions, 50000u) << build.name;

    // P-array (18 words at the subkey region).
    for (int i = 0; i < 18; i++) {
        EXPECT_EQ(m.read32(0x8000 + 4 * i), ref.pArray()[i])
            << "P[" << i << "]";
    }
    // S-boxes (4 x 256 words on their 1 KB frames).
    for (int box = 0; box < 4; box++) {
        for (int i = 0; i < 256; i += 17) {
            ASSERT_EQ(m.read32(0x1000 + 0x400 * box + 4 * i),
                      ref.sBoxes()[box][i])
                << "S" << box << "[" << i << "]";
        }
    }
}

TEST_P(BlowfishSetup, SetupFeedsEncryptKernel)
{
    Xorshift64 rng(0x5E8);
    auto key = rng.bytes(16);
    auto iv = rng.bytes(8);
    auto pt = rng.bytes(64);

    // Run setup, then install ONLY the encrypt kernel's non-table
    // state (IV, input) on the same machine and run it: the tables
    // produced by the setup kernel must carry the session.
    auto setup = kernels::buildBlowfishSetupKernel(GetParam(), key);
    isa::Machine m;
    for (const auto &[addr, bytes] : setup.memInit)
        m.writeMem(addr, bytes);
    m.run(setup.program, nullptr, 1ull << 28);

    auto enc = kernels::buildKernel(crypto::CipherId::Blowfish,
                                    GetParam(), key, iv, pt.size());
    for (const auto &[addr, bytes] : enc.memInit) {
        if (addr >= 0x9000) // IV only; keep kernel-produced tables/P
            m.writeMem(addr, bytes);
    }
    m.writeMem(enc.inAddr, kernels::toWordImage(crypto::CipherId::Blowfish,
                                                pt));
    m.run(enc.program, nullptr, 1ull << 28);

    crypto::Blowfish ref;
    ref.setKey(key);
    crypto::CbcEncryptor cbc(ref, iv);
    auto expect = cbc.encrypt(pt);
    auto got = kernels::fromWordImage(crypto::CipherId::Blowfish,
                                      m.readMem(enc.outAddr, pt.size()));
    EXPECT_EQ(got, expect);
}

INSTANTIATE_TEST_SUITE_P(Variants, BlowfishSetup,
                         ::testing::Values(KernelVariant::BaselineNoRot,
                                           KernelVariant::BaselineRot,
                                           KernelVariant::Optimized),
                         [](const auto &info) {
                             std::string n =
                                 kernels::variantName(info.param);
                             n.erase(std::remove(n.begin(), n.end(), '-'),
                                     n.end());
                             return n;
                         });

} // namespace
