/**
 * @file
 * Cross-validation of every CryptISA kernel against the reference
 * ciphers: each (cipher, variant) pair must produce byte-identical CBC
 * ciphertext for randomized keys, IVs and multi-block messages.
 */

#include <gtest/gtest.h>

#include "crypto/cbc.hh"
#include "kernels/kernel.hh"
#include "util/hex.hh"
#include "util/xorshift.hh"

namespace
{

using namespace cryptarch;
using crypto::CipherId;
using kernels::KernelBuild;
using kernels::KernelDirection;
using kernels::KernelVariant;
using util::Xorshift64;

/** Reference CBC (or keystream) processing of a whole session. */
std::vector<uint8_t>
referenceProcess(CipherId id, std::span<const uint8_t> key,
                 std::span<const uint8_t> iv,
                 const std::vector<uint8_t> &in, KernelDirection dir)
{
    if (id == CipherId::RC4) {
        auto rc4 = crypto::makeStreamCipher(id);
        rc4->setKey(key);
        std::vector<uint8_t> out(in.size());
        rc4->process(in.data(), out.data(), in.size());
        return out;
    }
    auto cipher = crypto::makeBlockCipher(id);
    cipher->setKey(key);
    if (dir == KernelDirection::Encrypt) {
        crypto::CbcEncryptor enc(*cipher, iv);
        return enc.encrypt(in);
    }
    crypto::CbcDecryptor dec(*cipher, iv);
    return dec.decrypt(in);
}

/** Run the kernel on a machine and return the raw ciphertext bytes. */
std::vector<uint8_t>
kernelEncrypt(const KernelBuild &build, const std::vector<uint8_t> &pt)
{
    isa::Machine m;
    auto image = kernels::toWordImage(build.cipher, pt);
    build.install(m, image);
    m.run(build.program, nullptr, 1ull << 28);
    return kernels::fromWordImage(build.cipher, build.readOutput(m));
}

struct KernelCase
{
    CipherId id;
    KernelVariant variant;
    KernelDirection direction;
};

std::string
caseName(const ::testing::TestParamInfo<KernelCase> &info)
{
    std::string suffix;
    switch (info.param.variant) {
      case KernelVariant::BaselineNoRot: suffix = "norot"; break;
      case KernelVariant::BaselineRot: suffix = "rot"; break;
      case KernelVariant::Optimized: suffix = "opt"; break;
      case KernelVariant::OptimizedGrp: suffix = "grp"; break;
      case KernelVariant::OptimizedFused: suffix = "fused"; break;
    }
    return crypto::cipherInfo(info.param.id).name + "_" + suffix
        + (info.param.direction == KernelDirection::Decrypt ? "_dec"
                                                            : "");
}

std::vector<KernelCase>
allCases()
{
    std::vector<KernelCase> cases;
    for (const auto &info : crypto::cipherCatalog()) {
        for (auto v : {KernelVariant::BaselineNoRot,
                       KernelVariant::BaselineRot,
                       KernelVariant::Optimized,
                       KernelVariant::OptimizedGrp,
                       KernelVariant::OptimizedFused}) {
            cases.push_back({info.id, v, KernelDirection::Encrypt});
            cases.push_back({info.id, v, KernelDirection::Decrypt});
        }
    }
    return cases;
}

class KernelValidation : public ::testing::TestWithParam<KernelCase>
{};

TEST_P(KernelValidation, MatchesReferenceCbc)
{
    const auto [id, variant, direction] = GetParam();
    const auto &info = crypto::cipherInfo(id);
    Xorshift64 rng(0xC0DE + static_cast<int>(id) * 7
                   + static_cast<int>(variant));

    for (int trial = 0; trial < 3; trial++) {
        auto key = rng.bytes(info.keyBits / 8);
        auto iv = rng.bytes(info.isStream ? 0 : info.blockBytes);
        size_t blocks = 3 + trial * 5;
        auto data = rng.bytes(info.blockBytes * blocks);

        auto build = kernels::buildKernel(id, variant, key, iv,
                                          data.size(), direction);
        auto expect = referenceProcess(id, key, iv, data, direction);
        auto got = kernelEncrypt(build, data);
        ASSERT_EQ(util::toHex(got), util::toHex(expect))
            << build.name << " trial " << trial;
    }
}

// End-to-end: the decrypt kernel must invert the encrypt kernel.
TEST_P(KernelValidation, DecryptKernelInvertsEncryptKernel)
{
    const auto [id, variant, direction] = GetParam();
    if (direction == KernelDirection::Decrypt)
        GTEST_SKIP() << "pair covered from the encrypt case";
    const auto &info = crypto::cipherInfo(id);
    Xorshift64 rng(0xD00D + static_cast<int>(id));
    auto key = rng.bytes(info.keyBits / 8);
    auto iv = rng.bytes(info.isStream ? 0 : info.blockBytes);
    auto pt = rng.bytes(info.blockBytes * 6);

    auto enc = kernels::buildKernel(id, variant, key, iv, pt.size(),
                                    KernelDirection::Encrypt);
    auto ct = kernelEncrypt(enc, pt);
    auto dec = kernels::buildKernel(id, variant, key, iv, pt.size(),
                                    KernelDirection::Decrypt);
    auto back = kernelEncrypt(dec, ct);
    EXPECT_EQ(util::toHex(back), util::toHex(pt)) << enc.name;
}

TEST_P(KernelValidation, CategoriesCoverProgram)
{
    const auto [id, variant, direction] = GetParam();
    (void)direction;
    const auto &info = crypto::cipherInfo(id);
    Xorshift64 rng(7);
    auto key = rng.bytes(info.keyBits / 8);
    auto iv = rng.bytes(info.isStream ? 0 : info.blockBytes);
    auto build = kernels::buildKernel(id, variant, key, iv,
                                      info.blockBytes * 4);
    EXPECT_EQ(build.categories.size(), build.program.size());
}

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelValidation,
                         ::testing::ValuesIn(allCases()), caseName);

// Variant invariants: the optimized kernel must be strictly smaller
// (static instructions per block) than the rotate-less baseline.
TEST(KernelVariants, OptimizedIsSmallerThanBaseline)
{
    Xorshift64 rng(11);
    for (const auto &info : crypto::cipherCatalog()) {
        auto key = rng.bytes(info.keyBits / 8);
        auto iv = rng.bytes(info.isStream ? 0 : info.blockBytes);
        size_t bytes = info.blockBytes * 4;
        auto norot = kernels::buildKernel(
            info.id, KernelVariant::BaselineNoRot, key, iv, bytes);
        auto opt = kernels::buildKernel(info.id, KernelVariant::Optimized,
                                        key, iv, bytes);
        EXPECT_LT(opt.program.size(), norot.program.size()) << info.name;
    }
}

} // namespace
