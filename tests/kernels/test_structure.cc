/**
 * @file
 * Structural tests on the generated kernels: which opcodes each
 * variant may use, the paper's operation-expansion counts (3-insn
 * constant rotates, 4-insn variable rotates, 3-insn S-box loads), and
 * per-cipher operation-mix expectations from Figure 7.
 */

#include <gtest/gtest.h>

#include <set>

#include "kernels/kernel.hh"
#include "util/xorshift.hh"

namespace
{

using namespace cryptarch;
using crypto::CipherId;
using isa::Opcode;
using kernels::KernelVariant;
using kernels::OpCategory;
using util::Xorshift64;

kernels::KernelBuild
build(CipherId id, KernelVariant v, size_t blocks = 4)
{
    const auto &info = crypto::cipherInfo(id);
    Xorshift64 rng(99);
    auto key = rng.bytes(info.keyBits / 8);
    auto iv = rng.bytes(info.isStream ? 0 : info.blockBytes);
    return kernels::buildKernel(id, v, key, iv,
                                info.blockBytes * blocks);
}

std::set<Opcode>
opcodesOf(const kernels::KernelBuild &b)
{
    std::set<Opcode> ops;
    for (const auto &inst : b.program.insts)
        ops.insert(inst.op);
    return ops;
}

bool
usesAny(const std::set<Opcode> &ops, std::initializer_list<Opcode> which)
{
    for (auto op : which) {
        if (ops.count(op))
            return true;
    }
    return false;
}

std::vector<CipherId>
all()
{
    std::vector<CipherId> ids;
    for (const auto &i : crypto::cipherCatalog())
        ids.push_back(i.id);
    return ids;
}

TEST(KernelStructure, BaselineNoRotNeverUsesExtensions)
{
    for (auto id : all()) {
        auto ops = opcodesOf(build(id, KernelVariant::BaselineNoRot));
        EXPECT_FALSE(usesAny(ops,
                             {Opcode::Rol, Opcode::Ror, Opcode::Rol32,
                              Opcode::Ror32, Opcode::Rolx32,
                              Opcode::Rorx32, Opcode::Mulmod,
                              Opcode::Sbox, Opcode::Xbox, Opcode::Grp}))
            << crypto::cipherInfo(id).name;
    }
}

TEST(KernelStructure, BaselineRotUsesOnlyRotates)
{
    for (auto id : all()) {
        auto ops = opcodesOf(build(id, KernelVariant::BaselineRot));
        EXPECT_FALSE(usesAny(ops,
                             {Opcode::Rolx32, Opcode::Rorx32,
                              Opcode::Mulmod, Opcode::Sbox,
                              Opcode::Xbox, Opcode::Grp}))
            << crypto::cipherInfo(id).name;
    }
}

TEST(KernelStructure, RotateUsersGainRotates)
{
    // The ciphers the paper singles out as rotate users must emit
    // rotate instructions in the BaselineRot variant.
    for (auto id : {CipherId::MARS, CipherId::RC6, CipherId::Twofish,
                    CipherId::TripleDES, CipherId::Blowfish}) {
        auto ops = opcodesOf(build(id, KernelVariant::BaselineRot));
        bool has_rot =
            usesAny(ops, {Opcode::Rol32, Opcode::Ror32, Opcode::Rol,
                          Opcode::Ror});
        // Blowfish has no rotates at all in its kernel.
        if (id == CipherId::Blowfish)
            EXPECT_FALSE(has_rot);
        else
            EXPECT_TRUE(has_rot) << crypto::cipherInfo(id).name;
    }
}

TEST(KernelStructure, OptimizedUsesTheRightExtensions)
{
    // SBOX: the substitution ciphers. MULMOD: IDEA only. XBOX: 3DES
    // only. ROLX: Twofish (the paper's combining opportunity).
    auto has = [](CipherId id, Opcode op) {
        return opcodesOf(build(id, KernelVariant::Optimized)).count(op)
            > 0;
    };
    for (auto id : {CipherId::Blowfish, CipherId::Rijndael,
                    CipherId::Twofish, CipherId::MARS,
                    CipherId::TripleDES, CipherId::RC4}) {
        EXPECT_TRUE(has(id, Opcode::Sbox))
            << crypto::cipherInfo(id).name;
    }
    EXPECT_FALSE(has(CipherId::IDEA, Opcode::Sbox));
    EXPECT_FALSE(has(CipherId::RC6, Opcode::Sbox));

    for (auto id : all()) {
        EXPECT_EQ(has(id, Opcode::Mulmod), id == CipherId::IDEA)
            << crypto::cipherInfo(id).name;
        EXPECT_EQ(has(id, Opcode::Xbox), id == CipherId::TripleDES)
            << crypto::cipherInfo(id).name;
        EXPECT_FALSE(has(id, Opcode::Grp))
            << crypto::cipherInfo(id).name;
    }
    EXPECT_TRUE(has(CipherId::Twofish, Opcode::Rolx32));
}

TEST(KernelStructure, GrpVariantUsesGrpOnlyFor3Des)
{
    for (auto id : all()) {
        auto ops = opcodesOf(build(id, KernelVariant::OptimizedGrp));
        EXPECT_EQ(ops.count(Opcode::Grp) > 0, id == CipherId::TripleDES)
            << crypto::cipherInfo(id).name;
        EXPECT_EQ(ops.count(Opcode::Xbox), 0u)
            << crypto::cipherInfo(id).name;
    }
}

TEST(KernelStructure, VariantSizeOrdering)
{
    // norot >= rot >= optimized in static size, for every cipher.
    for (auto id : all()) {
        auto norot = build(id, KernelVariant::BaselineNoRot);
        auto rot = build(id, KernelVariant::BaselineRot);
        auto opt = build(id, KernelVariant::Optimized);
        EXPECT_GE(norot.program.size(), rot.program.size())
            << crypto::cipherInfo(id).name;
        // RC6's only gain beyond rotates is the faster multiply, an
        // equal-count substitution, so allow equality there.
        if (id == CipherId::RC6)
            EXPECT_GE(rot.program.size(), opt.program.size());
        else
            EXPECT_GT(rot.program.size(), opt.program.size())
                << crypto::cipherInfo(id).name;
    }
}

TEST(KernelStructure, RotateSynthesisCosts)
{
    // Mars uses fixed rotates heavily: the rotate-less kernel must pay
    // about 2 extra instructions per rotate relative to BaselineRot.
    auto norot = build(CipherId::MARS, KernelVariant::BaselineNoRot, 1);
    auto rot = build(CipherId::MARS, KernelVariant::BaselineRot, 1);
    size_t rotates = 0;
    for (const auto &inst : rot.program.insts) {
        if (inst.op == Opcode::Rol32 || inst.op == Opcode::Ror32)
            rotates++;
    }
    ASSERT_GT(rotates, 30u); // 24 mixing + 16*4 core rotates per block
    size_t delta = norot.program.size() - rot.program.size();
    // Constant rotates add 2, variable rotates add 3.
    EXPECT_GE(delta, 2 * rotates);
    EXPECT_LE(delta, 3 * rotates);
}

TEST(KernelStructure, Figure7FamiliesInStaticMix)
{
    // Static category counts already show the paper's two families.
    auto fraction = [](CipherId id, OpCategory cat) {
        auto b = build(id, KernelVariant::BaselineRot, 2);
        size_t n = 0;
        for (auto c : b.categories)
            n += (c == cat);
        return static_cast<double>(n) / b.categories.size();
    };
    // Computational family: IDEA multiplies dominate.
    EXPECT_GT(fraction(CipherId::IDEA, OpCategory::Multiply), 0.4);
    EXPECT_EQ(fraction(CipherId::IDEA, OpCategory::Substitution), 0.0);
    // Substitution family.
    for (auto id : {CipherId::Blowfish, CipherId::Rijndael,
                    CipherId::Twofish, CipherId::TripleDES}) {
        EXPECT_GT(fraction(id, OpCategory::Substitution), 0.35)
            << crypto::cipherInfo(id).name;
    }
    // Only 3DES permutes.
    for (auto id : all()) {
        double f = fraction(id, OpCategory::Permute);
        if (id == CipherId::TripleDES) {
            EXPECT_GT(f, 0.0);
        } else {
            EXPECT_EQ(f, 0.0) << crypto::cipherInfo(id).name;
        }
    }
}

TEST(KernelStructure, SboxTablesAreFrameAligned)
{
    // Every memory region that an optimized kernel's SBOX reads must
    // start on a 1 KB boundary (the SBOX addressing requirement).
    for (auto id : all()) {
        auto b = build(id, KernelVariant::Optimized);
        bool uses_sbox = false;
        for (const auto &inst : b.program.insts)
            uses_sbox |= inst.op == Opcode::Sbox;
        if (!uses_sbox)
            continue;
        for (const auto &[addr, bytes] : b.memInit) {
            if (addr >= 0x1000 && addr < 0x8000) { // table region
                EXPECT_EQ(addr % 1024, 0u)
                    << crypto::cipherInfo(id).name;
            }
        }
    }
}

TEST(KernelStructure, ProgramsTerminateWithHalt)
{
    for (auto id : all()) {
        for (auto v : {KernelVariant::BaselineNoRot,
                       KernelVariant::BaselineRot,
                       KernelVariant::Optimized}) {
            auto b = build(id, v);
            ASSERT_FALSE(b.program.insts.empty());
            EXPECT_EQ(b.program.insts.back().op, Opcode::Halt)
                << b.name;
        }
    }
}

} // namespace
