/**
 * @file
 * Verification-layer tests: the reference oracle round-trips and
 * rejects corrupted kernel output with full context, and the
 * fault-injection harness classifies deterministically.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "crypto/cipher.hh"
#include "isa/machine.hh"
#include "kernels/kernel.hh"
#include "util/xorshift.hh"
#include "verify/faults.hh"
#include "verify/oracle.hh"

namespace
{

using namespace cryptarch;
using kernels::KernelDirection;
using kernels::KernelVariant;
using verify::FaultOutcome;
using verify::FaultSite;

/** The standard deterministic session material (mirrors the driver). */
struct Session
{
    std::vector<uint8_t> key, iv, plaintext;

    explicit Session(crypto::CipherId id, size_t bytes)
    {
        const auto &info = crypto::cipherInfo(id);
        util::Xorshift64 rng(0xBE7CB + static_cast<uint64_t>(id));
        key = rng.bytes(info.keyBits / 8);
        iv = rng.bytes(info.isStream ? 0 : info.blockBytes);
        plaintext = rng.bytes(bytes);
    }
};

TEST(Oracle, ReferenceProcessRoundTripsBlockCipher)
{
    Session s(crypto::CipherId::Rijndael, 256);
    auto ct = verify::referenceProcess(crypto::CipherId::Rijndael, s.key,
                                       s.iv, s.plaintext,
                                       KernelDirection::Encrypt);
    EXPECT_NE(ct, s.plaintext);
    auto rt = verify::referenceProcess(crypto::CipherId::Rijndael, s.key,
                                       s.iv, ct,
                                       KernelDirection::Decrypt);
    EXPECT_EQ(rt, s.plaintext);
}

TEST(Oracle, ReferenceProcessRc4IsAnInvolution)
{
    Session s(crypto::CipherId::RC4, 256);
    auto ct = verify::referenceProcess(crypto::CipherId::RC4, s.key, s.iv,
                                       s.plaintext,
                                       KernelDirection::Encrypt);
    EXPECT_NE(ct, s.plaintext);
    // XOR keystream: processing again in either direction recovers.
    auto rt = verify::referenceProcess(crypto::CipherId::RC4, s.key, s.iv,
                                       ct, KernelDirection::Decrypt);
    EXPECT_EQ(rt, s.plaintext);
}

TEST(Oracle, VerifyErrorCarriesContext)
{
    verify::VerifyError e("rc4-opt", 17, 0xAB, 0xCD);
    EXPECT_EQ(e.kernel(), "rc4-opt");
    EXPECT_EQ(e.offset(), 17u);
    EXPECT_EQ(e.expected(), 0xAB);
    EXPECT_EQ(e.actual(), 0xCD);
    EXPECT_NE(std::string(e.what()).find("rc4-opt"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("17"), std::string::npos);
}

TEST(Oracle, AcceptsCleanRunRejectsCorruptedOutput)
{
    const auto id = crypto::CipherId::RC4;
    Session s(id, 128);
    auto build = kernels::buildKernel(id, KernelVariant::Optimized, s.key,
                                      s.iv, s.plaintext.size());
    isa::Machine m;
    build.install(m, kernels::toWordImage(id, s.plaintext));
    m.run(build.program);
    EXPECT_NO_THROW(verify::verifyKernelOutput(build, m, s.key, s.iv,
                                               s.plaintext));

    // Flip one bit of the output buffer: the oracle must name it.
    auto byte = m.readMem(build.outAddr, 1);
    m.writeMem(build.outAddr,
               {static_cast<uint8_t>(byte[0] ^ 0x01)});
    try {
        verify::verifyKernelOutput(build, m, s.key, s.iv, s.plaintext);
        FAIL() << "corrupted output accepted";
    } catch (const verify::VerifyError &e) {
        EXPECT_EQ(e.kernel(), build.name);
        EXPECT_EQ(e.offset(), 0u);
        EXPECT_EQ(static_cast<uint8_t>(e.expected() ^ e.actual()), 0x01);
    }
}

TEST(Faults, SameSeedReproducesSameClassification)
{
    const auto a = verify::injectAndClassify(
        crypto::CipherId::RC4, KernelVariant::Optimized,
        FaultSite::Register, /*seed=*/7, /*session_bytes=*/128);
    const auto b = verify::injectAndClassify(
        crypto::CipherId::RC4, KernelVariant::Optimized,
        FaultSite::Register, /*seed=*/7, /*session_bytes=*/128);
    EXPECT_EQ(a.outcome, b.outcome);
    EXPECT_EQ(a.detail, b.detail);
}

TEST(Faults, TraceByteFaultsAreAlwaysDetected)
{
    // Single-bit trace corruption always trips the stream checksum (or
    // an earlier header/consistency check) — nothing is masked.
    for (uint64_t seed = 0; seed < 4; seed++) {
        auto r = verify::injectAndClassify(
            crypto::CipherId::RC4, KernelVariant::Optimized,
            FaultSite::TraceByte, seed, 128);
        EXPECT_EQ(r.outcome, FaultOutcome::DetectedTrace)
            << "seed " << seed << ": "
            << verify::faultOutcomeName(r.outcome);
        EXPECT_FALSE(r.detail.empty());
    }
}

TEST(Faults, SweepTalliesEveryInjection)
{
    auto tally = verify::injectionSweep(
        crypto::CipherId::Rijndael, KernelVariant::Optimized,
        FaultSite::Memory, /*seed0=*/100, /*count=*/6,
        /*session_bytes=*/128);
    EXPECT_EQ(tally.injections, 6u);
    EXPECT_EQ(tally.detectedTrap + tally.detectedOracle
                  + tally.detectedTrace + tally.masked,
              tally.injections);
}

TEST(Faults, CoverageMath)
{
    verify::FaultTally t;
    EXPECT_EQ(t.coverage(), 0.0); // no injections: defined as 0
    t.add(FaultOutcome::DetectedTrap);
    t.add(FaultOutcome::DetectedOracle);
    t.add(FaultOutcome::DetectedTrace);
    t.add(FaultOutcome::Masked);
    EXPECT_EQ(t.injections, 4u);
    EXPECT_EQ(t.masked, 1u);
    EXPECT_DOUBLE_EQ(t.coverage(), 0.75);
}

TEST(Faults, NamesAreStable)
{
    EXPECT_STREQ(verify::faultSiteName(FaultSite::Register), "register");
    EXPECT_STREQ(verify::faultSiteName(FaultSite::Memory), "memory");
    EXPECT_STREQ(verify::faultSiteName(FaultSite::TraceByte), "trace");
    EXPECT_STREQ(verify::faultOutcomeName(FaultOutcome::DetectedTrap),
                 "trap");
    EXPECT_STREQ(verify::faultOutcomeName(FaultOutcome::Masked),
                 "masked");
}

} // namespace
