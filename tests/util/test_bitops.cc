/** @file Unit tests for util/bitops.hh. */

#include <gtest/gtest.h>

#include "util/bitops.hh"

namespace
{

using namespace cryptarch::util;

TEST(Bitops, Rotl32Basic)
{
    EXPECT_EQ(rotl32(0x80000000u, 1), 1u);
    EXPECT_EQ(rotl32(0x12345678u, 0), 0x12345678u);
    EXPECT_EQ(rotl32(0x12345678u, 32), 0x12345678u);
    EXPECT_EQ(rotl32(0x12345678u, 8), 0x34567812u);
}

TEST(Bitops, Rotr32Basic)
{
    EXPECT_EQ(rotr32(1u, 1), 0x80000000u);
    EXPECT_EQ(rotr32(0x12345678u, 0), 0x12345678u);
    EXPECT_EQ(rotr32(0x12345678u, 32), 0x12345678u);
    EXPECT_EQ(rotr32(0x12345678u, 8), 0x78123456u);
}

TEST(Bitops, Rot32Inverse)
{
    for (unsigned n = 0; n < 64; n++) {
        uint32_t v = 0xDEADBEEF + n;
        EXPECT_EQ(rotr32(rotl32(v, n), n), v) << "n=" << n;
    }
}

TEST(Bitops, Rotl64Basic)
{
    EXPECT_EQ(rotl64(0x8000000000000000ull, 1), 1ull);
    EXPECT_EQ(rotl64(0x0123456789ABCDEFull, 16), 0x456789ABCDEF0123ull);
    EXPECT_EQ(rotl64(0x0123456789ABCDEFull, 64), 0x0123456789ABCDEFull);
}

TEST(Bitops, Rot64Inverse)
{
    for (unsigned n = 0; n < 128; n++) {
        uint64_t v = 0xFEEDFACECAFEBEEFull + n;
        EXPECT_EQ(rotr64(rotl64(v, n), n), v) << "n=" << n;
    }
}

TEST(Bitops, ByteOf)
{
    EXPECT_EQ(byteOf(0x12345678u, 0), 0x78);
    EXPECT_EQ(byteOf(0x12345678u, 1), 0x56);
    EXPECT_EQ(byteOf(0x12345678u, 2), 0x34);
    EXPECT_EQ(byteOf(0x12345678u, 3), 0x12);
    // Index wraps modulo 4.
    EXPECT_EQ(byteOf(0x12345678u, 4), 0x78);
}

TEST(Bitops, LittleEndianRoundtrip)
{
    uint8_t buf[4];
    store32le(buf, 0xAABBCCDDu);
    EXPECT_EQ(buf[0], 0xDD);
    EXPECT_EQ(buf[3], 0xAA);
    EXPECT_EQ(load32le(buf), 0xAABBCCDDu);
}

TEST(Bitops, BigEndianRoundtrip)
{
    uint8_t buf[8];
    store32be(buf, 0xAABBCCDDu);
    EXPECT_EQ(buf[0], 0xAA);
    EXPECT_EQ(buf[3], 0xDD);
    EXPECT_EQ(load32be(buf), 0xAABBCCDDu);

    store64be(buf, 0x0102030405060708ull);
    EXPECT_EQ(buf[0], 0x01);
    EXPECT_EQ(buf[7], 0x08);
    EXPECT_EQ(load64be(buf), 0x0102030405060708ull);
}

} // namespace
