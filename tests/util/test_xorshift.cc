/** @file Tests for the xorshift64* generator's sampling helpers. */

#include <gtest/gtest.h>

#include <array>
#include <cstdint>

#include "util/xorshift.hh"

namespace
{

using cryptarch::util::Xorshift64;

TEST(Xorshift, DeterministicForSeed)
{
    Xorshift64 a(42), b(42);
    for (int i = 0; i < 100; i++)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Xorshift, NextBelowStaysInRange)
{
    Xorshift64 rng(1);
    for (uint64_t bound : {1ull, 2ull, 7ull, 1000ull, 1ull << 40}) {
        for (int i = 0; i < 200; i++)
            EXPECT_LT(rng.nextBelow(bound), bound);
    }
}

// The bias of `next() % bound` is proportional to bound / 2^64, so the
// regression bound is chosen where it is unmissable: for
// bound = 3·2^62, plain modulo maps the two ranges [0, 2^62) and
// [3·2^62, 2^64) onto the low quarter, so P(x < 2^62) = 1/2 instead of
// the uniform 1/3. Rejection sampling must restore 1/3. With 30000
// draws the standard error is ~0.003; a biased generator sits ~60
// sigma away from the assertion band.
TEST(Xorshift, NextBelowRejectsModuloBias)
{
    Xorshift64 rng(0xB1A5);
    const uint64_t bound = 3ull << 62;
    const uint64_t quarter = 1ull << 62;
    const int draws = 30000;
    int low = 0;
    for (int i = 0; i < draws; i++)
        if (rng.nextBelow(bound) < quarter)
            low++;
    double frac = static_cast<double>(low) / draws;
    EXPECT_NEAR(frac, 1.0 / 3.0, 0.02);
}

// Small-bound uniformity: every residue of a bound that does not
// divide 2^64 gets an equal share.
TEST(Xorshift, NextBelowUniformOverSmallBound)
{
    Xorshift64 rng(0x5EED);
    const uint64_t bound = 10;
    const int draws = 100000;
    std::array<int, 10> counts{};
    for (int i = 0; i < draws; i++)
        counts[rng.nextBelow(bound)]++;
    for (int c : counts)
        EXPECT_NEAR(static_cast<double>(c) / draws, 0.1, 0.01);
}

TEST(Xorshift, NextDoubleInUnitInterval)
{
    Xorshift64 rng(7);
    double sum = 0;
    const int draws = 100000;
    for (int i = 0; i < draws; i++) {
        double d = rng.nextDouble();
        ASSERT_GE(d, 0.0);
        ASSERT_LT(d, 1.0);
        sum += d;
    }
    // Mean of U[0,1) with 1e5 draws: sigma ~ 0.0009.
    EXPECT_NEAR(sum / draws, 0.5, 0.01);
}

} // namespace
