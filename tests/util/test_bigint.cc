/** @file Unit tests for the multiprecision integer substrate. */

#include <gtest/gtest.h>

#include "util/bigint.hh"
#include "util/xorshift.hh"

namespace
{

using cryptarch::util::BigInt;
using cryptarch::util::Montgomery;
using cryptarch::util::Xorshift64;

TEST(BigInt, HexRoundtrip)
{
    const std::string hex = "123456789abcdef0fedcba9876543210";
    EXPECT_EQ(BigInt::fromHex(hex).toHex(), hex);
    EXPECT_EQ(BigInt(0).toHex(), "0");
    EXPECT_EQ(BigInt(0x1234).toHex(), "1234");
}

TEST(BigInt, CompareAndBits)
{
    BigInt a = BigInt::fromHex("ffffffffffffffff");
    BigInt b = BigInt::fromHex("10000000000000000");
    EXPECT_LT(a, b);
    EXPECT_EQ(a.bitLength(), 64u);
    EXPECT_EQ(b.bitLength(), 65u);
    EXPECT_TRUE(b.bit(64));
    EXPECT_FALSE(b.bit(63));
    EXPECT_EQ(BigInt(0).bitLength(), 0u);
}

TEST(BigInt, AddSubIdentity)
{
    Xorshift64 rng(42);
    for (int i = 0; i < 50; i++) {
        BigInt a = BigInt::randomBits(200, rng);
        BigInt b = BigInt::randomBits(180, rng);
        BigInt sum = BigInt::add(a, b);
        EXPECT_EQ(BigInt::sub(sum, b), a);
        EXPECT_EQ(BigInt::sub(sum, a), b);
    }
}

TEST(BigInt, MulAgainstSmall)
{
    EXPECT_EQ(BigInt::mul(BigInt(0xFFFFFFFFull), BigInt(0xFFFFFFFFull))
                  .toHex(),
              "fffffffe00000001");
    EXPECT_EQ(BigInt::mul(BigInt(0), BigInt(12345)).toHex(), "0");
}

TEST(BigInt, MulCommutesAndDistributes)
{
    Xorshift64 rng(7);
    for (int i = 0; i < 20; i++) {
        BigInt a = BigInt::randomBits(300, rng);
        BigInt b = BigInt::randomBits(150, rng);
        BigInt c = BigInt::randomBits(220, rng);
        EXPECT_EQ(BigInt::mul(a, b), BigInt::mul(b, a));
        EXPECT_EQ(BigInt::mul(a, BigInt::add(b, c)),
                  BigInt::add(BigInt::mul(a, b), BigInt::mul(a, c)));
    }
}

TEST(BigInt, Shifts)
{
    BigInt a = BigInt::fromHex("deadbeef");
    EXPECT_EQ(BigInt::shl(a, 4).toHex(), "deadbeef0");
    EXPECT_EQ(BigInt::shr(BigInt::shl(a, 100), 100), a);
    EXPECT_EQ(BigInt::shr(a, 32).toHex(), "0");
}

TEST(BigInt, DivModBasic)
{
    auto dm = BigInt::divmod(BigInt(100), BigInt(7));
    EXPECT_EQ(dm.quot.low64(), 14u);
    EXPECT_EQ(dm.rem.low64(), 2u);
    EXPECT_THROW(BigInt::divmod(BigInt(1), BigInt(0)), std::domain_error);
}

TEST(BigInt, DivModReconstruction)
{
    Xorshift64 rng(99);
    for (int i = 0; i < 30; i++) {
        BigInt a = BigInt::randomBits(400, rng);
        BigInt b = BigInt::randomBits(150, rng);
        auto dm = BigInt::divmod(a, b);
        EXPECT_LT(dm.rem, b);
        EXPECT_EQ(BigInt::add(BigInt::mul(dm.quot, b), dm.rem), a);
    }
}

TEST(BigInt, ModExpSmallNumbers)
{
    // 3^10 mod 1000 = 59049 mod 1000 = 49
    EXPECT_EQ(BigInt::modExp(BigInt(3), BigInt(10), BigInt(1000)).low64(),
              49u);
    // Fermat: a^(p-1) = 1 mod p for prime p = 65537
    EXPECT_EQ(
        BigInt::modExp(BigInt(12345), BigInt(65536), BigInt(65537)).low64(),
        1u);
}

TEST(BigInt, ModExpMatchesNaive)
{
    Xorshift64 rng(1234);
    for (int i = 0; i < 10; i++) {
        uint64_t base = rng.next() % 1000 + 2;
        uint64_t exp = rng.next() % 50;
        uint64_t mod = (rng.next() % 100000) | 1; // odd -> Montgomery path
        uint64_t expect = 1;
        for (uint64_t k = 0; k < exp; k++)
            expect = expect * base % mod;
        EXPECT_EQ(
            BigInt::modExp(BigInt(base), BigInt(exp), BigInt(mod)).low64(),
            expect)
            << base << "^" << exp << " mod " << mod;
    }
}

TEST(BigInt, MontgomeryMatchesDivideReduction)
{
    Xorshift64 rng(555);
    for (int i = 0; i < 10; i++) {
        BigInt m = BigInt::randomBits(256, rng);
        if (!m.isOdd())
            m = BigInt::add(m, BigInt(1));
        BigInt a = BigInt::mod(BigInt::randomBits(256, rng), m);
        BigInt b = BigInt::mod(BigInt::randomBits(256, rng), m);
        Montgomery ctx(m);
        BigInt via_redc = ctx.fromDomain(
            ctx.mulRedc(ctx.toDomain(a), ctx.toDomain(b)));
        BigInt via_div = BigInt::mod(BigInt::mul(a, b), m);
        EXPECT_EQ(via_redc, via_div);
    }
}

TEST(BigInt, ModInverse)
{
    Xorshift64 rng(777);
    BigInt m = BigInt::fromHex("10001"); // prime 65537
    for (int i = 0; i < 20; i++) {
        BigInt a = BigInt::mod(BigInt::randomBits(64, rng), m);
        if (a.isZero())
            continue;
        BigInt inv = BigInt::modInverse(a, m);
        EXPECT_EQ(BigInt::mod(BigInt::mul(a, inv), m), BigInt(1));
    }
    // Non-invertible case: gcd(6, 12) != 1.
    EXPECT_TRUE(BigInt::modInverse(BigInt(6), BigInt(12)).isZero());
}

TEST(BigInt, MulOpsCounterAdvances)
{
    BigInt::resetMulOps();
    uint64_t before = BigInt::mulOps();
    (void)BigInt::mul(BigInt::fromHex("ffffffffffffffffffffffffffffffff"),
                      BigInt::fromHex("ffffffffffffffffffffffffffffffff"));
    EXPECT_GT(BigInt::mulOps(), before);
}

} // namespace
