/** @file Unit tests for util/hex.hh. */

#include <gtest/gtest.h>

#include "util/hex.hh"

namespace
{

using namespace cryptarch::util;

TEST(Hex, EncodeBasic)
{
    EXPECT_EQ(toHex({}), "");
    EXPECT_EQ(toHex({0x00}), "00");
    EXPECT_EQ(toHex({0xDE, 0xAD, 0xBE, 0xEF}), "deadbeef");
}

TEST(Hex, DecodeBasic)
{
    EXPECT_EQ(fromHex(""), std::vector<uint8_t>{});
    EXPECT_EQ(fromHex("deadbeef"),
              (std::vector<uint8_t>{0xDE, 0xAD, 0xBE, 0xEF}));
    EXPECT_EQ(fromHex("DEADBEEF"),
              (std::vector<uint8_t>{0xDE, 0xAD, 0xBE, 0xEF}));
}

TEST(Hex, DecodeIgnoresWhitespace)
{
    EXPECT_EQ(fromHex("de ad\tbe\nef"),
              (std::vector<uint8_t>{0xDE, 0xAD, 0xBE, 0xEF}));
}

TEST(Hex, DecodeRejectsBadInput)
{
    EXPECT_THROW(fromHex("xy"), std::invalid_argument);
    EXPECT_THROW(fromHex("abc"), std::invalid_argument);
}

TEST(Hex, Roundtrip)
{
    std::vector<uint8_t> data;
    for (int i = 0; i < 256; i++)
        data.push_back(static_cast<uint8_t>(i));
    EXPECT_EQ(fromHex(toHex(data)), data);
}

} // namespace
