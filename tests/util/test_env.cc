/**
 * @file
 * Centralized CRYPTARCH_* environment parsing: accepted values parse,
 * unrecognized values keep the default and warn exactly once per
 * variable per process.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "util/env.hh"

namespace
{

using namespace cryptarch;

class EnvGuard
{
  public:
    EnvGuard(const char *var, const char *value) : var_(var)
    {
        ::setenv(var, value, 1);
    }
    ~EnvGuard() { ::unsetenv(var_); }

  private:
    const char *var_;
};

TEST(Env, ChoiceParsesAcceptedValuesAndDefaultsWhenUnset)
{
    ::unsetenv("CRYPTARCH_TEST_CHOICE");
    EXPECT_EQ(util::envChoice("CRYPTARCH_TEST_CHOICE",
                              {{"alpha", 1}, {"beta", 2}}, 7),
              7);
    {
        EnvGuard g("CRYPTARCH_TEST_CHOICE", "alpha");
        EXPECT_EQ(util::envChoice("CRYPTARCH_TEST_CHOICE",
                                  {{"alpha", 1}, {"beta", 2}}, 7),
                  1);
    }
    {
        EnvGuard g("CRYPTARCH_TEST_CHOICE", "beta");
        EXPECT_EQ(util::envChoice("CRYPTARCH_TEST_CHOICE",
                                  {{"alpha", 1}, {"beta", 2}}, 7),
                  2);
    }
}

TEST(Env, UnrecognizedChoiceWarnsOncePerVariable)
{
    util::resetEnvWarningsForTesting();
    EnvGuard g("CRYPTARCH_TEST_WARN", "typo");
    const uint64_t before = util::envWarningCount();
    EXPECT_EQ(util::envChoice("CRYPTARCH_TEST_WARN",
                              {{"alpha", 1}, {"beta", 2}}, 7),
              7);
    EXPECT_EQ(util::envWarningCount(), before + 1);
    // Re-reading the same broken variable must not warn again — a
    // sweep re-reads policy per cell and one typo is one line.
    EXPECT_EQ(util::envChoice("CRYPTARCH_TEST_WARN",
                              {{"alpha", 1}, {"beta", 2}}, 7),
              7);
    EXPECT_EQ(util::envWarningCount(), before + 1);
    // A different variable warns independently.
    EnvGuard g2("CRYPTARCH_TEST_WARN2", "also-bad");
    EXPECT_FALSE(util::envFlag("CRYPTARCH_TEST_WARN2", false));
    EXPECT_EQ(util::envWarningCount(), before + 2);
}

TEST(Env, WarningListsAcceptedValues)
{
    EXPECT_EQ(util::describeEnvChoices({{"thread", 0}, {"process", 1}}),
              "thread, process");
}

TEST(Env, FlagParsesAllSpellings)
{
    ::unsetenv("CRYPTARCH_TEST_FLAG");
    EXPECT_TRUE(util::envFlag("CRYPTARCH_TEST_FLAG", true));
    EXPECT_FALSE(util::envFlag("CRYPTARCH_TEST_FLAG", false));
    for (const char *t : {"1", "on", "true", "yes"}) {
        EnvGuard g("CRYPTARCH_TEST_FLAG", t);
        EXPECT_TRUE(util::envFlag("CRYPTARCH_TEST_FLAG", false)) << t;
    }
    for (const char *f : {"0", "off", "false", "no"}) {
        EnvGuard g("CRYPTARCH_TEST_FLAG", f);
        EXPECT_FALSE(util::envFlag("CRYPTARCH_TEST_FLAG", true)) << f;
    }
}

TEST(Env, MalformedFlagKeepsDefaultAndWarns)
{
    util::resetEnvWarningsForTesting();
    EnvGuard g("CRYPTARCH_TEST_FLAG_BAD", "maybe");
    const uint64_t before = util::envWarningCount();
    EXPECT_TRUE(util::envFlag("CRYPTARCH_TEST_FLAG_BAD", true));
    EXPECT_FALSE(util::envFlag("CRYPTARCH_TEST_FLAG_BAD", false));
    EXPECT_EQ(util::envWarningCount(), before + 1);
}

TEST(Env, U64ParsesAndRejectsGarbage)
{
    ::unsetenv("CRYPTARCH_TEST_U64");
    EXPECT_EQ(util::envU64("CRYPTARCH_TEST_U64", 42), 42u);
    {
        EnvGuard g("CRYPTARCH_TEST_U64", "123456789");
        EXPECT_EQ(util::envU64("CRYPTARCH_TEST_U64", 42), 123456789u);
    }
    util::resetEnvWarningsForTesting();
    const uint64_t before = util::envWarningCount();
    {
        EnvGuard g("CRYPTARCH_TEST_U64", "12abc");
        EXPECT_EQ(util::envU64("CRYPTARCH_TEST_U64", 42), 42u);
    }
    EXPECT_EQ(util::envWarningCount(), before + 1);
}

TEST(Env, DoubleParsesAndRejectsNegative)
{
    ::unsetenv("CRYPTARCH_TEST_DBL");
    EXPECT_DOUBLE_EQ(util::envDouble("CRYPTARCH_TEST_DBL", 1.5), 1.5);
    {
        EnvGuard g("CRYPTARCH_TEST_DBL", "12.5");
        EXPECT_DOUBLE_EQ(util::envDouble("CRYPTARCH_TEST_DBL", 1.5), 12.5);
    }
    util::resetEnvWarningsForTesting();
    const uint64_t before = util::envWarningCount();
    {
        EnvGuard g("CRYPTARCH_TEST_DBL", "-3");
        EXPECT_DOUBLE_EQ(util::envDouble("CRYPTARCH_TEST_DBL", 1.5), 1.5);
    }
    EXPECT_EQ(util::envWarningCount(), before + 1);
}

TEST(Env, UnknownExecBackendWarnsThroughTheSharedParser)
{
    // The satellite contract: CRYPTARCH_EXEC_BACKEND=typo must produce
    // one typed warning listing the accepted values — exercised here
    // against the same envChoice call the driver uses.
    util::resetEnvWarningsForTesting();
    EnvGuard g("CRYPTARCH_EXEC_BACKEND", "typo");
    const uint64_t before = util::envWarningCount();
    EXPECT_EQ(util::envChoice("CRYPTARCH_EXEC_BACKEND",
                              {{"auto", 0}, {"interpreter", 1},
                               {"threaded", 2}},
                              0),
              0);
    EXPECT_EQ(util::envWarningCount(), before + 1);
}

} // namespace
