/** @file Unit tests for the pi hex-digit generator. */

#include <gtest/gtest.h>

#include "util/pi.hh"

namespace
{

using cryptarch::util::piFractionWords;

// The leading fractional hex digits of pi are universally documented as
// the first Blowfish P-array entries.
TEST(Pi, FirstWordsMatchKnownDigits)
{
    auto words = piFractionWords(8);
    ASSERT_EQ(words.size(), 8u);
    EXPECT_EQ(words[0], 0x243F6A88u);
    EXPECT_EQ(words[1], 0x85A308D3u);
    EXPECT_EQ(words[2], 0x13198A2Eu);
    EXPECT_EQ(words[3], 0x03707344u);
    EXPECT_EQ(words[4], 0xA4093822u);
    EXPECT_EQ(words[5], 0x299F31D0u);
    EXPECT_EQ(words[6], 0x082EFA98u);
    EXPECT_EQ(words[7], 0xEC4E6C89u);
}

// A longer run must agree with a shorter run on the shared prefix
// (catches precision/guard-word bugs).
TEST(Pi, PrefixStability)
{
    auto small = piFractionWords(32);
    auto large = piFractionWords(1042);
    for (size_t i = 0; i < small.size(); i++)
        EXPECT_EQ(small[i], large[i]) << "word " << i;
}

// Known deep value: the last S-box word Blowfish consumes. Checked
// indirectly by the Blowfish known-answer tests; here we just pin the
// generator's output length and determinism.
TEST(Pi, DeterministicAndSized)
{
    auto a = piFractionWords(1042);
    auto b = piFractionWords(1042);
    ASSERT_EQ(a.size(), 1042u);
    EXPECT_EQ(a, b);
}

} // namespace
