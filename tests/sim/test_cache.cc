/** @file Unit tests for the cache, TLB and SBox-cache models. */

#include <gtest/gtest.h>

#include "sim/cache.hh"

namespace
{

using namespace cryptarch::sim;

TEST(Cache, ColdMissThenHit)
{
    Cache c(CacheGeometry{1024, 2, 32});
    EXPECT_FALSE(c.access(0x100));
    EXPECT_TRUE(c.access(0x100));
    EXPECT_TRUE(c.access(0x11F)); // same 32-byte block
    EXPECT_FALSE(c.access(0x120)); // next block
    EXPECT_EQ(c.stats().accesses, 4u);
    EXPECT_EQ(c.stats().misses, 2u);
}

TEST(Cache, LruReplacement)
{
    // 2-way, 16 sets of 32B: addresses 32*16 apart collide.
    Cache c(CacheGeometry{1024, 2, 32});
    const uint64_t stride = 32 * 16;
    c.access(0 * stride);
    c.access(1 * stride);
    EXPECT_TRUE(c.access(0 * stride));  // both resident
    c.access(2 * stride);               // evicts LRU (way with 1*stride)
    EXPECT_TRUE(c.access(0 * stride));
    EXPECT_FALSE(c.access(1 * stride)); // was evicted
}

TEST(Cache, PrefetchFillsWithoutCounting)
{
    Cache c(CacheGeometry{1024, 2, 32});
    c.prefetch(0x200);
    EXPECT_EQ(c.stats().accesses, 0u);
    EXPECT_TRUE(c.contains(0x200));
    EXPECT_TRUE(c.access(0x200));
    EXPECT_EQ(c.stats().misses, 0u);
}

TEST(Tlb, PageGranularity)
{
    Tlb tlb(4, 4, 8192);
    EXPECT_FALSE(tlb.access(0));
    EXPECT_TRUE(tlb.access(8191));  // same page
    EXPECT_FALSE(tlb.access(8192)); // next page
}

TEST(MemoryHierarchy, LatenciesTiered)
{
    MachineConfig cfg = MachineConfig::fourWide();
    cfg.nextLinePrefetch = false;
    MemoryHierarchy mem(cfg);
    // Cold: TLB miss + L1 miss + L2 miss.
    unsigned cold = mem.access(0x4000, 4);
    EXPECT_EQ(cold, cfg.dtlbMissLat + cfg.memLat);
    // Warm: all hits, no extra latency.
    EXPECT_EQ(mem.access(0x4000, 4), 0u);
}

TEST(MemoryHierarchy, NextLinePrefetchHidesSequentialMisses)
{
    MachineConfig cfg = MachineConfig::fourWide();
    MemoryHierarchy mem(cfg);
    mem.access(0x4000, 4); // cold; prefetches 0x4020
    EXPECT_EQ(mem.access(0x4020, 4), 0u) << "next line was prefetched";
}

TEST(MemoryHierarchy, PerfectMemoryIsFree)
{
    MachineConfig cfg = MachineConfig::dataflow();
    MemoryHierarchy mem(cfg);
    EXPECT_EQ(mem.access(0x123456, 8), 0u);
}

TEST(SboxCache, SectorFillAndHit)
{
    SboxCache sc;
    EXPECT_FALSE(sc.access(0x1000, 0));   // cold sector
    EXPECT_TRUE(sc.access(0x1000, 4));    // same 32B sector
    EXPECT_TRUE(sc.access(0x1000, 31));
    EXPECT_FALSE(sc.access(0x1000, 32));  // next sector
    EXPECT_TRUE(sc.access(0x1000, 60));
}

TEST(SboxCache, TagChangeFlushes)
{
    SboxCache sc;
    sc.access(0x1000, 0);
    EXPECT_TRUE(sc.access(0x1000, 0));
    EXPECT_FALSE(sc.access(0x2000, 0)); // different table: flush
    EXPECT_FALSE(sc.access(0x1000, 0)); // original gone
}

TEST(SboxCache, SyncInvalidatesSectors)
{
    SboxCache sc;
    sc.access(0x1000, 0);
    sc.access(0x1000, 64);
    sc.sync();
    EXPECT_FALSE(sc.access(0x1000, 0));
    EXPECT_FALSE(sc.access(0x1000, 64));
}

} // namespace
