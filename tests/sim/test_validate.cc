/**
 * @file
 * Config admission layer: the ConfigError taxonomy, canonicalization
 * fixed points, and the typed rejections thrown from Cache and
 * scheduler construction.
 */

#include <gtest/gtest.h>

#include "sim/cache.hh"
#include "sim/config.hh"
#include "sim/pipeline.hh"
#include "sim/validate.hh"

namespace
{

using namespace cryptarch;
using sim::ConfigError;
using sim::ConfigErrorKind;
using sim::MachineConfig;

ConfigErrorKind
kindOf(const MachineConfig &cfg)
{
    auto err = sim::validateConfig(cfg);
    EXPECT_TRUE(err.has_value()) << "expected " << cfg.name << " to fail";
    return err ? err->kind : ConfigErrorKind{};
}

TEST(Validate, PresetsAreAdmissible)
{
    for (const auto &cfg :
         {MachineConfig::fourWide(), MachineConfig::alpha21264(),
          MachineConfig::fourWidePlus(), MachineConfig::eightWidePlus(),
          MachineConfig::dataflow(), MachineConfig::dfPlusAlias(),
          MachineConfig::dfPlusBranch(), MachineConfig::dfPlusIssue(),
          MachineConfig::dfPlusMem(), MachineConfig::dfPlusResources(),
          MachineConfig::dfPlusWindow()}) {
        auto err = sim::validateConfig(cfg);
        EXPECT_FALSE(err.has_value())
            << cfg.name << ": " << (err ? err->message() : "");
    }
}

TEST(Validate, ZeroGeometryIsClassified)
{
    MachineConfig cfg = MachineConfig::fourWide();
    cfg.l1d.blockBytes = 0;
    EXPECT_EQ(kindOf(cfg), ConfigErrorKind::ZeroGeometry);

    cfg = MachineConfig::fourWide();
    cfg.l2.assoc = 0;
    EXPECT_EQ(kindOf(cfg), ConfigErrorKind::ZeroGeometry);

    cfg = MachineConfig::fourWide();
    cfg.l1d.sizeBytes = 0;
    EXPECT_EQ(kindOf(cfg), ConfigErrorKind::ZeroGeometry);

    cfg = MachineConfig::fourWide();
    cfg.pageBytes = 0;
    EXPECT_EQ(kindOf(cfg), ConfigErrorKind::ZeroGeometry);

    cfg = MachineConfig::fourWide();
    cfg.dtlbEntries = 0;
    EXPECT_EQ(kindOf(cfg), ConfigErrorKind::ZeroGeometry);

    cfg = MachineConfig::fourWide();
    cfg.predictorEntries = 0;
    EXPECT_EQ(kindOf(cfg), ConfigErrorKind::ZeroGeometry);
}

TEST(Validate, BadGeometryIsClassified)
{
    // Cache smaller than one set.
    MachineConfig cfg = MachineConfig::fourWide();
    cfg.l1d = {16, 2, 32};
    EXPECT_EQ(kindOf(cfg), ConfigErrorKind::BadGeometry);

    // Size not divisible by blockBytes * assoc.
    cfg = MachineConfig::fourWide();
    cfg.l2 = {100, 4, 32};
    EXPECT_EQ(kindOf(cfg), ConfigErrorKind::BadGeometry);

    // TLB entries not divisible by associativity.
    cfg = MachineConfig::fourWide();
    cfg.dtlbEntries = 32;
    cfg.dtlbAssoc = 5;
    EXPECT_EQ(kindOf(cfg), ConfigErrorKind::BadGeometry);
}

TEST(Validate, NonPow2IsReportedRaw)
{
    MachineConfig cfg = MachineConfig::fourWide();
    cfg.predictorEntries = 3000;
    EXPECT_EQ(kindOf(cfg), ConfigErrorKind::NonPow2);

    cfg = MachineConfig::fourWide();
    cfg.dtlbEntries = 48;
    cfg.dtlbAssoc = 8;
    EXPECT_EQ(kindOf(cfg), ConfigErrorKind::NonPow2);
}

TEST(Validate, InconsistentLatencyIsClassified)
{
    MachineConfig cfg = MachineConfig::fourWide();
    cfg.aluLat = 0;
    EXPECT_EQ(kindOf(cfg), ConfigErrorKind::InconsistentLatency);

    cfg = MachineConfig::fourWide();
    cfg.mulLat32 = cfg.mulLat64 + 1;
    EXPECT_EQ(kindOf(cfg), ConfigErrorKind::InconsistentLatency);

    cfg = MachineConfig::fourWide();
    cfg.l2HitLat = cfg.memLat + 1;
    EXPECT_EQ(kindOf(cfg), ConfigErrorKind::InconsistentLatency);
}

TEST(Validate, UnsatisfiableFuPoolIsClassified)
{
    // The real livelock: MULQ needs 2 half-slots/cycle, a 1-slot pool
    // can never issue it (0 means unlimited, so only exactly 1 is bad).
    MachineConfig cfg = MachineConfig::fourWide();
    cfg.mulHalfSlots = 1;
    EXPECT_EQ(kindOf(cfg), ConfigErrorKind::UnsatisfiableFuPool);

    cfg.mulHalfSlots = sim::unlimited;
    EXPECT_FALSE(sim::validateConfig(cfg).has_value());
    cfg.mulHalfSlots = 2;
    EXPECT_FALSE(sim::validateConfig(cfg).has_value());
}

TEST(Validate, OversizedIsClassified)
{
    // A line array in the hundreds of millions is an allocation bomb,
    // not a machine model.
    MachineConfig cfg = MachineConfig::fourWide();
    cfg.l2 = {1u << 31, 1, 32};
    EXPECT_EQ(kindOf(cfg), ConfigErrorKind::Oversized);

    // TLB entries * pageBytes overflowing the 32-bit backing geometry.
    cfg = MachineConfig::fourWide();
    cfg.dtlbEntries = 1 << 16;
    cfg.dtlbAssoc = 8;
    cfg.pageBytes = 1 << 20;
    EXPECT_EQ(kindOf(cfg), ConfigErrorKind::Oversized);
}

TEST(Validate, ErrorMessageNamesKindAndField)
{
    MachineConfig cfg = MachineConfig::fourWide();
    cfg.mulHalfSlots = 1;
    auto err = sim::validateConfig(cfg);
    ASSERT_TRUE(err.has_value());
    const std::string msg = err->message();
    EXPECT_NE(msg.find("unsatisfiable-fu-pool"), std::string::npos) << msg;
    EXPECT_NE(msg.find("mulHalfSlots"), std::string::npos) << msg;
}

TEST(Validate, CanonicalizeRoundsDownToPow2)
{
    MachineConfig cfg = MachineConfig::fourWide();
    cfg.predictorEntries = 3000;
    cfg.dtlbEntries = 48;
    cfg.dtlbAssoc = 8;
    std::vector<sim::ConfigAdjustment> adjustments;
    MachineConfig fixed = sim::canonicalizeConfig(cfg, &adjustments);
    EXPECT_EQ(fixed.predictorEntries, 2048u);
    EXPECT_EQ(fixed.dtlbEntries, 32u);
    ASSERT_EQ(adjustments.size(), 2u);
    EXPECT_EQ(adjustments[0].field, "predictorEntries");
    EXPECT_EQ(adjustments[0].from, 3000u);
    EXPECT_EQ(adjustments[0].to, 2048u);
    EXPECT_EQ(adjustments[1].field, "dtlbEntries");
    EXPECT_EQ(adjustments[1].from, 48u);
    EXPECT_EQ(adjustments[1].to, 32u);
    // The repaired config is admissible.
    EXPECT_FALSE(sim::validateConfig(fixed).has_value());
}

TEST(Validate, PresetsAreCanonicalFixedPoints)
{
    // The 21264 preset regression of the satellite: its 4096-entry
    // predictor is already a power of two and must pass through
    // untouched, keeping index masks (and figure grids) unchanged.
    for (const auto &cfg :
         {MachineConfig::fourWide(), MachineConfig::alpha21264(),
          MachineConfig::eightWidePlus(), MachineConfig::dataflow()}) {
        std::vector<sim::ConfigAdjustment> adjustments;
        MachineConfig fixed = sim::canonicalizeConfig(cfg, &adjustments);
        EXPECT_TRUE(adjustments.empty()) << cfg.name;
        EXPECT_EQ(fixed.predictorEntries, cfg.predictorEntries) << cfg.name;
        EXPECT_EQ(fixed.dtlbEntries, cfg.dtlbEntries) << cfg.name;
    }
    EXPECT_EQ(MachineConfig::alpha21264().predictorEntries, 4096u);
}

TEST(Validate, CacheRejectsZeroGeometryTyped)
{
    // Satellite (a): the former assert/UB path is now a typed throw,
    // in release builds too.
    try {
        sim::Cache cache({0, 1, 32});
        FAIL() << "zero blockBytes accepted";
    } catch (const sim::ConfigRejected &e) {
        EXPECT_EQ(e.error().kind, ConfigErrorKind::ZeroGeometry);
    }
    try {
        sim::Cache cache({4096, 0, 32});
        FAIL() << "zero assoc accepted";
    } catch (const sim::ConfigRejected &e) {
        EXPECT_EQ(e.error().kind, ConfigErrorKind::ZeroGeometry);
    }
    try {
        sim::Cache cache({16, 2, 32});
        FAIL() << "sub-set-size cache accepted";
    } catch (const sim::ConfigRejected &e) {
        EXPECT_EQ(e.error().kind, ConfigErrorKind::BadGeometry);
    }
}

TEST(Validate, SchedulerConstructionRejectsAndTrustedSkips)
{
    MachineConfig bad = MachineConfig::fourWide();
    bad.mulHalfSlots = 1;
    bad.name = "bad-mul-pool";
    EXPECT_THROW(sim::OooScheduler sched(bad), sim::ConfigRejected);

    // Trusted policy admits the same config verbatim (the watchdog is
    // then the backstop — see test_watchdog.cc).
    EXPECT_NO_THROW(
        sim::OooScheduler sched(bad, sim::ConfigPolicy::Trusted));
}

TEST(Validate, SchedulerCanonicalizesOnAdmission)
{
    // A non-pow2 predictor is repaired, not rejected, on the default
    // policy.
    MachineConfig cfg = MachineConfig::fourWide();
    cfg.predictorEntries = 3000;
    EXPECT_NO_THROW(sim::OooScheduler sched(cfg));
}

TEST(Validate, ValidationPolicyCanBeDisabled)
{
    ASSERT_TRUE(sim::configValidationEnabled());
    MachineConfig bad = MachineConfig::fourWide();
    bad.mulHalfSlots = 1;
    sim::setConfigValidation(false);
    EXPECT_NO_THROW(sim::OooScheduler sched(bad));
    sim::setConfigValidation(true);
    EXPECT_THROW(sim::OooScheduler sched(bad), sim::ConfigRejected);
}

TEST(Validate, KindNamesAreStable)
{
    EXPECT_STREQ(sim::configErrorKindName(ConfigErrorKind::ZeroGeometry),
                 "zero-geometry");
    EXPECT_STREQ(sim::configErrorKindName(ConfigErrorKind::BadGeometry),
                 "bad-geometry");
    EXPECT_STREQ(sim::configErrorKindName(ConfigErrorKind::NonPow2),
                 "non-pow2");
    EXPECT_STREQ(
        sim::configErrorKindName(ConfigErrorKind::InconsistentLatency),
        "inconsistent-latency");
    EXPECT_STREQ(
        sim::configErrorKindName(ConfigErrorKind::UnsatisfiableFuPool),
        "unsatisfiable-fu-pool");
    EXPECT_STREQ(sim::configErrorKindName(ConfigErrorKind::Oversized),
                 "oversized");
}

} // namespace
