/**
 * @file
 * Differential verification of the ring-buffer CycleResource against
 * the original unordered_map implementation (cycle_resource_ref.hh).
 *
 * The ring claims bit-identical behavior including the reference's
 * quirks — probe-created entries, the >= 4096-entry erase gate, and
 * phantom capacity on probes below an erased horizon — so the property
 * test drives both through long random op sequences (booking walks,
 * joint tryBook/unbook reservations, horizon prunes, deliberate
 * below-horizon probes) and demands every return value and the live
 * entry count agree at every step.
 */

#include <gtest/gtest.h>

#include <random>

#include "cycle_resource_ref.hh"
#include "sim/resource.hh"

namespace
{

using cryptarch::sim::Cycle;
using cryptarch::sim::CycleResource;
using cryptarch::tests::CycleResourceRef;

TEST(CycleResourceRing, NextFreeSkipsFullCycles)
{
    CycleResource res(2);
    res.book(10, 2);
    res.book(11, 1);
    EXPECT_EQ(res.nextFree(10), 11u);     // cycle 10 full, 11 has room
    EXPECT_EQ(res.nextFree(10, 2), 12u);  // 2 units skip 10 and 11
    EXPECT_EQ(res.nextFree(12), 12u);     // past every booking: free
}

TEST(CycleResourceRing, NextFreeDoesNotBook)
{
    CycleResource res(1);
    EXPECT_EQ(res.nextFree(5), 5u);
    EXPECT_EQ(res.nextFree(5), 5u);
    EXPECT_TRUE(res.canReserve(5));
}

TEST(CycleResourceRing, ReserveIsNextFreePlusBook)
{
    CycleResource res(1);
    EXPECT_EQ(res.reserve(7), 7u);
    EXPECT_EQ(res.reserve(7), 8u);
    EXPECT_EQ(res.reserve(0), 0u); // below every booking: free
}

TEST(CycleResourceRing, WindowSlidesAndRegrowsDownward)
{
    CycleResource res(1);
    // March far enough forward that the window must slide many times.
    for (Cycle c = 0; c < 100000; c += 97)
        EXPECT_EQ(res.reserve(c), c);
    // A probe far below the window base must still see those bookings.
    EXPECT_FALSE(res.canReserve(0));
    EXPECT_EQ(res.reserve(1), 1u);
    EXPECT_FALSE(res.canReserve(1));
}

TEST(CycleResourceRing, UnlimitedTracksNothing)
{
    CycleResource res(0);
    EXPECT_EQ(res.reserve(42, 100), 42u);
    EXPECT_EQ(res.nextFree(42), 42u);
    EXPECT_TRUE(res.canReserve(42, 1000));
    EXPECT_EQ(res.entryCount(), 0u);
    EXPECT_FALSE(res.limited());
}

/**
 * One random differential episode: identical op streams into the ring
 * and the reference, comparing every observable result. The cycle
 * cursor random-walks forward (like issue frontiers do), with a slice
 * of probes aimed below the last prune horizon to exercise the erased
 * region, and prunes sized to cross the 4096-entry gate.
 */
void
differentialEpisode(unsigned cap, uint32_t seed, int ops)
{
    std::mt19937 rng(seed);
    CycleResource ring(cap);
    CycleResourceRef ref(cap);

    Cycle cursor = 0;
    Cycle horizon = 0;
    const unsigned maxUnits = cap == 0 ? 4 : cap;

    auto pickCycle = [&]() -> Cycle {
        unsigned kind = rng() % 10;
        if (kind == 0 && horizon > 0)
            return rng() % horizon; // below the pruned horizon
        if (kind <= 4)
            return cursor + rng() % 4; // near the frontier
        cursor += rng() % 3;
        return cursor;
    };

    for (int i = 0; i < ops; i++) {
        unsigned units = 1 + rng() % maxUnits;
        Cycle cycle = pickCycle();
        switch (rng() % 6) {
        case 0:
            ASSERT_EQ(ring.reserve(cycle, units), ref.reserve(cycle, units))
                << "reserve(" << cycle << ", " << units << ") op " << i;
            break;
        case 1:
            ASSERT_EQ(ring.nextFree(cycle, units),
                      ref.nextFree(cycle, units))
                << "nextFree(" << cycle << ", " << units << ") op " << i;
            break;
        case 2:
            ASSERT_EQ(ring.canReserve(cycle, units),
                      ref.canReserve(cycle, units))
                << "canReserve(" << cycle << ", " << units << ") op " << i;
            break;
        case 3: {
            // Joint reservation: tryBook, then roll back half the time
            // (exactly the scheduler's slot+FU pattern).
            bool a = ring.tryBook(cycle, units);
            bool b = ref.tryBook(cycle, units);
            ASSERT_EQ(a, b)
                << "tryBook(" << cycle << ", " << units << ") op " << i;
            if (a && rng() % 2) {
                ring.unbook(cycle, units);
                ref.unbook(cycle, units);
            }
            break;
        }
        case 4:
            ring.book(cycle, units);
            ref.book(cycle, units);
            break;
        case 5:
            horizon = cursor > 5 ? cursor - rng() % 5 : cursor;
            ring.retireBefore(horizon);
            ref.retireBefore(horizon);
            break;
        }
        ASSERT_EQ(ring.entryCount(), ref.entryCount()) << "op " << i;
    }
}

TEST(CycleResourceDifferential, RandomOpsMatchReference)
{
    for (unsigned cap : {1u, 2u, 3u, 4u, 8u})
        differentialEpisode(cap, 0xC0FFEE + cap, 20000);
}

TEST(CycleResourceDifferential, UnlimitedMatchesReference)
{
    differentialEpisode(0, 0xDECAF, 5000);
}

TEST(CycleResourceDifferential, EraseGateAndPhantomCapacity)
{
    // Deterministically cross the 4096-entry gate, prune, and verify
    // both implementations agree that erased cycles read as free
    // again (the phantom capacity the Figure 5 models rely on).
    CycleResource ring(1);
    CycleResourceRef ref(1);
    for (Cycle c = 0; c < 5000; c++) {
        ASSERT_EQ(ring.reserve(c), ref.reserve(c));
    }
    ASSERT_EQ(ring.entryCount(), 5000u);
    ring.retireBefore(4500);
    ref.retireBefore(4500);
    ASSERT_EQ(ring.entryCount(), ref.entryCount());
    ASSERT_EQ(ring.entryCount(), 500u);
    for (Cycle c : {0ull, 100ull, 4499ull}) {
        ASSERT_EQ(ring.canReserve(c), ref.canReserve(c)) << c;
        ASSERT_TRUE(ring.canReserve(c)) << c; // erased => free again
        ASSERT_EQ(ring.reserve(c), ref.reserve(c)) << c;
    }
    for (Cycle c : {4500ull, 4999ull}) {
        ASSERT_EQ(ring.canReserve(c), ref.canReserve(c)) << c;
        ASSERT_FALSE(ring.canReserve(c)) << c; // survived the prune
    }
}

TEST(CycleResourceDifferential, BelowGateNothingIsErased)
{
    CycleResource ring(1);
    CycleResourceRef ref(1);
    for (Cycle c = 0; c < 1000; c++)
        ASSERT_EQ(ring.reserve(c), ref.reserve(c));
    ring.retireBefore(1000);
    ref.retireBefore(1000);
    ASSERT_EQ(ring.entryCount(), ref.entryCount());
    ASSERT_EQ(ring.entryCount(), 1000u); // gate not crossed: no sweep
    ASSERT_FALSE(ring.canReserve(500));
}

} // namespace
