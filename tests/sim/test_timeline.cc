/** @file Tests for the pipeline timeline recorder and op-mix counter. */

#include <gtest/gtest.h>

#include "kernels/kernel.hh"
#include "sim/pipeline.hh"
#include "util/xorshift.hh"

namespace
{

using namespace cryptarch;
using util::Xorshift64;

constexpr isa::Reg r1{1};

TEST(Timeline, RecordsRequestedWindowInOrder)
{
    isa::Assembler a;
    for (int i = 0; i < 100; i++)
        a.addq(r1, 1, r1);
    a.halt();
    auto p = a.finalize();

    sim::OooScheduler sched(sim::MachineConfig::fourWide());
    sched.recordTimeline(10, 20);
    isa::Machine m;
    m.run(p, &sched);
    sched.finish();

    const auto &tl = sched.timelineEntries();
    ASSERT_EQ(tl.size(), 20u);
    for (size_t i = 0; i < tl.size(); i++) {
        const auto &e = tl[i];
        EXPECT_EQ(e.seq, 10 + i);
        // Pipeline-stage monotonicity per instruction.
        EXPECT_LE(e.fetch, e.dispatch);
        EXPECT_LE(e.dispatch, e.ready);
        EXPECT_LE(e.ready, e.issue);
        EXPECT_LT(e.issue, e.complete);
        EXPECT_LE(e.complete, e.retire);
    }
    // The serial add chain issues one per cycle.
    for (size_t i = 1; i < tl.size(); i++)
        EXPECT_EQ(tl[i].issue, tl[i - 1].issue + 1);
}

TEST(Timeline, EmptyWhenNotRequested)
{
    isa::Assembler a;
    a.addq(r1, 1, r1);
    a.halt();
    auto p = a.finalize();
    sim::OooScheduler sched(sim::MachineConfig::fourWide());
    isa::Machine m;
    m.run(p, &sched);
    sched.finish();
    EXPECT_TRUE(sched.timelineEntries().empty());
}

TEST(OpMix, FractionsSumToOneAndMatchTrace)
{
    Xorshift64 rng(1);
    auto key = rng.bytes(16);
    auto iv = rng.bytes(8);
    auto build = kernels::buildKernel(crypto::CipherId::Blowfish,
                                      kernels::KernelVariant::BaselineRot,
                                      key, iv, 256);
    isa::Machine m;
    auto pt = rng.bytes(256);
    build.install(m, kernels::toWordImage(crypto::CipherId::Blowfish, pt));
    kernels::OpMixCounter mix(build);
    auto stats = m.run(build.program, &mix);

    EXPECT_EQ(mix.totalInsts(), stats.instructions);
    double sum = 0;
    for (unsigned c = 0; c < kernels::num_op_categories; c++)
        sum += mix.fraction(static_cast<kernels::OpCategory>(c));
    EXPECT_NEAR(sum, 1.0, 1e-9);
    // Blowfish: substitutions dominate the dynamic mix.
    EXPECT_GT(mix.fraction(kernels::OpCategory::Substitution), 0.4);
}

TEST(KernelBuild, InstallRejectsWrongInputSize)
{
    Xorshift64 rng(2);
    auto key = rng.bytes(16);
    auto iv = rng.bytes(8);
    auto build = kernels::buildKernel(crypto::CipherId::Blowfish,
                                      kernels::KernelVariant::Optimized,
                                      key, iv, 64);
    isa::Machine m;
    auto wrong = rng.bytes(32);
    EXPECT_THROW(build.install(m, wrong), std::invalid_argument);
}

TEST(KernelBuild, RejectsRaggedSessions)
{
    Xorshift64 rng(3);
    auto key = rng.bytes(16);
    auto iv = rng.bytes(8);
    EXPECT_THROW(kernels::buildKernel(crypto::CipherId::Blowfish,
                                      kernels::KernelVariant::Optimized,
                                      key, iv, 13),
                 std::invalid_argument);
    EXPECT_THROW(kernels::buildKernel(crypto::CipherId::Blowfish,
                                      kernels::KernelVariant::Optimized,
                                      key, iv, 0),
                 std::invalid_argument);
}

} // namespace
