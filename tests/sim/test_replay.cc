/**
 * @file
 * Golden determinism of trace record/replay: replaying a RecordedTrace
 * into an OooScheduler must yield bit-identical SimStats to attaching
 * the scheduler live to Machine::run. This is the property the whole
 * bench driver rests on — a recorded trace IS the functional
 * execution, so a model sweep may replay it any number of times.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <string>

#include "driver/trace.hh"
#include "driver/workload.hh"
#include "kernels/kernel.hh"
#include "sim/pipeline.hh"

namespace
{

using namespace cryptarch;
using kernels::KernelVariant;
using sim::MachineConfig;
using sim::SimStats;

SimStats
liveStats(crypto::CipherId id, KernelVariant variant,
          const MachineConfig &cfg)
{
    driver::Workload w = driver::makeWorkload(id);
    auto build = kernels::buildKernel(id, variant, w.key, w.iv,
                                      driver::session_bytes);
    isa::Machine m;
    build.install(m, kernels::toWordImage(id, w.plaintext));
    sim::OooScheduler sched(cfg);
    m.run(build.program, &sched, 1ull << 32);
    return sched.finish();
}

void
expectStatsEqual(const SimStats &live, const SimStats &replayed)
{
    EXPECT_EQ(live.instructions, replayed.instructions);
    EXPECT_EQ(live.cycles, replayed.cycles);
    EXPECT_EQ(live.condBranches, replayed.condBranches);
    EXPECT_EQ(live.mispredicts, replayed.mispredicts);
    EXPECT_EQ(live.loads, replayed.loads);
    EXPECT_EQ(live.stores, replayed.stores);
    EXPECT_EQ(live.sboxAccesses, replayed.sboxAccesses);
    EXPECT_EQ(live.sboxCacheHits, replayed.sboxCacheHits);
    EXPECT_EQ(live.sboxCacheAccesses, replayed.sboxCacheAccesses);
    EXPECT_EQ(live.sboxCacheMisses, replayed.sboxCacheMisses);
    ASSERT_EQ(live.sboxCaches.size(), replayed.sboxCaches.size());
    for (size_t i = 0; i < live.sboxCaches.size(); i++) {
        EXPECT_EQ(live.sboxCaches[i].accesses,
                  replayed.sboxCaches[i].accesses);
        EXPECT_EQ(live.sboxCaches[i].misses, replayed.sboxCaches[i].misses);
    }
    EXPECT_EQ(live.l1.accesses, replayed.l1.accesses);
    EXPECT_EQ(live.l1.misses, replayed.l1.misses);
    EXPECT_EQ(live.l2.accesses, replayed.l2.accesses);
    EXPECT_EQ(live.l2.misses, replayed.l2.misses);
    EXPECT_EQ(live.tlb.accesses, replayed.tlb.accesses);
    EXPECT_EQ(live.tlb.misses, replayed.tlb.misses);
    for (size_t i = 0; i < live.classCounts.size(); i++)
        EXPECT_EQ(live.classCounts[i], replayed.classCounts[i])
            << "class " << i;
    for (size_t c = 0; c < sim::num_stall_causes; c++)
        EXPECT_EQ(live.stallCycles[c], replayed.stallCycles[c])
            << "cause " << sim::stall_cause_names[c];
    for (size_t i = 0; i < live.stallByClass.size(); i++)
        for (size_t c = 0; c < sim::num_stall_causes; c++)
            EXPECT_EQ(live.stallByClass[i][c], replayed.stallByClass[i][c])
                << "class " << i << " cause " << sim::stall_cause_names[c];
}

struct ReplayCase
{
    crypto::CipherId cipher;
    KernelVariant variant;
    MachineConfig model;
};

class ReplayDeterminism : public ::testing::TestWithParam<ReplayCase>
{
};

TEST_P(ReplayDeterminism, ReplayMatchesLiveSimulation)
{
    const auto &[id, variant, cfg] = GetParam();
    auto live = liveStats(id, variant, cfg);
    auto trace = driver::recordKernelTrace(id, variant);
    auto replayed = trace.replay(cfg);
    EXPECT_EQ(trace.instructions(), live.instructions);
    expectStatsEqual(live, replayed);
}

std::string
caseName(const ::testing::TestParamInfo<ReplayCase> &info)
{
    std::string name = crypto::cipherInfo(info.param.cipher).name + "_"
        + kernels::variantName(info.param.variant) + "_"
        + info.param.model.name;
    for (char &c : name)
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    return name;
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, ReplayDeterminism,
    ::testing::Values(
        ReplayCase{crypto::CipherId::RC4, KernelVariant::BaselineRot,
                   MachineConfig::fourWide()},
        ReplayCase{crypto::CipherId::RC4, KernelVariant::BaselineRot,
                   MachineConfig::dataflow()},
        ReplayCase{crypto::CipherId::Rijndael, KernelVariant::BaselineRot,
                   MachineConfig::fourWide()},
        ReplayCase{crypto::CipherId::Rijndael, KernelVariant::BaselineRot,
                   MachineConfig::dataflow()},
        // The SBox-cache path (4W+) and the 21264-class preset are
        // exercised on the optimized kernels too.
        ReplayCase{crypto::CipherId::Rijndael, KernelVariant::Optimized,
                   MachineConfig::fourWidePlus()},
        ReplayCase{crypto::CipherId::RC4, KernelVariant::Optimized,
                   MachineConfig::alpha21264()}),
    caseName);

TEST(Replay, ReplayingTwiceIsIdentical)
{
    auto trace = driver::recordKernelTrace(crypto::CipherId::RC4,
                                           KernelVariant::BaselineRot);
    auto a = trace.replay(MachineConfig::fourWide());
    auto b = trace.replay(MachineConfig::fourWide());
    expectStatsEqual(a, b);
}

TEST(Replay, StreamPreservesSequenceNumbers)
{
    auto trace = driver::recordKernelTrace(crypto::CipherId::Rijndael,
                                           KernelVariant::Optimized);
    ASSERT_FALSE(trace.empty());
    const auto packed = trace.toPacked();
    uint64_t i = 0;
    for (auto r = packed.reader(); !r.done(); i++)
        ASSERT_EQ(r.next().seq, i);
    EXPECT_EQ(i, trace.instructions());
}

// The packed encoding drops result values (timing models never read
// them) but must preserve every field the scheduler does read —
// asserted here by the full schema-3 stall-counter comparison in
// ReplayMatchesLiveSimulation above, and spot-checked structurally:
// replaying through the generic TraceSink path equals the hot path.
TEST(Replay, PackedSinkReplayMatchesHotPath)
{
    auto trace = driver::recordKernelTrace(crypto::CipherId::RC4,
                                           KernelVariant::Optimized);
    auto cfg = MachineConfig::fourWidePlus();
    sim::OooScheduler sched(cfg);
    trace.replay(static_cast<isa::TraceSink &>(sched));
    auto viaSink = sched.finish();
    auto viaHot = trace.replay(cfg);
    expectStatsEqual(viaSink, viaHot);
}

} // namespace
