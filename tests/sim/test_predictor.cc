/** @file Unit tests for the branch predictor and cycle resources. */

#include <gtest/gtest.h>

#include "sim/branch_pred.hh"
#include "sim/resource.hh"

namespace
{

using namespace cryptarch::sim;

TEST(BranchPredictor, LearnsLoopBranch)
{
    BranchPredictor bp(64);
    // A loop back-edge: taken 99 times, untaken once, repeatedly.
    for (int rep = 0; rep < 10; rep++) {
        for (int i = 0; i < 99; i++)
            bp.predict(0x10, true);
        bp.predict(0x10, false);
    }
    // 2-bit counters miss only the exit (and the first re-entry at
    // most): accuracy must be > 97%.
    EXPECT_GT(bp.accuracy(), 0.97);
}

TEST(BranchPredictor, AlternatingBranchIsHard)
{
    BranchPredictor bp(64);
    for (int i = 0; i < 1000; i++)
        bp.predict(0x20, i % 2 == 0);
    EXPECT_LT(bp.accuracy(), 0.7);
}

TEST(BranchPredictor, CountsMispredicts)
{
    BranchPredictor bp(64);
    bp.predict(0, false); // weakly-taken initial state -> mispredict
    EXPECT_EQ(bp.lookups(), 1u);
    EXPECT_EQ(bp.mispredicts(), 1u);
}

TEST(CycleResource, UnlimitedNeverDelays)
{
    CycleResource r(0);
    for (int i = 0; i < 100; i++)
        EXPECT_EQ(r.reserve(7), 7u);
}

TEST(CycleResource, CapacityPushesToLaterCycles)
{
    CycleResource r(2);
    EXPECT_EQ(r.reserve(5), 5u);
    EXPECT_EQ(r.reserve(5), 5u);
    EXPECT_EQ(r.reserve(5), 6u);
    EXPECT_EQ(r.reserve(5), 6u);
    EXPECT_EQ(r.reserve(5), 7u);
}

TEST(CycleResource, MultiUnitReservation)
{
    CycleResource r(2);
    EXPECT_EQ(r.reserve(0, 2), 0u); // takes the whole cycle
    EXPECT_EQ(r.reserve(0, 1), 1u);
    EXPECT_EQ(r.reserve(0, 2), 2u); // cycle 1 has only 1 slot left
}

TEST(CycleResource, CanReserveThenBook)
{
    CycleResource r(1);
    EXPECT_TRUE(r.canReserve(3));
    r.book(3);
    EXPECT_FALSE(r.canReserve(3));
    EXPECT_TRUE(r.canReserve(4));
}

} // namespace
