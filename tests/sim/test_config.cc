/** @file Tests pinning the machine-model factories to paper Table 2. */

#include <gtest/gtest.h>

#include "sim/config.hh"

namespace
{

using namespace cryptarch::sim;

TEST(Config, FourWideMatchesTable2)
{
    auto c = MachineConfig::fourWide();
    EXPECT_EQ(c.fetchBlocksPerCycle, 1u);
    EXPECT_EQ(c.windowSize, 128u);
    EXPECT_EQ(c.issueWidth, 4u);
    EXPECT_EQ(c.numIntAlu, 4u);
    EXPECT_EQ(c.mulHalfSlots, 2u); // 1x64 or 2x32 or 2xMULMOD
    EXPECT_EQ(c.numDCachePorts, 2u);
    EXPECT_EQ(c.numSboxCaches, 0u);
    EXPECT_EQ(c.numRotUnits, 2u);
    EXPECT_FALSE(c.perfectBranch);
    EXPECT_FALSE(c.perfectAlias);
    EXPECT_FALSE(c.perfectMemory);
    EXPECT_FALSE(c.perfectSbox);
}

TEST(Config, FourWidePlusAddsSboxCachesAndRotators)
{
    auto base = MachineConfig::fourWide();
    auto plus = MachineConfig::fourWidePlus();
    EXPECT_EQ(plus.numSboxCaches, 4u);
    EXPECT_EQ(plus.sboxCachePorts, 1u);
    EXPECT_EQ(plus.numRotUnits, 4u);
    // Everything else matches the 4W model.
    EXPECT_EQ(plus.issueWidth, base.issueWidth);
    EXPECT_EQ(plus.windowSize, base.windowSize);
    EXPECT_EQ(plus.numIntAlu, base.numIntAlu);
    EXPECT_EQ(plus.numDCachePorts, base.numDCachePorts);
}

TEST(Config, EightWidePlusDoublesBandwidth)
{
    auto p = MachineConfig::fourWidePlus();
    auto e = MachineConfig::eightWidePlus();
    EXPECT_EQ(e.fetchBlocksPerCycle, 2 * p.fetchBlocksPerCycle);
    EXPECT_EQ(e.issueWidth, 2 * p.issueWidth);
    EXPECT_EQ(e.windowSize, 2 * p.windowSize);
    EXPECT_EQ(e.numIntAlu, 2 * p.numIntAlu);
    EXPECT_EQ(e.numRotUnits, 2 * p.numRotUnits);
    EXPECT_EQ(e.mulHalfSlots, 2 * p.mulHalfSlots);
    EXPECT_EQ(e.numDCachePorts, 2 * p.numDCachePorts);
    EXPECT_EQ(e.sboxCachePorts, 2 * p.sboxCachePorts);
    EXPECT_EQ(e.numSboxCaches, p.numSboxCaches); // same caches, dual port
}

TEST(Config, DataflowIsUnconstrained)
{
    auto df = MachineConfig::dataflow();
    EXPECT_EQ(df.fetchBlocksPerCycle, unlimited);
    EXPECT_EQ(df.fetchWidth, unlimited);
    EXPECT_EQ(df.windowSize, unlimited);
    EXPECT_EQ(df.issueWidth, unlimited);
    EXPECT_EQ(df.numIntAlu, unlimited);
    EXPECT_EQ(df.numRotUnits, unlimited);
    EXPECT_EQ(df.mulHalfSlots, unlimited);
    EXPECT_EQ(df.numDCachePorts, unlimited);
    EXPECT_TRUE(df.perfectBranch);
    EXPECT_TRUE(df.perfectAlias);
    EXPECT_TRUE(df.perfectMemory);
    EXPECT_TRUE(df.perfectSbox);
    EXPECT_EQ(df.frontendDepth, 0u);
}

TEST(Config, IsolationModelsReinsertExactlyOneConstraint)
{
    auto df = MachineConfig::dataflow();

    auto alias = MachineConfig::dfPlusAlias();
    EXPECT_FALSE(alias.perfectAlias);
    EXPECT_TRUE(alias.perfectBranch);
    EXPECT_TRUE(alias.perfectMemory);
    EXPECT_EQ(alias.issueWidth, df.issueWidth);

    auto branch = MachineConfig::dfPlusBranch();
    EXPECT_FALSE(branch.perfectBranch);
    EXPECT_TRUE(branch.perfectAlias);

    auto issue = MachineConfig::dfPlusIssue();
    EXPECT_EQ(issue.issueWidth, 4u);
    EXPECT_TRUE(issue.perfectAlias);
    EXPECT_EQ(issue.numIntAlu, unlimited);

    auto mem = MachineConfig::dfPlusMem();
    EXPECT_FALSE(mem.perfectMemory);
    EXPECT_TRUE(mem.perfectAlias);

    auto res = MachineConfig::dfPlusResources();
    EXPECT_EQ(res.numIntAlu, 4u);
    EXPECT_EQ(res.numRotUnits, 2u);
    EXPECT_EQ(res.numDCachePorts, 2u);
    EXPECT_FALSE(res.perfectSbox);
    EXPECT_EQ(res.issueWidth, unlimited);
    EXPECT_EQ(res.windowSize, unlimited);

    auto window = MachineConfig::dfPlusWindow();
    EXPECT_EQ(window.windowSize, 128u);
    EXPECT_EQ(window.issueWidth, unlimited);
}

TEST(Config, PaperLatencies)
{
    auto c = MachineConfig::fourWide();
    EXPECT_EQ(c.aluLat, 1u);
    EXPECT_EQ(c.mulLat64, 7u);
    EXPECT_EQ(c.mulLat32, 4u);
    EXPECT_EQ(c.mulmodLat, 4u);
    EXPECT_EQ(c.rotLat, 1u);
    EXPECT_EQ(c.sboxOnDcacheLat, 2u);
    EXPECT_EQ(c.sboxCacheLat, 1u);
    EXPECT_EQ(c.mispredictPenalty, 8u);
    EXPECT_EQ(c.l2HitLat, 12u);
    EXPECT_EQ(c.memLat, 120u);
    EXPECT_EQ(c.dtlbMissLat, 30u);
    EXPECT_EQ(c.l1d.sizeBytes, 32u * 1024);
    EXPECT_EQ(c.l1d.assoc, 2u);
    EXPECT_EQ(c.l1d.blockBytes, 32u);
    EXPECT_EQ(c.l2.sizeBytes, 512u * 1024);
    EXPECT_EQ(c.l2.assoc, 4u);
    EXPECT_EQ(c.dtlbEntries, 32u);
    EXPECT_EQ(c.dtlbAssoc, 8u);
}

} // namespace
