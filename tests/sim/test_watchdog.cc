/**
 * @file
 * Forward-progress watchdog: an unsatisfiable FU pool admitted under
 * the Trusted policy livelocks the issue loop; the watchdog converts
 * that into a typed isa::Trap{NoProgress} carrying the stalled
 * frontier, and never fires on admissible machines.
 */

#include <gtest/gtest.h>

#include <string>

#include "isa/trap.hh"
#include "sim/pipeline.hh"
#include "sim/validate.hh"

namespace
{

using namespace cryptarch;
using sim::MachineConfig;

constexpr isa::Reg r1{1}, r2{2}, r3{3};

/** A few independent adds, one 64-bit multiply, a few more adds. */
isa::Program
mulqProgram()
{
    isa::Assembler a;
    a.li(7, r1);
    a.li(9, r2);
    for (int i = 0; i < 8; i++)
        a.addq(r1, 1, r1);
    a.mulq(r1, r2, r3);
    for (int i = 0; i < 8; i++)
        a.addq(r3, 1, r3);
    a.halt();
    return a.finalize();
}

/** The livelock config: MULQ needs 2 half-slots, the pool has 1. */
MachineConfig
oneHalfSlot()
{
    MachineConfig cfg = MachineConfig::fourWide();
    cfg.name = "4W-mul1";
    cfg.mulHalfSlots = 1;
    return cfg;
}

TEST(Watchdog, UnsatisfiableMulPoolTrapsInsteadOfHanging)
{
    isa::Machine m;
    try {
        sim::simulate(m, mulqProgram(), oneHalfSlot(), 1ull << 32,
                      sim::ConfigPolicy::Trusted);
        FAIL() << "expected the watchdog to fire";
    } catch (const isa::Trap &t) {
        EXPECT_EQ(t.cause(), isa::TrapCause::NoProgress);
        // The trap carries the stalled-frontier snapshot: the model,
        // the oldest un-issued instruction's class, and what it is
        // blocked on.
        const std::string msg = t.what();
        EXPECT_NE(msg.find("no forward progress"), std::string::npos)
            << msg;
        EXPECT_NE(msg.find("4W-mul1"), std::string::npos) << msg;
        EXPECT_NE(msg.find("IntMult"), std::string::npos) << msg;
        EXPECT_NE(msg.find("CRYPTARCH_SIM_PROGRESS_BUDGET"),
                  std::string::npos)
            << msg;
    }
}

TEST(Watchdog, BudgetOverrideShortensTheFuse)
{
    ASSERT_EQ(sim::progressBudgetOverride(), 0u);
    sim::setProgressBudgetOverride(64);
    isa::Machine m;
    try {
        sim::simulate(m, mulqProgram(), oneHalfSlot(), 1ull << 32,
                      sim::ConfigPolicy::Trusted);
        sim::setProgressBudgetOverride(0);
        FAIL() << "expected the watchdog to fire";
    } catch (const isa::Trap &t) {
        sim::setProgressBudgetOverride(0);
        EXPECT_EQ(t.cause(), isa::TrapCause::NoProgress);
        // The message reports the base budget actually in force.
        EXPECT_NE(std::string(t.what()).find("base budget 64"),
                  std::string::npos)
            << t.what();
    }
}

TEST(Watchdog, AdmissibleMachinesNeverFire)
{
    // The same MULQ-bearing program completes on every preset: the
    // budget comparison stays quiet on contended-but-live pools.
    auto p = mulqProgram();
    for (const auto &cfg :
         {MachineConfig::fourWide(), MachineConfig::fourWidePlus(),
          MachineConfig::eightWidePlus(), MachineConfig::dataflow(),
          MachineConfig::dfPlusResources()}) {
        isa::Machine m;
        auto stats = sim::simulate(m, p, cfg);
        EXPECT_GT(stats.cycles, 0u) << cfg.name;
        EXPECT_EQ(stats.instructions, 20u) << cfg.name;
    }
}

TEST(Watchdog, TightButSatisfiablePoolStillCompletes)
{
    // mulHalfSlots == 2 is the minimum satisfiable pool: one MULQ per
    // cycle, heavy retry pressure but guaranteed progress. A long
    // burst of multiplies must complete, not trap.
    isa::Assembler a;
    a.li(3, r1);
    a.li(5, r2);
    for (int i = 0; i < 200; i++)
        a.mulq(r1, r2, r3);
    a.halt();
    auto p = a.finalize();

    MachineConfig cfg = MachineConfig::fourWide();
    cfg.name = "4W-mul2";
    cfg.mulHalfSlots = 2;
    isa::Machine m;
    auto stats =
        sim::simulate(m, p, cfg, 1ull << 32, sim::ConfigPolicy::Trusted);
    EXPECT_EQ(stats.instructions, 203u);
}

} // namespace
