/**
 * @file
 * Timing-model tests: microbenchmark programs with known schedules,
 * plus cross-model invariants on real cipher kernel traces.
 */

#include <gtest/gtest.h>

#include "kernels/kernel.hh"
#include "sim/pipeline.hh"
#include "sim/value_pred.hh"
#include "util/xorshift.hh"

namespace
{

using namespace cryptarch;
using sim::MachineConfig;
using sim::SimStats;
using util::Xorshift64;

constexpr isa::Reg r1{1}, r2{2}, r3{3};

SimStats
runOn(const isa::Program &p, const MachineConfig &cfg)
{
    isa::Machine m;
    return sim::simulate(m, p, cfg);
}

/** A pure serial dependence chain of n additions. */
isa::Program
serialChain(int n)
{
    isa::Assembler a;
    for (int i = 0; i < n; i++)
        a.addq(r1, 1, r1);
    a.halt();
    return a.finalize();
}

/** n fully independent additions. */
isa::Program
independentOps(int n)
{
    isa::Assembler a;
    for (int i = 0; i < n; i++)
        a.addq(isa::reg_zero, i, isa::Reg{static_cast<uint8_t>(1 + i % 40)});
    a.halt();
    return a.finalize();
}

TEST(Pipeline, SerialChainRunsAtOneIpcOnDataflow)
{
    const int n = 1000;
    auto stats = runOn(serialChain(n), MachineConfig::dataflow());
    // Each add depends on the previous: cycles ~ n regardless of
    // resources.
    EXPECT_GE(stats.cycles, static_cast<uint64_t>(n));
    EXPECT_LE(stats.cycles, static_cast<uint64_t>(n) + 8);
}

TEST(Pipeline, IndependentOpsSaturateIssueWidth)
{
    const int n = 4000;
    auto four = runOn(independentOps(n), MachineConfig::fourWide());
    // 4-wide: at most ~4 IPC, and the code should get close.
    EXPECT_GT(four.ipc(), 3.0);
    EXPECT_LE(four.ipc(), 4.05);

    auto eight = runOn(independentOps(n), MachineConfig::eightWidePlus());
    EXPECT_GT(eight.ipc(), four.ipc());
}

TEST(Pipeline, DataflowIsAnUpperBound)
{
    // On any program, DF must be at least as fast as every real model.
    auto p = serialChain(500);
    auto df = runOn(p, MachineConfig::dataflow());
    for (auto cfg : {MachineConfig::fourWide(), MachineConfig::fourWidePlus(),
                     MachineConfig::eightWidePlus()}) {
        EXPECT_LE(df.cycles, runOn(p, cfg).cycles) << cfg.name;
    }
}

TEST(Pipeline, MispredictPenaltyShowsUp)
{
    // A data-dependent unpredictable branch pattern: alternate
    // taken/untaken decided by a register parity the predictor can
    // model poorly with a single counter... use a pseudo-random
    // sequence via a small LCG computed in-program.
    isa::Assembler a;
    isa::Reg x{1}, cnt{2}, t{3};
    a.li(0x12345, x);
    a.li(400, cnt);
    a.label("loop");
    // x = x * 1103515245 + 12345 (low bits pseudo-random)
    a.mull(x, 1103515245, x);
    a.addl(x, 12345, x);
    a.and_(x, 0x10, t);
    a.beq(t, "skip");
    a.addq(isa::reg_zero, 1, t);
    a.label("skip");
    a.subq(cnt, 1, cnt);
    a.bne(cnt, "loop");
    a.halt();
    auto p = a.finalize();

    MachineConfig real = MachineConfig::fourWide();
    MachineConfig perfect = MachineConfig::fourWide();
    perfect.perfectBranch = true;
    perfect.name = "4W-perfect-bp";
    auto with_bp = runOn(p, real);
    auto no_bp = runOn(p, perfect);
    EXPECT_GT(with_bp.mispredicts, 50u);
    EXPECT_GT(with_bp.cycles, no_bp.cycles + 8 * with_bp.mispredicts / 2);
}

TEST(Pipeline, WindowLimitsDistantParallelism)
{
    // Two long independent chains interleaved at distance > window:
    // chain A ... then chain B. With a tiny window B cannot start
    // until A nearly retires.
    isa::Assembler a;
    for (int i = 0; i < 300; i++)
        a.addq(r1, 1, r1);
    for (int i = 0; i < 300; i++)
        a.addq(r2, 1, r2);
    a.halt();
    auto p = a.finalize();

    MachineConfig small = MachineConfig::dataflow();
    small.windowSize = 16;
    small.issueWidth = 4; // retire bandwidth bounds window recycling
    small.name = "DF+tiny-window";
    auto tiny = runOn(p, small);
    auto df = runOn(p, MachineConfig::dataflow());
    // DF overlaps the chains (~300 cycles); the tiny window serializes
    // them (~600).
    EXPECT_LT(df.cycles, 320u);
    EXPECT_GT(tiny.cycles, 500u);
}

TEST(Pipeline, AliasOrderingStallsLoads)
{
    // Store to an address computed by a long dependence chain, then a
    // load feeding its own long chain: without perfect alias the load
    // waits for the store address and the chains serialize.
    isa::Assembler a;
    isa::Reg base{1}, v{2}, d{3};
    a.li(0x1004, base); // +60 from the chain lands the store 8-aligned
    a.li(0, v);
    for (int i = 0; i < 60; i++)
        a.addq(v, 1, v); // long chain feeding the store address
    a.addq(base, v, v);
    a.stq(isa::reg_zero, v, 0);
    a.ldl(d, base, 8);
    for (int i = 0; i < 60; i++)
        a.addq(d, 1, d); // chain consuming the load
    a.halt();
    auto p = a.finalize();

    MachineConfig alias = MachineConfig::dfPlusAlias();
    auto with_alias = runOn(p, alias);
    auto df = runOn(p, MachineConfig::dataflow());
    // DF overlaps the chains (~65 cycles); alias ordering serializes
    // them (~130).
    EXPECT_GT(with_alias.cycles, df.cycles + 40);
}

// ---- invariants on real cipher kernel traces ----

class KernelTiming : public ::testing::TestWithParam<crypto::CipherId>
{
  protected:
    kernels::KernelBuild
    build(kernels::KernelVariant v, size_t bytes)
    {
        const auto &info = crypto::cipherInfo(GetParam());
        Xorshift64 rng(42);
        auto key = rng.bytes(info.keyBits / 8);
        auto iv = rng.bytes(info.isStream ? 0 : info.blockBytes);
        return kernels::buildKernel(GetParam(), v, key, iv, bytes);
    }

    SimStats
    time(const kernels::KernelBuild &b, const MachineConfig &cfg)
    {
        isa::Machine m;
        Xorshift64 rng(43);
        auto pt = rng.bytes(b.sessionBytes);
        b.install(m, kernels::toWordImage(GetParam(), pt));
        sim::OooScheduler sched(cfg);
        m.run(b.program, &sched, 1ull << 28);
        return sched.finish();
    }
};

TEST_P(KernelTiming, ModelOrderingHolds)
{
    auto b = build(kernels::KernelVariant::Optimized, 512);
    auto df = time(b, MachineConfig::dataflow());
    auto w8 = time(b, MachineConfig::eightWidePlus());
    auto w4p = time(b, MachineConfig::fourWidePlus());
    auto w4 = time(b, MachineConfig::fourWide());
    EXPECT_LE(df.cycles, w8.cycles);
    EXPECT_LE(w8.cycles, w4p.cycles + w4p.cycles / 10);
    EXPECT_LE(w4p.cycles, w4.cycles + w4.cycles / 10);
    // IPC can never exceed issue width.
    EXPECT_LE(w4.ipc(), 4.0 + 1e-9);
    EXPECT_LE(w8.ipc(), 8.0 + 1e-9);
}

TEST_P(KernelTiming, BranchesArePredictable)
{
    // Paper section 4.2: cipher branches live in kernel loops and
    // predict nearly perfectly.
    auto b = build(kernels::KernelVariant::BaselineRot, 1024);
    auto s = time(b, MachineConfig::fourWide());
    ASSERT_GT(s.condBranches, 0u);
    EXPECT_LT(static_cast<double>(s.mispredicts) / s.condBranches, 0.05);
}

TEST_P(KernelTiming, CacheMissesAreRare)
{
    // Paper section 4.2: after warmup the kernels essentially never
    // miss (one value read, then hundreds of cycles of compute).
    auto b = build(kernels::KernelVariant::BaselineRot, 4096);
    auto s = time(b, MachineConfig::fourWide());
    ASSERT_GT(s.l1.accesses, 0u);
    EXPECT_LT(s.l1.missRate(), 0.05);
}

TEST_P(KernelTiming, ValuePredictionIsHopeless)
{
    // Paper section 4.3: the most predictable dependence edge in any
    // kernel is right only ~6% of the time. Allow a loose bound for
    // data-value instructions; loop-control registers (pointers,
    // counters) are excluded by the paper's framing, so we check the
    // *mean* predictability of result-producing instructions is low.
    const auto &info = crypto::cipherInfo(GetParam());
    auto b = build(kernels::KernelVariant::BaselineRot,
                   info.blockBytes * 64);
    isa::Machine m;
    Xorshift64 rng(44);
    auto pt = rng.bytes(b.sessionBytes);
    b.install(m, kernels::toWordImage(GetParam(), pt));
    sim::LastValuePredictor lvp;
    m.run(b.program, &lvp, 1ull << 28);
    EXPECT_LT(lvp.meanPredictability(16), 0.30) << b.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllCiphers, KernelTiming,
    ::testing::ValuesIn([] {
        std::vector<crypto::CipherId> ids;
        for (const auto &i : crypto::cipherCatalog())
            ids.push_back(i.id);
        return ids;
    }()),
    [](const ::testing::TestParamInfo<crypto::CipherId> &info) {
        return crypto::cipherInfo(info.param).name;
    });

} // namespace
