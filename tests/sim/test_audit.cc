/**
 * @file
 * Runtime invariant auditor (CRYPTARCH_SIM_AUDIT): auditing real
 * kernel traces on every preset passes cleanly and changes no
 * statistic, so audit-on paper grids stay byte-identical.
 */

#include <gtest/gtest.h>

#include "driver/workload.hh"
#include "kernels/kernel.hh"
#include "sim/pipeline.hh"
#include "sim/validate.hh"

namespace
{

using namespace cryptarch;
using sim::MachineConfig;
using sim::SimStats;

/** RAII audit-mode toggle: tests must not leak the flag. */
class AuditGuard
{
  public:
    explicit AuditGuard(bool on) : prev(sim::simAuditEnabled())
    {
        sim::setSimAudit(on);
    }
    ~AuditGuard() { sim::setSimAudit(prev); }

  private:
    bool prev;
};

SimStats
runKernel(crypto::CipherId cipher, kernels::KernelVariant variant,
          const MachineConfig &cfg)
{
    driver::Workload w = driver::makeWorkload(cipher, 512);
    auto build = kernels::buildKernel(cipher, variant, w.key, w.iv, 512);
    isa::Machine m;
    build.install(m, kernels::toWordImage(cipher, w.plaintext));
    return sim::simulate(m, build.program, cfg);
}

TEST(Audit, KernelsPassOnEveryPreset)
{
    // The auditor re-derives the scheduler's cycle accounting per
    // retired instruction: event ordering, exact stall tiling of the
    // dispatch-to-issue gap, and resource books within capacity. Real
    // traces across structurally different machines are the broadest
    // exercise of those invariants — any violation throws AuditError.
    AuditGuard audit(true);
    for (auto cipher : {crypto::CipherId::RC4, crypto::CipherId::IDEA,
                        crypto::CipherId::Rijndael}) {
        for (const auto &cfg :
             {MachineConfig::fourWide(), MachineConfig::fourWidePlus(),
              MachineConfig::eightWidePlus(), MachineConfig::dataflow(),
              MachineConfig::dfPlusIssue(),
              MachineConfig::dfPlusResources(),
              MachineConfig::dfPlusWindow()}) {
            EXPECT_NO_THROW(runKernel(
                cipher, kernels::KernelVariant::BaselineRot, cfg))
                << crypto::cipherInfo(cipher).name << " on " << cfg.name;
        }
    }
}

TEST(Audit, AuditingChangesNoStatistic)
{
    // Byte-identity requirement: the auditor observes, never steers.
    for (const auto &cfg :
         {MachineConfig::fourWide(), MachineConfig::eightWidePlus(),
          MachineConfig::dataflow()}) {
        SimStats off, on;
        {
            AuditGuard audit(false);
            off = runKernel(crypto::CipherId::Blowfish,
                            kernels::KernelVariant::Optimized, cfg);
        }
        {
            AuditGuard audit(true);
            on = runKernel(crypto::CipherId::Blowfish,
                           kernels::KernelVariant::Optimized, cfg);
        }
        EXPECT_EQ(off.cycles, on.cycles) << cfg.name;
        EXPECT_EQ(off.instructions, on.instructions) << cfg.name;
        EXPECT_EQ(off.mispredicts, on.mispredicts) << cfg.name;
        EXPECT_EQ(off.stallCycles, on.stallCycles) << cfg.name;
        EXPECT_EQ(off.l1.accesses, on.l1.accesses) << cfg.name;
        EXPECT_EQ(off.l1.misses, on.l1.misses) << cfg.name;
    }
}

TEST(Audit, AuditErrorCarriesTheFrontier)
{
    // The typed report: which invariant, which dynamic instruction.
    sim::AuditError e("stall-tiling", 1234, 56, "gap 7, tiled 6");
    EXPECT_EQ(e.invariant(), "stall-tiling");
    EXPECT_EQ(e.seq(), 1234u);
    EXPECT_EQ(e.pc(), 56u);
    const std::string msg = e.what();
    EXPECT_NE(msg.find("stall-tiling"), std::string::npos) << msg;
    EXPECT_NE(msg.find("1234"), std::string::npos) << msg;
    EXPECT_NE(msg.find("gap 7, tiled 6"), std::string::npos) << msg;
}

} // namespace
